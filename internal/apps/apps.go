// Package apps assembles the paper's packet-processing flow types
// (Section 2.1) from Click elements:
//
//	IP   — full IPv4 forwarding: header check, radix-trie LPM over a
//	       128000-entry table, TTL decrement with incremental checksum.
//	MON  — IP + NetFlow monitoring over a 100000-entry flow table.
//	FW   — MON + a 1000-rule sequential firewall that no packet matches.
//	RE   — MON + redundancy elimination (Rabin fingerprints, fingerprint
//	       table, packet store).
//	VPN  — MON + AES-128 CTR encryption of the payload.
//	SYN  — the synthetic profiling workload; SYN_MAX is its most
//	       aggressive setting.
//
// Pipelines are built through the Click configuration language, so the
// composition path exercised here is the one a user of the library
// writes.
package apps

import (
	"fmt"
	"strings"

	"pktpredict/internal/click"
	"pktpredict/internal/elements"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/synth"
	"pktpredict/internal/trafficgen"

	// Element providers register their classes with the click registry.
	_ "pktpredict/internal/aes"
	_ "pktpredict/internal/firewall"
	_ "pktpredict/internal/iplookup"
	_ "pktpredict/internal/nat"
	_ "pktpredict/internal/netflow"
	_ "pktpredict/internal/re"
)

// FlowType names one of the paper's workloads.
type FlowType string

// The realistic flow types of Section 2.1, plus the synthetic ones.
const (
	IP     FlowType = "IP"
	MON    FlowType = "MON"
	FW     FlowType = "FW"
	RE     FlowType = "RE"
	VPN    FlowType = "VPN"
	SYN    FlowType = "SYN"
	SYNMAX FlowType = "SYN_MAX"
)

// RealisticTypes lists the five deployed-application workloads in the
// paper's order.
var RealisticTypes = []FlowType{IP, MON, FW, RE, VPN}

// Synthetic reports whether t is one of the synthetic profiling
// workloads, which have no Click pipeline and drive themselves rather
// than consuming NIC traffic.
func (t FlowType) Synthetic() bool { return t == SYN || t == SYNMAX }

// Params scales the workloads. Default() is the paper's configuration;
// Small() shrinks tables for fast unit tests while preserving structure.
type Params struct {
	Routes         int // radix-trie routing-table entries
	NetFlowEntries int // flow-table entries
	FirewallRules  int // sequential filter rules
	REStoreBytes   int // packet-store capacity
	RETableEntries int // fingerprint-table slots
	RESampleBits   int // fingerprint sampling (1 in 2^bits)

	PacketSizeIP  int // bytes, for IP/MON/FW flows
	PacketSizeVPN int
	PacketSizeRE  int

	TrafficFlows int // distinct 5-tuples generated (NetFlow population)
	Buffers      int // per-core packet-buffer pool

	SynRegionBytes int // SYN data-structure size (the L3 size)
	SynAccesses    int // SYN memory reads per packet

	// RxBatch is the modelled receive batch size (the scenario BATCH
	// key): sources charge their RX poll cost once per RxBatch packets
	// instead of per packet. 0 or 1 is the unbatched historical model.
	// It must be set identically for offline profiling and the runtime,
	// or predictions diverge from measurements; Scenario.ConfigOn does so.
	RxBatch int

	// Custom declares user-defined flow types: scenario files register a
	// named Click graph here and then use its name anywhere a builtin
	// FlowType is accepted — building, offline profiling, and the
	// concurrent runtime all work unchanged. The map is shared by value
	// copies of Params; treat it as immutable after setup.
	Custom map[FlowType]CustomFlow
}

// CustomFlow is one user-defined flow type: a Click configuration whose
// head is a Source (replaced by the receive ring when run under the
// concurrent runtime) and the packet profile its traffic is generated
// with.
type CustomFlow struct {
	Config     string
	PacketSize int // generated packet size (default PacketSizeIP)

	// Stages, when non-empty, cuts the graph into a cross-worker service
	// chain: it maps element names to stage indices (unlisted elements
	// inherit their predecessors' stage; see click.Pipeline.AssignStages).
	// Offline profiling still runs the whole graph on one core; the
	// concurrent runtime places each stage on its own worker connected by
	// hand-off rings.
	Stages map[string]int
}

// Default returns the paper-scale parameters.
func Default() Params {
	return Params{
		Routes:         128000,
		NetFlowEntries: 100000,
		FirewallRules:  1000,
		REStoreBytes:   16 << 20,
		RETableEntries: 2 << 20,
		RESampleBits:   3,
		PacketSizeIP:   64,
		PacketSizeVPN:  768,
		PacketSizeRE:   1024,
		TrafficFlows:   100000,
		Buffers:        4096,
		SynRegionBytes: 12 << 20,
		SynAccesses:    32,
	}
}

// Small returns reduced parameters for unit tests: every structure keeps
// its role (trie deeper than one level, flow table bigger than caches in
// the test platform, firewall fitting L2) at a fraction of the setup cost.
func Small() Params {
	return Params{
		Routes:         4000,
		NetFlowEntries: 2048,
		FirewallRules:  400,
		REStoreBytes:   1 << 20,
		RETableEntries: 1 << 14,
		RESampleBits:   3,
		PacketSizeIP:   64,
		PacketSizeVPN:  256,
		PacketSizeRE:   512,
		TrafficFlows:   4096,
		Buffers:        256,
		SynRegionBytes: 1 << 20,
		SynAccesses:    16,
	}
}

// Instance is one constructed flow ready to attach to a core.
type Instance struct {
	Type     FlowType
	Source   hw.PacketSource
	Pipeline *click.Pipeline   // nil for raw synthetic sources
	Control  *elements.Control // non-nil when built with a control element

	// State records where every structure the flow allocated lives in
	// simulated memory: one binding per element, with the pipeline stage
	// it executes in. This is what makes application state a placeable
	// resource — the runtime reads it to know which NUMA domain holds a
	// flow's tables, what migrating them would cost, and which stage of a
	// service chain owns which span.
	State []StateBinding

	// Traffic is the build-time source's resolved generator spec when
	// the pipeline's head is a FromDevice (nil otherwise). The concurrent
	// runtime replaces the source with a receive ring and generates the
	// flow's traffic centrally; it adopts this spec's payload shaping
	// (signature injection, entropy distribution) and cross-checks its
	// packet size, so ring-fed traffic matches what the graph's own
	// source generated during offline profiling.
	Traffic *trafficgen.Spec
}

// StateBinding locates one element's simulated state.
type StateBinding struct {
	Element string // element (or structure) name the state belongs to
	Stage   int    // pipeline stage the element executes in
	Base    hw.Addr
	Size    uint64
	// Source marks the build-time source's allocations (packet buffers,
	// RX descriptors). Under the concurrent runtime the source is
	// replaced by the worker's receive ring, so these bytes are dead
	// weight there: excluded from live footprints and never migrated.
	Source bool
}

// Domain returns the NUMA domain the binding's memory belongs to.
func (b StateBinding) Domain() int { return hw.DomainOf(b.Base) }

// Lines returns how many cache lines the binding spans.
func (b StateBinding) Lines() int { return hw.LinesSpanned(b.Base, int(b.Size)) }

// StateBindings returns the instance's live (non-source) state bindings
// for one stage, or for all stages when stage < 0.
func (i *Instance) StateBindings(stage int) []StateBinding {
	var out []StateBinding
	for _, b := range i.State {
		if b.Source || (stage >= 0 && b.Stage != stage) {
			continue
		}
		out = append(out, b)
	}
	return out
}

// StateBytes returns the live state footprint in bytes for one stage, or
// for all stages when stage < 0 (source allocations excluded).
func (i *Instance) StateBytes(stage int) uint64 {
	var n uint64
	for _, b := range i.StateBindings(stage) {
		n += b.Size
	}
	return n
}

// PacketSize returns the wire size of the packets generated for flow
// type t.
func (p Params) PacketSize(t FlowType) int {
	if cf, ok := p.Custom[t]; ok && cf.PacketSize > 0 {
		return cf.PacketSize
	}
	switch t {
	case VPN:
		return p.PacketSizeVPN
	case RE:
		return p.PacketSizeRE
	default:
		if p.PacketSizeIP > 0 {
			return p.PacketSizeIP
		}
		return trafficgen.MinPacketSize
	}
}

// Config renders the Click configuration text for flow type t. SYN types
// have no Click pipeline and return "".
func (p Params) Config(t FlowType, seed uint64) string {
	if t == SYN || t == SYNMAX {
		return ""
	}
	if cf, ok := p.Custom[t]; ok {
		return cf.Config
	}
	var b strings.Builder
	size := p.PacketSizeIP
	switch t {
	case VPN:
		size = p.PacketSizeVPN
	case RE:
		size = p.PacketSizeRE
	}
	fmt.Fprintf(&b, "src :: FromDevice(SIZE %d, SEED %d, FLOWS %d, BUFFERS %d);\n",
		size, seed, p.TrafficFlows, p.Buffers)
	b.WriteString("src -> CheckIPHeader")
	fmt.Fprintf(&b, " -> RadixIPLookup(ROUTES %d, SEED %d)", p.Routes, seed^0x5eed)
	b.WriteString(" -> DecIPTTL")
	if t != IP {
		fmt.Fprintf(&b, " -> NetFlow(ENTRIES %d)", p.NetFlowEntries)
	}
	switch t {
	case FW:
		fmt.Fprintf(&b, " -> IPFilter(RULES %d, SEED %d)", p.FirewallRules, seed^0xf11e)
	case RE:
		fmt.Fprintf(&b, " -> RedundancyElim(STORE %d, ENTRIES %d, SAMPLEBITS %d)",
			p.REStoreBytes, p.RETableEntries, p.RESampleBits)
	case VPN:
		fmt.Fprintf(&b, " -> AESEncrypt(OUTBUFS %d)", p.Buffers)
	}
	b.WriteString(" -> ToDevice;\n")
	return b.String()
}

// Build constructs flow type t with per-flow state allocated from arena
// (the flow's local NUMA domain) and all randomness derived from seed.
func (p Params) Build(t FlowType, arena *mem.Arena, seed uint64) (*Instance, error) {
	return p.build(t, singleArena(arena), seed, nil, 0)
}

// BuildWithControl is Build with a Control element inserted at the head
// of the pipeline (Section 4's aggressiveness-containment knob). SYN
// flows cannot carry a control element.
func (p Params) BuildWithControl(t FlowType, arena *mem.Arena, seed uint64) (*Instance, error) {
	return p.build(t, singleArena(arena), seed, elements.NewControl(0), 0)
}

// BuildPlaced constructs flow type t with each pipeline stage's state
// allocated from arenaAt(stage) — the concurrent runtime passes the
// arena of the worker that will run the stage, so a cut graph keeps
// every stage's tables next to its core instead of piling them all into
// stage 0's domain. Unstaged flows allocate everything from arenaAt(0).
func (p Params) BuildPlaced(t FlowType, arenaAt func(stage int) *mem.Arena, seed uint64) (*Instance, error) {
	return p.build(t, arenaAt, seed, nil, 0)
}

// BuildPlacedWithControl is BuildPlaced with a Control element at the
// head of the pipeline.
func (p Params) BuildPlacedWithControl(t FlowType, arenaAt func(stage int) *mem.Arena, seed uint64) (*Instance, error) {
	return p.build(t, arenaAt, seed, elements.NewControl(0), 0)
}

// singleArena adapts a single arena to the per-stage form.
func singleArena(a *mem.Arena) func(int) *mem.Arena {
	return func(int) *mem.Arena { return a }
}

// arenaTracker records which arenas a build allocated from (and where
// each one's binding record stood beforehand), so the build can collect
// exactly its own bindings afterwards.
type arenaTracker struct {
	uses []struct {
		a    *mem.Arena
		mark int
	}
	seen map[*mem.Arena]bool
}

func (tr *arenaTracker) track(a *mem.Arena) *mem.Arena {
	if a == nil || tr.seen[a] {
		return a
	}
	if tr.seen == nil {
		tr.seen = map[*mem.Arena]bool{}
	}
	tr.seen[a] = true
	tr.uses = append(tr.uses, struct {
		a    *mem.Arena
		mark int
	}{a, a.Mark()})
	return a
}

// collect turns the tracked arenas' new bindings into the instance's
// state record. stageOf maps element names to stages (nil for unstaged
// builds); srcName marks the build-time source's allocations.
func (tr *arenaTracker) collect(stageOf map[string]int, srcName string) []StateBinding {
	var out []StateBinding
	for _, u := range tr.uses {
		for _, b := range u.a.BindingsSince(u.mark) {
			out = append(out, StateBinding{
				Element: b.Label,
				Stage:   stageOf[b.Label],
				Base:    b.Base,
				Size:    b.Size,
				Source:  srcName != "" && b.Label == srcName,
			})
		}
	}
	return out
}

func (p Params) build(t FlowType, arenaAt func(int) *mem.Arena, seed uint64, ctl *elements.Control, hiddenTrigger uint64) (*Instance, error) {
	tr := &arenaTracker{}
	arena := tr.track(arenaAt(0))
	switch t {
	case SYN, SYNMAX:
		if ctl != nil {
			return nil, fmt.Errorf("apps: SYN flows have no pipeline for a control element")
		}
		compute := 0
		if t == SYN {
			compute = 200 // moderate default; sweeps override
		}
		defer arena.SetLabel(arena.SetLabel(string(t)))
		src := synth.NewSource(arena, synth.Config{
			Seed:              seed,
			RegionBytes:       p.SynRegionBytes,
			AccessesPerPacket: p.SynAccesses,
			ComputePerAccess:  compute,
		})
		return &Instance{Type: t, Source: src, State: tr.collect(nil, "")}, nil
	case IP, MON, FW, RE, VPN:
	default:
		if _, ok := p.Custom[t]; !ok {
			return nil, fmt.Errorf("apps: unknown flow type %q", t)
		}
	}
	env := &click.Env{Arena: arena, Seed: seed, RxBatch: p.RxBatch}
	if cf, ok := p.Custom[t]; ok && len(cf.Stages) > 0 {
		env.StageOf = cf.Stages
		env.ArenaAt = func(s int) *mem.Arena { return tr.track(arenaAt(s)) }
	}
	pl, err := click.ParseConfig(env, string(t), p.Config(t, seed))
	if err != nil {
		return nil, fmt.Errorf("apps: building %s: %w", t, err)
	}
	if ctl != nil {
		pl.PushFront(ctl)
	}
	if hiddenTrigger > 0 {
		// The Section 4 adversarial element: SYN_MAX-like accesses after
		// the trigger. Since each FW packet takes far longer than a SYN
		// packet, matching SYN_MAX's per-second memory pressure requires
		// proportionally more accesses per packet.
		old := arena.SetLabel("hidden_aggressor")
		aggr := synth.NewElement(arena, synth.Config{
			Seed:              seed ^ 0xa66,
			RegionBytes:       p.SynRegionBytes,
			AccessesPerPacket: p.SynAccesses * 16,
		}, hiddenTrigger)
		arena.SetLabel(old)
		if err := pl.InsertBefore("ToDevice", aggr); err != nil {
			return nil, err
		}
	}
	// Stage cuts are assigned after all structural edits (a Control at
	// the head lands in stage 0 with the rest of the receive path).
	if cf, ok := p.Custom[t]; ok && len(cf.Stages) > 0 {
		if err := pl.AssignStages(cf.Stages); err != nil {
			return nil, fmt.Errorf("apps: staging %s: %w", t, err)
		}
	}
	stageOf := make(map[string]int, len(pl.Nodes()))
	for _, n := range pl.Nodes() {
		stageOf[n.Name] = n.Stage
	}
	state := tr.collect(stageOf, pl.SourceName())
	if cf, ok := p.Custom[t]; ok && len(cf.Stages) > 0 {
		// Cross-check the parser's pre-construction stage plan against
		// the authoritative AssignStages outcome: every live binding must
		// sit in the arena of the stage it executes in. A divergence
		// (e.g. the two inheritance implementations drifting apart) would
		// otherwise ship silently as permanent cross-domain traffic.
		for _, b := range state {
			if b.Source {
				continue
			}
			if want := arenaAt(b.Stage).Domain(); b.Domain() != want {
				return nil, fmt.Errorf("apps: %s: element %q runs in stage %d but its state landed in domain %d, want %d (stage plan diverged)",
					t, b.Element, b.Stage, b.Domain(), want)
			}
		}
	}
	inst := &Instance{
		Type: t, Source: pl, Pipeline: pl, Control: ctl,
		State: state,
	}
	if fd, ok := pl.Source.(*elements.FromDevice); ok {
		spec := fd.Spec()
		inst.Traffic = &spec
	}
	return inst, nil
}

// Stages returns how many pipeline stages flow type t is cut into — the
// number of workers one replica occupies under the concurrent runtime.
// Builtins and unstaged custom flows run as a single stage.
func (p Params) Stages(t FlowType) int {
	cf, ok := p.Custom[t]
	if !ok || len(cf.Stages) == 0 {
		return 1
	}
	max := 0
	for _, s := range cf.Stages {
		if s > max {
			max = s
		}
	}
	return max + 1
}

// BuildSyn constructs a synthetic flow with explicit knobs, used by the
// profiling sweep to ramp competing references per second.
func (p Params) BuildSyn(arena *mem.Arena, seed uint64, computePerAccess int) *Instance {
	tr := &arenaTracker{}
	tr.track(arena)
	defer arena.SetLabel(arena.SetLabel(string(SYN)))
	src := synth.NewSource(arena, synth.Config{
		Seed:              seed,
		RegionBytes:       p.SynRegionBytes,
		AccessesPerPacket: p.SynAccesses,
		ComputePerAccess:  computePerAccess,
	})
	return &Instance{Type: SYN, Source: src, State: tr.collect(nil, "")}
}

// BuildHiddenAggressor constructs the Section 4 adversarial flow: it
// profiles like FW but, after triggerPackets packets, starts performing
// SYN_MAX-like memory accesses. The returned instance carries a Control
// element so the administrator's throttle has something to act on.
func (p Params) BuildHiddenAggressor(arena *mem.Arena, seed uint64, triggerPackets uint64) (*Instance, error) {
	return p.build(FW, singleArena(arena), seed, elements.NewControl(0), triggerPackets)
}

// ParseFlowType converts a string such as "MON" or "syn_max" to a
// FlowType.
func ParseFlowType(s string) (FlowType, error) {
	switch strings.ToUpper(s) {
	case "IP":
		return IP, nil
	case "MON":
		return MON, nil
	case "FW":
		return FW, nil
	case "RE":
		return RE, nil
	case "VPN":
		return VPN, nil
	case "SYN":
		return SYN, nil
	case "SYN_MAX", "SYNMAX":
		return SYNMAX, nil
	}
	return "", fmt.Errorf("apps: unknown flow type %q", s)
}
