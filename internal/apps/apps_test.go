package apps

import (
	"testing"

	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// testPlatform returns a scaled-down platform that keeps the 2-socket
// structure but with small caches so behaviour shows quickly.
func testPlatform() *hw.Platform {
	cfg := hw.DefaultConfig()
	cfg.L1D = hw.CacheGeom{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = hw.CacheGeom{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = hw.CacheGeom{SizeBytes: 256 << 10, Ways: 16}
	return hw.NewPlatform(cfg)
}

func TestBuildAllRealisticTypes(t *testing.T) {
	p := Small()
	for _, ft := range RealisticTypes {
		ft := ft
		t.Run(string(ft), func(t *testing.T) {
			arena := mem.NewArena(0)
			inst, err := p.Build(ft, arena, 7)
			if err != nil {
				t.Fatalf("Build(%s): %v", ft, err)
			}
			if inst.Pipeline == nil {
				t.Fatal("realistic flows must have a pipeline")
			}
			// Run some packets through a simulated core.
			plat := testPlatform()
			e := hw.NewEngine(plat)
			e.Attach(0, string(ft), inst.Source)
			e.RunUntil(3_000_000)
			c := plat.Cores[0].Counters
			if c.Packets < 10 {
				t.Fatalf("only %d packets in 3M cycles", c.Packets)
			}
			if c.L3Refs == 0 {
				t.Fatal("no L3 references; flow is not exercising memory")
			}
			if got, _ := inst.Pipeline.Stat("dropped"); got > 0 {
				t.Fatalf("%d packets dropped; workloads must forward everything", got)
			}
		})
	}
}

func TestBuildSynTypes(t *testing.T) {
	p := Small()
	for _, ft := range []FlowType{SYN, SYNMAX} {
		arena := mem.NewArena(0)
		inst, err := p.Build(ft, arena, 3)
		if err != nil {
			t.Fatalf("Build(%s): %v", ft, err)
		}
		if inst.Pipeline != nil {
			t.Fatal("synthetic flows must not have a pipeline")
		}
		ops := inst.Source.EmitPacket(nil)
		if len(ops) == 0 {
			t.Fatal("no ops emitted")
		}
	}
}

func TestSynMaxMoreAggressiveThanSyn(t *testing.T) {
	p := Small()
	measure := func(ft FlowType) float64 {
		plat := testPlatform()
		arena := mem.NewArena(0)
		inst, _ := p.Build(ft, arena, 5)
		e := hw.NewEngine(plat)
		e.Attach(0, string(ft), inst.Source)
		return e.MeasureWindow(0.0002, 0.001)[0].L3RefsPerSec()
	}
	syn, synMax := measure(SYN), measure(SYNMAX)
	if synMax <= syn {
		t.Fatalf("SYN_MAX refs/sec (%.0f) must exceed SYN's (%.0f)", synMax, syn)
	}
}

func TestRelativeWorkloadWeight(t *testing.T) {
	// Heavier per-packet processing must show up as higher cycles/packet:
	// IP < MON < VPN < FW (1000-rule scan) in the paper's Table 1.
	p := Small()
	cyc := map[FlowType]float64{}
	for _, ft := range []FlowType{IP, MON, FW, VPN} {
		plat := testPlatform()
		inst, err := p.Build(ft, mem.NewArena(0), 11)
		if err != nil {
			t.Fatal(err)
		}
		e := hw.NewEngine(plat)
		e.Attach(0, string(ft), inst.Source)
		st := e.MeasureWindow(0.0005, 0.002)[0]
		cyc[ft] = st.CyclesPerPacket()
	}
	if !(cyc[IP] < cyc[MON] && cyc[MON] < cyc[VPN] && cyc[VPN] < cyc[FW]) {
		t.Fatalf("cycles/packet ordering wrong: IP=%.0f MON=%.0f VPN=%.0f FW=%.0f",
			cyc[IP], cyc[MON], cyc[VPN], cyc[FW])
	}
}

func TestBuildWithControl(t *testing.T) {
	p := Small()
	inst, err := p.BuildWithControl(MON, mem.NewArena(0), 9)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Control == nil {
		t.Fatal("control element missing")
	}
	if inst.Pipeline.Elements()[0] != inst.Control {
		t.Fatal("control element must be first in the chain")
	}
	if _, err := p.BuildWithControl(SYN, mem.NewArena(0), 9); err == nil {
		t.Fatal("SYN with control element must fail")
	}
}

func TestBuildHiddenAggressor(t *testing.T) {
	p := Small()
	// Trigger after 2000 packets: far beyond the "before" window below.
	inst, err := p.BuildHiddenAggressor(mem.NewArena(0), 13, 2000)
	if err != nil {
		t.Fatal(err)
	}
	plat := testPlatform()
	e := hw.NewEngine(plat)
	e.Attach(0, "hidden", inst.Source)

	// Before the trigger the flow behaves like FW; after it, its L3
	// refs/packet must jump.
	e.RunUntil(1_000_000)
	before := plat.Cores[0].Counters
	if before.Packets >= 2000 {
		t.Fatalf("before-window already passed the trigger (%d packets)", before.Packets)
	}
	e.RunUntil(20_000_000) // run well past the trigger point
	mid := plat.Cores[0].Counters
	e.RunUntil(80_000_000)
	delta := plat.Cores[0].Counters.Sub(mid)
	if delta.Packets == 0 {
		t.Fatal("no progress after trigger")
	}
	refsPerPacketBefore := float64(before.L3Refs) / float64(before.Packets)
	refsPerPacketAfter := float64(delta.L3Refs) / float64(delta.Packets)
	if refsPerPacketAfter < refsPerPacketBefore*1.5 {
		t.Fatalf("aggression did not manifest: %.1f → %.1f refs/packet",
			refsPerPacketBefore, refsPerPacketAfter)
	}
}

func TestDeterministicBuildAndRun(t *testing.T) {
	p := Small()
	run := func() hw.Counters {
		plat := testPlatform()
		inst, _ := p.Build(MON, mem.NewArena(0), 21)
		e := hw.NewEngine(plat)
		e.Attach(0, "MON", inst.Source)
		e.RunUntil(2_000_000)
		return plat.Cores[0].Counters
	}
	if run() != run() {
		t.Fatal("identical builds produced different counters")
	}
}

func TestParseFlowType(t *testing.T) {
	cases := map[string]FlowType{
		"IP": IP, "mon": MON, "Fw": FW, "re": RE, "VPN": VPN,
		"syn": SYN, "SYN_MAX": SYNMAX, "synmax": SYNMAX,
	}
	for s, want := range cases {
		got, err := ParseFlowType(s)
		if err != nil || got != want {
			t.Fatalf("ParseFlowType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFlowType("bogus"); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestBuildUnknownType(t *testing.T) {
	if _, err := Default().Build("NOPE", mem.NewArena(0), 1); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestConfigRendering(t *testing.T) {
	cfg := Small().Config(FW, 3)
	for _, want := range []string{"FromDevice", "CheckIPHeader", "RadixIPLookup", "NetFlow", "IPFilter", "ToDevice"} {
		if !contains(cfg, want) {
			t.Fatalf("FW config missing %s:\n%s", want, cfg)
		}
	}
	if contains(Small().Config(IP, 3), "NetFlow") {
		t.Fatal("IP config must not include NetFlow")
	}
	if Small().Config(SYN, 3) != "" {
		t.Fatal("SYN has no click config")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Custom flow types: a scenario-registered Click graph behaves like a
// builtin type through Config, PacketSize, and Build — including the
// branching NAT service chain the nat_chain scenario ships.
func TestCustomFlowTypeBuilds(t *testing.T) {
	params := Small()
	params.Custom = map[FlowType]CustomFlow{
		"NATFW": {
			PacketSize: 128,
			Config: `
				src :: FromDevice(SIZE 128, COUNT 50);
				cls :: IPClassifier(tcp, udp, -);
				nat :: IPRewriter(CAPACITY 256);
				src -> CheckIPHeader -> cls;
				cls[0] -> nat;
				cls[1] -> nat;
				cls[2] -> Discard;
				nat -> IPFilter(RULES 64) -> ToDevice;
			`,
		},
	}
	if got := params.PacketSize("NATFW"); got != 128 {
		t.Fatalf("PacketSize = %d, want 128", got)
	}
	if params.Config("NATFW", 1) == "" {
		t.Fatal("custom config not returned")
	}
	inst, err := params.Build("NATFW", mem.NewArena(0), 7)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !inst.Pipeline.Branching() {
		t.Fatal("NAT chain should be a branching pipeline")
	}
	var ops = inst.Pipeline.EmitPacket(nil)
	for len(ops) > 0 {
		ops = inst.Pipeline.EmitPacket(ops[:0])
	}
	if inst.Pipeline.Received != 50 {
		t.Fatalf("received %d", inst.Pipeline.Received)
	}
	sent, _ := inst.Pipeline.Stat("ToDevice.sent")
	rewritten, _ := inst.Pipeline.Stat("IPRewriter.rewritten")
	if sent == 0 || rewritten != sent {
		t.Fatalf("sent %d rewritten %d; NAT chain must rewrite everything it forwards", sent, rewritten)
	}

	// A control element still lands at the head of a custom pipeline.
	withCtl, err := params.BuildWithControl("NATFW", mem.NewArena(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	if withCtl.Pipeline.Elements()[0] != withCtl.Control {
		t.Fatal("control element not at pipeline head")
	}

	if _, err := Small().Build("NATFW", mem.NewArena(0), 7); err == nil {
		t.Fatal("unknown custom type must error without registration")
	}
}

func TestBuildRecordsStateBindings(t *testing.T) {
	p := Small()
	a := mem.NewArena(0)
	inst, err := p.Build(MON, a, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.State) == 0 {
		t.Fatal("no state bindings recorded")
	}
	var sawSource, sawTable bool
	for _, b := range inst.State {
		if b.Domain() != 0 {
			t.Fatalf("binding %+v outside domain 0", b)
		}
		if b.Base < hw.DomainBase(0)+4096 {
			t.Fatalf("binding %+v inside the reserved null page", b)
		}
		if b.Source {
			sawSource = true
		}
		if b.Element == "NetFlow@4" || b.Element == "RadixIPLookup@2" {
			sawTable = true
		}
	}
	if !sawSource {
		t.Fatal("source allocations not marked")
	}
	if !sawTable {
		t.Fatalf("no table bindings among %+v", inst.State)
	}
	live := inst.StateBytes(-1)
	if live == 0 {
		t.Fatal("zero live footprint")
	}
	// The trie reserves ~640 MiB of address space; the live footprint
	// must reflect touched bytes, not the reservation.
	if live > 64<<20 {
		t.Fatalf("live footprint %d includes address-space reservations", live)
	}
	for _, b := range inst.StateBindings(-1) {
		if b.Source {
			t.Fatalf("live bindings include the source: %+v", b)
		}
	}
}

func TestBuildPlacedAllocatesPerStage(t *testing.T) {
	p := Small()
	custom := map[FlowType]CustomFlow{
		"MONC": {
			Config: `
				src :: FromDevice(SIZE 64, FLOWS 512, BUFFERS 64);
				chk :: CheckIPHeader;
				rt  :: RadixIPLookup(ROUTES 1000);
				nf  :: NetFlow(ENTRIES 512);
				src -> chk -> rt -> nf -> ToDevice;
			`,
			PacketSize: 64,
			Stages:     map[string]int{"nf": 1},
		},
	}
	p.Custom = custom
	arenas := []*mem.Arena{mem.NewArena(0), mem.NewArena(1)}
	inst, err := p.BuildPlaced("MONC", func(s int) *mem.Arena { return arenas[s] }, 11)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Pipeline.NumStages() != 2 {
		t.Fatalf("stages = %d, want 2", inst.Pipeline.NumStages())
	}
	for _, b := range inst.State {
		want := b.Stage // stage 0 state in domain 0, stage 1 in domain 1
		if b.Domain() != want {
			t.Fatalf("binding %+v: stage %d state in domain %d", b, b.Stage, b.Domain())
		}
		if b.Base < hw.DomainBase(want) || b.Base >= hw.DomainBase(want+1) {
			t.Fatalf("binding %+v outside its domain's address range", b)
		}
	}
	// The cut's downstream elements inherit stage 1, so both the NetFlow
	// table and the ToDevice ring must be in domain 1.
	if n := len(inst.StateBindings(1)); n < 2 {
		t.Fatalf("stage 1 owns %d bindings, want NetFlow and ToDevice", n)
	}
	if inst.StateBytes(0) == 0 || inst.StateBytes(1) == 0 {
		t.Fatalf("per-stage footprints: %d / %d, both must be non-zero",
			inst.StateBytes(0), inst.StateBytes(1))
	}
}
