package handoff

import (
	stdruntime "runtime"
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

func sumCompute(ops []hw.Op) (cycles int) {
	for _, op := range ops {
		if op.Kind == hw.OpCompute {
			cycles += int(op.Cycles)
		}
	}
	return
}

func opKinds(ops []hw.Op) (loads, stores, computes int) {
	for _, op := range ops {
		switch op.Kind {
		case hw.OpLoad:
			loads++
		case hw.OpStore:
			stores++
		case hw.OpCompute:
			computes++
		}
	}
	return
}

func TestRingPushPopCharges(t *testing.T) {
	r := New(mem.NewArena(0), 4)
	var prodCtx, consCtx click.Ctx
	p := &click.Packet{Addr: 0x10000}

	prodCtx.Ops = nil
	if !r.Push(&prodCtx, p, 7, true) {
		t.Fatal("push into empty ring failed")
	}
	// A scalar push is stage (slot compute) + commit (cursor compute):
	// two computes whose cycles sum to the historical per-push cost.
	loads, stores, computes := opKinds(prodCtx.Ops)
	if stores != 1 || computes != 2 || loads != 0 {
		t.Fatalf("push trace: %d loads %d stores %d computes, want 0/1/2", loads, stores, computes)
	}
	if got := sumCompute(prodCtx.Ops); got != slotCycles+cursorCycles {
		t.Fatalf("push compute cycles = %d, want %d", got, slotCycles+cursorCycles)
	}

	consCtx.Ops = nil
	got, node, fin, ok := r.Pop(&consCtx)
	if !ok || got != p || node != 7 || !fin {
		t.Fatalf("pop = (%v, %d, %v, %v), want (p, 7, true, true)", got, node, fin, ok)
	}
	loads, stores, computes = opKinds(consCtx.Ops)
	if loads != 1 || computes != 2 || stores != 0 {
		t.Fatalf("pop trace: %d loads %d stores %d computes, want 1/0/2", loads, stores, computes)
	}
	if gotCyc := sumCompute(consCtx.Ops); gotCyc != slotCycles+cursorCycles {
		t.Fatalf("pop compute cycles = %d, want %d", gotCyc, slotCycles+cursorCycles)
	}

	// The consumer-side compulsory header miss touches each header line.
	consCtx.Ops = nil
	r.ChargeHeaderMiss(&consCtx, p)
	loads, _, _ = opKinds(consCtx.Ops)
	if want := hw.LinesSpanned(p.Addr, HeaderBytes); loads != want {
		t.Fatalf("header miss loads %d lines, want %d", loads, want)
	}
}

// TestRingBatchedPushPopCharges pins the batched cost split: N staged
// pushes plus one commit charge N slot costs and one cursor cost — the
// same per-packet total as N scalar pushes minus N−1 cursor updates —
// and staged slots stay invisible to the consumer until the commit.
func TestRingBatchedPushPopCharges(t *testing.T) {
	r := New(mem.NewArena(0), 8)
	var prodCtx, consCtx click.Ctx
	pkts := []*click.Packet{{Addr: 0x10000}, {Addr: 0x10200}, {Addr: 0x10400}}

	prodCtx.Ops = nil
	for i, p := range pkts {
		if !r.StagePush(&prodCtx, p, i, false) {
			t.Fatalf("stage %d failed", i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("staged slots visible before commit: len = %d", r.Len())
	}
	r.CommitPush(&prodCtx)
	if r.Len() != len(pkts) {
		t.Fatalf("after commit: len = %d, want %d", r.Len(), len(pkts))
	}
	if got, want := sumCompute(prodCtx.Ops), len(pkts)*slotCycles+cursorCycles; got != want {
		t.Fatalf("batched push cycles = %d, want %d", got, want)
	}

	consCtx.Ops = nil
	for i, want := range pkts {
		p, node, _, ok := r.PopStaged(&consCtx)
		if !ok || p != want || node != i {
			t.Fatalf("pop %d: ok=%v p=%v node=%d", i, ok, p, node)
		}
	}
	if r.Consumed() != 0 {
		t.Fatalf("staged pops released before commit: consumed = %d", r.Consumed())
	}
	r.CommitPop(&consCtx)
	if r.Consumed() != uint64(len(pkts)) || !r.Empty() {
		t.Fatalf("after commit: consumed = %d, empty = %v", r.Consumed(), r.Empty())
	}
	if got, want := sumCompute(consCtx.Ops), len(pkts)*slotCycles+cursorCycles; got != want {
		t.Fatalf("batched pop cycles = %d, want %d", got, want)
	}

	// An empty commit charges nothing: quanta that staged no packets must
	// not accrue cursor costs.
	prodCtx.Ops = nil
	r.CommitPush(&prodCtx)
	consCtx.Ops = nil
	r.CommitPop(&consCtx)
	if len(prodCtx.Ops) != 0 || len(consCtx.Ops) != 0 {
		t.Fatal("empty commit charged ops")
	}
}

func TestRingFullEmptyAndPolls(t *testing.T) {
	r := New(mem.NewArena(0), 2)
	var ctx click.Ctx
	if !r.Empty() || r.Full() {
		t.Fatalf("fresh ring: empty=%v full=%v", r.Empty(), r.Full())
	}
	p := &click.Packet{Addr: 0x20000}
	for i := 0; i < r.Cap(); i++ {
		ctx.Ops = nil
		if !r.Push(&ctx, p, i, false) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if !r.Full() {
		t.Fatal("ring not full at capacity")
	}
	ctx.Ops = nil
	if r.Push(&ctx, p, 9, false) {
		t.Fatal("push into full ring succeeded")
	}
	if len(ctx.Ops) != 0 {
		t.Fatal("failed push charged ops")
	}
	// Polls charge a spin-wait trace without moving packets, and each
	// direction lands in its own counter: PollFull is the producer
	// spinning (consumer lags), PollEmpty the consumer (producer
	// starves) — the split the residual diagnosis uses to name the side
	// at fault.
	ctx.Ops = nil
	r.PollFull(&ctx)
	if len(ctx.Ops) == 0 {
		t.Fatal("PollFull charged nothing")
	}
	if r.PushPolls() != 1 || r.PopPolls() != 0 {
		t.Fatalf("after PollFull: push=%d pop=%d, want 1/0", r.PushPolls(), r.PopPolls())
	}
	before := r.Len()
	ctx.Ops = nil
	r.PollEmpty(&ctx)
	if len(ctx.Ops) == 0 || r.Len() != before {
		t.Fatal("PollEmpty charged nothing or moved packets")
	}
	if r.PushPolls() != 1 || r.PopPolls() != 1 {
		t.Fatalf("after PollEmpty: push=%d pop=%d, want 1/1", r.PushPolls(), r.PopPolls())
	}
	if r.Polls() != 2 {
		t.Fatalf("total polls = %d, want 2", r.Polls())
	}
	for i := 0; i < before; i++ {
		ctx.Ops = nil
		if _, node, _, ok := r.Pop(&ctx); !ok || node != i {
			t.Fatalf("pop %d: ok=%v node=%d", i, ok, node)
		}
	}
	if _, _, _, ok := r.Pop(&ctx); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if r.Consumed() != uint64(before) {
		t.Fatalf("consumed = %d, want %d", r.Consumed(), before)
	}
}

// TestRingConcurrentStages drives a live producer/consumer pair — the
// runtime's deployment — under the race detector: packet identity and
// resume-node order must survive, and each side only touches its own Ctx.
func TestRingConcurrentStages(t *testing.T) {
	const total = 40000
	r := New(mem.NewArena(0), 64)
	packets := make([]*click.Packet, 256)
	for i := range packets {
		packets[i] = &click.Packet{Addr: hw.Addr(0x30000 + i*512)}
	}
	done := make(chan error, 1)
	go func() {
		var ctx click.Ctx
		next := 0
		for next < total {
			ctx.Ops = ctx.Ops[:0]
			p, node, fin, ok := r.Pop(&ctx)
			if !ok {
				r.PollEmpty(&ctx)
				stdruntime.Gosched()
				continue
			}
			if node != next%1024 || p != packets[next%len(packets)] || fin != (next%3 == 0) {
				done <- errMismatch{at: next}
				return
			}
			r.ChargeHeaderMiss(&ctx, p)
			next++
		}
		done <- nil
	}()
	var ctx click.Ctx
	for i := 0; i < total; {
		ctx.Ops = ctx.Ops[:0]
		if r.Push(&ctx, packets[i%len(packets)], i%1024, i%3 == 0) {
			i++
		} else {
			r.PollFull(&ctx)
			stdruntime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || r.Consumed() != total {
		t.Fatalf("after drain: len=%d consumed=%d", r.Len(), r.Consumed())
	}
}

type errMismatch struct{ at int }

func (e errMismatch) Error() string { return "handoff slot mismatch" }
