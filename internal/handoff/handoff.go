// Package handoff is the inter-stage packet ring used when one flow's
// processing is split across cores — the Section 2.2 "pipeline" approach.
// A Ring pairs a Go-side SPSC queue carrying the packets with a simulated
// descriptor ring whose cache lines both stages touch, so the costs the
// paper attributes to pipelining emerge from the simulation:
//
//   - descriptor-line stores (producer) and loads (consumer) that bounce
//     between the two cores' caches,
//   - spin-wait polls of the ring state when a stage runs ahead of its
//     peer,
//   - the compulsory cross-core miss on the packet header lines, last
//     written by the producing core,
//   - buffer recycling back into the producing core's pool (callers run
//     the pool's free-list trace on the consuming core, or route buffers
//     home through a second Ring).
//
// The same Ring serves the deterministic engine's Section 2.2 experiment
// (exp.RunPipeline) and the concurrent runtime's cross-worker service
// chains, so both charge identical hand-off costs. Concurrent use obeys
// the SPSC discipline of runtime.Ring: exactly one producer goroutine
// calls Push/PollFull, exactly one consumer calls Pop/PollEmpty; slots
// are published by the tail store and released by the head store.
package handoff

import (
	"fmt"
	"sync/atomic"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// fnHandoff attributes the ring manipulation in per-function profiles.
var fnHandoff = hw.RegisterFunc("pipeline_handoff")

// Simulated costs of the ring operations, shared by the engine experiment
// and the runtime so the two charge identical hand-off prices. A scalar
// push or pop costs slot + cursor (12 cycles / 10 instrs, as before);
// batched operation pays the slot part per packet and the cursor part
// once per batch — the amortization real batched rings buy.
const (
	slotCycles   = 8 // per packet: descriptor write/read + slot handling
	slotInstrs   = 6
	cursorCycles = 4 // per publish/release: cursor load + store
	cursorInstrs = 4
	pollCycles   = 40 // one spin-wait iteration on the ring state
	pollInstrs   = 30
	descBytes    = 16 // descriptor size; four descriptors share a line
	HeaderBytes  = 64 // packet header bytes the consumer must re-read
)

// slot carries one handed-over packet, the graph node the consuming
// stage resumes the walk at (consumers that run a fixed element list
// ignore it), and whether a branch of the packet's walk already
// completed before the cut — the upstream share of the packet-level
// finished/dropped outcome.
type slot struct {
	p        *click.Packet
	node     int32
	finished bool
}

// Ring is a bounded SPSC hand-off ring between two pipeline stages.
type Ring struct {
	slots []slot
	mask  uint64
	desc  mem.Region

	_    [64]byte // keep the cursors on separate cache lines
	tail atomic.Uint64
	// staged counts slots written past tail but not yet published;
	// producer-side only, so a plain field.
	staged uint64
	// pushPolls counts producer spin-wait iterations (PollFull): a burst
	// of them means the consumer lags (ring full). Producer-padded line.
	pushPolls atomic.Uint64
	_         [64]byte
	head      atomic.Uint64
	// taken counts slots consumed past head but not yet released;
	// consumer-side only, so a plain field.
	taken uint64
	// popPolls counts consumer spin-wait iterations (PollEmpty): a burst
	// of them means the producer starves the consumer (ring empty). The
	// two directions mean opposite things, so they are kept apart and
	// exposed separately.
	popPolls atomic.Uint64
}

// New builds a ring of the given depth (rounded up to a power of two,
// minimum 2) whose simulated descriptor ring is allocated from arena —
// conventionally the producing stage's NUMA domain, as a real driver
// allocates its rings locally.
func New(arena *mem.Arena, depth int) *Ring {
	if depth <= 0 {
		panic(fmt.Sprintf("handoff: invalid ring depth %d", depth))
	}
	n := 2
	for n < depth {
		n <<= 1
	}
	return &Ring{
		slots: make([]slot, n),
		mask:  uint64(n - 1),
		desc:  mem.NewRegion(arena, n, descBytes, false),
	}
}

// Cap returns the ring's capacity in packets.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the current occupancy; naturally racy while both stages run.
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Full reports whether a Push or StagePush would fail, counting the
// producer's staged-but-unpublished slots. Only the producer should act
// on it (the consumer can only make it stale in the permissive
// direction).
func (r *Ring) Full() bool {
	return r.tail.Load()+r.staged-r.head.Load() >= uint64(len(r.slots))
}

// Empty reports whether a Pop or PopStaged would fail, counting the
// consumer's taken-but-unreleased slots. Only the consumer should act on
// it.
func (r *Ring) Empty() bool { return r.tail.Load() == r.head.Load()+r.taken }

// Consumed returns the cumulative number of packets popped, for credit
// accounting across barriers.
func (r *Ring) Consumed() uint64 { return r.head.Load() }

// Produced returns the cumulative number of packets pushed.
func (r *Ring) Produced() uint64 { return r.tail.Load() }

// Polls returns the cumulative spin-wait iterations both stages have
// charged against this ring — the observable cost of stage imbalance.
func (r *Ring) Polls() uint64 { return r.pushPolls.Load() + r.popPolls.Load() }

// PushPolls returns the producer's cumulative spin-wait iterations
// (PollFull): the ring was full, so the consumer lags.
func (r *Ring) PushPolls() uint64 { return r.pushPolls.Load() }

// PopPolls returns the consumer's cumulative spin-wait iterations
// (PollEmpty): the ring was empty, so the producer starves the consumer.
func (r *Ring) PopPolls() uint64 { return r.popPolls.Load() }

// Push hands p (with its resume node and upstream finished flag) to the
// consuming stage, emitting the descriptor-line store and the cursor
// publish. It returns false, charging nothing, when the ring is full;
// the producer then typically PollFulls and retries later. A Push also
// publishes any slots the producer had staged.
//
//dataplane:stamped hand-off descriptor ops are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) Push(ctx *click.Ctx, p *click.Packet, node int, finished bool) bool {
	if !r.StagePush(ctx, p, node, finished) {
		r.CommitPush(ctx)
		return false
	}
	r.CommitPush(ctx)
	return true
}

// StagePush writes p's descriptor and slot without publishing them: the
// consumer cannot see staged slots until CommitPush pays the cursor cost
// once and stores tail for the whole batch. Returns false, charging
// nothing, when the ring (including already-staged slots) is full.
//
//dataplane:stamped hand-off descriptor ops are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) StagePush(ctx *click.Ctx, p *click.Packet, node int, finished bool) bool {
	t := r.tail.Load() + r.staged
	if t-r.head.Load() >= uint64(len(r.slots)) {
		return false
	}
	old := ctx.SetFunc(fnHandoff)
	ctx.Store(r.desc.Addr(int(t & r.mask)))
	ctx.Compute(slotCycles, slotInstrs)
	ctx.SetFunc(old)
	r.slots[t&r.mask] = slot{p: p, node: int32(node), finished: finished}
	r.staged++
	return true
}

// CommitPush publishes every staged slot with a single tail store,
// charging the cursor update once for the whole batch. A no-op, charging
// nothing, when nothing is staged.
//
//dataplane:stamped hand-off descriptor ops are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) CommitPush(ctx *click.Ctx) {
	if r.staged == 0 {
		return
	}
	old := ctx.SetFunc(fnHandoff)
	ctx.Compute(cursorCycles, cursorInstrs)
	ctx.SetFunc(old)
	r.tail.Store(r.tail.Load() + r.staged) // publish the batch
	r.staged = 0
}

// Pop takes the next packet, emitting the descriptor-line load and the
// cursor release. It returns ok=false, charging nothing, when the ring
// is empty. A Pop also releases any slots the consumer had taken via
// PopStaged.
//
//dataplane:stamped hand-off descriptor ops are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) Pop(ctx *click.Ctx) (p *click.Packet, node int, finished bool, ok bool) {
	p, node, finished, ok = r.PopStaged(ctx)
	r.CommitPop(ctx)
	return p, node, finished, ok
}

// PopStaged takes the next packet without releasing its slot: the
// producer cannot reuse taken slots until CommitPop pays the cursor cost
// once and stores head for the whole batch. Returns ok=false, charging
// nothing, when the ring (beyond already-taken slots) is empty.
//
//dataplane:stamped hand-off descriptor ops are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) PopStaged(ctx *click.Ctx) (p *click.Packet, node int, finished bool, ok bool) {
	h := r.head.Load() + r.taken
	if h == r.tail.Load() {
		return nil, 0, false, false
	}
	old := ctx.SetFunc(fnHandoff)
	ctx.Load(r.desc.Addr(int(h & r.mask)))
	ctx.Compute(slotCycles, slotInstrs)
	ctx.SetFunc(old)
	s := r.slots[h&r.mask]
	r.slots[h&r.mask] = slot{}
	r.taken++
	return s.p, int(s.node), s.finished, true
}

// CommitPop releases every taken slot with a single head store, charging
// the cursor update once for the whole batch. A no-op, charging nothing,
// when nothing is pending.
//
//dataplane:stamped hand-off descriptor ops are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) CommitPop(ctx *click.Ctx) {
	if r.taken == 0 {
		return
	}
	old := ctx.SetFunc(fnHandoff)
	ctx.Compute(cursorCycles, cursorInstrs)
	ctx.SetFunc(old)
	r.head.Store(r.head.Load() + r.taken) // release the batch
	r.taken = 0
}

// PollFull models one producer spin-wait iteration: re-reading the line
// the consumer's progress is published on.
//
//dataplane:stamped spin-wait polls are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) PollFull(ctx *click.Ctx) {
	r.pushPolls.Add(1)
	r.poll(ctx, r.head.Load())
}

// PollEmpty models one consumer spin-wait iteration: re-reading the line
// the producer's progress is published on.
//
//dataplane:stamped spin-wait polls are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) PollEmpty(ctx *click.Ctx) {
	r.popPolls.Add(1)
	r.poll(ctx, r.tail.Load())
}

//dataplane:stamped spin-wait polls are pipeline overhead (slot 0) by design
//dataplane:hotpath
func (r *Ring) poll(ctx *click.Ctx, cursor uint64) {
	old := ctx.SetFunc(fnHandoff)
	ctx.Load(r.desc.Addr(int(cursor & r.mask)))
	ctx.Compute(pollCycles, pollInstrs)
	ctx.SetFunc(old)
}

// ChargeHeaderMiss emits the consumer-side read of the packet's header
// lines — the compulsory cross-core miss the paper describes: the lines
// were last written by the producing core, so they must travel.
//
//dataplane:stamped cross-core header miss is charged to the consuming stage as overhead
//dataplane:hotpath
func (r *Ring) ChargeHeaderMiss(ctx *click.Ctx, p *click.Packet) {
	old := ctx.SetFunc(fnHandoff)
	ctx.LoadBytes(p.Addr, HeaderBytes)
	ctx.SetFunc(old)
}
