// Package click implements a Click-inspired modular packet-processing
// framework (Kohler et al., TOCS 2000), the programmability layer the
// paper builds on. Processing is composed from elements; a pipeline of
// elements, fed by a packet source, forms one packet-processing "flow"
// that is pinned to one simulated core.
//
// Elements do real work on real packet bytes, and simultaneously emit the
// corresponding micro-operation trace (loads, stores, compute bursts)
// through a Ctx; the hw engine replays that trace against the simulated
// memory hierarchy. A pipeline therefore implements hw.PacketSource.
package click

import "pktpredict/internal/hw"

// Packet is one packet in flight: real bytes plus the simulated address
// of the buffer holding them.
type Packet struct {
	// Data is the packet's contents, starting at the IPv4 header.
	Data []byte
	// Addr is the simulated address of Data[0].
	Addr hw.Addr
	// Recycler, if non-nil, returns the packet's buffer to its pool when
	// the pipeline finishes with it.
	Recycler Recycler
	// Trace is the packet's sampled trace ID, zero for the unsampled
	// majority. A staged chain's stage 0 tags one in N packets; the ID
	// rides the hand-off descriptors so every stage attributes its exec
	// span to the same trace (see internal/obs).
	Trace uint64
	// Enq is the core-clock timestamp (virtual cycles) at which the packet
	// was enqueued into its flow's receive ring — the start of its
	// end-to-end latency. It rides the packet through hand-off rings so
	// the terminal stage can record finish − Enq.
	Enq uint64
	// pool-internal handle, opaque to elements.
	PoolIndex int
}

// LineAddrs calls fn for the simulated address of each cache line the
// byte range [off, off+n) of the packet touches.
func (p *Packet) LineAddrs(off, n int, fn func(hw.Addr)) {
	if n <= 0 {
		return
	}
	start := p.Addr + hw.Addr(off)
	first := hw.LineOf(start)
	last := hw.LineOf(start + hw.Addr(n) - 1)
	for a := first; a <= last; a += hw.LineSize {
		fn(a)
	}
}

// Recycler returns packet buffers to their pool, emitting the trace of
// the free-list manipulation (the paper's skb_recycle function).
type Recycler interface {
	Recycle(ctx *Ctx, p *Packet)
}
