package click

import "fmt"

// Stage support: a pipeline graph can be cut into consecutive stages that
// run on different cores, connected by hand-off rings (the Section 2.2
// "pipeline" deployment). The cut is declared by assigning nodes to stage
// indices; execution of one stage's sub-walks is driven by a StageRunner,
// which stops a packet's walk at the first edge leaving its stage and
// reports the node the next stage must resume at. The Pipeline itself
// still executes run-to-completion (EmitPacket ignores stages), so solo
// profiling of a staged graph measures the same work a single core would
// do.

// AssignStages cuts the graph: stageOf maps element names to stage
// indices; every unlisted node inherits the maximum stage of its
// predecessors (the head defaults to 0), so declaring just the entry
// elements of each cut is enough. It validates that stage indices are
// contiguous from 0, that the head is in stage 0, and that every edge
// stays within its stage or crosses to the next one. Call it after any
// structural edits (PushFront/InsertBefore); the assignment is final.
func (pl *Pipeline) AssignStages(stageOf map[string]int) error {
	byName := make(map[string]*Node, len(pl.nodes))
	for _, n := range pl.nodes {
		byName[n.Name] = n
		n.Stage = 0
	}
	explicit := make(map[*Node]bool, len(stageOf))
	for name, s := range stageOf {
		n, ok := byName[name]
		if !ok {
			return fmt.Errorf("click: stage assignment names unknown element %q", name)
		}
		if s < 0 {
			return fmt.Errorf("click: element %q assigned negative stage %d", name, s)
		}
		n.Stage = s
		explicit[n] = true
	}

	// Inherit: in topological order, an unassigned node joins the latest
	// stage any predecessor runs in.
	preds := make(map[*Node][]*Node, len(pl.nodes))
	for _, n := range pl.nodes {
		for _, t := range n.Out {
			if t != nil {
				preds[t] = append(preds[t], n)
			}
		}
	}
	for _, n := range pl.nodes {
		if explicit[n] {
			continue
		}
		for _, p := range preds[n] {
			if p.Stage > n.Stage {
				n.Stage = p.Stage
			}
		}
	}

	if pl.head != nil && pl.head.Stage != 0 {
		return fmt.Errorf("click: head element %q must be in stage 0, not %d", pl.head.Name, pl.head.Stage)
	}
	max := 0
	seen := map[int]bool{}
	for _, n := range pl.nodes {
		seen[n.Stage] = true
		if n.Stage > max {
			max = n.Stage
		}
	}
	for s := 0; s <= max; s++ {
		if !seen[s] {
			return fmt.Errorf("click: stage %d is empty; stages must be contiguous from 0", s)
		}
	}
	for _, n := range pl.nodes {
		for _, t := range n.Out {
			if t == nil {
				continue
			}
			if t.Stage != n.Stage && t.Stage != n.Stage+1 {
				return fmt.Errorf("click: edge %s -> %s crosses from stage %d to stage %d; cuts may only hand packets to the next stage",
					n.Name, t.Name, n.Stage, t.Stage)
			}
		}
	}
	pl.numStages = max + 1
	pl.reindex()
	return nil
}

// NumStages returns how many stages the graph is cut into (1 when
// AssignStages was never called).
func (pl *Pipeline) NumStages() int {
	if pl.numStages == 0 {
		return 1
	}
	return pl.numStages
}

// HeadIndex returns the node index a stage-0 walk enters at, or -1 for a
// bare-source pipeline.
func (pl *Pipeline) HeadIndex() int {
	if pl.head == nil {
		return -1
	}
	if pl.idx == nil {
		pl.reindex()
	}
	return pl.idx[pl.head]
}

// reindex rebuilds the node→index map used to communicate resume points
// across stages.
func (pl *Pipeline) reindex() {
	pl.idx = make(map[*Node]int, len(pl.nodes))
	for i, n := range pl.nodes {
		pl.idx[n] = i
	}
}

// StageRunner executes one stage's share of packet walks. Each runner
// owns its trace context and walk stack, so the stages of one pipeline
// can run on different goroutines concurrently: a runner only processes
// (and only touches the counters of) nodes assigned to its stage, and the
// packet itself is owned by exactly one stage at a time. The exported
// counters are written solely by the runner's goroutine; read them only
// at synchronisation points.
type StageRunner struct {
	pl    *Pipeline
	stage int
	ctx   Ctx
	stack []*Node

	Received   uint64 // packets entering this stage
	Handed     uint64 // packets passed on to the next stage
	Finished   uint64 // packets whose walk ended here with a completed branch
	Dropped    uint64 // packets whose walk ended here with no completed branch
	CutDropped uint64 // branches lost because the packet had already been handed off
}

// StageRunner builds a runner for the given stage of a staged pipeline.
func (pl *Pipeline) StageRunner(stage int) (*StageRunner, error) {
	if stage < 0 || stage >= pl.NumStages() {
		return nil, fmt.Errorf("click: pipeline %q has %d stages; no stage %d", pl.Name, pl.NumStages(), stage)
	}
	if pl.idx == nil {
		pl.reindex()
	}
	return &StageRunner{pl: pl, stage: stage}, nil
}

// Ctx returns the runner's trace context; callers set Ctx().Ops before a
// Walk and read the accumulated trace after.
func (sr *StageRunner) Ctx() *Ctx { return &sr.ctx }

// Stage returns the stage index the runner executes.
func (sr *StageRunner) Stage() int { return sr.stage }

// Reset zeroes the runner's packet counters (measurement-window start).
func (sr *StageRunner) Reset() {
	sr.Received, sr.Handed, sr.Finished, sr.Dropped, sr.CutDropped = 0, 0, 0, 0, 0
}

// Walk runs p through the runner's stage starting at node index entry
// (the pipeline head for stage 0, or the resume node a hand-off
// delivered). It returns the node index the next stage must resume at,
// or next == -1 when the packet's walk terminated in this stage — the
// packet is then recycled here, which for a later stage models the
// cross-core buffer return the paper charges to pipelining.
//
// priorFinished carries the packet-level outcome across cuts: whether a
// branch already completed in an earlier stage. A terminating walk
// counts the packet finished when any branch anywhere completed — the
// same per-packet rule Pipeline.walk applies run-to-completion — and a
// handing-off walk returns the accumulated flag for the next stage's
// ring slot. A walk can hand off at most once: if a second branch
// reaches the cut (a Tee broadcasting across it), that branch is lost
// and counted in CutDropped.
func (sr *StageRunner) Walk(p *Packet, entry int, priorFinished bool) (next int, finished bool) {
	sr.Received++
	n := sr.pl.nodes[entry]
	res, stack := walkNodes(&sr.ctx, sr.stack, n, p, sr.stage)
	sr.stack = stack[:0]
	sr.CutDropped += uint64(res.extraCross)
	finished = priorFinished || res.finished > 0
	if res.handoff != nil {
		sr.Handed++
		next, ok := sr.pl.idx[res.handoff]
		if !ok {
			panic(fmt.Sprintf("click: pipeline %q restructured after AssignStages", sr.pl.Name))
		}
		return next, finished
	}
	if finished {
		sr.Finished++
	} else {
		sr.Dropped++
	}
	if p.Recycler != nil {
		p.Recycler.Recycle(&sr.ctx, p)
	}
	return -1, finished
}
