package click

import (
	"strings"
	"testing"
)

// stagePipeline builds src -> a -> cls; cls[0] -> b -> tail; cls[1] -> drop
// with a branching middle, for stage-cut tests.
func stagePipeline(t *testing.T, count int) *Pipeline {
	t.Helper()
	cfg := `
		src :: SeqSource(COUNT ` + itoa(count) + `);
		a :: TElem;
		cls :: TCls;
		b :: TElem;
		tail :: TElem;
		drop :: TDrop;
		src -> a -> cls;
		cls[0] -> b -> tail;
		cls[1] -> drop;
	`
	pl, err := ParseConfig(testEnv(), "staged", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	return pl
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestAssignStagesInheritsDownstream(t *testing.T) {
	pl := stagePipeline(t, 1)
	if err := pl.AssignStages(map[string]int{"b": 1}); err != nil {
		t.Fatal(err)
	}
	if pl.NumStages() != 2 {
		t.Fatalf("NumStages = %d, want 2", pl.NumStages())
	}
	want := map[string]int{"a": 0, "cls": 0, "drop": 0, "b": 1, "tail": 1}
	for _, n := range pl.Nodes() {
		if n.Stage != want[n.Name] {
			t.Fatalf("node %s in stage %d, want %d", n.Name, n.Stage, want[n.Name])
		}
	}
}

func TestAssignStagesValidation(t *testing.T) {
	cases := []struct {
		name    string
		stages  map[string]int
		wantSub string
	}{
		{"unknown element", map[string]int{"nope": 1}, "unknown element"},
		{"negative stage", map[string]int{"b": -1}, "negative stage"},
		{"head not stage 0", map[string]int{"a": 1}, "stage 0"},
		{"gap in stages", map[string]int{"b": 2}, "contiguous"},
		{"backward edge", map[string]int{"cls": 1, "b": 0, "tail": 1}, "crosses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := stagePipeline(t, 1)
			err := pl.AssignStages(tc.stages)
			if err == nil {
				t.Fatal("invalid stage assignment accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestUnstagedPipelineHasOneStage(t *testing.T) {
	pl := stagePipeline(t, 1)
	if pl.NumStages() != 1 {
		t.Fatalf("NumStages = %d, want 1", pl.NumStages())
	}
	if _, err := pl.StageRunner(1); err == nil {
		t.Fatal("StageRunner(1) on an unstaged pipeline succeeded")
	}
}

// TestStageRunnersHandAcrossCut drives the two runners by hand (the
// runtime drives them through a handoff ring): stage-0 walks either end
// at the local drop branch or report the stage-1 resume node; stage-1
// walks terminate.
func TestStageRunnersHandAcrossCut(t *testing.T) {
	const count = 6
	pl := stagePipeline(t, count)
	if err := pl.AssignStages(map[string]int{"b": 1}); err != nil {
		t.Fatal(err)
	}
	sr0, err := pl.StageRunner(0)
	if err != nil {
		t.Fatal(err)
	}
	sr1, err := pl.StageRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	head := pl.HeadIndex()
	handed, terminal := 0, 0
	for {
		sr0.Ctx().Ops = nil
		p := pl.Source.Pull(sr0.Ctx())
		if p == nil {
			break
		}
		next, _ := sr0.Walk(p, head, false)
		if next < 0 {
			terminal++
			continue
		}
		if pl.Nodes()[next].Name != "b" {
			t.Fatalf("hand-off resumes at %s, want b", pl.Nodes()[next].Name)
		}
		handed++
		sr1.Ctx().Ops = nil
		if got, _ := sr1.Walk(p, next, false); got != -1 {
			t.Fatalf("stage-1 walk handed off again (node %d)", got)
		}
	}
	if handed == 0 || terminal == 0 {
		t.Fatalf("classifier split degenerate: handed %d, local terminals %d", handed, terminal)
	}
	if sr0.Received != count || sr0.Handed != uint64(handed) || sr0.Dropped != uint64(terminal) {
		t.Fatalf("stage-0 counters: %+v (handed %d, terminal %d)", *sr0, handed, terminal)
	}
	if sr1.Received != uint64(handed) || sr1.Finished != uint64(handed) || sr1.Dropped != 0 {
		t.Fatalf("stage-1 counters: received %d finished %d dropped %d, want %d/%d/0",
			sr1.Received, sr1.Finished, sr1.Dropped, handed, handed)
	}
	// Chain-level conservation: every packet reached exactly one terminal.
	entered := sr0.Received
	terminals := sr0.Finished + sr0.Dropped + sr1.Finished + sr1.Dropped
	if entered != terminals {
		t.Fatalf("conservation: %d entered, %d terminals", entered, terminals)
	}
}

// TestStageWalkHandsOffAtMostOnce: a Tee broadcasting across the cut may
// hand the packet over only once; the lost branch lands in CutDropped and
// the packet still reaches exactly one terminal.
func TestStageWalkHandsOffAtMostOnce(t *testing.T) {
	cfg := `
		src :: SeqSource(COUNT 3);
		tee :: TTee;
		x :: TElem;
		y :: TElem;
		src -> tee;
		tee[0] -> x;
		tee[1] -> y;
	`
	pl, err := ParseConfig(testEnv(), "teecut", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.AssignStages(map[string]int{"x": 1, "y": 1}); err != nil {
		t.Fatal(err)
	}
	sr0, _ := pl.StageRunner(0)
	sr1, _ := pl.StageRunner(1)
	for i := 0; i < 3; i++ {
		sr0.Ctx().Ops = nil
		p := pl.Source.Pull(sr0.Ctx())
		next, _ := sr0.Walk(p, pl.HeadIndex(), false)
		if next < 0 {
			t.Fatal("tee walk did not hand off")
		}
		if pl.Nodes()[next].Name != "x" {
			t.Fatalf("hand-off resumes at %s, want x (port-0 branch wins)", pl.Nodes()[next].Name)
		}
		if got, _ := sr1.Walk(p, next, false); got != -1 {
			t.Fatal("stage-1 walk did not terminate")
		}
	}
	if sr0.CutDropped != 3 {
		t.Fatalf("CutDropped = %d, want 3 (one lost branch per packet)", sr0.CutDropped)
	}
	if sr0.Handed != 3 || sr1.Finished != 3 {
		t.Fatalf("handed %d finished %d, want 3/3", sr0.Handed, sr1.Finished)
	}
}

// TestStageWalkCarriesFinishedAcrossCut: a branch that completes before
// the cut decides the packet's outcome even when the post-cut remainder
// drops — matching what Pipeline.walk would count run-to-completion on
// the identical graph.
func TestStageWalkCarriesFinishedAcrossCut(t *testing.T) {
	const count = 4
	cfg := `
		src :: SeqSource(COUNT ` + itoa(count) + `);
		tee :: TTee;
		wire :: TElem;
		fw :: TDrop;
		src -> tee;
		tee[0] -> wire;
		tee[1] -> fw;
	`
	pl, err := ParseConfig(testEnv(), "fincut", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.AssignStages(map[string]int{"fw": 1}); err != nil {
		t.Fatal(err)
	}
	sr0, _ := pl.StageRunner(0)
	sr1, _ := pl.StageRunner(1)
	for i := 0; i < count; i++ {
		sr0.Ctx().Ops = nil
		p := pl.Source.Pull(sr0.Ctx())
		next, fin := sr0.Walk(p, pl.HeadIndex(), false)
		if next < 0 {
			t.Fatal("walk did not hand off")
		}
		if !fin {
			t.Fatal("finished flag lost at the cut: the wire branch completed before it")
		}
		if got, _ := sr1.Walk(p, next, fin); got != -1 {
			t.Fatal("stage-1 walk did not terminate")
		}
	}
	// Every packet completed its wire branch upstream, so despite the
	// stage-1 drop the packets count finished — exactly the
	// run-to-completion outcome.
	if sr1.Finished != count || sr1.Dropped != 0 {
		t.Fatalf("stage-1 outcome: finished %d dropped %d, want %d/0", sr1.Finished, sr1.Dropped, count)
	}
}

func TestBroadcastPacketLevelOutcome(t *testing.T) {
	// One branch finishes, one drops: the packet finished. Both branches
	// dropping: the packet dropped.
	cfg := `
		src :: SeqSource(COUNT 2);
		tee :: TTee;
		a :: TDrop;
		b :: TDrop;
		src -> tee;
		tee[0] -> a;
		tee[1] -> b;
	`
	pl, err := ParseConfig(testEnv(), "alldrop", cfg)
	if err != nil {
		t.Fatal(err)
	}
	runAll(pl)
	if pl.Received != 2 || pl.Dropped != 2 || pl.Finished != 0 {
		t.Fatalf("all-drop tee: recv %d fin %d drop %d, want 2/0/2", pl.Received, pl.Finished, pl.Dropped)
	}
}
