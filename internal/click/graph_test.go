package click

import (
	"strings"
	"testing"
)

// Test doubles for the graph engine: a source whose packets carry a
// sequence number, a fixed two-port classifier, an adaptive round-robin
// router, and a tee.

type seqSource struct {
	remaining int
	seq       int
}

func (s *seqSource) Class() string { return "SeqSource" }
func (s *seqSource) Pull(ctx *Ctx) *Packet {
	if s.remaining == 0 {
		return nil
	}
	s.remaining--
	data := make([]byte, 64)
	data[0] = byte(s.seq)
	s.seq++
	return &Packet{Data: data, Addr: 0x1000}
}

type parityClassifier struct{}

func (parityClassifier) Class() string   { return "TCls" }
func (parityClassifier) NumOutputs() int { return 2 }
func (parityClassifier) Process(ctx *Ctx, p *Packet) Verdict {
	return Output(int(p.Data[0]) % 2)
}

type rrRouter struct{ n, next int }

func (r *rrRouter) Class() string    { return "TRR" }
func (r *rrRouter) NumOutputs() int  { return AdaptiveOutputs }
func (r *rrRouter) SetOutputs(n int) { r.n = n }
func (r *rrRouter) Process(ctx *Ctx, p *Packet) Verdict {
	port := r.next % r.n
	r.next++
	return Output(port)
}

type testTee struct{}

func (testTee) Class() string   { return "TTee" }
func (testTee) NumOutputs() int { return AdaptiveOutputs }
func (testTee) Process(ctx *Ctx, p *Packet) Verdict {
	return Broadcast
}

func init() {
	Register("SeqSource", func(env *Env, args Args) (interface{}, error) {
		n, err := args.Int("COUNT", 1)
		if err != nil {
			return nil, err
		}
		return &seqSource{remaining: n}, nil
	})
	Register("TCls", func(env *Env, args Args) (interface{}, error) {
		return parityClassifier{}, nil
	})
	Register("TRR", func(env *Env, args Args) (interface{}, error) {
		return &rrRouter{}, nil
	})
	Register("TTee", func(env *Env, args Args) (interface{}, error) {
		return testTee{}, nil
	})
}

func runAll(pl *Pipeline) {
	var ops = pl.EmitPacket(nil)
	for len(ops) > 0 {
		ops = pl.EmitPacket(ops[:0])
	}
}

func TestGraphClassifierRoutesBranches(t *testing.T) {
	cfg := `
		src :: SeqSource(COUNT 4);
		cls :: TCls;
		a :: TElem;
		b :: TElem;
		src -> cls;
		cls[0] -> a;
		cls[1] -> b;
	`
	pl, err := ParseConfig(testEnv(), "g", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	runAll(pl)
	if got, _ := pl.Stat("a.finished"); got != 2 {
		t.Fatalf("a.finished = %d, want 2", got)
	}
	if got, _ := pl.Stat("b.finished"); got != 2 {
		t.Fatalf("b.finished = %d, want 2", got)
	}
	if pl.Received != 4 || pl.Finished != 4 || pl.Dropped != 0 {
		t.Fatalf("counters: %d/%d/%d", pl.Received, pl.Finished, pl.Dropped)
	}
}

func TestGraphFanInMergesBranches(t *testing.T) {
	cfg := `
		src :: SeqSource(COUNT 4);
		cls :: TCls;
		sink :: TElem;
		src -> cls;
		cls[0] -> sink;
		cls[1] -> sink;
	`
	pl, err := ParseConfig(testEnv(), "g", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	runAll(pl)
	if got, _ := pl.Stat("sink.finished"); got != 4 {
		t.Fatalf("sink.finished = %d, want 4 (fan-in must merge)", got)
	}
}

func TestGraphRoundRobinAdaptsToConnectedPorts(t *testing.T) {
	cfg := `
		src :: SeqSource(COUNT 6);
		rr :: TRR;
		a :: TElem; b :: TElem; c :: TElem;
		src -> rr;
		rr[0] -> a;
		rr[1] -> b;
		rr[2] -> c;
	`
	pl, err := ParseConfig(testEnv(), "g", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	runAll(pl)
	for _, name := range []string{"a", "b", "c"} {
		if got, _ := pl.Stat(name + ".finished"); got != 2 {
			t.Fatalf("%s.finished = %d, want 2", name, got)
		}
	}
}

func TestGraphTeeBroadcastsToAllBranches(t *testing.T) {
	cfg := `
		src :: SeqSource(COUNT 3);
		tee :: TTee;
		a :: TElem;
		b :: TDrop;
		src -> tee;
		tee[0] -> a;
		tee[1] -> b;
	`
	pl, err := ParseConfig(testEnv(), "g", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	runAll(pl)
	// Every packet finishes on branch a and drops on branch b: the
	// per-branch counters separate the two fates.
	if got, _ := pl.Stat("a.finished"); got != 3 {
		t.Fatalf("a.finished = %d, want 3", got)
	}
	if got, _ := pl.Stat("b.dropped"); got != 3 {
		t.Fatalf("b.dropped = %d, want 3", got)
	}
	// Packet-level outcome: every packet completed on branch a, so none
	// count as dropped and Received == Finished + Dropped holds.
	if pl.Finished != 3 || pl.Dropped != 0 || pl.Received != 3 {
		t.Fatalf("counters: recv %d fin %d drop %d", pl.Received, pl.Finished, pl.Dropped)
	}
}

func TestGraphBranchingString(t *testing.T) {
	cfg := `
		src :: SeqSource(COUNT 1);
		cls :: TCls;
		a :: TElem;
		b :: TElem;
		src -> cls;
		cls[0] -> a;
		cls[1] -> b;
	`
	pl, err := ParseConfig(testEnv(), "g", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if !pl.Branching() {
		t.Fatal("classifier graph must report Branching")
	}
	want := strings.Join([]string{
		"g :: SeqSource -> cls;",
		"cls :: TCls; cls[0] -> a; cls[1] -> b;",
		"a :: TElem;",
		"b :: TElem;",
	}, "\n")
	if got := pl.String(); got != want {
		t.Fatalf("String() =\n%s\nwant\n%s", got, want)
	}
	// A second parse of an equivalent config renders identically: the
	// printed form is deterministic.
	pl2, err := ParseConfig(testEnv(), "g", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.String() != want {
		t.Fatal("String() is not deterministic across parses")
	}
}

func TestGraphErrorsDeterministic(t *testing.T) {
	cases := []struct {
		name, cfg, wantSub string
	}{
		{"port on non-router", `src :: SeqSource; a :: TElem; b :: TElem; src -> a; a[1] -> b;`,
			"is not a Router"},
		{"dup port same target", `src :: SeqSource; a :: TElem; src -> a; src -> a;`,
			"connected twice"},
		{"dup port two targets", `src :: SeqSource; a :: TElem; b :: TElem; src -> a; src -> b;`,
			"two downstream connections"},
		{"adaptive port gap", `src :: SeqSource; rr :: TRR; a :: TElem; src -> rr; rr[1] -> a;`,
			"contiguous"},
		{"fixed router missing port", `src :: SeqSource; cls :: TCls; a :: TElem; src -> cls; cls[0] -> a;`,
			"port 1 of \"cls\" (TCls) is not connected"},
		{"fixed router extra port", "src :: SeqSource; cls :: TCls;\na :: TElem; b :: TElem; c :: TElem;\nsrc -> cls; cls[0] -> a; cls[1] -> b; cls[2] -> c;",
			"has 2 output ports; port 2 connected"},
		{"input port nonzero", `src :: SeqSource; a :: TElem; src -> [1]a;`,
			"single input port 0"},
		{"input port on chain head", `src :: SeqSource; a :: TElem; [7]src -> a;`,
			"single input port 0"},
		{"dangling output port", `src :: SeqSource; a :: TElem; src -> a[1];`,
			"dangling output port"},
		{"bad port number", `src :: SeqSource; a :: TElem; src -> a[x];`,
			"not a port number"},
		{"port out of range", `src :: SeqSource; a :: TElem; src -> a[999];`,
			"outside [0,255]"},
		{"cycle", "src :: SeqSource;\na :: TElem;\nb :: TElem;\nsrc -> a;\na -> b;\nb -> a;",
			`cycle through "a"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(testEnv(), "t", tc.cfg)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
			// Errors must be stable: parse again, expect the identical text.
			_, err2 := ParseConfig(testEnv(), "t", tc.cfg)
			if err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("error not deterministic: %q vs %q", err, err2)
			}
		})
	}
}

func TestPipelinePushFrontAndInsertBefore(t *testing.T) {
	src := &seqSource{remaining: 2}
	mid := &testElement{class: "Mid", verdict: Continue}
	last := &testElement{class: "Last", verdict: Consume}
	pl := NewPipeline("p", src, mid, last)

	front := &testElement{class: "Front", verdict: Continue}
	pl.PushFront(front)
	ins := &testElement{class: "Ins", verdict: Continue}
	if err := pl.InsertBefore("Last", ins); err != nil {
		t.Fatal(err)
	}
	if err := pl.InsertBefore("Nope", ins); err == nil {
		t.Fatal("InsertBefore of unknown class must error")
	}

	var classes []string
	for _, el := range pl.Elements() {
		classes = append(classes, el.Class())
	}
	want := "Front Mid Ins Last"
	if got := strings.Join(classes, " "); got != want {
		t.Fatalf("element order %q, want %q", got, want)
	}
	runAll(pl)
	if front.seen != 2 || mid.seen != 2 || ins.seen != 2 || last.seen != 2 {
		t.Fatalf("element visits: %d %d %d %d", front.seen, mid.seen, ins.seen, last.seen)
	}
	if pl.Finished != 2 {
		t.Fatalf("finished = %d, want 2", pl.Finished)
	}
}

func TestGraphUnconnectedRouterlessPortDrops(t *testing.T) {
	// A plain element returning Output(1) at run time — a programming
	// error the validator cannot see — must surface as a drop, not a
	// panic.
	src := &seqSource{remaining: 1}
	rogue := &testElement{class: "Rogue", verdict: Output(1)}
	pl := NewPipeline("p", src, rogue)
	runAll(pl)
	if pl.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", pl.Dropped)
	}
}
