package click

import (
	"fmt"
	"strings"

	"pktpredict/internal/hw"
)

// Pipeline is a linear chain of elements fed by a source: one
// packet-processing flow. It implements hw.PacketSource, so it can be
// attached directly to a simulated core.
type Pipeline struct {
	Name     string
	Source   Source
	Elements []Element

	// Counters.
	Received uint64 // packets pulled from the source
	Dropped  uint64 // packets dropped by an element
	Finished uint64 // packets that reached the end or were consumed

	ctx Ctx
}

// NewPipeline assembles a pipeline. It is also the target of the
// configuration parser.
func NewPipeline(name string, src Source, elements ...Element) *Pipeline {
	return &Pipeline{Name: name, Source: src, Elements: elements}
}

// EmitPacket implements hw.PacketSource: it pulls one packet, runs it
// through the element chain, and returns the accumulated trace.
func (pl *Pipeline) EmitPacket(buf []hw.Op) []hw.Op {
	pl.ctx.Ops = buf
	p := pl.Source.Pull(&pl.ctx)
	if p == nil {
		return buf[:0]
	}
	pl.Received++
	verdict := Continue
	for _, el := range pl.Elements {
		verdict = el.Process(&pl.ctx, p)
		if verdict != Continue {
			break
		}
	}
	if verdict == Drop {
		pl.Dropped++
	} else {
		pl.Finished++
	}
	if p.Recycler != nil {
		p.Recycler.Recycle(&pl.ctx, p)
	}
	return pl.ctx.Ops
}

// String renders the pipeline in config-like syntax.
func (pl *Pipeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s :: %s", pl.Name, pl.Source.Class())
	for _, el := range pl.Elements {
		fmt.Fprintf(&b, " -> %s", el.Class())
	}
	return b.String()
}

// Totals returns the pipeline's packet counters in one snapshot, for
// callers (such as the concurrent runtime's telemetry aggregator) that
// difference counters across measurement windows.
func (pl *Pipeline) Totals() (received, dropped, finished uint64) {
	return pl.Received, pl.Dropped, pl.Finished
}

// Stat aggregates pipeline counters and element counters: "received",
// "dropped", "finished", or "<ElementClass>.<name>".
func (pl *Pipeline) Stat(name string) (uint64, bool) {
	switch name {
	case "received":
		return pl.Received, true
	case "dropped":
		return pl.Dropped, true
	case "finished":
		return pl.Finished, true
	}
	if class, rest, ok := strings.Cut(name, "."); ok {
		for _, el := range pl.Elements {
			if el.Class() != class {
				continue
			}
			if s, isStats := el.(Stats); isStats {
				if v, found := s.Stat(rest); found {
					return v, true
				}
			}
		}
	}
	return 0, false
}
