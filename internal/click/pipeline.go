package click

import (
	"fmt"
	"strings"

	"pktpredict/internal/hw"
)

// Node is one vertex of a pipeline graph: an element, its outgoing edges
// indexed by output port (nil entries are unconnected), and per-branch
// terminal counters. Packets whose walk ends at this node — dropped here,
// consumed here, or run off the end of the chain here — are counted here,
// which is what gives a branching pipeline per-branch drop/finish
// accounting.
type Node struct {
	Name string
	El   Element
	Out  []*Node

	// Stage is the pipeline stage the node executes in when the graph is
	// cut across cores (see AssignStages); 0 for run-to-completion graphs.
	Stage int

	// Elem is the node's slot in its flow's per-element attribution table
	// (hw.ElemCell); the walker brackets Process with Ctx.SetElem so every
	// op the element emits carries it. 0 — the flow overhead slot — until
	// the runtime assigns slots after graph surgery is done.
	Elem uint16

	Dropped  uint64 // packet branches whose walk terminated here with a drop
	Finished uint64 // packet branches consumed here or past the last element
}

// out returns the node connected at port, or nil.
func (n *Node) out(port int) *Node {
	if port < 0 || port >= len(n.Out) {
		return nil
	}
	return n.Out[port]
}

// connect attaches target to the node's output port, growing the port
// vector as needed.
func (n *Node) connect(port int, target *Node) {
	for len(n.Out) <= port {
		n.Out = append(n.Out, nil)
	}
	n.Out[port] = target
}

// Pipeline is a directed acyclic graph of elements fed by a source: one
// packet-processing flow. It implements hw.PacketSource, so it can be
// attached directly to a simulated core. The common case is still a
// linear chain; Router elements (classifiers, switches, tees) fan the
// graph out into branches.
type Pipeline struct {
	Name   string
	Source Source

	// Counters, all per packet so that Received == Finished + Dropped
	// holds exactly: a packet whose walk completes on at least one branch
	// (a Tee may fan it out to several) counts as finished, a packet no
	// branch of which completed counts as dropped. Per-branch terminal
	// counts live on the nodes.
	Received uint64 // packets pulled from the source
	Dropped  uint64 // packets that completed on no branch
	Finished uint64 // packets that completed on at least one branch

	head    *Node
	nodes   []*Node // topological order, head first
	srcName string  // source's config name (ParseConfig-built pipelines)

	numStages int           // 0 until AssignStages cuts the graph
	idx       map[*Node]int // node → index, for cross-stage resume points

	ctx   Ctx
	stack []*Node
}

// NewPipeline assembles a linear pipeline from a source and an element
// chain. Configurations with branches are built through ParseConfig.
func NewPipeline(name string, src Source, elements ...Element) *Pipeline {
	pl := &Pipeline{Name: name, Source: src}
	var prev *Node
	for i, el := range elements {
		n := &Node{Name: fmt.Sprintf("%s@%d", el.Class(), i+1), El: el}
		pl.nodes = append(pl.nodes, n)
		if prev == nil {
			pl.head = n
		} else {
			prev.connect(0, n)
		}
		prev = n
	}
	return pl
}

// newGraphPipeline wraps an already-validated graph: nodes must be in
// topological order with nodes[0] the head (empty for a bare source).
func newGraphPipeline(name string, src Source, nodes []*Node) *Pipeline {
	pl := &Pipeline{Name: name, Source: src, nodes: nodes}
	if len(nodes) > 0 {
		pl.head = nodes[0]
	}
	return pl
}

// Nodes returns the pipeline's nodes in topological order, head first.
// Callers must not restructure the graph through them.
func (pl *Pipeline) Nodes() []*Node { return pl.nodes }

// SourceName returns the configuration name of the pipeline's source
// element ("" for programmatically built pipelines). State bindings
// recorded under this label belong to the build-time source — a runtime
// that replaces the source (e.g. with a receive ring) treats them as
// dead weight, not migratable flow state.
func (pl *Pipeline) SourceName() string { return pl.srcName }

// Elements returns the pipeline's elements in topological order — for a
// linear pipeline, exactly the chain order.
func (pl *Pipeline) Elements() []Element {
	out := make([]Element, len(pl.nodes))
	for i, n := range pl.nodes {
		out[i] = n.El
	}
	return out
}

// Branching reports whether the graph is anything other than a single
// linear chain: an output port above 0, a node with several connected
// outputs, or a fan-in.
func (pl *Pipeline) Branching() bool {
	indeg := make(map[*Node]int, len(pl.nodes))
	for _, n := range pl.nodes {
		connected := 0
		for port, t := range n.Out {
			if t == nil {
				continue
			}
			connected++
			indeg[t]++
			if port > 0 {
				return true
			}
		}
		if connected > 1 {
			return true
		}
	}
	for _, d := range indeg {
		if d > 1 {
			return true
		}
	}
	return false
}

// uniqueName derives a node name not yet used in the pipeline.
func (pl *Pipeline) uniqueName(base string) string {
	used := make(map[string]bool, len(pl.nodes))
	for _, n := range pl.nodes {
		used[n.Name] = true
	}
	if !used[base] {
		return base
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s@%d", base, i)
		if !used[name] {
			return name
		}
	}
}

// PushFront inserts el ahead of the current head: every packet traverses
// it first. It is how the runtime attaches a Control element to an
// already-parsed pipeline.
func (pl *Pipeline) PushFront(el Element) {
	n := &Node{Name: pl.uniqueName(el.Class()), El: el}
	if pl.head != nil {
		n.connect(0, pl.head)
	}
	pl.head = n
	pl.nodes = append([]*Node{n}, pl.nodes...)
	pl.idx = nil // indices shifted; AssignStages/StageRunner rebuild
}

// InsertBefore splices el in front of the first node (in topological
// order) whose element class is class: every edge into that node is
// re-targeted through el. It returns an error when no such node exists.
func (pl *Pipeline) InsertBefore(class string, el Element) error {
	var target *Node
	idx := -1
	for i, n := range pl.nodes {
		if n.El.Class() == class {
			target, idx = n, i
			break
		}
	}
	if target == nil {
		return fmt.Errorf("click: pipeline %q has no %s element to insert before", pl.Name, class)
	}
	n := &Node{Name: pl.uniqueName(el.Class()), El: el}
	n.connect(0, target)
	for _, m := range pl.nodes {
		for port, t := range m.Out {
			if t == target {
				m.Out[port] = n
			}
		}
	}
	if pl.head == target {
		pl.head = n
	}
	pl.nodes = append(pl.nodes[:idx], append([]*Node{n}, pl.nodes[idx:]...)...)
	pl.idx = nil // indices shifted; AssignStages/StageRunner rebuild
	return nil
}

// EmitPacket implements hw.PacketSource: it pulls one packet, walks it
// through the element graph, and returns the accumulated trace.
//
//dataplane:hotpath
func (pl *Pipeline) EmitPacket(buf []hw.Op) []hw.Op {
	pl.ctx.Ops = buf
	p := pl.Source.Pull(&pl.ctx)
	if p == nil {
		return buf[:0]
	}
	pl.Received++
	if pl.head == nil {
		pl.Finished++
	} else {
		pl.walk(p)
	}
	if p.Recycler != nil {
		p.Recycler.Recycle(&pl.ctx, p)
	}
	return pl.ctx.Ops
}

// walk runs one packet through the whole graph and records its
// packet-level outcome: finished when at least one branch completed.
//
//dataplane:hotpath
func (pl *Pipeline) walk(p *Packet) {
	res, stack := walkNodes(&pl.ctx, pl.stack, pl.head, p, -1)
	pl.stack = stack[:0]
	if res.finished > 0 {
		pl.Finished++
	} else {
		pl.Dropped++
	}
}

// walkResult summarises one packet's (sub-)walk.
type walkResult struct {
	finished   int   // branches that completed (consumed or ran off the end)
	handoff    *Node // first node reached outside the walk's stage, if any
	extraCross int   // further branches that reached the cut after the hand-off
}

// walkNodes runs one packet from entry through the graph. Branches
// created by Broadcast process the same packet bytes sequentially in port
// order; the explicit stack makes the traversal allocation-free in steady
// state. When stage is non-negative, only nodes assigned that stage are
// processed: the first edge leading elsewhere becomes the hand-off target
// and the branch stops there (the pipeline hands each packet across a cut
// at most once — a later branch reaching the cut is lost and counted in
// extraCross, since the packet's buffer has already been promised to the
// next core).
//
//dataplane:hotpath
func walkNodes(ctx *Ctx, stack []*Node, entry *Node, p *Packet, stage int) (walkResult, []*Node) {
	var res walkResult
	stack = append(stack[:0], entry)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if stage >= 0 && n.Stage != stage {
			if res.handoff == nil {
				res.handoff = n
			} else {
				// The node across the cut belongs to another core's stage;
				// its counters are not ours to touch. The lost branch is
				// accounted on the runner.
				res.extraCross++
			}
			continue
		}
		oldElem := ctx.SetElem(n.Elem)
		v := n.El.Process(ctx, p)
		ctx.SetElem(oldElem)
		switch {
		case v == Drop:
			n.Dropped++
		case v == Consume:
			n.Finished++
			res.finished++
		case v == Broadcast:
			sent := false
			// Reverse push so port 0's branch walks first.
			for i := len(n.Out) - 1; i >= 0; i-- {
				if n.Out[i] != nil {
					stack = append(stack, n.Out[i])
					sent = true
				}
			}
			if !sent {
				n.Finished++
				res.finished++
			}
		case v >= 0:
			if next := n.out(int(v)); next != nil {
				stack = append(stack, next)
			} else if v == Continue {
				// Ran off the end of a chain: the packet completed.
				n.Finished++
				res.finished++
			} else {
				// Routed to an unconnected port — a configuration gap the
				// validator admits only for non-Router elements.
				n.Dropped++
			}
		default:
			n.Dropped++
		}
	}
	return res, stack
}

// String renders the pipeline in config-like syntax. A linear chain keeps
// the compact one-line form; a branching graph is rendered one node per
// line with explicit port syntax (el[1] -> ...).
func (pl *Pipeline) String() string {
	if !pl.Branching() {
		var b strings.Builder
		fmt.Fprintf(&b, "%s :: %s", pl.Name, pl.Source.Class())
		for n := pl.head; n != nil; n = n.out(0) {
			fmt.Fprintf(&b, " -> %s", n.El.Class())
		}
		return b.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s :: %s -> %s;", pl.Name, pl.Source.Class(), pl.head.Name)
	for _, n := range pl.nodes {
		fmt.Fprintf(&b, "\n%s :: %s", n.Name, n.El.Class())
		connected := 0
		for _, t := range n.Out {
			if t != nil {
				connected++
			}
		}
		for port, t := range n.Out {
			if t == nil {
				continue
			}
			if port == 0 && connected == 1 {
				fmt.Fprintf(&b, "; %s -> %s", n.Name, t.Name)
			} else {
				fmt.Fprintf(&b, "; %s[%d] -> %s", n.Name, port, t.Name)
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Totals returns the pipeline's packet counters in one snapshot, for
// callers (such as the concurrent runtime's telemetry aggregator) that
// difference counters across measurement windows.
func (pl *Pipeline) Totals() (received, dropped, finished uint64) {
	return pl.Received, pl.Dropped, pl.Finished
}

// Stat aggregates pipeline counters, per-branch node counters, and
// element counters: "received", "dropped", "finished",
// "<node>.dropped"/"<node>.finished" for a node's terminal counts, or
// "<ElementClass>.<name>" for an element's own counters.
func (pl *Pipeline) Stat(name string) (uint64, bool) {
	switch name {
	case "received":
		return pl.Received, true
	case "dropped":
		return pl.Dropped, true
	case "finished":
		return pl.Finished, true
	}
	if prefix, rest, ok := strings.Cut(name, "."); ok {
		for _, n := range pl.nodes {
			if n.Name != prefix {
				continue
			}
			switch rest {
			case "dropped":
				return n.Dropped, true
			case "finished":
				return n.Finished, true
			}
		}
		for _, n := range pl.nodes {
			if n.El.Class() != prefix {
				continue
			}
			if s, isStats := n.El.(Stats); isStats {
				if v, found := s.Stat(rest); found {
					return v, true
				}
			}
		}
	}
	return 0, false
}
