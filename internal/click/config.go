package click

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// maxPort bounds output port numbers in configurations; it exists to
// reject absurd port vectors, not to constrain real fan-out.
const maxPort = 255

// ParseConfig builds a pipeline from a Click-style configuration:
//
//	// declarations
//	src :: FromDevice(SIZE 64, SEED 7);
//	cls :: IPClassifier(tcp, udp, -);
//	nat :: IPRewriter(CAPACITY 65536);
//
//	// connections (inline anonymous elements are allowed)
//	src -> CheckIPHeader -> cls;
//	cls[0] -> nat -> ToDevice;
//	cls[1] -> nat;
//	cls[2] -> Discard;
//
// The element graph must be a DAG with a single Source at its head.
// Output ports are written el[port] on the upstream side; Router
// elements (classifiers, switches, tees) fan out across numbered ports,
// and every port a Router declares must be connected. All elements have
// a single input, so fan-in needs no port syntax ([0]el is accepted).
func ParseConfig(env *Env, name, config string) (*Pipeline, error) {
	stmts, err := lex(config)
	if err != nil {
		return nil, err
	}

	// When the graph will be cut into stages, resolve each element's
	// stage before construction so its state allocates from the arena of
	// the worker that will run it (per-stage NUMA-local placement).
	var plan map[string]int
	if len(env.StageOf) > 0 && env.ArenaAt != nil {
		plan = stagePlan(stmts, env.StageOf)
	}

	nodes := make(map[string]*graphNode)
	order := []*graphNode{} // declaration order, for deterministic errors
	anon := 0

	declare := func(nm, class string, args Args) (*graphNode, error) {
		if _, dup := nodes[nm]; dup {
			return nil, fmt.Errorf("click: element %q declared twice", nm)
		}
		benv := env
		if plan != nil {
			if a := env.arenaFor(plan[nm]); a != env.Arena {
				e2 := *env
				e2.Arena = a
				benv = &e2
			}
		}
		if benv.Arena != nil {
			// Label the element's allocations so callers can read back
			// exactly where its state landed (apps records these bindings).
			defer benv.Arena.SetLabel(benv.Arena.SetLabel(nm))
		}
		inst, err := NewInstance(benv, class, args)
		if err != nil {
			return nil, fmt.Errorf("click: %q: %w", nm, err)
		}
		n := &graphNode{name: nm, instance: inst, outs: map[int]*graphNode{}}
		nodes[nm] = n
		order = append(order, n)
		return n, nil
	}

	for _, st := range stmts {
		switch st.kind {
		case stmtDecl:
			if _, err := declare(st.name, st.class, st.args); err != nil {
				return nil, err
			}
		case stmtConn:
			var prev *graphNode
			prevPort := 0
			for _, ref := range st.chain {
				var n *graphNode
				if ref.class != "" {
					// Inline anonymous element.
					anon++
					nm := fmt.Sprintf("%s@%d", ref.class, anon)
					var err error
					n, err = declare(nm, ref.class, ref.args)
					if err != nil {
						return nil, err
					}
				} else {
					var ok bool
					n, ok = nodes[ref.name]
					if !ok {
						return nil, fmt.Errorf("click: connection references undeclared element %q", ref.name)
					}
				}
				if ref.inPort != 0 {
					return nil, fmt.Errorf("click: input port %d on %q: elements have a single input port 0", ref.inPort, n.name)
				}
				if prev != nil {
					if _, isRouter := prev.instance.(Router); prevPort > 0 && !isRouter {
						return nil, fmt.Errorf("click: %q (%s) is not a Router; only output port 0 exists", prev.name, classOf(prev.instance))
					}
					if to, dup := prev.outs[prevPort]; dup {
						if to == n {
							return nil, fmt.Errorf("click: output port %d of %q connected twice", prevPort, prev.name)
						}
						return nil, fmt.Errorf("click: output port %d of %q has two downstream connections (%q and %q)",
							prevPort, prev.name, to.name, n.name)
					}
					prev.outs[prevPort] = n
					n.inDeg++
				}
				prev = n
				prevPort = ref.outPort
			}
			if prevPort != 0 {
				return nil, fmt.Errorf("click: dangling output port %d on %q at the end of a chain", prevPort, prev.name)
			}
		}
	}

	// Find the head: the unique node with in-degree 0, which must be a
	// Source.
	var head *graphNode
	for _, n := range order {
		if n.inDeg == 0 {
			if head != nil {
				return nil, fmt.Errorf("click: multiple chain heads (%q and %q); configuration must have one source", head.name, n.name)
			}
			head = n
		}
	}
	if head == nil {
		return nil, fmt.Errorf("click: configuration has no head (cycle?)")
	}
	src, ok := head.instance.(Source)
	if !ok {
		return nil, fmt.Errorf("click: chain head %q (%T) is not a packet source", head.name, head.instance)
	}

	// Every declared element must be reachable from the head.
	reach := map[*graphNode]bool{head: true}
	frontier := []*graphNode{head}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, e := range sortedEdges(n.outs) {
			if !reach[e.to] {
				reach[e.to] = true
				frontier = append(frontier, e.to)
			}
		}
	}
	for _, n := range order {
		if !reach[n] {
			return nil, fmt.Errorf("click: element %q is declared but not connected", n.name)
		}
	}

	// Kahn's algorithm over declaration order: a deterministic topological
	// order, and a deterministic cycle report when none exists.
	indeg := map[*graphNode]int{}
	for _, n := range order {
		for _, e := range sortedEdges(n.outs) {
			indeg[e.to]++
		}
	}
	var topo []*graphNode
	done := map[*graphNode]bool{}
	for len(topo) < len(order) {
		progressed := false
		for _, n := range order {
			if done[n] || indeg[n] != 0 {
				continue
			}
			done[n] = true
			topo = append(topo, n)
			for _, e := range sortedEdges(n.outs) {
				indeg[e.to]--
			}
			progressed = true
		}
		if !progressed {
			for _, n := range order {
				if !done[n] {
					return nil, fmt.Errorf("click: configuration contains a cycle through %q", n.name)
				}
			}
		}
	}

	// Validate elements and router port usage, and wire the final graph.
	built := map[*graphNode]*Node{}
	var finalNodes []*Node
	for _, gn := range topo {
		if gn == head {
			continue
		}
		el, ok := gn.instance.(Element)
		if !ok {
			return nil, fmt.Errorf("click: %q (%T) is not a processing element", gn.name, gn.instance)
		}
		built[gn] = &Node{Name: gn.name, El: el}
		finalNodes = append(finalNodes, built[gn])
	}
	for _, gn := range topo {
		connected := len(gn.outs)
		maxUsed := -1
		for port := range gn.outs {
			if port > maxUsed {
				maxUsed = port
			}
		}
		if r, isRouter := gn.instance.(Router); isRouter {
			switch n := r.NumOutputs(); {
			case n == AdaptiveOutputs:
				if maxUsed+1 != connected {
					return nil, fmt.Errorf("click: %q (%s) output ports must be contiguous from 0; %d ports connected but port %d used",
						gn.name, classOf(gn.instance), connected, maxUsed)
				}
			default:
				if maxUsed >= n {
					return nil, fmt.Errorf("click: %q (%s) has %d output ports; port %d connected",
						gn.name, classOf(gn.instance), n, maxUsed)
				}
				for port := 0; port < n; port++ {
					if _, ok := gn.outs[port]; !ok {
						return nil, fmt.Errorf("click: output port %d of %q (%s) is not connected",
							port, gn.name, classOf(gn.instance))
					}
				}
			}
			if setter, ok := gn.instance.(OutputsSetter); ok {
				setter.SetOutputs(connected)
			}
		}
		if gn == head {
			// The source's single port-0 edge makes its target the first
			// processing node; Kahn necessarily placed that target first
			// among the element nodes, since it is the only one whose sole
			// predecessor is the head.
			continue
		}
		from := built[gn]
		for _, e := range sortedEdges(gn.outs) {
			from.connect(e.port, built[e.to])
		}
	}
	pl := newGraphPipeline(name, src, finalNodes)
	pl.srcName = head.name
	return pl, nil
}

// stagePlan predicts each element's stage assignment from the lexed
// statements, before any element is constructed: explicit entries come
// from stageOf, every other node inherits the maximum stage of its
// predecessors in topological order — the same rule
// Pipeline.AssignStages applies (and later validates) on the built
// graph. Anonymous inline elements are named exactly as the build pass
// names them, so the plan's keys line up. The plan is best-effort: on a
// malformed graph (cycles, duplicates) it returns what it derived and
// leaves error reporting to the build pass, which sees the same input.
func stagePlan(stmts []stmt, stageOf map[string]int) map[string]int {
	type pnode struct {
		name  string
		stage int
		fixed bool
		outs  []*pnode
		indeg int
	}
	nodes := map[string]*pnode{}
	var order []*pnode
	get := func(nm string) *pnode {
		if n, ok := nodes[nm]; ok {
			return n
		}
		n := &pnode{name: nm}
		if s, ok := stageOf[nm]; ok {
			if s > 0 {
				n.stage = s
			}
			n.fixed = true
		}
		nodes[nm] = n
		order = append(order, n)
		return n
	}
	anon := 0
	for _, st := range stmts {
		switch st.kind {
		case stmtDecl:
			get(st.name)
		case stmtConn:
			var prev *pnode
			for _, ref := range st.chain {
				var n *pnode
				if ref.class != "" {
					// Mirrors the build pass's anonymous-element naming.
					anon++
					n = get(fmt.Sprintf("%s@%d", ref.class, anon))
				} else {
					n = get(ref.name)
				}
				if prev != nil && prev != n {
					prev.outs = append(prev.outs, n)
					n.indeg++
				}
				prev = n
			}
		}
	}

	// Kahn in declaration order; unresolvable remainders (cycles the
	// build pass will reject) keep their explicit or zero stage.
	done := map[*pnode]bool{}
	for remaining := len(order); remaining > 0; {
		progressed := false
		for _, n := range order {
			if done[n] || n.indeg != 0 {
				continue
			}
			done[n] = true
			remaining--
			progressed = true
			for _, t := range n.outs {
				t.indeg--
				if !t.fixed && n.stage > t.stage {
					t.stage = n.stage
				}
			}
		}
		if !progressed {
			break
		}
	}
	plan := make(map[string]int, len(order))
	for _, n := range order {
		plan[n.name] = n.stage
	}
	return plan
}

// graphNode is the parser's intermediate representation of one element.
type graphNode struct {
	name     string
	instance interface{}
	outs     map[int]*graphNode
	inDeg    int
}

type portEdge struct {
	port int
	to   *graphNode
}

// sortedEdges returns a node's outgoing edges in port order, so every
// traversal of the parse graph is deterministic.
func sortedEdges(outs map[int]*graphNode) []portEdge {
	edges := make([]portEdge, 0, len(outs))
	for p, t := range outs {
		edges = append(edges, portEdge{p, t})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].port < edges[j].port })
	return edges
}

func classOf(instance interface{}) string {
	switch v := instance.(type) {
	case Element:
		return v.Class()
	case Source:
		return v.Class()
	default:
		return fmt.Sprintf("%T", instance)
	}
}

type stmtKind int

const (
	stmtDecl stmtKind = iota
	stmtConn
)

type elemRef struct {
	name    string // reference to a declared element, or
	class   string // inline anonymous class
	args    Args
	inPort  int // [port]el — must be 0, elements are single-input
	outPort int // el[port] — output port towards the next chain item
}

type stmt struct {
	kind  stmtKind
	name  string // decl
	class string // decl
	args  Args   // decl
	chain []elemRef
}

// lex splits a configuration into statements. The grammar is small enough
// that a hand-rolled scanner is clearer than a table-driven one.
func lex(config string) ([]stmt, error) {
	stripped, err := StripComments(config)
	if err != nil {
		return nil, err
	}
	var stmts []stmt
	for _, ts := range Statements(stripped) {
		s := ts.Text
		// Line numbers are relative to the config text lex was handed —
		// for a scenario's inline graph, the graph block's body.
		at := fmt.Sprintf("statement %d (line %d)", ts.No, ts.Line)
		if name, rest, ok := CutTopLevel(s, "::"); ok {
			name = strings.TrimSpace(name)
			if !isIdent(name) {
				return nil, fmt.Errorf("click: %s: bad element name %q", at, name)
			}
			class, args, err := ParseClassRef(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("click: %s: %w", at, err)
			}
			stmts = append(stmts, stmt{kind: stmtDecl, name: name, class: class, args: args})
			continue
		}
		if strings.Contains(s, "->") {
			parts := SplitTopLevel(s, "->")
			if len(parts) < 2 {
				return nil, fmt.Errorf("click: %s: dangling '->'", at)
			}
			var chain []elemRef
			for _, part := range parts {
				part = strings.TrimSpace(part)
				if part == "" {
					return nil, fmt.Errorf("click: %s: empty element in chain", at)
				}
				ref, err := parseChainItem(part)
				if err != nil {
					return nil, fmt.Errorf("click: %s: %w", at, err)
				}
				chain = append(chain, ref)
			}
			stmts = append(stmts, stmt{kind: stmtConn, chain: chain})
			continue
		}
		return nil, fmt.Errorf("click: %s: cannot parse %q", at, s)
	}
	// Bare-class references in chains: if a chain item names something
	// never declared but registered as a class, treat it as anonymous.
	declared := map[string]bool{}
	for _, st := range stmts {
		if st.kind == stmtDecl {
			declared[st.name] = true
		}
	}
	for i := range stmts {
		if stmts[i].kind != stmtConn {
			continue
		}
		for j, ref := range stmts[i].chain {
			if ref.name != "" && !declared[ref.name] {
				stmts[i].chain[j] = elemRef{
					class: ref.name, args: ParseArgs(nil),
					inPort: ref.inPort, outPort: ref.outPort,
				}
			}
		}
	}
	return stmts, nil
}

// parseChainItem parses one item of a connection chain:
// "[in]name[out]", "name[out]", "Class(args)[out]", "[in]Class", ...
// where the bracketed ports are optional.
func parseChainItem(s string) (elemRef, error) {
	var ref elemRef
	// Leading input port: [n]rest
	if strings.HasPrefix(s, "[") {
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return ref, fmt.Errorf("unbalanced input port bracket in %q", s)
		}
		port, err := parsePort(s[1:end])
		if err != nil {
			return ref, fmt.Errorf("input port in %q: %w", s, err)
		}
		ref.inPort = port
		s = strings.TrimSpace(s[end+1:])
	}
	// Trailing output port: rest[n]. The bracket must follow the class
	// arguments (if any), so it is sought after the last ')'.
	if strings.HasSuffix(s, "]") {
		open := strings.LastIndexByte(s, '[')
		if open < 0 || open < strings.LastIndexByte(s, ')') {
			return ref, fmt.Errorf("unbalanced output port bracket in %q", s)
		}
		port, err := parsePort(s[open+1 : len(s)-1])
		if err != nil {
			return ref, fmt.Errorf("output port in %q: %w", s, err)
		}
		ref.outPort = port
		s = strings.TrimSpace(s[:open])
	}
	if s == "" {
		return ref, fmt.Errorf("port brackets without an element")
	}
	if isIdent(s) && !strings.Contains(s, "(") {
		// Could be a declared name or a bare class; resolved at build
		// time by checking declarations first.
		ref.name = s
		return ref, nil
	}
	class, args, err := ParseClassRef(s)
	if err != nil {
		return ref, err
	}
	ref.class, ref.args = class, args
	return ref, nil
}

func parsePort(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("%q is not a port number", s)
	}
	if n < 0 || n > maxPort {
		return 0, fmt.Errorf("port %d outside [0,%d]", n, maxPort)
	}
	return n, nil
}

// ParseClassRef parses "Class" or "Class(arg, arg, ...)".
func ParseClassRef(s string) (string, Args, error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return "", Args{}, fmt.Errorf("unbalanced parentheses in %q", s)
		}
		class := strings.TrimSpace(s[:i])
		if !isIdent(class) {
			return "", Args{}, fmt.Errorf("bad class name %q", class)
		}
		inner := s[i+1 : len(s)-1]
		// No argument value legitimately contains unpaired parentheses.
		if !BalancedParens(inner) {
			return "", Args{}, fmt.Errorf("unbalanced parentheses in %q", s)
		}
		var items []string
		if strings.TrimSpace(inner) != "" {
			items = SplitTopLevel(inner, ",")
		}
		return class, ParseArgs(items), nil
	}
	if !isIdent(s) {
		return "", Args{}, fmt.Errorf("bad class reference %q", s)
	}
	return s, ParseArgs(nil), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// StripComments removes // line comments and /* */ block comments. It is
// exported for the scenario-file loader, which shares the grammar's
// lexical conventions.
func StripComments(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], "//") {
			j := strings.IndexByte(s[i:], '\n')
			if j < 0 {
				break
			}
			i += j
			continue
		}
		if strings.HasPrefix(s[i:], "/*") {
			j := strings.Index(s[i+2:], "*/")
			if j < 0 {
				return "", fmt.Errorf("click: unterminated block comment")
			}
			// Keep the comment's newlines so downstream parsers can report
			// line numbers that match the original text.
			for _, c := range []byte(s[i : i+2+j+2]) {
				if c == '\n' {
					b.WriteByte(c)
				}
			}
			i += 2 + j + 2
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String(), nil
}

// SplitTopLevel splits s on sep occurrences that are not nested inside
// parentheses.
func SplitTopLevel(s, sep string) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(s); {
		switch {
		case s[i] == '(':
			depth++
			i++
		case s[i] == ')':
			depth--
			i++
		case depth == 0 && strings.HasPrefix(s[i:], sep):
			parts = append(parts, s[start:i])
			i += len(sep)
			start = i
		default:
			i++
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// Statement is one top-level statement of a comment-stripped
// configuration, with the position parser error messages report.
type Statement struct {
	Text string // statement text, surrounding whitespace trimmed
	No   int    // 1-based statement number (blank statements counted)
	Line int    // 1-based line of the statement's first non-blank byte
}

// Statements splits comment-stripped text on top-level semicolons and
// tracks each statement's number and starting line; blank statements
// are dropped. It relies on SplitTopLevel's losslessness, so the line
// numbers match the original text as long as comment stripping (and any
// block removal a caller performed) preserved newlines.
func Statements(s string) []Statement {
	var out []Statement
	offset := 0
	for i, raw := range SplitTopLevel(s, ";") {
		start := offset + (len(raw) - len(strings.TrimLeft(raw, " \t\r\n")))
		offset += len(raw) + 1
		t := strings.TrimSpace(raw)
		if t == "" {
			continue
		}
		out = append(out, Statement{Text: t, No: i + 1, Line: 1 + strings.Count(s[:start], "\n")})
	}
	return out
}

// BalancedParens reports whether s's parentheses pair up without ever
// closing below depth zero. Unbalanced text can never form a valid
// configuration, and it would shift top-level separator positions on a
// re-parse of rendered output, so parsers reject it up front.
func BalancedParens(s string) bool {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth < 0 {
			return false
		}
	}
	return depth == 0
}

// CutTopLevel is strings.Cut restricted to top-level (unparenthesised)
// occurrences of sep.
func CutTopLevel(s, sep string) (before, after string, found bool) {
	depth := 0
	for i := 0; i+len(sep) <= len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && strings.HasPrefix(s[i:], sep) {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}
