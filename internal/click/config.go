package click

import (
	"fmt"
	"strings"
)

// ParseConfig builds a pipeline from a Click-style configuration:
//
//	// declarations
//	src :: FromDevice(SIZE 64, SEED 7);
//	chk :: CheckIPHeader;
//	rt  :: RadixIPLookup(ROUTES 128000);
//
//	// connections (inline anonymous elements are allowed)
//	src -> chk -> rt -> DecIPTTL -> ToDevice;
//
// The element graph must form a single linear chain whose head is a
// Source; branching configurations are rejected, matching the system's
// one-flow-per-core model.
func ParseConfig(env *Env, name, config string) (*Pipeline, error) {
	stmts, err := lex(config)
	if err != nil {
		return nil, err
	}

	type node struct {
		name     string
		instance interface{}
		out      *node
		inDeg    int
	}
	nodes := make(map[string]*node)
	order := []*node{} // declaration order, for deterministic errors
	anon := 0

	declare := func(nm, class string, args Args) (*node, error) {
		if _, dup := nodes[nm]; dup {
			return nil, fmt.Errorf("click: element %q declared twice", nm)
		}
		inst, err := NewInstance(env, class, args)
		if err != nil {
			return nil, fmt.Errorf("click: %q: %w", nm, err)
		}
		n := &node{name: nm, instance: inst}
		nodes[nm] = n
		order = append(order, n)
		return n, nil
	}

	for _, st := range stmts {
		switch st.kind {
		case stmtDecl:
			if _, err := declare(st.name, st.class, st.args); err != nil {
				return nil, err
			}
		case stmtConn:
			var prev *node
			for _, ref := range st.chain {
				var n *node
				if ref.class != "" {
					// Inline anonymous element.
					anon++
					nm := fmt.Sprintf("%s@%d", ref.class, anon)
					var err error
					n, err = declare(nm, ref.class, ref.args)
					if err != nil {
						return nil, err
					}
				} else {
					var ok bool
					n, ok = nodes[ref.name]
					if !ok {
						return nil, fmt.Errorf("click: connection references undeclared element %q", ref.name)
					}
				}
				if prev != nil {
					if prev.out != nil && prev.out != n {
						return nil, fmt.Errorf("click: element %q has two downstream connections; only linear chains are supported", prev.name)
					}
					if prev.out == nil {
						prev.out = n
						n.inDeg++
					}
				}
				prev = n
			}
		}
	}

	// Find the head: the unique node with in-degree 0 that is a Source.
	var head *node
	for _, n := range order {
		if n.inDeg == 0 {
			if head != nil {
				return nil, fmt.Errorf("click: multiple chain heads (%q and %q); configuration must be one chain", head.name, n.name)
			}
			head = n
		}
	}
	if head == nil {
		return nil, fmt.Errorf("click: configuration has no head (cycle?)")
	}
	src, ok := head.instance.(Source)
	if !ok {
		return nil, fmt.Errorf("click: chain head %q (%T) is not a packet source", head.name, head.instance)
	}

	var elements []Element
	seen := map[*node]bool{head: true}
	for n := head.out; n != nil; n = n.out {
		if seen[n] {
			return nil, fmt.Errorf("click: configuration contains a cycle through %q", n.name)
		}
		seen[n] = true
		el, ok := n.instance.(Element)
		if !ok {
			return nil, fmt.Errorf("click: %q (%T) is not a processing element", n.name, n.instance)
		}
		elements = append(elements, el)
	}
	for _, n := range order {
		if !seen[n] {
			return nil, fmt.Errorf("click: element %q is declared but not connected", n.name)
		}
	}
	return NewPipeline(name, src, elements...), nil
}

type stmtKind int

const (
	stmtDecl stmtKind = iota
	stmtConn
)

type elemRef struct {
	name  string // reference to a declared element, or
	class string // inline anonymous class
	args  Args
}

type stmt struct {
	kind  stmtKind
	name  string // decl
	class string // decl
	args  Args   // decl
	chain []elemRef
}

// lex splits a configuration into statements. The grammar is small enough
// that a hand-rolled scanner is clearer than a table-driven one.
func lex(config string) ([]stmt, error) {
	stripped, err := stripComments(config)
	if err != nil {
		return nil, err
	}
	var stmts []stmt
	for lineNo, raw := range splitStatements(stripped) {
		s := strings.TrimSpace(raw)
		if s == "" {
			continue
		}
		if name, rest, ok := cutTopLevel(s, "::"); ok {
			name = strings.TrimSpace(name)
			if !isIdent(name) {
				return nil, fmt.Errorf("click: statement %d: bad element name %q", lineNo+1, name)
			}
			class, args, err := parseClassRef(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("click: statement %d: %w", lineNo+1, err)
			}
			stmts = append(stmts, stmt{kind: stmtDecl, name: name, class: class, args: args})
			continue
		}
		if strings.Contains(s, "->") {
			parts := splitTopLevel(s, "->")
			if len(parts) < 2 {
				return nil, fmt.Errorf("click: statement %d: dangling '->'", lineNo+1)
			}
			var chain []elemRef
			for _, part := range parts {
				part = strings.TrimSpace(part)
				if part == "" {
					return nil, fmt.Errorf("click: statement %d: empty element in chain", lineNo+1)
				}
				if isIdent(part) && !strings.Contains(part, "(") {
					// Could be a declared name or a bare class; resolved at
					// build time by checking declarations first.
					chain = append(chain, elemRef{name: part})
					continue
				}
				class, args, err := parseClassRef(part)
				if err != nil {
					return nil, fmt.Errorf("click: statement %d: %w", lineNo+1, err)
				}
				chain = append(chain, elemRef{class: class, args: args})
			}
			stmts = append(stmts, stmt{kind: stmtConn, chain: chain})
			continue
		}
		return nil, fmt.Errorf("click: statement %d: cannot parse %q", lineNo+1, s)
	}
	// Bare-class references in chains: if a chain item names something
	// never declared but registered as a class, treat it as anonymous.
	declared := map[string]bool{}
	for _, st := range stmts {
		if st.kind == stmtDecl {
			declared[st.name] = true
		}
	}
	for i := range stmts {
		if stmts[i].kind != stmtConn {
			continue
		}
		for j, ref := range stmts[i].chain {
			if ref.name != "" && !declared[ref.name] {
				stmts[i].chain[j] = elemRef{class: ref.name, args: ParseArgs(nil)}
			}
		}
	}
	return stmts, nil
}

// parseClassRef parses "Class" or "Class(arg, arg, ...)".
func parseClassRef(s string) (string, Args, error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return "", Args{}, fmt.Errorf("unbalanced parentheses in %q", s)
		}
		class := strings.TrimSpace(s[:i])
		if !isIdent(class) {
			return "", Args{}, fmt.Errorf("bad class name %q", class)
		}
		inner := s[i+1 : len(s)-1]
		var items []string
		if strings.TrimSpace(inner) != "" {
			items = splitTopLevel(inner, ",")
		}
		return class, ParseArgs(items), nil
	}
	if !isIdent(s) {
		return "", Args{}, fmt.Errorf("bad class reference %q", s)
	}
	return s, ParseArgs(nil), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// stripComments removes // line comments and /* */ block comments.
func stripComments(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], "//") {
			j := strings.IndexByte(s[i:], '\n')
			if j < 0 {
				break
			}
			i += j
			continue
		}
		if strings.HasPrefix(s[i:], "/*") {
			j := strings.Index(s[i+2:], "*/")
			if j < 0 {
				return "", fmt.Errorf("click: unterminated block comment")
			}
			i += 2 + j + 2
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String(), nil
}

// splitStatements splits on top-level semicolons.
func splitStatements(s string) []string {
	return splitTopLevel(s, ";")
}

// splitTopLevel splits s on sep occurrences that are not nested inside
// parentheses.
func splitTopLevel(s, sep string) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(s); {
		switch {
		case s[i] == '(':
			depth++
			i++
		case s[i] == ')':
			depth--
			i++
		case depth == 0 && strings.HasPrefix(s[i:], sep):
			parts = append(parts, s[start:i])
			i += len(sep)
			start = i
		default:
			i++
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// cutTopLevel is strings.Cut restricted to top-level (unparenthesised)
// occurrences of sep.
func cutTopLevel(s, sep string) (before, after string, found bool) {
	depth := 0
	for i := 0; i+len(sep) <= len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && strings.HasPrefix(s[i:], sep) {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}
