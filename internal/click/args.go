package click

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Args holds an element's configuration arguments, in Click style: a
// comma-separated list where each item is either positional ("64") or a
// keyword-value pair ("ROUTES 128000").
type Args struct {
	Positional []string
	Keyword    map[string]string
}

// ParseArgs splits raw comma-separated argument strings into positional
// and keyword arguments. An item containing whitespace is treated as a
// keyword-value pair keyed by its upper-cased first word.
func ParseArgs(items []string) Args {
	a := Args{Keyword: make(map[string]string)}
	for _, it := range items {
		it = strings.TrimSpace(it)
		if it == "" {
			continue
		}
		if k, v, ok := strings.Cut(it, " "); ok {
			a.Keyword[strings.ToUpper(k)] = strings.TrimSpace(v)
			continue
		}
		a.Positional = append(a.Positional, it)
	}
	return a
}

// String returns the keyword argument key, or def if absent.
func (a Args) String(key, def string) string {
	if v, ok := a.Keyword[strings.ToUpper(key)]; ok {
		return v
	}
	return def
}

// Int returns the keyword argument key as an int, or def if absent.
func (a Args) Int(key string, def int) (int, error) {
	v, ok := a.Keyword[strings.ToUpper(key)]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("click: argument %s: %q is not an integer", key, v)
	}
	return n, nil
}

// Uint64 returns the keyword argument key as a uint64, or def if absent.
func (a Args) Uint64(key string, def uint64) (uint64, error) {
	v, ok := a.Keyword[strings.ToUpper(key)]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("click: argument %s: %q is not a uint64", key, v)
	}
	return n, nil
}

// Float64 returns the keyword argument key as a float64, or def if
// absent. Non-finite values (NaN, ±Inf) are rejected: no configuration
// knob means them, and they would poison downstream arithmetic and
// break render/parse round-trips.
func (a Args) Float64(key string, def float64) (float64, error) {
	v, ok := a.Keyword[strings.ToUpper(key)]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("click: argument %s: %q is not a finite number", key, v)
	}
	return f, nil
}

// Bool returns the keyword argument key as a bool, or def if absent.
func (a Args) Bool(key string, def bool) (bool, error) {
	v, ok := a.Keyword[strings.ToUpper(key)]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("click: argument %s: %q is not a bool", key, v)
	}
	return b, nil
}
