package click

import (
	"strings"
	"testing"
	"testing/quick"

	"pktpredict/internal/rng"
)

// Property: ParseConfig never panics, whatever text it is fed —
// configurations are user input.
func TestParseConfigNeverPanicsQuick(t *testing.T) {
	pieces := []string{
		"a", "::", "->", ";", "(", ")", ",", "TSource", "TElem", "\n",
		"COUNT 1", "//x", "/*", "*/", " ", "a1", "_b",
	}
	f := func(seed uint64, n uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rng.New(seed)
		var b strings.Builder
		for i := 0; i < int(n); i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
		}
		ParseConfig(testEnv(), "fuzz", b.String()) //nolint:errcheck
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitTopLevel never loses characters — joining the parts
// with the separator reproduces the input whenever the input has
// balanced parentheses at the split points.
func TestSplitTopLevelLosslessQuick(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		alphabet := []byte("ab,();->")
		raw := make([]byte, int(n))
		for i := range raw {
			raw[i] = alphabet[r.Intn(len(alphabet))]
		}
		s := string(raw)
		parts := splitTopLevel(s, ",")
		joined := strings.Join(parts, ",")
		return joined == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStripCommentsEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a // b\nc", "a \nc"},
		{"a /* b */ c", "a  c"},
		{"a // no newline", "a "},
		{"/*x*/ /*y*/z", " z"},
		{"no comments", "no comments"},
	}
	for _, c := range cases {
		got, err := stripComments(c.in)
		if err != nil {
			t.Fatalf("stripComments(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("stripComments(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsIdent(t *testing.T) {
	valid := []string{"a", "a1", "_x", "CheckIPHeader", "src_0"}
	invalid := []string{"", "1a", "a-b", "a b", "a(", "->"}
	for _, s := range valid {
		if !isIdent(s) {
			t.Fatalf("isIdent(%q) = false, want true", s)
		}
	}
	for _, s := range invalid {
		if isIdent(s) {
			t.Fatalf("isIdent(%q) = true, want false", s)
		}
	}
}
