package click

import (
	"strings"
	"testing"
	"testing/quick"

	"pktpredict/internal/rng"
)

// FuzzParseConfig feeds arbitrary text to the configuration parser,
// which must reject or accept it without panicking — configurations are
// user input. The seed corpus covers the grammar's corners: output
// ports, input ports, routers, tees, fan-in, inline anonymous elements,
// comments, and malformed port brackets.
func FuzzParseConfig(f *testing.F) {
	seeds := []string{
		`src :: TSource(COUNT 2); src -> TElem -> TDrop;`,
		"src :: SeqSource(COUNT 4);\ncls :: TCls;\nsrc -> cls;\ncls[0] -> TElem;\ncls[1] -> TDrop;",
		"src :: SeqSource; rr :: TRR; src -> rr; rr[0] -> TElem; rr[1] -> TElem;",
		"src :: SeqSource; tee :: TTee; src -> tee; tee[0] -> TElem; tee[1] -> TDrop;",
		"src :: SeqSource; sink :: TElem; cls :: TCls; src -> cls; cls[0] -> sink; cls[1] -> sink;",
		`src :: TSource; src -> [0]TElem;`,
		`src :: TSource; a :: TElem; src -> a[1];`,
		`src :: TSource; a :: TElem; src -> a[;`,
		`src :: TSource; a :: TElem; src -> [x]a;`,
		`src :: TSource; a :: TElem; src -> a[-1];`,
		"/* comment */ src :: TSource; // tail\nsrc -> TElem;",
		"a :: TElem; b :: TElem; a -> b; b -> a;",
		"src :: TSource(COUNT 1, SEED 7); src -> TElem(X 1, Y 2);",
		"cls[999999999999999999] -> TElem;",
		"src :: TSource; src -> TCls;",
		// Platform(...) declarations are scenario-level grammar; inside a
		// click config they are just an unknown element class and must be
		// rejected deterministically, never crash the lexer.
		"platform :: Platform(SOCKETS 2, CORES_PER_SOCKET 4); src :: TSource; src -> TElem;",
		"platform :: Platform(L3_BYTES 524288, LINE_BYTES 64);",
		"platform :: Platform(SOCKETS 2",
		// IDS element grammar: '|'-separated hex signature lists, seeded
		// pattern sets, entropy thresholds/windows, ban-table sizing.
		"src :: TSource; sig :: SignatureClassifier(SIGS deadbeef0102|cafebabe55aa); src -> sig; sig[0] -> TElem; sig[1] -> TDrop;",
		"sig :: SignatureClassifier(PATTERNS 16, SIG_SEED 11);",
		"sig :: SignatureClassifier(SIGS abc);",
		"sig :: SignatureClassifier(SIGS |||);",
		"sig :: SignatureClassifier(SIGS zz11);",
		"sig :: SignatureClassifier(PATTERNS -3);",
		"ent :: EntropyGate(THRESHOLD 6.5, WINDOW 512); ent[0] -> TElem; ent[1] -> TDrop;",
		"ent :: EntropyGate(THRESHOLD 99);",
		"ent :: EntropyGate(THRESHOLD x, WINDOW -1);",
		"bans :: BanTable(ENTRIES 16384); bans[0] -> TElem; bans[1] -> TDrop;",
		"bans :: BanTable(ENTRIES 0);",
		"src :: FromDevice(SIZE 512, SIG_HIT 0.06, SIG_COUNT 16, SIG_SEED 11, LOW_ENTROPY 0.5, LOW_ENTROPY_BITS 2); src -> TElem;",
		"src :: FromDevice(SIG_HIT 0.02, SIG_SHIFT 0.6, SIG_SHIFT_AFTER 4000);",
		"src :: FromDevice(SIG_HIT 1.5);",
		"src :: FromDevice(SIG_HIT 0.5, SIG_COUNT 0);",
		"src :: FromDevice(LOW_ENTROPY_BITS 9);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, config string) {
		ParseConfig(testEnv(), "fuzz", config) //nolint:errcheck
	})
}

// Property: ParseConfig never panics, whatever text it is fed —
// configurations are user input.
func TestParseConfigNeverPanicsQuick(t *testing.T) {
	pieces := []string{
		"a", "::", "->", ";", "(", ")", ",", "TSource", "TElem", "\n",
		"COUNT 1", "//x", "/*", "*/", " ", "a1", "_b",
		"[0]", "[1]", "[", "]", "TCls", "TTee",
	}
	f := func(seed uint64, n uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rng.New(seed)
		var b strings.Builder
		for i := 0; i < int(n); i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
		}
		ParseConfig(testEnv(), "fuzz", b.String()) //nolint:errcheck
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitTopLevel never loses characters — joining the parts
// with the separator reproduces the input whenever the input has
// balanced parentheses at the split points.
func TestSplitTopLevelLosslessQuick(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		alphabet := []byte("ab,();->")
		raw := make([]byte, int(n))
		for i := range raw {
			raw[i] = alphabet[r.Intn(len(alphabet))]
		}
		s := string(raw)
		parts := SplitTopLevel(s, ",")
		joined := strings.Join(parts, ",")
		return joined == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStripCommentsEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a // b\nc", "a \nc"},
		{"a /* b */ c", "a  c"},
		{"a // no newline", "a "},
		{"/*x*/ /*y*/z", " z"},
		{"no comments", "no comments"},
	}
	for _, c := range cases {
		got, err := StripComments(c.in)
		if err != nil {
			t.Fatalf("StripComments(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("StripComments(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsIdent(t *testing.T) {
	valid := []string{"a", "a1", "_x", "CheckIPHeader", "src_0"}
	invalid := []string{"", "1a", "a-b", "a b", "a(", "->"}
	for _, s := range valid {
		if !isIdent(s) {
			t.Fatalf("isIdent(%q) = false, want true", s)
		}
	}
	for _, s := range invalid {
		if isIdent(s) {
			t.Fatalf("isIdent(%q) = true, want false", s)
		}
	}
}
