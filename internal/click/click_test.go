package click

import (
	"strings"
	"testing"

	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// Test doubles: a bounded source and pass/drop elements.

type testSource struct {
	remaining int
	pulled    int
}

func (s *testSource) Class() string { return "TestSource" }
func (s *testSource) Pull(ctx *Ctx) *Packet {
	if s.remaining == 0 {
		return nil
	}
	s.remaining--
	s.pulled++
	ctx.Compute(10, 10)
	return &Packet{Data: make([]byte, 64), Addr: 0x1000}
}

type testElement struct {
	class   string
	verdict Verdict
	seen    int
}

func (e *testElement) Class() string { return e.class }
func (e *testElement) Process(ctx *Ctx, p *Packet) Verdict {
	e.seen++
	ctx.Load(p.Addr)
	return e.verdict
}

func (e *testElement) Stat(name string) (uint64, bool) {
	if name == "seen" {
		return uint64(e.seen), true
	}
	return 0, false
}

type testRecycler struct{ recycled int }

func (r *testRecycler) Recycle(ctx *Ctx, p *Packet) { r.recycled++ }

func TestCtxFuncAttribution(t *testing.T) {
	var ctx Ctx
	fn := hw.RegisterFunc("click_test_fn")
	old := ctx.SetFunc(fn)
	ctx.Load(0x40)
	ctx.SetFunc(old)
	ctx.Load(0x80)
	if ctx.Ops[0].Func != fn || ctx.Ops[1].Func != hw.FuncOther {
		t.Fatalf("attribution wrong: %+v", ctx.Ops)
	}
}

func TestCtxLoadBytesSpansLines(t *testing.T) {
	var ctx Ctx
	ctx.LoadBytes(0x3f, 2) // straddles a line boundary
	if len(ctx.Ops) != 2 {
		t.Fatalf("LoadBytes across boundary emitted %d ops, want 2", len(ctx.Ops))
	}
	ctx.Ops = ctx.Ops[:0]
	ctx.LoadBytes(0x00, 64)
	if len(ctx.Ops) != 1 {
		t.Fatalf("LoadBytes within one line emitted %d ops, want 1", len(ctx.Ops))
	}
	ctx.Ops = ctx.Ops[:0]
	ctx.LoadBytes(0x00, 0)
	if len(ctx.Ops) != 0 {
		t.Fatal("LoadBytes of 0 bytes must emit nothing")
	}
}

func TestCtxComputeSkipsEmpty(t *testing.T) {
	var ctx Ctx
	ctx.Compute(0, 0)
	if len(ctx.Ops) != 0 {
		t.Fatal("empty compute must emit nothing")
	}
}

func TestPacketLineAddrs(t *testing.T) {
	p := &Packet{Addr: 0x100}
	var got []hw.Addr
	p.LineAddrs(60, 10, func(a hw.Addr) { got = append(got, a) })
	if len(got) != 2 || got[0] != 0x100+0x0 || got[1] != 0x140 {
		t.Fatalf("LineAddrs = %#v", got)
	}
}

func TestPipelineRunsChain(t *testing.T) {
	src := &testSource{remaining: 3}
	e1 := &testElement{class: "A", verdict: Continue}
	e2 := &testElement{class: "B", verdict: Continue}
	pl := NewPipeline("p", src, e1, e2)

	var ops []hw.Op
	for {
		ops = pl.EmitPacket(ops[:0])
		if len(ops) == 0 {
			break
		}
	}
	if e1.seen != 3 || e2.seen != 3 {
		t.Fatalf("elements saw %d/%d packets, want 3/3", e1.seen, e2.seen)
	}
	if pl.Received != 3 || pl.Finished != 3 || pl.Dropped != 0 {
		t.Fatalf("pipeline counters: %d/%d/%d", pl.Received, pl.Finished, pl.Dropped)
	}
}

func TestPipelineDropStopsChain(t *testing.T) {
	src := &testSource{remaining: 2}
	e1 := &testElement{class: "A", verdict: Drop}
	e2 := &testElement{class: "B", verdict: Continue}
	pl := NewPipeline("p", src, e1, e2)
	for len(pl.EmitPacket(nil)) > 0 {
	}
	if e2.seen != 0 {
		t.Fatal("element after Drop must not run")
	}
	if pl.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", pl.Dropped)
	}
}

func TestPipelineConsumeCountsFinished(t *testing.T) {
	src := &testSource{remaining: 1}
	e1 := &testElement{class: "A", verdict: Consume}
	pl := NewPipeline("p", src, e1)
	pl.EmitPacket(nil)
	if pl.Finished != 1 {
		t.Fatalf("finished = %d, want 1", pl.Finished)
	}
}

func TestPipelineRecycles(t *testing.T) {
	rec := &testRecycler{}
	src := &testSource{remaining: 2}
	pl := NewPipeline("p", SourceFunc(func(ctx *Ctx) *Packet {
		p := src.Pull(ctx)
		if p != nil {
			p.Recycler = rec
		}
		return p
	}), &testElement{class: "A", verdict: Drop})
	for len(pl.EmitPacket(nil)) > 0 {
	}
	if rec.recycled != 2 {
		t.Fatalf("recycled = %d, want 2", rec.recycled)
	}
}

// SourceFunc adapts a function to Source for tests.
type SourceFunc func(ctx *Ctx) *Packet

func (f SourceFunc) Class() string         { return "SourceFunc" }
func (f SourceFunc) Pull(ctx *Ctx) *Packet { return f(ctx) }

func TestPipelineStats(t *testing.T) {
	src := &testSource{remaining: 1}
	el := &testElement{class: "A", verdict: Continue}
	pl := NewPipeline("p", src, el)
	pl.EmitPacket(nil)
	if v, ok := pl.Stat("received"); !ok || v != 1 {
		t.Fatalf("received = %d/%v", v, ok)
	}
	if v, ok := pl.Stat("A.seen"); !ok || v != 1 {
		t.Fatalf("A.seen = %d/%v", v, ok)
	}
	if _, ok := pl.Stat("A.nope"); ok {
		t.Fatal("unknown element stat must not resolve")
	}
	if _, ok := pl.Stat("bogus"); ok {
		t.Fatal("unknown stat must not resolve")
	}
}

func TestPipelineImplementsPacketSource(t *testing.T) {
	var _ hw.PacketSource = (*Pipeline)(nil)
}

// --- configuration parser ---

func testEnv() *Env { return &Env{Arena: mem.NewArena(0), Seed: 1} }

func init() {
	Register("TSource", func(env *Env, args Args) (interface{}, error) {
		n, err := args.Int("COUNT", 1)
		if err != nil {
			return nil, err
		}
		return &testSource{remaining: n}, nil
	})
	Register("TElem", func(env *Env, args Args) (interface{}, error) {
		return &testElement{class: "TElem", verdict: Continue}, nil
	})
	Register("TDrop", func(env *Env, args Args) (interface{}, error) {
		return &testElement{class: "TDrop", verdict: Drop}, nil
	})
}

func TestParseConfigDeclared(t *testing.T) {
	cfg := `
		// a comment
		src :: TSource(COUNT 2);
		a :: TElem; /* block
		comment */
		b :: TElem;
		src -> a -> b;
	`
	pl, err := ParseConfig(testEnv(), "test", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(pl.Elements()) != 2 {
		t.Fatalf("elements = %d, want 2", len(pl.Elements()))
	}
	n := 0
	for len(pl.EmitPacket(nil)) > 0 {
		n++
	}
	if n != 2 {
		t.Fatalf("packets = %d, want 2 (COUNT arg not honoured?)", n)
	}
}

func TestParseConfigInlineAnonymous(t *testing.T) {
	pl, err := ParseConfig(testEnv(), "t", `TSource(COUNT 1) -> TElem -> TDrop;`)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(pl.Elements()) != 2 {
		t.Fatalf("elements = %d, want 2", len(pl.Elements()))
	}
	pl.EmitPacket(nil)
	if pl.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", pl.Dropped)
	}
}

func TestParseConfigMultiStatementChain(t *testing.T) {
	cfg := `
		src :: TSource(COUNT 1);
		mid :: TElem;
		src -> mid;
		mid -> TElem;
	`
	pl, err := ParseConfig(testEnv(), "t", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(pl.Elements()) != 2 {
		t.Fatalf("elements = %d, want 2", len(pl.Elements()))
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, cfg, wantSub string
	}{
		{"unknown class", `src :: Nonexistent; src -> TElem;`, "unknown element"},
		{"undeclared ref", `src :: TSource; src -> missing_element_1;`, "unknown element"},
		{"double decl", `a :: TElem; a :: TElem; TSource -> a;`, "declared twice"},
		{"branching", "src :: TSource;\na :: TElem;\nb :: TElem;\nsrc -> a;\nsrc -> b;", "two downstream"},
		{"head not source", `TElem -> TDrop;`, "not a packet source"},
		{"two heads", `TSource -> TElem; TSource -> TDrop;`, "multiple chain heads"},
		{"orphan is second head", `src :: TSource; orphan :: TElem; x :: TElem; src -> x;`, "multiple chain heads"},
		{"disconnected cycle", "src :: TSource;\na :: TElem;\nb :: TElem;\na -> b;\nb -> a;\nsrc -> TElem;", "not connected"},
		{"unterminated comment", `/* oops`, "unterminated"},
		{"dangling arrow", `src :: TSource; src -> ;`, "empty element"},
		{"source midchain", `TSource -> TSource;`, "not a processing element"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(testEnv(), "t", tc.cfg)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseArgs(t *testing.T) {
	a := ParseArgs([]string{"64", "ROUTES 128000", " SEED 7 ", "VERBOSE true", ""})
	if len(a.Positional) != 1 || a.Positional[0] != "64" {
		t.Fatalf("positional = %v", a.Positional)
	}
	if n, err := a.Int("routes", 0); err != nil || n != 128000 {
		t.Fatalf("ROUTES = %d, %v", n, err)
	}
	if s, err := a.Uint64("SEED", 0); err != nil || s != 7 {
		t.Fatalf("SEED = %d, %v", s, err)
	}
	if b, err := a.Bool("VERBOSE", false); err != nil || !b {
		t.Fatalf("VERBOSE = %v, %v", b, err)
	}
	if n, err := a.Int("MISSING", 42); err != nil || n != 42 {
		t.Fatalf("default = %d, %v", n, err)
	}
	if _, err := a.Int("VERBOSE", 0); err == nil {
		t.Fatal("non-integer value must error")
	}
}

func TestVerdictString(t *testing.T) {
	if Continue.String() != "continue" || Drop.String() != "drop" || Consume.String() != "consume" {
		t.Fatal("verdict strings wrong")
	}
	if Output(9).String() != "output(9)" || Output(0) != Continue {
		t.Fatal("output verdicts wrong")
	}
	if Broadcast.String() != "broadcast" {
		t.Fatal("broadcast verdict renders wrong")
	}
	if Verdict(-9).String() != "invalid" {
		t.Fatal("unknown verdict must render invalid")
	}
}

func TestPipelineString(t *testing.T) {
	pl := NewPipeline("p", &testSource{}, &testElement{class: "A"}, &testElement{class: "B"})
	if got := pl.String(); got != "p :: TestSource -> A -> B" {
		t.Fatalf("String() = %q", got)
	}
}
