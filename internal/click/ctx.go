package click

import "pktpredict/internal/hw"

// Ctx accumulates the micro-operation trace of one packet's processing.
// Elements call Load/Store/Compute as they perform the corresponding real
// work; each op is attributed to the current function for per-function
// profiling (Figure 7 of the paper) and to the current element slot for
// per-element online cost accounting (hw.ElemCell). The pipeline walker
// brackets every Process call with SetElem, so element authors never
// touch the slot; ops emitted outside a bracket carry slot 0, the flow's
// overhead slot.
type Ctx struct {
	Ops  []hw.Op
	fn   hw.FuncID
	elem uint16
}

// SetFunc switches the attribution function and returns the previous one,
// so callers can restore it:
//
//	defer ctx.SetFunc(ctx.SetFunc(myFunc))
func (c *Ctx) SetFunc(f hw.FuncID) hw.FuncID {
	old := c.fn
	c.fn = f
	return old
}

// Func returns the current attribution function.
func (c *Ctx) Func() hw.FuncID { return c.fn }

// SetElem switches the element attribution slot and returns the previous
// one, mirroring SetFunc's restore idiom. Slot 0 is the flow's overhead
// slot.
func (c *Ctx) SetElem(e uint16) uint16 {
	old := c.elem
	c.elem = e
	return old
}

// Elem returns the current element attribution slot.
func (c *Ctx) Elem() uint16 { return c.elem }

// Load emits one memory read of the line containing a.
//
//dataplane:hotpath
func (c *Ctx) Load(a hw.Addr) {
	c.Ops = append(c.Ops, hw.Op{Kind: hw.OpLoad, Addr: a, Func: c.fn, Elem: c.elem})
}

// Store emits one memory write of the line containing a.
//
//dataplane:hotpath
func (c *Ctx) Store(a hw.Addr) {
	c.Ops = append(c.Ops, hw.Op{Kind: hw.OpStore, Addr: a, Func: c.fn, Elem: c.elem})
}

// LoadBytes emits one read per cache line of [a, a+n).
//
//dataplane:hotpath
func (c *Ctx) LoadBytes(a hw.Addr, n int) {
	if n <= 0 {
		return
	}
	for line, last := hw.LineOf(a), hw.LineOf(a+hw.Addr(n)-1); line <= last; line += hw.LineSize {
		c.Load(line)
	}
}

// StoreBytes emits one write per cache line of [a, a+n).
//
//dataplane:hotpath
func (c *Ctx) StoreBytes(a hw.Addr, n int) {
	if n <= 0 {
		return
	}
	for line, last := hw.LineOf(a), hw.LineOf(a+hw.Addr(n)-1); line <= last; line += hw.LineSize {
		c.Store(line)
	}
}

// DMABytes emits one NIC direct-cache-access write per line of [a, a+n):
// the line lands in the socket's L3 and costs the core nothing.
//
//dataplane:hotpath
func (c *Ctx) DMABytes(a hw.Addr, n int) {
	if n <= 0 {
		return
	}
	for line, last := hw.LineOf(a), hw.LineOf(a+hw.Addr(n)-1); line <= last; line += hw.LineSize {
		c.Ops = append(c.Ops, hw.Op{Kind: hw.OpDMAWrite, Addr: line, Func: c.fn, Elem: c.elem})
	}
}

// Compute emits a burst of cycles core work retiring instrs instructions.
//
//dataplane:hotpath
func (c *Ctx) Compute(cycles, instrs uint32) {
	if cycles == 0 && instrs == 0 {
		return
	}
	c.Ops = append(c.Ops, hw.Op{Kind: hw.OpCompute, Cycles: cycles, Instrs: instrs, Func: c.fn, Elem: c.elem})
}
