package click

import "pktpredict/internal/hw"

// Ctx accumulates the micro-operation trace of one packet's processing.
// Elements call Load/Store/Compute as they perform the corresponding real
// work; each op is attributed to the current function for per-function
// profiling (Figure 7 of the paper).
type Ctx struct {
	Ops []hw.Op
	fn  hw.FuncID
}

// SetFunc switches the attribution function and returns the previous one,
// so callers can restore it:
//
//	defer ctx.SetFunc(ctx.SetFunc(myFunc))
func (c *Ctx) SetFunc(f hw.FuncID) hw.FuncID {
	old := c.fn
	c.fn = f
	return old
}

// Func returns the current attribution function.
func (c *Ctx) Func() hw.FuncID { return c.fn }

// Load emits one memory read of the line containing a.
func (c *Ctx) Load(a hw.Addr) {
	c.Ops = append(c.Ops, hw.Op{Kind: hw.OpLoad, Addr: a, Func: c.fn})
}

// Store emits one memory write of the line containing a.
func (c *Ctx) Store(a hw.Addr) {
	c.Ops = append(c.Ops, hw.Op{Kind: hw.OpStore, Addr: a, Func: c.fn})
}

// LoadBytes emits one read per cache line of [a, a+n).
func (c *Ctx) LoadBytes(a hw.Addr, n int) {
	if n <= 0 {
		return
	}
	for line, last := hw.LineOf(a), hw.LineOf(a+hw.Addr(n)-1); line <= last; line += hw.LineSize {
		c.Load(line)
	}
}

// StoreBytes emits one write per cache line of [a, a+n).
func (c *Ctx) StoreBytes(a hw.Addr, n int) {
	if n <= 0 {
		return
	}
	for line, last := hw.LineOf(a), hw.LineOf(a+hw.Addr(n)-1); line <= last; line += hw.LineSize {
		c.Store(line)
	}
}

// DMABytes emits one NIC direct-cache-access write per line of [a, a+n):
// the line lands in the socket's L3 and costs the core nothing.
func (c *Ctx) DMABytes(a hw.Addr, n int) {
	if n <= 0 {
		return
	}
	for line, last := hw.LineOf(a), hw.LineOf(a+hw.Addr(n)-1); line <= last; line += hw.LineSize {
		c.Ops = append(c.Ops, hw.Op{Kind: hw.OpDMAWrite, Addr: line, Func: c.fn})
	}
}

// Compute emits a burst of cycles core work retiring instrs instructions.
func (c *Ctx) Compute(cycles, instrs uint32) {
	if cycles == 0 && instrs == 0 {
		return
	}
	c.Ops = append(c.Ops, hw.Op{Kind: hw.OpCompute, Cycles: cycles, Instrs: instrs, Func: c.fn})
}
