package click

import "fmt"

// Verdict is an element's decision about a packet. Non-negative verdicts
// name the output port the packet leaves on (Continue is port 0, the
// common case); negative verdicts terminate the packet's walk at this
// element.
type Verdict int16

const (
	// Continue passes the packet out output port 0, the next element in
	// a linear chain.
	Continue Verdict = 0
	// Drop discards the packet (e.g. a firewall match); the pipeline
	// recycles its buffer.
	Drop Verdict = -1
	// Consume ends processing with the packet handed off (e.g. queued for
	// transmission); the pipeline recycles its buffer.
	Consume Verdict = -2
	// Broadcast sends the packet down every connected output port in
	// port order (Click's Tee). Branches process the same packet bytes
	// sequentially.
	Broadcast Verdict = -3
)

// Output returns the verdict that emits the packet on the given output
// port. Output(0) == Continue.
func Output(port int) Verdict { return Verdict(port) }

// Port returns the output port a verdict routes to, and whether it routes
// at all (terminal verdicts do not).
func (v Verdict) Port() (int, bool) {
	if v >= 0 {
		return int(v), true
	}
	return 0, false
}

// String renders the verdict for diagnostics.
func (v Verdict) String() string {
	switch {
	case v == Continue:
		return "continue"
	case v == Drop:
		return "drop"
	case v == Consume:
		return "consume"
	case v == Broadcast:
		return "broadcast"
	case v > 0:
		return fmt.Sprintf("output(%d)", int(v))
	default:
		return "invalid"
	}
}

// Element is one packet-processing stage. Process performs the element's
// real work on p and emits the corresponding trace into ctx.
type Element interface {
	// Class returns the element's type name as used in configurations
	// (e.g. "CheckIPHeader").
	Class() string
	// Process handles one packet and decides where it goes next: an
	// output port (Continue/Output), every port (Broadcast), or a
	// terminal verdict (Drop/Consume).
	Process(ctx *Ctx, p *Packet) Verdict
}

// AdaptiveOutputs, returned from Router.NumOutputs, declares that the
// element emits on however many output ports the configuration connects
// (Click's RoundRobinSwitch and Tee behave this way).
const AdaptiveOutputs = -1

// Router is implemented by elements that steer packets among multiple
// numbered output ports — classifiers, switches, tees. The graph builder
// uses NumOutputs to validate configurations: every declared port of a
// Router must be connected, and only Routers may use ports beyond 0.
type Router interface {
	Element
	// NumOutputs returns how many output ports the element emits on, or
	// AdaptiveOutputs when it adapts to the connected port count.
	NumOutputs() int
}

// OutputsSetter is implemented by adaptive Routers that need to know the
// connected port count (e.g. a round-robin switch cycling over its
// ports). The graph builder calls it once after validation.
type OutputsSetter interface {
	SetOutputs(n int)
}

// Source produces packets at the head of a pipeline (Click's FromDevice
// role). Pull returns nil when no more packets will arrive.
type Source interface {
	Class() string
	Pull(ctx *Ctx) *Packet
}

// Stats is implemented by elements that expose counters.
type Stats interface {
	// Stat returns a named counter value; ok is false for unknown names.
	Stat(name string) (value uint64, ok bool)
}
