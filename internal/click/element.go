package click

// Verdict is an element's decision about a packet.
type Verdict int8

const (
	// Continue passes the packet to the next element in the pipeline.
	Continue Verdict = iota
	// Drop discards the packet (e.g. a firewall match); the pipeline
	// recycles its buffer.
	Drop
	// Consume ends processing with the packet handed off (e.g. queued for
	// transmission); the pipeline recycles its buffer.
	Consume
)

// String renders the verdict for diagnostics.
func (v Verdict) String() string {
	switch v {
	case Continue:
		return "continue"
	case Drop:
		return "drop"
	case Consume:
		return "consume"
	default:
		return "invalid"
	}
}

// Element is one packet-processing stage. Process performs the element's
// real work on p and emits the corresponding trace into ctx.
type Element interface {
	// Class returns the element's type name as used in configurations
	// (e.g. "CheckIPHeader").
	Class() string
	// Process handles one packet.
	Process(ctx *Ctx, p *Packet) Verdict
}

// Source produces packets at the head of a pipeline (Click's FromDevice
// role). Pull returns nil when no more packets will arrive.
type Source interface {
	Class() string
	Pull(ctx *Ctx) *Packet
}

// Stats is implemented by elements that expose counters.
type Stats interface {
	// Stat returns a named counter value; ok is false for unknown names.
	Stat(name string) (value uint64, ok bool)
}
