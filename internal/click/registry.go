package click

import (
	"fmt"
	"sort"
	"sync"

	"pktpredict/internal/mem"
)

// Env carries the resources element constructors need: the NUMA arena to
// allocate simulated memory from (enforcing the paper's local-allocation
// policy) and a seed for any per-flow randomness.
//
// StageOf and ArenaAt together make state placement stage-aware: when a
// graph will be cut into a cross-worker service chain, ParseConfig
// resolves each element's stage (same inheritance rule as
// Pipeline.AssignStages) before construction and allocates its state
// from ArenaAt(stage) — so every stage's tables land in the NUMA domain
// of the worker that will run them, instead of stage 0's.
type Env struct {
	Arena *mem.Arena
	Seed  uint64

	// RxBatch is the receive batch size sources default to when their
	// configuration doesn't set one explicitly (the scenario-level BATCH
	// knob). 0 or 1 means unbatched.
	RxBatch int

	// StageOf maps element names to stage indices (unlisted elements
	// inherit the maximum stage of their predecessors). nil or empty
	// means a single-stage graph.
	StageOf map[string]int
	// ArenaAt returns the arena stage s allocates from; nil means every
	// stage uses Arena.
	ArenaAt func(stage int) *mem.Arena
}

// arenaFor resolves the arena for one stage's allocations.
func (e *Env) arenaFor(stage int) *mem.Arena {
	if e.ArenaAt == nil {
		return e.Arena
	}
	return e.ArenaAt(stage)
}

// Constructor builds an element or source instance from configuration
// arguments. The returned value must implement Element or Source.
type Constructor func(env *Env, args Args) (interface{}, error)

var registry = struct {
	sync.Mutex
	classes map[string]Constructor
}{classes: make(map[string]Constructor)}

// Register makes a class available to configurations. It panics on
// duplicate registration, which indicates two packages claiming one name.
func Register(class string, c Constructor) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.classes[class]; dup {
		panic(fmt.Sprintf("click: class %q registered twice", class))
	}
	registry.classes[class] = c
}

// NewInstance constructs an instance of class with the given arguments.
func NewInstance(env *Env, class string, args Args) (interface{}, error) {
	registry.Lock()
	ctor, ok := registry.classes[class]
	registry.Unlock()
	if !ok {
		return nil, fmt.Errorf("click: unknown element class %q (known: %v)", class, Classes())
	}
	return ctor(env, args)
}

// Classes returns the sorted names of all registered classes.
func Classes() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.classes))
	for c := range registry.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
