package click

import (
	"fmt"
	"sort"
	"sync"

	"pktpredict/internal/mem"
)

// Env carries the resources element constructors need: the NUMA arena to
// allocate simulated memory from (enforcing the paper's local-allocation
// policy) and a seed for any per-flow randomness.
type Env struct {
	Arena *mem.Arena
	Seed  uint64
}

// Constructor builds an element or source instance from configuration
// arguments. The returned value must implement Element or Source.
type Constructor func(env *Env, args Args) (interface{}, error)

var registry = struct {
	sync.Mutex
	classes map[string]Constructor
}{classes: make(map[string]Constructor)}

// Register makes a class available to configurations. It panics on
// duplicate registration, which indicates two packages claiming one name.
func Register(class string, c Constructor) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.classes[class]; dup {
		panic(fmt.Sprintf("click: class %q registered twice", class))
	}
	registry.classes[class] = c
}

// NewInstance constructs an instance of class with the given arguments.
func NewInstance(env *Env, class string, args Args) (interface{}, error) {
	registry.Lock()
	ctor, ok := registry.classes[class]
	registry.Unlock()
	if !ok {
		return nil, fmt.Errorf("click: unknown element class %q (known: %v)", class, Classes())
	}
	return ctor(env, args)
}

// Classes returns the sorted names of all registered classes.
func Classes() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.classes))
	for c := range registry.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
