package mem

import (
	"testing"
	"testing/quick"

	"pktpredict/internal/hw"
)

func TestArenaDomainSeparation(t *testing.T) {
	a0 := NewArena(0)
	a1 := NewArena(1)
	p0 := a0.Alloc(4096, 0)
	p1 := a1.Alloc(4096, 0)
	if hw.DomainOf(p0) != 0 || hw.DomainOf(p1) != 1 {
		t.Fatalf("domains = %d, %d; want 0, 1", hw.DomainOf(p0), hw.DomainOf(p1))
	}
}

func TestArenaAllocationsDisjoint(t *testing.T) {
	a := NewArena(0)
	p1 := a.Alloc(100, 0)
	p2 := a.Alloc(100, 0)
	if p2 < p1+100 {
		t.Fatalf("allocations overlap: %#x then %#x", p1, p2)
	}
}

func TestArenaAlignment(t *testing.T) {
	a := NewArena(0)
	a.Alloc(3, 1)
	p := a.Alloc(64, 64)
	if p%64 != 0 {
		t.Fatalf("allocation %#x not 64-byte aligned", p)
	}
	if q := a.Alloc(10, 0); q%hw.LineSize != 0 {
		t.Fatalf("default alignment should be line-sized; got %#x", q)
	}
}

func TestArenaBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	NewArena(0).Alloc(8, 3)
}

func TestArenaUsed(t *testing.T) {
	a := NewArena(2)
	a.Alloc(128, 64)
	if a.Used() != 128 {
		t.Fatalf("Used = %d, want 128", a.Used())
	}
}

func TestRegionPacked(t *testing.T) {
	a := NewArena(0)
	r := NewRegion(a, 16, 16, false) // 4 elements per line
	if r.Addr(0)+16 != r.Addr(1) {
		t.Fatal("packed elements must be contiguous")
	}
	if hw.LineOf(r.Addr(0)) != hw.LineOf(r.Addr(3)) {
		t.Fatal("elements 0..3 must share a cache line when packed")
	}
	if r.Lines() != 4 {
		t.Fatalf("16 x 16B packed = %d lines, want 4", r.Lines())
	}
}

func TestRegionPadded(t *testing.T) {
	a := NewArena(0)
	r := NewRegion(a, 4, 16, true)
	if hw.LineOf(r.Addr(0)) == hw.LineOf(r.Addr(1)) {
		t.Fatal("padded elements must not share cache lines")
	}
	if r.Size() != 4*hw.LineSize {
		t.Fatalf("padded size = %d, want %d", r.Size(), 4*hw.LineSize)
	}
}

func TestRegionBoundsPanic(t *testing.T) {
	a := NewArena(0)
	r := NewRegion(a, 4, 8, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	r.Addr(4)
}

// Property: all allocations from one arena are disjoint and belong to the
// arena's domain.
func TestArenaDisjointQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena(1)
		var prevEnd hw.Addr
		for _, s := range sizes {
			size := uint64(s%4096) + 1
			p := a.Alloc(size, 8)
			if p < prevEnd || hw.DomainOf(p) != 1 {
				return false
			}
			prevEnd = p + hw.Addr(size)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArenaBindingsRecordLabelledSpans(t *testing.T) {
	a := NewArena(1)
	a.SetLabel("table")
	p1 := a.Alloc(100, 8)
	a.Alloc(50, 8) // same label, same epoch: coalesces
	a.SetLabel("ring")
	p3 := a.Alloc(64, 64)

	bs := a.Bindings()
	if len(bs) != 2 {
		t.Fatalf("bindings = %+v, want 2 spans", bs)
	}
	if bs[0].Label != "table" || bs[0].Base != p1 {
		t.Fatalf("first binding %+v", bs[0])
	}
	if got := bs[0].End(); got < p1+150 {
		t.Fatalf("coalesced span ends at %#x, want ≥ %#x", got, p1+150)
	}
	if bs[1].Label != "ring" || bs[1].Base != p3 || bs[1].Size != 64 {
		t.Fatalf("second binding %+v", bs[1])
	}
	if bs[0].Domain() != 1 || bs[1].Domain() != 1 {
		t.Fatalf("bindings report wrong domain: %+v", bs)
	}
}

func TestArenaSetLabelSealsCoalescing(t *testing.T) {
	a := NewArena(0)
	a.SetLabel("x")
	a.Alloc(10, 8)
	// Re-setting the same label must still open a new span: two
	// structures that share a label string are not one structure.
	a.SetLabel("x")
	a.Alloc(10, 8)
	if got := len(a.Bindings()); got != 2 {
		t.Fatalf("bindings = %d, want 2 (SetLabel must seal)", got)
	}
}

func TestArenaBindingsSinceBracketsBuilds(t *testing.T) {
	a := NewArena(0)
	a.SetLabel("first")
	a.Alloc(10, 8)
	mark := a.Mark()
	a.SetLabel("second")
	a.Alloc(20, 8)
	bs := a.BindingsSince(mark)
	if len(bs) != 1 || bs[0].Label != "second" || bs[0].Size != 20 {
		t.Fatalf("bindings since mark = %+v", bs)
	}
	// A post-mark allocation under the pre-mark label must not extend the
	// pre-mark span (Mark seals).
	a.SetLabel("first")
	a.Alloc(5, 8)
	if got := len(a.BindingsSince(mark)); got != 2 {
		t.Fatalf("bindings since mark = %d, want 2", got)
	}
}

func TestArenaReserveAndRecord(t *testing.T) {
	a := NewArena(0)
	a.SetLabel("sparse")
	base := a.Reserve(1<<20, hw.LineSize)
	if len(a.Bindings()) != 0 {
		t.Fatalf("Reserve recorded a binding: %+v", a.Bindings())
	}
	// A later allocation must not overlap the reservation.
	p := a.Alloc(64, 64)
	if p < base+(1<<20) {
		t.Fatalf("allocation %#x overlaps reservation [%#x,%#x)", p, base, base+(1<<20))
	}
	a.Record(base, 4096)
	a.Record(base, 0) // dropped
	bs := a.Bindings()
	if len(bs) != 2 {
		t.Fatalf("bindings = %+v, want alloc + explicit record", bs)
	}
	last := bs[len(bs)-1]
	if last.Base != base || last.Size != 4096 || last.Label != "sparse" {
		t.Fatalf("recorded binding %+v", last)
	}
}
