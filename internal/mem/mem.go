// Package mem manages the simulated physical address space: per-NUMA-domain
// arenas hand out address ranges for the data structures of
// packet-processing applications, so that every logical structure has a
// stable simulated location and every access to it can be replayed against
// the cache hierarchy in package hw.
//
// The paper's configuration allocates each flow's data "locally", through
// the memory controller attached to the processor running the flow
// (Section 2.2, "NUMA memory allocation"); arenas make that placement
// decision explicit and testable.
package mem

import (
	"fmt"

	"pktpredict/internal/hw"
)

// Arena is a bump allocator over one NUMA domain's simulated address
// range. It is not safe for concurrent use; allocation happens during
// single-threaded experiment setup.
//
// Every allocation is recorded as a Binding under the arena's current
// label (SetLabel), so callers can reconstruct exactly which structure
// lives where — the hook state placement and migration decisions hang
// off: a flow that knows its tables' base, footprint, and domain can be
// asked what moving them would cost.
type Arena struct {
	domain int
	next   hw.Addr
	limit  hw.Addr

	label    string
	bindings []Binding
	// sealed forces the next allocation to open a new binding even under
	// an unchanged label; SetLabel sets it so two structures that happen
	// to share a label string never merge into one record.
	sealed bool
}

// Binding records one labelled allocation span: which structure it is,
// where its simulated memory starts, and how many bytes it covers.
// Consecutive allocations under one SetLabel call coalesce into a single
// binding (a structure built from many small allocations is one span in
// a bump allocator), so the record stays compact.
type Binding struct {
	Label string
	Base  hw.Addr
	Size  uint64
}

// Domain returns the NUMA domain the binding's memory belongs to.
func (b Binding) Domain() int { return hw.DomainOf(b.Base) }

// End returns the first address past the binding.
func (b Binding) End() hw.Addr { return b.Base + hw.Addr(b.Size) }

// Lines returns how many cache lines the binding spans.
func (b Binding) Lines() int { return hw.LinesSpanned(b.Base, int(b.Size)) }

// arenaCapacity bounds each domain's allocatable range. 1 TiB per domain
// is far beyond any experiment's needs and keeps domain ids disjoint.
const arenaCapacity = hw.Addr(1) << 40

// NewArena returns an empty arena for NUMA domain d. Multiple arenas for
// the same domain would hand out overlapping addresses; create one per
// domain per experiment.
func NewArena(d int) *Arena {
	if d < 0 {
		panic(fmt.Sprintf("mem: negative NUMA domain %d", d))
	}
	base := hw.DomainBase(d)
	// The first page of every domain stays unallocated, like a real
	// address space's null page; address 0 is never a valid allocation.
	return &Arena{domain: d, next: base + 4096, limit: base + arenaCapacity}
}

// Domain returns the NUMA domain this arena allocates from.
func (a *Arena) Domain() int { return a.domain }

// SetLabel names the structure subsequent allocations belong to and
// returns the previous label, so callers can restore it:
//
//	defer a.SetLabel(a.SetLabel("flow_table"))
func (a *Arena) SetLabel(label string) (old string) {
	old = a.label
	a.label = label
	a.sealed = true
	return old
}

// Mark returns a cursor into the binding record; BindingsSince(Mark())
// brackets the allocations of one build. It also seals the current
// binding so a later allocation can never extend a span recorded before
// the mark.
func (a *Arena) Mark() int {
	a.sealed = true
	return len(a.bindings)
}

// Bindings returns the arena's full allocation record in address order.
// The slice is shared; callers must not modify it.
func (a *Arena) Bindings() []Binding { return a.bindings }

// BindingsSince returns copies of the bindings recorded after mark.
func (a *Arena) BindingsSince(mark int) []Binding {
	if mark < 0 || mark > len(a.bindings) {
		panic(fmt.Sprintf("mem: binding mark %d outside [0,%d]", mark, len(a.bindings)))
	}
	out := make([]Binding, len(a.bindings)-mark)
	copy(out, a.bindings[mark:])
	return out
}

// record extends the current binding or opens a new one for [base, end).
func (a *Arena) record(base, end hw.Addr) {
	if n := len(a.bindings); !a.sealed && n > 0 && a.bindings[n-1].Label == a.label {
		// Same structure, still the same SetLabel epoch: one span. Any
		// alignment gap between the spans is dead padding the structure
		// owns anyway.
		a.bindings[n-1].Size = uint64(end - a.bindings[n-1].Base)
		return
	}
	a.bindings = append(a.bindings, Binding{Label: a.label, Base: base, Size: uint64(end - base)})
	a.sealed = false
}

// Used returns the number of bytes allocated so far, excluding the
// reserved null page.
func (a *Arena) Used() uint64 { return uint64(a.next-hw.DomainBase(a.domain)) - 4096 }

// Alloc reserves size bytes aligned to align (which must be a power of
// two; 0 means cache-line alignment) and returns the base address.
func (a *Arena) Alloc(size uint64, align uint64) hw.Addr {
	if align == 0 {
		align = hw.LineSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (a.next + hw.Addr(align-1)) &^ hw.Addr(align-1)
	end := base + hw.Addr(size)
	if end > a.limit {
		panic(fmt.Sprintf("mem: domain %d arena exhausted (%d bytes requested)", a.domain, size))
	}
	a.next = end
	if end > base {
		a.record(base, end)
	}
	return base
}

// AllocLines reserves n cache lines and returns the base address.
func (a *Arena) AllocLines(n int) hw.Addr {
	return a.Alloc(uint64(n)*hw.LineSize, hw.LineSize)
}

// Reserve allocates address space like Alloc but records no binding: for
// sparse structures that reserve a generous contiguous range and touch
// only what insertions populate (e.g. the radix trie's entry array).
// The structure reports the extent it actually uses via Record, so
// footprint-based decisions (state-migration thresholds, copy costs) see
// touched bytes rather than reserved address space.
func (a *Arena) Reserve(size uint64, align uint64) hw.Addr {
	mark := a.Mark()
	base := a.Alloc(size, align)
	a.bindings = a.bindings[:mark]
	a.sealed = true
	return base
}

// Record adds an explicit binding for [base, base+size) under the
// arena's current label — how a sparse structure reports the touched
// extent inside an earlier Reserve. Zero-size records are dropped.
func (a *Arena) Record(base hw.Addr, size uint64) {
	if size == 0 {
		return
	}
	a.bindings = append(a.bindings, Binding{Label: a.label, Base: base, Size: size})
	a.sealed = true
}

// Region is a fixed-stride array of elements in simulated memory,
// pairing a Go-side data structure with its simulated layout.
type Region struct {
	Base   hw.Addr
	Stride uint64 // bytes per element, including padding
	Count  int
}

// NewRegion allocates count elements of elemSize bytes each. Elements
// smaller than a cache line are padded up to line granularity only if
// padToLine is set; otherwise they pack contiguously, so consecutive
// elements may share lines — exactly like a real array.
func NewRegion(a *Arena, count int, elemSize uint64, padToLine bool) Region {
	stride := elemSize
	if padToLine {
		stride = (elemSize + hw.LineSize - 1) &^ uint64(hw.LineSize-1)
	}
	base := a.Alloc(stride*uint64(count), hw.LineSize)
	return Region{Base: base, Stride: stride, Count: count}
}

// Addr returns the simulated address of element i.
func (r Region) Addr(i int) hw.Addr {
	if i < 0 || i >= r.Count {
		panic(fmt.Sprintf("mem: region index %d out of range [0,%d)", i, r.Count))
	}
	return r.Base + hw.Addr(uint64(i)*r.Stride)
}

// Size returns the region's extent in bytes.
func (r Region) Size() uint64 { return r.Stride * uint64(r.Count) }

// Lines returns how many distinct cache lines the region spans.
func (r Region) Lines() int { return hw.LinesSpanned(r.Base, int(r.Size())) }
