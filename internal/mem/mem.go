// Package mem manages the simulated physical address space: per-NUMA-domain
// arenas hand out address ranges for the data structures of
// packet-processing applications, so that every logical structure has a
// stable simulated location and every access to it can be replayed against
// the cache hierarchy in package hw.
//
// The paper's configuration allocates each flow's data "locally", through
// the memory controller attached to the processor running the flow
// (Section 2.2, "NUMA memory allocation"); arenas make that placement
// decision explicit and testable.
package mem

import (
	"fmt"

	"pktpredict/internal/hw"
)

// Arena is a bump allocator over one NUMA domain's simulated address
// range. It is not safe for concurrent use; allocation happens during
// single-threaded experiment setup.
type Arena struct {
	domain int
	next   hw.Addr
	limit  hw.Addr
}

// arenaCapacity bounds each domain's allocatable range. 1 TiB per domain
// is far beyond any experiment's needs and keeps domain ids disjoint.
const arenaCapacity = hw.Addr(1) << 40

// NewArena returns an empty arena for NUMA domain d. Multiple arenas for
// the same domain would hand out overlapping addresses; create one per
// domain per experiment.
func NewArena(d int) *Arena {
	if d < 0 {
		panic(fmt.Sprintf("mem: negative NUMA domain %d", d))
	}
	base := hw.DomainBase(d)
	// The first page of every domain stays unallocated, like a real
	// address space's null page; address 0 is never a valid allocation.
	return &Arena{domain: d, next: base + 4096, limit: base + arenaCapacity}
}

// Domain returns the NUMA domain this arena allocates from.
func (a *Arena) Domain() int { return a.domain }

// Used returns the number of bytes allocated so far, excluding the
// reserved null page.
func (a *Arena) Used() uint64 { return uint64(a.next-hw.DomainBase(a.domain)) - 4096 }

// Alloc reserves size bytes aligned to align (which must be a power of
// two; 0 means cache-line alignment) and returns the base address.
func (a *Arena) Alloc(size uint64, align uint64) hw.Addr {
	if align == 0 {
		align = hw.LineSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (a.next + hw.Addr(align-1)) &^ hw.Addr(align-1)
	end := base + hw.Addr(size)
	if end > a.limit {
		panic(fmt.Sprintf("mem: domain %d arena exhausted (%d bytes requested)", a.domain, size))
	}
	a.next = end
	return base
}

// AllocLines reserves n cache lines and returns the base address.
func (a *Arena) AllocLines(n int) hw.Addr {
	return a.Alloc(uint64(n)*hw.LineSize, hw.LineSize)
}

// Region is a fixed-stride array of elements in simulated memory,
// pairing a Go-side data structure with its simulated layout.
type Region struct {
	Base   hw.Addr
	Stride uint64 // bytes per element, including padding
	Count  int
}

// NewRegion allocates count elements of elemSize bytes each. Elements
// smaller than a cache line are padded up to line granularity only if
// padToLine is set; otherwise they pack contiguously, so consecutive
// elements may share lines — exactly like a real array.
func NewRegion(a *Arena, count int, elemSize uint64, padToLine bool) Region {
	stride := elemSize
	if padToLine {
		stride = (elemSize + hw.LineSize - 1) &^ uint64(hw.LineSize-1)
	}
	base := a.Alloc(stride*uint64(count), hw.LineSize)
	return Region{Base: base, Stride: stride, Count: count}
}

// Addr returns the simulated address of element i.
func (r Region) Addr(i int) hw.Addr {
	if i < 0 || i >= r.Count {
		panic(fmt.Sprintf("mem: region index %d out of range [0,%d)", i, r.Count))
	}
	return r.Base + hw.Addr(uint64(i)*r.Stride)
}

// Size returns the region's extent in bytes.
func (r Region) Size() uint64 { return r.Stride * uint64(r.Count) }

// Lines returns how many distinct cache lines the region spans.
func (r Region) Lines() int { return hw.LinesSpanned(r.Base, int(r.Size())) }
