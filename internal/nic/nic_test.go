package nic

import (
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

func TestBufferPoolGetPutCycle(t *testing.T) {
	arena := mem.NewArena(0)
	bp := NewBufferPool(arena, 4, 2048)
	var ctx click.Ctx

	if bp.Available() != 4 {
		t.Fatalf("Available = %d, want 4", bp.Available())
	}
	idx, data, addr := bp.Get(&ctx)
	if len(data) != 2048 {
		t.Fatalf("buffer size = %d", len(data))
	}
	if hw.DomainOf(addr) != 0 {
		t.Fatalf("buffer in domain %d, want 0", hw.DomainOf(addr))
	}
	if bp.Available() != 3 {
		t.Fatalf("Available after Get = %d, want 3", bp.Available())
	}
	bp.Put(&ctx, idx)
	if bp.Available() != 4 {
		t.Fatalf("Available after Put = %d, want 4", bp.Available())
	}
}

func TestBufferPoolDistinctBuffers(t *testing.T) {
	arena := mem.NewArena(0)
	bp := NewBufferPool(arena, 8, 512)
	var ctx click.Ctx
	seen := make(map[int]bool)
	addrs := make(map[hw.Addr]bool)
	for i := 0; i < 8; i++ {
		idx, _, addr := bp.Get(&ctx)
		if seen[idx] || addrs[addr] {
			t.Fatalf("duplicate buffer %d / %#x", idx, addr)
		}
		seen[idx] = true
		addrs[addr] = true
	}
}

func TestBufferPoolExhaustionPanics(t *testing.T) {
	arena := mem.NewArena(0)
	bp := NewBufferPool(arena, 1, 64)
	var ctx click.Ctx
	bp.Get(&ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	bp.Get(&ctx)
}

func TestBufferPoolPutValidation(t *testing.T) {
	arena := mem.NewArena(0)
	bp := NewBufferPool(arena, 2, 64)
	var ctx click.Ctx
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid index")
		}
	}()
	bp.Put(&ctx, 99)
}

func TestBufferPoolEmitsRecycleTrace(t *testing.T) {
	arena := mem.NewArena(0)
	bp := NewBufferPool(arena, 2, 64)
	var ctx click.Ctx
	idx, _, _ := bp.Get(&ctx)
	bp.Put(&ctx, idx)
	if len(ctx.Ops) == 0 {
		t.Fatal("pool operations must emit a trace")
	}
	recycle := hw.RegisterFunc("skb_recycle")
	for _, op := range ctx.Ops {
		if op.Func != recycle {
			t.Fatalf("op %+v not attributed to skb_recycle", op)
		}
	}
	// After Get+Put the attribution function must be restored.
	ctx.Load(0x40)
	if ctx.Ops[len(ctx.Ops)-1].Func != hw.FuncOther {
		t.Fatal("pool did not restore the attribution function")
	}
}

func TestRingWrapsAround(t *testing.T) {
	arena := mem.NewArena(0)
	r := NewRing(arena, 4)
	var ctx click.Ctx
	first := func() hw.Addr {
		ctx.Ops = ctx.Ops[:0]
		r.Consume(&ctx)
		return ctx.Ops[0].Addr
	}
	a0 := first()
	for i := 0; i < 3; i++ {
		first()
	}
	if a4 := first(); a4 != a0 {
		t.Fatalf("ring did not wrap: first %#x, fifth %#x", a0, a4)
	}
}

func TestRingDescriptorsPack(t *testing.T) {
	arena := mem.NewArena(0)
	r := NewRing(arena, 8)
	var ctx click.Ctx
	r.Consume(&ctx)
	r.Consume(&ctx)
	if hw.LineOf(ctx.Ops[0].Addr) != hw.LineOf(ctx.Ops[1].Addr) {
		t.Fatal("16-byte descriptors should pack four to a line")
	}
}

func TestRingProduceStores(t *testing.T) {
	arena := mem.NewArena(0)
	r := NewRing(arena, 2)
	var ctx click.Ctx
	r.Produce(&ctx)
	if ctx.Ops[0].Kind != hw.OpStore {
		t.Fatalf("Produce emitted %v, want store", ctx.Ops[0].Kind)
	}
}

func TestNewValidation(t *testing.T) {
	arena := mem.NewArena(0)
	for _, f := range []func(){
		func() { NewBufferPool(arena, 0, 64) },
		func() { NewBufferPool(arena, 4, 0) },
		func() { NewRing(arena, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
