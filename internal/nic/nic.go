// Package nic models the parts of a multi-queue 10 GbE NIC (the paper's
// Intel 82599 "Niantic") that matter for cache behaviour: per-queue
// descriptor rings and the per-core recycled packet-buffer pool whose
// free-list manipulation is the paper's skb_recycle function.
//
// The paper eliminates "underlying" contention by giving each core its
// own receive/transmit queues and per-core buffer pools (Section 2.2);
// this package enforces the same design: nothing here is shared between
// cores.
package nic

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// fnRecycle attributes buffer-pool bookkeeping, mirroring the paper's
// skb_recycle profile entry.
var fnRecycle = hw.RegisterFunc("skb_recycle")

// BufferPool is a per-core pool of fixed-size packet buffers managed
// through a free stack, as Click's per-core socket-buffer recycling does.
// Get and Put perform the real free-list manipulation and emit its memory
// trace: the stack entries and head pointer are bookkeeping data that is
// touched on every packet — which is why, in the paper's Figure 7,
// skb_recycle's cached data is essentially never evicted.
type BufferPool struct {
	bufs    [][]byte
	region  mem.Region // simulated buffer storage
	stack   mem.Region // free-stack slots, 4 bytes each
	head    hw.Addr    // free-stack head index
	free    []int
	bufSize int
}

// NewBufferPool allocates count buffers of bufSize bytes from arena.
func NewBufferPool(arena *mem.Arena, count, bufSize int) *BufferPool {
	if count <= 0 || bufSize <= 0 {
		panic(fmt.Sprintf("nic: invalid pool %d x %d", count, bufSize))
	}
	bp := &BufferPool{
		region:  mem.NewRegion(arena, count, uint64(bufSize), true),
		stack:   mem.NewRegion(arena, count, 4, false),
		head:    arena.Alloc(hw.LineSize, hw.LineSize),
		bufSize: bufSize,
	}
	bp.bufs = make([][]byte, count)
	bp.free = make([]int, count)
	for i := range bp.bufs {
		bp.bufs[i] = make([]byte, bufSize)
		bp.free[i] = count - 1 - i // pop order: buffer 0 first
	}
	return bp
}

// Size returns the pool's buffer count.
func (bp *BufferPool) Size() int { return bp.region.Count }

// Available returns how many buffers are currently free.
func (bp *BufferPool) Available() int { return len(bp.free) }

// BufSize returns the byte size of each buffer.
func (bp *BufferPool) BufSize() int { return bp.bufSize }

// Get pops a free buffer, emitting the free-list trace. It returns the
// buffer index, its bytes, and its simulated address. It panics when the
// pool is exhausted — pipelines recycle every packet, so exhaustion means
// a leak, a bug worth failing loudly on.
//
//dataplane:stamped emits under the caller's Ctx bracket (sources and sinks own the attribution)
//dataplane:hotpath
func (bp *BufferPool) Get(ctx *click.Ctx) (idx int, data []byte, addr hw.Addr) {
	if len(bp.free) == 0 {
		panic("nic: buffer pool exhausted (leaked packets?)")
	}
	old := ctx.SetFunc(fnRecycle)
	defer ctx.SetFunc(old)
	idx = bp.free[len(bp.free)-1]
	bp.free = bp.free[:len(bp.free)-1]
	ctx.Load(bp.head)                     // read head index
	ctx.Load(bp.stack.Addr(len(bp.free))) // read stack slot
	ctx.Store(bp.head)                    // update head
	ctx.Compute(6, 6)
	return idx, bp.bufs[idx], bp.region.Addr(idx)
}

// Put returns buffer idx to the pool, emitting the free-list trace.
//
//dataplane:stamped emits under the caller's Ctx bracket (sources and sinks own the attribution)
//dataplane:hotpath
func (bp *BufferPool) Put(ctx *click.Ctx, idx int) {
	if idx < 0 || idx >= len(bp.bufs) {
		panic(fmt.Sprintf("nic: Put of invalid buffer %d", idx)) //dataplane:allow hotpathalloc formats only on the panic path, never in steady state
	}
	old := ctx.SetFunc(fnRecycle)
	defer ctx.SetFunc(old)
	ctx.Load(bp.head)
	ctx.Store(bp.stack.Addr(len(bp.free)))
	ctx.Store(bp.head)
	ctx.Compute(6, 6)
	bp.free = append(bp.free, idx)
}

// Ring is a descriptor ring for one RX or TX queue. Descriptors are 16
// bytes, four per cache line, so consecutive packets share descriptor
// lines — the access pattern that makes descriptor rings cache-friendly.
type Ring struct {
	desc mem.Region
	next int
}

// NewRing allocates a ring of n descriptors from arena.
func NewRing(arena *mem.Arena, n int) *Ring {
	if n <= 0 {
		panic("nic: ring size must be positive")
	}
	return &Ring{desc: mem.NewRegion(arena, n, 16, false)}
}

// Size returns the descriptor count.
func (r *Ring) Size() int { return r.desc.Count }

// Consume reads the next descriptor (RX side: the core checks what the
// NIC wrote) and advances the ring.
//
//dataplane:stamped emits under the caller's Ctx bracket (sources and sinks own the attribution)
//dataplane:hotpath
func (r *Ring) Consume(ctx *click.Ctx) {
	ctx.Load(r.desc.Addr(r.next))
	r.next = (r.next + 1) % r.desc.Count
}

// Produce writes the next descriptor (TX side: the core posts a packet
// for the NIC) and advances the ring.
//
//dataplane:stamped emits under the caller's Ctx bracket (sources and sinks own the attribution)
//dataplane:hotpath
func (r *Ring) Produce(ctx *click.Ctx) {
	ctx.Store(r.desc.Addr(r.next))
	r.next = (r.next + 1) % r.desc.Count
}
