package dpi

import (
	"fmt"
	"sync/atomic"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// banProbes bounds a linear probe chain; a full chain evicts its
// least-recently-seen entry, so the table behaves as an LRU verdict
// cache under address pressure — like the NAT flow table, it is the
// workload's large mutable state, and its placement is what
// MIGRATE_STATE decides.
const banProbes = 8

// BanTable is an LRU IP ban/verdict table: open addressing with linear
// probing over line-sized entries allocated from an arena, so the table
// is a labelled, placeable, migratable state resource exactly like the
// NAT flow table (the graph builder labels the binding with the
// element's node name).
//
// Concurrency contract: one writer (the owning worker, via Check) and
// any number of readers (Contains). Entries are packed into single
// atomic words — address(32) | LRU stamp(32), zero meaning empty — so
// readers never observe a torn entry. Slots are never emptied (full
// chains evict in place), so probe chains terminate at the first empty
// slot for readers and writer alike.
type BanTable struct {
	slots  []atomic.Uint64
	region mem.Region // one simulated line per entry
	mask   uint64
	clock  uint32

	// Statistics, owned by the writer.
	Lookups   uint64
	Hits      uint64
	Inserts   uint64
	Evictions uint64
}

// NewBanTable builds a table with capacity entries (rounded up to a
// power of two) allocated from arena; a nil arena skips the simulated
// region (engine-only tests).
func NewBanTable(arena *mem.Arena, capacity int) (*BanTable, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dpi: ban table capacity %d must be positive", capacity)
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	t := &BanTable{
		slots: make([]atomic.Uint64, size),
		mask:  uint64(size - 1),
	}
	if arena != nil {
		t.region = mem.NewRegion(arena, size, hw.LineSize, true)
	}
	return t, nil
}

// Size returns the slot count.
func (t *BanTable) Size() int { return len(t.slots) }

// SimBytes returns the table's simulated footprint.
func (t *BanTable) SimBytes() uint64 { return t.region.Size() }

// Occupied returns the number of live entries.
func (t *BanTable) Occupied() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].Load() != 0 {
			n++
		}
	}
	return n
}

// banHash spreads the 32-bit address over the table.
func banHash(ip uint32) uint64 {
	x := uint64(ip) * 0x9e3779b97f4a7c15
	return x >> 32
}

// Lookup and insert costs beyond the probe loads: the hash and the
// per-probe compare.
const (
	banHashCompute = 12
	banHashInstrs  = 10
	banCmpCompute  = 4
	banCmpInstrs   = 5
)

// Check records a sighting of ip and returns its verdict: true when ip
// was already in the table (a repeat offender — the hit refreshes its
// LRU stamp), false on first sight (the address is inserted, evicting
// the probe chain's least-recently-seen entry when full). It emits the
// probe trace against the table's simulated lines; writer-side only.
//
//dataplane:hotpath
//dataplane:stamped emits under the caller's Ctx bracket (called from Element.Process)
func (t *BanTable) Check(ctx *click.Ctx, ip uint32) bool {
	t.clock++
	if t.clock == 0 { // stamp 0 means empty; skip it on wrap
		t.clock = 1
	}
	t.Lookups++
	ctx.Compute(banHashCompute, banHashInstrs)
	idx := banHash(ip) & t.mask
	victim := idx
	victimStamp := ^uint32(0)
	for probe := 0; probe < banProbes; probe++ {
		packed := t.slots[idx].Load()
		if t.region.Count > 0 {
			ctx.Load(t.region.Addr(int(idx)))
		}
		ctx.Compute(banCmpCompute, banCmpInstrs)
		if packed == 0 {
			t.Inserts++
			t.slots[idx].Store(uint64(ip)<<32 | uint64(t.clock))
			if t.region.Count > 0 {
				ctx.Store(t.region.Addr(int(idx)))
			}
			return false
		}
		if uint32(packed>>32) == ip {
			t.Hits++
			t.slots[idx].Store(uint64(ip)<<32 | uint64(t.clock))
			if t.region.Count > 0 {
				ctx.Store(t.region.Addr(int(idx)))
			}
			return true
		}
		if stamp := uint32(packed); stamp < victimStamp {
			victim, victimStamp = idx, stamp
		}
		idx = (idx + 1) & t.mask
	}
	// Chain full: evict the least-recently-seen probed entry.
	t.Evictions++
	t.Inserts++
	t.slots[victim].Store(uint64(ip)<<32 | uint64(t.clock))
	if t.region.Count > 0 {
		ctx.Store(t.region.Addr(int(victim)))
	}
	return false
}

// Contains reports whether ip currently has an entry, without recording
// a sighting or emitting a trace. Safe to call concurrently with the
// writer's Check — the control plane's read path.
func (t *BanTable) Contains(ip uint32) bool {
	idx := banHash(ip) & t.mask
	for probe := 0; probe < banProbes; probe++ {
		packed := t.slots[idx].Load()
		if packed == 0 {
			return false
		}
		if uint32(packed>>32) == ip {
			return true
		}
		idx = (idx + 1) & t.mask
	}
	return false
}
