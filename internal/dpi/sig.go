// Package dpi implements the engines behind the IDS workload class: a
// compiled multi-pattern signature matcher, a sampled Shannon-entropy
// estimator, and an LRU ban/verdict table. The click elements wrapping
// them live in internal/elements; the engines here do the real work on
// real payload bytes and expose the simulated-memory regions the
// elements emit their traces against.
//
// The IDS class exists to stress the prediction model with per-packet
// cost heterogeneity the NAT/firewall/monitor workloads lack: a cheap
// always-on scan over every payload byte, an expensive
// (hundreds-of-nanoseconds) entropy estimate on the suspect path only,
// and a second large mutable state table whose placement matters.
package dpi

import (
	"fmt"

	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/rng"
)

// Signature length bounds for derived sets: long enough that a random
// payload cannot contain one by accident, short enough to keep the
// compiled automaton small.
const (
	SigMinLen = 8
	SigMaxLen = 16
)

// Compiler limits. The automaton's dense transition table costs
// 1 KiB per state and there is one state per distinct pattern-prefix
// byte, so these bounds cap a table at a few MiB — generous for any
// experiment, small enough that adversarial configurations (and the
// fuzzer) cannot balloon the build.
const (
	MaxPatterns     = 256
	MaxPatternBytes = 4096
)

// Signatures derives a deterministic signature set from a seed: n
// byte patterns of SigMinLen..SigMaxLen random bytes. The traffic
// generator and the classifier derive the same set from the same seed,
// which is how a scenario controls its signature-hit rate exactly.
func Signatures(seed uint64, n int) [][]byte {
	r := rng.New(seed ^ 0x51697a7ab1e5)
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, SigMinLen+r.Intn(SigMaxLen-SigMinLen+1))
		r.Fill(b)
		out[i] = b
	}
	return out
}

// SigTable is a multi-pattern matcher compiled at construction: an
// Aho-Corasick automaton flattened to a dense DFA, so the scan loop is
// one table transition plus one output check per payload byte — no
// per-packet setup, no allocation, no backtracking.
//
// The transition table's simulated footprint (one 1 KiB row per state,
// allocated from the arena under the "sig_table" label) is what the
// classifier element's trace touches, so the automaton shows up in the
// cache model exactly as large as it really is.
type SigTable struct {
	// trans is the dense DFA: trans[state<<8|byte] is the next state.
	trans []int32
	// out[state] is the lowest matching pattern id + 1 reachable at
	// state (via its suffix chain), 0 when none.
	out    []int32
	region mem.Region // one row of 256 int32 transitions per state
	npat   int
}

// NewSigTable compiles patterns into a matcher. With a non-nil arena
// the transition table's simulated rows are allocated under the
// "sig_table" label (tests and the fuzzer pass nil). Empty patterns,
// and sets beyond the compiler limits, are rejected.
func NewSigTable(arena *mem.Arena, patterns [][]byte) (*SigTable, error) {
	if len(patterns) > MaxPatterns {
		return nil, fmt.Errorf("dpi: %d patterns exceed the %d-pattern limit", len(patterns), MaxPatterns)
	}
	total := 0
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("dpi: pattern %d is empty", i)
		}
		total += len(p)
	}
	if total > MaxPatternBytes {
		return nil, fmt.Errorf("dpi: %d total pattern bytes exceed the %d-byte limit", total, MaxPatternBytes)
	}

	// Trie construction. State 0 is the root; goto_[s][c] is -1 where
	// the trie has no edge.
	maxStates := total + 1
	goto_ := make([]int32, maxStates*256)
	for i := range goto_ {
		goto_[i] = -1
	}
	out := make([]int32, maxStates)
	states := int32(1)
	for id, p := range patterns {
		s := int32(0)
		for _, c := range p {
			if goto_[int(s)<<8|int(c)] < 0 {
				goto_[int(s)<<8|int(c)] = states
				states++
			}
			s = goto_[int(s)<<8|int(c)]
		}
		if out[s] == 0 || int32(id+1) < out[s] {
			out[s] = int32(id + 1)
		}
	}

	// Breadth-first failure links, merging outputs down the suffix
	// chain, then flatten to a dense DFA: missing edges take the fail
	// state's (already dense) transition.
	fail := make([]int32, states)
	queue := make([]int32, 0, states)
	for c := 0; c < 256; c++ {
		if nxt := goto_[c]; nxt >= 0 {
			queue = append(queue, nxt)
		} else {
			goto_[c] = 0
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if o := out[fail[s]]; o != 0 && (out[s] == 0 || o < out[s]) {
			out[s] = o
		}
		for c := 0; c < 256; c++ {
			nxt := goto_[int(s)<<8|c]
			if nxt < 0 {
				goto_[int(s)<<8|c] = goto_[int(fail[s])<<8|c]
				continue
			}
			fail[nxt] = goto_[int(fail[s])<<8|c]
			queue = append(queue, nxt)
		}
	}

	t := &SigTable{
		trans: goto_[:int(states)*256],
		out:   out[:states],
		npat:  len(patterns),
	}
	if arena != nil {
		t.region = mem.NewRegion(arena, int(states), 256*4, false)
	}
	return t, nil
}

// Patterns returns the number of compiled patterns.
func (t *SigTable) Patterns() int { return t.npat }

// States returns the automaton's state count.
func (t *SigTable) States() int { return len(t.out) }

// SimBytes returns the transition table's simulated footprint.
func (t *SigTable) SimBytes() uint64 { return t.region.Size() }

// RowAddr returns the simulated address of automaton row i (mod the
// state count) — the classifier element samples these to model the
// data-dependent table walk.
func (t *SigTable) RowAddr(i int) hw.Addr {
	return t.region.Addr(i % t.region.Count)
}

// HasRegion reports whether the table carries a simulated region.
func (t *SigTable) HasRegion() bool { return t.region.Count > 0 }

// Match scans b and returns the lowest pattern index that occurs
// anywhere in it, or -1. This is the IDS fast path: every payload byte
// of every packet goes through this loop.
//
//dataplane:hotpath
func (t *SigTable) Match(b []byte) int {
	s := int32(0)
	best := int32(0)
	trans, outs := t.trans, t.out
	for i := 0; i < len(b); i++ {
		s = trans[int(s)<<8|int(b[i])]
		if o := outs[s]; o != 0 && (best == 0 || o < best) {
			best = o
		}
	}
	return int(best) - 1
}
