package dpi

import (
	"math"
	"testing"

	"pktpredict/internal/rng"
)

// entropyBound is the property the estimator promises: within
// EntropyErrorBoundBits absolute or EntropyErrorBoundRel relative of the
// exact payload entropy, whichever is looser.
func entropyBound(exact float64) float64 {
	if rel := exact * EntropyErrorBoundRel; rel > EntropyErrorBoundBits {
		return rel
	}
	return EntropyErrorBoundBits
}

func TestEstimateBitsWithinBoundAcrossDistributions(t *testing.T) {
	r := rng.New(0xe27)
	var est Entropy
	check := func(name string, payload []byte) {
		t.Helper()
		exact := ExactEntropyBits(payload)
		got := est.EstimateBits(payload, EntropyWindow)
		if diff := math.Abs(got - exact); diff > entropyBound(exact) {
			t.Fatalf("%s (%d bytes): estimate %.4f vs exact %.4f, |diff| %.4f > bound %.4f",
				name, len(payload), got, exact, diff, entropyBound(exact))
		}
	}
	for trial := 0; trial < 10; trial++ {
		for _, size := range []int{64, 256, 512, 1024, 2048, 4096} {
			// Uniform over 2^bits alphabets, the generator's
			// LowEntropyBits shapes: masking uniform bytes keeps the draw
			// uniform over the smaller alphabet.
			for bits := 0; bits <= 8; bits++ {
				payload := make([]byte, size)
				r.Fill(payload)
				mask := byte(1<<bits - 1)
				for i := range payload {
					payload[i] &= mask
				}
				check("uniform", payload)
			}
			// Heavily skewed: mostly one value with uniform noise mixed
			// in at increasing rates — the sparse singleton tail is the
			// estimator's worst case.
			for _, noise := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
				payload := make([]byte, size)
				for i := range payload {
					if r.Float64() < noise {
						payload[i] = byte(r.Uint32())
					} else {
						payload[i] = 0x41
					}
				}
				check("skewed", payload)
			}
			// Zipf-distributed symbols, the classic heavy-tail case.
			z := rng.NewZipf(rng.New(uint64(size)+uint64(trial)), 256, 1.2)
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(z.Next())
			}
			check("zipf", payload)
		}
	}
}

func TestEstimateBitsExactWhenWindowCoversPayload(t *testing.T) {
	// window >= len(payload) samples every byte, so the subsample bias
	// correction vanishes and the estimate is the exact entropy.
	payload := []byte("aaaabbbbccccdddd")
	var est Entropy
	exact := ExactEntropyBits(payload)
	got := est.EstimateBits(payload, len(payload))
	if diff := math.Abs(got - exact); diff > 1e-9 {
		t.Fatalf("full-window estimate %.9f, want exact %.9f", got, exact)
	}
}

func TestEstimateBitsEdgeCases(t *testing.T) {
	var est Entropy
	if got := est.EstimateBits(nil, EntropyWindow); got != 0 {
		t.Fatalf("EstimateBits(nil) = %v, want 0", got)
	}
	one := []byte{7}
	if got := est.EstimateBits(one, 0); got != 0 {
		t.Fatalf("single-byte payload has entropy %v, want 0", got)
	}
	// Clamped at 8 bits/byte no matter the correction.
	payload := make([]byte, 4096)
	rng.New(5).Fill(payload)
	if got := est.EstimateBits(payload, len(payload)); got > 8 {
		t.Fatalf("estimate %v exceeds 8 bits/byte", got)
	}
	// The struct is reusable: a low-entropy estimate right after a
	// high-entropy one must not inherit stale counts.
	r := rng.New(9)
	hi := make([]byte, 1024)
	r.Fill(hi)
	est.EstimateBits(hi, EntropyWindow)
	lo := make([]byte, 1024) // all zeros
	if got := est.EstimateBits(lo, EntropyWindow); got != 0 {
		t.Fatalf("stale counts: zero payload estimated at %v bits", got)
	}
}
