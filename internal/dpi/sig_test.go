package dpi

import (
	"bytes"
	"testing"

	"pktpredict/internal/mem"
)

func TestSignaturesDeterministic(t *testing.T) {
	a := Signatures(42, 16)
	b := Signatures(42, 16)
	if len(a) != 16 {
		t.Fatalf("got %d signatures, want 16", len(a))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("signature %d differs across equal seeds", i)
		}
		if len(a[i]) < SigMinLen || len(a[i]) > SigMaxLen {
			t.Fatalf("signature %d length %d outside [%d,%d]", i, len(a[i]), SigMinLen, SigMaxLen)
		}
	}
	c := Signatures(43, 16)
	same := true
	for i := range a {
		if !bytes.Equal(a[i], c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical signature sets")
	}
}

func mustTable(t *testing.T, patterns ...string) *SigTable {
	t.Helper()
	bs := make([][]byte, len(patterns))
	for i, p := range patterns {
		bs[i] = []byte(p)
	}
	tab, err := NewSigTable(nil, bs)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSigTableMatchesAtAnyOffset(t *testing.T) {
	tab := mustTable(t, "evilbytes")
	for _, hay := range []string{
		"evilbytes",
		"evilbytes trailing",
		"leading evilbytes",
		"mid evilbytes dle",
	} {
		if got := tab.Match([]byte(hay)); got != 0 {
			t.Fatalf("Match(%q) = %d, want 0", hay, got)
		}
	}
	for _, hay := range []string{"", "clean", "evilbyte", "vilbytes", "evil bytes"} {
		if got := tab.Match([]byte(hay)); got != -1 {
			t.Fatalf("Match(%q) = %d, want -1", hay, got)
		}
	}
}

func TestSigTableReturnsLowestPatternIndex(t *testing.T) {
	tab := mustTable(t, "bravo", "alpha", "charlie")
	cases := []struct {
		hay  string
		want int
	}{
		{"xx charlie xx", 2},
		{"xx alpha xx", 1},
		{"alpha then bravo", 0}, // lowest index, not first occurrence
		{"bravo then alpha", 0},
		{"charlie bravo", 0},
	}
	for _, c := range cases {
		if got := tab.Match([]byte(c.hay)); got != c.want {
			t.Fatalf("Match(%q) = %d, want %d", c.hay, got, c.want)
		}
	}
}

func TestSigTableOverlappingPatterns(t *testing.T) {
	// "cde" is a substring of pattern 0; the suffix chain must surface it.
	tab := mustTable(t, "abcdef", "cde")
	if got := tab.Match([]byte("xxcdexx")); got != 1 {
		t.Fatalf("Match(substring pattern) = %d, want 1", got)
	}
	if got := tab.Match([]byte("xxabcdefxx")); got != 0 {
		t.Fatalf("Match(both) = %d, want 0", got)
	}
	// Overlapping occurrences across a shared prefix.
	tab = mustTable(t, "aab", "aaa")
	if got := tab.Match([]byte("aaab")); got != 0 {
		t.Fatalf("Match(\"aaab\") = %d, want 0 (both match; lowest wins)", got)
	}
	if got := tab.Match([]byte("aaac")); got != 1 {
		t.Fatalf("Match(\"aaac\") = %d, want 1", got)
	}
}

func TestSigTableDuplicatePatternsKeepLowestID(t *testing.T) {
	tab := mustTable(t, "dup", "dup", "other")
	if got := tab.Match([]byte("xdupx")); got != 0 {
		t.Fatalf("Match(duplicate pattern) = %d, want 0", got)
	}
}

func TestSigTableRejectsBadSets(t *testing.T) {
	if _, err := NewSigTable(nil, [][]byte{[]byte("ok"), {}}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	many := make([][]byte, MaxPatterns+1)
	for i := range many {
		many[i] = []byte{byte(i), byte(i >> 8)}
	}
	if _, err := NewSigTable(nil, many); err == nil {
		t.Fatal("over-limit pattern count accepted")
	}
	big := [][]byte{make([]byte, MaxPatternBytes+1)}
	for i := range big[0] {
		big[0][i] = 1
	}
	if _, err := NewSigTable(nil, big); err == nil {
		t.Fatal("over-limit pattern bytes accepted")
	}
}

func TestSigTableRegionSizedToAutomaton(t *testing.T) {
	arena := mem.NewArena(0)
	tab, err := NewSigTable(arena, Signatures(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !tab.HasRegion() {
		t.Fatal("arena-backed table has no region")
	}
	if want := uint64(tab.States()) * 256 * 4; tab.SimBytes() != want {
		t.Fatalf("SimBytes = %d, want %d (one 1KiB row per state)", tab.SimBytes(), want)
	}
	// Row addresses must stay inside the region for any byte value.
	lo, hi := tab.RowAddr(0), tab.RowAddr(0)
	for i := 0; i < 256; i++ {
		a := tab.RowAddr(i)
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if span := uint64(hi - lo); span >= tab.SimBytes() {
		t.Fatalf("row addresses span %d bytes, region only %d", span, tab.SimBytes())
	}
}
