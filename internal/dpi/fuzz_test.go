package dpi

import (
	"bytes"
	"testing"
)

// naiveMatch is the reference the compiled matcher must agree with: the
// lowest pattern index occurring anywhere in hay.
func naiveMatch(patterns [][]byte, hay []byte) int {
	for i, p := range patterns {
		if bytes.Contains(hay, p) {
			return i
		}
	}
	return -1
}

// carvePatterns splits fuzz input into a pattern set and a haystack:
// the first byte picks the pattern count, each pattern takes a length
// byte plus that many bytes, and whatever remains is the haystack.
func carvePatterns(data []byte) ([][]byte, []byte) {
	if len(data) == 0 {
		return nil, nil
	}
	n := int(data[0]&0x0f) + 1
	data = data[1:]
	patterns := make([][]byte, 0, n)
	for i := 0; i < n && len(data) > 0; i++ {
		l := int(data[0]&0x1f) + 1
		data = data[1:]
		if l > len(data) {
			l = len(data)
		}
		if l == 0 {
			break
		}
		patterns = append(patterns, data[:l])
		data = data[l:]
	}
	return patterns, data
}

func FuzzSigTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x03, 'a', 'b', 'c', 'x', 'a', 'b', 'c', 'y'})
	f.Add([]byte{0x02, 0x02, 'a', 'a', 0x03, 'a', 'a', 'b', 'z', 'a', 'a', 'b'})
	// Duplicate and overlapping patterns over a matching haystack.
	f.Add([]byte{0x03, 0x01, 'q', 0x01, 'q', 0x02, 'q', 'q', 'q', 'q', 'q'})
	// Pattern never in the haystack.
	f.Add([]byte{0x01, 0x04, 0xde, 0xad, 0xbe, 0xef, 'c', 'l', 'e', 'a', 'n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		patterns, hay := carvePatterns(data)
		tab, err := NewSigTable(nil, patterns)
		if err != nil {
			// Limit rejections are fine; the compiler must just never
			// panic or mis-build.
			return
		}
		if len(patterns) == 0 {
			if got := tab.Match(hay); got != -1 {
				t.Fatalf("empty pattern set matched: %d", got)
			}
			return
		}
		got := tab.Match(hay)
		want := naiveMatch(patterns, hay)
		if got != want {
			t.Fatalf("Match = %d, naive reference = %d (patterns %q, hay %q)",
				got, want, patterns, hay)
		}
		// Every pattern must match its own bytes verbatim.
		for i, p := range patterns {
			if m := tab.Match(p); m < 0 || m > i {
				t.Fatalf("Match(pattern %d) = %d, want a match with index <= %d", i, m, i)
			}
		}
	})
}
