package dpi

import (
	"sync"
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/rng"
)

// sameBucketIPs brute-forces n distinct addresses whose probe chains all
// start at the same slot of a size-slot table.
func sameBucketIPs(t *testing.T, size, n int) []uint32 {
	t.Helper()
	mask := uint64(size - 1)
	want := banHash(1) & mask
	out := []uint32{1}
	for ip := uint32(2); len(out) < n; ip++ {
		if banHash(ip)&mask == want {
			out = append(out, ip)
		}
		if ip == 0 {
			t.Fatal("address space exhausted hunting for colliding IPs")
		}
	}
	return out
}

func TestBanTableRepeatOffender(t *testing.T) {
	tb, err := NewBanTable(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	var ctx click.Ctx
	if tb.Check(&ctx, 0x0a000001) {
		t.Fatal("first sighting reported as repeat offender")
	}
	if !tb.Check(&ctx, 0x0a000001) {
		t.Fatal("second sighting not reported as repeat offender")
	}
	if tb.Check(&ctx, 0x0a000002) {
		t.Fatal("unrelated address reported as repeat offender")
	}
	if tb.Hits != 1 || tb.Inserts != 2 || tb.Lookups != 3 {
		t.Fatalf("stats hits=%d inserts=%d lookups=%d, want 1/2/3", tb.Hits, tb.Inserts, tb.Lookups)
	}
	if !tb.Contains(0x0a000001) || !tb.Contains(0x0a000002) || tb.Contains(0x0a000003) {
		t.Fatal("Contains disagrees with Check history")
	}
}

func TestBanTableEvictsLeastRecentlySeen(t *testing.T) {
	tb, err := NewBanTable(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	ips := sameBucketIPs(t, tb.Size(), banProbes+2)
	var ctx click.Ctx
	// Fill one probe chain completely.
	for _, ip := range ips[:banProbes] {
		tb.Check(&ctx, ip)
	}
	// Refresh the oldest entry so it is no longer the LRU victim.
	if !tb.Check(&ctx, ips[0]) {
		t.Fatal("refresh of a live entry missed")
	}
	// Overflow the chain: the victim must be ips[1], now the oldest.
	if tb.Check(&ctx, ips[banProbes]) {
		t.Fatal("fresh address reported as repeat offender")
	}
	if tb.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tb.Evictions)
	}
	if tb.Contains(ips[1]) {
		t.Fatal("LRU entry survived the eviction")
	}
	for _, ip := range []uint32{ips[0], ips[2], ips[3], ips[banProbes]} {
		if !tb.Contains(ip) {
			t.Fatalf("entry %#x evicted out of LRU order", ip)
		}
	}
	// A second overflow must take the next-oldest, ips[2].
	tb.Check(&ctx, ips[banProbes+1])
	if tb.Contains(ips[2]) {
		t.Fatal("second eviction did not follow LRU order")
	}
	if !tb.Contains(ips[3]) {
		t.Fatal("second eviction took the wrong victim")
	}
}

func TestBanTableTraceAndFootprint(t *testing.T) {
	arena := mem.NewArena(0)
	tb, err := NewBanTable(arena, 100) // rounds up to 128
	if err != nil {
		t.Fatal(err)
	}
	if tb.Size() != 128 {
		t.Fatalf("size = %d, want 128", tb.Size())
	}
	if want := uint64(128 * hw.LineSize); tb.SimBytes() != want {
		t.Fatalf("SimBytes = %d, want %d (one line per slot)", tb.SimBytes(), want)
	}
	var ctx click.Ctx
	tb.Check(&ctx, 0xc0a80101)
	var loads, stores int
	for _, op := range ctx.Ops {
		switch op.Kind {
		case hw.OpLoad:
			loads++
		case hw.OpStore:
			stores++
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("insert emitted %d loads / %d stores, want both > 0", loads, stores)
	}
}

func TestBanTableConcurrentReadersUnderWriter(t *testing.T) {
	tb, err := NewBanTable(nil, 256)
	if err != nil {
		t.Fatal(err)
	}
	const perWorker = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single writer, as in the dataplane
		defer wg.Done()
		var ctx click.Ctx
		r := rng.New(0xbad)
		for i := 0; i < perWorker; i++ {
			tb.Check(&ctx, uint32(r.Intn(512)))
			ctx.Ops = ctx.Ops[:0]
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) { // control-plane readers
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < perWorker; i++ {
				ip := uint32(r.Intn(512))
				if tb.Contains(ip) && !tb.Contains(ip) {
					// A live entry can be evicted between the two reads,
					// but never observed torn — Contains itself must stay
					// race-free, which is what -race checks here.
					continue
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	if tb.Occupied() > tb.Size() {
		t.Fatalf("occupied %d exceeds size %d", tb.Occupied(), tb.Size())
	}
}
