package dpi

import "math"

// EntropyWindow is the default sample budget for the estimator. 512
// samples keeps the worst-case estimator bias (a full-range uniform
// byte distribution) inside the stated error bound below while keeping
// the per-packet cost bounded.
const EntropyWindow = 512

// entropyMaxStride caps how sparsely the estimator samples: at most
// every other byte, no matter how small the window. Beyond that ratio
// an undersampled histogram cannot see the payload's singleton tail and
// no first-order bias correction recovers it, so for large payloads the
// sample count grows with the payload instead — like the signature
// scan, the cost per byte stays bounded.
const entropyMaxStride = 2

// SampleCount returns the number of bytes EstimateBits actually samples
// for a payload of n bytes under the given window — the element's cost
// model charges per sample, so it must agree with the estimator.
func SampleCount(n, window int) int {
	if n <= 0 {
		return 0
	}
	if window <= 0 {
		window = EntropyWindow
	}
	if window > n {
		window = n
	}
	stride := n / window
	if stride > entropyMaxStride {
		stride = entropyMaxStride
	}
	return (n + stride - 1) / stride
}

// EntropyErrorBound is the estimator's stated accuracy against the
// exact Shannon entropy of the full payload: the estimate is within
// max(0.45 bits, 7.5% relative) on i.i.d. payload distributions — the
// bound internal/dpi's property test enforces, mirroring the LatHist
// quantile-error contract. The absolute term covers the low-entropy
// regime, where a half-sampled histogram misses part of a sparse
// singleton tail; near the gate's operating range (6+ bits/byte) the
// relative term governs and the estimator is far tighter.
const (
	EntropyErrorBoundBits = 0.45
	EntropyErrorBoundRel  = 0.075
)

// Entropy estimates the Shannon entropy of payload bytes from a sampled
// window. The histogram lives in the struct so steady-state estimation
// allocates nothing; an instance is owned by one element (one worker)
// and must not be shared.
type Entropy struct {
	counts [256]uint32
}

// EstimateBits returns a Shannon-entropy estimate of b in bits per
// byte, from at most window samples taken at a uniform stride (window
// <= 0 means EntropyWindow). The estimate targets the payload's
// empirical entropy (ExactEntropyBits), so the Miller-Madow bias term
// -(m-1)/(2n ln 2) is applied only for the gap between the sample size
// and the payload size — a plug-in over n of N bytes is biased low by
// roughly (m-1)/(2 ln 2) * (1/n - 1/N) relative to the full-payload
// plug-in, and vanishes when the window covers the payload. That
// correction is what keeps a 512-sample estimate of a full-range
// uniform payload inside EntropyErrorBound.
//
// This is the deliberately expensive detector: a histogram pass over
// the window plus a log2 per observed symbol value, hundreds of
// nanoseconds per packet on the modelled platform.
//
//dataplane:hotpath
func (e *Entropy) EstimateBits(b []byte, window int) float64 {
	if len(b) == 0 {
		return 0
	}
	if window <= 0 {
		window = EntropyWindow
	}
	if window > len(b) {
		window = len(b)
	}
	stride := len(b) / window
	if stride > entropyMaxStride {
		stride = entropyMaxStride
	}
	for i := range e.counts {
		e.counts[i] = 0
	}
	n := 0
	for i := 0; i < len(b); i, n = i+stride, n+1 {
		e.counts[b[i]]++
	}
	inv := 1 / float64(n)
	h := 0.0
	m := 0
	for _, c := range e.counts {
		if c == 0 {
			continue
		}
		m++
		p := float64(c) * inv
		h -= p * math.Log2(p)
	}
	h += float64(m-1) / (2 * math.Ln2) * (1/float64(n) - 1/float64(len(b)))
	if h > 8 {
		h = 8
	}
	return h
}

// ExactEntropyBits returns the exact Shannon entropy of b in bits per
// byte — the reference the estimator is tested against, and too slow
// for the packet path (it is not annotated as one).
func ExactEntropyBits(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var counts [256]uint64
	for _, c := range b {
		counts[c]++
	}
	inv := 1 / float64(len(b))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) * inv
		h -= p * math.Log2(p)
	}
	return h
}
