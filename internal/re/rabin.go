// Package re implements protocol-independent redundancy elimination
// (Spring & Wetherall, SIGCOMM 2000), the paper's RE workload: a rolling
// Rabin fingerprint over each packet's payload selects representative
// content fingerprints; a fingerprint table maps them to recently seen
// content in a packet store; matched regions are replaced by (offset,
// length) tokens that the far end expands from its own store.
//
// RE is the paper's representative memory-intensive workload that does
// NOT benefit from caching: the fingerprint table and packet store are
// tens of megabytes accessed at random, so almost every access misses the
// L3 — which is what makes RE the most aggressive co-runner (Figure 2).
package re

// Rabin fingerprinting over GF(2): the fingerprint of a byte string is
// its residue modulo an irreducible polynomial, computed incrementally
// with byte-at-a-time tables, plus a second table to "pop" the byte
// leaving a fixed-size sliding window.

// DefaultPoly is a degree-63 irreducible polynomial over GF(2), the one
// LBFS popularised for content fingerprinting.
const DefaultPoly = 0xbfe6b8a5bf378d83

// DefaultWindow is the sliding-window width in bytes over which
// fingerprints are computed.
const DefaultWindow = 64

// Rabin computes rolling fingerprints with a fixed window.
type Rabin struct {
	poly   uint64
	k      int    // degree of poly
	mask   uint64 // (1<<k)-1: valid fingerprint bits
	window int
	shiftT [256]uint64 // shiftT[b] = (b·x^k) mod poly
	popT   [256]uint64 // popT[b]  = (b·x^(8·(window-1))) mod poly
}

// NewRabin builds a fingerprinter for the given polynomial (degree 9..63,
// top bit being the degree) and window width in bytes.
func NewRabin(poly uint64, window int) *Rabin {
	k := deg(poly)
	if k < 9 || k > 63 {
		panic("re: polynomial degree must be in [9,63]")
	}
	if window < 2 {
		panic("re: window must be at least 2 bytes")
	}
	r := &Rabin{poly: poly, k: k, mask: 1<<uint(k) - 1, window: window}

	// xpow[i] = x^(k+i) mod poly, for i = 0..7.
	var xpow [8]uint64
	v := uint64(1) // x^0
	for i := 0; i < k; i++ {
		v = r.mulx(v)
	}
	for i := 0; i < 8; i++ {
		xpow[i] = v
		v = r.mulx(v)
	}
	for b := 0; b < 256; b++ {
		var t uint64
		for i := 0; i < 8; i++ {
			if b&(1<<uint(i)) != 0 {
				t ^= xpow[i]
			}
		}
		r.shiftT[b] = t
	}
	// popT via the definition: fingerprint of byte b followed by
	// window-1 zero bytes.
	for b := 0; b < 256; b++ {
		fp := r.appendByte(0, byte(b))
		for i := 0; i < window-1; i++ {
			fp = r.appendByte(fp, 0)
		}
		r.popT[b] = fp
	}
	return r
}

// deg returns the degree of polynomial p (-1 for 0).
func deg(p uint64) int {
	d := -1
	for i := 0; i < 64; i++ {
		if p&(1<<uint(i)) != 0 {
			d = i
		}
	}
	return d
}

// mulx multiplies a residue (degree < k) by x, reducing mod poly.
func (r *Rabin) mulx(v uint64) uint64 {
	v <<= 1
	if v&(1<<uint(r.k)) != 0 {
		v ^= r.poly
	}
	return v & r.mask
}

// appendByte extends fp with one byte: fp' = (fp·x^8 + b) mod poly.
// fp·x^8 = top·x^k + rest where top is fp's high byte; the precomputed
// table reduces the top term.
func (r *Rabin) appendByte(fp uint64, b byte) uint64 {
	top := byte(fp >> uint(r.k-8))
	return ((fp<<8)&r.mask | uint64(b)) ^ r.shiftT[top]
}

// Window returns the window width in bytes.
func (r *Rabin) Window() int { return r.window }

// Roll computes the fingerprint at every position of data where a full
// window is available, calling fn(pos, fp) for each, where pos is the
// index of the window's last byte. It performs the real rolling-hash
// arithmetic over the real bytes.
func (r *Rabin) Roll(data []byte, fn func(pos int, fp uint64)) {
	if len(data) < r.window {
		return
	}
	var fp uint64
	for i := 0; i < r.window; i++ {
		fp = r.appendByte(fp, data[i])
	}
	fn(r.window-1, fp)
	for i := r.window; i < len(data); i++ {
		fp ^= r.popT[data[i-r.window]]
		fp = r.appendByte(fp, data[i])
		fn(i, fp)
	}
}

// FingerprintAt computes the fingerprint of the window ending at position
// pos from scratch, for verification in tests.
func (r *Rabin) FingerprintAt(data []byte, pos int) uint64 {
	var fp uint64
	for i := pos - r.window + 1; i <= pos; i++ {
		fp = r.appendByte(fp, data[i])
	}
	return fp
}
