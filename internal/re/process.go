package re

import (
	"encoding/binary"
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
)

// Config sizes one RE processor instance.
type Config struct {
	// StoreBytes is the packet-store capacity. The paper holds one
	// second of traffic (~100 MB at its rates); the default here is
	// 16 MiB, still greater than the whole L3, which preserves the
	// cache-behaviour regime while keeping multi-flow experiments within
	// host memory.
	StoreBytes int
	// TableEntries is the fingerprint-table slot count (paper: >4M;
	// default 2M).
	TableEntries int
	// Window is the fingerprint window width (default 64).
	Window int
	// SampleBits selects representative fingerprints: a window is
	// representative when the low SampleBits bits of its fingerprint are
	// zero, i.e. 1 in 2^SampleBits positions on average (default 4).
	SampleBits int
}

func (c Config) withDefaults() Config {
	if c.StoreBytes == 0 {
		c.StoreBytes = 16 << 20
	}
	if c.TableEntries == 0 {
		c.TableEntries = 2 << 20
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.SampleBits == 0 {
		c.SampleBits = 4
	}
	return c
}

// Segment is one piece of an encoded payload: either a literal byte range
// or a reference to content in the packet store.
type Segment struct {
	// Literal bytes, when Match is false.
	Literal []byte
	// Store offset and length, when Match is true.
	Off   uint64
	Len   int
	Match bool
}

// Encoded is the result of processing one payload.
type Encoded struct {
	Segments   []Segment
	RawLen     int
	MatchedLen int // bytes replaced by references
}

// SavedBytes returns how many payload bytes the encoding eliminated,
// accounting for the reference tokens' own size (12 bytes each).
func (e Encoded) SavedBytes() int {
	saved := e.MatchedLen
	for _, s := range e.Segments {
		if s.Match {
			saved -= 12
		}
	}
	if saved < 0 {
		return 0
	}
	return saved
}

// Processor is one flow's redundancy-elimination engine.
type Processor struct {
	cfg    Config
	rabin  *Rabin
	store  *PacketStore
	table  *FPTable
	sample uint64 // selection mask

	// Stats.
	Packets      uint64
	MatchedBytes uint64
	Fingerprints uint64 // representative fingerprints examined
}

// NewProcessor allocates the processor's store and table from arena.
func NewProcessor(arena *mem.Arena, cfg Config) *Processor {
	cfg = cfg.withDefaults()
	return &Processor{
		cfg:    cfg,
		rabin:  NewRabin(DefaultPoly, cfg.Window),
		store:  NewPacketStore(arena, cfg.StoreBytes),
		table:  NewFPTable(arena, cfg.TableEntries),
		sample: 1<<uint(cfg.SampleBits) - 1,
	}
}

// Store exposes the packet store (for decode-side tests).
func (p *Processor) Store() *PacketStore { return p.store }

// Table exposes the fingerprint table.
func (p *Processor) Table() *FPTable { return p.table }

// rollCyclesPerByte charges the rolling-hash arithmetic: two table
// lookups, two shifts and two XORs per byte.
const rollCyclesPerByte = 3

// Process runs redundancy elimination over payload (whose first byte has
// simulated address addr): it fingerprints the content, looks up
// representative fingerprints, verifies and extends matches against the
// packet store, appends the new content to the store, and returns the
// encoding. All table and store traffic is emitted into ctx.
func (p *Processor) Process(ctx *click.Ctx, payload []byte, addr hw.Addr) Encoded {
	old := ctx.SetFunc(fnRE)
	defer ctx.SetFunc(old)

	p.Packets++
	enc := Encoded{RawLen: len(payload)}

	// Fingerprint the payload. The payload lines are (re)read and the
	// rolling hash is charged per byte.
	ctx.LoadBytes(addr, len(payload))
	ctx.Compute(uint32(len(payload)*rollCyclesPerByte), uint32(len(payload)*2))

	type rep struct {
		pos int // window start position in payload
		fp  uint64
	}
	var reps []rep
	w := p.rabin.Window()
	p.rabin.Roll(payload, func(pos int, fp uint64) {
		if fp&p.sample == 0 {
			reps = append(reps, rep{pos: pos - w + 1, fp: fp})
		}
	})
	p.Fingerprints += uint64(len(reps))

	// Match representative regions against the store, greedily and
	// left-to-right; matched regions are extended byte-wise in both
	// directions as in Spring & Wetherall.
	covered := 0 // payload prefix already emitted
	for _, rp := range reps {
		if rp.pos < covered {
			continue
		}
		loc, ok := p.table.Lookup(ctx, rp.fp)
		if !ok || !p.store.Valid(loc, w) {
			continue
		}
		// Verify the window byte-for-byte against the store.
		if !p.compare(ctx, payload, rp.pos, loc, w) {
			continue // fingerprint collision
		}
		// Extend the match forwards.
		length := w
		for rp.pos+length < len(payload) &&
			p.store.Valid(loc, length+1) &&
			p.store.byteAt(loc+uint64(length)) == payload[rp.pos+length] {
			length++
		}
		// Extend backwards, not crossing already-covered bytes.
		start, sloc := rp.pos, loc
		for start > covered && sloc > 0 &&
			p.store.Valid(sloc-1, 1) &&
			p.store.byteAt(sloc-1) == payload[start-1] {
			start--
			sloc--
			length++
		}
		if start > covered {
			enc.Segments = append(enc.Segments, Segment{Literal: payload[covered:start]})
		}
		enc.Segments = append(enc.Segments, Segment{Off: sloc, Len: length, Match: true})
		enc.MatchedLen += length
		covered = start + length
	}
	if covered < len(payload) {
		enc.Segments = append(enc.Segments, Segment{Literal: payload[covered:]})
	}
	p.MatchedBytes += uint64(enc.MatchedLen)

	// Append the raw payload to the store and index its representative
	// fingerprints at their new locations.
	base := p.store.Append(ctx, payload)
	for _, rp := range reps {
		p.table.Insert(ctx, rp.fp, base+uint64(rp.pos))
	}
	return enc
}

// compare verifies n payload bytes at pos against the store at loc,
// charging the store-line loads and comparison work.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Processor.Process)
func (p *Processor) compare(ctx *click.Ctx, payload []byte, pos int, loc uint64, n int) bool {
	for i := 0; i < n; i += hw.LineSize {
		ctx.Load(p.store.addrOf(loc + uint64(i)))
	}
	ctx.Compute(uint32(n/4), uint32(n/4))
	for i := 0; i < n; i++ {
		if p.store.byteAt(loc+uint64(i)) != payload[pos+i] {
			return false
		}
	}
	return true
}

// Decode reconstructs the original payload from an encoding using the
// store — what the device at the other end of the link does. It fails if
// referenced content has been overwritten.
func (p *Processor) Decode(enc Encoded) ([]byte, error) {
	out := make([]byte, 0, enc.RawLen)
	for _, s := range enc.Segments {
		if !s.Match {
			out = append(out, s.Literal...)
			continue
		}
		if !p.store.Valid(s.Off, s.Len) {
			return nil, fmt.Errorf("re: reference (%d,%d) no longer in store", s.Off, s.Len)
		}
		for i := 0; i < s.Len; i++ {
			out = append(out, p.store.byteAt(s.Off+uint64(i)))
		}
	}
	if len(out) != enc.RawLen {
		return nil, fmt.Errorf("re: decoded %d bytes, want %d", len(out), enc.RawLen)
	}
	return out, nil
}

// Element is the RedundancyElim click element.
type Element struct {
	Proc *Processor
	// SavedBytes accumulates eliminated output bytes.
	SavedBytes uint64
}

// Class implements click.Element.
func (e *Element) Class() string { return "RedundancyElim" }

// Process implements click.Element.
func (e *Element) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	if len(p.Data) <= netpkt.IPv4HeaderLen {
		return click.Continue
	}
	payload := p.Data[netpkt.IPv4HeaderLen:]
	enc := e.Proc.Process(ctx, payload, p.Addr+netpkt.IPv4HeaderLen)
	e.SavedBytes += uint64(enc.SavedBytes())
	return click.Continue
}

// Stat implements click.Stats.
func (e *Element) Stat(name string) (uint64, bool) {
	switch name {
	case "saved":
		return e.SavedBytes, true
	case "matched":
		return e.Proc.MatchedBytes, true
	case "fingerprints":
		return e.Proc.Fingerprints, true
	case "hits":
		return e.Proc.Table().Hits, true
	}
	return 0, false
}

var _ = binary.BigEndian // keep encoding/binary available for token wire format extensions

func init() {
	click.Register("RedundancyElim", func(env *click.Env, args click.Args) (interface{}, error) {
		store, err := args.Int("STORE", 0)
		if err != nil {
			return nil, err
		}
		entries, err := args.Int("ENTRIES", 0)
		if err != nil {
			return nil, err
		}
		sample, err := args.Int("SAMPLEBITS", 0)
		if err != nil {
			return nil, err
		}
		return &Element{Proc: NewProcessor(env.Arena, Config{
			StoreBytes:   store,
			TableEntries: entries,
			SampleBits:   sample,
		})}, nil
	})
}
