package re

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// fnRE attributes redundancy-elimination work in profiles.
var fnRE = hw.RegisterFunc("redundancy_elim")

// PacketStore is the cache of recently observed content: a byte ring in
// simulated memory. The paper sizes it to hold one second's worth of
// traffic; the size is a parameter here because the behaviour that
// matters for contention — the store being far larger than the L3 — holds
// at any of the configured scales.
type PacketStore struct {
	buf    []byte
	region mem.Region
	w      uint64 // total bytes ever written; w % len(buf) is the write head
}

// NewPacketStore allocates a store of size bytes from arena.
func NewPacketStore(arena *mem.Arena, size int) *PacketStore {
	if size < 1024 {
		panic(fmt.Sprintf("re: packet store of %d bytes is too small", size))
	}
	return &PacketStore{
		buf:    make([]byte, size),
		region: mem.NewRegion(arena, size/hw.LineSize, hw.LineSize, false),
	}
}

// Size returns the store capacity in bytes.
func (ps *PacketStore) Size() int { return len(ps.buf) }

// Written returns the total bytes appended since creation.
func (ps *PacketStore) Written() uint64 { return ps.w }

// addrOf returns the simulated address of store offset off.
func (ps *PacketStore) addrOf(off uint64) hw.Addr {
	return ps.region.Base + hw.Addr(off%uint64(len(ps.buf)))
}

// Append copies data into the store at the write head, emitting the line
// stores, and returns the store offset where the data begins.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Processor.Process)
func (ps *PacketStore) Append(ctx *click.Ctx, data []byte) uint64 {
	start := ps.w
	for i := 0; i < len(data); i += hw.LineSize {
		ctx.Store(ps.addrOf(ps.w + uint64(i)))
	}
	for _, b := range data {
		ps.buf[ps.w%uint64(len(ps.buf))] = b
		ps.w++
	}
	return start
}

// Valid reports whether store offset off still holds live (not yet
// overwritten) content of at least n bytes.
func (ps *PacketStore) Valid(off uint64, n int) bool {
	if off+uint64(n) > ps.w {
		return false // never written
	}
	return ps.w-off <= uint64(len(ps.buf)) // not yet overwritten
}

// ReadAt copies n bytes at store offset off into out, emitting line
// loads. The caller must have checked Valid.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Processor.Process)
func (ps *PacketStore) ReadAt(ctx *click.Ctx, off uint64, out []byte) {
	for i := 0; i < len(out); i += hw.LineSize {
		ctx.Load(ps.addrOf(off + uint64(i)))
	}
	for i := range out {
		out[i] = ps.buf[(off+uint64(i))%uint64(len(ps.buf))]
	}
}

// byteAt returns the byte at store offset off without tracing (used
// during comparisons whose line loads are already accounted).
func (ps *PacketStore) byteAt(off uint64) byte {
	return ps.buf[off%uint64(len(ps.buf))]
}

// FPTable maps content fingerprints to packet-store offsets. It is a
// direct-indexed table (one slot per hash bucket, newest wins), the
// classic RE design: false matches are filtered by byte comparison
// against the store, so slots can be small and collisions cheap.
type FPTable struct {
	keys   []uint32 // truncated fingerprint, 0 = empty
	locs   []uint64 // store offset of the window's first byte
	region mem.Region
	mask   uint64

	Lookups, Hits, Inserts uint64
}

// NewFPTable builds a table with capacity slots (rounded up to a power of
// two).
func NewFPTable(arena *mem.Arena, capacity int) *FPTable {
	if capacity <= 0 {
		panic("re: fingerprint table capacity must be positive")
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &FPTable{
		keys: make([]uint32, size),
		locs: make([]uint64, size),
		// 16 simulated bytes per slot: four slots per line.
		region: mem.NewRegion(arena, size, 16, false),
		mask:   uint64(size - 1),
	}
}

// Size returns the slot count.
func (t *FPTable) Size() int { return len(t.keys) }

// SimBytes returns the table's simulated footprint.
func (t *FPTable) SimBytes() uint64 { return t.region.Size() }

func fpKey(fp uint64) uint32 {
	k := uint32(fp >> 32)
	if k == 0 {
		k = 1 // 0 marks an empty slot
	}
	return k
}

// Lookup returns the store offset recorded for fp, emitting the slot
// load. ok is false when the slot is empty or holds a different key.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Processor.Process)
func (t *FPTable) Lookup(ctx *click.Ctx, fp uint64) (loc uint64, ok bool) {
	idx := fp & t.mask
	ctx.Load(t.region.Addr(int(idx)))
	ctx.Compute(6, 7)
	t.Lookups++
	if t.keys[idx] == fpKey(fp) {
		t.Hits++
		return t.locs[idx], true
	}
	return 0, false
}

// Insert records fp → loc, overwriting any previous occupant (newest
// content wins, as in the original design), and emits the slot store.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Processor.Process)
func (t *FPTable) Insert(ctx *click.Ctx, fp uint64, loc uint64) {
	idx := fp & t.mask
	ctx.Store(t.region.Addr(int(idx)))
	ctx.Compute(4, 5)
	t.keys[idx] = fpKey(fp)
	t.locs[idx] = loc
	t.Inserts++
}
