package re

import (
	"bytes"
	"testing"
	"testing/quick"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/rng"
)

// --- Rabin fingerprinting ---

func TestRabinRollingMatchesScratch(t *testing.T) {
	r := NewRabin(DefaultPoly, 16)
	data := make([]byte, 300)
	rng.New(1).Fill(data)
	r.Roll(data, func(pos int, fp uint64) {
		if want := r.FingerprintAt(data, pos); fp != want {
			t.Fatalf("pos %d: rolled %#x, scratch %#x", pos, fp, want)
		}
	})
}

func TestRabinContentDefined(t *testing.T) {
	// The fingerprint at a position depends only on the window's bytes,
	// not on anything before it — the property content-defined matching
	// relies on.
	r := NewRabin(DefaultPoly, 16)
	a := make([]byte, 200)
	b := make([]byte, 200)
	rng.New(2).Fill(a)
	rng.New(3).Fill(b)
	copy(b[100:140], a[100:140]) // shared content

	fpA := map[int]uint64{}
	r.Roll(a, func(pos int, fp uint64) { fpA[pos] = fp })
	fpB := map[int]uint64{}
	r.Roll(b, func(pos int, fp uint64) { fpB[pos] = fp })

	// Positions whose full window lies inside the shared region must
	// have identical fingerprints.
	for pos := 115; pos <= 139; pos++ {
		if fpA[pos] != fpB[pos] {
			t.Fatalf("pos %d: %#x vs %#x despite identical windows", pos, fpA[pos], fpB[pos])
		}
	}
}

func TestRabinShortInput(t *testing.T) {
	r := NewRabin(DefaultPoly, 64)
	called := false
	r.Roll(make([]byte, 63), func(int, uint64) { called = true })
	if called {
		t.Fatal("Roll over input shorter than the window must not fire")
	}
}

func TestRabinDistinguishesContent(t *testing.T) {
	r := NewRabin(DefaultPoly, 16)
	a := []byte("aaaaaaaaaaaaaaaa")
	b := []byte("aaaaaaaaaaaaaaab")
	if r.FingerprintAt(a, 15) == r.FingerprintAt(b, 15) {
		t.Fatal("one-byte difference produced equal fingerprints")
	}
}

func TestRabinValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRabin(0xff, 16) },       // degree 7 too small
		func() { NewRabin(DefaultPoly, 1) }, // window too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: rolled fingerprints equal from-scratch fingerprints for
// arbitrary data and window sizes.
func TestRabinRollQuick(t *testing.T) {
	f := func(seed uint64, wsel uint8) bool {
		w := 4 + int(wsel%60)
		r := NewRabin(DefaultPoly, w)
		data := make([]byte, w+100)
		rng.New(seed).Fill(data)
		ok := true
		r.Roll(data, func(pos int, fp uint64) {
			if fp != r.FingerprintAt(data, pos) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- packet store ---

func TestPacketStoreAppendRead(t *testing.T) {
	ps := NewPacketStore(mem.NewArena(0), 4096)
	var ctx click.Ctx
	data := []byte("some packet content for the store")
	off := ps.Append(&ctx, data)
	if !ps.Valid(off, len(data)) {
		t.Fatal("fresh content must be valid")
	}
	out := make([]byte, len(data))
	ps.ReadAt(&ctx, off, out)
	if !bytes.Equal(out, data) {
		t.Fatalf("ReadAt = %q, want %q", out, data)
	}
}

func TestPacketStoreWrapInvalidatesOld(t *testing.T) {
	ps := NewPacketStore(mem.NewArena(0), 1024)
	var ctx click.Ctx
	first := ps.Append(&ctx, make([]byte, 512))
	if !ps.Valid(first, 512) {
		t.Fatal("first append should be valid")
	}
	ps.Append(&ctx, make([]byte, 1024)) // overwrites everything
	if ps.Valid(first, 512) {
		t.Fatal("wrapped-over content must be invalid")
	}
}

func TestPacketStoreValidBounds(t *testing.T) {
	ps := NewPacketStore(mem.NewArena(0), 2048)
	if ps.Valid(0, 1) {
		t.Fatal("nothing written yet: offset 0 must be invalid")
	}
	var ctx click.Ctx
	off := ps.Append(&ctx, make([]byte, 100))
	if ps.Valid(off, 101) {
		t.Fatal("validity must respect length")
	}
}

// --- fingerprint table ---

func TestFPTableLookupInsert(t *testing.T) {
	tb := NewFPTable(mem.NewArena(0), 1024)
	var ctx click.Ctx
	if _, ok := tb.Lookup(&ctx, 0xdeadbeefcafe); ok {
		t.Fatal("empty table returned a hit")
	}
	tb.Insert(&ctx, 0xdeadbeefcafe, 42)
	loc, ok := tb.Lookup(&ctx, 0xdeadbeefcafe)
	if !ok || loc != 42 {
		t.Fatalf("Lookup = %d/%v, want 42/true", loc, ok)
	}
}

func TestFPTableNewestWins(t *testing.T) {
	tb := NewFPTable(mem.NewArena(0), 64)
	var ctx click.Ctx
	tb.Insert(&ctx, 0x1234567800000001, 1)
	tb.Insert(&ctx, 0x1234567800000001, 2)
	loc, ok := tb.Lookup(&ctx, 0x1234567800000001)
	if !ok || loc != 2 {
		t.Fatalf("Lookup = %d/%v, want 2 (newest)", loc, ok)
	}
}

func TestFPTableTracksStats(t *testing.T) {
	tb := NewFPTable(mem.NewArena(0), 64)
	var ctx click.Ctx
	tb.Insert(&ctx, 0xabc0000000000000, 9)
	tb.Lookup(&ctx, 0xabc0000000000000)
	tb.Lookup(&ctx, 0xdef0000000000000)
	if tb.Inserts != 1 || tb.Lookups != 2 || tb.Hits > 2 || tb.Hits < 1 {
		t.Fatalf("stats: %d/%d/%d", tb.Inserts, tb.Lookups, tb.Hits)
	}
}

// --- processor: end-to-end ---

func newProc() *Processor {
	return NewProcessor(mem.NewArena(0), Config{
		StoreBytes:   1 << 20,
		TableEntries: 1 << 14,
		SampleBits:   3,
	})
}

func TestProcessorUniqueContentNoMatches(t *testing.T) {
	p := newProc()
	var ctx click.Ctx
	payload := make([]byte, 1000)
	for i := 0; i < 20; i++ {
		rng.New(uint64(i + 1)).Fill(payload)
		enc := p.Process(&ctx, payload, 0x100000)
		if enc.MatchedLen != 0 {
			t.Fatalf("packet %d: matched %d bytes of unique content", i, enc.MatchedLen)
		}
		ctx.Ops = ctx.Ops[:0]
	}
	if p.Fingerprints == 0 {
		t.Fatal("no representative fingerprints sampled")
	}
}

func TestProcessorDetectsRepeatedPayload(t *testing.T) {
	p := newProc()
	var ctx click.Ctx
	payload := make([]byte, 1000)
	rng.New(7).Fill(payload)

	enc1 := p.Process(&ctx, payload, 0x100000)
	if enc1.MatchedLen != 0 {
		t.Fatal("first sighting must not match")
	}
	enc2 := p.Process(&ctx, payload, 0x100000)
	if enc2.MatchedLen < 900 {
		t.Fatalf("repeat matched only %d of 1000 bytes", enc2.MatchedLen)
	}
	if enc2.SavedBytes() < 800 {
		t.Fatalf("saved only %d bytes", enc2.SavedBytes())
	}
}

func TestProcessorEncodeDecodeRoundTrip(t *testing.T) {
	p := newProc()
	var ctx click.Ctx
	payload := make([]byte, 800)
	rng.New(11).Fill(payload)

	p.Process(&ctx, payload, 0x100000)
	// Second packet: half repeated content, half new.
	second := make([]byte, 800)
	copy(second[:400], payload[:400])
	rng.New(12).Fill(second[400:])

	enc := p.Process(&ctx, second, 0x100000)
	if enc.MatchedLen == 0 {
		t.Fatal("expected a partial match")
	}
	decoded, err := p.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(decoded, second) {
		t.Fatal("decode does not reproduce the original payload")
	}
}

// Property: for any mix of repeated and fresh content, decoding the
// encoding always reproduces the payload exactly.
func TestProcessorRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		p := newProc()
		var ctx click.Ctx
		r := rng.New(seed)
		prev := make([]byte, 600)
		r.Fill(prev)
		p.Process(&ctx, prev, 0x100000)
		for iter := 0; iter < 5; iter++ {
			ctx.Ops = ctx.Ops[:0]
			cur := make([]byte, 600)
			r.Fill(cur)
			// Splice in a run of earlier content at a random position.
			n := 64 + r.Intn(200)
			srcOff := r.Intn(len(prev) - n)
			dstOff := r.Intn(len(cur) - n)
			copy(cur[dstOff:dstOff+n], prev[srcOff:srcOff+n])
			enc := p.Process(&ctx, cur, 0x100000)
			dec, err := p.Decode(enc)
			if err != nil || !bytes.Equal(dec, cur) {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessorEmitsHeavyTrace(t *testing.T) {
	p := newProc()
	var ctx click.Ctx
	payload := make([]byte, 1000)
	rng.New(20).Fill(payload)
	p.Process(&ctx, payload, 0x100000)

	var loads, stores int
	for _, op := range ctx.Ops {
		switch op.Kind {
		case hw.OpLoad:
			loads++
		case hw.OpStore:
			stores++
		}
	}
	// Payload reads + table lookups; store append + table inserts.
	if loads < 16 || stores < 16 {
		t.Fatalf("trace: %d loads / %d stores; RE must be memory-heavy", loads, stores)
	}
}

func TestElementAccumulatesSavings(t *testing.T) {
	el := &Element{Proc: newProc()}
	var ctx click.Ctx
	b := make([]byte, 1000)
	rng.New(30).Fill(b[20:])
	pkt := &click.Packet{Data: b, Addr: 0x200000}
	el.Process(&ctx, pkt)
	el.Process(&ctx, pkt) // identical packet: matches
	if el.SavedBytes == 0 {
		t.Fatal("repeated packet saved nothing")
	}
	if v, ok := el.Stat("hits"); !ok || v == 0 {
		t.Fatalf("hits stat = %d/%v", v, ok)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.StoreBytes != 16<<20 || c.TableEntries != 2<<20 || c.Window != 64 || c.SampleBits != 4 {
		t.Fatalf("defaults = %+v", c)
	}
}
