package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
)

// Platform is a scenario file's platform override block:
//
//	platform :: Platform(SOCKETS 2, CORES_PER_SOCKET 4, L3_BYTES 6291456);
//
// Each field is nil when its key was absent, so a block overrides only
// what it names and inherits everything else from the base hw.Config the
// scenario is assembled on (the -scale platform, or whatever a sweep
// variant produced). Precedence, lowest to highest: -scale defaults,
// the file's platform block, a sweep's Platform variant, the CLI
// -platform flag — each layer is one Platform applied on top of the
// previous one's result.
type Platform struct {
	Sockets        *int
	CoresPerSocket *int
	ClockHz        *float64

	L1Bytes, L1Ways *int
	L2Bytes, L2Ways *int
	L3Bytes, L3Ways *int

	L3Policy    *hw.ReplacementPolicy
	InclusiveL3 *bool

	// LineBytes is an assertion, not an override: the cache-line size is
	// a build constant (hw.LineSize), and a file declaring LINE_BYTES
	// fails loudly when loaded on a build with different geometry.
	LineBytes *int

	L1Cycles   *uint64
	L2Cycles   *uint64
	L3Cycles   *uint64
	DRAMCycles *uint64
	MemCycles  *uint64 // memory-controller occupancy per line (hw.Config.MemCtrlService)
	QPICycles  *uint64 // one-way remote-access latency (hw.Config.QPILatency)
	QPIService *uint64
	StreamMLP  *uint64
}

// platformKeys lists every recognized Platform(...) key in canonical
// order — the order Render emits and error messages use.
var platformKeys = []string{
	"SOCKETS", "CORES_PER_SOCKET", "CLOCK_HZ",
	"L1_BYTES", "L1_WAYS", "L2_BYTES", "L2_WAYS", "L3_BYTES", "L3_WAYS",
	"L3_POLICY", "INCLUSIVE_L3", "LINE_BYTES",
	"L1_CYCLES", "L2_CYCLES", "L3_CYCLES", "DRAM_CYCLES",
	"MEM_CYCLES", "QPI_CYCLES", "QPI_SERVICE", "STREAM_MLP",
}

// ParsePlatformArgs builds a Platform from a Platform(...) argument
// list, validating every value and rejecting unknown keys
// deterministically. It is exported for the sweep harness, whose grid
// files declare platform variants with the same argument grammar.
func ParsePlatformArgs(args click.Args) (*Platform, error) {
	if len(args.Positional) > 0 {
		return nil, fmt.Errorf("platform: positional argument %q (every platform key is KEY VALUE)", args.Positional[0])
	}
	known := map[string]bool{}
	for _, k := range platformKeys {
		known[k] = true
	}
	var unknown []string
	for k := range args.Keyword {
		if !known[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("platform: unknown key %s (known keys: %s)",
			strings.Join(unknown, ", "), strings.Join(platformKeys, " "))
	}

	p := &Platform{}
	var err error
	geti := func(key string, min, max int) *int {
		if err != nil || args.String(key, "") == "" {
			return nil
		}
		var v int
		if v, err = args.Int(key, 0); err != nil {
			return nil
		}
		if v < min || v > max {
			err = fmt.Errorf("platform: %s %d outside [%d,%d]", key, v, min, max)
			return nil
		}
		return &v
	}
	getu := func(key string, min uint64) *uint64 {
		if err != nil || args.String(key, "") == "" {
			return nil
		}
		var v uint64
		if v, err = args.Uint64(key, 0); err != nil {
			return nil
		}
		if v < min {
			err = fmt.Errorf("platform: %s %d below minimum %d", key, v, min)
			return nil
		}
		return &v
	}

	p.Sockets = geti("SOCKETS", 1, 64)
	p.CoresPerSocket = geti("CORES_PER_SOCKET", 1, 1024)
	p.L1Bytes = geti("L1_BYTES", hw.LineSize, 1<<30)
	p.L1Ways = geti("L1_WAYS", 1, 1<<16)
	p.L2Bytes = geti("L2_BYTES", hw.LineSize, 1<<30)
	p.L2Ways = geti("L2_WAYS", 1, 1<<16)
	p.L3Bytes = geti("L3_BYTES", hw.LineSize, 1<<30)
	p.L3Ways = geti("L3_WAYS", 1, 1<<16)
	p.L1Cycles = getu("L1_CYCLES", 0)
	p.L2Cycles = getu("L2_CYCLES", 0)
	p.L3Cycles = getu("L3_CYCLES", 0)
	p.DRAMCycles = getu("DRAM_CYCLES", 0)
	p.MemCycles = getu("MEM_CYCLES", 0)
	p.QPICycles = getu("QPI_CYCLES", 0)
	p.QPIService = getu("QPI_SERVICE", 0)
	p.StreamMLP = getu("STREAM_MLP", 1)
	if err != nil {
		return nil, err
	}

	if s := args.String("CLOCK_HZ", ""); s != "" {
		hz, perr := args.Float64("CLOCK_HZ", 0)
		if perr != nil {
			return nil, perr
		}
		if hz <= 0 {
			return nil, fmt.Errorf("platform: CLOCK_HZ %v must be positive", hz)
		}
		p.ClockHz = &hz
	}
	if s := args.String("L3_POLICY", ""); s != "" {
		var pol hw.ReplacementPolicy
		switch strings.ToUpper(s) {
		case "LRU":
			pol = hw.ReplaceLRU
		case "RANDOM":
			pol = hw.ReplaceRandom
		default:
			return nil, fmt.Errorf("platform: L3_POLICY %q (want LRU or RANDOM)", s)
		}
		p.L3Policy = &pol
	}
	if s := args.String("INCLUSIVE_L3", ""); s != "" {
		incl, perr := args.Bool("INCLUSIVE_L3", false)
		if perr != nil {
			return nil, perr
		}
		p.InclusiveL3 = &incl
	}
	// The cache-line size is a platform compile-time constant
	// (hw.LineSize); the key exists so a file can assert the geometry it
	// was written for and fail loudly on a mismatched build. The value
	// is kept so Render preserves the assertion.
	if s := args.String("LINE_BYTES", ""); s != "" {
		n, perr := args.Int("LINE_BYTES", 0)
		if perr != nil {
			return nil, perr
		}
		if n != hw.LineSize {
			return nil, fmt.Errorf("platform: LINE_BYTES %d unsupported (this build models %d-byte lines)", n, hw.LineSize)
		}
		p.LineBytes = &n
	}
	return p, nil
}

// ParseOverrides parses a comma-separated "KEY VALUE, KEY VALUE" list —
// the CLI -platform flag's syntax, identical to the keys of a scenario
// file's Platform(...) block.
func ParseOverrides(s string) (*Platform, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	return ParsePlatformArgs(click.ParseArgs(click.SplitTopLevel(s, ",")))
}

// Apply overlays the block's set fields on base and validates the
// result's cache geometry (sizes must be whole numbers of line-sized
// ways, or hw would panic building the caches).
func (p *Platform) Apply(base hw.Config) (hw.Config, error) {
	cfg := base
	if p == nil {
		return cfg, nil
	}
	seti := func(dst *int, v *int) {
		if v != nil {
			*dst = *v
		}
	}
	setu := func(dst *uint64, v *uint64) {
		if v != nil {
			*dst = *v
		}
	}
	seti(&cfg.Sockets, p.Sockets)
	seti(&cfg.CoresPerSocket, p.CoresPerSocket)
	if p.ClockHz != nil {
		cfg.ClockHz = *p.ClockHz
	}
	seti(&cfg.L1D.SizeBytes, p.L1Bytes)
	seti(&cfg.L1D.Ways, p.L1Ways)
	seti(&cfg.L2.SizeBytes, p.L2Bytes)
	seti(&cfg.L2.Ways, p.L2Ways)
	seti(&cfg.L3.SizeBytes, p.L3Bytes)
	seti(&cfg.L3.Ways, p.L3Ways)
	if p.L3Policy != nil {
		cfg.L3Policy = *p.L3Policy
	}
	if p.InclusiveL3 != nil {
		cfg.InclusiveL3 = *p.InclusiveL3
	}
	setu(&cfg.L1Latency, p.L1Cycles)
	setu(&cfg.L2Latency, p.L2Cycles)
	setu(&cfg.L3Latency, p.L3Cycles)
	setu(&cfg.DRAMLatency, p.DRAMCycles)
	setu(&cfg.MemCtrlService, p.MemCycles)
	setu(&cfg.QPILatency, p.QPICycles)
	setu(&cfg.QPIService, p.QPIService)
	setu(&cfg.StreamMLP, p.StreamMLP)

	for _, lvl := range []struct {
		name string
		g    hw.CacheGeom
	}{{"L1", cfg.L1D}, {"L2", cfg.L2}, {"L3", cfg.L3}} {
		span := hw.LineSize * lvl.g.Ways
		if lvl.g.Ways <= 0 || lvl.g.SizeBytes <= 0 || lvl.g.SizeBytes%span != 0 {
			return hw.Config{}, fmt.Errorf("platform: %s geometry %d bytes / %d ways invalid (size must be a positive multiple of %d-byte line × ways = %d)",
				lvl.name, lvl.g.SizeBytes, lvl.g.Ways, hw.LineSize, span)
		}
	}
	return cfg, nil
}

// renderArgs returns the block's set keys as canonical "KEY VALUE"
// strings, in platformKeys order, so Render(Parse(x)) is stable.
func (p *Platform) renderArgs() []string {
	var out []string
	add := func(format string, a ...interface{}) {
		out = append(out, fmt.Sprintf(format, a...))
	}
	addi := func(key string, v *int) {
		if v != nil {
			add("%s %d", key, *v)
		}
	}
	addu := func(key string, v *uint64) {
		if v != nil {
			add("%s %d", key, *v)
		}
	}
	addi("SOCKETS", p.Sockets)
	addi("CORES_PER_SOCKET", p.CoresPerSocket)
	if p.ClockHz != nil {
		add("CLOCK_HZ %s", strconv.FormatFloat(*p.ClockHz, 'g', -1, 64))
	}
	addi("L1_BYTES", p.L1Bytes)
	addi("L1_WAYS", p.L1Ways)
	addi("L2_BYTES", p.L2Bytes)
	addi("L2_WAYS", p.L2Ways)
	addi("L3_BYTES", p.L3Bytes)
	addi("L3_WAYS", p.L3Ways)
	if p.L3Policy != nil {
		pol := "LRU"
		if *p.L3Policy == hw.ReplaceRandom {
			pol = "RANDOM"
		}
		add("L3_POLICY %s", pol)
	}
	if p.InclusiveL3 != nil {
		add("INCLUSIVE_L3 %v", *p.InclusiveL3)
	}
	addi("LINE_BYTES", p.LineBytes)
	addu("L1_CYCLES", p.L1Cycles)
	addu("L2_CYCLES", p.L2Cycles)
	addu("L3_CYCLES", p.L3Cycles)
	addu("DRAM_CYCLES", p.DRAMCycles)
	addu("MEM_CYCLES", p.MemCycles)
	addu("QPI_CYCLES", p.QPICycles)
	addu("QPI_SERVICE", p.QPIService)
	addu("STREAM_MLP", p.StreamMLP)
	return out
}
