package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/runtime"
)

func memArena() *mem.Arena { return mem.NewArena(0) }

const shippedDir = "../../examples/scenarios"

func testCfg() hw.Config {
	cfg := hw.DefaultConfig()
	cfg.L1D = hw.CacheGeom{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = hw.CacheGeom{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = hw.CacheGeom{SizeBytes: 1 << 20, Ways: 16}
	return cfg
}

func loadShipped(t *testing.T, name string) *Scenario {
	t.Helper()
	s, err := Load(filepath.Join(shippedDir, name+".click"))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return s
}

// TestShippedFilesMatchBuiltins is the parity contract: each former
// builtin scenario, loaded from its shipped .click file, assembles a
// runtime.Config deep-equal to the Go builtin's — same apps, same rates,
// same placement, same knobs — and therefore reports the same figures.
func TestShippedFilesMatchBuiltins(t *testing.T) {
	cfg := testCfg()
	params := apps.Small()
	for _, name := range runtime.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			want, err := runtime.ScenarioConfig(name, cfg, params)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loadShipped(t, name).Config(cfg, params)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("file-based config diverges from builtin:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestShippedFilesRoundTrip re-renders every shipped scenario and parses
// the result: the canonical form must reproduce the identical structure,
// graph bodies byte-for-byte.
func TestShippedFilesRoundTrip(t *testing.T) {
	entries, err := os.ReadDir(shippedDir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".click") {
			continue
		}
		n++
		t.Run(e.Name(), func(t *testing.T) {
			s1, err := Load(filepath.Join(shippedDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Parse(s1.Render())
			if err != nil {
				t.Fatalf("re-parse of rendered scenario failed: %v\n--- rendered ---\n%s", err, s1.Render())
			}
			if s2.Name == "" {
				s2.Name = s1.Name
			}
			if !reflect.DeepEqual(s1, s2) {
				t.Fatalf("round trip diverges:\n got %+v\nwant %+v\n--- rendered ---\n%s", s2, s1, s1.Render())
			}
		})
	}
	if n < 5 {
		t.Fatalf("only %d shipped scenario files found, want ≥5", n)
	}
}

// TestShippedGraphsParse builds every inline graph of every shipped file
// through the click parser — the parser-level round trip on the shipped
// corpus.
func TestShippedGraphsParse(t *testing.T) {
	entries, err := os.ReadDir(shippedDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".click") {
			continue
		}
		s, err := Load(filepath.Join(shippedDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		params := apps.Small()
		cfgr, err := s.Config(testCfg(), params)
		if err != nil {
			t.Fatalf("%s: Config: %v", e.Name(), err)
		}
		for _, g := range s.Graphs {
			cf, ok := cfgr.Params.Custom[apps.FlowType(g.Name)]
			if !ok {
				t.Fatalf("%s: graph %s not registered as a custom type", e.Name(), g.Name)
			}
			inst, err := cfgr.Params.Build(apps.FlowType(g.Name), memArena(), 1)
			if err != nil {
				t.Fatalf("%s: graph %s does not build: %v", e.Name(), g.Name, err)
			}
			if inst.Pipeline == nil {
				t.Fatalf("%s: graph %s built no pipeline", e.Name(), g.Name)
			}
			if cf.Config != g.Config {
				t.Fatalf("%s: graph %s text not preserved", e.Name(), g.Name)
			}
		}
	}
}

func TestNatChainRunsEndToEnd(t *testing.T) {
	s := loadShipped(t, "nat_chain")
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg.QuantumCycles = 100_000
	cfg.ControlEvery = 4
	cfg.Warmup = 0.0003
	r, err := runtime.NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	var natApp *runtime.AppReport
	for i := range rep.Apps {
		if rep.Apps[i].Name == "natfw" {
			natApp = &rep.Apps[i]
		}
	}
	if natApp == nil {
		t.Fatal("no natfw app in report")
	}
	if natApp.Processed == 0 {
		t.Fatal("NAT chain processed nothing")
	}
	if len(natApp.Branches) == 0 {
		t.Fatal("branching NAT chain reported no per-branch counters")
	}
	branches := map[string]runtime.BranchReport{}
	for _, br := range natApp.Branches {
		branches[br.Node] = br
	}
	// TCP+UDP forwarded packets finish at ToDevice and drop at the
	// mirror's Discard; non-TCP/UDP traffic would drop at the classifier
	// Discard (generated traffic is all TCP/UDP, so that stays zero).
	var wire, mirror uint64
	for name, br := range branches {
		if strings.HasPrefix(name, "ToDevice") {
			wire = br.Finished
		}
		if strings.HasPrefix(name, "Discard") && br.Dropped > 0 {
			mirror += br.Dropped
		}
	}
	if wire == 0 || mirror != wire {
		t.Fatalf("branch accounting: wire %d, mirrored drops %d (branches %+v)", wire, mirror, natApp.Branches)
	}
	if rep.String() == "" || !strings.Contains(rep.String(), "branches:") {
		t.Fatal("report does not render branch telemetry")
	}
}

func TestIDSChainRunsEndToEnd(t *testing.T) {
	s := loadShipped(t, "ids_chain")
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg.QuantumCycles = 100_000
	cfg.ControlEvery = 4
	cfg.Warmup = 0.0003
	r, err := runtime.NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	var ids *runtime.AppReport
	for i := range rep.Apps {
		if rep.Apps[i].Name == "ids" {
			ids = &rep.Apps[i]
		}
	}
	if ids == nil {
		t.Fatal("no ids app in report")
	}
	if ids.Processed == 0 {
		t.Fatal("IDS chain processed nothing")
	}
	// The cascade's exits: clean traffic, low-entropy suspects, and
	// first-sighting suspects finish at (distinct anonymous) ToDevice
	// instances; banned repeat offenders drop at the Discard. With
	// SIG_HIT 0.06, LOW_ENTROPY 0.5 and 4096 sources, every exit must
	// see traffic, and the fast path must dominate.
	var wires []uint64
	var banned uint64
	for _, br := range ids.Branches {
		if strings.HasPrefix(br.Node, "ToDevice") && br.Finished > 0 {
			wires = append(wires, br.Finished)
		}
		if strings.HasPrefix(br.Node, "Discard") {
			banned += br.Dropped
		}
	}
	if len(wires) != 3 {
		t.Fatalf("want 3 live ToDevice exits (clean, low-entropy, first-sighting), got %d (branches %+v)", len(wires), ids.Branches)
	}
	var total, max uint64
	for _, w := range wires {
		total += w
		if w > max {
			max = w
		}
	}
	if max*100 < total*90 {
		t.Fatalf("fast path carries %d of %d finished packets, want >= 90%% at a 6%% signature-hit rate", max, total)
	}
	if banned == 0 {
		t.Fatal("no repeat offender was banned; the BanTable tail never fired")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text, wantSub string }{
		{"no scenario decl", `mon :: Flow(TYPE MON);`, "missing scenario"},
		{"no flows", `scenario :: Scenario(NAME x);`, "no flows"},
		{"double scenario", `scenario :: Scenario(NAME x); s2 :: Scenario(NAME y); m :: Flow(TYPE MON);`, "second Scenario"},
		{"unknown class", `scenario :: Scenario(NAME x); m :: Widget(TYPE MON);`, "unknown declaration class"},
		{"flow without type", `scenario :: Scenario(NAME x); m :: Flow(WORKERS 2);`, "needs TYPE or GRAPH"},
		{"both type and graph", `scenario :: Scenario(NAME x); m :: Flow(TYPE MON, GRAPH G); graph G { }`, "both TYPE and GRAPH"},
		{"undeclared graph", `scenario :: Scenario(NAME x); m :: Flow(GRAPH NOPE);`, "undeclared graph"},
		{"unused graph", "scenario :: Scenario(NAME x); m :: Flow(TYPE MON);\ngraph G { src :: FromDevice; src -> ToDevice; }", "no flow uses it"},
		{"dup flow", `scenario :: Scenario(NAME x); m :: Flow(TYPE MON); m :: Flow(TYPE MON);`, "declared twice"},
		{"zero workers", `scenario :: Scenario(NAME x); m :: Flow(TYPE MON, WORKERS 0);`, "at least one worker"},
		{"bad placement", `scenario :: Scenario(NAME x, PLACE q1); m :: Flow(TYPE MON);`, "placement"},
		{"bad fraction", `scenario :: Scenario(NAME x, SYN_REGION_FRACTION 1.5); m :: Flow(TYPE MON);`, "SYN_REGION_FRACTION"},
		{"bad batch", `scenario :: Scenario(NAME x, BATCH -2); m :: Flow(TYPE MON);`, "BATCH"},
		{"unterminated graph", `scenario :: Scenario(NAME x); graph G { src :: FromDevice;`, "missing closing brace"},
		{"malformed graph", `scenario :: Scenario(NAME x); graph { }; m :: Flow(TYPE MON);`, "malformed graph"},
		{"bad statement", `scenario :: Scenario(NAME x); what is this; m :: Flow(TYPE MON);`, "cannot parse"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestConfigErrors(t *testing.T) {
	cfg := testCfg()
	params := apps.Small()

	s, err := Parse(`scenario :: Scenario(NAME x, MIN_CORES_PER_SOCKET 99); m :: Flow(TYPE MON);`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Config(cfg, params); err == nil || !strings.Contains(err.Error(), "cores per socket") {
		t.Fatalf("requirement not enforced: %v", err)
	}

	s, err = Parse(`scenario :: Scenario(NAME x, MIN_SOCKETS 9); m :: Flow(TYPE MON);`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Config(cfg, params); err == nil || !strings.Contains(err.Error(), "sockets") {
		t.Fatalf("socket requirement not enforced: %v", err)
	}

	s, err = Parse(`scenario :: Scenario(NAME x); m :: Flow(TYPE NOPE);`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Config(cfg, params); err == nil {
		t.Fatal("unknown flow type accepted")
	}

	s, err = Parse(`scenario :: Scenario(NAME x, PLACE s9:0); m :: Flow(TYPE MON);`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Config(cfg, params); err == nil || !strings.Contains(err.Error(), "outside the platform") {
		t.Fatalf("bad placement accepted: %v", err)
	}

	// A graph name colliding with a builtin type must be rejected even
	// with pristine params: SYN would silently win over the graph, MON
	// would be silently replaced by it.
	for _, name := range []string{"MON", "SYN", "syn_max"} {
		text := `scenario :: Scenario(NAME x); m :: Flow(GRAPH ` + name + `); graph ` + name + ` { src :: FromDevice; src -> ToDevice; }`
		s, err = Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Config(cfg, params); err == nil || !strings.Contains(err.Error(), "collides with a builtin") {
			t.Fatalf("graph %s: builtin collision accepted: %v", name, err)
		}
	}
	// ...and colliding with an already-registered custom type too.
	s, err = Parse(`scenario :: Scenario(NAME x); m :: Flow(GRAPH CHAIN); graph CHAIN { src :: FromDevice; src -> ToDevice; }`)
	if err != nil {
		t.Fatal(err)
	}
	params2 := params
	params2.Custom = map[apps.FlowType]apps.CustomFlow{"CHAIN": {Config: "x"}}
	if _, err := s.Config(cfg, params2); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("custom type collision accepted: %v", err)
	}
}

// TestFlowTypesIncludesCustom: profiling discovers custom types through
// runtime.Config.FlowTypes.
func TestFlowTypesIncludesCustom(t *testing.T) {
	s := loadShipped(t, "nat_chain")
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	types := cfg.FlowTypes()
	want := []apps.FlowType{"MON", "NATFW", "VPN"}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("FlowTypes = %v, want %v", types, want)
	}
}

// TestMigrateStateKnob: the MIGRATE_STATE scenario argument reaches the
// runtime configuration, and the shipped thrash_migrate file differs
// from plain thrash only by that knob (and its name).
func TestMigrateStateKnob(t *testing.T) {
	s, err := Parse(`
		scenario :: Scenario(NAME m, MIGRATE_STATE 1048576);
		mon :: Flow(TYPE MON);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.MigrateState != 1<<20 {
		t.Fatalf("MigrateState = %d, want %d", s.MigrateState, 1<<20)
	}
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MigrateState != 1<<20 {
		t.Fatalf("runtime config MigrateState = %d, want %d", cfg.MigrateState, 1<<20)
	}

	base, err := loadShipped(t, "thrash").Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	mig, err := loadShipped(t, "thrash_migrate").Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	if mig.MigrateState == 0 {
		t.Fatal("thrash_migrate ships without MIGRATE_STATE")
	}
	base.MigrateState = mig.MigrateState
	base.Scenario = mig.Scenario
	if !reflect.DeepEqual(base, mig) {
		t.Fatalf("thrash_migrate diverges from thrash beyond the migration knob:\n got %+v\nwant %+v", mig, base)
	}
}

// TestBatchKnob: the BATCH scenario argument reaches both sides of the
// model it must keep consistent — the per-worker burst depth
// (Config.Batch) and the modelled receive batch the cost accounting
// amortises poll charges over (Params.RxBatch) — and survives a render
// round trip.
func TestBatchKnob(t *testing.T) {
	s, err := Parse(`
		scenario :: Scenario(NAME b, BATCH 8);
		mon :: Flow(TYPE MON);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Batch != 8 {
		t.Fatalf("Batch = %d, want 8", s.Batch)
	}
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Batch != 8 {
		t.Fatalf("runtime config Batch = %d, want 8", cfg.Batch)
	}
	if cfg.Params.RxBatch != 8 {
		t.Fatalf("params RxBatch = %d, want 8 (profiling and runtime must batch alike)", cfg.Params.RxBatch)
	}
	rendered := s.Render()
	if !strings.Contains(rendered, "BATCH 8") {
		t.Fatalf("render lost the batch knob:\n%s", rendered)
	}
	s2, err := Parse(rendered)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Batch != 8 {
		t.Fatalf("round-tripped Batch = %d, want 8", s2.Batch)
	}

	// Unset: the historical scalar model — runtime defaults apply and the
	// modelled receive batch stays off.
	s, err = Parse(`scenario :: Scenario(NAME b); mon :: Flow(TYPE MON);`)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Params.RxBatch != 0 || cfg.Batch != 0 {
		t.Fatalf("unset BATCH leaked: RxBatch=%d Batch=%d", cfg.Params.RxBatch, cfg.Batch)
	}
}

// TestFlowSLOKey: SLO_P99_US parses into the assembled AppSpec, renders
// back out canonically, and is absent when undeclared.
func TestFlowSLOKey(t *testing.T) {
	s, err := Parse(`
scenario :: Scenario(NAME slo, MIN_CORES_PER_SOCKET 2);
fast :: Flow(TYPE IP, WORKERS 1, RATE_FRACTION 0.5, SLO_P99_US 250);
free :: Flow(TYPE MON, WORKERS 1);
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Flows[0].SLOP99US; got != 250 {
		t.Fatalf("parsed SLO_P99_US = %v, want 250", got)
	}
	if got := s.Flows[1].SLOP99US; got != 0 {
		t.Fatalf("undeclared SLO parsed as %v", got)
	}
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Apps[0].SLOP99US != 250 || cfg.Apps[1].SLOP99US != 0 {
		t.Fatalf("SLO did not reach the AppSpecs: %+v", cfg.Apps)
	}
	rendered := s.Render()
	if !strings.Contains(rendered, "SLO_P99_US 250") {
		t.Fatalf("render dropped the SLO key:\n%s", rendered)
	}
	if strings.Count(rendered, "SLO_P99_US") != 1 {
		t.Fatalf("render emitted SLO for a flow without one:\n%s", rendered)
	}
}
