package scenario

import (
	"reflect"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
)

// fullPlatformScenario exercises every Platform(...) key at once.
const fullPlatformScenario = `
scenario :: Scenario(NAME plat, MIN_CORES_PER_SOCKET 2);

platform :: Platform(SOCKETS 4, CORES_PER_SOCKET 2, CLOCK_HZ 2.2e9,
                     L1_BYTES 8192, L1_WAYS 2, L2_BYTES 65536, L2_WAYS 4,
                     L3_BYTES 2097152, L3_WAYS 8, L3_POLICY RANDOM,
                     INCLUSIVE_L3 false, LINE_BYTES 64,
                     L1_CYCLES 2, L2_CYCLES 10, L3_CYCLES 35, DRAM_CYCLES 150,
                     MEM_CYCLES 6, QPI_CYCLES 50, QPI_SERVICE 7, STREAM_MLP 8);

mon :: Flow(TYPE MON);
`

// TestPlatformRoundTripConfig is the platform-block round-trip contract:
// a rendered scenario re-parses to a structurally identical Scenario,
// and — the part that matters to the machine — both apply to the same
// base hw.Config with deep-equal results.
func TestPlatformRoundTripConfig(t *testing.T) {
	s1, err := Parse(fullPlatformScenario)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.Render())
	if err != nil {
		t.Fatalf("re-parse of rendered scenario failed: %v\n--- rendered ---\n%s", err, s1.Render())
	}
	s2.Name = s1.Name // NAME is set; keep the comparison honest anyway
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v\n--- rendered ---\n%s", s2, s1, s1.Render())
	}
	// The LINE_BYTES assertion must survive a re-render: its whole point
	// is to fail loudly on a build with different line geometry.
	if !strings.Contains(s1.Render(), "LINE_BYTES 64") {
		t.Fatalf("Render dropped the LINE_BYTES assertion:\n%s", s1.Render())
	}

	base := testCfg()
	c1, err := s1.PlatformConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.PlatformConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("rendered platform block applies differently:\n got %+v\nwant %+v", c2, c1)
	}

	want := hw.Config{
		Sockets: 4, CoresPerSocket: 2, ClockHz: 2.2e9,
		L1D:      hw.CacheGeom{SizeBytes: 8192, Ways: 2},
		L2:       hw.CacheGeom{SizeBytes: 65536, Ways: 4},
		L3:       hw.CacheGeom{SizeBytes: 2097152, Ways: 8},
		L3Policy: hw.ReplaceRandom, InclusiveL3: false,
		L1Latency: 2, L2Latency: 10, L3Latency: 35, DRAMLatency: 150,
		MemCtrlService: 6, QPILatency: 50, QPIService: 7, StreamMLP: 8,
	}
	if c1 != want {
		t.Fatalf("full platform block did not override every field:\n got %+v\nwant %+v", c1, want)
	}
}

// TestPlatformPartialOverride: a block overrides only the keys it names.
func TestPlatformPartialOverride(t *testing.T) {
	s, err := Parse(`
scenario :: Scenario(NAME p);
platform :: Platform(L3_BYTES 524288);
mon :: Flow(TYPE MON);
`)
	if err != nil {
		t.Fatal(err)
	}
	base := testCfg()
	got, err := s.PlatformConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	want := base
	want.L3.SizeBytes = 524288
	if got != want {
		t.Fatalf("partial override: got %+v, want %+v", got, want)
	}
}

// TestPlatformPrecedence: -scale base < file block < CLI overrides.
func TestPlatformPrecedence(t *testing.T) {
	s, err := Parse(`
scenario :: Scenario(NAME p);
platform :: Platform(SOCKETS 4, L3_BYTES 524288);
mon :: Flow(TYPE MON);
`)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := ParseOverrides("SOCKETS 2, MEM_CYCLES 9")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.PlatformConfig(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = cli.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sockets != 2 {
		t.Fatalf("CLI override lost: SOCKETS %d, want 2", cfg.Sockets)
	}
	if cfg.L3.SizeBytes != 524288 {
		t.Fatalf("file override lost: L3 %d, want 524288", cfg.L3.SizeBytes)
	}
	if cfg.MemCtrlService != 9 {
		t.Fatalf("CLI addition lost: MEM_CYCLES %d, want 9", cfg.MemCtrlService)
	}
	if cfg.CoresPerSocket != testCfg().CoresPerSocket {
		t.Fatalf("untouched key changed: CORES_PER_SOCKET %d", cfg.CoresPerSocket)
	}
}

// TestPlatformErrors: malformed blocks fail deterministically with
// messages naming the offending key.
func TestPlatformErrors(t *testing.T) {
	cases := []struct{ args, want string }{
		{"SOCKETS zero", "not an integer"},
		{"SOCKETS 0", "outside [1,64]"},
		{"CORES_PER_SOCKET -3", "outside"},
		{"WIDGETS 7", "unknown key WIDGETS"},
		{"L3_POLICY FIFO", `L3_POLICY "FIFO"`},
		{"LINE_BYTES 128", "LINE_BYTES 128 unsupported"},
		{"CLOCK_HZ -1e9", "must be positive"},
		{"STREAM_MLP 0", "below minimum 1"},
		{"64", "positional argument"},
	}
	for _, c := range cases {
		text := "scenario :: Scenario(NAME p);\nplatform :: Platform(" + c.args + ");\nmon :: Flow(TYPE MON);\n"
		_, err := Parse(text)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Platform(%s): error %v, want containing %q", c.args, err, c.want)
		}
	}

	// Geometry that would panic hw's cache construction errors at Apply.
	s, err := Parse("scenario :: Scenario(NAME p);\nplatform :: Platform(L3_BYTES 4096, L3_WAYS 16);\nmon :: Flow(TYPE MON);\n")
	if err != nil {
		t.Fatal(err)
	}
	// 4096 B / 16 ways = 4 lines per way — valid. Shrink ways mismatch:
	bad, err := Parse("scenario :: Scenario(NAME p);\nplatform :: Platform(L3_BYTES 4160);\nmon :: Flow(TYPE MON);\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.PlatformConfig(testCfg()); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("invalid geometry accepted: %v", err)
	}
	if _, err := s.PlatformConfig(testCfg()); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}

	// A second platform declaration is an error.
	_, err = Parse("scenario :: Scenario(NAME p);\nplatform :: Platform();\nplatform2 :: Platform();\nmon :: Flow(TYPE MON);\n")
	if err == nil || !strings.Contains(err.Error(), "second Platform") {
		t.Fatalf("duplicate platform accepted: %v", err)
	}
}

// TestParseErrorsIncludeLineNumbers: statement errors name the line the
// statement starts on, surviving line comments, block comments, and
// graph blocks between statements.
func TestParseErrorsIncludeLineNumbers(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{
			"scenario :: Scenario(NAME x);\nmon :: Flow(TYPE MON);\nbogus decl here;\n",
			"(line 3)",
		},
		{
			"// leading comment\nscenario :: Scenario(NAME x);\n/* block\ncomment\n*/\nbad :: Widget(1);\n",
			"(line 6)",
		},
		{
			"scenario :: Scenario(NAME x);\n\ngraph G {\n  src :: FromDevice(SIZE 64);\n  src -> ToDevice;\n}\n\ng :: Flow(GRAPH G);\nbad :: Widget(1);\n",
			"(line 9)",
		},
	}
	for i, c := range cases {
		_, err := Parse(c.text)
		if err == nil {
			t.Fatalf("case %d: parse accepted bad input", i)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not carry %q", i, err, c.want)
		}
	}
}

// TestShippedMixedHalfL3 pins the shipped platform-block demo: same flow
// groups as mixed, on the half-L3 variant of whatever base platform it
// is assembled on — asserted via both the Config path (block applied
// implicitly) and the sweep-style PlatformConfig/ConfigOn split.
func TestShippedMixedHalfL3(t *testing.T) {
	base := testCfg()
	params := apps.Small()
	s := loadShipped(t, "mixed_half_l3")

	direct, err := s.Config(base, params)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := s.PlatformConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	split, err := s.ConfigOn(resolved, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, split) {
		t.Fatalf("Config and PlatformConfig+ConfigOn diverge:\n got %+v\nwant %+v", split, direct)
	}
	if direct.Cfg.L3.SizeBytes != base.L3.SizeBytes/2 {
		t.Fatalf("platform block not applied: L3 %d, want %d", direct.Cfg.L3.SizeBytes, base.L3.SizeBytes/2)
	}

	mixed := loadShipped(t, "mixed")
	want, err := mixed.Config(base, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Apps, want.Apps) {
		t.Fatalf("half-L3 variant's flow groups diverge from mixed:\n got %+v\nwant %+v", direct.Apps, want.Apps)
	}
}
