package scenario

import (
	"reflect"
	"testing"
)

// FuzzParseScenario feeds arbitrary text to the scenario parser, which
// must reject or accept it without panicking — scenario files are user
// input, and sweeps author them programmatically. For every accepted
// input the parser must also round-trip: Render then Parse reproduces
// the identical structure (platform block included), which is the
// contract the sweep harness and the shipped-file tests rely on.
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		"scenario :: Scenario(NAME s);\nmon :: Flow(TYPE MON);",
		"scenario :: Scenario(NAME s, RING 256, ADMISSION true, PLACE 0 s1:1);\nmon :: Flow(TYPE MON, WORKERS 2, RATE_FRACTION 0.7);",
		// Platform blocks: empty, partial, full, and malformed.
		"scenario :: Scenario(NAME s);\nplatform :: Platform();\nmon :: Flow(TYPE MON);",
		"scenario :: Scenario(NAME s);\nplatform :: Platform(L3_BYTES 524288);\nmon :: Flow(TYPE MON);",
		fullPlatformScenario,
		"scenario :: Scenario(NAME s);\nplatform :: Platform(SOCKETS 0);\nmon :: Flow(TYPE MON);",
		"scenario :: Scenario(NAME s);\nplatform :: Platform(WIDGETS 7);\nmon :: Flow(TYPE MON);",
		"scenario :: Scenario(NAME s);\nplatform :: Platform(L3_POLICY RANDOM, INCLUSIVE_L3 maybe);\nmon :: Flow(TYPE MON);",
		"platform :: Platform(SOCKETS 2)",
		"scenario :: Scenario(NAME s);\nplatform :: Platform(SOCKETS 2);\nplatform2 :: Platform(SOCKETS 4);\nmon :: Flow(TYPE MON);",
		// Graph blocks with stage declarations.
		"scenario :: Scenario(NAME s);\ngraph G {\nsrc :: FromDevice(SIZE 64);\nsrc -> ToDevice;\nstage 1: ToDevice;\n}\ng :: Flow(GRAPH G);",
		"scenario :: Scenario(NAME s);\ngraph G {",
		// IDS detector chains: signature lists, entropy thresholds,
		// ban-table sizing, payload-shaping source keys, staged BanTable.
		"scenario :: Scenario(NAME s);\ngraph IDS {\nsrc :: FromDevice(SIZE 512, SIG_HIT 0.06, SIG_SEED 11, LOW_ENTROPY 0.5, LOW_ENTROPY_BITS 2);\nsig :: SignatureClassifier(SIG_SEED 11, PATTERNS 16);\nent :: EntropyGate(THRESHOLD 6.5, WINDOW 512);\nbans :: BanTable(ENTRIES 16384);\nsrc -> sig;\nsig[0] -> ToDevice;\nsig[1] -> ent;\nent[0] -> ToDevice;\nent[1] -> bans;\nbans[0] -> ToDevice;\nbans[1] -> Discard;\n}\nids :: Flow(GRAPH IDS, WORKERS 2);",
		"scenario :: Scenario(NAME s);\ngraph IDS {\nsrc :: FromDevice(SIG_HIT 0.02, SIG_SHIFT 0.6, SIG_SHIFT_AFTER 4000);\nsig :: SignatureClassifier(SIGS deadbeef0102|cafebabe55aa);\nbans :: BanTable(ENTRIES 4096);\nsrc -> sig;\nsig[0] -> ToDevice;\nsig[1] -> bans;\nbans[0] -> ToDevice;\nbans[1] -> Discard;\nstage 1: bans;\n}\nids :: Flow(GRAPH IDS, MIGRATE_STATE true);",
		"scenario :: Scenario(NAME s);\ngraph G {\nsig :: SignatureClassifier(SIGS |);\nent :: EntropyGate(THRESHOLD 99, WINDOW -5);\nbans :: BanTable(ENTRIES 0);\n}\ng :: Flow(GRAPH G);",
		"// comment\n/* block */\nscenario :: Scenario(NAME s);\nmon :: Flow(TYPE MON);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		s2, err := Parse(s.Render())
		if err != nil {
			t.Fatalf("accepted input renders unparseable: %v\n--- input ---\n%s\n--- rendered ---\n%s", err, text, s.Render())
		}
		if s.Name != "" && !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip diverges\n--- input ---\n%s\n got %+v\nwant %+v", text, s2, s)
		}
	})
}
