package scenario

import (
	"reflect"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/runtime"
)

// TestStagedGraphRoundTrip is the stage-cut grammar contract: parse →
// render → parse is structurally identical, and assembling the scenario
// hands the flattened stage map to the runtime's custom flow type.
func TestStagedGraphRoundTrip(t *testing.T) {
	text := `
		scenario :: Scenario(NAME cut, MIN_SOCKETS 2);
		graph CHAIN {
			src :: FromDevice(SIZE 64);
			a :: Counter;
			b :: Counter;
			c :: Counter;
			src -> a -> b -> c -> ToDevice;
			stage 1: b;
			stage 2: c, ToDevice;
		}
		chain :: Flow(GRAPH CHAIN, WORKERS 2);
	`
	s1, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	g := s1.Graphs[0]
	wantDecls := []StageDecl{
		{Stage: 1, Elements: []string{"b"}},
		{Stage: 2, Elements: []string{"c", "ToDevice"}},
	}
	if !reflect.DeepEqual(g.Stages, wantDecls) {
		t.Fatalf("parsed stage decls %+v, want %+v", g.Stages, wantDecls)
	}
	if strings.Contains(g.Config, "stage") {
		t.Fatalf("stage declarations leaked into the Click text:\n%s", g.Config)
	}
	s2, err := Parse(s1.Render())
	if err != nil {
		t.Fatalf("re-parse: %v\n--- rendered ---\n%s", err, s1.Render())
	}
	if s2.Name == "" {
		s2.Name = s1.Name
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v", s2, s1)
	}

	cfg, err := s1.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	cf := cfg.Params.Custom[apps.FlowType("CHAIN")]
	wantMap := map[string]int{"b": 1, "c": 2, "ToDevice": 2}
	if !reflect.DeepEqual(cf.Stages, wantMap) {
		t.Fatalf("custom flow stage map %+v, want %+v", cf.Stages, wantMap)
	}
	if got := cfg.Params.Stages("CHAIN"); got != 3 {
		t.Fatalf("Params.Stages = %d, want 3", got)
	}
}

// TestStagedGraphRoundTripDanglingStatement: a graph body whose last
// Click statement lacks its ';' (and whose stage declaration sits in the
// middle) must still render and re-parse stably — the parser terminates
// the dangling statement so Render can append stage declarations after
// the Click text.
func TestStagedGraphRoundTripDanglingStatement(t *testing.T) {
	text := `scenario :: Scenario(NAME dangle);
graph G {
	src :: FromDevice;
	fw :: Counter;
	src -> fw;
	stage 1: fw;
	fw -> ToDevice
}
g :: Flow(GRAPH G);`
	s1, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.Render())
	if err != nil {
		t.Fatalf("re-parse: %v\n--- rendered ---\n%s", err, s1.Render())
	}
	s2.Name = s1.Name
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v\n--- rendered ---\n%s", s2, s1, s1.Render())
	}
	if len(s2.Graphs[0].Stages) != 1 || strings.Contains(s2.Graphs[0].Config, "stage") {
		t.Fatalf("stage declaration lost or leaked: %+v", s2.Graphs[0])
	}
}

func TestStageGrammarErrors(t *testing.T) {
	mk := func(body string) string {
		return "scenario :: Scenario(NAME x);\ngraph G {\nsrc :: FromDevice;\nfw :: Counter;\nsrc -> fw -> ToDevice;\n" +
			body + "\n}\ng :: Flow(GRAPH G);"
	}
	cases := []struct{ name, text, wantSub string }{
		{"no colon", mk("stage 1 fw;"), "wants"},
		{"bad number", mk("stage 1x: fw;"), "bad stage number"},
		{"no elements", mk("stage 1: ;"), "names no elements"},
		{"missing semicolon", mk("stage 1: fw"), "missing ';'"},
		{"two stages", mk("stage 1: fw; stage 2: fw;"), "two stages"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

// TestElementNamedStageIsNotADeclaration: only `stage <number>:` is the
// cut grammar; an element that happens to be called stage stays ordinary
// Click text.
func TestElementNamedStageIsNotADeclaration(t *testing.T) {
	text := `scenario :: Scenario(NAME s);
graph G {
	src :: FromDevice;
	stage :: Counter;
	src -> stage -> ToDevice;
}
g :: Flow(GRAPH G);`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Graphs[0].Stages) != 0 {
		t.Fatalf("element named stage parsed as a declaration: %+v", s.Graphs[0].Stages)
	}
	if !strings.Contains(s.Graphs[0].Config, "stage :: Counter") {
		t.Fatalf("element named stage lost from the Click text:\n%s", s.Graphs[0].Config)
	}
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Params.Build("G", memArena(), 1); err != nil {
		t.Fatalf("graph with element named stage does not build: %v", err)
	}
}

// TestStagedNatChainRunsEndToEnd drives the shipped staged scenario the
// same way `cmd/dataplane -config` does: load, assemble, run, and report
// per-stage workers with packet conservation intact.
func TestStagedNatChainRunsEndToEnd(t *testing.T) {
	s := loadShipped(t, "nat_chain_staged")
	cfg, err := s.Config(testCfg(), apps.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg.QuantumCycles = 100_000
	cfg.ControlEvery = 4
	cfg.Warmup = 0.0003
	r, err := runtime.NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	var nat *runtime.AppReport
	for i := range rep.Apps {
		if err := rep.Apps[i].CheckConservation(); err != nil {
			t.Fatal(err)
		}
		if rep.Apps[i].Name == "natfw" {
			nat = &rep.Apps[i]
		}
	}
	if nat == nil {
		t.Fatal("no natfw app in report")
	}
	if nat.Stages != 2 || nat.Workers != 2 {
		t.Fatalf("natfw stages/workers = %d/%d, want 2/2", nat.Stages, nat.Workers)
	}
	if nat.Processed == 0 || nat.Finished == 0 {
		t.Fatalf("staged chain made no progress: %+v", nat)
	}
	// Per-stage worker rows: stage 0 on socket 0, stage 1 on socket 1
	// (the scenario's PLACE), each reporting packets and occupancy.
	var st0, st1 *runtime.WorkerReport
	for i := range rep.Workers {
		w := &rep.Workers[i]
		if w.App != "natfw" {
			continue
		}
		switch w.Stage {
		case 0:
			st0 = w
		case 1:
			st1 = w
		}
	}
	if st0 == nil || st1 == nil {
		t.Fatalf("missing per-stage worker rows: %+v", rep.Workers)
	}
	if st0.Socket != 0 || st1.Socket != 1 {
		t.Fatalf("stage placement: stage0 socket %d, stage1 socket %d, want 0/1", st0.Socket, st1.Socket)
	}
	for _, w := range []*runtime.WorkerReport{st0, st1} {
		if w.Packets == 0 || w.PPS <= 0 {
			t.Fatalf("stage %d worker idle: %+v", w.Stage, w)
		}
		if w.BatchOccupancy < 0 || w.BatchOccupancy > 1 {
			t.Fatalf("stage %d occupancy %v outside [0,1]", w.Stage, w.BatchOccupancy)
		}
	}
	// The rendered report carries the stage column.
	if !strings.Contains(rep.String(), "0/2") || !strings.Contains(rep.String(), "1/2") {
		t.Fatalf("report does not render per-stage rows:\n%s", rep.String())
	}
	// Per-stage telemetry in the control samples: the stage-1 worker's
	// ring columns describe its hand-off ring.
	saw := false
	for _, cs := range r.Stats().Samples() {
		for _, wt := range cs.Workers {
			if wt.App == "natfw" && wt.Stage == 1 && wt.RingCap > 0 {
				saw = true
			}
		}
	}
	if !saw {
		t.Fatal("no control sample reports stage-1 hand-off ring telemetry")
	}
}
