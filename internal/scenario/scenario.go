// Package scenario loads dataplane scenarios from Click-style text
// files, replacing hard-coded Go builtins with configuration an operator
// edits and ships. A scenario file declares flow groups (builtin types
// or Click graphs defined inline), their offered rates and pacing,
// replica counts, core placement, and the runtime knobs a scenario
// needs, e.g.:
//
//	scenario :: Scenario(NAME nat_chain, MIN_CORES_PER_SOCKET 4);
//
//	graph NATFW {
//	    src :: FromDevice(SIZE 64);
//	    cls :: IPClassifier(tcp, udp, -);
//	    src -> CheckIPHeader -> cls;
//	    cls[0] -> IPRewriter(CAPACITY 65536) -> ToDevice;
//	    cls[1] -> ToDevice;
//	    cls[2] -> Discard;
//	}
//
//	natfw :: Flow(GRAPH NATFW, WORKERS 2);
//	mon   :: Flow(TYPE MON, RATE_FRACTION 0.7);
//
// A graph block may also declare stage cuts, turning the flow into a
// cross-worker service chain: `stage 1: fw;` moves fw — and everything
// downstream of it — onto a second worker connected by a hand-off ring.
// Each replica of a staged flow occupies one core per stage, consecutive
// in worker order, so PLACE pins stages individually (e.g. PLACE s0:0
// s1:0 runs stage 0 on socket 0 and stage 1 across the interconnect).
//
// A file may also declare the platform it wants to run on:
//
//	platform :: Platform(SOCKETS 2, CORES_PER_SOCKET 4, L3_BYTES 6291456);
//
// overriding only the named knobs of the base platform (see Platform for
// the key set and precedence rules) — this is what lets one scenario be
// evaluated across platform shapes, the paper's evaluation axis that
// internal/sweep grids over.
//
// Config turns a parsed scenario into a runtime.Config on a concrete
// platform; inline graphs become custom flow types (apps.Params.Custom),
// so offline profiling and the concurrent runtime treat them exactly
// like builtin workloads. See docs/scenario-format.md for the complete
// grammar reference.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/runtime"
)

// Placement pins one worker to a core: either an absolute core index
// (Socket < 0) or core Core of socket Socket.
type Placement struct {
	Socket int // -1 for an absolute core index
	Core   int
}

// Flow declares one flow group.
type Flow struct {
	Name  string
	Type  string // builtin flow type name, or the name of a Graph
	Graph string // inline graph reference (sets the custom type)

	Workers       int
	Rate          float64
	RateFraction  float64
	BurstOn       int
	BurstOff      int
	Control       bool
	HiddenTrigger uint64
	SynCompute    int
	PacketSize    int
	// SLOP99US declares an end-to-end latency objective: the flow's
	// per-window p99 latency must stay at or below this many virtual
	// microseconds. Zero means no objective.
	SLOP99US float64
}

// Graph is one inline pipeline definition; Config is the Click graph
// text, kept verbatim (stage declarations excluded).
type Graph struct {
	Name   string
	Config string
	// Stages holds the graph's stage-cut declarations in declaration
	// order; empty means the graph runs to completion on one worker.
	Stages []StageDecl
}

// StageDecl assigns the named elements to one stage of a cross-worker
// service chain (`stage 1: fw, tee;` inside a graph block). Elements not
// named in any declaration inherit their predecessors' stage, so listing
// each cut's entry elements is enough. A flow using a staged graph
// occupies stages × WORKERS cores: each replica spans its stages on
// consecutive workers, in stage order — PLACE lists cores in that same
// order.
type StageDecl struct {
	Stage    int
	Elements []string
}

// MaxStage returns the graph's highest declared stage index.
func (g Graph) MaxStage() int {
	max := 0
	for _, d := range g.Stages {
		if d.Stage > max {
			max = d.Stage
		}
	}
	return max
}

// StageMap flattens the declarations into the element→stage map the apps
// layer consumes; nil when the graph is unstaged.
func (g Graph) StageMap() map[string]int {
	if len(g.Stages) == 0 {
		return nil
	}
	m := make(map[string]int)
	for _, d := range g.Stages {
		for _, el := range d.Elements {
			m[el] = d.Stage
		}
	}
	return m
}

// Scenario is a parsed scenario file.
type Scenario struct {
	Name string

	RingSize int
	// Batch is the modelled receive batch size (`BATCH 16`): descriptor
	// and RX-poll costs are charged once per batch of this many packets,
	// per-packet execution stays per packet, and the runtime's workers
	// drain bursts of this size. 0 (the default) and 1 both mean the
	// historical unbatched cost model.
	Batch             int
	Admission         bool
	DropThreshold     float64
	MinCoresPerSocket int
	MinSockets        int
	// MigrateState is the state-migration footprint threshold in bytes
	// (`MIGRATE_STATE 1048576`): a re-placed flow whose tables fit copies
	// them to its new socket, a bigger one keeps them remote. Zero (the
	// default) leaves state behind on every migration.
	MigrateState uint64
	// Fit caps the total worker count at min(cores per socket, Fit),
	// admitting declared flows in order until the cap is hit — how the
	// mixed scenario fills exactly one socket on any platform.
	Fit               int
	SynRegionFraction float64
	Place             []Placement

	// Platform is the file's platform :: Platform(...) override block,
	// nil when the file declares none and runs on the base platform
	// unchanged.
	Platform *Platform

	Flows  []Flow
	Graphs []Graph
}

// Load reads and parses a scenario file. A missing NAME defaults to the
// file's base name without extension.
func Load(path string) (*Scenario, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(string(text))
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return s, nil
}

// Parse parses scenario text.
func Parse(text string) (*Scenario, error) {
	stripped, err := click.StripComments(text)
	if err != nil {
		return nil, err
	}
	rest, graphs, err := extractGraphs(stripped)
	if err != nil {
		return nil, err
	}
	s := &Scenario{Graphs: graphs}
	seenScenario := false
	names := map[string]bool{}
	for _, g := range graphs {
		if names[g.Name] {
			return nil, fmt.Errorf("graph %q declared twice", g.Name)
		}
		names[g.Name] = true
		staged := map[string]bool{}
		for _, d := range g.Stages {
			for _, el := range d.Elements {
				if staged[el] {
					return nil, fmt.Errorf("graph %q: element %q assigned to two stages", g.Name, el)
				}
				staged[el] = true
			}
		}
	}

	// Statement errors carry both the statement number and the line the
	// statement starts on (StripComments and extractGraphs preserve
	// newlines, so click.Statements' positions match the original file)
	// — what makes a parse error in a large sweep-authored scenario
	// findable.
	for _, stmt := range click.Statements(rest) {
		st := stmt.Text
		at := fmt.Sprintf("statement %d (line %d)", stmt.No, stmt.Line)
		name, classRef, ok := click.CutTopLevel(st, "::")
		if !ok {
			return nil, fmt.Errorf("%s: cannot parse %q (want name :: Scenario(...), name :: Platform(...) or name :: Flow(...))", at, st)
		}
		name = strings.TrimSpace(name)
		if !isFlowName(name) {
			return nil, fmt.Errorf("%s: bad name %q", at, name)
		}
		class, args, err := click.ParseClassRef(strings.TrimSpace(classRef))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", at, err)
		}
		switch class {
		case "Scenario":
			if seenScenario {
				return nil, fmt.Errorf("%s: second Scenario declaration", at)
			}
			seenScenario = true
			if err := s.applyScenarioArgs(args); err != nil {
				return nil, fmt.Errorf("%s: %w", at, err)
			}
		case "Platform":
			if s.Platform != nil {
				return nil, fmt.Errorf("%s: second Platform declaration", at)
			}
			p, err := ParsePlatformArgs(args)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", at, err)
			}
			s.Platform = p
		case "Flow":
			if names[name] {
				return nil, fmt.Errorf("%s: flow %q declared twice", at, name)
			}
			names[name] = true
			f, err := parseFlow(name, args)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", at, err)
			}
			s.Flows = append(s.Flows, f)
		default:
			return nil, fmt.Errorf("%s: unknown declaration class %q (want Scenario, Platform or Flow)", at, class)
		}
	}
	if !seenScenario {
		return nil, fmt.Errorf("missing scenario :: Scenario(...) declaration")
	}
	if len(s.Flows) == 0 {
		return nil, fmt.Errorf("scenario declares no flows")
	}
	// Every referenced graph must exist; every declared graph must be used.
	declared := map[string]bool{}
	for _, g := range s.Graphs {
		declared[g.Name] = true
	}
	used := map[string]bool{}
	for _, f := range s.Flows {
		if f.Graph != "" {
			if !declared[f.Graph] {
				return nil, fmt.Errorf("flow %q references undeclared graph %q", f.Name, f.Graph)
			}
			used[f.Graph] = true
		}
	}
	for _, g := range s.Graphs {
		if !used[g.Name] {
			return nil, fmt.Errorf("graph %q is declared but no flow uses it", g.Name)
		}
	}
	return s, nil
}

func (s *Scenario) applyScenarioArgs(args click.Args) error {
	var err error
	get := func(key string, dst *int) {
		if err != nil {
			return
		}
		*dst, err = args.Int(key, *dst)
	}
	getF := func(key string, dst *float64) {
		if err != nil {
			return
		}
		*dst, err = args.Float64(key, *dst)
	}
	s.Name = args.String("NAME", s.Name)
	get("RING", &s.RingSize)
	get("BATCH", &s.Batch)
	get("MIN_CORES_PER_SOCKET", &s.MinCoresPerSocket)
	get("MIN_SOCKETS", &s.MinSockets)
	get("FIT", &s.Fit)
	getF("DROP_THRESHOLD", &s.DropThreshold)
	getF("SYN_REGION_FRACTION", &s.SynRegionFraction)
	if err != nil {
		return err
	}
	if s.MigrateState, err = args.Uint64("MIGRATE_STATE", 0); err != nil {
		return err
	}
	if s.Admission, err = args.Bool("ADMISSION", false); err != nil {
		return err
	}
	if place := args.String("PLACE", ""); place != "" {
		for _, tok := range strings.Fields(place) {
			p, perr := parsePlacement(tok)
			if perr != nil {
				return perr
			}
			s.Place = append(s.Place, p)
		}
	}
	if s.SynRegionFraction < 0 || s.SynRegionFraction > 1 {
		return fmt.Errorf("SYN_REGION_FRACTION %v outside [0,1]", s.SynRegionFraction)
	}
	if s.Batch < 0 {
		return fmt.Errorf("BATCH %d must be positive", s.Batch)
	}
	return nil
}

func parsePlacement(tok string) (Placement, error) {
	if sock, core, ok := strings.Cut(tok, ":"); ok {
		if !strings.HasPrefix(sock, "s") {
			return Placement{}, fmt.Errorf("placement %q: want <core> or s<socket>:<core>", tok)
		}
		si, err1 := strconv.Atoi(sock[1:])
		ci, err2 := strconv.Atoi(core)
		if err1 != nil || err2 != nil || si < 0 || ci < 0 {
			return Placement{}, fmt.Errorf("placement %q: want <core> or s<socket>:<core>", tok)
		}
		return Placement{Socket: si, Core: ci}, nil
	}
	ci, err := strconv.Atoi(tok)
	if err != nil || ci < 0 {
		return Placement{}, fmt.Errorf("placement %q: want <core> or s<socket>:<core>", tok)
	}
	return Placement{Socket: -1, Core: ci}, nil
}

func parseFlow(name string, args click.Args) (Flow, error) {
	f := Flow{Name: name, Workers: 1}
	f.Type = args.String("TYPE", "")
	f.Graph = args.String("GRAPH", "")
	switch {
	case f.Type == "" && f.Graph == "":
		return f, fmt.Errorf("flow %q needs TYPE or GRAPH", name)
	case f.Type != "" && f.Graph != "":
		return f, fmt.Errorf("flow %q sets both TYPE and GRAPH", name)
	case f.Graph != "":
		f.Type = f.Graph
	}
	var err error
	geti := func(key string, dst *int) {
		if err != nil {
			return
		}
		*dst, err = args.Int(key, *dst)
	}
	geti("WORKERS", &f.Workers)
	geti("BURST_ON", &f.BurstOn)
	geti("BURST_OFF", &f.BurstOff)
	geti("SYN_COMPUTE", &f.SynCompute)
	geti("PACKET_SIZE", &f.PacketSize)
	if err != nil {
		return f, err
	}
	if f.Rate, err = args.Float64("RATE", 0); err != nil {
		return f, err
	}
	if f.RateFraction, err = args.Float64("RATE_FRACTION", 0); err != nil {
		return f, err
	}
	if f.SLOP99US, err = args.Float64("SLO_P99_US", 0); err != nil {
		return f, err
	}
	if f.Control, err = args.Bool("CONTROL", false); err != nil {
		return f, err
	}
	if f.HiddenTrigger, err = args.Uint64("HIDDEN_TRIGGER", 0); err != nil {
		return f, err
	}
	if f.Workers <= 0 {
		return f, fmt.Errorf("flow %q needs at least one worker", name)
	}
	return f, nil
}

// flowStages returns how many workers one replica of f occupies: the
// stage count of its graph, or 1 for builtins and unstaged graphs.
func (s *Scenario) flowStages(f Flow) int {
	for _, g := range s.Graphs {
		if g.Name == f.Type {
			if len(g.Stages) == 0 {
				return 1
			}
			return g.MaxStage() + 1
		}
	}
	return 1
}

// flowType resolves a flow's type string: a declared graph name wins,
// otherwise it must be a builtin flow type.
func (s *Scenario) flowType(f Flow) (apps.FlowType, error) {
	for _, g := range s.Graphs {
		if g.Name == f.Type {
			return apps.FlowType(g.Name), nil
		}
	}
	return apps.ParseFlowType(f.Type)
}

// PlatformConfig returns base with the file's platform block applied —
// the effective platform the scenario asks to run on. Without a block it
// returns base unchanged.
func (s *Scenario) PlatformConfig(base hw.Config) (hw.Config, error) {
	cfg, err := s.Platform.Apply(base)
	if err != nil {
		return hw.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return cfg, nil
}

// Config assembles the runtime configuration of the scenario on the
// given platform and workload scale — the file-based counterpart of
// runtime.ScenarioConfig. The file's platform block, if any, is applied
// to cfg first; callers that already resolved platform precedence
// themselves (the sweep harness layering variants, the CLI layering
// -platform) use ConfigOn instead.
func (s *Scenario) Config(cfg hw.Config, params apps.Params) (runtime.Config, error) {
	applied, err := s.PlatformConfig(cfg)
	if err != nil {
		return runtime.Config{}, err
	}
	return s.ConfigOn(applied, params)
}

// ConfigOn assembles the runtime configuration on exactly cfg, treating
// it as the already-resolved effective platform (the file's platform
// block is NOT applied again).
func (s *Scenario) ConfigOn(cfg hw.Config, params apps.Params) (runtime.Config, error) {
	if cfg.CoresPerSocket < s.MinCoresPerSocket {
		return runtime.Config{}, fmt.Errorf("scenario %s needs ≥%d cores per socket", s.Name, s.MinCoresPerSocket)
	}
	if cfg.Sockets < s.MinSockets {
		return runtime.Config{}, fmt.Errorf("scenario %s needs ≥%d sockets", s.Name, s.MinSockets)
	}
	if s.SynRegionFraction > 0 {
		params.SynRegionBytes = int(s.SynRegionFraction * float64(cfg.L3.SizeBytes))
	}
	if s.Batch > 0 {
		// The modelled batch must reach both the cost model (Params, so
		// offline profiling and the runtime's receive path charge the
		// same amortized poll) and the runtime's burst size (Config.Batch,
		// set below).
		params.RxBatch = s.Batch
	}
	if len(s.Graphs) > 0 {
		custom := make(map[apps.FlowType]apps.CustomFlow, len(s.Graphs))
		for t, cf := range params.Custom {
			custom[t] = cf
		}
		for _, g := range s.Graphs {
			t := apps.FlowType(g.Name)
			// A graph must not shadow (or be shadowed by) a builtin flow
			// type: SYN/SYN_MAX would silently win over the graph, and a
			// graph named MON would silently replace the builtin for every
			// Flow(TYPE MON) including offline profiling.
			if _, builtin := apps.ParseFlowType(g.Name); builtin == nil {
				return runtime.Config{}, fmt.Errorf("scenario %s: graph %q collides with a builtin flow type", s.Name, g.Name)
			}
			if _, clash := custom[t]; clash {
				return runtime.Config{}, fmt.Errorf("scenario %s: graph %q collides with an existing flow type", s.Name, g.Name)
			}
			pktSize := params.PacketSizeIP
			for _, f := range s.Flows {
				if f.Graph == g.Name && f.PacketSize > 0 {
					pktSize = f.PacketSize
				}
			}
			custom[t] = apps.CustomFlow{Config: g.Config, PacketSize: pktSize, Stages: g.StageMap()}
		}
		params.Custom = custom
	}

	out := runtime.Config{Cfg: cfg, Params: params, Scenario: s.Name}
	fit := 0
	if s.Fit > 0 {
		fit = cfg.CoresPerSocket
		if fit > s.Fit {
			fit = s.Fit
		}
	}
	total := 0
	for _, f := range s.Flows {
		t, err := s.flowType(f)
		if err != nil {
			return runtime.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		// A staged graph's replica occupies one core per stage.
		cores := f.Workers * s.flowStages(f)
		if fit > 0 && total+cores > fit {
			break
		}
		total += cores
		out.Apps = append(out.Apps, runtime.AppSpec{
			Name: f.Name, Type: t, Workers: f.Workers,
			Rate: f.Rate, RateFraction: f.RateFraction,
			BurstOn: f.BurstOn, BurstOff: f.BurstOff,
			Control: f.Control, HiddenTrigger: f.HiddenTrigger,
			SynCompute: f.SynCompute, PacketSize: f.PacketSize,
			SLOP99US: f.SLOP99US,
		})
	}
	if len(out.Apps) == 0 {
		return runtime.Config{}, fmt.Errorf("scenario %s: no flows fit the platform", s.Name)
	}
	for _, p := range s.Place {
		core := p.Core
		if p.Socket >= 0 {
			if p.Socket >= cfg.Sockets || p.Core >= cfg.CoresPerSocket {
				return runtime.Config{}, fmt.Errorf("scenario %s: placement s%d:%d outside the platform", s.Name, p.Socket, p.Core)
			}
			core = p.Socket*cfg.CoresPerSocket + p.Core
		}
		out.Cores = append(out.Cores, core)
	}
	out.RingSize = s.RingSize
	if s.Batch > 0 {
		out.Batch = s.Batch
	}
	out.Admission = s.Admission
	out.DropThreshold = s.DropThreshold
	out.MigrateState = s.MigrateState
	return out, nil
}

// Render writes the scenario back as canonical text; Parse(Render(s)) is
// structurally identical to s (graph bodies are preserved verbatim).
func (s *Scenario) Render() string {
	var b strings.Builder
	b.WriteString("scenario :: Scenario(")
	var attrs []string
	add := func(format string, a ...interface{}) {
		attrs = append(attrs, fmt.Sprintf(format, a...))
	}
	if s.Name != "" {
		add("NAME %s", s.Name)
	}
	if s.RingSize != 0 {
		add("RING %d", s.RingSize)
	}
	if s.Batch != 0 {
		add("BATCH %d", s.Batch)
	}
	if s.Admission {
		add("ADMISSION true")
	}
	if s.DropThreshold != 0 {
		add("DROP_THRESHOLD %v", s.DropThreshold)
	}
	if s.MigrateState != 0 {
		add("MIGRATE_STATE %d", s.MigrateState)
	}
	if s.MinCoresPerSocket != 0 {
		add("MIN_CORES_PER_SOCKET %d", s.MinCoresPerSocket)
	}
	if s.MinSockets != 0 {
		add("MIN_SOCKETS %d", s.MinSockets)
	}
	if s.Fit != 0 {
		add("FIT %d", s.Fit)
	}
	if s.SynRegionFraction != 0 {
		add("SYN_REGION_FRACTION %v", s.SynRegionFraction)
	}
	if len(s.Place) > 0 {
		toks := make([]string, len(s.Place))
		for i, p := range s.Place {
			if p.Socket < 0 {
				toks[i] = strconv.Itoa(p.Core)
			} else {
				toks[i] = fmt.Sprintf("s%d:%d", p.Socket, p.Core)
			}
		}
		add("PLACE %s", strings.Join(toks, " "))
	}
	b.WriteString(strings.Join(attrs, ", "))
	b.WriteString(");\n")

	if s.Platform != nil {
		fmt.Fprintf(&b, "\nplatform :: Platform(%s);\n", strings.Join(s.Platform.renderArgs(), ", "))
	}

	for _, g := range s.Graphs {
		fmt.Fprintf(&b, "\ngraph %s {%s", g.Name, g.Config)
		// Stage declarations re-attach right after the Click text so the
		// next parse strips them back out byte-for-byte.
		for _, d := range g.Stages {
			fmt.Fprintf(&b, "stage %d: %s;", d.Stage, strings.Join(d.Elements, " "))
		}
		b.WriteString("}\n")
	}

	for _, f := range s.Flows {
		attrs = attrs[:0]
		if f.Graph != "" {
			add("GRAPH %s", f.Graph)
		} else {
			add("TYPE %s", f.Type)
		}
		if f.Workers != 1 {
			add("WORKERS %d", f.Workers)
		}
		if f.Rate != 0 {
			add("RATE %v", f.Rate)
		}
		if f.RateFraction != 0 {
			add("RATE_FRACTION %v", f.RateFraction)
		}
		if f.BurstOn != 0 {
			add("BURST_ON %d", f.BurstOn)
		}
		if f.BurstOff != 0 {
			add("BURST_OFF %d", f.BurstOff)
		}
		if f.Control {
			add("CONTROL true")
		}
		if f.HiddenTrigger != 0 {
			add("HIDDEN_TRIGGER %d", f.HiddenTrigger)
		}
		if f.SynCompute != 0 {
			add("SYN_COMPUTE %d", f.SynCompute)
		}
		if f.PacketSize != 0 {
			add("PACKET_SIZE %d", f.PacketSize)
		}
		if f.SLOP99US != 0 {
			add("SLO_P99_US %v", f.SLOP99US)
		}
		fmt.Fprintf(&b, "\n%s :: Flow(%s);", f.Name, strings.Join(attrs, ", "))
	}
	b.WriteString("\n")
	return b.String()
}

// extractGraphs pulls `graph NAME { ... }` blocks out of
// comment-stripped text, returning the remaining statement stream and
// the blocks in declaration order. Graph bodies must not contain braces.
func extractGraphs(s string) (string, []Graph, error) {
	var out strings.Builder
	var graphs []Graph
	i := 0
	for i < len(s) {
		if !wordAt(s, i, "graph") {
			out.WriteByte(s[i])
			i++
			continue
		}
		j := i + len("graph")
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		nameStart := j
		for j < len(s) && isIdentByte(s[j]) {
			j++
		}
		name := s[nameStart:j]
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if name == "" || j >= len(s) || s[j] != '{' {
			return "", nil, fmt.Errorf("malformed graph block near %q (want graph NAME { ... })", snippet(s[i:]))
		}
		closing := strings.IndexByte(s[j:], '}')
		if closing < 0 {
			return "", nil, fmt.Errorf("graph %q: missing closing brace", name)
		}
		// An unbalanced body can never form a valid Click config, and it
		// would make the top-level statement splitter see different
		// statement boundaries on re-parse — reject it here so Render's
		// output is stable.
		if !click.BalancedParens(s[j+1 : j+closing]) {
			return "", nil, fmt.Errorf("graph %q: unbalanced parentheses", name)
		}
		cfg, decls, err := stripStageDecls(name, s[j+1:j+closing])
		if err != nil {
			return "", nil, err
		}
		graphs = append(graphs, Graph{Name: name, Config: cfg, Stages: decls})
		// Keep the removed block's newlines in the statement stream so
		// line numbers reported for later statements stay true to the
		// file.
		end := j + closing + 1
		for k := i; k < end; k++ {
			if s[k] == '\n' {
				out.WriteByte('\n')
			}
		}
		i = end
	}
	return out.String(), graphs, nil
}

// stripStageDecls pulls `stage N: el el;` statements out of a graph body,
// returning the remaining Click text byte-for-byte except that the
// declarations themselves are removed (first keyword byte through
// terminating semicolon) and a dangling final statement gains its ';',
// so that parse → render → parse is stable.
func stripStageDecls(graph, body string) (string, []StageDecl, error) {
	var out strings.Builder
	var decls []StageDecl
	parts := click.SplitTopLevel(body, ";")
	for i, stmt := range parts {
		terminated := i < len(parts)-1 // every part but the last had a ';'
		lead := len(stmt) - len(strings.TrimLeft(stmt, " \t\r\n"))
		trimmed := stmt[lead:]
		switch {
		case !isStageDecl(trimmed):
			out.WriteString(stmt)
			if terminated || trimmed != "" {
				// Terminating a dangling final statement keeps the Click
				// text well-formed when Render re-attaches stage
				// declarations after it (and makes parse → render → parse
				// stable from the first parse on).
				out.WriteByte(';')
			}
		case !terminated:
			return "", nil, fmt.Errorf("graph %q: stage declaration %q missing ';'", graph, snippet(trimmed))
		default:
			d, err := parseStageDecl(trimmed)
			if err != nil {
				return "", nil, fmt.Errorf("graph %q: %w", graph, err)
			}
			decls = append(decls, d)
			out.WriteString(stmt[:lead])
		}
	}
	return out.String(), decls, nil
}

// isStageDecl reports whether a trimmed graph statement is a stage-cut
// declaration: the keyword `stage` followed by a stage number. An element
// that happens to be named stage (`stage :: Counter`, `stage -> out`) is
// ordinary Click text.
func isStageDecl(trimmed string) bool {
	if !wordAt(trimmed, 0, "stage") {
		return false
	}
	rest := strings.TrimLeft(trimmed[len("stage"):], " \t\r\n")
	return rest != "" && rest[0] >= '0' && rest[0] <= '9'
}

// parseStageDecl parses "stage N: el[,] el ...".
func parseStageDecl(s string) (StageDecl, error) {
	rest := strings.TrimSpace(s[len("stage"):])
	num, names, ok := strings.Cut(rest, ":")
	if !ok {
		return StageDecl{}, fmt.Errorf("stage declaration %q wants `stage N: element ...`", snippet(s))
	}
	n, err := strconv.Atoi(strings.TrimSpace(num))
	if err != nil || n < 0 {
		return StageDecl{}, fmt.Errorf("stage declaration %q: bad stage number %q", snippet(s), strings.TrimSpace(num))
	}
	d := StageDecl{Stage: n}
	for _, tok := range strings.FieldsFunc(names, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	}) {
		d.Elements = append(d.Elements, tok)
	}
	if len(d.Elements) == 0 {
		return StageDecl{}, fmt.Errorf("stage declaration %q names no elements", snippet(s))
	}
	return d, nil
}

func wordAt(s string, i int, word string) bool {
	if !strings.HasPrefix(s[i:], word) {
		return false
	}
	if i > 0 && isIdentByte(s[i-1]) {
		return false
	}
	after := i + len(word)
	return after >= len(s) || !isIdentByte(s[after])
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// isFlowName accepts identifiers with interior dashes ("mon-a"), the
// naming style scenario flows use.
func isFlowName(s string) bool {
	if s == "" || s[0] == '-' || s[len(s)-1] == '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !isIdentByte(c) && c != '-' {
			return false
		}
		if c >= '0' && c <= '9' && i == 0 {
			return false
		}
	}
	return true
}

func snippet(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 40 {
		s = s[:40] + "..."
	}
	return s
}
