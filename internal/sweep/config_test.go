package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseConfigFull(t *testing.T) {
	c, err := ParseConfig(`
// comment
sweep :: Sweep(NAME g, DURATION 0.004, WARMUP 0.0002, QUANTUM 50000,
               CONTROL_EVERY 3, PARALLEL 2, TOLERANCE 0.1, LOADS 0.5 1.0);

base  :: Platform();
small :: Platform(L3_BYTES 524288);

a :: Run(FILE x.click);
b :: Run(FILE y.click, TOLERANCE 0.2);
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "g" || c.Duration != 0.004 || c.Warmup != 0.0002 ||
		c.Quantum != 50000 || c.ControlEvery != 3 || c.Parallel != 2 || c.Tolerance != 0.1 {
		t.Fatalf("sweep knobs misparsed: %+v", c)
	}
	if len(c.Loads) != 2 || c.Loads[0] != 0.5 || c.Loads[1] != 1.0 {
		t.Fatalf("loads misparsed: %v", c.Loads)
	}
	if len(c.Platforms) != 2 || c.Platforms[0].Name != "base" || c.Platforms[0].Platform == nil {
		t.Fatalf("platforms misparsed: %+v", c.Platforms)
	}
	if c.Platforms[1].Platform.L3Bytes == nil || *c.Platforms[1].Platform.L3Bytes != 524288 {
		t.Fatalf("variant override misparsed: %+v", c.Platforms[1].Platform)
	}
	if len(c.Runs) != 2 || c.Runs[0] != (RunSpec{Name: "a", File: "x.click"}) ||
		c.Runs[1] != (RunSpec{Name: "b", File: "y.click", Tolerance: 0.2}) {
		t.Fatalf("runs misparsed: %+v", c.Runs)
	}
	if c.Points() != 2*2*2 {
		t.Fatalf("grid size %d, want 8", c.Points())
	}
}

func TestParseConfigDefaults(t *testing.T) {
	c, err := ParseConfig("sweep :: Sweep(NAME d);\nr :: Run(FILE f.click);\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Platforms) != 1 || c.Platforms[0].Name != "base" || c.Platforms[0].Platform != nil {
		t.Fatalf("implicit base platform missing: %+v", c.Platforms)
	}
	if len(c.Loads) != 1 || c.Loads[0] != 1 {
		t.Fatalf("implicit load point missing: %v", c.Loads)
	}
	if c.Duration != 0.006 || c.Warmup != 0.0003 || c.Quantum != 100_000 ||
		c.ControlEvery != 4 || c.Tolerance != 0.15 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct{ text, want string }{
		{"r :: Run(FILE f.click);", "missing sweep"},
		{"sweep :: Sweep(NAME d);", "declares no runs"},
		{"sweep :: Sweep(NAME d);\nr :: Run();", "needs FILE"},
		{"sweep :: Sweep(NAME d, LOADS 0 1);\nr :: Run(FILE f);", "LOADS point"},
		{"sweep :: Sweep(NAME d, TOLERANCE 1.5);\nr :: Run(FILE f);", "TOLERANCE"},
		{"sweep :: Sweep(NAME d, QUANTUM 10);\nr :: Run(FILE f);", "QUANTUM"},
		{"sweep :: Sweep(NAME d, CONTROL_EVERY -1);\nr :: Run(FILE f);", "CONTROL_EVERY"},
		{"sweep :: Sweep(NAME d);\np :: Platform(WIDGETS 1);\nr :: Run(FILE f);", "unknown key WIDGETS"},
		{"sweep :: Sweep(NAME d);\nsweep2 :: Sweep(NAME e);\nr :: Run(FILE f);", "second Sweep"},
		{"sweep :: Sweep(NAME d);\nx :: Run(FILE f);\nx :: Run(FILE g);", "declared twice"},
		{"sweep :: Sweep(NAME d);\nx :: Widget(1);", "unknown declaration class"},
		{"nonsense", "cannot parse"},
	}
	for _, c := range cases {
		if _, err := ParseConfig(c.text); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseConfig(%q): error %v, want containing %q", c.text, err, c.want)
		}
	}
	// Statement errors carry line numbers, like scenario.Parse.
	_, err := ParseConfig("sweep :: Sweep(NAME d);\n\nbogus statement;\n")
	if err == nil || !strings.Contains(err.Error(), "(line 3)") {
		t.Errorf("sweep parse error lacks line number: %v", err)
	}
}

func TestLoadConfigResolvesPaths(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.sweep")
	text := "sweep :: Sweep(DURATION 0.004);\nm :: Run(FILE ../scenarios/mixed.click);\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "grid" {
		t.Fatalf("name not defaulted from filename: %q", c.Name)
	}
	want := filepath.Join(dir, "../scenarios/mixed.click")
	if c.Runs[0].File != want {
		t.Fatalf("FILE not resolved against the sweep file's directory: %q, want %q", c.Runs[0].File, want)
	}
}

// TestShippedSweepsParse: every shipped .sweep file parses, resolves its
// scenario files to paths that exist, and declares the grid its comment
// promises.
func TestShippedSweepsParse(t *testing.T) {
	dir := "../../examples/sweeps"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".sweep") {
			continue
		}
		n++
		c, err := LoadConfig(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for _, r := range c.Runs {
			if _, err := os.Stat(r.File); err != nil {
				t.Errorf("%s: run %s references missing scenario %s", e.Name(), r.Name, r.File)
			}
		}
	}
	if n < 2 {
		t.Fatalf("only %d shipped sweep files found, want ≥2", n)
	}

	paper, err := LoadConfig(filepath.Join(dir, "paper_mixes.sweep"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paper.Platforms) < 2 || len(paper.Loads) < 3 || len(paper.Runs) < 4 {
		t.Fatalf("paper_mixes grid too small: %d platforms × %d loads × %d runs",
			len(paper.Platforms), len(paper.Loads), len(paper.Runs))
	}
}
