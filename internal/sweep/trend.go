package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Trend is a persistent prediction-error history: one entry per
// (git revision, scenario), appended by each sweep run (cmd/sweep
// -trend). It turns the per-PR smoke sweep into a time series — did this
// change move the model's accuracy on any scenario? — without anyone
// diffing JSON artifacts by hand.
type Trend struct {
	Entries []TrendEntry `json:"entries"`
}

// TrendEntry is one (revision, scenario) accuracy measurement. Re-running
// the same revision overwrites its entry (the measurement is refreshed,
// not duplicated).
type TrendEntry struct {
	GitRev   string `json:"git_rev"`
	When     string `json:"when"` // RFC3339, recorded by the caller
	Scale    string `json:"scale"`
	Sweep    string `json:"sweep"`
	Scenario string `json:"scenario"`

	// MaxAbsErr/MeanAbsErr aggregate |prediction error| over the
	// scenario's validated app rows across every grid point that ran it.
	MaxAbsErr  float64 `json:"max_abs_error"`
	MeanAbsErr float64 `json:"mean_abs_error"`
	Points     int     `json:"points"`
	Failed     int     `json:"failed_points"`

	// MaxP99US is the worst whole-run p99 latency (virtual µs) over the
	// scenario's latency-recording app rows; SLOBreaches totals their
	// breached control windows. Zero when no app recorded latencies.
	MaxP99US    float64 `json:"max_p99_us,omitempty"`
	SLOBreaches int     `json:"slo_breaches,omitempty"`
}

// LoadTrend reads a trend store; a missing file is an empty store. A
// store that exists but no longer parses (truncated write, merge
// damage) is moved aside to path+".corrupt" and an empty store
// returned, so one bad file costs the history, not the nightly run —
// the damaged bytes stay on disk for inspection.
func LoadTrend(path string) (*Trend, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trend{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trend: %w", err)
	}
	var t Trend
	if err := json.Unmarshal(data, &t); err != nil {
		if mvErr := os.Rename(path, path+".corrupt"); mvErr != nil {
			return nil, fmt.Errorf("trend %s: %v (and could not move aside: %w)", path, err, mvErr)
		}
		return &Trend{}, nil
	}
	return &t, nil
}

// Save writes the store back, stable-sorted so diffs stay readable:
// scenario first, then insertion order (the revision time series). The
// write goes through a same-directory temp file and os.Rename, so a
// crash mid-write leaves the previous store intact rather than a
// truncated one.
func (t *Trend) Save(path string) error {
	sort.SliceStable(t.Entries, func(i, j int) bool {
		return t.Entries[i].Scenario < t.Entries[j].Scenario
	})
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("trend: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// Append folds one sweep report into the store: per scenario, the
// max/mean |prediction error| over that scenario's validated app rows.
// An existing entry for the same (rev, scenario) is replaced.
func (t *Trend) Append(rep *Report, rev, when string) {
	type agg struct {
		max, sum float64
		n        int
		points   int
		failed   int
		maxP99   float64
		breaches int
	}
	byScenario := map[string]*agg{}
	for _, p := range rep.Points {
		a := byScenario[p.Scenario]
		if a == nil {
			a = &agg{}
			byScenario[p.Scenario] = a
		}
		a.points++
		if p.Error != "" || !p.Pass {
			a.failed++
		}
		if p.Error != "" {
			continue // broken accounting must not shape the trend
		}
		for _, ar := range p.Apps {
			if ar.LatCount > 0 && ar.LatP99US > a.maxP99 {
				a.maxP99 = ar.LatP99US
			}
			a.breaches += ar.SLOBreaches
			if !ar.Validated {
				continue
			}
			e := math.Abs(ar.PredErr)
			a.sum += e
			a.n++
			if e > a.max {
				a.max = e
			}
		}
	}
	names := make([]string, 0, len(byScenario))
	for s := range byScenario {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		a := byScenario[s]
		e := TrendEntry{
			GitRev: rev, When: when, Scale: rep.Scale, Sweep: rep.Name,
			Scenario: s, MaxAbsErr: a.max, Points: a.points, Failed: a.failed,
			MaxP99US: a.maxP99, SLOBreaches: a.breaches,
		}
		if a.n > 0 {
			e.MeanAbsErr = a.sum / float64(a.n)
		}
		t.upsert(e)
	}
}

// upsert replaces the entry matching (rev, scenario) or appends.
func (t *Trend) upsert(e TrendEntry) {
	for i, old := range t.Entries {
		if old.GitRev == e.GitRev && old.Scenario == e.Scenario {
			t.Entries[i] = e
			return
		}
	}
	t.Entries = append(t.Entries, e)
}

// Markdown renders the trend table, grouped by scenario with revisions
// in recorded order — the accuracy time series a reviewer reads to spot
// a regression the pass/fail gate's tolerance still admits.
func (t *Trend) Markdown() string {
	var b strings.Builder
	b.WriteString("# prediction-error trend\n\n")
	if len(t.Entries) == 0 {
		b.WriteString("no entries yet\n")
		return b.String()
	}
	b.WriteString("| scenario | rev | when | scale | max \\|err\\| | mean \\|err\\| | max p99 µs | slo breaches | points | failed |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, s := range t.Scenarios() {
		for _, e := range t.Entries {
			if e.Scenario != s {
				continue
			}
			p99 := "–"
			if e.MaxP99US > 0 {
				p99 = fmt.Sprintf("%.1f", e.MaxP99US)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.1f%% | %.1f%% | %s | %d | %d | %d |\n",
				mdCell(e.Scenario), mdCell(e.GitRev), mdCell(e.When), mdCell(e.Scale),
				e.MaxAbsErr*100, e.MeanAbsErr*100, p99, e.SLOBreaches, e.Points, e.Failed)
		}
	}
	return b.String()
}

// Scenarios lists the store's scenarios, sorted.
func (t *Trend) Scenarios() []string {
	order, seen := []string{}, map[string]bool{}
	for _, e := range t.Entries {
		if !seen[e.Scenario] {
			seen[e.Scenario] = true
			order = append(order, e.Scenario)
		}
	}
	sort.Strings(order)
	return order
}

// SparklineSVG renders one scenario's max-|error| time series as a
// small self-contained SVG — the artifact a nightly job uploads so a
// reviewer sees the accuracy trajectory without parsing the table.
// Returns "" when the store has no entries for the scenario.
func (t *Trend) SparklineSVG(scen string) string {
	var vals []float64
	var revs []string
	for _, e := range t.Entries {
		if e.Scenario == scen {
			vals = append(vals, e.MaxAbsErr)
			revs = append(revs, e.GitRev)
		}
	}
	if len(vals) == 0 {
		return ""
	}
	const w, h, pad = 480, 120, 12.0
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1e-9 // flat-zero series still renders a baseline
	}
	x := func(i int) float64 {
		if len(vals) == 1 {
			return w / 2
		}
		return pad + (w-2*pad)*float64(i)/float64(len(vals)-1)
	}
	y := func(v float64) float64 {
		return h - pad - (h-2*pad)*(v/max)
	}
	var pts strings.Builder
	for i, v := range vals {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x(i), y(v))
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	fmt.Fprintf(&b, `<title>%s max |prediction error| by revision</title>`, xmlEscape(scen))
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<polyline fill="none" stroke="#1f77b4" stroke-width="2" points="%s"/>`, pts.String())
	for i, v := range vals {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="#1f77b4"><title>%s: %.2f%%</title></circle>`,
			x(i), y(v), xmlEscape(revs[i]), v*100)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#555">%s — max |err| peak %.2f%%</text>`,
		pad, pad-2, xmlEscape(scen), max*100)
	b.WriteString(`</svg>`)
	return b.String()
}

func xmlEscape(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;").Replace(s)
}
