package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Trend is a persistent prediction-error history: one entry per
// (git revision, scenario), appended by each sweep run (cmd/sweep
// -trend). It turns the per-PR smoke sweep into a time series — did this
// change move the model's accuracy on any scenario? — without anyone
// diffing JSON artifacts by hand.
type Trend struct {
	Entries []TrendEntry `json:"entries"`
}

// TrendEntry is one (revision, scenario) accuracy measurement. Re-running
// the same revision overwrites its entry (the measurement is refreshed,
// not duplicated).
type TrendEntry struct {
	GitRev   string `json:"git_rev"`
	When     string `json:"when"` // RFC3339, recorded by the caller
	Scale    string `json:"scale"`
	Sweep    string `json:"sweep"`
	Scenario string `json:"scenario"`

	// MaxAbsErr/MeanAbsErr aggregate |prediction error| over the
	// scenario's validated app rows across every grid point that ran it.
	MaxAbsErr  float64 `json:"max_abs_error"`
	MeanAbsErr float64 `json:"mean_abs_error"`
	Points     int     `json:"points"`
	Failed     int     `json:"failed_points"`
}

// LoadTrend reads a trend store; a missing file is an empty store.
func LoadTrend(path string) (*Trend, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trend{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trend: %w", err)
	}
	var t Trend
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trend %s: %w", path, err)
	}
	return &t, nil
}

// Save writes the store back, stable-sorted so diffs stay readable:
// scenario first, then insertion order (the revision time series).
func (t *Trend) Save(path string) error {
	sort.SliceStable(t.Entries, func(i, j int) bool {
		return t.Entries[i].Scenario < t.Entries[j].Scenario
	})
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Append folds one sweep report into the store: per scenario, the
// max/mean |prediction error| over that scenario's validated app rows.
// An existing entry for the same (rev, scenario) is replaced.
func (t *Trend) Append(rep *Report, rev, when string) {
	type agg struct {
		max, sum float64
		n        int
		points   int
		failed   int
	}
	byScenario := map[string]*agg{}
	for _, p := range rep.Points {
		a := byScenario[p.Scenario]
		if a == nil {
			a = &agg{}
			byScenario[p.Scenario] = a
		}
		a.points++
		if p.Error != "" || !p.Pass {
			a.failed++
		}
		if p.Error != "" {
			continue // broken accounting must not shape the trend
		}
		for _, ar := range p.Apps {
			if !ar.Validated {
				continue
			}
			e := math.Abs(ar.PredErr)
			a.sum += e
			a.n++
			if e > a.max {
				a.max = e
			}
		}
	}
	names := make([]string, 0, len(byScenario))
	for s := range byScenario {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		a := byScenario[s]
		e := TrendEntry{
			GitRev: rev, When: when, Scale: rep.Scale, Sweep: rep.Name,
			Scenario: s, MaxAbsErr: a.max, Points: a.points, Failed: a.failed,
		}
		if a.n > 0 {
			e.MeanAbsErr = a.sum / float64(a.n)
		}
		t.upsert(e)
	}
}

// upsert replaces the entry matching (rev, scenario) or appends.
func (t *Trend) upsert(e TrendEntry) {
	for i, old := range t.Entries {
		if old.GitRev == e.GitRev && old.Scenario == e.Scenario {
			t.Entries[i] = e
			return
		}
	}
	t.Entries = append(t.Entries, e)
}

// Markdown renders the trend table, grouped by scenario with revisions
// in recorded order — the accuracy time series a reviewer reads to spot
// a regression the pass/fail gate's tolerance still admits.
func (t *Trend) Markdown() string {
	var b strings.Builder
	b.WriteString("# prediction-error trend\n\n")
	if len(t.Entries) == 0 {
		b.WriteString("no entries yet\n")
		return b.String()
	}
	b.WriteString("| scenario | rev | when | scale | max \\|err\\| | mean \\|err\\| | points | failed |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	order, seen := []string{}, map[string]bool{}
	for _, e := range t.Entries {
		if !seen[e.Scenario] {
			seen[e.Scenario] = true
			order = append(order, e.Scenario)
		}
	}
	sort.Strings(order)
	for _, s := range order {
		for _, e := range t.Entries {
			if e.Scenario != s {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.1f%% | %.1f%% | %d | %d |\n",
				mdCell(e.Scenario), mdCell(e.GitRev), mdCell(e.When), mdCell(e.Scale),
				e.MaxAbsErr*100, e.MeanAbsErr*100, e.Points, e.Failed)
		}
	}
	return b.String()
}
