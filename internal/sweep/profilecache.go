package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
	"pktpredict/internal/runtime"
)

// ProfileCache is a persistent store of offline profiling results, keyed
// by everything that determines a profile: the platform configuration,
// the workload parameters, the profiling windows and sweep grid, the flow
// type, and a caller-supplied salt (cmd/sweep uses the git revision, so a
// code change can never serve a stale curve). A full-scale sweep spends
// nearly all of its wall clock re-deriving profiles that have not
// changed; with a warm cache those grid points start in milliseconds.
//
// The cache is a single JSON file. Entries are per flow type, so two
// scenarios that share a platform and flow type share the work. Loads
// tolerate damage the way the trend store does: a file that no longer
// parses is moved aside to path+".corrupt" and profiling proceeds cold.
type ProfileCache struct {
	path string
	salt string

	mu      sync.Mutex
	entries map[string]runtime.FlowProfile
	hits    int
	misses  int
}

// profileCacheFile is the on-disk shape. Version guards the key scheme:
// bumping it orphans (and therefore ignores) every old entry.
type profileCacheFile struct {
	Version int                            `json:"version"`
	Entries map[string]runtime.FlowProfile `json:"entries"`
}

const profileCacheVersion = 1

// OpenProfileCache loads (or initialises) the cache at path. The salt
// becomes part of every key; pass the git revision so entries written by
// other code versions never match.
func OpenProfileCache(path, salt string) (*ProfileCache, error) {
	c := &ProfileCache{path: path, salt: salt, entries: map[string]runtime.FlowProfile{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("profile cache: %w", err)
	}
	var f profileCacheFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != profileCacheVersion {
		if mvErr := os.Rename(path, path+".corrupt"); mvErr != nil {
			return nil, fmt.Errorf("profile cache %s: unreadable (and could not move aside: %w)", path, mvErr)
		}
		return c, nil
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c, nil
}

// profileKey hashes every profiling input (plus the salt) into the cache
// key for one flow type. The JSON encoding of the inputs is the canonical
// form: any platform knob, workload parameter (including the modelled
// receive batch), window, or grid change produces a different key.
func (c *ProfileCache) profileKey(cfg hw.Config, params apps.Params, warmup, window float64, grid []int, t apps.FlowType) (string, error) {
	// Custom flow types contribute their graph text through the Custom
	// map; the map iterates nondeterministically but encoding/json sorts
	// object keys, so the encoding is stable.
	blob, err := json.Marshal(struct {
		Cfg    hw.Config
		Params apps.Params
		Warmup float64
		Window float64
		Grid   []int
		Type   apps.FlowType
		Salt   string
	}{cfg, params, warmup, window, grid, t, c.salt})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// get returns the cached profile for the key, counting the hit or miss.
func (c *ProfileCache) get(key string) (runtime.FlowProfile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

// put records freshly profiled entries under their keys (in memory;
// Save persists).
func (c *ProfileCache) put(fresh map[string]runtime.FlowProfile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, p := range fresh {
		c.entries[k] = p
	}
}

// Stats reports cache effectiveness for this process: lookups served
// from disk versus lookups that had to profile.
func (c *ProfileCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of stored entries.
func (c *ProfileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Save writes the cache through a same-directory temp file and
// os.Rename, like the trend store: a crash mid-write leaves the previous
// cache intact.
func (c *ProfileCache) Save() error {
	c.mu.Lock()
	f := profileCacheFile{Version: profileCacheVersion, Entries: c.entries}
	data, err := json.MarshalIndent(&f, "", " ")
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("profile cache: %w", err)
	}
	dir, base := filepath.Split(c.path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("profile cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("profile cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("profile cache: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("profile cache: %w", err)
	}
	return os.Rename(tmp.Name(), c.path)
}

// profiledFlows is ProfileFlows behind the cache: cached flow types are
// served from disk, the rest are profiled in one batch, stored, and the
// cache saved. A cache save failure does not fail the sweep — the
// profiles are correct either way — but it is reported on Progress.
func (r *Runner) profiledFlows(hwCfg hw.Config, cfg runtime.Config) (map[apps.FlowType]runtime.FlowProfile, error) {
	types := cfg.FlowTypes()
	c := r.ProfileCache
	if c == nil {
		return runtime.ProfileFlows(hwCfg, cfg.Params, r.Scale.Warmup, r.Scale.Window,
			r.Scale.SweepGrid, types)
	}
	out := make(map[apps.FlowType]runtime.FlowProfile, len(types))
	keys := make(map[apps.FlowType]string, len(types))
	var missing []apps.FlowType
	for _, t := range types {
		if _, done := out[t]; done {
			continue
		}
		key, err := c.profileKey(hwCfg, cfg.Params, r.Scale.Warmup, r.Scale.Window, r.Scale.SweepGrid, t)
		if err != nil {
			return nil, fmt.Errorf("profile cache key: %w", err)
		}
		keys[t] = key
		if p, ok := c.get(key); ok {
			out[t] = p
			continue
		}
		// Reserve the slot so a duplicate type in the list is not
		// profiled twice; the real profile overwrites it below.
		out[t] = runtime.FlowProfile{}
		missing = append(missing, t)
	}
	if len(missing) == 0 {
		return out, nil
	}
	profiled, err := runtime.ProfileFlows(hwCfg, cfg.Params, r.Scale.Warmup, r.Scale.Window,
		r.Scale.SweepGrid, missing)
	if err != nil {
		return nil, err
	}
	fresh := make(map[string]runtime.FlowProfile, len(profiled))
	for t, p := range profiled {
		out[t] = p
		fresh[keys[t]] = p
	}
	c.put(fresh)
	if err := c.Save(); err != nil && r.Progress != nil {
		fmt.Fprintf(r.Progress, "sweep: warning: %v\n", err)
	}
	return out, nil
}
