package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pktpredict/internal/click"
	"pktpredict/internal/scenario"
)

// PlatformVariant is one point on the sweep's platform axis: a named
// override set applied to the base (-scale) platform. A nil Platform —
// declared `base :: Platform();` — runs the base platform unchanged.
type PlatformVariant struct {
	Name     string
	Platform *scenario.Platform
}

// RunSpec is one point on the sweep's scenario axis: a scenario file and
// its prediction-error tolerance (0 means the sweep default applies).
// The tolerances shipped in examples/sweeps mirror the per-mix bounds
// internal/runtime/validate_test.go enforces in CI.
type RunSpec struct {
	Name      string
	File      string
	Tolerance float64
}

// Config is a parsed .sweep file: the declarative grid
// platforms × loads × scenarios plus the execution knobs shared by
// every point.
type Config struct {
	Name string

	// Duration/Warmup are virtual seconds measured/discarded per point;
	// Quantum and ControlEvery mirror the runtime knobs of the same name.
	Duration     float64
	Warmup       float64
	Quantum      uint64
	ControlEvery int

	// Parallel caps how many grid points execute concurrently
	// (goroutine-isolated runs); 0 lets the runner pick.
	Parallel int

	// Tolerance is the default |observed − expected| drop bound a point's
	// validated apps must meet; RunSpec.Tolerance overrides it per
	// scenario.
	Tolerance float64

	// Loads are offered-load multipliers applied to every flow of every
	// scenario (1 = the rates as written; saturating flows are paced to
	// the given fraction of their solo rate when the multiplier is < 1).
	Loads []float64

	Platforms []PlatformVariant
	Runs      []RunSpec
}

// Points returns the grid size.
func (c *Config) Points() int {
	return len(c.Platforms) * len(c.Loads) * len(c.Runs)
}

// LoadConfig reads and parses a sweep file; scenario FILE paths are
// resolved relative to the sweep file's directory. A missing NAME
// defaults to the file's base name without extension.
func LoadConfig(path string) (*Config, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	c, err := ParseConfig(string(text))
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	if c.Name == "" {
		c.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	dir := filepath.Dir(path)
	for i := range c.Runs {
		if !filepath.IsAbs(c.Runs[i].File) {
			c.Runs[i].File = filepath.Join(dir, c.Runs[i].File)
		}
	}
	return c, nil
}

// ParseConfig parses sweep text. The grammar reuses the scenario files'
// lexical conventions (Click comments, `name :: Class(ARGS);`
// declarations) with three declaration classes:
//
//	sweep :: Sweep(NAME paper_mixes, DURATION 0.006, WARMUP 0.0003,
//	               QUANTUM 100000, CONTROL_EVERY 4, PARALLEL 4,
//	               TOLERANCE 0.15, LOADS 0.6 0.85 1.0);
//
//	base     :: Platform();
//	small_l3 :: Platform(L3_BYTES 524288);
//
//	mixed  :: Run(FILE ../scenarios/mixed.click);
//	thrash :: Run(FILE ../scenarios/thrash.click, TOLERANCE 0.20);
func ParseConfig(text string) (*Config, error) {
	stripped, err := click.StripComments(text)
	if err != nil {
		return nil, err
	}
	c := &Config{
		Duration:     0.006,
		Warmup:       0.0003,
		Quantum:      100_000,
		ControlEvery: 4,
		Tolerance:    0.15,
	}
	seenSweep := false
	names := map[string]bool{}
	for _, stmt := range click.Statements(stripped) {
		st := stmt.Text
		at := fmt.Sprintf("statement %d (line %d)", stmt.No, stmt.Line)
		name, classRef, ok := click.CutTopLevel(st, "::")
		if !ok {
			return nil, fmt.Errorf("%s: cannot parse %q (want name :: Sweep(...), name :: Platform(...) or name :: Run(...))", at, st)
		}
		name = strings.TrimSpace(name)
		class, args, err := click.ParseClassRef(strings.TrimSpace(classRef))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", at, err)
		}
		if names[name] {
			return nil, fmt.Errorf("%s: name %q declared twice", at, name)
		}
		names[name] = true
		switch class {
		case "Sweep":
			if seenSweep {
				return nil, fmt.Errorf("%s: second Sweep declaration", at)
			}
			seenSweep = true
			if err := c.applySweepArgs(args); err != nil {
				return nil, fmt.Errorf("%s: %w", at, err)
			}
		case "Platform":
			p, err := scenario.ParsePlatformArgs(args)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", at, err)
			}
			c.Platforms = append(c.Platforms, PlatformVariant{Name: name, Platform: p})
		case "Run":
			r := RunSpec{Name: name, File: args.String("FILE", "")}
			if r.File == "" {
				return nil, fmt.Errorf("%s: run %q needs FILE", at, name)
			}
			if r.Tolerance, err = args.Float64("TOLERANCE", 0); err != nil {
				return nil, fmt.Errorf("%s: %w", at, err)
			}
			if r.Tolerance < 0 || r.Tolerance >= 1 {
				return nil, fmt.Errorf("%s: run %q: TOLERANCE %v outside [0,1)", at, name, r.Tolerance)
			}
			c.Runs = append(c.Runs, r)
		default:
			return nil, fmt.Errorf("%s: unknown declaration class %q (want Sweep, Platform or Run)", at, class)
		}
	}
	if !seenSweep {
		return nil, fmt.Errorf("missing sweep :: Sweep(...) declaration")
	}
	if len(c.Runs) == 0 {
		return nil, fmt.Errorf("sweep declares no runs")
	}
	if len(c.Platforms) == 0 {
		c.Platforms = []PlatformVariant{{Name: "base"}}
	}
	if len(c.Loads) == 0 {
		c.Loads = []float64{1}
	}
	return c, nil
}

func (c *Config) applySweepArgs(args click.Args) error {
	var err error
	c.Name = args.String("NAME", c.Name)
	if c.Duration, err = args.Float64("DURATION", c.Duration); err != nil {
		return err
	}
	if c.Warmup, err = args.Float64("WARMUP", c.Warmup); err != nil {
		return err
	}
	if c.Quantum, err = args.Uint64("QUANTUM", c.Quantum); err != nil {
		return err
	}
	if c.ControlEvery, err = args.Int("CONTROL_EVERY", c.ControlEvery); err != nil {
		return err
	}
	if c.Parallel, err = args.Int("PARALLEL", 0); err != nil {
		return err
	}
	if c.Tolerance, err = args.Float64("TOLERANCE", c.Tolerance); err != nil {
		return err
	}
	// Duration is measured virtual time; warmup is excluded on top of it.
	if c.Duration <= 0 || c.Warmup < 0 {
		return fmt.Errorf("sweep: DURATION %v must be positive and WARMUP %v non-negative", c.Duration, c.Warmup)
	}
	if c.Tolerance <= 0 || c.Tolerance >= 1 {
		return fmt.Errorf("sweep: TOLERANCE %v outside (0,1)", c.Tolerance)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("sweep: PARALLEL %d negative", c.Parallel)
	}
	if c.Quantum < 1000 {
		return fmt.Errorf("sweep: QUANTUM %d cycles too small (want ≥1000)", c.Quantum)
	}
	if c.ControlEvery < 1 {
		return fmt.Errorf("sweep: CONTROL_EVERY %d (want ≥1)", c.ControlEvery)
	}
	for _, tok := range strings.Fields(args.String("LOADS", "")) {
		f, perr := strconv.ParseFloat(tok, 64)
		if perr != nil || f <= 0 || f > 4 {
			return fmt.Errorf("sweep: LOADS point %q (want a multiplier in (0,4])", tok)
		}
		c.Loads = append(c.Loads, f)
	}
	return nil
}
