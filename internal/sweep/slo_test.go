package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pktpredict/internal/exp"
)

// TestPointSLOGate checks the gate arithmetic alone: a declared SLO
// that did not pass fails the point even when the app's prediction
// error validated, and even for rows that are not validated at all
// (synthetic flows still owe their latency objective).
func TestPointSLOGate(t *testing.T) {
	p := PointResult{Apps: []AppResult{
		{App: "good", Validated: true, Pass: true, SLOP99US: 100, SLOPass: true},
		{App: "slow", Validated: true, Pass: true, SLOP99US: 10, SLOPass: false},
	}}
	p.finish()
	if p.Pass {
		t.Fatal("point passed despite a breached SLO on a validated app")
	}

	p = PointResult{Apps: []AppResult{
		{App: "syn", Validated: false, SLOP99US: 10, SLOPass: false},
	}}
	p.finish()
	if p.Pass {
		t.Fatal("point passed despite a breached SLO on an unvalidated app")
	}

	p = PointResult{Apps: []AppResult{
		{App: "free", Validated: true, Pass: true}, // no SLO declared
		{App: "good", Validated: true, Pass: true, SLOP99US: 100, SLOPass: true},
	}}
	p.finish()
	if !p.Pass {
		t.Fatal("point failed with every declared SLO met")
	}
}

// TestSweepSLOBreachFailsRun drives the full pipeline over a scenario
// whose flow declares an unachievable p99 objective: the sweep must
// carry the measured percentiles into the report, mark the breach in
// the markdown, and exit its gate red — while the same scenario with a
// generous objective stays green.
func TestSweepSLOBreachFailsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep execution test skipped in -short mode (runs in the CI sweep step)")
	}
	run := func(sloUS string) *Report {
		t.Helper()
		dir := t.TempDir()
		scen := filepath.Join(dir, "slo.click")
		if err := os.WriteFile(scen, []byte(`
scenario :: Scenario(NAME slo, MIN_CORES_PER_SOCKET 2, FIT 6);
ipfwd :: Flow(TYPE IP, WORKERS 1, SLO_P99_US `+sloUS+`);
`), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg, err := ParseConfig(`
sweep :: Sweep(NAME slo, DURATION 0.004, WARMUP 0.0003, QUANTUM 100000,
               CONTROL_EVERY 4, TOLERANCE 0.2, LOADS 1.0);
slo :: Run(FILE ` + scen + `);
`)
		if err != nil {
			t.Fatal(err)
		}
		var progress bytes.Buffer
		r := &Runner{Config: cfg, Scale: exp.Quick(), Progress: &progress}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Points) != 1 {
			t.Fatalf("%d points, want 1", len(rep.Points))
		}
		if e := rep.Points[0].Error; e != "" {
			t.Fatalf("point errored: %s", e)
		}
		return rep
	}

	breach := run("0.001") // 1 ns: no packet finishes that fast
	var row *AppResult
	for i := range breach.Points[0].Apps {
		if breach.Points[0].Apps[i].App == "ipfwd" {
			row = &breach.Points[0].Apps[i]
		}
	}
	if row == nil {
		t.Fatal("report lost the ipfwd row")
	}
	if row.LatCount == 0 || row.LatP99US <= 0 || row.LatP50US > row.LatP99US {
		t.Fatalf("latency percentiles missing from the row: %+v", row)
	}
	if row.SLOP99US != 0.001 || row.SLOPass {
		t.Fatalf("unachievable SLO did not register as breached: %+v", row)
	}
	if breach.Pass {
		t.Fatal("sweep gate stayed green through an SLO breach")
	}
	if md := breach.Markdown(); !strings.Contains(md, "BREACH") {
		t.Fatalf("markdown does not flag the breach:\n%s", md)
	}

	ok := run("1e9") // a whole virtual second of budget
	if !ok.Pass {
		t.Fatalf("generous SLO failed the sweep:\n%s", ok.Markdown())
	}
	if md := ok.Markdown(); !strings.Contains(md, "ok") {
		t.Fatalf("markdown does not show the met objective:\n%s", md)
	}
}
