package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// AppResult is one app's row at one grid point.
type AppResult struct {
	App      string `json:"app"`
	Type     string `json:"type"`
	Replicas int    `json:"replicas"`
	Stages   int    `json:"stages"`

	// OfferedFraction is the offered load as a fraction of the app's solo
	// rate at this point (0 = saturating).
	OfferedFraction float64 `json:"offered_fraction"`

	Offered   uint64 `json:"offered"`
	Processed uint64 `json:"processed"`
	Finished  uint64 `json:"finished"`
	NICDrops  uint64 `json:"nic_drops"`

	ObservedPPS     float64 `json:"observed_pps"`
	GoodputPPS      float64 `json:"goodput_pps"`
	SoloPPS         float64 `json:"solo_pps"`
	RemotePerPacket float64 `json:"remote_per_packet"`

	// End-to-end virtual-time latency over the measurement window, in
	// virtual microseconds; LatCount == 0 means no latencies recorded.
	LatCount  uint64  `json:"lat_count,omitempty"`
	LatP50US  float64 `json:"lat_p50_us,omitempty"`
	LatP99US  float64 `json:"lat_p99_us,omitempty"`
	LatP999US float64 `json:"lat_p999_us,omitempty"`

	// SLO evaluation: SLOP99US is the declared p99 objective (0 = none),
	// SLOBreaches counts control windows whose window p99 exceeded it,
	// SLOBurnRate is the last window's error-budget burn, and SLOPass
	// reports whether the whole-run p99 met the objective. An app with a
	// declared SLO fails its point on breach even when drop validation
	// skips it.
	SLOP99US    float64 `json:"slo_p99_us,omitempty"`
	SLOBreaches int     `json:"slo_breaches,omitempty"`
	SLOBurnRate float64 `json:"slo_burn_rate,omitempty"`
	SLOPass     bool    `json:"slo_pass"`

	ObservedDrop  float64 `json:"observed_drop"`
	PredictedDrop float64 `json:"predicted_drop"`
	// ExpectedDrop is the drop the model expects at this operating point
	// (the curve prediction for saturating flows, the headroom-derived
	// figure for paced ones); PredErr = ObservedDrop − ExpectedDrop.
	ExpectedDrop float64 `json:"expected_drop"`
	PredErr      float64 `json:"prediction_error"`

	// Validated marks apps whose error counts toward the gate; synthetic
	// probes and hidden aggressors are reported but never validated.
	Validated bool `json:"validated"`
	Pass      bool `json:"pass"`
}

// PointResult is one grid point's outcome.
type PointResult struct {
	Platform string  `json:"platform"`
	Load     float64 `json:"load"`
	Scenario string  `json:"scenario"`

	// Effective platform summary, for report readers.
	Sockets        int `json:"sockets"`
	CoresPerSocket int `json:"cores_per_socket"`
	L3Bytes        int `json:"l3_bytes"`

	Tolerance float64 `json:"tolerance"`

	Migrations     int `json:"migrations"`
	ThrottleEvents int `json:"throttle_events"`

	Apps []AppResult `json:"apps"`

	// MaxAbsErr/MeanAbsErr aggregate |prediction error| over the point's
	// validated apps; WorstApp names the max.
	MaxAbsErr  float64 `json:"max_abs_error"`
	MeanAbsErr float64 `json:"mean_abs_error"`
	WorstApp   string  `json:"worst_app"`

	Pass bool `json:"pass"`
	// Error is set when the point failed to execute at all (load error,
	// platform invalid on this scenario, broken conservation, ...); such
	// a point never passes.
	Error string `json:"error,omitempty"`

	HostSeconds float64 `json:"host_seconds"`
}

// Report is a whole sweep's outcome: the grid's axes, every point, and
// the headline prediction-error aggregates.
type Report struct {
	Name      string    `json:"name"`
	Scale     string    `json:"scale"`
	Duration  float64   `json:"duration"`
	Tolerance float64   `json:"tolerance"`
	Platforms []string  `json:"platforms"`
	Loads     []float64 `json:"loads"`
	Scenarios []string  `json:"scenarios"`

	Points []PointResult `json:"points"`

	// MaxAbsErr/MeanAbsErr aggregate over every validated app row of
	// every executed point — the sweep's reproduction of the paper's
	// "prediction within a few percent" table bottom line.
	MaxAbsErr  float64 `json:"max_abs_error"`
	MeanAbsErr float64 `json:"mean_abs_error"`
	Failed     int     `json:"failed_points"`
	Pass       bool    `json:"pass"`
}

// finish computes a point's aggregates from its app rows.
func (p *PointResult) finish() {
	p.Pass = p.Error == ""
	n := 0
	for _, a := range p.Apps {
		// A declared latency SLO gates the point independently of drop
		// validation — even synthetic or hidden flows can carry one.
		if a.SLOP99US > 0 && !a.SLOPass {
			p.Pass = false
		}
		if !a.Validated {
			continue
		}
		n++
		e := math.Abs(a.PredErr)
		p.MeanAbsErr += e
		if e >= p.MaxAbsErr {
			p.MaxAbsErr = e
			p.WorstApp = a.App
		}
		if !a.Pass {
			p.Pass = false
		}
	}
	if n > 0 {
		p.MeanAbsErr /= float64(n)
	}
}

// aggregate computes the report's totals from its points. A point that
// errored out contributes only its failure: any app rows it collected
// before the error come from a run with known-broken accounting and
// must not shape the headline error figures.
func (r *Report) aggregate() {
	r.Pass = true
	n := 0
	for _, p := range r.Points {
		if p.Error != "" || !p.Pass {
			r.Failed++
			r.Pass = false
		}
		if p.Error != "" {
			continue
		}
		for _, a := range p.Apps {
			if !a.Validated {
				continue
			}
			n++
			e := math.Abs(a.PredErr)
			r.MeanAbsErr += e
			if e > r.MaxAbsErr {
				r.MaxAbsErr = e
			}
		}
	}
	if n > 0 {
		r.MeanAbsErr /= float64(n)
	}
}

// JSON renders the machine-readable report (the CI artifact).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Markdown renders the human-readable report: a summary line, the
// per-point table, and a per-app detail table.
func (r *Report) Markdown() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "# sweep %s — %s\n\n", r.Name, verdict)
	fmt.Fprintf(&b, "%d platforms × %d loads × %d scenarios = %d points (%s scale, %.1f ms virtual per point)\n\n",
		len(r.Platforms), len(r.Loads), len(r.Scenarios), len(r.Points), r.Scale, r.Duration*1e3)
	fmt.Fprintf(&b, "Prediction error over all validated apps: max %.1f%%, mean %.1f%%; %d/%d points failed.\n\n",
		r.MaxAbsErr*100, r.MeanAbsErr*100, r.Failed, len(r.Points))

	b.WriteString("| platform | load | scenario | topology | apps | max \\|err\\| | mean \\|err\\| | worst app | tol | migr | thr | result |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, p := range r.Points {
		result := "pass"
		switch {
		case p.Error != "":
			result = "error: " + mdCell(p.Error)
		case !p.Pass:
			result = "**FAIL**"
		}
		nv := 0
		for _, a := range p.Apps {
			if a.Validated {
				nv++
			}
		}
		fmt.Fprintf(&b, "| %s | %.2f | %s | %d×%d, L3 %s | %d | %.1f%% | %.1f%% | %s | %.0f%% | %d | %d | %s |\n",
			p.Platform, p.Load, p.Scenario, p.Sockets, p.CoresPerSocket, fmtBytes(p.L3Bytes),
			nv, p.MaxAbsErr*100, p.MeanAbsErr*100, dash(p.WorstApp), p.Tolerance*100,
			p.Migrations, p.ThrottleEvents, result)
	}

	b.WriteString("\n## Per-app detail\n\n")
	b.WriteString("| platform | load | scenario | app | type | offered | obs drop | pred drop | expected | err | goodput pps | rem/pkt | p50 µs | p99 µs | slo | validated |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, p := range r.Points {
		for _, a := range p.Apps {
			off := "sat"
			if a.OfferedFraction > 0 {
				off = fmt.Sprintf("%.2f×solo", a.OfferedFraction)
			}
			val := "–"
			if a.Validated {
				val = "pass"
				if !a.Pass {
					val = "**FAIL**"
				}
			}
			p50, p99 := "–", "–"
			if a.LatCount > 0 {
				p50 = fmt.Sprintf("%.1f", a.LatP50US)
				p99 = fmt.Sprintf("%.1f", a.LatP99US)
			}
			slo := "–"
			if a.SLOP99US > 0 {
				slo = fmt.Sprintf("≤%.0f ok", a.SLOP99US)
				if !a.SLOPass {
					slo = fmt.Sprintf("≤%.0f **BREACH** (%d win)", a.SLOP99US, a.SLOBreaches)
				}
			}
			fmt.Fprintf(&b, "| %s | %.2f | %s | %s | %s | %s | %.1f%% | %.1f%% | %.1f%% | %+.1f%% | %.2fM | %.2f | %s | %s | %s | %s |\n",
				p.Platform, p.Load, p.Scenario, a.App, a.Type, off,
				a.ObservedDrop*100, a.PredictedDrop*100, a.ExpectedDrop*100, a.PredErr*100,
				a.GoodputPPS/1e6, a.RemotePerPacket, p50, p99, slo, val)
		}
	}
	return b.String()
}

func dash(s string) string {
	if s == "" {
		return "–"
	}
	return s
}

// mdCell makes arbitrary text (error strings quoting user input) safe
// inside a markdown table cell.
func mdCell(s string) string {
	s = strings.NewReplacer("|", "\\|", "\n", " ", "\r", " ").Replace(s)
	return s
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
