package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pktpredict/internal/exp"
	"pktpredict/internal/runtime"
)

func TestScaleLoad(t *testing.T) {
	mk := func() runtime.Config {
		return runtime.Config{Apps: []runtime.AppSpec{
			{Name: "sat"},
			{Name: "frac", RateFraction: 0.8},
			{Name: "rate", Rate: 1e6},
		}}
	}
	cfg := mk()
	scaleLoad(&cfg, 0.5)
	if cfg.Apps[0].RateFraction != 0.5 {
		t.Errorf("saturating flow not paced down: %+v", cfg.Apps[0])
	}
	if cfg.Apps[1].RateFraction != 0.4 {
		t.Errorf("fraction flow not scaled: %+v", cfg.Apps[1])
	}
	if cfg.Apps[2].Rate != 0.5e6 {
		t.Errorf("rate flow not scaled: %+v", cfg.Apps[2])
	}

	cfg = mk()
	scaleLoad(&cfg, 1.5)
	if cfg.Apps[0].RateFraction != 0 || cfg.Apps[0].Rate != 0 {
		t.Errorf("saturating flow must stay saturating at load ≥ 1: %+v", cfg.Apps[0])
	}
	if cfg.Apps[1].RateFraction != 1.2000000000000002 && cfg.Apps[1].RateFraction != 1.2 {
		t.Errorf("fraction flow not scaled up: %+v", cfg.Apps[1])
	}

	cfg = mk()
	scaleLoad(&cfg, 1)
	if cfg.Apps[0] != mk().Apps[0] || cfg.Apps[1] != mk().Apps[1] || cfg.Apps[2] != mk().Apps[2] {
		t.Errorf("load 1 must leave rates as written: %+v", cfg.Apps)
	}
}

// TestSweepSmokeGrid executes a real 1-platform × 2-load grid over the
// shipped mixed scenario through the full pipeline — load, platform
// resolution, memoised profiling, concurrent runs, evaluation — and
// checks the report's shape and gate. Skipped under -short like the
// other profiling-backed suites (CI's dedicated sweep step covers it).
func TestSweepSmokeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep execution test skipped in -short mode (runs in the CI sweep step)")
	}
	cfg, err := ParseConfig(`
sweep :: Sweep(NAME t, DURATION 0.004, WARMUP 0.0003, QUANTUM 100000,
               CONTROL_EVERY 4, TOLERANCE 0.18, LOADS 0.7 1.0, PARALLEL 2);
mixed :: Run(FILE ../../examples/scenarios/mixed.click);
`)
	if err != nil {
		t.Fatal(err)
	}
	var progress bytes.Buffer
	r := &Runner{Config: cfg, Scale: exp.Quick(), Progress: &progress}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("%d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Error != "" {
			t.Fatalf("point %s/%.2f/%s failed: %s", p.Platform, p.Load, p.Scenario, p.Error)
		}
		validated := 0
		for _, a := range p.Apps {
			if a.Validated {
				validated++
			}
			if a.SoloPPS <= 0 {
				t.Errorf("point %v app %s has no solo baseline", p.Load, a.App)
			}
		}
		if validated == 0 {
			t.Fatalf("point %v validated no apps", p.Load)
		}
	}
	if !rep.Pass {
		t.Fatalf("smoke grid failed its own gate: max |err| %.1f%%\n%s", rep.MaxAbsErr*100, rep.Markdown())
	}
	if rep.Points[0].Load != 0.7 || rep.Points[1].Load != 1.0 {
		t.Fatalf("points out of declared order: %v, %v", rep.Points[0].Load, rep.Points[1].Load)
	}

	// The paced point's apps must be evaluated as paced (offered < solo),
	// the saturating point's as saturating.
	if a := rep.Points[0].Apps[0]; a.OfferedFraction != 0.7 {
		t.Errorf("load 0.7 app evaluated with fraction %v", a.OfferedFraction)
	}
	if a := rep.Points[1].Apps[0]; a.OfferedFraction != 0 {
		t.Errorf("load 1.0 app evaluated with fraction %v, want saturating", a.OfferedFraction)
	}

	// Renders: JSON must round-trip, markdown must carry the tables.
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) || back.MaxAbsErr != rep.MaxAbsErr {
		t.Fatalf("JSON report lost data: %+v", back)
	}
	md := rep.Markdown()
	for _, want := range []string{"# sweep t — PASS", "| platform | load | scenario |", "Per-app detail", "mixed"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report missing %q:\n%s", want, md)
		}
	}
	if !strings.Contains(progress.String(), "[2/2]") {
		t.Errorf("progress lines missing: %q", progress.String())
	}
}

// TestReportAggregation checks the gate arithmetic on a hand-built
// report: non-validated rows never count, a failing app fails its point
// and the sweep, an errored point fails the sweep.
func TestReportAggregation(t *testing.T) {
	rep := &Report{
		Name: "agg",
		Points: []PointResult{
			{Apps: []AppResult{
				{App: "a", Validated: true, Pass: true, PredErr: 0.02},
				{App: "syn", Validated: false, PredErr: 0.9},
			}},
			{Apps: []AppResult{
				{App: "b", Validated: true, Pass: false, PredErr: -0.3},
			}},
			// An errored point's partial rows (collected before the error)
			// must not shape the headline figures.
			{Error: "boom", Apps: []AppResult{
				{App: "c", Validated: true, Pass: true, PredErr: 0.99},
			}},
		},
	}
	for i := range rep.Points {
		rep.Points[i].finish()
	}
	rep.aggregate()
	if rep.Points[0].Pass != true || rep.Points[0].MaxAbsErr != 0.02 || rep.Points[0].WorstApp != "a" {
		t.Fatalf("point 0 aggregation wrong: %+v", rep.Points[0])
	}
	if rep.Points[1].Pass {
		t.Fatal("failing app did not fail its point")
	}
	if rep.Points[2].Pass {
		t.Fatal("errored point passed")
	}
	if rep.Pass || rep.Failed != 2 {
		t.Fatalf("sweep gate wrong: pass=%v failed=%d", rep.Pass, rep.Failed)
	}
	if rep.MaxAbsErr != 0.3 {
		t.Fatalf("max |err| %v, want 0.3 (the failing app's, never the errored point's)", rep.MaxAbsErr)
	}
	if got := (0.02 + 0.3) / 2; rep.MeanAbsErr != got {
		t.Fatalf("mean |err| %v, want %v", rep.MeanAbsErr, got)
	}
	if !strings.Contains(rep.Markdown(), "error: boom") {
		t.Fatal("markdown omits the errored point")
	}
}
