// Package sweep executes evaluation grids over the dataplane: platform
// variants × offered-load multipliers × scenario files, each point run
// in its own goroutine-isolated runtime with its flow types profiled
// offline on that point's platform. It reproduces the shape of the
// paper's evaluation (Section 5, Figures 8–9): a table of
// predicted-versus-measured per-app drops across operating points, with
// max/mean prediction error — the "prediction within a few percent"
// claim as a machine-checkable report instead of a single run.
//
// A sweep is declared in a .sweep file (see ParseConfig for the
// grammar and examples/sweeps/ for shipped grids) and produces a Report
// that renders to JSON for machines and markdown for humans. Each
// point's validated apps must keep |observed − expected| drop within the
// scenario's tolerance — the same bounds
// internal/runtime/validate_test.go enforces — so a sweep doubles as a
// one-command regression gate for performance work (CI runs the smoke
// grid and fails on any tolerance breach).
package sweep

import (
	"fmt"
	"io"
	"math"
	gort "runtime"
	"sync"
	"time"

	"pktpredict/internal/apps"
	"pktpredict/internal/exp"
	"pktpredict/internal/hw"
	"pktpredict/internal/runtime"
	"pktpredict/internal/scenario"
)

// Runner executes one sweep configuration.
type Runner struct {
	Config *Config
	// Scale supplies the base platform, workload parameters, and
	// profiling windows (exp.Quick or exp.Full).
	Scale exp.Scale
	// Overrides, when non-nil, is applied on top of every platform
	// variant (the CLI -platform flag; highest precedence).
	Overrides *scenario.Platform
	// ProfileCache, when non-nil, serves offline profiles from a
	// persistent store keyed by their full inputs (cmd/sweep
	// -profile-cache); grid points whose profiles are cached skip
	// re-profiling entirely.
	ProfileCache *ProfileCache
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer

	mu       sync.Mutex
	profiles map[string]*profileEntry
	done     int
}

// profileEntry memoises one (platform variant, scenario) pair's offline
// profiling; load points share it, and the sync.Once serialises
// concurrent grid points onto a single profiling run.
type profileEntry struct {
	once sync.Once
	p    map[apps.FlowType]runtime.FlowProfile
	err  error
}

// Run executes the whole grid and returns the aggregated report. Grid
// points run concurrently (Config.Parallel at a time); an individual
// point's failure is recorded in its PointResult rather than aborting
// the sweep.
func (r *Runner) Run() (*Report, error) {
	c := r.Config
	if c == nil || c.Points() == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	r.profiles = make(map[string]*profileEntry)
	r.done = 0

	parallel := c.Parallel
	if parallel == 0 {
		parallel = gort.GOMAXPROCS(0)
	}
	if parallel > c.Points() {
		parallel = c.Points()
	}

	rep := &Report{
		Name:      c.Name,
		Scale:     r.Scale.Name,
		Duration:  c.Duration,
		Loads:     c.Loads,
		Tolerance: c.Tolerance,
		Points:    make([]PointResult, 0, c.Points()),
	}
	for _, v := range c.Platforms {
		rep.Platforms = append(rep.Platforms, v.Name)
	}
	for _, run := range c.Runs {
		rep.Scenarios = append(rep.Scenarios, run.Name)
	}

	type job struct {
		idx  int
		v    PlatformVariant
		load float64
		run  RunSpec
	}
	var jobs []job
	for _, v := range c.Platforms {
		for _, load := range c.Loads {
			for _, run := range c.Runs {
				jobs = append(jobs, job{idx: len(jobs), v: v, load: load, run: run})
			}
		}
	}
	results := make([]PointResult, len(jobs))

	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[j.idx] = r.runPoint(j.v, j.load, j.run)
			if r.Progress != nil {
				r.mu.Lock()
				r.done++
				pr := &results[j.idx]
				status := "ok"
				switch {
				case pr.Error != "":
					status = "ERROR " + pr.Error
				case !pr.Pass:
					status = fmt.Sprintf("FAIL max|err| %.1f%% > tol %.1f%%", pr.MaxAbsErr*100, pr.Tolerance*100)
					// An SLO miss fails the point on its own; say so rather
					// than blaming a prediction error that may be in band.
					for _, a := range pr.Apps {
						if a.SLOP99US > 0 && !a.SLOPass {
							status = fmt.Sprintf("FAIL %s p99 %.1fµs > SLO %.1fµs", a.App, a.LatP99US, a.SLOP99US)
							break
						}
					}
				default:
					status = fmt.Sprintf("ok   max|err| %.1f%%", pr.MaxAbsErr*100)
				}
				fmt.Fprintf(r.Progress, "sweep: [%d/%d] %-10s load %.2f %-12s %s (%.1fs host)\n",
					r.done, len(jobs), j.v.Name, j.load, j.run.Name, status, pr.HostSeconds)
				r.mu.Unlock()
			}
		}(j)
	}
	wg.Wait()

	rep.Points = results
	rep.aggregate()
	return rep, nil
}

// runPoint executes one grid point: resolve the platform, assemble the
// scenario on it, profile (memoised), scale the offered load, run the
// concurrent runtime, and evaluate prediction error per app.
func (r *Runner) runPoint(v PlatformVariant, load float64, run RunSpec) PointResult {
	start := time.Now()
	tol := run.Tolerance
	if tol == 0 {
		tol = r.Config.Tolerance
	}
	pr := PointResult{
		Platform:  v.Name,
		Load:      load,
		Scenario:  run.Name,
		Tolerance: tol,
	}
	fail := func(err error) PointResult {
		pr.Error = err.Error()
		pr.HostSeconds = time.Since(start).Seconds()
		return pr
	}

	sc, err := scenario.Load(run.File)
	if err != nil {
		return fail(err)
	}
	// Platform precedence: -scale base < scenario Platform block < sweep
	// variant < CLI overrides.
	hwCfg, err := sc.PlatformConfig(r.Scale.Cfg)
	if err != nil {
		return fail(err)
	}
	if hwCfg, err = v.Platform.Apply(hwCfg); err != nil {
		return fail(fmt.Errorf("platform %s: %w", v.Name, err))
	}
	if hwCfg, err = r.Overrides.Apply(hwCfg); err != nil {
		return fail(fmt.Errorf("overrides: %w", err))
	}
	pr.Sockets = hwCfg.Sockets
	pr.CoresPerSocket = hwCfg.CoresPerSocket
	pr.L3Bytes = hwCfg.L3.SizeBytes

	cfg, err := sc.ConfigOn(hwCfg, r.Scale.Params)
	if err != nil {
		return fail(err)
	}

	profiles, err := r.profileFor(v.Name, run.Name, hwCfg, cfg)
	if err != nil {
		return fail(fmt.Errorf("profiling: %w", err))
	}
	cfg.Profiles = profiles
	cfg.QuantumCycles = r.Config.Quantum
	cfg.ControlEvery = r.Config.ControlEvery
	cfg.Warmup = r.Config.Warmup
	scaleLoad(&cfg, load)

	rt, err := runtime.NewRuntime(cfg)
	if err != nil {
		return fail(err)
	}
	runRep, err := rt.Run(r.Config.Duration)
	if err != nil {
		return fail(err)
	}
	pr.Migrations = len(runRep.Migrations)
	pr.ThrottleEvents = runRep.ThrottleEvents

	specs := map[string]runtime.AppSpec{}
	for _, a := range cfg.Apps {
		specs[a.Name] = a
	}
	validated := 0
	for _, a := range runRep.Apps {
		if err := a.CheckConservation(); err != nil {
			return fail(err)
		}
		row, skip := evalApp(specs[a.Name], a, runRep, runRep.Duration, tol)
		pr.Apps = append(pr.Apps, row)
		if skip {
			continue
		}
		if a.SoloPPS == 0 {
			return fail(fmt.Errorf("app %s ran without a solo profile", a.Name))
		}
		validated++
	}
	if validated == 0 {
		return fail(fmt.Errorf("point validated no apps (all synthetic or hidden)"))
	}
	pr.finish()
	pr.HostSeconds = time.Since(start).Seconds()
	return pr
}

// profileFor memoises offline profiling per (platform variant, scenario)
// pair; every load point of the pair reuses the same curves, exactly as
// an operator reuses offline profiles across operating points. With a
// ProfileCache attached, the profiling inside the once is itself served
// from the persistent store when the inputs match.
func (r *Runner) profileFor(variant, run string, hwCfg hw.Config, cfg runtime.Config) (map[apps.FlowType]runtime.FlowProfile, error) {
	key := variant + "\x00" + run
	r.mu.Lock()
	e, ok := r.profiles[key]
	if !ok {
		e = &profileEntry{}
		r.profiles[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		e.p, e.err = r.profiledFlows(hwCfg, cfg)
	})
	return e.p, e.err
}

// scaleLoad applies an offered-load multiplier to every flow group:
// paced flows scale their rate, and saturating flows are paced down to
// the given fraction of their solo rate when the multiplier is below 1
// (at or above 1 a saturating source already offers everything the ring
// accepts, so it stays saturating).
func scaleLoad(cfg *runtime.Config, f float64) {
	if f == 1 {
		return
	}
	for i := range cfg.Apps {
		a := &cfg.Apps[i]
		switch {
		case a.RateFraction > 0:
			a.RateFraction *= f
		case a.Rate > 0:
			a.Rate *= f
		case f < 1:
			a.RateFraction = f
		}
	}
}

// evalApp turns one app's report into a sweep row. Synthetic probe flows
// and hidden aggressors are reported but not validated (skip=true), as
// in validate_test: SYN exists to generate competition and the hidden
// flow's drop comes from the throttle the scenario exists to trigger.
//
// For validated apps the expected drop depends on the operating point:
//
//   - a saturating flow (credit backpressure keeps its offered load at
//     what it can absorb) is the paper's headline case — expected drop
//     is the live curve prediction and the check is two-sided, since
//     both under- and over-delivery indicate model error;
//   - a paced flow offered fraction f ≥ 1 of solo: the curve still
//     bounds contended capacity, but a gated source (bursty) can beat
//     the saturation equilibrium — its rings absorb bursts and drain in
//     off-phases — so the check is one-sided: observed must not exceed
//     predicted by more than the tolerance;
//   - a paced flow offered f < 1 of solo with predicted contended
//     headroom h = 1 − predicted: when f ≤ h the platform should absorb
//     the offered load outright (expected drop 0), otherwise the flow is
//     over-subscribed at this point and the expected drop relative to
//     its offered load is 1 − h/f. The error is observed − expected and
//     the pass criterion one-sided, mirroring validate_test's
//     under-capacity check.
func evalApp(spec runtime.AppSpec, a runtime.AppReport, rep *runtime.Report, duration, tol float64) (AppResult, bool) {
	stages := a.Stages
	if stages < 1 {
		stages = 1
	}
	replicas := a.Workers / stages
	if replicas < 1 {
		replicas = 1
	}
	row := AppResult{
		App:           a.Name,
		Type:          string(a.Type),
		Replicas:      replicas,
		Stages:        stages,
		Offered:       a.Offered,
		Processed:     a.Processed,
		Finished:      a.Finished,
		NICDrops:      a.NICDrops,
		ObservedPPS:   a.ObservedPPS,
		GoodputPPS:    a.GoodputPPS,
		SoloPPS:       a.SoloPPS,
		ObservedDrop:  a.ObservedDrop,
		PredictedDrop: a.PredictedDrop,
		LatCount:      a.LatCount,
		LatP50US:      a.LatP50US,
		LatP99US:      a.LatP99US,
		LatP999US:     a.LatP999US,
		SLOP99US:      a.SLOP99US,
		SLOBreaches:   a.SLOBreaches,
		SLOBurnRate:   a.SLOBurnRate,
	}
	// Whole-run p99 versus the declared objective decides SLOPass;
	// SLOBreaches additionally records transient per-window excursions.
	row.SLOPass = a.SLOP99US <= 0 || (a.LatCount > 0 && a.LatP99US <= a.SLOP99US)
	// Whole-window remote references per packet, averaged over the
	// group's workers — the locality column of the report.
	var rem float64
	var remN int
	for _, w := range rep.Workers {
		if w.App == a.Name && !math.IsNaN(w.RemotePerPacket) {
			rem += w.RemotePerPacket
			remN++
		}
	}
	if remN > 0 {
		row.RemotePerPacket = rem / float64(remN)
	}

	if a.Type.Synthetic() || spec.HiddenTrigger > 0 {
		return row, true
	}

	frac := spec.RateFraction
	if frac == 0 && spec.Rate > 0 && a.SoloPPS > 0 && duration > 0 {
		offPPS := float64(a.Offered) / duration / float64(replicas)
		frac = offPPS / a.SoloPPS
	}
	row.OfferedFraction = frac
	switch {
	case frac == 0:
		row.ExpectedDrop = a.PredictedDrop
		row.PredErr = a.PredictionError()
		row.Pass = math.Abs(row.PredErr) <= tol
	case frac >= 1:
		row.ExpectedDrop = a.PredictedDrop
		row.PredErr = a.ObservedDrop - row.ExpectedDrop
		row.Pass = row.PredErr <= tol
	default:
		headroom := 1 - a.PredictedDrop
		if frac > headroom {
			row.ExpectedDrop = 1 - headroom/frac
		}
		row.PredErr = a.ObservedDrop - row.ExpectedDrop
		row.Pass = row.PredErr <= tol
	}
	row.Validated = true
	return row, false
}
