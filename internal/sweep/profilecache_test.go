package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/exp"
	"pktpredict/internal/hw"
	"pktpredict/internal/runtime"
)

func cacheTestScale() exp.Scale {
	cfg := hw.DefaultConfig()
	cfg.L1D = hw.CacheGeom{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = hw.CacheGeom{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = hw.CacheGeom{SizeBytes: 1 << 20, Ways: 16}
	return exp.Scale{
		Name:      "cache-test",
		Cfg:       cfg,
		Params:    apps.Small(),
		Warmup:    0.0005,
		Window:    0.002,
		SweepGrid: []int{400, 0},
	}
}

func cacheTestConfig(scale exp.Scale) runtime.Config {
	return runtime.Config{
		Cfg:    scale.Cfg,
		Params: scale.Params,
		Apps:   []runtime.AppSpec{{Name: "ip", Type: apps.IP, Workers: 1}},
	}
}

// TestProfileCacheRoundTrip drives the cache through its whole life:
// a cold run profiles and persists, a warm run (fresh process state,
// same inputs) serves every profile from disk with byte-identical
// results, and any keyed input changing — the salt (git revision) or a
// platform knob — invalidates cleanly back to a cold miss.
func TestProfileCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	scale := cacheTestScale()
	cfg := cacheTestConfig(scale)

	// Cold: miss, profile, persist.
	c1, err := OpenProfileCache(path, "rev-a")
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Runner{Scale: scale, ProfileCache: c1}
	p1, err := r1.profiledFlows(scale.Cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c1.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("cold run: %d hits %d misses, want 0/1", hits, misses)
	}
	if c1.Len() != 1 {
		t.Fatalf("cold run stored %d entries, want 1", c1.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file not persisted: %v", err)
	}

	// Warm: a fresh cache instance over the same file serves the profile
	// without re-profiling, and the result round-trips exactly.
	c2, err := OpenProfileCache(path, "rev-a")
	if err != nil {
		t.Fatal(err)
	}
	r2 := &Runner{Scale: scale, ProfileCache: c2}
	p2, err := r2.profiledFlows(scale.Cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c2.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("warm run: %d hits %d misses, want 1/0", hits, misses)
	}
	j1, _ := json.Marshal(p1)
	j2, _ := json.Marshal(p2)
	if !reflect.DeepEqual(j1, j2) {
		t.Fatalf("warm profile differs from cold:\ncold %s\nwarm %s", j1, j2)
	}

	// Stale salt (a new git revision): the same inputs miss.
	c3, err := OpenProfileCache(path, "rev-b")
	if err != nil {
		t.Fatal(err)
	}
	r3 := &Runner{Scale: scale, ProfileCache: c3}
	if _, err := r3.profiledFlows(scale.Cfg, cfg); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c3.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stale salt: %d hits %d misses, want 0/1", hits, misses)
	}
	if c3.Len() != 2 {
		t.Fatalf("stale salt run stored %d entries, want 2 (old + new)", c3.Len())
	}

	// Stale platform: one knob changes the key even at the same salt.
	c4, err := OpenProfileCache(path, "rev-a")
	if err != nil {
		t.Fatal(err)
	}
	hwCfg := scale.Cfg
	hwCfg.L3Latency++
	key1, err := c4.profileKey(scale.Cfg, cfg.Params, scale.Warmup, scale.Window, scale.SweepGrid, apps.IP)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := c4.profileKey(hwCfg, cfg.Params, scale.Warmup, scale.Window, scale.SweepGrid, apps.IP)
	if err != nil {
		t.Fatal(err)
	}
	if key1 == key2 {
		t.Fatal("platform change did not change the cache key")
	}
	if _, ok := c4.get(key1); !ok {
		t.Fatal("original key no longer resolves")
	}
	if _, ok := c4.get(key2); ok {
		t.Fatal("changed platform resolved a stale entry")
	}
	// The modelled batch depth is a profiling input too: BATCH must key.
	batched := cfg.Params
	batched.RxBatch = 8
	key3, err := c4.profileKey(scale.Cfg, batched, scale.Warmup, scale.Window, scale.SweepGrid, apps.IP)
	if err != nil {
		t.Fatal(err)
	}
	if key3 == key1 {
		t.Fatal("RxBatch change did not change the cache key")
	}
}

// TestProfileCacheCorruptFile checks damage tolerance: an unparseable
// cache is moved aside to .corrupt and profiling proceeds cold, exactly
// like the trend store's policy.
func TestProfileCacheCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenProfileCache(path, "rev-a")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("corrupt cache yielded %d entries", c.Len())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged bytes not preserved: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in place: %v", err)
	}

	// A version bump orphans old entries the same way.
	stale, _ := json.Marshal(profileCacheFile{Version: profileCacheVersion + 1,
		Entries: map[string]runtime.FlowProfile{"k": {SoloPPS: 1}}})
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = OpenProfileCache(path, "rev-a")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("future-version cache entries were accepted")
	}
}
