package sweep

import (
	"path/filepath"
	"strings"
	"testing"
)

func trendReport(scale string, errA, errB float64) *Report {
	rep := &Report{
		Name:  "smoke",
		Scale: scale,
		Points: []PointResult{
			{
				Scenario: "mixed.click", Pass: true,
				Apps: []AppResult{
					{App: "ipfwd", PredErr: errA, Validated: true, Pass: true},
					{App: "probe", PredErr: 0.9, Validated: false},
				},
			},
			{
				Scenario: "mixed.click", Pass: true,
				Apps: []AppResult{
					{App: "ipfwd", PredErr: -errB, Validated: true, Pass: true},
				},
			},
			{
				Scenario: "bursty.click", Pass: false,
				Error: "platform invalid",
				Apps: []AppResult{
					{App: "stale", PredErr: 0.5, Validated: true},
				},
			},
		},
	}
	return rep
}

func TestTrendAppendAggregatesPerScenario(t *testing.T) {
	tr := &Trend{}
	tr.Append(trendReport("quick", 0.02, 0.04), "abc1234", "2026-08-08T00:00:00Z")

	if len(tr.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (one per scenario): %+v", len(tr.Entries), tr.Entries)
	}
	byScenario := map[string]TrendEntry{}
	for _, e := range tr.Entries {
		byScenario[e.Scenario] = e
	}
	mixed := byScenario["mixed.click"]
	if mixed.GitRev != "abc1234" || mixed.Scale != "quick" || mixed.Sweep != "smoke" {
		t.Fatalf("mixed entry keys wrong: %+v", mixed)
	}
	if mixed.MaxAbsErr != 0.04 {
		t.Fatalf("mixed max err = %v, want 0.04 (|−0.04|, unvalidated rows excluded)", mixed.MaxAbsErr)
	}
	if got, want := mixed.MeanAbsErr, (0.02+0.04)/2; got != want {
		t.Fatalf("mixed mean err = %v, want %v", got, want)
	}
	if mixed.Points != 2 || mixed.Failed != 0 {
		t.Fatalf("mixed points/failed = %d/%d, want 2/0", mixed.Points, mixed.Failed)
	}
	// An errored point contributes its failure but not its stale app rows.
	bursty := byScenario["bursty.click"]
	if bursty.MaxAbsErr != 0 || bursty.Failed != 1 || bursty.Points != 1 {
		t.Fatalf("errored point leaked into aggregates: %+v", bursty)
	}
}

func TestTrendUpsertAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.json")
	tr, err := LoadTrend(path) // missing file: empty store
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(trendReport("quick", 0.02, 0.04), "rev1", "2026-08-07T00:00:00Z")
	tr.Append(trendReport("quick", 0.01, 0.03), "rev2", "2026-08-08T00:00:00Z")
	// Re-running rev2 refreshes its entries instead of duplicating them.
	tr.Append(trendReport("quick", 0.05, 0.05), "rev2", "2026-08-08T01:00:00Z")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadTrend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 4 {
		t.Fatalf("got %d entries, want 4 (2 scenarios x 2 revs): %+v", len(got.Entries), got.Entries)
	}
	revs := map[string]int{}
	for _, e := range got.Entries {
		revs[e.GitRev]++
		if e.GitRev == "rev2" && e.Scenario == "mixed.click" && e.MaxAbsErr != 0.05 {
			t.Fatalf("rev2 re-run did not refresh the entry: %+v", e)
		}
	}
	if revs["rev1"] != 2 || revs["rev2"] != 2 {
		t.Fatalf("rev entry counts wrong: %v", revs)
	}

	md := got.Markdown()
	for _, want := range []string{"| scenario |", "mixed.click", "bursty.click", "rev1", "rev2"} {
		if !strings.Contains(md, want) {
			t.Fatalf("trend markdown missing %q:\n%s", want, md)
		}
	}
	// Grouped by scenario: every bursty row precedes the first mixed row.
	if strings.Index(md, "bursty.click") > strings.Index(md, "mixed.click") {
		t.Fatalf("trend table not grouped by scenario:\n%s", md)
	}
}
