package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func trendReport(scale string, errA, errB float64) *Report {
	rep := &Report{
		Name:  "smoke",
		Scale: scale,
		Points: []PointResult{
			{
				Scenario: "mixed.click", Pass: true,
				Apps: []AppResult{
					{App: "ipfwd", PredErr: errA, Validated: true, Pass: true},
					{App: "probe", PredErr: 0.9, Validated: false},
				},
			},
			{
				Scenario: "mixed.click", Pass: true,
				Apps: []AppResult{
					{App: "ipfwd", PredErr: -errB, Validated: true, Pass: true},
				},
			},
			{
				Scenario: "bursty.click", Pass: false,
				Error: "platform invalid",
				Apps: []AppResult{
					{App: "stale", PredErr: 0.5, Validated: true},
				},
			},
		},
	}
	return rep
}

func TestTrendAppendAggregatesPerScenario(t *testing.T) {
	tr := &Trend{}
	tr.Append(trendReport("quick", 0.02, 0.04), "abc1234", "2026-08-08T00:00:00Z")

	if len(tr.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (one per scenario): %+v", len(tr.Entries), tr.Entries)
	}
	byScenario := map[string]TrendEntry{}
	for _, e := range tr.Entries {
		byScenario[e.Scenario] = e
	}
	mixed := byScenario["mixed.click"]
	if mixed.GitRev != "abc1234" || mixed.Scale != "quick" || mixed.Sweep != "smoke" {
		t.Fatalf("mixed entry keys wrong: %+v", mixed)
	}
	if mixed.MaxAbsErr != 0.04 {
		t.Fatalf("mixed max err = %v, want 0.04 (|−0.04|, unvalidated rows excluded)", mixed.MaxAbsErr)
	}
	if got, want := mixed.MeanAbsErr, (0.02+0.04)/2; got != want {
		t.Fatalf("mixed mean err = %v, want %v", got, want)
	}
	if mixed.Points != 2 || mixed.Failed != 0 {
		t.Fatalf("mixed points/failed = %d/%d, want 2/0", mixed.Points, mixed.Failed)
	}
	// An errored point contributes its failure but not its stale app rows.
	bursty := byScenario["bursty.click"]
	if bursty.MaxAbsErr != 0 || bursty.Failed != 1 || bursty.Points != 1 {
		t.Fatalf("errored point leaked into aggregates: %+v", bursty)
	}
}

func TestTrendUpsertAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.json")
	tr, err := LoadTrend(path) // missing file: empty store
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(trendReport("quick", 0.02, 0.04), "rev1", "2026-08-07T00:00:00Z")
	tr.Append(trendReport("quick", 0.01, 0.03), "rev2", "2026-08-08T00:00:00Z")
	// Re-running rev2 refreshes its entries instead of duplicating them.
	tr.Append(trendReport("quick", 0.05, 0.05), "rev2", "2026-08-08T01:00:00Z")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadTrend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 4 {
		t.Fatalf("got %d entries, want 4 (2 scenarios x 2 revs): %+v", len(got.Entries), got.Entries)
	}
	revs := map[string]int{}
	for _, e := range got.Entries {
		revs[e.GitRev]++
		if e.GitRev == "rev2" && e.Scenario == "mixed.click" && e.MaxAbsErr != 0.05 {
			t.Fatalf("rev2 re-run did not refresh the entry: %+v", e)
		}
	}
	if revs["rev1"] != 2 || revs["rev2"] != 2 {
		t.Fatalf("rev entry counts wrong: %v", revs)
	}

	md := got.Markdown()
	for _, want := range []string{"| scenario |", "mixed.click", "bursty.click", "rev1", "rev2"} {
		if !strings.Contains(md, want) {
			t.Fatalf("trend markdown missing %q:\n%s", want, md)
		}
	}
	// Grouped by scenario: every bursty row precedes the first mixed row.
	if strings.Index(md, "bursty.click") > strings.Index(md, "mixed.click") {
		t.Fatalf("trend table not grouped by scenario:\n%s", md)
	}
}

// TestTrendCorruptStoreRecovery: a store that no longer parses must not
// kill the nightly job — it is moved aside for inspection and the run
// starts a fresh history.
func TestTrendCorruptStoreRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.json")
	if err := os.WriteFile(path, []byte(`{"entries": [{"git_rev": "tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrend(path)
	if err != nil {
		t.Fatalf("corrupt store returned an error instead of recovering: %v", err)
	}
	if len(tr.Entries) != 0 {
		t.Fatalf("corrupt store yielded entries: %+v", tr.Entries)
	}
	moved, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("damaged bytes were not preserved: %v", err)
	}
	if !strings.Contains(string(moved), "tru") {
		t.Fatalf("preserved bytes are not the original store: %q", moved)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt store still in place after recovery")
	}
	// The recovered (empty) store saves and loads normally.
	tr.Append(trendReport("quick", 0.02, 0.04), "rev1", "2026-08-08T00:00:00Z")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadTrend(path); err != nil || len(got.Entries) == 0 {
		t.Fatalf("recovered store did not persist: %v, %+v", err, got)
	}
}

// TestTrendSaveAtomic: Save must leave exactly the store file behind —
// no orphaned temp files — and the written file must parse even after
// repeated saves over the same path.
func TestTrendSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trend.json")
	tr := &Trend{}
	tr.Append(trendReport("quick", 0.02, 0.04), "rev1", "2026-08-08T00:00:00Z")
	for i := 0; i < 3; i++ {
		if err := tr.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0].Name() != "trend.json" {
		list := []string{}
		for _, n := range names {
			list = append(list, n.Name())
		}
		t.Fatalf("Save left extra files behind: %v", list)
	}
	if _, err := LoadTrend(path); err != nil {
		t.Fatalf("saved store does not parse: %v", err)
	}
}

// TestTrendLatencyAggregation: the trend entry carries the scenario's
// worst p99 and total breached windows so a latency regression shows in
// the nightly table even when prediction accuracy holds.
func TestTrendLatencyAggregation(t *testing.T) {
	rep := trendReport("quick", 0.02, 0.04)
	rep.Points[0].Apps[0].LatCount = 1000
	rep.Points[0].Apps[0].LatP99US = 42.5
	rep.Points[0].Apps[0].SLOBreaches = 3
	rep.Points[1].Apps[0].LatCount = 800
	rep.Points[1].Apps[0].LatP99US = 55.25
	rep.Points[1].Apps[0].SLOBreaches = 2
	// The errored point's rows carry latencies too; they must not count.
	rep.Points[2].Apps[0].LatCount = 10
	rep.Points[2].Apps[0].LatP99US = 999
	rep.Points[2].Apps[0].SLOBreaches = 99

	tr := &Trend{}
	tr.Append(rep, "rev1", "2026-08-08T00:00:00Z")
	var mixed TrendEntry
	for _, e := range tr.Entries {
		if e.Scenario == "mixed.click" {
			mixed = e
		}
	}
	if mixed.MaxP99US != 55.25 {
		t.Fatalf("max p99 = %v, want 55.25 (worst across the scenario's points)", mixed.MaxP99US)
	}
	if mixed.SLOBreaches != 5 {
		t.Fatalf("slo breaches = %d, want 5 (summed across points)", mixed.SLOBreaches)
	}
	md := tr.Markdown()
	if !strings.Contains(md, "55.2") || !strings.Contains(md, "max p99") {
		t.Fatalf("markdown lacks the latency columns:\n%s", md)
	}
}

// TestTrendSparklineSVG: the per-scenario artifact is a well-formed,
// self-contained SVG with one point per revision; unknown scenarios
// yield nothing.
func TestTrendSparklineSVG(t *testing.T) {
	tr := &Trend{}
	tr.Append(trendReport("quick", 0.02, 0.04), "rev1", "2026-08-07T00:00:00Z")
	tr.Append(trendReport("quick", 0.01, 0.06), "rev2", "2026-08-08T00:00:00Z")
	svg := tr.SparklineSVG("mixed.click")
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("not a self-contained SVG: %q", svg)
	}
	for _, want := range []string{"<polyline", "rev1", "rev2", "mixed.click"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("sparkline missing %q:\n%s", want, svg)
		}
	}
	if got := strings.Count(svg, "<circle"); got != 2 {
		t.Fatalf("sparkline has %d markers, want 2 (one per revision)", got)
	}
	if tr.SparklineSVG("nope.click") != "" {
		t.Fatal("unknown scenario produced an SVG")
	}
	// A scenario whose entries are all zero-error still renders.
	flat := &Trend{Entries: []TrendEntry{{GitRev: "r", Scenario: "flat.click"}}}
	if s := flat.SparklineSVG("flat.click"); !strings.Contains(s, "<circle") {
		t.Fatalf("flat-zero series did not render: %q", s)
	}
}
