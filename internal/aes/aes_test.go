package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/netpkt"
	"pktpredict/internal/rng"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C.1 known-answer test.
func TestFIPS197Vector(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
}

// FIPS-197 Appendix B known-answer test.
func TestFIPS197AppendixB(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, _ := NewCipher(key)
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
}

func TestDecryptInvertsEncrypt(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	c, _ := NewCipher(key)
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	buf := make([]byte, 16)
	c.Encrypt(buf, pt)
	c.Decrypt(buf, buf)
	if !bytes.Equal(buf, pt) {
		t.Fatalf("round trip = %x, want %x", buf, pt)
	}
}

// Property: Decrypt(Encrypt(x)) == x for random keys and blocks.
func TestEncryptDecryptRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		key := make([]byte, 16)
		r.Fill(key)
		c, err := NewCipher(key)
		if err != nil {
			return false
		}
		pt := make([]byte, 16)
		r.Fill(pt)
		ct := make([]byte, 16)
		c.Encrypt(ct, pt)
		if bytes.Equal(ct, pt) {
			return false // encryption must change the block
		}
		out := make([]byte, 16)
		c.Decrypt(out, ct)
		return bytes.Equal(out, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBadKeyLength(t *testing.T) {
	if _, err := NewCipher(make([]byte, 15)); err == nil {
		t.Fatal("15-byte key must be rejected")
	}
	if _, err := NewCipher(make([]byte, 32)); err == nil {
		t.Fatal("32-byte key must be rejected (AES-128 only)")
	}
}

// NIST SP 800-38A F.5.1 CTR-AES128 vector (first two blocks).
func TestCTRKnownVector(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	var iv [16]byte
	copy(iv[:], unhex(t, "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"))
	buf := unhex(t, "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51")
	want := unhex(t, "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff")
	c, _ := NewCipher(key)
	c.CTR(iv, buf)
	if !bytes.Equal(buf, want) {
		t.Fatalf("CTR = %x, want %x", buf, want)
	}
}

func TestCTRIsInvolution(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	c, _ := NewCipher(key)
	msg := []byte("counter mode handles arbitrary-length payloads without padding")
	orig := append([]byte(nil), msg...)
	var iv [16]byte
	iv[15] = 1
	c.CTR(iv, msg)
	if bytes.Equal(msg, orig) {
		t.Fatal("CTR did not change the payload")
	}
	c.CTR(iv, msg)
	if !bytes.Equal(msg, orig) {
		t.Fatal("CTR twice with the same IV must restore the payload")
	}
}

func TestCTRCounterOverflow(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	c, _ := NewCipher(key)
	var iv [16]byte
	for i := range iv {
		iv[i] = 0xff // counter wraps immediately
	}
	buf := make([]byte, 48)
	c.CTR(iv, buf) // must not panic, and blocks must differ
	if bytes.Equal(buf[0:16], buf[16:32]) {
		t.Fatal("keystream repeated across counter wrap")
	}
}

func TestVPNElementEncryptsPayload(t *testing.T) {
	v, err := NewVPN(unhex(t, "000102030405060708090a0b0c0d0e0f"), nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 256)
	netpkt.WriteIPv4(b, netpkt.IPv4Header{TotalLen: 256, TTL: 64, Proto: netpkt.ProtoUDP, Src: 1, Dst: 2})
	orig := append([]byte(nil), b...)
	p := &click.Packet{Data: b, Addr: 0x10000}
	var ctx click.Ctx
	if verdict := v.Process(&ctx, p); verdict != click.Continue {
		t.Fatalf("verdict = %v", verdict)
	}
	if bytes.Equal(b[20:], orig[20:]) {
		t.Fatal("payload unchanged")
	}
	if !bytes.Equal(b[:20], orig[:20]) {
		t.Fatal("header must not be encrypted")
	}

	var computes, loads, stores int
	for _, op := range ctx.Ops {
		switch op.Kind {
		case hw.OpCompute:
			computes++
		case hw.OpLoad:
			loads++
		case hw.OpStore:
			stores++
		}
	}
	// 236-byte payload spans 4-5 lines; ensure both passes traced.
	if loads < 4 || stores < 4 || computes == 0 {
		t.Fatalf("trace: %d loads / %d stores / %d computes", loads, stores, computes)
	}
}

func TestVPNElementDistinctIVs(t *testing.T) {
	v, _ := NewVPN(unhex(t, "000102030405060708090a0b0c0d0e0f"), nil, 0, 0)
	var ctx click.Ctx
	mk := func() []byte {
		b := make([]byte, 64)
		netpkt.WriteIPv4(b, netpkt.IPv4Header{TotalLen: 64, TTL: 64, Proto: netpkt.ProtoUDP, Src: 1, Dst: 2})
		return b
	}
	b1, b2 := mk(), mk()
	v.Process(&ctx, &click.Packet{Data: b1, Addr: 0x1000})
	v.Process(&ctx, &click.Packet{Data: b2, Addr: 0x2000})
	if bytes.Equal(b1[20:], b2[20:]) {
		t.Fatal("identical plaintexts encrypted identically: IV reuse")
	}
}

func TestMulGaloisField(t *testing.T) {
	// {57} x {83} = {c1} from FIPS-197 section 4.2.
	if got := mul(0x57, 0x83); got != 0xc1 {
		t.Fatalf("mul(0x57,0x83) = %#x, want 0xc1", got)
	}
	// {57} x {13} = {fe} from the xtime example.
	if got := mul(0x57, 0x13); got != 0xfe {
		t.Fatalf("mul(0x57,0x13) = %#x, want 0xfe", got)
	}
}
