// Package aes implements the AES-128 block cipher (FIPS-197) and CTR-mode
// encryption for the paper's VPN workload. The implementation is
// self-contained — key expansion, S-box, ShiftRows, MixColumns — and
// encrypts real payload bytes; the VPN element charges the corresponding
// compute cycles, making VPN the system's representative CPU-intensive
// packet processing.
package aes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// sbox is the AES substitution box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// invSbox is the inverse substitution box, used by decryption.
var invSbox [256]byte

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
}

// rcon holds the round constants for key expansion.
var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// Cipher is an expanded AES-128 key.
type Cipher struct {
	roundKeys [44]uint32
}

// NewCipher expands a 16-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: key length %d, want %d", len(key), KeySize)
	}
	c := &Cipher{}
	for i := 0; i < 4; i++ {
		c.roundKeys[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	for i := 4; i < 44; i++ {
		t := c.roundKeys[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ uint32(rcon[i/4])<<24
		}
		c.roundKeys[i] = c.roundKeys[i-4] ^ t
	}
	return c, nil
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// xtime multiplies by x in GF(2^8) modulo the AES polynomial.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// mul multiplies two bytes in GF(2^8).
func mul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Encrypt encrypts one 16-byte block from src into dst (which may alias).
func (c *Cipher) Encrypt(dst, src []byte) {
	var s [16]byte
	copy(s[:], src[:16])
	addRoundKey(&s, c.roundKeys[0:4])
	for round := 1; round < 10; round++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, c.roundKeys[4*round:4*round+4])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, c.roundKeys[40:44])
	copy(dst[:16], s[:])
}

// Decrypt decrypts one 16-byte block from src into dst (which may alias).
func (c *Cipher) Decrypt(dst, src []byte) {
	var s [16]byte
	copy(s[:], src[:16])
	addRoundKey(&s, c.roundKeys[40:44])
	for round := 9; round >= 1; round-- {
		invShiftRows(&s)
		invSubBytes(&s)
		addRoundKey(&s, c.roundKeys[4*round:4*round+4])
		invMixColumns(&s)
	}
	invShiftRows(&s)
	invSubBytes(&s)
	addRoundKey(&s, c.roundKeys[0:4])
	copy(dst[:16], s[:])
}

// The state is column-major as in FIPS-197: s[4*c+r] is row r, column c.

func addRoundKey(s *[16]byte, rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func subBytes(s *[16]byte) {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func invSubBytes(s *[16]byte) {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

func shiftRows(s *[16]byte) {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func invShiftRows(s *[16]byte) {
	s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
	s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
	s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

func invMixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = mul(a0, 0x0e) ^ mul(a1, 0x0b) ^ mul(a2, 0x0d) ^ mul(a3, 0x09)
		s[4*c+1] = mul(a0, 0x09) ^ mul(a1, 0x0e) ^ mul(a2, 0x0b) ^ mul(a3, 0x0d)
		s[4*c+2] = mul(a0, 0x0d) ^ mul(a1, 0x09) ^ mul(a2, 0x0e) ^ mul(a3, 0x0b)
		s[4*c+3] = mul(a0, 0x0b) ^ mul(a1, 0x0d) ^ mul(a2, 0x09) ^ mul(a3, 0x0e)
	}
}

// CTR encrypts (or, identically, decrypts) buf in place using counter
// mode with the given 16-byte IV. CTR turns the block cipher into a
// stream cipher, so arbitrary payload lengths need no padding — the mode
// VPN tunnels typically use.
func (c *Cipher) CTR(iv [16]byte, buf []byte) {
	var keystream [16]byte
	counter := iv
	for off := 0; off < len(buf); off += BlockSize {
		c.Encrypt(keystream[:], counter[:])
		end := off + BlockSize
		if end > len(buf) {
			end = len(buf)
		}
		for i := off; i < end; i++ {
			buf[i] ^= keystream[i-off]
		}
		// Increment the counter big-endian.
		for i := 15; i >= 0; i-- {
			counter[i]++
			if counter[i] != 0 {
				break
			}
		}
	}
}
