package aes

import (
	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
)

// fnAES attributes encryption work in profiles.
var fnAES = hw.RegisterFunc("aes_encrypt")

// cyclesPerBlock approximates software AES-128 cost per 16-byte block on
// the modelled 2.8 GHz Westmere without AES-NI (~6.5 cycles/byte), the
// figure that makes the VPN workload CPU-bound as in the paper.
const cyclesPerBlock = 104

// instrsPerBlock approximates the retired instructions per block for the
// same software implementation.
const instrsPerBlock = 180

// VPNElement encrypts each packet's payload with AES-128 CTR, writing the
// ciphertext into a per-flow ring of output buffers — as an ESP
// encapsulation path does, which is what puts tunnel endpoints' output
// buffers into the cache working set.
type VPNElement struct {
	cipher    *Cipher
	out       mem.Region // output-buffer ring
	outIdx    int
	nextIV    uint64
	Encrypted uint64
}

// defaultOutBuffers is the default output-ring depth: tunnel endpoints
// cycle ciphertext buffers over an area comparable to the packet-buffer
// pool, which is what keeps their stores streaming rather than
// cache-resident.
const defaultOutBuffers = 4096

// NewVPN builds the element with the given 16-byte key. When arena is
// non-nil an output-buffer ring of outBuffers buffers (0 = default) sized
// for packets of up to maxPacket bytes is allocated; with a nil arena
// encryption happens in place (no output-buffer traffic), which some
// tests use.
func NewVPN(key []byte, arena *mem.Arena, maxPacket, outBuffers int) (*VPNElement, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	v := &VPNElement{cipher: c}
	if arena != nil {
		if maxPacket < 64 {
			maxPacket = 64
		}
		if outBuffers <= 0 {
			outBuffers = defaultOutBuffers
		}
		v.out = mem.NewRegion(arena, outBuffers, uint64(maxPacket), true)
	}
	return v, nil
}

// Class implements click.Element.
func (v *VPNElement) Class() string { return "AESEncrypt" }

// Process implements click.Element.
func (v *VPNElement) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnAES)
	defer ctx.SetFunc(old)

	payload := p.Data[netpkt.IPv4HeaderLen:]
	if len(payload) == 0 {
		return click.Continue
	}
	var iv [16]byte
	v.nextIV++
	for i, s := 0, v.nextIV; i < 8; i++ {
		iv[i] = byte(s >> (8 * i))
	}
	v.cipher.CTR(iv, payload)

	// Trace: the payload is read line by line, each block costs cipher
	// compute, and the ciphertext is written to the output buffer. The
	// S-box and round keys are a few hundred bytes that remain
	// L1-resident.
	blocks := (len(payload) + BlockSize - 1) / BlockSize
	payloadAddr := p.Addr + netpkt.IPv4HeaderLen
	ctx.LoadBytes(payloadAddr, len(payload))
	ctx.Compute(uint32(blocks*cyclesPerBlock), uint32(blocks*instrsPerBlock))
	if v.out.Count > 0 {
		outAddr := v.out.Addr(v.outIdx)
		v.outIdx = (v.outIdx + 1) % v.out.Count
		ctx.StoreBytes(outAddr, len(p.Data))
	} else {
		ctx.StoreBytes(payloadAddr, len(payload))
	}
	v.Encrypted++
	return click.Continue
}

// Stat implements click.Stats.
func (v *VPNElement) Stat(name string) (uint64, bool) {
	if name == "encrypted" {
		return v.Encrypted, true
	}
	return 0, false
}

func init() {
	click.Register("AESEncrypt", func(env *click.Env, args click.Args) (interface{}, error) {
		key := make([]byte, KeySize)
		seed := env.Seed
		for i := range key {
			key[i] = byte(seed >> (8 * (uint(i) % 8)))
			if i == 7 {
				seed = seed*0x9e3779b97f4a7c15 + 1
			}
		}
		maxPkt, err := args.Int("MAXPACKET", 2048)
		if err != nil {
			return nil, err
		}
		outBufs, err := args.Int("OUTBUFS", 0)
		if err != nil {
			return nil, err
		}
		return NewVPN(key, env.Arena, maxPkt, outBufs)
	})
}
