package trafficgen

import (
	"bytes"
	"testing"

	"pktpredict/internal/netpkt"
)

func TestGeneratedPacketsAreValidIPv4(t *testing.T) {
	g := New(Spec{Seed: 1, Size: 64})
	b := make([]byte, 64)
	for i := 0; i < 100; i++ {
		n := g.Next(b)
		if n != 64 {
			t.Fatalf("packet %d: length %d, want 64", i, n)
		}
		h, err := netpkt.ParseIPv4(b[:n])
		if err != nil {
			t.Fatalf("packet %d invalid: %v", i, err)
		}
		if h.TTL != 64 {
			t.Fatalf("TTL = %d, want 64", h.TTL)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(Spec{Seed: 9, Size: 128}), New(Spec{Seed: 9, Size: 128})
	pa, pb := make([]byte, 128), make([]byte, 128)
	for i := 0; i < 50; i++ {
		a.Next(pa)
		b.Next(pb)
		if !bytes.Equal(pa, pb) {
			t.Fatalf("streams diverged at packet %d", i)
		}
	}
}

func TestRandomTuplesMostlyUnique(t *testing.T) {
	g := New(Spec{Seed: 2})
	b := make([]byte, 64)
	seen := make(map[netpkt.FiveTuple]bool)
	const n = 1000
	for i := 0; i < n; i++ {
		g.Next(b)
		ft, err := netpkt.ExtractFiveTuple(b)
		if err != nil {
			t.Fatal(err)
		}
		seen[ft] = true
	}
	if len(seen) < n-2 {
		t.Fatalf("only %d distinct tuples in %d random packets", len(seen), n)
	}
}

func TestFlowSetBoundsTuples(t *testing.T) {
	g := New(Spec{Seed: 3, Flows: 10})
	b := make([]byte, 64)
	seen := make(map[netpkt.FiveTuple]bool)
	for i := 0; i < 500; i++ {
		g.Next(b)
		ft, _ := netpkt.ExtractFiveTuple(b)
		seen[ft] = true
	}
	if len(seen) > 10 {
		t.Fatalf("%d distinct tuples from a 10-flow generator", len(seen))
	}
	if len(seen) < 8 {
		t.Fatalf("only %d of 10 flows seen in 500 packets", len(seen))
	}
}

func TestZipfSkewsFlows(t *testing.T) {
	g := New(Spec{Seed: 4, Flows: 100, ZipfS: 1.2})
	b := make([]byte, 64)
	counts := make(map[netpkt.FiveTuple]int)
	for i := 0; i < 5000; i++ {
		g.Next(b)
		ft, _ := netpkt.ExtractFiveTuple(b)
		counts[ft]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000/10 {
		t.Fatalf("hottest flow has %d of 5000 packets; Zipf skew missing", max)
	}
}

func TestRedundantPayloads(t *testing.T) {
	g := New(Spec{Seed: 5, Size: 256, Redundancy: 0.5, HistorySize: 8})
	b := make([]byte, 256)
	payloads := make(map[string]int)
	const n = 400
	for i := 0; i < n; i++ {
		g.Next(b)
		payloads[string(b[28:])]++
	}
	repeats := 0
	for _, c := range payloads {
		if c > 1 {
			repeats += c - 1
		}
	}
	if repeats < n/10 {
		t.Fatalf("only %d repeated payloads of %d; redundancy not generated", repeats, n)
	}
}

func TestUniquePayloadsWithoutRedundancy(t *testing.T) {
	g := New(Spec{Seed: 6, Size: 256})
	b := make([]byte, 256)
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		g.Next(b)
		if seen[string(b[28:])] {
			t.Fatal("duplicate payload from non-redundant generator")
		}
		seen[string(b[28:])] = true
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Size: 32},        // too small
		{Redundancy: 1.5}, // out of range
		{ZipfS: 1.0},      // zipf without flows
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d should be invalid: %+v", i, s)
		}
	}
	if err := (Spec{Seed: 1}).Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Spec{Size: 10})
}

func TestNextPanicsOnSmallBuffer(t *testing.T) {
	g := New(Spec{Seed: 1, Size: 128})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Next(make([]byte, 64))
}
