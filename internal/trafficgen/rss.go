package trafficgen

import "pktpredict/internal/netpkt"

// RSS-style receive-side scaling: a multi-queue NIC hashes each arriving
// packet's 5-tuple and uses the hash to pick a receive queue, so that all
// packets of one transport flow land on one core while distinct flows
// spread across cores. The runtime's dispatcher uses this to shard one
// generated stream across the workers serving a flow group.

// RSSHash returns the receive-side-scaling hash of a packet beginning with
// an IPv4 header. Packets that do not parse as IPv4 fall back to a byte
// hash of the header area, as a NIC's non-IP fallback queue selection
// does; in both cases equal flows always hash equally.
func RSSHash(pkt []byte) uint32 {
	if ft, err := netpkt.ExtractFiveTuple(pkt); err == nil {
		h := ft.Hash()
		return uint32(h ^ h>>32)
	}
	// FNV-1a over up to the first 20 bytes (the IPv4 header area).
	n := len(pkt)
	if n > 20 {
		n = 20
	}
	h := uint32(2166136261)
	for _, b := range pkt[:n] {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// RSSQueue maps a hash onto one of n receive queues. It panics when n is
// not positive: queue fan-out is dataplane setup, where failing fast is
// the right behaviour.
func RSSQueue(hash uint32, n int) int {
	if n <= 0 {
		panic("trafficgen: RSSQueue requires a positive queue count")
	}
	return int(hash % uint32(n))
}
