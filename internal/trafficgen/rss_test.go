package trafficgen

import "testing"

func TestRSSHashStableAndFlowConsistent(t *testing.T) {
	g := New(Spec{Seed: 7, Flows: 64})
	buf := make([]byte, MinPacketSize)
	hashes := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		n := g.Next(buf)
		h1 := RSSHash(buf[:n])
		h2 := RSSHash(buf[:n])
		if h1 != h2 {
			t.Fatalf("RSSHash not deterministic: %x vs %x", h1, h2)
		}
		hashes[h1] = true
	}
	// 64 distinct flows must yield at most 64 distinct hashes (equal
	// tuples hash equally) and far more than one (tuples differ).
	if len(hashes) > 64 {
		t.Fatalf("more hash values (%d) than flows (64)", len(hashes))
	}
	if len(hashes) < 16 {
		t.Fatalf("suspiciously few hash values: %d", len(hashes))
	}
}

func TestRSSQueueSpreadsFlows(t *testing.T) {
	g := New(Spec{Seed: 11})
	buf := make([]byte, MinPacketSize)
	const queues = 4
	counts := make([]int, queues)
	for i := 0; i < 4000; i++ {
		n := g.Next(buf)
		counts[RSSQueue(RSSHash(buf[:n]), queues)]++
	}
	for q, c := range counts {
		// Uniform would be 1000 per queue; accept a wide band.
		if c < 500 || c > 1500 {
			t.Fatalf("queue %d received %d of 4000 packets; skewed sharding: %v", q, c, counts)
		}
	}
}

func TestRSSHashNonIPFallback(t *testing.T) {
	junk := []byte{0x00, 0x01, 0x02}
	if RSSHash(junk) != RSSHash(junk) {
		t.Fatal("fallback hash not deterministic")
	}
	empty := RSSHash(nil)
	_ = empty // must not panic
}

func TestRSSQueuePanicsOnZeroQueues(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RSSQueue(_, 0) did not panic")
		}
	}()
	RSSQueue(1, 0)
}
