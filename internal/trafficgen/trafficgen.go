// Package trafficgen produces deterministic packet streams for the
// experiment workloads. The paper crafts input traffic to maximise each
// application's sensitivity to contention — random destination addresses
// for IP lookup, random 5-tuples for NetFlow, non-matching packets for
// the firewall, unique content for redundancy elimination — and these
// generators reproduce those distributions from explicit seeds.
package trafficgen

import (
	"encoding/binary"
	"fmt"

	"pktpredict/internal/netpkt"
	"pktpredict/internal/rng"
)

// Generator writes successive packets into caller-provided buffers.
type Generator interface {
	// Next writes the next packet into b and returns its length.
	// b must be at least MinPacketSize bytes; packets never exceed
	// the generator's configured size.
	Next(b []byte) int
}

// MinPacketSize is the smallest generated packet: an IPv4 header plus
// ports plus a minimal payload, 64 bytes as on the wire.
const MinPacketSize = 64

// Spec configures a generator.
type Spec struct {
	// Seed drives all randomness; equal specs yield identical streams.
	Seed uint64
	// Size is the total packet length in bytes (default MinPacketSize).
	Size int
	// Flows, when positive, draws each packet's 5-tuple from a fixed set
	// of that many flows instead of generating a fresh random tuple per
	// packet. The paper's NetFlow table of 100000 entries is populated by
	// setting Flows to 100000.
	Flows int
	// ZipfS, when positive and Flows > 0, skews flow popularity with a
	// Zipf distribution of this exponent; otherwise flows are uniform.
	ZipfS float64
	// Redundancy is the probability that a packet's payload repeats one
	// of the last HistorySize payloads, exercising redundancy
	// elimination's match path. Zero (the paper's contention setup)
	// makes every payload unique.
	Redundancy float64
	// HistorySize is the number of recent payloads kept for Redundancy
	// (default 32).
	HistorySize int
	// TTL is the initial TTL (default 64).
	TTL uint8

	// Signatures enables DPI payload shaping: with probability SigHit a
	// packet's payload embeds one of these byte patterns at a random
	// offset. Patterns are random byte strings (see dpi.Signatures), so
	// a payload that was not injected does not contain one by accident
	// — the hit rate is controlled exactly.
	Signatures [][]byte
	// SigHit is the probability a payload embeds a signature.
	SigHit float64
	// SigHitShift, when SigShiftAfter > 0, replaces SigHit after that
	// many packets — the DPI analogue of the hidden aggressor's
	// trigger, for exercising profile-drift detection: traffic whose
	// signature-hit rate shifts mid-run invalidates the detector
	// chain's offline profile.
	SigHitShift   float64
	SigShiftAfter int64
	// LowEntropy is the probability a payload is drawn from a small
	// alphabet of 2^LowEntropyBits byte values instead of uniformly
	// random bytes, giving a controllable bimodal entropy distribution
	// for the entropy-gate detector (0 bits = a single repeated value).
	LowEntropy     float64
	LowEntropyBits int
}

func (s Spec) withDefaults() Spec {
	if s.Size == 0 {
		s.Size = MinPacketSize
	}
	if s.HistorySize == 0 {
		s.HistorySize = 32
	}
	if s.TTL == 0 {
		s.TTL = 64
	}
	return s
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Size < MinPacketSize {
		return fmt.Errorf("trafficgen: size %d below minimum %d", s.Size, MinPacketSize)
	}
	if s.Redundancy < 0 || s.Redundancy >= 1 {
		return fmt.Errorf("trafficgen: redundancy %v outside [0,1)", s.Redundancy)
	}
	if s.ZipfS > 0 && s.Flows <= 0 {
		return fmt.Errorf("trafficgen: ZipfS requires Flows > 0")
	}
	if s.SigHit < 0 || s.SigHit > 1 {
		return fmt.Errorf("trafficgen: SigHit %v outside [0,1]", s.SigHit)
	}
	if s.SigHitShift < 0 || s.SigHitShift > 1 {
		return fmt.Errorf("trafficgen: SigHitShift %v outside [0,1]", s.SigHitShift)
	}
	if (s.SigHit > 0 || s.SigHitShift > 0) && len(s.Signatures) == 0 {
		return fmt.Errorf("trafficgen: SigHit requires Signatures")
	}
	for i, sig := range s.Signatures {
		if len(sig) == 0 {
			return fmt.Errorf("trafficgen: signature %d is empty", i)
		}
		if len(sig) > s.Size-netpkt.IPv4HeaderLen-8 {
			return fmt.Errorf("trafficgen: signature %d (%d bytes) does not fit a %d-byte packet's payload",
				i, len(sig), s.Size)
		}
	}
	if s.LowEntropy < 0 || s.LowEntropy > 1 {
		return fmt.Errorf("trafficgen: LowEntropy %v outside [0,1]", s.LowEntropy)
	}
	if s.LowEntropyBits < 0 || s.LowEntropyBits > 8 {
		return fmt.Errorf("trafficgen: LowEntropyBits %d outside [0,8]", s.LowEntropyBits)
	}
	return nil
}

type gen struct {
	spec    Spec
	r       *rng.RNG
	zipf    *rng.Zipf
	flows   []netpkt.FiveTuple
	history [][]byte
	histLen int
	id      uint16
	pkts    int64
}

// New builds a generator from spec. It panics on invalid specs: generator
// configuration is experiment setup, where failing fast is the right
// behaviour.
func New(spec Spec) Generator {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	g := &gen{spec: spec, r: rng.New(spec.Seed)}
	if spec.Flows > 0 {
		g.flows = make([]netpkt.FiveTuple, spec.Flows)
		fr := rng.New(spec.Seed ^ 0xf10e5)
		for i := range g.flows {
			g.flows[i] = randomTuple(fr)
		}
		if spec.ZipfS > 0 {
			g.zipf = rng.NewZipf(rng.New(spec.Seed^0x21bf), spec.Flows, spec.ZipfS)
		}
	}
	if spec.Redundancy > 0 {
		g.history = make([][]byte, spec.HistorySize)
	}
	return g
}

func randomTuple(r *rng.RNG) netpkt.FiveTuple {
	proto := uint8(netpkt.ProtoUDP)
	if r.Uint64()&1 == 0 {
		proto = netpkt.ProtoTCP
	}
	return netpkt.FiveTuple{
		Src:     r.Uint32(),
		Dst:     r.Uint32(),
		SrcPort: uint16(r.Uint32()),
		DstPort: uint16(r.Uint32()),
		Proto:   proto,
	}
}

// sigHit returns the live signature-hit probability: SigHit until
// SigShiftAfter packets, SigHitShift afterwards.
func (g *gen) sigHit() float64 {
	if g.spec.SigShiftAfter > 0 && g.pkts > g.spec.SigShiftAfter {
		return g.spec.SigHitShift
	}
	return g.spec.SigHit
}

// Next implements Generator.
func (g *gen) Next(b []byte) int {
	size := g.spec.Size
	if len(b) < size {
		panic(fmt.Sprintf("trafficgen: buffer %d too small for %d-byte packet", len(b), size))
	}
	var t netpkt.FiveTuple
	switch {
	case g.flows == nil:
		t = randomTuple(g.r)
	case g.zipf != nil:
		t = g.flows[g.zipf.Next()]
	default:
		t = g.flows[g.r.Intn(len(g.flows))]
	}
	g.id++
	netpkt.WriteIPv4(b, netpkt.IPv4Header{
		TotalLen: uint16(size),
		ID:       g.id,
		TTL:      g.spec.TTL,
		Proto:    t.Proto,
		Src:      t.Src,
		Dst:      t.Dst,
	})
	binary.BigEndian.PutUint16(b[netpkt.IPv4HeaderLen:], t.SrcPort)
	binary.BigEndian.PutUint16(b[netpkt.IPv4HeaderLen+2:], t.DstPort)
	binary.BigEndian.PutUint32(b[netpkt.IPv4HeaderLen+4:], 0)

	payload := b[netpkt.IPv4HeaderLen+8 : size]
	if g.history != nil && g.histLen > 0 && g.r.Float64() < g.spec.Redundancy {
		// Repeat a recent payload so redundancy elimination can encode it.
		src := g.history[g.r.Intn(g.histLen)]
		n := copy(payload, src)
		for i := n; i < len(payload); i++ {
			payload[i] = 0
		}
	} else {
		g.r.Fill(payload)
	}
	g.pkts++
	if g.spec.LowEntropy > 0 && g.r.Float64() < g.spec.LowEntropy {
		// Collapse the payload onto a 2^LowEntropyBits-value alphabet:
		// masking uniform bytes keeps the draw uniform over the smaller
		// alphabet, so the payload's Shannon entropy is LowEntropyBits
		// bits per byte.
		mask := byte(1<<g.spec.LowEntropyBits - 1)
		for i := range payload {
			payload[i] &= mask
		}
	}
	if hit := g.sigHit(); hit > 0 && g.r.Float64() < hit {
		sig := g.spec.Signatures[g.r.Intn(len(g.spec.Signatures))]
		if len(sig) <= len(payload) {
			off := g.r.Intn(len(payload) - len(sig) + 1)
			copy(payload[off:], sig)
		}
	}
	if g.history != nil {
		idx := int(g.id) % len(g.history)
		g.history[idx] = append(g.history[idx][:0], payload...)
		if g.histLen < len(g.history) {
			g.histLen++
		}
	}
	return size
}
