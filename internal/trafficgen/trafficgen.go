// Package trafficgen produces deterministic packet streams for the
// experiment workloads. The paper crafts input traffic to maximise each
// application's sensitivity to contention — random destination addresses
// for IP lookup, random 5-tuples for NetFlow, non-matching packets for
// the firewall, unique content for redundancy elimination — and these
// generators reproduce those distributions from explicit seeds.
package trafficgen

import (
	"encoding/binary"
	"fmt"

	"pktpredict/internal/netpkt"
	"pktpredict/internal/rng"
)

// Generator writes successive packets into caller-provided buffers.
type Generator interface {
	// Next writes the next packet into b and returns its length.
	// b must be at least MinPacketSize bytes; packets never exceed
	// the generator's configured size.
	Next(b []byte) int
}

// MinPacketSize is the smallest generated packet: an IPv4 header plus
// ports plus a minimal payload, 64 bytes as on the wire.
const MinPacketSize = 64

// Spec configures a generator.
type Spec struct {
	// Seed drives all randomness; equal specs yield identical streams.
	Seed uint64
	// Size is the total packet length in bytes (default MinPacketSize).
	Size int
	// Flows, when positive, draws each packet's 5-tuple from a fixed set
	// of that many flows instead of generating a fresh random tuple per
	// packet. The paper's NetFlow table of 100000 entries is populated by
	// setting Flows to 100000.
	Flows int
	// ZipfS, when positive and Flows > 0, skews flow popularity with a
	// Zipf distribution of this exponent; otherwise flows are uniform.
	ZipfS float64
	// Redundancy is the probability that a packet's payload repeats one
	// of the last HistorySize payloads, exercising redundancy
	// elimination's match path. Zero (the paper's contention setup)
	// makes every payload unique.
	Redundancy float64
	// HistorySize is the number of recent payloads kept for Redundancy
	// (default 32).
	HistorySize int
	// TTL is the initial TTL (default 64).
	TTL uint8
}

func (s Spec) withDefaults() Spec {
	if s.Size == 0 {
		s.Size = MinPacketSize
	}
	if s.HistorySize == 0 {
		s.HistorySize = 32
	}
	if s.TTL == 0 {
		s.TTL = 64
	}
	return s
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Size < MinPacketSize {
		return fmt.Errorf("trafficgen: size %d below minimum %d", s.Size, MinPacketSize)
	}
	if s.Redundancy < 0 || s.Redundancy >= 1 {
		return fmt.Errorf("trafficgen: redundancy %v outside [0,1)", s.Redundancy)
	}
	if s.ZipfS > 0 && s.Flows <= 0 {
		return fmt.Errorf("trafficgen: ZipfS requires Flows > 0")
	}
	return nil
}

type gen struct {
	spec    Spec
	r       *rng.RNG
	zipf    *rng.Zipf
	flows   []netpkt.FiveTuple
	history [][]byte
	histLen int
	id      uint16
}

// New builds a generator from spec. It panics on invalid specs: generator
// configuration is experiment setup, where failing fast is the right
// behaviour.
func New(spec Spec) Generator {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	g := &gen{spec: spec, r: rng.New(spec.Seed)}
	if spec.Flows > 0 {
		g.flows = make([]netpkt.FiveTuple, spec.Flows)
		fr := rng.New(spec.Seed ^ 0xf10e5)
		for i := range g.flows {
			g.flows[i] = randomTuple(fr)
		}
		if spec.ZipfS > 0 {
			g.zipf = rng.NewZipf(rng.New(spec.Seed^0x21bf), spec.Flows, spec.ZipfS)
		}
	}
	if spec.Redundancy > 0 {
		g.history = make([][]byte, spec.HistorySize)
	}
	return g
}

func randomTuple(r *rng.RNG) netpkt.FiveTuple {
	proto := uint8(netpkt.ProtoUDP)
	if r.Uint64()&1 == 0 {
		proto = netpkt.ProtoTCP
	}
	return netpkt.FiveTuple{
		Src:     r.Uint32(),
		Dst:     r.Uint32(),
		SrcPort: uint16(r.Uint32()),
		DstPort: uint16(r.Uint32()),
		Proto:   proto,
	}
}

// Next implements Generator.
func (g *gen) Next(b []byte) int {
	size := g.spec.Size
	if len(b) < size {
		panic(fmt.Sprintf("trafficgen: buffer %d too small for %d-byte packet", len(b), size))
	}
	var t netpkt.FiveTuple
	switch {
	case g.flows == nil:
		t = randomTuple(g.r)
	case g.zipf != nil:
		t = g.flows[g.zipf.Next()]
	default:
		t = g.flows[g.r.Intn(len(g.flows))]
	}
	g.id++
	netpkt.WriteIPv4(b, netpkt.IPv4Header{
		TotalLen: uint16(size),
		ID:       g.id,
		TTL:      g.spec.TTL,
		Proto:    t.Proto,
		Src:      t.Src,
		Dst:      t.Dst,
	})
	binary.BigEndian.PutUint16(b[netpkt.IPv4HeaderLen:], t.SrcPort)
	binary.BigEndian.PutUint16(b[netpkt.IPv4HeaderLen+2:], t.DstPort)
	binary.BigEndian.PutUint32(b[netpkt.IPv4HeaderLen+4:], 0)

	payload := b[netpkt.IPv4HeaderLen+8 : size]
	if g.history != nil && g.histLen > 0 && g.r.Float64() < g.spec.Redundancy {
		// Repeat a recent payload so redundancy elimination can encode it.
		src := g.history[g.r.Intn(g.histLen)]
		n := copy(payload, src)
		for i := n; i < len(payload); i++ {
			payload[i] = 0
		}
	} else {
		g.r.Fill(payload)
	}
	if g.history != nil {
		idx := int(g.id) % len(g.history)
		g.history[idx] = append(g.history[idx][:0], payload...)
		if g.histLen < len(g.history) {
			g.histLen++
		}
	}
	return size
}
