package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnCoversRange(t *testing.T) {
	r := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(8)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Intn(8) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ≈ 0.5", mean)
	}
}

func TestFillDeterministicAndFull(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	New(9).Fill(a)
	New(9).Fill(b)
	if string(a) != string(b) {
		t.Fatal("Fill not deterministic")
	}
	zero := 0
	for _, v := range a {
		if v == 0 {
			zero++
		}
	}
	if zero > 10 {
		t.Fatalf("Fill left %d/37 zero bytes; looks unfilled", zero)
	}
}

func TestUniformity(t *testing.T) {
	r := New(11)
	buckets := make([]int, 16)
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()%16]++
	}
	for i, c := range buckets {
		if c < n/16*9/10 || c > n/16*11/10 {
			t.Fatalf("bucket %d has %d of %d; distribution skewed", i, c, n)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] < counts[500]*5 {
		t.Fatalf("rank 0 (%d) should dominate rank 500 (%d)", counts[0], counts[500])
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestInternalMathAgainstStdlib(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 1.5, 2, 3.14159, 10, 123.456} {
		if got, want := ln(x), math.Log(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("ln(%v) = %v, want %v", x, got, want)
		}
	}
	for _, x := range []float64{-5, -1, -0.1, 0, 0.1, 1, 2.5, 10} {
		if got, want := exp(x), math.Exp(x); math.Abs(got-want)/math.Max(want, 1e-300) > 1e-9 {
			t.Fatalf("exp(%v) = %v, want %v", x, got, want)
		}
	}
}

// Property: pow matches math.Pow for positive bases and exponents in the
// range Zipf construction uses.
func TestPowQuick(t *testing.T) {
	f := func(xi, yi uint16) bool {
		x := 1 + float64(xi%5000)    // [1, 5001)
		y := 0.1 + float64(yi%30)/10 // [0.1, 3.1)
		got, want := pow(x, y), math.Pow(x, y)
		return math.Abs(got-want)/want < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
