// Package rng provides a small, fast, deterministic pseudo-random number
// generator (splitmix64) used by every traffic generator and synthetic
// workload in the system. The experiments must be exactly reproducible —
// two runs with the same seed produce identical packets, identical memory
// traces, and therefore identical performance counters — so nothing in
// the measurement path may use math/rand's global, seed-racy state.
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New to decorrelate seeds.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds, even
// consecutive integers, yield decorrelated streams: splitmix64 was
// designed exactly for that use.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift range reduction; bias is negligible for the
	// ranges used here (simulation parameters, not cryptography).
	return int((r.Uint64() >> 32) * uint64(n) >> 32)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Fill writes pseudo-random bytes into b.
func (r *RNG) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s,
// using inverse-CDF sampling over a precomputed table. It models skewed
// flow popularity for the non-uniform traffic scenarios.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Next returns the next sample in [0, len(cdf)).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow computes x**y for y > 0 via exp/log-free repeated squaring on the
// integer part and a short Taylor refinement for the fraction. Zipf table
// construction is the only caller and happens once at setup, so clarity
// beats speed; precision to ~1e-9 is ample for a sampling CDF.
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	// x^y = exp(y * ln x): implement ln and exp with enough precision.
	return exp(y * ln(x))
}

func ln(x float64) float64 {
	// Range-reduce x into [1,2) by halving; ln(x) = k*ln2 + ln(m).
	k := 0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	// atanh series: ln(m) = 2*atanh((m-1)/(m+1)).
	t := (x - 1) / (x + 1)
	t2 := t * t
	sum, term := 0.0, t
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= t2
	}
	const ln2 = 0.6931471805599453
	return float64(k)*ln2 + 2*sum
}

func exp(x float64) float64 {
	// Range-reduce: exp(x) = 2^k * exp(r), |r| <= ln2/2.
	const ln2 = 0.6931471805599453
	k := int(x/ln2 + 0.5)
	if x < 0 {
		k = int(x/ln2 - 0.5)
	}
	r := x - float64(k)*ln2
	// Taylor series for exp(r).
	sum, term := 1.0, 1.0
	for i := 1; i < 20; i++ {
		term *= r / float64(i)
		sum += term
	}
	for ; k > 0; k-- {
		sum *= 2
	}
	for ; k < 0; k++ {
		sum /= 2
	}
	return sum
}
