package perf

import (
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

func testCfg() hw.Config {
	cfg := hw.DefaultConfig()
	cfg.L1D = hw.CacheGeom{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = hw.CacheGeom{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = hw.CacheGeom{SizeBytes: 1 << 20, Ways: 16}
	return cfg
}

func TestSoloProfileBasics(t *testing.T) {
	inst, err := apps.Small().Build(apps.MON, mem.NewArena(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	p := Solo(testCfg(), "MON", inst.Source, 0.0003, 0.001)
	if p.Throughput() == 0 {
		t.Fatal("zero throughput")
	}
	if p.CPI() <= 0 {
		t.Fatal("CPI must be positive")
	}
	if p.L3RefsPerPacket() <= 0 || p.CyclesPerPacket() <= 0 {
		t.Fatalf("per-packet metrics empty: %+v", p)
	}
	if p.L3RefsPerPacket() < p.L3MissesPerPacket() {
		t.Fatal("misses cannot exceed references")
	}
	if !strings.Contains(p.String(), "MON") {
		t.Fatal("String() must include the label")
	}
}

func TestSoloDeterministic(t *testing.T) {
	run := func() Profile {
		inst, err := apps.Small().Build(apps.IP, mem.NewArena(0), 9)
		if err != nil {
			t.Fatal(err)
		}
		return Solo(testCfg(), "IP", inst.Source, 0.0002, 0.001)
	}
	a, b := run(), run()
	if a.Stats.Raw != b.Stats.Raw {
		t.Fatal("solo profiling not deterministic")
	}
}

func TestTableRendering(t *testing.T) {
	inst, _ := apps.Small().Build(apps.IP, mem.NewArena(0), 3)
	p := Solo(testCfg(), "IP", inst.Source, 0.0002, 0.0005)
	out := Table([]Profile{p})
	if !strings.Contains(out, "Flow") || !strings.Contains(out, "IP") {
		t.Fatalf("table malformed:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("table has %d lines, want 2", lines)
	}
}
