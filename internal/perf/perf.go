// Package perf implements offline profiling of packet-processing flows:
// the solo-run measurements of Table 1 (cycles per instruction, cache
// references and hits per second, per-packet cache behaviour) and
// per-function attribution, playing the role OProfile plays in the paper.
package perf

import (
	"fmt"
	"strings"

	"pktpredict/internal/hw"
)

// Profile is one flow's solo-run characterisation — one row of the
// paper's Table 1.
type Profile struct {
	Label string
	Stats hw.FlowStats
}

// CPI returns cycles per instruction.
func (p Profile) CPI() float64 { return p.Stats.CPI() }

// L3RefsPerSec returns last-level-cache references per second.
func (p Profile) L3RefsPerSec() float64 { return p.Stats.L3RefsPerSec() }

// L3HitsPerSec returns last-level-cache hits per second.
func (p Profile) L3HitsPerSec() float64 { return p.Stats.L3HitsPerSec() }

// CyclesPerPacket returns core cycles per processed packet.
func (p Profile) CyclesPerPacket() float64 { return p.Stats.CyclesPerPacket() }

// L3RefsPerPacket returns L3 references per packet.
func (p Profile) L3RefsPerPacket() float64 { return p.Stats.L3RefsPerPacket() }

// L3MissesPerPacket returns L3 misses per packet.
func (p Profile) L3MissesPerPacket() float64 { return p.Stats.L3MissesPerPacket() }

// L2HitsPerPacket returns L2 hits per packet.
func (p Profile) L2HitsPerPacket() float64 { return p.Stats.L2HitsPerPacket() }

// Throughput returns packets per second.
func (p Profile) Throughput() float64 { return p.Stats.Throughput() }

// String renders the profile in Table 1's column order.
func (p Profile) String() string {
	return fmt.Sprintf("%-8s cpi=%.2f l3refs/s=%.2fM l3hits/s=%.2fM cyc/pkt=%.0f refs/pkt=%.2f miss/pkt=%.2f l2hits/pkt=%.2f",
		p.Label, p.CPI(), p.L3RefsPerSec()/1e6, p.L3HitsPerSec()/1e6,
		p.CyclesPerPacket(), p.L3RefsPerPacket(), p.L3MissesPerPacket(), p.L2HitsPerPacket())
}

// Solo measures src running alone on core 0 of a fresh platform built
// from cfg, after warmup virtual seconds, over a window of virtual
// seconds. This is the paper's offline profiling primitive: everything
// the prediction method needs is derived from solo runs.
func Solo(cfg hw.Config, label string, src hw.PacketSource, warmup, window float64) Profile {
	p := hw.NewPlatform(cfg)
	e := hw.NewEngine(p)
	e.Attach(0, label, src)
	stats := e.MeasureWindow(warmup, window)
	return Profile{Label: label, Stats: stats[0]}
}

// Table renders profiles as an aligned text table mirroring Table 1.
func Table(profiles []Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %14s %14s %10s %10s %10s %10s\n",
		"Flow", "CPI", "L3refs/s(M)", "L3hits/s(M)", "cyc/pkt", "refs/pkt", "miss/pkt", "L2hit/pkt")
	for _, p := range profiles {
		fmt.Fprintf(&b, "%-8s %8.2f %14.2f %14.2f %10.0f %10.2f %10.2f %10.2f\n",
			p.Label, p.CPI(), p.L3RefsPerSec()/1e6, p.L3HitsPerSec()/1e6,
			p.CyclesPerPacket(), p.L3RefsPerPacket(), p.L3MissesPerPacket(), p.L2HitsPerPacket())
	}
	return b.String()
}
