package firewall

import (
	"testing"
	"testing/quick"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
	"pktpredict/internal/rng"
)

func tcpTuple(src, dst uint32, port uint16) netpkt.FiveTuple {
	return netpkt.FiveTuple{Src: src, Dst: dst, SrcPort: 9999, DstPort: port, Proto: netpkt.ProtoTCP}
}

func TestRuleMatching(t *testing.T) {
	r := Rule{
		Src: 0x0a000000, SrcMask: 0xff000000,
		Dst: 0xc0a80000, DstMask: 0xffff0000,
		PortLo: 80, PortHi: 443,
		Proto: netpkt.ProtoTCP,
		Act:   Deny,
	}
	cases := []struct {
		ft   netpkt.FiveTuple
		want bool
	}{
		{tcpTuple(0x0a000001, 0xc0a80101, 80), true},
		{tcpTuple(0x0a000001, 0xc0a80101, 443), true},
		{tcpTuple(0x0b000001, 0xc0a80101, 80), false},  // wrong src net
		{tcpTuple(0x0a000001, 0xc0a90101, 80), false},  // wrong dst net
		{tcpTuple(0x0a000001, 0xc0a80101, 444), false}, // port above range
		{tcpTuple(0x0a000001, 0xc0a80101, 79), false},  // port below range
		{netpkt.FiveTuple{Src: 0x0a000001, Dst: 0xc0a80101, DstPort: 80, Proto: netpkt.ProtoUDP}, false},
	}
	for i, c := range cases {
		if got := r.Matches(c.ft); got != c.want {
			t.Fatalf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
}

func TestWildcardProtocol(t *testing.T) {
	r := Rule{SrcMask: 0, DstMask: 0, PortLo: 0, PortHi: 65535, Proto: 0}
	if !r.Matches(tcpTuple(1, 2, 80)) {
		t.Fatal("wildcard rule must match TCP")
	}
	udp := netpkt.FiveTuple{Proto: netpkt.ProtoUDP, DstPort: 53}
	if !r.Matches(udp) {
		t.Fatal("wildcard rule must match UDP")
	}
}

func TestFirstMatchWins(t *testing.T) {
	arena := mem.NewArena(0)
	rules := []Rule{
		{SrcMask: 0, DstMask: 0, PortLo: 80, PortHi: 80, Act: Allow},
		{SrcMask: 0, DstMask: 0, PortLo: 0, PortHi: 65535, Act: Deny},
	}
	f := NewFilter(arena, rules)
	if act, ok := f.CheckPlain(tcpTuple(1, 2, 80)); !ok || act != Allow {
		t.Fatalf("port 80 = %v/%v, want Allow (first rule)", act, ok)
	}
	if act, ok := f.CheckPlain(tcpTuple(1, 2, 81)); !ok || act != Deny {
		t.Fatalf("port 81 = %v/%v, want Deny (second rule)", act, ok)
	}
}

func TestDefaultAllowOnNoMatch(t *testing.T) {
	arena := mem.NewArena(0)
	f := NewFilter(arena, NoMatchRules(100, 1))
	act, matched := f.CheckPlain(tcpTuple(0x0a000001, 0xc0a80101, 80))
	if matched || act != Allow {
		t.Fatalf("no-match traffic = %v/%v, want Allow/false", act, matched)
	}
}

// Property: NoMatchRules never match any tuple — the invariant the
// paper's FW experiment depends on (every packet scans all rules).
func TestNoMatchRulesNeverMatchQuick(t *testing.T) {
	rules := NoMatchRules(200, 3)
	f := func(src, dst uint32, sport, dport uint16, udp bool) bool {
		proto := uint8(netpkt.ProtoTCP)
		if udp {
			proto = netpkt.ProtoUDP
		}
		ft := netpkt.FiveTuple{Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Proto: proto}
		for _, r := range rules {
			if r.Matches(ft) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckScansAllRulesOnNoMatch(t *testing.T) {
	arena := mem.NewArena(0)
	f := NewFilter(arena, NoMatchRules(1000, 1))
	var ctx click.Ctx
	f.Check(&ctx, tcpTuple(1, 2, 80))
	if f.Checked != 1000 {
		t.Fatalf("checked %d rules, want 1000", f.Checked)
	}
	// 1000 rules at 32 B each, 2 per line → 500 distinct line loads.
	loads := 0
	for _, op := range ctx.Ops {
		if op.Kind == hw.OpLoad {
			loads++
		}
	}
	if loads != 500 {
		t.Fatalf("trace has %d line loads, want 500", loads)
	}
}

func TestCheckStopsAtMatch(t *testing.T) {
	arena := mem.NewArena(0)
	rules := NoMatchRules(100, 1)
	rules[9] = Rule{SrcMask: 0, DstMask: 0, PortLo: 0, PortHi: 65535, Act: Deny}
	f := NewFilter(arena, rules)
	var ctx click.Ctx
	act, matched := f.Check(&ctx, tcpTuple(1, 2, 80))
	if !matched || act != Deny {
		t.Fatalf("= %v/%v, want Deny/true", act, matched)
	}
	if f.Checked != 10 {
		t.Fatalf("checked %d rules, want 10 (stop at first match)", f.Checked)
	}
}

func TestRulesFitInL2(t *testing.T) {
	arena := mem.NewArena(0)
	f := NewFilter(arena, NoMatchRules(1000, 1))
	if f.SimBytes() > 256<<10 {
		t.Fatalf("1000 rules occupy %d bytes; paper requires them to fit the 256KB L2", f.SimBytes())
	}
}

func TestElementDeniesAndAllows(t *testing.T) {
	arena := mem.NewArena(0)
	rules := []Rule{{SrcMask: 0, DstMask: 0, PortLo: 22, PortHi: 22, Proto: 0, Act: Deny}}
	el := &Element{Filter: NewFilter(arena, rules)}
	var ctx click.Ctx

	mk := func(port uint16) *click.Packet {
		b := make([]byte, 64)
		netpkt.WriteIPv4(b, netpkt.IPv4Header{TotalLen: 64, TTL: 64, Proto: netpkt.ProtoTCP, Src: 1, Dst: 2})
		b[netpkt.IPv4HeaderLen+2] = byte(port >> 8)
		b[netpkt.IPv4HeaderLen+3] = byte(port)
		return &click.Packet{Data: b, Addr: 0x8000}
	}
	if v := el.Process(&ctx, mk(22)); v != click.Drop {
		t.Fatalf("port 22 verdict = %v, want drop", v)
	}
	if v := el.Process(&ctx, mk(80)); v != click.Continue {
		t.Fatalf("port 80 verdict = %v, want continue", v)
	}
	if el.Dropped != 1 {
		t.Fatalf("dropped = %d", el.Dropped)
	}
	if v, ok := el.Stat("matched"); !ok || v != 1 {
		t.Fatalf("matched stat = %d/%v", v, ok)
	}
}

func TestEmptyFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFilter(mem.NewArena(0), nil)
}

func TestNoMatchRulesDeterministic(t *testing.T) {
	a := NoMatchRules(50, 9)
	b := NoMatchRules(50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rule %d differs between equal seeds", i)
		}
	}
	r := rng.New(1)
	_ = r
}
