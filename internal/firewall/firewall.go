// Package firewall implements the paper's FW workload: a small
// sequential-search packet filter. Each packet is checked against every
// rule in order; the first match decides its fate. The paper uses 1000
// rules precisely because that rule set fits in the L2 cache, making FW
// the workload that benefits from all levels of the hierarchy and is
// therefore the least sensitive and least aggressive flow type.
package firewall

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
	"pktpredict/internal/rng"
)

// fnFirewall attributes filter work in profiles.
var fnFirewall = hw.RegisterFunc("firewall_filter")

// Action is a rule's disposition.
type Action uint8

const (
	// Deny drops matching packets.
	Deny Action = iota
	// Allow passes matching packets explicitly.
	Allow
)

// Rule matches on source/destination prefixes, a destination port range,
// and protocol (0 = any). The in-memory layout packs two rules per cache
// line, as a production filter's rule array would.
type Rule struct {
	Src, SrcMask   uint32
	Dst, DstMask   uint32
	PortLo, PortHi uint16
	Proto          uint8
	Act            Action
}

// Matches reports whether r matches the packet tuple.
func (r Rule) Matches(ft netpkt.FiveTuple) bool {
	if ft.Src&r.SrcMask != r.Src&r.SrcMask {
		return false
	}
	if ft.Dst&r.DstMask != r.Dst&r.DstMask {
		return false
	}
	if ft.DstPort < r.PortLo || ft.DstPort > r.PortHi {
		return false
	}
	if r.Proto != 0 && ft.Proto != r.Proto {
		return false
	}
	return true
}

// ruleSimBytes is each rule's simulated size: 32 bytes, two per line.
const ruleSimBytes = 32

// Filter is the sequential rule list.
type Filter struct {
	rules  []Rule
	region mem.Region

	Checked uint64 // total rule evaluations
	Matched uint64
}

// NewFilter allocates the rule array from arena.
func NewFilter(arena *mem.Arena, rules []Rule) *Filter {
	if len(rules) == 0 {
		panic("firewall: empty rule set")
	}
	return &Filter{
		rules:  rules,
		region: mem.NewRegion(arena, len(rules), ruleSimBytes, false),
	}
}

// Rules returns the rule count.
func (f *Filter) Rules() int { return len(f.rules) }

// SimBytes returns the simulated footprint of the rule array.
func (f *Filter) SimBytes() uint64 { return f.region.Size() }

// Check scans the rules in order and returns the action of the first
// match, or Allow if nothing matches (default-allow, as in the paper's
// setup where crafted traffic matches no rule and is always forwarded
// after the full scan). Every examined rule emits its line load, so a
// no-match packet walks the entire array — the paper's worst case.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Element.Process)
func (f *Filter) Check(ctx *click.Ctx, ft netpkt.FiveTuple) (Action, bool) {
	old := ctx.SetFunc(fnFirewall)
	defer ctx.SetFunc(old)
	prevLine := ^hw.Addr(0) // sentinel: no line loaded yet
	for i := range f.rules {
		addr := f.region.Addr(i)
		if line := hw.LineOf(addr); line != prevLine {
			ctx.Load(line)
			prevLine = line
		}
		ctx.Compute(16, 14) // field comparisons and branches per rule
		f.Checked++
		if f.rules[i].Matches(ft) {
			f.Matched++
			return f.rules[i].Act, true
		}
	}
	return Allow, false
}

// CheckPlain is Check without trace emission, for tests.
func (f *Filter) CheckPlain(ft netpkt.FiveTuple) (Action, bool) {
	for i := range f.rules {
		if f.rules[i].Matches(ft) {
			return f.rules[i].Act, true
		}
	}
	return Allow, false
}

// NoMatchRules generates n deny rules that can never match generated
// traffic: their source prefixes sit in 240.0.0.0/4 (class E), which the
// traffic generators never emit... except that generators draw source
// addresses uniformly at random, so class-E sources do occur. The rules
// therefore additionally require a destination port range of [1,0], which
// is unsatisfiable. This reproduces the paper's setup where every packet
// is checked against all rules.
func NoMatchRules(n int, seed uint64) []Rule {
	r := rng.New(seed)
	rules := make([]Rule, n)
	for i := range rules {
		rules[i] = Rule{
			Src: 0xF0000000 | (r.Uint32() >> 4), SrcMask: 0xFFFFFF00,
			Dst: r.Uint32(), DstMask: 0xFFFF0000,
			PortLo: 1, PortHi: 0, // empty port range: unsatisfiable
			Proto: netpkt.ProtoTCP,
			Act:   Deny,
		}
	}
	return rules
}

// Element is the IPFilter click element.
type Element struct {
	Filter  *Filter
	Dropped uint64
}

// Class implements click.Element.
func (e *Element) Class() string { return "IPFilter" }

// Process implements click.Element.
func (e *Element) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	ft, err := netpkt.ExtractFiveTuple(p.Data)
	if err != nil {
		e.Dropped++
		return click.Drop
	}
	act, _ := e.Filter.Check(ctx, ft)
	if act == Deny {
		e.Dropped++
		return click.Drop
	}
	return click.Continue
}

// Stat implements click.Stats.
func (e *Element) Stat(name string) (uint64, bool) {
	switch name {
	case "dropped":
		return e.Dropped, true
	case "checked":
		return e.Filter.Checked, true
	case "matched":
		return e.Filter.Matched, true
	}
	return 0, false
}

func init() {
	click.Register("IPFilter", func(env *click.Env, args click.Args) (interface{}, error) {
		n, err := args.Int("RULES", 1000)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("firewall: RULES must be positive")
		}
		seed, err := args.Uint64("SEED", env.Seed)
		if err != nil {
			return nil, err
		}
		return &Element{Filter: NewFilter(env.Arena, NoMatchRules(n, seed))}, nil
	})
}
