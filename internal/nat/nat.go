// Package nat implements a stateful source NAT (Click's IPRewriter
// role): each packet's inner 5-tuple is looked up in a flow table; on a
// miss an external port is allocated and a mapping inserted; the packet
// then has its source address and port rewritten in place with an
// incremental checksum update. The flow table is the NAT's contended
// structure — like NetFlow's it is memory-intensive but cacheable, and
// the per-packet probe-allocate-rewrite trace is what the workload
// contributes to the shared cache.
package nat

import (
	"fmt"
	"strconv"
	"strings"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
)

// fnNAT attributes NAT work in profiles.
var fnNAT = hw.RegisterFunc("nat_rewrite")

// mapping is one NAT binding: inner flow → external source port.
type mapping struct {
	key      netpkt.FiveTuple
	extPort  uint16
	used     bool
	lastSeen uint64
}

// maxProbes bounds a linear probe chain; a full chain evicts its
// least-recently-used binding, as a production NAT expires mappings
// under port pressure.
const maxProbes = 8

// firstPort is the lowest external port the allocator hands out.
const firstPort = 1024

// Table is the NAT flow table: open addressing with linear probing over
// line-sized mapping entries, plus a port-allocator cursor on its own
// bookkeeping line.
type Table struct {
	slots    []mapping
	region   mem.Region // mapping entries, one line each
	portLine hw.Addr    // port-allocator cursor line
	mask     uint64
	extIP    uint32
	nextPort uint32
	clock    uint64

	// Statistics.
	Lookups   uint64
	Hits      uint64
	Inserts   uint64
	Evictions uint64
}

// NewTable builds a table with capacity slots (rounded up to a power of
// two) allocated from arena, translating to external address extIP.
func NewTable(arena *mem.Arena, capacity int, extIP uint32) *Table {
	if capacity <= 0 {
		panic(fmt.Sprintf("nat: capacity %d must be positive", capacity))
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Table{
		slots:    make([]mapping, size),
		region:   mem.NewRegion(arena, size, hw.LineSize, true),
		portLine: arena.Alloc(hw.LineSize, hw.LineSize),
		mask:     uint64(size - 1),
		extIP:    extIP,
		nextPort: firstPort,
	}
}

// Size returns the slot count.
func (t *Table) Size() int { return len(t.slots) }

// ExtIP returns the external address mappings translate to.
func (t *Table) ExtIP() uint32 { return t.extIP }

// SimBytes returns the table's simulated footprint.
func (t *Table) SimBytes() uint64 { return t.region.Size() }

// Occupied returns the number of active mappings.
func (t *Table) Occupied() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].used {
			n++
		}
	}
	return n
}

// allocPort hands out the next external port, cycling through the
// dynamic range; the cursor lives on its own line, so every allocation
// is a load-modify-store of NAT bookkeeping state.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Translate)
func (t *Table) allocPort(ctx *click.Ctx) uint16 {
	ctx.Load(t.portLine)
	ctx.Store(t.portLine)
	port := uint16(t.nextPort)
	t.nextPort++
	if t.nextPort > 65535 {
		t.nextPort = firstPort
	}
	return port
}

// Translate returns the external source port bound to key, creating the
// binding on first sight. It emits the probe trace (one load per probed
// entry), the allocator trace on a miss, and the entry store for the
// touched mapping. created reports whether a new binding was made.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Element.Process)
func (t *Table) Translate(ctx *click.Ctx, key netpkt.FiveTuple) (port uint16, created bool) {
	old := ctx.SetFunc(fnNAT)
	defer ctx.SetFunc(old)

	t.clock++
	t.Lookups++
	h := key.Hash()
	ctx.Compute(30, 28) // tuple hash
	idx := h & t.mask
	victim := idx
	victimSeen := ^uint64(0)
	for probe := 0; probe < maxProbes; probe++ {
		slot := &t.slots[idx]
		ctx.Load(t.region.Addr(int(idx)))
		ctx.Compute(4, 5)
		if slot.used && slot.key == key {
			t.Hits++
			slot.lastSeen = t.clock
			ctx.Store(t.region.Addr(int(idx)))
			return slot.extPort, false
		}
		if !slot.used {
			t.Inserts++
			*slot = mapping{key: key, extPort: t.allocPort(ctx), used: true, lastSeen: t.clock}
			ctx.Store(t.region.Addr(int(idx)))
			return slot.extPort, true
		}
		if slot.lastSeen < victimSeen {
			victim, victimSeen = idx, slot.lastSeen
		}
		idx = (idx + 1) & t.mask
	}
	// Chain full: expire the least-recently-used probed binding.
	t.Evictions++
	t.Inserts++
	slot := &t.slots[victim]
	*slot = mapping{key: key, extPort: t.allocPort(ctx), used: true, lastSeen: t.clock}
	ctx.Store(t.region.Addr(int(victim)))
	return slot.extPort, true
}

// rewrite costs beyond the table work: field stores and the incremental
// checksum arithmetic.
const (
	rewriteCompute = 24
	rewriteInstrs  = 22
)

// Element is the IPRewriter click element: stateful source NAT.
type Element struct {
	Table *Table

	Rewritten uint64
	Dropped   uint64
}

// Class implements click.Element.
func (e *Element) Class() string { return "IPRewriter" }

// Process implements click.Element: look up (or create) the packet's
// binding and rewrite its source address and port in place.
func (e *Element) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	ft, err := netpkt.ExtractFiveTuple(p.Data)
	if err != nil {
		e.Dropped++
		return click.Drop
	}
	port, _ := e.Table.Translate(ctx, ft)
	old := ctx.SetFunc(fnNAT)
	if err := netpkt.RewriteSrc(p.Data, e.Table.extIP, port); err != nil {
		ctx.SetFunc(old)
		e.Dropped++
		return click.Drop
	}
	// The rewrite dirties the header's cache line(s).
	ctx.LoadBytes(p.Addr, netpkt.IPv4HeaderLen+2)
	ctx.StoreBytes(p.Addr, netpkt.IPv4HeaderLen+2)
	ctx.Compute(rewriteCompute, rewriteInstrs)
	ctx.SetFunc(old)
	e.Rewritten++
	return click.Continue
}

// Stat implements click.Stats.
func (e *Element) Stat(name string) (uint64, bool) {
	switch name {
	case "rewritten":
		return e.Rewritten, true
	case "dropped":
		return e.Dropped, true
	case "entries":
		return uint64(e.Table.Occupied()), true
	case "lookups":
		return e.Table.Lookups, true
	case "hits":
		return e.Table.Hits, true
	case "inserts":
		return e.Table.Inserts, true
	case "evictions":
		return e.Table.Evictions, true
	}
	return 0, false
}

// ParseAddr converts a dotted-quad IPv4 address to its uint32 form.
func ParseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("nat: %q is not a dotted-quad IPv4 address", s)
	}
	var addr uint32
	for _, part := range parts {
		n, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("nat: %q is not a dotted-quad IPv4 address", s)
		}
		addr = addr<<8 | uint32(n)
	}
	return addr, nil
}

func init() {
	click.Register("IPRewriter", func(env *click.Env, args click.Args) (interface{}, error) {
		capacity, err := args.Int("CAPACITY", 65536)
		if err != nil {
			return nil, err
		}
		if capacity <= 0 {
			return nil, fmt.Errorf("nat: CAPACITY must be positive")
		}
		extIP, err := ParseAddr(args.String("EXTIP", "198.51.100.1"))
		if err != nil {
			return nil, err
		}
		return &Element{Table: NewTable(env.Arena, capacity, extIP)}, nil
	})
}
