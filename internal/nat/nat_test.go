package nat

import (
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
)

func newTable(capacity int) *Table {
	extIP, _ := ParseAddr("198.51.100.1")
	return NewTable(mem.NewArena(0), capacity, extIP)
}

func tuple(srcPort uint16) netpkt.FiveTuple {
	return netpkt.FiveTuple{
		Src: 0x0a000001, Dst: 0x0a000002,
		SrcPort: srcPort, DstPort: 80, Proto: netpkt.ProtoTCP,
	}
}

func TestTableAllocatesStablePorts(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	p1, created := tb.Translate(&ctx, tuple(1000))
	if !created {
		t.Fatal("first sight of a flow must create a binding")
	}
	p2, created := tb.Translate(&ctx, tuple(2000))
	if !created || p2 == p1 {
		t.Fatalf("second flow got port %d (first %d)", p2, p1)
	}
	// Same flow again: same port, no new binding.
	again, created := tb.Translate(&ctx, tuple(1000))
	if created || again != p1 {
		t.Fatalf("repeat lookup got port %d created=%v, want %d/false", again, created, p1)
	}
	if tb.Occupied() != 2 || tb.Inserts != 2 || tb.Hits != 1 {
		t.Fatalf("table state: occ=%d inserts=%d hits=%d", tb.Occupied(), tb.Inserts, tb.Hits)
	}
}

func TestTableEvictsLRUUnderPressure(t *testing.T) {
	tb := newTable(8)
	var ctx click.Ctx
	// Far more flows than slots: probe chains fill and evict.
	for i := 0; i < 1000; i++ {
		tb.Translate(&ctx, tuple(uint16(i)))
	}
	if tb.Evictions == 0 {
		t.Fatal("overloaded table never evicted")
	}
	if tb.Occupied() > tb.Size() {
		t.Fatalf("occupied %d exceeds size %d", tb.Occupied(), tb.Size())
	}
}

func TestTableEmitsTrace(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	tb.Translate(&ctx, tuple(7))
	var loads, stores int
	for _, op := range ctx.Ops {
		switch op.Kind {
		case hw.OpLoad:
			loads++
		case hw.OpStore:
			stores++
		}
	}
	// At least one probe load, the allocator load, the allocator store,
	// and the entry store.
	if loads < 2 || stores < 2 {
		t.Fatalf("trace too thin: %d loads, %d stores", loads, stores)
	}
}

func natPacket(srcPort uint16) []byte {
	b := make([]byte, 64)
	netpkt.WriteIPv4(b, netpkt.IPv4Header{
		TotalLen: 64, TTL: 64, Proto: netpkt.ProtoTCP,
		Src: 0x0a000001, Dst: 0x0a000002,
	})
	b[netpkt.IPv4HeaderLen] = byte(srcPort >> 8)
	b[netpkt.IPv4HeaderLen+1] = byte(srcPort)
	b[netpkt.IPv4HeaderLen+2] = 0
	b[netpkt.IPv4HeaderLen+3] = 80
	return b
}

func TestElementRewritesAndChecksumStaysValid(t *testing.T) {
	el := &Element{Table: newTable(64)}
	var ctx click.Ctx
	pkt := &click.Packet{Data: natPacket(1234), Addr: 0x4000}
	if v := el.Process(&ctx, pkt); v != click.Continue {
		t.Fatalf("verdict %v", v)
	}
	h, err := netpkt.ParseIPv4(pkt.Data)
	if err != nil {
		t.Fatalf("rewritten packet invalid: %v", err)
	}
	if h.Src != el.Table.ExtIP() {
		t.Fatalf("src %08x, want external %08x", h.Src, el.Table.ExtIP())
	}
	ft, _ := netpkt.ExtractFiveTuple(pkt.Data)
	if ft.SrcPort == 1234 || ft.SrcPort == 0 {
		t.Fatalf("source port not rewritten: %d", ft.SrcPort)
	}

	// The same inner flow must map to the same external port.
	pkt2 := &click.Packet{Data: natPacket(1234), Addr: 0x4000}
	el.Process(&ctx, pkt2)
	ft2, _ := netpkt.ExtractFiveTuple(pkt2.Data)
	if ft2.SrcPort != ft.SrcPort {
		t.Fatalf("flow remapped: %d then %d", ft.SrcPort, ft2.SrcPort)
	}
	// A different inner flow must not share the port.
	pkt3 := &click.Packet{Data: natPacket(4321), Addr: 0x4000}
	el.Process(&ctx, pkt3)
	ft3, _ := netpkt.ExtractFiveTuple(pkt3.Data)
	if ft3.SrcPort == ft.SrcPort {
		t.Fatalf("distinct flows share external port %d", ft3.SrcPort)
	}
	if n, _ := el.Stat("rewritten"); n != 3 {
		t.Fatalf("rewritten = %d", n)
	}
}

func TestElementDropsGarbage(t *testing.T) {
	el := &Element{Table: newTable(8)}
	var ctx click.Ctx
	if v := el.Process(&ctx, &click.Packet{Data: []byte{1, 2}, Addr: 0}); v != click.Drop {
		t.Fatalf("garbage got %v", v)
	}
	if n, _ := el.Stat("dropped"); n != 1 {
		t.Fatalf("dropped = %d", n)
	}
}

func TestParseAddr(t *testing.T) {
	addr, err := ParseAddr("198.51.100.1")
	if err != nil || addr != 0xC6336401 {
		t.Fatalf("ParseAddr = %08x, %v", addr, err)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Fatalf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestRegistryBuildsRewriter(t *testing.T) {
	env := &click.Env{Arena: mem.NewArena(0), Seed: 1}
	inst, err := click.NewInstance(env, "IPRewriter", click.ParseArgs([]string{"EXTIP 10.0.0.254", "CAPACITY 128"}))
	if err != nil {
		t.Fatal(err)
	}
	el, ok := inst.(*Element)
	if !ok || el.Table.Size() != 128 {
		t.Fatalf("unexpected instance %T (size %d)", inst, el.Table.Size())
	}
	want, _ := ParseAddr("10.0.0.254")
	if el.Table.ExtIP() != want {
		t.Fatal("EXTIP not honoured")
	}
	if _, err := click.NewInstance(env, "IPRewriter", click.ParseArgs([]string{"EXTIP nonsense"})); err == nil {
		t.Fatal("bad EXTIP accepted")
	}
	if _, err := click.NewInstance(env, "IPRewriter", click.ParseArgs([]string{"CAPACITY -1"})); err == nil {
		t.Fatal("bad CAPACITY accepted")
	}
}
