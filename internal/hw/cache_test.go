package hw

import (
	"testing"
	"testing/quick"
)

func newTinyCache(t *testing.T, size, ways int, p ReplacementPolicy) *Cache {
	t.Helper()
	return NewCache("test", CacheGeom{SizeBytes: size, Ways: ways}, p)
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{SizeBytes: 12 << 20, Ways: 16}
	if got, want := g.Sets(), (12<<20)/64/16; got != want {
		t.Fatalf("Sets() = %d, want %d", got, want)
	}
}

func TestCacheGeomInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid geometry")
		}
	}()
	CacheGeom{SizeBytes: 100, Ways: 3}.Sets()
}

func TestCacheMissThenHit(t *testing.T) {
	c := newTinyCache(t, 1024, 2, ReplaceLRU)
	addr := Addr(0x1000)
	if c.Access(addr, false) {
		t.Fatal("cold access should miss")
	}
	c.Insert(addr, false)
	if !c.Access(addr, false) {
		t.Fatal("access after insert should hit")
	}
	if c.Stats.Refs != 2 || c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 refs / 1 hit / 1 miss", c.Stats)
	}
}

func TestCacheSameLineDifferentBytes(t *testing.T) {
	c := newTinyCache(t, 1024, 2, ReplaceLRU)
	c.Insert(0x40, false)
	if !c.Access(0x7f, false) {
		t.Fatal("byte 0x7f shares the line of 0x40 and should hit")
	}
	if c.Access(0x80, false) {
		t.Fatal("byte 0x80 is the next line and should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets: lines 0x00,0x80,0x100 map to set 0
	// (stride = sets*LineSize = 128).
	c := newTinyCache(t, 256, 2, ReplaceLRU)
	a, b, d := Addr(0x000), Addr(0x080), Addr(0x100)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Access(a, false) // a is now more recently used than b
	victim, _, evicted := c.Insert(d, false)
	if !evicted {
		t.Fatal("inserting into a full set must evict")
	}
	if victim != b {
		t.Fatalf("victim = %#x, want LRU line %#x", victim, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatalf("contents after eviction wrong: a=%v b=%v d=%v",
			c.Contains(a), c.Contains(b), c.Contains(d))
	}
}

func TestCacheInsertExistingRefreshesLRU(t *testing.T) {
	c := newTinyCache(t, 256, 2, ReplaceLRU)
	a, b, d := Addr(0x000), Addr(0x080), Addr(0x100)
	c.Insert(a, false)
	c.Insert(b, false)
	// Re-inserting a must not evict and must refresh its recency.
	if _, _, evicted := c.Insert(a, false); evicted {
		t.Fatal("re-inserting a resident line must not evict")
	}
	victim, _, _ := c.Insert(d, false)
	if victim != b {
		t.Fatalf("victim = %#x, want %#x (a was refreshed)", victim, b)
	}
}

func TestCacheDirtyEvictionReportsWriteback(t *testing.T) {
	c := newTinyCache(t, 256, 1, ReplaceLRU) // direct-mapped, 4 sets
	a := Addr(0x000)
	conflict := Addr(0x100) // same set as a (stride 256)
	c.Insert(a, true)
	victim, dirty, evicted := c.Insert(conflict, false)
	if !evicted || victim != a || !dirty {
		t.Fatalf("got victim=%#x dirty=%v evicted=%v, want victim=%#x dirty evicted", victim, dirty, evicted, a)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheWriteAccessMarksDirty(t *testing.T) {
	c := newTinyCache(t, 256, 1, ReplaceLRU)
	a := Addr(0x000)
	c.Insert(a, false)
	c.Access(a, true) // write hit marks dirty
	_, dirty, _ := c.Insert(0x100, false)
	if !dirty {
		t.Fatal("write-hit line must be evicted dirty")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newTinyCache(t, 256, 2, ReplaceLRU)
	a := Addr(0x40)
	c.Insert(a, true)
	present, dirty := c.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(a) {
		t.Fatal("line still present after Invalidate")
	}
	if present, _ := c.Invalidate(a); present {
		t.Fatal("second Invalidate must report absent")
	}
}

func TestCacheMarkDirty(t *testing.T) {
	c := newTinyCache(t, 256, 2, ReplaceLRU)
	a := Addr(0x40)
	if c.MarkDirty(a) {
		t.Fatal("MarkDirty on absent line must return false")
	}
	c.Insert(a, false)
	if !c.MarkDirty(a) {
		t.Fatal("MarkDirty on resident line must return true")
	}
	if _, dirty := c.Invalidate(a); !dirty {
		t.Fatal("line must be dirty after MarkDirty")
	}
}

func TestCacheFlush(t *testing.T) {
	c := newTinyCache(t, 1024, 4, ReplaceLRU)
	for i := 0; i < 64; i++ {
		c.Insert(Addr(i*LineSize), i%2 == 0)
	}
	c.Flush()
	if c.ValidLines() != 0 {
		t.Fatalf("ValidLines after Flush = %d, want 0", c.ValidLines())
	}
	if c.Stats != (CacheStats{}) {
		t.Fatalf("stats not reset: %+v", c.Stats)
	}
}

func TestCacheCapacityNeverExceeded(t *testing.T) {
	c := newTinyCache(t, 2048, 4, ReplaceLRU)
	total := c.Sets() * c.Ways()
	for i := 0; i < 10*total; i++ {
		c.Insert(Addr(i)*LineSize*7, false)
	}
	if got := c.ValidLines(); got > total {
		t.Fatalf("ValidLines = %d exceeds capacity %d", got, total)
	}
}

func TestCacheRandomPolicyStaysWithinSet(t *testing.T) {
	c := newTinyCache(t, 256, 2, ReplaceRandom)
	// Fill set 0, then insert more set-0 lines; the survivor set must
	// always contain the newly inserted line.
	c.Insert(0x000, false)
	c.Insert(0x080, false)
	for i := 2; i < 50; i++ {
		a := Addr(i * 0x80)
		c.Insert(a, false)
		if !c.Contains(a) {
			t.Fatalf("inserted line %#x not present", a)
		}
	}
}

// Property: after any access sequence, hits+misses == refs, and the number
// of valid lines never exceeds capacity.
func TestCacheStatsInvariantQuick(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := NewCache("q", CacheGeom{SizeBytes: 1024, Ways: 2}, ReplaceLRU)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			addr := Addr(a)
			if !c.Access(addr, w) {
				c.Insert(addr, w)
			}
		}
		capacity := c.Sets() * c.Ways()
		return c.Stats.Hits+c.Stats.Misses == c.Stats.Refs && c.ValidLines() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: immediately re-accessing the line just inserted always hits.
func TestCacheInsertThenAccessHitsQuick(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache("q", CacheGeom{SizeBytes: 4096, Ways: 4}, ReplaceLRU)
		for _, a := range addrs {
			addr := Addr(a)
			if !c.Access(addr, false) {
				c.Insert(addr, false)
			}
			if !c.Access(addr, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an MRU-ordered working set no larger than one set's ways never
// misses after the first pass (LRU guarantees retention).
func TestCacheLRURetentionQuick(t *testing.T) {
	f := func(seed uint8) bool {
		c := NewCache("q", CacheGeom{SizeBytes: 2048, Ways: 4}, ReplaceLRU)
		// 4 lines, all in the same set: stride = sets * LineSize.
		stride := Addr(c.Sets() * LineSize)
		base := Addr(seed) * stride * 16
		lines := []Addr{base, base + stride, base + 2*stride, base + 3*stride}
		for pass := 0; pass < 3; pass++ {
			for _, a := range lines {
				hit := c.Access(a, false)
				if !hit {
					if pass > 0 {
						return false // working set fits; must never miss again
					}
					c.Insert(a, false)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
