package hw

import (
	"testing"
	"unsafe"
)

// The attribution table's cells must each own a full cache line:
// neighbouring elements are written from the same core today, but the
// padding is what keeps the layout safe if tables are ever sharded.
func TestElemCellIsOneCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(ElemCell{}); s != 64 {
		t.Fatalf("ElemCell is %d bytes, want 64", s)
	}
}

// Every cycle the core charges must land in exactly one element cell
// (slot 0 for untagged overhead), so table column sums reconcile with
// the core's counters — the invariant the runtime's window accounting
// builds on.
func TestElemAttributionReconcilesCounters(t *testing.T) {
	p := NewPlatform(smallConfig())
	c := p.Cores[0]
	table := make([]ElemCell, 3)
	c.SetElemTable(table)

	base := DomainBase(0)
	ops := []Op{
		{Kind: OpCompute, Cycles: 100, Instrs: 40, Elem: 1},
		{Kind: OpLoad, Addr: base + 0x40, Elem: 1},
		{Kind: OpStore, Addr: base + 0x80, Elem: 2},
		{Kind: OpLoadStream, Addr: base + 0x4000, Elem: 2},
		{Kind: OpCompute, Cycles: 7, Instrs: 3}, // untagged → overhead slot
		{Kind: OpDMAWrite, Addr: base + 0xc0},   // NIC work: no core cycles
	}
	c.ExecOps(ops)

	var cyc, refs, hits, misses uint64
	for _, cell := range table {
		cyc += cell.Cycles
		refs += cell.L3Refs
		hits += cell.L3Hits
		misses += cell.L3Misses
	}
	cnt := c.Counters
	if cyc != cnt.Cycles {
		t.Fatalf("element cycles sum %d != core cycles %d", cyc, cnt.Cycles)
	}
	if refs != cnt.L3Refs || hits != cnt.L3Hits || misses != cnt.L3Misses {
		t.Fatalf("element L3 sums (%d/%d/%d) != core counters (%d/%d/%d)",
			refs, hits, misses, cnt.L3Refs, cnt.L3Hits, cnt.L3Misses)
	}
	if table[0].Cycles != 7 {
		t.Fatalf("overhead slot charged %d cycles, want 7", table[0].Cycles)
	}
	if table[1].Cycles == 0 || table[1].L3Refs == 0 {
		t.Fatalf("element 1 cell empty: %+v", table[1])
	}
	if table[2].L3Refs != 2 {
		t.Fatalf("element 2 saw %d L3 refs, want 2 (cold store + stream load)", table[2].L3Refs)
	}

	// Removing the table must not disturb counting.
	c.SetElemTable(nil)
	before := table[0]
	c.ExecOps([]Op{{Kind: OpCompute, Cycles: 5, Instrs: 1}})
	if table[0] != before {
		t.Fatal("ops executed after SetElemTable(nil) still wrote the table")
	}
}

func BenchmarkExecOpsElemTable(b *testing.B) {
	p := NewPlatform(smallConfig())
	c := p.Cores[0]
	base := DomainBase(0)
	ops := []Op{
		{Kind: OpCompute, Cycles: 40, Instrs: 20, Elem: 1},
		{Kind: OpLoad, Addr: base + 0x40, Elem: 2},
		{Kind: OpStore, Addr: base + 0x80, Elem: 3},
	}
	for _, bc := range []struct {
		name  string
		table []ElemCell
	}{
		{"no-table", nil},
		{"table", make([]ElemCell, 8)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c.SetElemTable(bc.table)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.ExecOps(ops)
			}
		})
	}
}
