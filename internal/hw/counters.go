package hw

// FuncCounters attributes memory-hierarchy events to one logical
// processing function, mirroring OProfile's per-symbol accounting used for
// the paper's Figure 7.
type FuncCounters struct {
	Cycles   uint64
	L3Refs   uint64
	L3Hits   uint64
	L3Misses uint64
}

// Counters is the per-core performance-counter block. It is a plain value
// type: snapshotting is a struct copy and deltas are element-wise
// subtraction, which is how measurement windows are implemented.
type Counters struct {
	Cycles       uint64 // virtual time consumed by the flow on this core
	Instructions uint64
	Packets      uint64 // packets whose trace fully executed

	L1Refs uint64
	L1Hits uint64
	L2Refs uint64
	L2Hits uint64

	L3Refs   uint64
	L3Hits   uint64
	L3Misses uint64

	RemoteRefs uint64 // L3 misses served by a remote NUMA domain

	MemQueueCycles uint64 // cycles spent waiting in memory-controller queues
	QPIQueueCycles uint64 // cycles spent waiting for the interconnect

	Func [MaxFuncs]FuncCounters
}

// Sub returns the element-wise difference c - prev, used to extract the
// events of a measurement window from two snapshots.
func (c Counters) Sub(prev Counters) Counters {
	d := Counters{
		Cycles:         c.Cycles - prev.Cycles,
		Instructions:   c.Instructions - prev.Instructions,
		Packets:        c.Packets - prev.Packets,
		L1Refs:         c.L1Refs - prev.L1Refs,
		L1Hits:         c.L1Hits - prev.L1Hits,
		L2Refs:         c.L2Refs - prev.L2Refs,
		L2Hits:         c.L2Hits - prev.L2Hits,
		L3Refs:         c.L3Refs - prev.L3Refs,
		L3Hits:         c.L3Hits - prev.L3Hits,
		L3Misses:       c.L3Misses - prev.L3Misses,
		RemoteRefs:     c.RemoteRefs - prev.RemoteRefs,
		MemQueueCycles: c.MemQueueCycles - prev.MemQueueCycles,
		QPIQueueCycles: c.QPIQueueCycles - prev.QPIQueueCycles,
	}
	for i := range d.Func {
		d.Func[i] = FuncCounters{
			Cycles:   c.Func[i].Cycles - prev.Func[i].Cycles,
			L3Refs:   c.Func[i].L3Refs - prev.Func[i].L3Refs,
			L3Hits:   c.Func[i].L3Hits - prev.Func[i].L3Hits,
			L3Misses: c.Func[i].L3Misses - prev.Func[i].L3Misses,
		}
	}
	return d
}

// Each calls fn with every headline counter's name and value in a fixed
// order — the enumeration an exposition layer publishes, so a new
// counter added here shows up on every scrape without the exporter
// naming it by hand. Per-function counters are excluded; use Func and
// FuncName for those.
func (c Counters) Each(fn func(name string, v uint64)) {
	fn("cycles", c.Cycles)
	fn("instructions", c.Instructions)
	fn("packets", c.Packets)
	fn("l1_refs", c.L1Refs)
	fn("l1_hits", c.L1Hits)
	fn("l2_refs", c.L2Refs)
	fn("l2_hits", c.L2Hits)
	fn("l3_refs", c.L3Refs)
	fn("l3_hits", c.L3Hits)
	fn("l3_misses", c.L3Misses)
	fn("remote_refs", c.RemoteRefs)
	fn("mem_queue_cycles", c.MemQueueCycles)
	fn("qpi_queue_cycles", c.QPIQueueCycles)
}

// CPI returns cycles per retired instruction.
func (c Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instructions)
}

// PerPacket divides an event count by the packets in the window.
func (c Counters) PerPacket(events uint64) float64 {
	if c.Packets == 0 {
		return 0
	}
	return float64(events) / float64(c.Packets)
}
