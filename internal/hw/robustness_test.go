package hw

import (
	"testing"
	"testing/quick"
)

// Robustness and invariant tests across the hw package: counter algebra,
// derived statistics, function registry, and cross-configuration
// determinism.

func TestCountersSubRoundTrip(t *testing.T) {
	a := Counters{Cycles: 100, Instructions: 80, Packets: 3, L3Refs: 20, L3Hits: 15, L3Misses: 5}
	a.Func[1] = FuncCounters{Cycles: 10, L3Refs: 4, L3Hits: 3, L3Misses: 1}
	zero := Counters{}
	if a.Sub(zero) != a {
		t.Fatal("X - 0 must equal X")
	}
	if d := a.Sub(a); d != zero {
		t.Fatalf("X - X must be zero, got %+v", d)
	}
}

func TestCountersDerived(t *testing.T) {
	c := Counters{Cycles: 200, Instructions: 100, Packets: 4, L3Refs: 8}
	if c.CPI() != 2.0 {
		t.Fatalf("CPI = %v", c.CPI())
	}
	if c.PerPacket(c.L3Refs) != 2.0 {
		t.Fatalf("PerPacket = %v", c.PerPacket(c.L3Refs))
	}
	var empty Counters
	if empty.CPI() != 0 || empty.PerPacket(5) != 0 {
		t.Fatal("zero-division guards missing")
	}
}

func TestFlowStatsDerivations(t *testing.T) {
	st := NewFlowStats("x", Counters{
		Packets: 1000, Cycles: 2_800_000, Instructions: 2_000_000,
		L3Refs: 10_000, L3Hits: 8_000, L3Misses: 2_000, L2Hits: 5_000,
	}, 2_800_000, 2.8e9)
	if st.Seconds != 0.001 {
		t.Fatalf("Seconds = %v", st.Seconds)
	}
	if st.Throughput() != 1e6 {
		t.Fatalf("Throughput = %v", st.Throughput())
	}
	if st.L3RefsPerSec() != 1e7 {
		t.Fatalf("L3RefsPerSec = %v", st.L3RefsPerSec())
	}
	if st.HitRate() != 0.8 {
		t.Fatalf("HitRate = %v", st.HitRate())
	}
	if st.L2HitsPerPacket() != 5 {
		t.Fatalf("L2HitsPerPacket = %v", st.L2HitsPerPacket())
	}
	var zero FlowStats
	if zero.Throughput() != 0 || zero.HitRate() != 0 || zero.CPI() != 0 {
		t.Fatal("zero-value stats must not divide by zero")
	}
}

func TestFuncRegistry(t *testing.T) {
	a := RegisterFunc("robustness_test_fn")
	b := RegisterFunc("robustness_test_fn")
	if a != b {
		t.Fatal("re-registration must return the same id")
	}
	if FuncName(a) != "robustness_test_fn" {
		t.Fatalf("FuncName = %q", FuncName(a))
	}
	if FuncName(FuncID(200)) != "other" {
		t.Fatal("unknown ids must name as other")
	}
	names := FuncNames()
	if names[0] != "other" {
		t.Fatalf("id 0 must be other, got %q", names[0])
	}
}

func TestAddrHelpers(t *testing.T) {
	if DomainOf(DomainBase(1)+123) != 1 {
		t.Fatal("DomainOf(DomainBase(1)+x) != 1")
	}
	if LineOf(0x7f) != 0x40 {
		t.Fatalf("LineOf(0x7f) = %#x", LineOf(0x7f))
	}
	cases := []struct {
		addr Addr
		n    int
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 64, 1}, {0, 65, 2}, {63, 2, 2}, {64, 64, 1},
	}
	for _, c := range cases {
		if got := LinesSpanned(c.addr, c.n); got != c.want {
			t.Fatalf("LinesSpanned(%#x,%d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

// Property: per-core counters are internally consistent after arbitrary
// access sequences: L1 refs = L1 hits + L2 refs, L2 refs = L2 hits + L3
// refs, L3 refs = L3 hits + misses.
func TestCounterHierarchyInvariantQuick(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		cfg := smallConfig()
		p := NewPlatform(cfg)
		core := p.Cores[0]
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			core.Access(uint64(i), Addr(a%(1<<22)), w, FuncOther)
		}
		c := core.Counters
		return c.L1Refs == c.L1Hits+c.L2Refs &&
			c.L2Refs == c.L2Hits+c.L3Refs &&
			c.L3Refs == c.L3Hits+c.L3Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-function L3 counters sum to the core totals.
func TestFuncAttributionSumsQuick(t *testing.T) {
	fnA := RegisterFunc("attr_sum_a")
	fnB := RegisterFunc("attr_sum_b")
	f := func(addrs []uint16) bool {
		cfg := smallConfig()
		p := NewPlatform(cfg)
		core := p.Cores[0]
		for i, a := range addrs {
			fn := fnA
			if i%2 == 1 {
				fn = fnB
			}
			core.Access(uint64(i), Addr(a), false, fn)
		}
		c := core.Counters
		var refs, hits, misses uint64
		for i := range c.Func {
			refs += c.Func[i].L3Refs
			hits += c.Func[i].L3Hits
			misses += c.Func[i].L3Misses
		}
		return refs == c.L3Refs && hits == c.L3Hits && misses == c.L3Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical op streams produce identical platform-wide state
// regardless of which socket the flow runs on (with domain-local data).
func TestSocketSymmetryQuick(t *testing.T) {
	f := func(seed uint64) bool {
		run := func(socket int) Counters {
			cfg := smallConfig()
			p := NewPlatform(cfg)
			e := NewEngine(p)
			coreID := socket * cfg.CoresPerSocket
			base := DomainBase(socket)
			e.Attach(coreID, "t", stridedSource(base+Addr(seed%4096)*LineSize, 512, 8))
			e.RunUntil(200_000)
			return p.Cores[coreID].Counters
		}
		return run(0) == run(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TotalCores() != 12 {
		t.Fatalf("TotalCores = %d", cfg.TotalCores())
	}
	if cfg.CyclesToSeconds(cfg.SecondsToCycles(0.5)) != 0.5 {
		t.Fatal("cycle/second conversion must round-trip")
	}
}

func TestStreamLoadCheaperThanLoad(t *testing.T) {
	cfg := smallConfig()
	run := func(kind OpKind) uint64 {
		p := NewPlatform(cfg)
		e := NewEngine(p)
		n := 0
		e.Attach(0, "t", SourceFunc(func(buf []Op) []Op {
			if n >= 256 {
				return buf
			}
			n++
			return append(buf, Op{Kind: kind, Addr: Addr(n * 64 * 1024)})
		}))
		e.RunUntil(1 << 40)
		return p.Cores[0].Counters.Cycles
	}
	serial := run(OpLoad)
	stream := run(OpLoadStream)
	if stream*2 >= serial {
		t.Fatalf("stream loads (%d cycles) must be much cheaper than serial (%d)", stream, serial)
	}
}

func TestEngineUnknownOpPanics(t *testing.T) {
	p := NewPlatform(smallConfig())
	e := NewEngine(p)
	e.Attach(0, "bad", SourceFunc(func(buf []Op) []Op {
		return append(buf, Op{Kind: OpKind(99)})
	}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown op kind")
		}
	}()
	e.RunUntil(1000)
}
