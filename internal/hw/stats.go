package hw

// FlowStats is the per-flow result of a measurement window: the raw
// counter deltas plus the rates the paper reports (packets/sec, cache
// refs/sec, hits/sec) and the per-packet characteristics of Table 1.
type FlowStats struct {
	Label   string
	Raw     Counters
	Seconds float64 // window length in virtual seconds
}

// NewFlowStats derives statistics from a counter delta over a window of
// elapsedCycles at the given clock.
func NewFlowStats(label string, delta Counters, elapsedCycles uint64, clockHz float64) FlowStats {
	return FlowStats{
		Label:   label,
		Raw:     delta,
		Seconds: float64(elapsedCycles) / clockHz,
	}
}

func (s FlowStats) perSec(v uint64) float64 {
	if s.Seconds == 0 {
		return 0
	}
	return float64(v) / s.Seconds
}

// Throughput returns packets per virtual second.
func (s FlowStats) Throughput() float64 { return s.perSec(s.Raw.Packets) }

// L3RefsPerSec returns last-level-cache references per virtual second —
// the paper's "cache refs/sec", the quantity that determines a workload's
// aggressiveness (Section 3.2, observation b).
func (s FlowStats) L3RefsPerSec() float64 { return s.perSec(s.Raw.L3Refs) }

// L3HitsPerSec returns last-level-cache hits per virtual second — the
// quantity that determines a flow's sensitivity to contention
// (Section 3.2, observation a).
func (s FlowStats) L3HitsPerSec() float64 { return s.perSec(s.Raw.L3Hits) }

// L3MissesPerSec returns last-level-cache misses per virtual second.
func (s FlowStats) L3MissesPerSec() float64 { return s.perSec(s.Raw.L3Misses) }

// CPI returns cycles per instruction over the window.
func (s FlowStats) CPI() float64 { return s.Raw.CPI() }

// CyclesPerPacket returns core cycles consumed per processed packet.
func (s FlowStats) CyclesPerPacket() float64 { return s.Raw.PerPacket(s.Raw.Cycles) }

// L3RefsPerPacket returns L3 references per packet.
func (s FlowStats) L3RefsPerPacket() float64 { return s.Raw.PerPacket(s.Raw.L3Refs) }

// L3MissesPerPacket returns L3 misses per packet.
func (s FlowStats) L3MissesPerPacket() float64 { return s.Raw.PerPacket(s.Raw.L3Misses) }

// L3HitsPerPacket returns L3 hits per packet.
func (s FlowStats) L3HitsPerPacket() float64 { return s.Raw.PerPacket(s.Raw.L3Hits) }

// L2HitsPerPacket returns L2 hits per packet.
func (s FlowStats) L2HitsPerPacket() float64 { return s.Raw.PerPacket(s.Raw.L2Hits) }

// HitRate returns the L3 hit fraction of L3 references.
func (s FlowStats) HitRate() float64 {
	if s.Raw.L3Refs == 0 {
		return 0
	}
	return float64(s.Raw.L3Hits) / float64(s.Raw.L3Refs)
}

// PerformanceDrop returns the relative throughput drop of s versus a solo
// baseline, the paper's central metric: (τs − τc)/τs.
func PerformanceDrop(solo, contended FlowStats) float64 {
	ts := solo.Throughput()
	if ts == 0 {
		return 0
	}
	return (ts - contended.Throughput()) / ts
}

// FuncStats summarises one attribution function's events over a window.
type FuncStats struct {
	Name     string
	Cycles   uint64
	L3Refs   uint64
	L3Hits   uint64
	L3Misses uint64
}

// FuncBreakdown returns per-function statistics for all registered
// functions that observed at least one event in the window.
func (s FlowStats) FuncBreakdown() []FuncStats {
	names := FuncNames()
	var out []FuncStats
	for id, name := range names {
		fc := s.Raw.Func[id]
		if fc.Cycles == 0 && fc.L3Refs == 0 {
			continue
		}
		out = append(out, FuncStats{
			Name:     name,
			Cycles:   fc.Cycles,
			L3Refs:   fc.L3Refs,
			L3Hits:   fc.L3Hits,
			L3Misses: fc.L3Misses,
		})
	}
	return out
}
