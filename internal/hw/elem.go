package hw

// Per-element cost attribution. FuncID covers the coarse per-function
// profile the paper's Figure 7 needs (at most 32 registered names,
// shared across every flow), but online profile-drift detection needs a
// second, finer axis: which *Click element* of which pipeline accrued
// the cycles and cache references of a control window. Elements are
// per-flow and unbounded in number, so instead of a global registry each
// flow owns a dense table of ElemCells and tags every emitted Op with a
// table slot (Op.Elem). Slot 0 is the flow's overhead slot — source
// pulls, ring manipulation, recycling, anything emitted outside an
// element's Process bracket — so the table's column sums reconcile
// exactly with the core's executed-cycle counters.
//
// The table is installed on a Core with SetElemTable and written only by
// that core's goroutine (the runtime re-installs it when a re-placement
// swap re-binds flows), read only at quantum barriers while workers are
// parked: single-writer, no atomics, and each cell is padded to one
// cache line so neighbouring slots never false-share.

// ElemCell accumulates one element's execution cost: cycles charged by
// every op tagged with the element's slot, and the L3 traffic those ops
// generated. Padded to exactly one 64-byte cache line.
//
//dataplane:cell
type ElemCell struct {
	Cycles   uint64
	L3Refs   uint64
	L3Hits   uint64
	L3Misses uint64
	_        [4]uint64 // pad to one cache line
}

// Sub returns the element-wise difference c − prev, for window deltas.
func (c ElemCell) Sub(prev ElemCell) ElemCell {
	return ElemCell{
		Cycles:   c.Cycles - prev.Cycles,
		L3Refs:   c.L3Refs - prev.L3Refs,
		L3Hits:   c.L3Hits - prev.L3Hits,
		L3Misses: c.L3Misses - prev.L3Misses,
	}
}

// SetElemTable installs (or, with nil, removes) the per-element
// attribution table for ops executed on this core. Ops index the table
// by Op.Elem, so every tagged op's slot must be < len(t); the table's
// owner keeps writing rights — call only while the core is not
// executing (setup, or a quantum barrier).
func (c *Core) SetElemTable(t []ElemCell) { c.elems = t }
