package hw

import "fmt"

// CacheGeom describes the geometry of one cache level.
type CacheGeom struct {
	SizeBytes int // total capacity
	Ways      int // associativity; 1 means direct-mapped
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int {
	lines := g.SizeBytes / LineSize
	if g.Ways <= 0 || lines == 0 || lines%g.Ways != 0 {
		panic(fmt.Sprintf("hw: invalid cache geometry %+v", g))
	}
	return lines / g.Ways
}

// ReplacementPolicy selects how a victim way is chosen on insertion.
// The platform's caches use (pseudo-)LRU; the alternatives exist for the
// ablation benchmarks that quantify how much of the paper's behaviour
// depends on the replacement policy.
type ReplacementPolicy uint8

const (
	// ReplaceLRU evicts the least-recently-used way.
	ReplaceLRU ReplacementPolicy = iota
	// ReplaceRandom evicts a deterministically pseudo-random way.
	ReplaceRandom
)

type cacheLine struct {
	tag   uint64 // full line address (addr >> LineShift); valid if tag != invalidTag
	stamp uint64 // last-use time for LRU ordering
	dirty bool
}

const invalidTag = ^uint64(0)

// CacheStats aggregates the events observed by one cache instance.
// For shared caches these are totals across all accessing cores; per-core
// attribution lives in Counters.
type CacheStats struct {
	Refs       uint64 // lookups via Access
	Hits       uint64
	Misses     uint64
	Evictions  uint64 // valid lines displaced by Insert
	Writebacks uint64 // dirty lines displaced or invalidated
}

// Cache is a set-associative, write-back, write-allocate cache with a
// configurable replacement policy. It models presence and recency only;
// latency is charged by the access path in Platform, and coherence across
// private caches is handled by the inclusive-L3 back-invalidation logic.
//
// The zero value is not usable; construct with NewCache.
type Cache struct {
	Name   string
	Stats  CacheStats
	lines  []cacheLine
	sets   uint64
	ways   int
	policy ReplacementPolicy
	clock  uint64 // monotonically increasing use stamp
	rng    uint64 // state for ReplaceRandom victim selection
}

// NewCache builds a cache with the given geometry and replacement policy.
func NewCache(name string, g CacheGeom, policy ReplacementPolicy) *Cache {
	sets := g.Sets()
	c := &Cache{
		Name:   name,
		lines:  make([]cacheLine, sets*g.Ways),
		sets:   uint64(sets),
		ways:   g.Ways,
		policy: policy,
		rng:    0x9e3779b97f4a7c15,
	}
	for i := range c.lines {
		c.lines[i].tag = invalidTag
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return int(c.sets) * c.ways * LineSize }

func (c *Cache) setOf(lineAddr uint64) int {
	return int(lineAddr%c.sets) * c.ways
}

// Access looks up the line containing addr, updating recency and counting
// the reference. If write is true and the line is present it is marked
// dirty. It returns whether the access hit.
func (c *Cache) Access(addr Addr, write bool) bool {
	line := uint64(addr >> LineShift)
	base := c.setOf(line)
	c.Stats.Refs++
	c.clock++
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == line {
			c.lines[i].stamp = c.clock
			if write {
				c.lines[i].dirty = true
			}
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Contains reports whether the line containing addr is present, without
// updating recency or statistics. It is intended for tests and assertions.
func (c *Cache) Contains(addr Addr) bool {
	line := uint64(addr >> LineShift)
	base := c.setOf(line)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == line {
			return true
		}
	}
	return false
}

// Insert fills the line containing addr, evicting a victim if the set is
// full. It returns the victim's address and dirtiness when a valid line
// was displaced. Inserting a line that is already present refreshes its
// recency (and dirtiness if dirty is true) without eviction.
func (c *Cache) Insert(addr Addr, dirty bool) (victim Addr, victimDirty, evicted bool) {
	line := uint64(addr >> LineShift)
	base := c.setOf(line)
	c.clock++

	victimIdx := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.tag == line {
			l.stamp = c.clock
			if dirty {
				l.dirty = true
			}
			return 0, false, false
		}
		if l.tag == invalidTag {
			// Prefer an invalid way; mark it as the victim and stop
			// considering occupied ways.
			victimIdx = i
			oldest = 0
		} else if oldest != 0 && l.stamp < oldest {
			victimIdx = i
			oldest = l.stamp
		}
	}
	if oldest != 0 && c.policy == ReplaceRandom {
		// xorshift64* victim selection: deterministic, seed-independent of
		// workload content.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		victimIdx = base + int(c.rng%uint64(c.ways))
	}
	v := &c.lines[victimIdx]
	if v.tag != invalidTag {
		c.Stats.Evictions++
		if v.dirty {
			c.Stats.Writebacks++
		}
		victim = Addr(v.tag << LineShift)
		victimDirty = v.dirty
		evicted = true
	}
	v.tag = line
	v.stamp = c.clock
	v.dirty = dirty
	return victim, victimDirty, evicted
}

// Invalidate removes the line containing addr if present, returning
// whether it was present and whether it was dirty. Dirty invalidations
// are counted as writebacks.
func (c *Cache) Invalidate(addr Addr) (present, dirty bool) {
	line := uint64(addr >> LineShift)
	base := c.setOf(line)
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.tag == line {
			present = true
			dirty = l.dirty
			if dirty {
				c.Stats.Writebacks++
			}
			l.tag = invalidTag
			l.dirty = false
			return present, dirty
		}
	}
	return false, false
}

// MarkDirty marks the line containing addr dirty if present, returning
// whether it was present. It models a write-back arriving from an inner
// cache level.
func (c *Cache) MarkDirty(addr Addr) bool {
	line := uint64(addr >> LineShift)
	base := c.setOf(line)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == line {
			c.lines[i].dirty = true
			return true
		}
	}
	return false
}

// ValidLines returns the number of currently valid lines, for tests and
// occupancy diagnostics.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].tag != invalidTag {
			n++
		}
	}
	return n
}

// Flush invalidates every line and resets statistics.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = cacheLine{tag: invalidTag}
	}
	c.Stats = CacheStats{}
}
