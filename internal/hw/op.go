package hw

// OpKind distinguishes the micro-operations a packet-processing flow can
// emit into its trace.
type OpKind uint8

const (
	// OpCompute models a burst of register-to-register work: it advances
	// the core clock by Cycles and retires Instrs instructions without
	// touching memory.
	OpCompute OpKind = iota
	// OpLoad models one memory read of the cache line containing Addr.
	OpLoad
	// OpStore models one memory write of the cache line containing Addr
	// (write-allocate, write-back, as on the modelled platform).
	OpStore
	// OpDMAWrite models the NIC writing a received packet's cache line.
	// It allocates the line directly into the socket's L3 (Intel DCA
	// behaviour) and invalidates any stale copy in core-private caches.
	// It costs the emitting core no cycles: the NIC, not the core, does
	// the work.
	OpDMAWrite
	// OpLoadStream models one read of an independent address stream: an
	// out-of-order core overlaps such misses (memory-level parallelism),
	// so the charged latency is the full access latency divided by the
	// configured MLP factor, while cache state and bandwidth are affected
	// exactly as by OpLoad. Dependent-chain accesses (pointer chasing,
	// trie walks) must use OpLoad.
	OpLoadStream
)

// Op is one micro-operation of a flow's execution trace. Compute ops use
// Cycles and Instrs; memory ops use Addr. Every op is attributed to Func
// for per-function accounting, and to Elem — a slot in the executing
// core's per-element table (see SetElemTable) — for per-element online
// cost attribution. Elem 0 is the flow's overhead slot, so untagged ops
// still land in a well-defined cell.
type Op struct {
	Addr   Addr
	Cycles uint32
	Instrs uint32
	Kind   OpKind
	Func   FuncID
	Elem   uint16
}

// PacketSource produces the execution trace of a packet-processing flow,
// one packet at a time. EmitPacket appends the micro-operations for
// processing the next packet to buf and returns the extended slice; the
// engine replays those operations against the simulated hardware.
//
// Implementations must be deterministic: the emitted operations may depend
// on packet contents and internal state, but never on simulated time. This
// property is what makes trace-replay co-simulation faithful: a flow's
// access pattern does not change under contention, only its timing does
// (Section 3 of the paper measures exactly this regime).
type PacketSource interface {
	EmitPacket(buf []Op) []Op
}

// SourceFunc adapts a function to the PacketSource interface.
type SourceFunc func(buf []Op) []Op

// EmitPacket implements PacketSource.
func (f SourceFunc) EmitPacket(buf []Op) []Op { return f(buf) }
