package hw

// Concurrent trace execution. The Engine interleaves flows in global
// virtual-time order on one OS thread; the runtime (package runtime)
// instead runs one goroutine per simulated core and keeps core clocks
// loosely synchronised with a time quantum. ExecOps is the per-core
// execution primitive for that mode: it replays a packet's trace against
// the simulated hierarchy exactly as Engine.step does, but takes the
// owning socket's lock around every cache-state mutation so that
// same-socket workers may run concurrently.
//
// Lock order: Socket.mu → Channel.mu. Sockets never lock each other —
// an access only ever touches its own socket's caches; remote-domain
// traffic goes through the home socket's channels, which are leaf locks.

// ExecOps replays one packet's micro-operation trace on c, advancing the
// core's local clock and counters. It is safe to call concurrently from
// one goroutine per core; two goroutines must never drive the same core.
// A non-empty trace counts as one processed packet, mirroring Engine.step.
//
//dataplane:hotpath
func (c *Core) ExecOps(ops []Op) {
	c.execTrace(ops)
	if len(ops) > 0 {
		c.Counters.Packets++
	}
}

// ExecStall replays busy-work that processed no packet — a spin-wait
// poll of an empty hand-off ring, a batch of buffer returns — advancing
// the clock and cycle counters without touching the packet counter, so
// counter-derived packet rates stay honest.
//
//dataplane:hotpath
func (c *Core) ExecStall(ops []Op) {
	c.execTrace(ops)
}

//dataplane:owner the simulated core is the single writer of its element cells
//dataplane:hotpath
func (c *Core) execTrace(ops []Op) {
	cfg := &c.Socket.platform.Cfg
	cnt := &c.Counters
	for _, op := range ops {
		switch op.Kind {
		case OpCompute:
			c.clock += uint64(op.Cycles)
			cnt.Cycles += uint64(op.Cycles)
			cnt.Instructions += uint64(op.Instrs)
			cnt.Func[op.Func].Cycles += uint64(op.Cycles)
			if c.elems != nil {
				c.elems[op.Elem].Cycles += uint64(op.Cycles)
			}
		case OpLoad, OpStore:
			c.curElem = op.Elem
			c.Socket.mu.Lock()
			lat := c.Access(c.clock, op.Addr, op.Kind == OpStore, op.Func)
			c.Socket.mu.Unlock()
			c.clock += lat
			cnt.Cycles += lat
			cnt.Instructions++
			cnt.Func[op.Func].Cycles += lat
			if c.elems != nil {
				c.elems[op.Elem].Cycles += lat
			}
		case OpLoadStream:
			c.curElem = op.Elem
			c.Socket.mu.Lock()
			lat := c.Access(c.clock, op.Addr, false, op.Func)
			c.Socket.mu.Unlock()
			if mlp := cfg.StreamMLP; mlp > 1 {
				lat = (lat + mlp - 1) / mlp
			}
			c.clock += lat
			cnt.Cycles += lat
			cnt.Instructions++
			cnt.Func[op.Func].Cycles += lat
			if c.elems != nil {
				c.elems[op.Elem].Cycles += lat
			}
		case OpDMAWrite:
			c.Socket.mu.Lock()
			c.DMAWrite(c.clock, op.Addr)
			c.Socket.mu.Unlock()
		default:
			panic("hw: unknown op kind in ExecOps")
		}
	}
}

// BoundChannelWaits caps the queueing delay of every channel on the
// platform at maxWait cycles — the finite-controller-queue model
// concurrent execution needs (see Channel.MaxWait). Call it before any
// flow executes.
func (p *Platform) BoundChannelWaits(maxWait uint64) {
	for _, s := range p.Sockets {
		s.Mem.MaxWait = maxWait
		s.QPI.MaxWait = maxWait
	}
}

// AdvanceTo moves the core's local clock forward to t if it is behind:
// the idle time of a run-to-completion worker polling an empty queue.
// Idle cycles advance virtual time but are not charged to Counters.Cycles,
// so per-packet costs remain work-based.
func (c *Core) AdvanceTo(t uint64) {
	if c.clock < t {
		c.clock = t
	}
}
