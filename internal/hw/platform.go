package hw

import (
	"fmt"
	"sync"
)

// Core is one processing core: private L1D and L2, a pointer back to its
// socket for the shared L3 and memory path, and its performance counters.
type Core struct {
	ID     int // global core id, 0-based
	Socket *Socket

	L1 *Cache
	L2 *Cache

	Counters Counters

	clock uint64 // local virtual time in cycles

	// elems is the per-element attribution table installed by
	// SetElemTable (nil = attribution off); curElem is the slot of the op
	// currently executing, so Access can attribute L3 traffic without a
	// wider signature. Both are touched only by the core's own goroutine.
	elems   []ElemCell
	curElem uint16
}

// Clock returns the core's local virtual time in cycles.
func (c *Core) Clock() uint64 { return c.clock }

// Socket is one processor package: a set of cores sharing an inclusive L3
// and an integrated memory controller, plus an outgoing QPI link.
type Socket struct {
	ID    int
	Cores []*Core
	L3    *Cache
	Mem   *Channel // integrated memory controller
	QPI   *Channel // outgoing interconnect link

	// mu serialises access to the socket's cache state (the shared L3
	// and, because DMA delivery and inclusive-L3 back-invalidation cross
	// core boundaries, every core-private cache on the socket) when flows
	// execute concurrently (see Core.ExecOps). The single-threaded engine
	// path never takes it.
	mu sync.Mutex

	platform *Platform
}

// Platform is the simulated machine.
type Platform struct {
	Cfg     Config
	Sockets []*Socket
	Cores   []*Core // flattened, indexed by global core id

	// domainHome overrides the default domain→socket mapping for
	// individual NUMA domains (see SetDomainHome). nil until the first
	// override is installed.
	domainHome map[int]int
}

// NewPlatform builds a machine from cfg.
func NewPlatform(cfg Config) *Platform {
	if cfg.Sockets < 1 || cfg.CoresPerSocket < 1 {
		panic(fmt.Sprintf("hw: invalid topology %d sockets x %d cores", cfg.Sockets, cfg.CoresPerSocket))
	}
	p := &Platform{Cfg: cfg}
	for s := 0; s < cfg.Sockets; s++ {
		sock := &Socket{
			ID:       s,
			L3:       NewCache(fmt.Sprintf("socket%d.L3", s), cfg.L3, cfg.L3Policy),
			Mem:      NewChannel(fmt.Sprintf("socket%d.mem", s), cfg.MemCtrlService),
			QPI:      NewChannel(fmt.Sprintf("socket%d.qpi", s), cfg.QPIService),
			platform: p,
		}
		for i := 0; i < cfg.CoresPerSocket; i++ {
			id := s*cfg.CoresPerSocket + i
			core := &Core{
				ID:     id,
				Socket: sock,
				L1:     NewCache(fmt.Sprintf("core%d.L1D", id), cfg.L1D, ReplaceLRU),
				L2:     NewCache(fmt.Sprintf("core%d.L2", id), cfg.L2, ReplaceLRU),
			}
			sock.Cores = append(sock.Cores, core)
			p.Cores = append(p.Cores, core)
		}
		p.Sockets = append(p.Sockets, sock)
	}
	return p
}

// HomeSocket returns the socket whose memory controller owns addr. By
// default domain d homes to socket d % Sockets, so domain ids beyond the
// socket count give callers private domains with a well-defined home —
// the runtime allocates each flow's state from its own private domain so
// the state can be re-homed independently (see SetDomainHome).
func (p *Platform) HomeSocket(addr Addr) *Socket {
	d := DomainOf(addr)
	if s, ok := p.domainHome[d]; ok {
		return p.Sockets[s]
	}
	return p.Sockets[d%len(p.Sockets)]
}

// DomainHome returns the socket id addresses of NUMA domain d currently
// home to.
func (p *Platform) DomainHome(d int) int {
	if s, ok := p.domainHome[d]; ok {
		return s
	}
	return d % len(p.Sockets)
}

// SetDomainHome re-homes NUMA domain d to the given socket's memory
// controller: every subsequent miss on a domain-d address is served
// there. It models the end state of a state migration — after the copy,
// the structure's lines live in the destination socket's memory — without
// relocating simulated addresses, so Go-side structures keep their
// recorded pointers. Callers charge the copy itself (remote reads of
// every line, then local writes) before installing the override.
//
// The mapping is read on every cache miss without locking: call this
// only while no core is executing (the runtime does so at quantum
// barriers, where channel synchronisation orders the write before every
// worker's next access).
func (p *Platform) SetDomainHome(d, socket int) {
	if socket < 0 || socket >= len(p.Sockets) {
		panic(fmt.Sprintf("hw: domain %d re-homed to nonexistent socket %d", d, socket))
	}
	if p.domainHome == nil {
		p.domainHome = make(map[int]int)
	}
	p.domainHome[d] = socket
}

// Access performs one memory reference by this core at virtual time now
// and returns its latency in cycles. The lookup walks L1 → L2 → L3 →
// memory; fills propagate inward, dirty victims write back outward, and —
// when the L3 is inclusive — an L3 eviction back-invalidates private
// copies across the socket, which is the mechanism by which one flow's
// cache pressure destroys another flow's L1/L2 locality.
//
//dataplane:owner the simulated core is the single writer of its element cells
func (c *Core) Access(now uint64, addr Addr, write bool, fn FuncID) uint64 {
	cfg := &c.Socket.platform.Cfg
	cnt := &c.Counters

	lat := cfg.L1Latency
	cnt.L1Refs++
	if c.L1.Access(addr, write) {
		cnt.L1Hits++
		return lat
	}

	lat += cfg.L2Latency
	cnt.L2Refs++
	if c.L2.Access(addr, write) {
		cnt.L2Hits++
		c.fillL1(now, addr)
		return lat
	}

	// Shared L3.
	sock := c.Socket
	lat += cfg.L3Latency
	cnt.L3Refs++
	cnt.Func[fn].L3Refs++
	if c.elems != nil {
		c.elems[c.curElem].L3Refs++
	}
	if sock.L3.Access(addr, false) {
		cnt.L3Hits++
		cnt.Func[fn].L3Hits++
		if c.elems != nil {
			c.elems[c.curElem].L3Hits++
		}
		c.fillL2(now, addr)
		c.fillL1(now, addr)
		if write {
			// The private copy carries the dirtiness; the L3 copy will be
			// marked dirty when the private copy writes back.
			c.L1.MarkDirty(addr)
		}
		return lat
	}
	cnt.L3Misses++
	cnt.Func[fn].L3Misses++
	if c.elems != nil {
		c.elems[c.curElem].L3Misses++
	}

	// Memory access, possibly across the interconnect.
	home := sock.platform.HomeSocket(addr)
	if home != sock {
		cnt.RemoteRefs++
		qwait := sock.QPI.Occupy(now + lat)
		cnt.QPIQueueCycles += qwait
		lat += qwait + cfg.QPILatency
	}
	mwait := home.Mem.Occupy(now + lat)
	cnt.MemQueueCycles += mwait
	lat += mwait + cfg.DRAMLatency
	if home != sock {
		// Response hop: the return traversal adds latency but the request
		// already reserved the link slot.
		lat += cfg.QPILatency
	}

	c.insertL3(now, addr, write)
	c.fillL2(now, addr)
	c.fillL1(now, addr)
	if write {
		c.L1.MarkDirty(addr)
	}
	return lat
}

// DMAWrite models the NIC delivering a received line at virtual time now:
// with direct cache access the line is allocated into the socket's L3 and
// any stale private copies are invalidated. The core is not charged
// cycles; the NIC, not the core, does the work.
func (c *Core) DMAWrite(now uint64, addr Addr) {
	for _, peer := range c.Socket.Cores {
		peer.L1.Invalidate(addr)
		peer.L2.Invalidate(addr)
	}
	c.insertL3(now, addr, true)
}

func (c *Core) fillL1(now uint64, addr Addr) {
	victim, dirty, evicted := c.L1.Insert(addr, false)
	if evicted && dirty {
		// Write the victim back into L2; if L2 no longer holds it the
		// write-back allocates there (and may cascade).
		if !c.L2.MarkDirty(victim) {
			c.insertL2(now, victim, true)
		}
	}
}

func (c *Core) fillL2(now uint64, addr Addr) {
	c.insertL2(now, addr, false)
}

func (c *Core) insertL2(now uint64, addr Addr, dirty bool) {
	victim, vdirty, evicted := c.L2.Insert(addr, dirty)
	if evicted && vdirty {
		if !c.Socket.L3.MarkDirty(victim) {
			c.insertL3(now, victim, true)
		}
	}
}

func (c *Core) insertL3(now uint64, addr Addr, dirty bool) {
	sock := c.Socket
	victim, vdirty, evicted := sock.L3.Insert(addr, dirty)
	if !evicted {
		return
	}
	if sock.platform.Cfg.InclusiveL3 {
		// Inclusive L3: displaced lines may not survive in private caches.
		for _, peer := range sock.Cores {
			if p, d := peer.L1.Invalidate(victim); p && d {
				vdirty = true
			}
			if p, d := peer.L2.Invalidate(victim); p && d {
				vdirty = true
			}
		}
	}
	if vdirty {
		// Posted write-back: consumes controller bandwidth, adds no
		// latency to the access that triggered the eviction.
		sock.platform.HomeSocket(victim).Mem.Occupy(now)
	}
}

// FlushCaches invalidates every cache on the platform and resets channel
// state; counters are left untouched.
func (p *Platform) FlushCaches() {
	for _, s := range p.Sockets {
		s.L3.Flush()
		s.Mem.Reset()
		s.QPI.Reset()
		for _, c := range s.Cores {
			c.L1.Flush()
			c.L2.Flush()
		}
	}
}
