package hw

// Config describes the simulated platform: topology, cache geometry, and
// latencies. DefaultConfig returns the paper's testbed (two Intel Xeon
// X5660 "Westmere" sockets); every knob is exposed so the ablation
// benchmarks can vary one dimension at a time.
type Config struct {
	Sockets        int
	CoresPerSocket int

	// ClockHz is the core frequency used to convert cycles to seconds.
	ClockHz float64

	L1D CacheGeom
	L2  CacheGeom
	L3  CacheGeom

	// L3Policy selects the shared-cache replacement policy (LRU on the
	// real platform; Random exists for ablations).
	L3Policy ReplacementPolicy

	// InclusiveL3 enables back-invalidation of private-cache copies when
	// the L3 evicts a line, as on Westmere. Disabling it is an ablation.
	InclusiveL3 bool

	// Latencies, in core cycles, charged for a hit at each level. They
	// are cumulative along the lookup path: an L3 hit costs L1Latency +
	// L2Latency + L3Latency.
	L1Latency uint64
	L2Latency uint64
	L3Latency uint64

	// DRAMLatency is the additional latency of a row access beyond the
	// L3 lookup, excluding queueing. The paper's platform spec puts the
	// hit-to-miss delta δ at 43.75 ns ≈ 122 cycles at 2.8 GHz.
	DRAMLatency uint64

	// MemCtrlService is the occupancy of the memory controller per
	// line transfer; its reciprocal bounds per-socket memory bandwidth.
	MemCtrlService uint64

	// QPILatency is the one-way latency added to a remote-domain access;
	// QPIService is the link occupancy per transferred line.
	QPILatency uint64
	QPIService uint64

	// StreamMLP is the number of outstanding misses an out-of-order core
	// overlaps for independent address streams (OpLoadStream). Westmere
	// sustains roughly 4-8 outstanding L1 misses per core.
	StreamMLP uint64
}

// DefaultConfig returns the modelled NSDI'12 testbed: 2 × 6-core 2.8 GHz
// Westmere, 32 KB 8-way L1D, 256 KB 8-way L2, 12 MB 16-way inclusive L3,
// three DDR3-1333 channels per socket, 6.4 GT/s QPI.
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 6,
		ClockHz:        2.8e9,
		L1D:            CacheGeom{SizeBytes: 32 << 10, Ways: 8},
		L2:             CacheGeom{SizeBytes: 256 << 10, Ways: 8},
		L3:             CacheGeom{SizeBytes: 12 << 20, Ways: 16},
		L3Policy:       ReplaceLRU,
		InclusiveL3:    true,
		L1Latency:      1,
		L2Latency:      9,   // ~10 cycles to L2
		L3Latency:      30,  // ~40 cycles to L3
		DRAMLatency:    123, // δ ≈ 43.75 ns ≈ 122.5 cycles at 2.8 GHz
		MemCtrlService: 5,   // ≈ 1.8 ns/line ⇒ ~35 GB/s per socket (3x DDR3-1333)
		QPILatency:     45,
		QPIService:     5,
		StreamMLP:      4,
	}
}

// TotalCores returns the number of cores on the platform.
func (c Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// CyclesToSeconds converts a cycle count to seconds at the configured clock.
func (c Config) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / c.ClockHz
}

// SecondsToCycles converts seconds to cycles at the configured clock.
func (c Config) SecondsToCycles(s float64) uint64 {
	return uint64(s * c.ClockHz)
}
