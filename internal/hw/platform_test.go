package hw

import "testing"

// smallConfig returns a scaled-down platform for unit tests: same
// structure as the Westmere model, tiny caches so eviction behaviour is
// easy to trigger.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.L1D = CacheGeom{SizeBytes: 1 << 10, Ways: 2}
	cfg.L2 = CacheGeom{SizeBytes: 4 << 10, Ways: 2}
	cfg.L3 = CacheGeom{SizeBytes: 16 << 10, Ways: 4}
	return cfg
}

func TestNewPlatformTopology(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	if len(p.Sockets) != 2 || len(p.Cores) != 12 {
		t.Fatalf("topology = %d sockets / %d cores, want 2/12", len(p.Sockets), len(p.Cores))
	}
	if p.Cores[7].Socket != p.Sockets[1] {
		t.Fatal("core 7 must live on socket 1")
	}
	if p.Sockets[0].L3 == p.Sockets[1].L3 {
		t.Fatal("sockets must not share an L3")
	}
	if p.Cores[0].L1 == p.Cores[1].L1 {
		t.Fatal("cores must not share an L1")
	}
}

func TestAccessLatencyLevels(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0]
	addr := DomainBase(0) + 0x40

	// Cold: full path to local DRAM.
	lat := core.Access(0, addr, false, FuncOther)
	wantCold := cfg.L1Latency + cfg.L2Latency + cfg.L3Latency + cfg.DRAMLatency
	if lat != wantCold {
		t.Fatalf("cold access latency = %d, want %d", lat, wantCold)
	}
	// Warm: L1 hit.
	if lat := core.Access(100, addr, false, FuncOther); lat != cfg.L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", lat, cfg.L1Latency)
	}
	c := core.Counters
	if c.L3Misses != 1 || c.L3Refs != 1 || c.L1Hits != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestAccessRemoteDomainUsesQPI(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0] // socket 0
	remote := DomainBase(1) + 0x40

	lat := core.Access(0, remote, false, FuncOther)
	wantLocal := cfg.L1Latency + cfg.L2Latency + cfg.L3Latency + cfg.DRAMLatency
	want := wantLocal + 2*cfg.QPILatency
	if lat != want {
		t.Fatalf("remote access latency = %d, want %d", lat, want)
	}
	if core.Counters.RemoteRefs != 1 {
		t.Fatalf("RemoteRefs = %d, want 1", core.Counters.RemoteRefs)
	}
	if p.Sockets[1].Mem.Requests != 1 {
		t.Fatalf("remote controller requests = %d, want 1", p.Sockets[1].Mem.Requests)
	}
	if p.Sockets[0].Mem.Requests != 0 {
		t.Fatalf("local controller requests = %d, want 0", p.Sockets[0].Mem.Requests)
	}
}

func TestAccessL2HitAfterL1Eviction(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0]

	// Touch enough distinct lines to overflow L1 (1 KB = 16 lines) but
	// stay within L2 (4 KB = 64 lines).
	n := 32
	for i := 0; i < n; i++ {
		core.Access(uint64(i), Addr(i*LineSize), false, FuncOther)
	}
	// Second pass: everything should hit L2 (or L1 for the tail).
	before := core.Counters
	for i := 0; i < n; i++ {
		core.Access(uint64(n+i), Addr(i*LineSize), false, FuncOther)
	}
	d := core.Counters.Sub(before)
	if d.L3Refs != 0 {
		t.Fatalf("second pass reached L3 %d times; working set fits in L2", d.L3Refs)
	}
	if d.L2Hits == 0 {
		t.Fatal("second pass produced no L2 hits; expected L1 evictions to land in L2")
	}
}

func TestInclusiveL3BackInvalidation(t *testing.T) {
	cfg := smallConfig()
	cfg.InclusiveL3 = true
	p := NewPlatform(cfg)
	victim := p.Cores[0]
	aggressor := p.Cores[1]

	hot := DomainBase(0) + 0x40
	victim.Access(0, hot, false, FuncOther)
	if !victim.L1.Contains(hot) {
		t.Fatal("hot line must be in victim's L1 after access")
	}

	// Aggressor sweeps far more lines than the L3 holds, evicting hot.
	lines := cfg.L3.SizeBytes / LineSize * 4
	for i := 1; i <= lines; i++ {
		aggressor.Access(uint64(i), hot+Addr(i*LineSize), false, FuncOther)
	}
	if p.Sockets[0].L3.Contains(hot) {
		t.Fatal("sweep should have evicted the hot line from L3")
	}
	if victim.L1.Contains(hot) || victim.L2.Contains(hot) {
		t.Fatal("inclusive L3 eviction must back-invalidate private copies")
	}
}

func TestNonInclusiveL3KeepsPrivateCopies(t *testing.T) {
	cfg := smallConfig()
	cfg.InclusiveL3 = false
	p := NewPlatform(cfg)
	victim := p.Cores[0]
	aggressor := p.Cores[1]

	hot := DomainBase(0) + 0x40
	victim.Access(0, hot, false, FuncOther)
	lines := cfg.L3.SizeBytes / LineSize * 4
	for i := 1; i <= lines; i++ {
		aggressor.Access(uint64(i), hot+Addr(i*LineSize), false, FuncOther)
	}
	if !victim.L1.Contains(hot) {
		t.Fatal("non-inclusive config must leave the private copy intact")
	}
}

func TestDMAWriteAllocatesIntoL3AndInvalidatesPrivate(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0]
	addr := DomainBase(0) + 0x40

	core.Access(0, addr, false, FuncOther) // line in all levels
	core.DMAWrite(10, addr)
	if core.L1.Contains(addr) || core.L2.Contains(addr) {
		t.Fatal("DMA write must invalidate private copies")
	}
	if !p.Sockets[0].L3.Contains(addr) {
		t.Fatal("DMA write must allocate into L3 (DCA)")
	}
	// Next access must be an L3 hit, not a DRAM access.
	before := core.Counters
	core.Access(20, addr, false, FuncOther)
	d := core.Counters.Sub(before)
	if d.L3Hits != 1 || d.L3Misses != 0 {
		t.Fatalf("post-DMA access: %d hits / %d misses, want 1/0", d.L3Hits, d.L3Misses)
	}
}

func TestMemoryControllerQueueingUnderLoad(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0]

	// Back-to-back misses at the same instant queue behind each other.
	var total uint64
	for i := 0; i < 8; i++ {
		total += core.Access(0, Addr(i)*LineSize*1024+0x40, false, FuncOther)
	}
	if core.Counters.MemQueueCycles == 0 {
		t.Fatal("simultaneous misses must accumulate memory-controller queueing")
	}
	_ = total
}

func TestWritebackOnDirtyL3Eviction(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0]

	dirty := DomainBase(0) + 0x40
	core.Access(0, dirty, true, FuncOther) // write miss → dirty line

	memReqsBefore := p.Sockets[0].Mem.Requests
	lines := cfg.L3.SizeBytes / LineSize * 4
	for i := 1; i <= lines; i++ {
		core.Access(uint64(i), dirty+Addr(i*LineSize), false, FuncOther)
	}
	if p.Sockets[0].L3.Contains(dirty) {
		t.Fatal("dirty line should have been evicted by the sweep")
	}
	// The sweep generated its own fills; the dirty eviction must have
	// added at least one extra (write-back) controller request.
	extra := p.Sockets[0].Mem.Requests - memReqsBefore
	if extra <= uint64(lines) {
		t.Fatalf("controller requests %d ≤ sweep fills %d: write-back not issued", extra, lines)
	}
}

func TestFuncAttribution(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0]
	fn := RegisterFunc("test_attr")

	core.Access(0, 0x40, false, fn)
	fc := core.Counters.Func[fn]
	if fc.L3Refs != 1 || fc.L3Misses != 1 {
		t.Fatalf("func counters = %+v, want 1 ref / 1 miss", fc)
	}
}

func TestFlushCaches(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	core := p.Cores[0]
	core.Access(0, 0x40, false, FuncOther)
	p.FlushCaches()
	if core.L1.ValidLines() != 0 || p.Sockets[0].L3.ValidLines() != 0 {
		t.Fatal("FlushCaches left valid lines behind")
	}
	if core.Counters.L3Refs != 1 {
		t.Fatal("FlushCaches must not clear core counters")
	}
}
