package hw

import (
	"testing"
)

// computeSource emits packets of pure compute work.
func computeSource(cyclesPerPacket uint32) PacketSource {
	return SourceFunc(func(buf []Op) []Op {
		return append(buf, Op{Kind: OpCompute, Cycles: cyclesPerPacket, Instrs: cyclesPerPacket})
	})
}

// stridedSource emits packets that each load n lines from a strided region.
func stridedSource(base Addr, regionLines, n int) PacketSource {
	next := 0
	return SourceFunc(func(buf []Op) []Op {
		for i := 0; i < n; i++ {
			buf = append(buf, Op{Kind: OpLoad, Addr: base + Addr(next*LineSize)})
			next = (next + 1) % regionLines
		}
		return buf
	})
}

func TestEngineSoloComputeThroughput(t *testing.T) {
	cfg := smallConfig()
	p := NewPlatform(cfg)
	e := NewEngine(p)
	e.Attach(0, "cpu", computeSource(2800)) // 1M packets/sec at 2.8GHz

	stats := e.MeasureWindow(0, 0.001) // 1 ms
	got := stats[0].Throughput()
	want := cfg.ClockHz / 2800
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("throughput = %.0f pkts/s, want ≈ %.0f", got, want)
	}
	if cpi := stats[0].CPI(); cpi != 1.0 {
		t.Fatalf("CPI = %v, want 1.0", cpi)
	}
}

func TestEngineAttachValidation(t *testing.T) {
	p := NewPlatform(smallConfig())
	e := NewEngine(p)
	e.Attach(0, "a", computeSource(100))
	for _, id := range []int{-1, len(p.Cores)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Attach(%d) must panic", id)
				}
			}()
			e.Attach(id, "bad", computeSource(100))
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Attach to one core must panic")
		}
	}()
	e.Attach(0, "dup", computeSource(100))
}

func TestEngineInterleavesFairly(t *testing.T) {
	p := NewPlatform(smallConfig())
	e := NewEngine(p)
	e.Attach(0, "a", computeSource(1000))
	e.Attach(1, "b", computeSource(1000))
	e.RunUntil(1_000_000)
	ca, cb := p.Cores[0].Counters, p.Cores[1].Counters
	if ca.Packets == 0 || cb.Packets == 0 {
		t.Fatal("both flows must make progress")
	}
	diff := int64(ca.Packets) - int64(cb.Packets)
	if diff < -1 || diff > 1 {
		t.Fatalf("identical flows diverged: %d vs %d packets", ca.Packets, cb.Packets)
	}
}

func TestEngineFinitSourceStops(t *testing.T) {
	p := NewPlatform(smallConfig())
	e := NewEngine(p)
	remaining := 5
	src := SourceFunc(func(buf []Op) []Op {
		if remaining == 0 {
			return buf
		}
		remaining--
		return append(buf, Op{Kind: OpCompute, Cycles: 10, Instrs: 10})
	})
	e.Attach(0, "finite", src)
	e.RunUntil(1 << 40)
	if p.Cores[0].Counters.Packets != 5 {
		t.Fatalf("packets = %d, want 5", p.Cores[0].Counters.Packets)
	}
}

func TestEngineCacheContentionEmerges(t *testing.T) {
	// A flow whose working set fits the small L3 runs alone, then with a
	// co-runner sweeping a much larger region through the same L3. The
	// measured throughput drop is the paper's central phenomenon and must
	// be strictly positive and substantial.
	cfg := smallConfig()

	mkTarget := func() PacketSource {
		// 128 lines = half the 16KB L3: cache-friendly.
		return stridedSource(DomainBase(0), 128, 16)
	}
	mkAggressor := func(i int) PacketSource {
		// 4096 lines = 16x the L3: thrashes it. One region per aggressor.
		base := DomainBase(0) + Addr((i+1)<<20)
		return stridedSource(base, 4096, 16)
	}

	solo := func() float64 {
		p := NewPlatform(cfg)
		e := NewEngine(p)
		e.Attach(0, "target", mkTarget())
		return e.MeasureWindow(0.0005, 0.002)[0].Throughput()
	}()
	contended := func() float64 {
		p := NewPlatform(cfg)
		e := NewEngine(p)
		e.Attach(0, "target", mkTarget())
		// As in the paper, a single slow competitor cannot displace a hot
		// working set under LRU; damage needs aggregate competing
		// refs/sec, so co-run several aggressors (the paper uses 5).
		for i := 1; i <= 5; i++ {
			e.Attach(i, "aggr", mkAggressor(i))
		}
		return e.MeasureWindow(0.0005, 0.002)[0].Throughput()
	}()

	drop := (solo - contended) / solo
	if drop < 0.05 {
		t.Fatalf("contention drop = %.1f%%, expected ≥ 5%% (solo %.0f vs contended %.0f pkts/s)",
			drop*100, solo, contended)
	}
}

func TestEngineRemoteCompetitorsShareOnlyMemCtrl(t *testing.T) {
	// Competitors on the other socket with data homed in the target's
	// domain stress the target's memory controller but not its L3
	// (Figure 3(b) configuration).
	cfg := smallConfig()
	p := NewPlatform(cfg)
	e := NewEngine(p)
	e.Attach(0, "target", stridedSource(DomainBase(0), 128, 16))
	// Competitor on socket 1, data homed in domain 0 → remote accesses.
	e.Attach(cfg.CoresPerSocket, "remote", stridedSource(DomainBase(0)+Addr(1<<24), 4096, 16))
	e.MeasureWindow(0.0002, 0.001)

	if p.Cores[cfg.CoresPerSocket].Counters.RemoteRefs == 0 {
		t.Fatal("competitor must access remote memory")
	}
	// Target's L3 must contain only target lines (competitor uses its own
	// socket's L3), so target keeps hitting.
	tc := p.Cores[0].Counters
	if tc.L3Refs > 0 && float64(tc.L3Hits)/float64(tc.L3Refs) < 0.5 {
		t.Fatalf("target hit rate collapsed (%d/%d); cross-socket flows must not share L3",
			tc.L3Hits, tc.L3Refs)
	}
}

func TestMeasureWindowDeterministic(t *testing.T) {
	run := func() FlowStats {
		p := NewPlatform(smallConfig())
		e := NewEngine(p)
		e.Attach(0, "t", stridedSource(DomainBase(0), 512, 8))
		e.Attach(1, "c", stridedSource(DomainBase(0)+Addr(1<<20), 2048, 8))
		return e.MeasureWindow(0.0002, 0.001)[0]
	}
	a, b := run(), run()
	if a.Raw != b.Raw {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a.Raw, b.Raw)
	}
}

func TestPerformanceDrop(t *testing.T) {
	solo := FlowStats{Raw: Counters{Packets: 1000}, Seconds: 1}
	cont := FlowStats{Raw: Counters{Packets: 730}, Seconds: 1}
	if d := PerformanceDrop(solo, cont); d < 0.269 || d > 0.271 {
		t.Fatalf("drop = %v, want 0.27", d)
	}
	if d := PerformanceDrop(FlowStats{}, cont); d != 0 {
		t.Fatalf("zero-baseline drop = %v, want 0", d)
	}
}
