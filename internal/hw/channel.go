package hw

import "sync"

// Channel models a bandwidth-limited, first-come-first-served shared
// resource: a memory controller's command pipeline or a QPI link. Each
// request occupies the channel for ServiceCycles; a request arriving while
// the channel is busy waits until it frees. Queueing delay under load is
// therefore emergent, which is how the simulation reproduces the paper's
// Figure 4(b) (contention for the memory controller) and the slow growth
// of the effective miss penalty with competition noted in Section 3.3.
//
// A channel is a leaf lock: Occupy may be called concurrently by cores on
// any socket (local misses, remote QPI traffic, posted write-backs), so it
// guards its own state and never acquires another lock.
type Channel struct {
	Name          string
	ServiceCycles uint64

	// MaxWait, when positive, bounds the queueing delay any single
	// request can suffer — a finite controller queue. The deterministic
	// engine leaves it zero (unbounded FCFS); concurrent execution sets
	// it (see Platform.BoundChannelWaits) because lax clock
	// synchronisation lets one core replay its quantum after a
	// neighbour's in host order, and unbounded FCFS would then charge it
	// the neighbour's whole quantum as phantom queueing.
	MaxWait uint64

	mu       sync.Mutex
	nextFree uint64

	// Stats
	Requests    uint64
	QueueCycles uint64 // total cycles requests spent waiting
	BusyCycles  uint64 // total cycles the channel was occupied
}

// NewChannel builds a channel that serves one request every serviceCycles.
func NewChannel(name string, serviceCycles uint64) *Channel {
	return &Channel{Name: name, ServiceCycles: serviceCycles}
}

// Occupy reserves the channel for one request arriving at virtual time
// now and returns the queueing delay the request experiences before
// service begins. The caller adds any fixed latency (e.g. DRAM access
// time) itself.
func (ch *Channel) Occupy(now uint64) (wait uint64) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	start := now
	if ch.nextFree > start {
		start = ch.nextFree
	}
	wait = start - now
	if ch.MaxWait > 0 && wait > ch.MaxWait {
		wait = ch.MaxWait
		start = now + wait
	}
	// Busy time only accrues for the part of this service window that
	// extends the channel's busy horizon: a capped request overlaps time
	// already reserved, and counting it twice would push Utilization
	// past 1.
	if nf := start + ch.ServiceCycles; nf > ch.nextFree {
		if busy := nf - ch.nextFree; busy < ch.ServiceCycles {
			ch.BusyCycles += busy
		} else {
			ch.BusyCycles += ch.ServiceCycles
		}
		ch.nextFree = nf
	}
	ch.Requests++
	ch.QueueCycles += wait
	return wait
}

// Utilization returns the fraction of [0, now] the channel spent busy.
func (ch *Channel) Utilization(now uint64) float64 {
	if now == 0 {
		return 0
	}
	return float64(ch.BusyCycles) / float64(now)
}

// AvgQueueCycles returns the mean queueing delay per request.
func (ch *Channel) AvgQueueCycles() float64 {
	if ch.Requests == 0 {
		return 0
	}
	return float64(ch.QueueCycles) / float64(ch.Requests)
}

// Reset clears statistics and pending occupancy.
func (ch *Channel) Reset() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.nextFree = 0
	ch.Requests = 0
	ch.QueueCycles = 0
	ch.BusyCycles = 0
}
