package hw

// Channel models a bandwidth-limited, first-come-first-served shared
// resource: a memory controller's command pipeline or a QPI link. Each
// request occupies the channel for ServiceCycles; a request arriving while
// the channel is busy waits until it frees. Queueing delay under load is
// therefore emergent, which is how the simulation reproduces the paper's
// Figure 4(b) (contention for the memory controller) and the slow growth
// of the effective miss penalty with competition noted in Section 3.3.
type Channel struct {
	Name          string
	ServiceCycles uint64

	nextFree uint64

	// Stats
	Requests    uint64
	QueueCycles uint64 // total cycles requests spent waiting
	BusyCycles  uint64 // total cycles the channel was occupied
}

// NewChannel builds a channel that serves one request every serviceCycles.
func NewChannel(name string, serviceCycles uint64) *Channel {
	return &Channel{Name: name, ServiceCycles: serviceCycles}
}

// Occupy reserves the channel for one request arriving at virtual time
// now and returns the queueing delay the request experiences before
// service begins. The caller adds any fixed latency (e.g. DRAM access
// time) itself.
func (ch *Channel) Occupy(now uint64) (wait uint64) {
	start := now
	if ch.nextFree > start {
		start = ch.nextFree
	}
	ch.nextFree = start + ch.ServiceCycles
	ch.Requests++
	ch.QueueCycles += start - now
	ch.BusyCycles += ch.ServiceCycles
	return start - now
}

// Utilization returns the fraction of [0, now] the channel spent busy.
func (ch *Channel) Utilization(now uint64) float64 {
	if now == 0 {
		return 0
	}
	return float64(ch.BusyCycles) / float64(now)
}

// AvgQueueCycles returns the mean queueing delay per request.
func (ch *Channel) AvgQueueCycles() float64 {
	if ch.Requests == 0 {
		return 0
	}
	return float64(ch.QueueCycles) / float64(ch.Requests)
}

// Reset clears statistics and pending occupancy.
func (ch *Channel) Reset() {
	ch.nextFree = 0
	ch.Requests = 0
	ch.QueueCycles = 0
	ch.BusyCycles = 0
}
