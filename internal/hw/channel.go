package hw

import "sync"

// Channel models a bandwidth-limited, first-come-first-served shared
// resource: a memory controller's command pipeline or a QPI link. Each
// request occupies the channel for ServiceCycles; a request arriving while
// the channel is busy waits until it frees. Queueing delay under load is
// therefore emergent, which is how the simulation reproduces the paper's
// Figure 4(b) (contention for the memory controller) and the slow growth
// of the effective miss penalty with competition noted in Section 3.3.
//
// A channel is a leaf lock: Occupy may be called concurrently by cores on
// any socket (local misses, remote QPI traffic, posted write-backs), so it
// guards its own state and never acquires another lock.
type Channel struct {
	Name          string
	ServiceCycles uint64

	// MaxWait, when positive, bounds the queueing delay any single
	// request can suffer — a finite controller queue. The deterministic
	// engine leaves it zero (unbounded FCFS); concurrent execution sets
	// it (see Platform.BoundChannelWaits) because lax clock
	// synchronisation lets one core replay its quantum after a
	// neighbour's in host order, and unbounded FCFS would then charge it
	// the neighbour's whole quantum as phantom queueing.
	MaxWait uint64

	mu       sync.Mutex
	nextFree uint64

	// Stats
	Requests    uint64
	QueueCycles uint64 // total cycles requests spent waiting
	BusyCycles  uint64 // total cycles the channel was occupied

	// waitHist counts requests by queueing delay in power-of-two buckets:
	// bucket 0 is zero wait, bucket i ≥ 1 covers [2^(i-1), 2^i). It feeds
	// WaitQuantile, which is how Config.MaxQueueWait (the concurrent
	// runtime's finite-queue bound) is tuned against the deterministic
	// engine's observed tail waits.
	waitHist [waitBuckets]uint64
}

// waitBuckets bounds the histogram: the last bucket absorbs every wait
// of 2^(waitBuckets-2) cycles or more (≈ 32k cycles, far beyond any
// plausible queue).
const waitBuckets = 17

// NewChannel builds a channel that serves one request every serviceCycles.
func NewChannel(name string, serviceCycles uint64) *Channel {
	return &Channel{Name: name, ServiceCycles: serviceCycles}
}

// Occupy reserves the channel for one request arriving at virtual time
// now and returns the queueing delay the request experiences before
// service begins. The caller adds any fixed latency (e.g. DRAM access
// time) itself.
func (ch *Channel) Occupy(now uint64) (wait uint64) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	start := now
	if ch.nextFree > start {
		start = ch.nextFree
	}
	wait = start - now
	if ch.MaxWait > 0 && wait > ch.MaxWait {
		wait = ch.MaxWait
		start = now + wait
	}
	// Busy time only accrues for the part of this service window that
	// extends the channel's busy horizon: a capped request overlaps time
	// already reserved, and counting it twice would push Utilization
	// past 1.
	if nf := start + ch.ServiceCycles; nf > ch.nextFree {
		if busy := nf - ch.nextFree; busy < ch.ServiceCycles {
			ch.BusyCycles += busy
		} else {
			ch.BusyCycles += ch.ServiceCycles
		}
		ch.nextFree = nf
	}
	ch.Requests++
	ch.QueueCycles += wait
	ch.waitHist[waitBucket(wait)]++
	return wait
}

// waitBucket maps a wait to its histogram bucket.
func waitBucket(wait uint64) int {
	b := 0
	for wait > 0 && b < waitBuckets-1 {
		b++
		wait >>= 1
	}
	return b
}

// WaitQuantile returns an upper bound on the q-quantile (q in [0,1]) of
// per-request queueing delay: the inclusive upper edge of the histogram
// bucket the quantile falls in. Zero when the channel saw no requests.
// The histogram's last bucket is open-ended, so the result saturates at
// 2^16−1: a quantile landing among waits of ≥ 2^15 cycles (far beyond
// any bounded queue; MaxWait caps concurrent-mode waits two orders of
// magnitude lower) reports that cap, not a true upper bound.
func (ch *Channel) WaitQuantile(q float64) uint64 {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.Requests == 0 {
		return 0
	}
	target := uint64(q * float64(ch.Requests))
	if float64(target) < q*float64(ch.Requests) {
		target++ // ceiling: the quantile request itself must be covered
	}
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b, n := range ch.waitHist {
		cum += n
		if cum >= target {
			if b == 0 {
				return 0
			}
			return 1<<b - 1
		}
	}
	return 1<<(waitBuckets-1) - 1
}

// Utilization returns the fraction of [0, now] the channel spent busy.
func (ch *Channel) Utilization(now uint64) float64 {
	if now == 0 {
		return 0
	}
	return float64(ch.BusyCycles) / float64(now)
}

// AvgQueueCycles returns the mean queueing delay per request.
func (ch *Channel) AvgQueueCycles() float64 {
	if ch.Requests == 0 {
		return 0
	}
	return float64(ch.QueueCycles) / float64(ch.Requests)
}

// Reset clears statistics and pending occupancy.
func (ch *Channel) Reset() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.nextFree = 0
	ch.Requests = 0
	ch.QueueCycles = 0
	ch.BusyCycles = 0
	ch.waitHist = [waitBuckets]uint64{}
}
