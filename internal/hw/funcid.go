package hw

import (
	"fmt"
	"sync"
)

// FuncID identifies a logical processing function for per-function counter
// attribution, playing the role OProfile's per-symbol accounting plays in
// the paper (Figure 7 breaks a MON flow's hit-to-miss conversion rate down
// by function: flow_statistics, radix_ip_lookup, check_ip_header,
// skb_recycle).
type FuncID uint8

// MaxFuncs bounds the number of distinct attribution functions. Counters
// are stored in fixed arrays of this size so that snapshotting them is a
// plain struct copy.
const MaxFuncs = 32

// FuncOther is the default attribution bucket for operations emitted
// outside any registered function.
const FuncOther FuncID = 0

var funcRegistry = struct {
	sync.Mutex
	names []string
	ids   map[string]FuncID
}{
	names: []string{"other"},
	ids:   map[string]FuncID{"other": FuncOther},
}

// RegisterFunc returns a stable FuncID for name, allocating one on first
// use. Registering the same name twice returns the same id. It panics if
// more than MaxFuncs distinct functions are registered, which indicates a
// programming error rather than a runtime condition.
func RegisterFunc(name string) FuncID {
	funcRegistry.Lock()
	defer funcRegistry.Unlock()
	if id, ok := funcRegistry.ids[name]; ok {
		return id
	}
	if len(funcRegistry.names) >= MaxFuncs {
		panic(fmt.Sprintf("hw: too many registered functions (max %d) adding %q", MaxFuncs, name))
	}
	id := FuncID(len(funcRegistry.names))
	funcRegistry.names = append(funcRegistry.names, name)
	funcRegistry.ids[name] = id
	return id
}

// FuncName returns the name registered for id, or "other" for unknown ids.
func FuncName(id FuncID) string {
	funcRegistry.Lock()
	defer funcRegistry.Unlock()
	if int(id) < len(funcRegistry.names) {
		return funcRegistry.names[id]
	}
	return "other"
}

// FuncNames returns the names of all registered functions, indexed by id.
func FuncNames() []string {
	funcRegistry.Lock()
	defer funcRegistry.Unlock()
	out := make([]string, len(funcRegistry.names))
	copy(out, funcRegistry.names)
	return out
}
