package hw

import (
	"testing"
	"testing/quick"
)

func TestChannelNoContentionNoWait(t *testing.T) {
	ch := NewChannel("mem", 10)
	if w := ch.Occupy(100); w != 0 {
		t.Fatalf("first request wait = %d, want 0", w)
	}
	if w := ch.Occupy(200); w != 0 {
		t.Fatalf("spaced request wait = %d, want 0", w)
	}
}

func TestChannelBackToBackQueues(t *testing.T) {
	ch := NewChannel("mem", 10)
	ch.Occupy(0) // busy until 10
	if w := ch.Occupy(0); w != 10 {
		t.Fatalf("second request wait = %d, want 10", w)
	}
	if w := ch.Occupy(0); w != 20 {
		t.Fatalf("third request wait = %d, want 20", w)
	}
	if ch.Requests != 3 || ch.QueueCycles != 30 || ch.BusyCycles != 30 {
		t.Fatalf("stats = req %d queue %d busy %d", ch.Requests, ch.QueueCycles, ch.BusyCycles)
	}
}

func TestChannelDrainsAfterIdle(t *testing.T) {
	ch := NewChannel("mem", 10)
	ch.Occupy(0)
	ch.Occupy(0)
	if w := ch.Occupy(1000); w != 0 {
		t.Fatalf("request after idle gap waited %d, want 0", w)
	}
}

func TestChannelUtilization(t *testing.T) {
	ch := NewChannel("mem", 10)
	for i := 0; i < 5; i++ {
		ch.Occupy(uint64(i) * 20)
	}
	if u := ch.Utilization(100); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if ch.AvgQueueCycles() != 0 {
		t.Fatalf("avg queue = %v, want 0", ch.AvgQueueCycles())
	}
}

func TestChannelReset(t *testing.T) {
	ch := NewChannel("mem", 10)
	ch.Occupy(0)
	ch.Reset()
	if ch.Requests != 0 || ch.BusyCycles != 0 {
		t.Fatalf("stats not reset: req %d busy %d", ch.Requests, ch.BusyCycles)
	}
	if w := ch.Occupy(0); w != 0 {
		t.Fatalf("wait after reset = %d, want 0", w)
	}
}

// Property: with monotonically non-decreasing arrivals, total wait equals
// sum of per-request waits and service never overlaps: the k-th request
// starts no earlier than the (k-1)-th start + service.
func TestChannelFCFSQuick(t *testing.T) {
	f := func(gaps []uint8) bool {
		ch := NewChannel("q", 7)
		now := uint64(0)
		prevStart := int64(-7)
		for _, g := range gaps {
			now += uint64(g)
			wait := ch.Occupy(now)
			start := int64(now + wait)
			if start < prevStart+7 {
				return false
			}
			prevStart = start
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelMaxWaitBoundsQueueing(t *testing.T) {
	ch := NewChannel("mem", 10)
	ch.MaxWait = 15
	for i := 0; i < 10; i++ {
		ch.Occupy(0)
	}
	// Unbounded FCFS would charge the 10th request 90 cycles; the finite
	// queue caps every individual wait.
	if w := ch.Occupy(0); w != 15 {
		t.Fatalf("bounded wait = %d, want 15", w)
	}
	// A request arriving after the backlog clears waits nothing, and
	// nextFree never regressed below its high-water mark.
	if w := ch.Occupy(10_000); w != 0 {
		t.Fatalf("wait after idle gap = %d, want 0", w)
	}
}

func TestChannelWaitQuantile(t *testing.T) {
	ch := NewChannel("t", 10)
	if got := ch.WaitQuantile(0.99); got != 0 {
		t.Fatalf("empty channel p99 = %d, want 0", got)
	}
	// 9 zero-wait requests (well spaced) and one back-to-back request
	// that waits 10 cycles: p50 is zero, p99 lands in the waiters' bucket.
	now := uint64(0)
	for i := 0; i < 9; i++ {
		if w := ch.Occupy(now); w != 0 {
			t.Fatalf("spaced request waited %d", w)
		}
		now += 100
	}
	if w := ch.Occupy(now - 100 + 1); w != 9 {
		t.Fatalf("back-to-back wait = %d, want 9", w)
	}
	if p50 := ch.WaitQuantile(0.5); p50 != 0 {
		t.Fatalf("p50 = %d, want 0", p50)
	}
	p99 := ch.WaitQuantile(0.99)
	if p99 < 9 || p99 > 15 {
		t.Fatalf("p99 = %d, want the [8,16) bucket's upper edge", p99)
	}
	ch.Reset()
	if got := ch.WaitQuantile(0.99); got != 0 {
		t.Fatalf("post-reset p99 = %d, want 0", got)
	}
}
