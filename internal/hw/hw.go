// Package hw simulates the memory hierarchy of a two-socket multicore
// server at cycle granularity: per-core L1/L2 caches, a shared inclusive
// L3 per socket, per-socket memory controllers with FCFS queueing, and a
// QPI-style inter-socket interconnect.
//
// The package exists to reproduce, in a deterministic and measurable
// environment, the shared-cache contention effects studied by Dobrescu et
// al., "Toward Predictable Performance in Software Packet-Processing
// Platforms" (NSDI 2012). Packet-processing applications emit streams of
// micro-operations (compute bursts, loads, stores); the Engine interleaves
// the streams of co-running flows in global virtual-time order, so cache
// contention, hit-to-miss conversion, and memory-controller queueing are
// emergent properties of the simulated hardware rather than baked-in
// formulas.
//
// All state is explicit and seeded: two runs with identical inputs produce
// identical performance counters.
package hw

// Addr is a simulated physical address. The NUMA domain that owns an
// address is encoded in its high bits (see DomainOf), mirroring how the
// platform's physically contiguous memory regions map to controllers.
type Addr uint64

const (
	// LineShift is log2 of the cache-line size in bytes.
	LineShift = 6
	// LineSize is the cache-line size in bytes (64, as on Westmere).
	LineSize = 1 << LineShift

	// domainShift positions the NUMA-domain id within an Addr.
	domainShift = 44
)

// DomainBase returns the lowest address belonging to NUMA domain d.
func DomainBase(d int) Addr { return Addr(d) << domainShift }

// DomainOf returns the NUMA domain that owns address a.
func DomainOf(a Addr) int { return int(a >> domainShift) }

// LineOf returns the address of the cache line containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// LinesSpanned returns how many cache lines the byte range [a, a+n) touches.
func LinesSpanned(a Addr, n int) int {
	if n <= 0 {
		return 0
	}
	first := a >> LineShift
	last := (a + Addr(n) - 1) >> LineShift
	return int(last-first) + 1
}
