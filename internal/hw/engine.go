package hw

import "fmt"

// Flow is one packet-processing flow attached to a core. In the paper's
// configuration each receive queue's traffic — "a flow" — is pinned to
// exactly one core, which performs all processing for it (the "parallel"
// approach of Section 2.2).
type Flow struct {
	Label string
	Core  *Core

	src PacketSource
	ops []Op
	pos int

	done bool // source exhausted (EmitPacket returned no ops)
}

// Engine interleaves the execution traces of the attached flows in global
// virtual-time order: at every step the flow whose core has the smallest
// local clock executes its next micro-operation. Because shared-cache and
// memory-controller state is touched in (near) global time order,
// contention between co-runners is emergent.
type Engine struct {
	Platform *Platform
	Flows    []*Flow

	byCore map[int]*Flow
}

// NewEngine creates an engine over p with no flows attached.
func NewEngine(p *Platform) *Engine {
	return &Engine{Platform: p, byCore: make(map[int]*Flow)}
}

// Attach pins src to the core with the given global id. Attaching two
// flows to one core is an error: the modelled regime is one flow per core
// (Section 2.2 and Section 6 of the paper).
func (e *Engine) Attach(coreID int, label string, src PacketSource) *Flow {
	if coreID < 0 || coreID >= len(e.Platform.Cores) {
		panic(fmt.Sprintf("hw: core %d out of range [0,%d)", coreID, len(e.Platform.Cores)))
	}
	if _, dup := e.byCore[coreID]; dup {
		panic(fmt.Sprintf("hw: core %d already has a flow attached", coreID))
	}
	f := &Flow{Label: label, Core: e.Platform.Cores[coreID], src: src}
	e.Flows = append(e.Flows, f)
	e.byCore[coreID] = f
	return f
}

// step executes one micro-operation of f, refilling its per-packet op
// buffer from the source as needed. It returns false when the source is
// exhausted.
//
//dataplane:owner the simulated core is the single writer of its element cells
func (e *Engine) step(f *Flow) bool {
	if f.pos >= len(f.ops) {
		f.ops = f.src.EmitPacket(f.ops[:0])
		f.pos = 0
		if len(f.ops) == 0 {
			f.done = true
			return false
		}
	}
	op := f.ops[f.pos]
	f.pos++

	core := f.Core
	switch op.Kind {
	case OpCompute:
		core.clock += uint64(op.Cycles)
		core.Counters.Cycles += uint64(op.Cycles)
		core.Counters.Instructions += uint64(op.Instrs)
		core.Counters.Func[op.Func].Cycles += uint64(op.Cycles)
		if core.elems != nil {
			core.elems[op.Elem].Cycles += uint64(op.Cycles)
		}
	case OpLoad, OpStore:
		core.curElem = op.Elem
		lat := core.Access(core.clock, op.Addr, op.Kind == OpStore, op.Func)
		core.clock += lat
		core.Counters.Cycles += lat
		core.Counters.Instructions++
		core.Counters.Func[op.Func].Cycles += lat
		if core.elems != nil {
			core.elems[op.Elem].Cycles += lat
		}
	case OpLoadStream:
		core.curElem = op.Elem
		lat := core.Access(core.clock, op.Addr, false, op.Func)
		if mlp := e.Platform.Cfg.StreamMLP; mlp > 1 {
			lat = (lat + mlp - 1) / mlp
		}
		core.clock += lat
		core.Counters.Cycles += lat
		core.Counters.Instructions++
		core.Counters.Func[op.Func].Cycles += lat
		if core.elems != nil {
			core.elems[op.Elem].Cycles += lat
		}
	case OpDMAWrite:
		core.DMAWrite(core.clock, op.Addr)
	default:
		panic(fmt.Sprintf("hw: unknown op kind %d", op.Kind))
	}

	if f.pos >= len(f.ops) {
		core.Counters.Packets++
	}
	return true
}

// runnable returns the attached flow with the smallest core clock that has
// not exhausted its source, or nil when none remain.
func (e *Engine) runnable(limit uint64) *Flow {
	var best *Flow
	for _, f := range e.Flows {
		if f.done || f.Core.clock >= limit {
			continue
		}
		if best == nil || f.Core.clock < best.Core.clock {
			best = f
		}
	}
	return best
}

// RunUntil advances every flow until its core's local clock reaches at
// least t (or its source is exhausted). Flows are interleaved in global
// virtual-time order throughout.
func (e *Engine) RunUntil(t uint64) {
	for {
		f := e.runnable(t)
		if f == nil {
			return
		}
		if !e.step(f) {
			continue
		}
	}
}

// RunSeconds advances all flows by the given amount of virtual time from
// the current maximum core clock.
func (e *Engine) RunSeconds(s float64) {
	e.RunUntil(e.maxClock() + e.Platform.Cfg.SecondsToCycles(s))
}

func (e *Engine) maxClock() uint64 {
	var m uint64
	for _, f := range e.Flows {
		if f.Core.clock > m {
			m = f.Core.clock
		}
	}
	return m
}

// Snapshot returns a copy of every flow's counters, index-aligned with
// e.Flows.
func (e *Engine) Snapshot() []Counters {
	out := make([]Counters, len(e.Flows))
	for i, f := range e.Flows {
		out[i] = f.Core.Counters
	}
	return out
}

// MeasureWindow runs a warm-up period followed by a measurement window
// (both in virtual seconds) and returns per-flow statistics for the
// window. This mirrors the paper's methodology: measure steady-state
// throughput, not cold-cache transients.
func (e *Engine) MeasureWindow(warmup, window float64) []FlowStats {
	e.RunSeconds(warmup)
	before := e.Snapshot()
	start := make([]uint64, len(e.Flows))
	for i, f := range e.Flows {
		start[i] = f.Core.clock
	}
	e.RunSeconds(window)
	stats := make([]FlowStats, len(e.Flows))
	for i, f := range e.Flows {
		delta := f.Core.Counters.Sub(before[i])
		elapsed := f.Core.clock - start[i]
		stats[i] = NewFlowStats(f.Label, delta, elapsed, e.Platform.Cfg.ClockHz)
	}
	return stats
}
