package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Inc and Add are
// single atomic adds on a cache-line padded cell: zero allocations, no
// locks, safe to call from a worker's packet loop. The padding keeps
// per-worker series (the registry's sharding idiom: one series per
// worker label) from false-sharing a line.
//
//dataplane:cell
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
//
//dataplane:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//dataplane:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float metric. Set/Add are atomic on the float's
// bit pattern: zero allocations, readable mid-update from any goroutine.
//
//dataplane:cell
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v.
//
//dataplane:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (a CAS loop, still allocation-free).
//
//dataplane:hotpath
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks their sum. Observe is a linear bucket
// scan plus three atomics: zero allocations on the hot path.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // one per bound, plus the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v.
//
//dataplane:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }
