package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLatBucketLayout(t *testing.T) {
	// Every representable value maps into a bucket whose bounds contain it.
	probes := []uint64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<30 - 1, 1 << 30, 1 << 40}
	for _, v := range probes {
		i := latBucketOf(v)
		if i < 0 || i >= latBuckets {
			t.Fatalf("value %d maps to bucket %d outside [0,%d)", v, i, latBuckets)
		}
		lo, hi := latBoundsOf(i)
		if i == latBuckets-1 {
			if v < lo {
				t.Fatalf("overflow value %d below overflow bound %d", v, lo)
			}
			continue
		}
		if v < lo || v >= hi {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d)", v, i, lo, hi)
		}
	}
	// Buckets tile the range with no gaps.
	for i := 0; i < latBuckets-1; i++ {
		_, hi := latBoundsOf(i)
		lo, _ := latBoundsOf(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", i, hi, i+1, lo)
		}
	}
}

// exactQuantile is the reference the histogram estimate is judged
// against: the ceil(q·n)-th order statistic, matching LatHist.Quantile's
// rank convention.
func exactQuantile(sorted []uint64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return float64(sorted[rank-1])
}

// TestLatHistQuantileError is the property test bounding the histogram's
// quantile estimate: with 8 linear sub-buckets per octave, a bucket is
// at most 9/8 wide relative to its lower bound, so a geometric-midpoint
// estimate is within ~6.1% of any exact quantile whose value lies in
// the resolved range [64, 2^30). The asserted bound of 7.5% leaves
// headroom without admitting a broken bucketer.
func TestLatHistQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() uint64{
		"uniform": func() uint64 { return 64 + uint64(rng.Int63n(1<<20)) },
		"exponential": func() uint64 {
			v := uint64(rng.ExpFloat64() * 50_000)
			if v < 64 {
				v = 64
			}
			return v
		},
		"lognormal": func() uint64 {
			v := uint64(math.Exp(rng.NormFloat64()*2 + 12))
			if v < 64 {
				v = 64
			}
			if v >= 1<<30 {
				v = 1<<30 - 1
			}
			return v
		},
		// Adversarial: values pinned just past power-of-two bucket edges,
		// where midpoint estimates are worst.
		"bucket-edges": func() uint64 {
			e := uint(6 + rng.Intn(24))
			return (uint64(1) << e) + uint64(rng.Int63n(3))
		},
		"bimodal": func() uint64 {
			if rng.Intn(2) == 0 {
				return 100 + uint64(rng.Int63n(50))
			}
			return 1_000_000 + uint64(rng.Int63n(500_000))
		},
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for name, gen := range dists {
		var h LatHist
		vals := make([]uint64, 20_000)
		for i := range vals {
			v := gen()
			vals[i] = v
			h.Observe(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range quantiles {
			exact := exactQuantile(vals, q)
			got := h.Quantile(q)
			relErr := math.Abs(got-exact) / exact
			if relErr > 0.075 {
				t.Errorf("%s p%g: estimate %.0f vs exact %.0f (rel err %.2f%% > 7.5%%)",
					name, q*100, got, exact, relErr*100)
			}
		}
	}
}

func TestLatHistMergeSubCount(t *testing.T) {
	var a LatHist
	for i := uint64(0); i < 100; i++ {
		a.Observe(100 + i*37)
	}
	snap := a // value copy is the snapshot
	for i := uint64(0); i < 50; i++ {
		a.Observe(5000 + i*91)
	}
	d := a.Sub(&snap)
	if d.Count() != 50 {
		t.Fatalf("window delta count = %d, want 50", d.Count())
	}
	if got := d.Quantile(0.5); got < 5000 || got > 12_000 {
		t.Fatalf("delta p50 = %.0f, outside the window's value range", got)
	}
	var m LatHist
	m.Merge(&snap)
	m.Merge(&d)
	if m.Count() != a.Count() || m.Sum() != a.Sum() {
		t.Fatalf("merge(snapshot, delta) = %d/%d, want %d/%d", m.Count(), m.Sum(), a.Count(), a.Sum())
	}
}

func TestLatHistCountOver(t *testing.T) {
	var h LatHist
	for i := 0; i < 1000; i++ {
		h.Observe(1000) // all in one bucket
	}
	if n := h.CountOver(100); n != 1000 {
		t.Fatalf("CountOver(100) = %d, want 1000 (all over)", n)
	}
	if n := h.CountOver(1 << 29); n != 0 {
		t.Fatalf("CountOver(huge) = %d, want 0", n)
	}
	// Threshold inside the occupied bucket: linear interpolation keeps the
	// estimate between the extremes.
	lo, hi := latBoundsOf(latBucketOf(1000))
	mid := (lo + hi) / 2
	if n := h.CountOver(mid); n == 0 || n == 1000 {
		t.Fatalf("CountOver(mid-bucket %d) = %d, want a partial count", mid, n)
	}
}

func TestLatHistEmptyAndClamping(t *testing.T) {
	var h LatHist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(1)       // underflow
	h.Observe(1 << 40) // overflow
	if got := h.Quantile(-1); got <= 0 {
		t.Fatalf("clamped q<0 returned %v", got)
	}
	if got := h.Quantile(2); got != float64(uint64(1)<<latMaxExp) {
		t.Fatalf("overflow quantile = %v, want the overflow bound %d", got, uint64(1)<<latMaxExp)
	}
}
