package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Packet-sampled chain tracing. One in every N packets entering a staged
// service chain is tagged with a trace ID that rides the packet through
// the hand-off rings; each stage records an exec span in virtual time
// (the stage worker's core clock before and after the packet's trace
// executes), flagged with whether the span began by dequeuing from a
// hand-off ring and/or ended by enqueuing into one. The gap between one
// stage's enqueue and the next stage's dequeue is therefore exactly the
// charged hand-off cost: descriptor-line traffic, spin-wait polls, and
// ring residence time.
//
// Shards are single-writer: the runtime gives each worker its own
// TraceShard, so recording is append-into-preallocated-slice with no
// locks and no allocations until the shard's capacity is exhausted
// (further events are counted as dropped, never blocking the worker).

// TraceEvent is one recorded span: a stage's execution of one sampled
// packet, in virtual cycles on the recording worker's core.
type TraceEvent struct {
	Trace    uint64 // sampled packet's trace ID (non-zero)
	Pid      int    // trace process: one per flow replica (chain)
	Tid      int    // trace thread: the recording worker
	Stage    int
	Start    uint64 // core clock when the span's trace began executing
	End      uint64 // core clock when it finished
	Dequeued bool   // span began by popping a hand-off ring
	Enqueued bool   // span ended by pushing into a hand-off ring
}

// Tracer owns the per-worker shards and the ID sequence.
type Tracer struct {
	every  uint64
	shards []*TraceShard
	nextID atomic.Uint64

	procNames   map[int]string
	threadNames map[int]string
}

// TraceShard is one worker's private event buffer. Only that worker
// writes; the tracer reads after the run (or at a barrier).
type TraceShard struct {
	t       *Tracer
	events  []TraceEvent
	n       int
	dropped uint64
	seen    uint64
}

// NewTracer builds a tracer sampling one in sampleEvery packets, with
// shards single-writer buffers of perShardCap events each.
func NewTracer(sampleEvery uint64, perShardCap, shards int) *Tracer {
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	if perShardCap <= 0 {
		perShardCap = 4096
	}
	t := &Tracer{
		every:       sampleEvery,
		procNames:   map[int]string{},
		threadNames: map[int]string{},
	}
	for i := 0; i < shards; i++ {
		t.shards = append(t.shards, &TraceShard{t: t, events: make([]TraceEvent, perShardCap)})
	}
	return t
}

// Shard returns worker i's shard.
func (t *Tracer) Shard(i int) *TraceShard { return t.shards[i] }

// SetProcess names a trace process (a flow replica) for the export's
// metadata. Setup path only.
func (t *Tracer) SetProcess(pid int, name string) { t.procNames[pid] = name }

// SetThread names a trace thread (a worker) for the export's metadata.
// Setup path only.
func (t *Tracer) SetThread(tid int, name string) { t.threadNames[tid] = name }

// Dropped returns how many events did not fit in their shard's buffer.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, s := range t.shards {
		n += s.dropped
	}
	return n
}

// Sample decides whether the next packet is traced: every Nth call
// returns a fresh non-zero trace ID, all others return 0. Hot path; the
// per-shard counter means only sampled packets touch shared state.
func (s *TraceShard) Sample() uint64 {
	s.seen++
	if s.seen%s.t.every != 0 {
		return 0
	}
	return s.t.nextID.Add(1)
}

// Exec records one stage-execution span for a sampled packet.
func (s *TraceShard) Exec(ev TraceEvent) {
	if s.n >= len(s.events) {
		s.dropped++
		return
	}
	s.events[s.n] = ev
	s.n++
}

// Events returns every recorded event across all shards, sorted by
// (Start, Pid, Tid, Trace) for stable output. Call only while workers
// are parked (after the run, or at a control barrier).
func (t *Tracer) Events() []TraceEvent {
	var out []TraceEvent
	for _, s := range t.shards {
		out = append(out, s.events[:s.n]...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Trace < b.Trace
	})
	return out
}

// chromeEvent is one Chrome trace-event JSON object. Perfetto and
// chrome://tracing load the {"traceEvents": [...]} envelope directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the recorded spans as Chrome trace-event JSON:
// process/thread metadata, one complete ("X") slice per stage span named
// stageK, and flow arrows ("s"/"f") tying each enqueue to the matching
// dequeue so the viewer draws the packet's path across workers. ts/dur
// are microseconds of virtual time (cycles / clockHz).
func (t *Tracer) WriteChrome(w io.Writer, clockHz float64) error {
	if clockHz <= 0 {
		return fmt.Errorf("obs: WriteChrome needs a positive clock rate, got %g", clockHz)
	}
	usPerCycle := 1e6 / clockHz
	var evs []chromeEvent

	// Metadata first, in sorted pid/tid order for stable output.
	pids := make([]int, 0, len(t.procNames))
	for pid := range t.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": t.procNames[pid]},
		})
	}
	tids := make([]int, 0, len(t.threadNames))
	for tid := range t.threadNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		for _, pid := range pids {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": t.threadNames[tid]},
			})
		}
	}

	for _, ev := range t.Events() {
		ts := float64(ev.Start) * usPerCycle
		dur := float64(ev.End-ev.Start) * usPerCycle
		evs = append(evs, chromeEvent{
			Name: fmt.Sprintf("stage%d", ev.Stage), Cat: "chain", Ph: "X",
			Ts: ts, Dur: &dur, Pid: ev.Pid, Tid: ev.Tid,
			Args: map[string]any{"trace": ev.Trace, "stage": ev.Stage},
		})
		// Flow arrows: id encodes (trace, cut) so each hand-off is its own
		// arrow from the producer's span end to the consumer's span start.
		if ev.Enqueued {
			evs = append(evs, chromeEvent{
				Name: "handoff", Cat: "chain", Ph: "s",
				Ts: ts + dur, Pid: ev.Pid, Tid: ev.Tid,
				ID: fmt.Sprintf("%d.%d", ev.Trace, ev.Stage),
			})
		}
		if ev.Dequeued {
			evs = append(evs, chromeEvent{
				Name: "handoff", Cat: "chain", Ph: "f", BP: "e",
				Ts: ts, Pid: ev.Pid, Tid: ev.Tid,
				ID: fmt.Sprintf("%d.%d", ev.Trace, ev.Stage-1),
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, Unit: "ns"})
}
