package obs

import "fmt"

// Prediction-residual diagnosis. The paper's overload-diagnosis story
// (Section 5) is that when delivered performance diverges from the SLA,
// the same counters the predictor reads identify the aggressor. The
// runtime applies that shape to its own model: every control window it
// compares each app's observed drop against the predicted drop, and when
// the residual exceeds tolerance, Diagnose attributes the divergence to
// the evidence the counters actually show — L3 contention the curve
// under-priced, hand-off ring backpressure the per-core model cannot
// see, or remote NUMA references from displaced state.

// Cause labels one residual's attributed explanation.
type Cause string

// Residual causes, ordered roughly by diagnostic specificity.
const (
	// CauseNone: |residual| within tolerance; prediction holds.
	CauseNone Cause = "within-tolerance"
	// CauseProfileDrift: one element's live per-packet cost diverged from
	// its offline profile — the workload changed behaviour (a hidden
	// trigger flipping a cheap path expensive, a table outgrowing its
	// working set), so the prediction's inputs are stale, not its model.
	CauseProfileDrift Cause = "profile-drift"
	// CauseNUMA: the app pays remote-socket latency on its references —
	// displaced state or a migrated flow without its tables.
	CauseNUMA Cause = "numa-remote"
	// CauseRing: input or hand-off rings are saturated — a downstream
	// stage (or the admission delay) lags the source, a cost the
	// per-core contention curve does not model.
	CauseRing Cause = "ring-backpressure"
	// CauseL3: co-runner L3 pressure beyond what the profiled curve
	// priced at this operating point.
	CauseL3 Cause = "l3-contention"
	// CauseBetter: the app outperformed the prediction (negative
	// residual) — typically a gated source draining its rings in
	// off-phases, beating the saturation equilibrium.
	CauseBetter Cause = "outperformed-prediction"
	// CauseUnknown: the residual exceeds tolerance but no counter
	// evidence clears its bar.
	CauseUnknown Cause = "unexplained"
)

// WindowObs is the per-app evidence for one control window, everything
// Diagnose weighs. The runtime fills it from the same counter deltas the
// predictor consumes.
type WindowObs struct {
	App       string
	Predicted float64 // mean predicted drop across the app's workers
	Observed  float64 // per-replica observed drop this window

	RingFill        float64 // worst input/hand-off ring occupancy [0,1]
	NICDropRate     float64 // window NIC tail-drops / offered
	RemotePerPacket float64 // remote refs per processed packet
	HitRate         float64 // L3 hit fraction of the app's references
	SoloRefsPerSec  float64 // profiled solo reference rate (0 when unprofiled)
	CompetingRefs   float64 // other workers' L3 refs/sec on the app's socket(s)

	// Per-direction hand-off spin-poll deltas across the app's cuts this
	// window. Push polls are the producer spinning on a full ring (its
	// consumer lags); pop polls are the consumer spinning on an empty
	// ring (its producer starves it). The ring-backpressure rung uses
	// whichever direction dominates to name the side at fault.
	HandoffPushPolls uint64
	HandoffPopPolls  uint64

	// Per-element profile-drift evidence, filled by the runtime's online
	// cost attribution when an element's live cost diverged from its
	// offline baseline. DriftElement is empty when no element drifted.
	DriftElement   string  // name of the most-drifted element
	DriftRefRatio  float64 // live refs/pkt over baseline refs/pkt
	DriftLiveRefs  float64 // live refs/pkt of that element
	DriftBaseRefs  float64 // offline baseline refs/pkt (0 when unprofiled)
	DriftLiveCycPP float64 // live cycles/pkt of that element
	DriftKnown     bool    // the element exists in the offline profile (its baseline may still be ~0)
}

// Residual is one (window, app) point of the prediction-residual time
// series: the paper's accuracy metric as live telemetry, with a cause.
type Residual struct {
	Quantum   int     `json:"quantum"`
	Time      float64 `json:"time"` // virtual seconds since measurement start
	App       string  `json:"app"`
	Predicted float64 `json:"predicted_drop"`
	Observed  float64 `json:"observed_drop"`
	Residual  float64 `json:"residual"` // observed − predicted
	Cause     Cause   `json:"cause"`
	Evidence  string  `json:"evidence,omitempty"`
}

// Diagnosis evidence thresholds: remote references per packet that mark
// displaced state, ring occupancy that marks backpressure, and the
// competing-reference fraction of the app's own solo rate that marks
// significant L3 pressure.
const (
	remoteEvidence = 0.5
	ringEvidence   = 0.9
	l3Evidence     = 0.5
)

// Diagnose attributes one window's residual. tol is the tolerated
// |observed − predicted|; within it the cause is CauseNone.
func Diagnose(tol float64, o WindowObs) (Cause, string) {
	r := o.Observed - o.Predicted
	switch {
	case r >= -tol && r <= tol:
		return CauseNone, ""
	case r < -tol:
		return CauseBetter, fmt.Sprintf(
			"observed drop %.1f%% under prediction %.1f%% — rings drained faster than the saturation model assumes (gated source or transient headroom)",
			o.Observed*100, o.Predicted*100)
	}
	// Observed worse than predicted: rank the evidence, most specific
	// first. A drifted element profile names the exact element whose
	// behaviour changed; remote references name displaced state outright;
	// saturated rings name a pipeline cost outside the per-core model;
	// competing reference pressure names contention the curve
	// under-priced.
	if o.DriftElement != "" {
		if o.DriftKnown {
			return CauseProfileDrift, fmt.Sprintf(
				"element %s runs at %.1f refs/pkt vs %.2f profiled (%.1fx, %.0f cyc/pkt) — its behaviour changed since profiling; the offline profile is stale",
				o.DriftElement, o.DriftLiveRefs, o.DriftBaseRefs, o.DriftRefRatio, o.DriftLiveCycPP)
		}
		return CauseProfileDrift, fmt.Sprintf(
			"element %s runs at %.1f refs/pkt (%.0f cyc/pkt) with no offline baseline — it appeared after profiling; the offline profile is stale",
			o.DriftElement, o.DriftLiveRefs, o.DriftLiveCycPP)
	}
	if o.RemotePerPacket >= remoteEvidence {
		return CauseNUMA, fmt.Sprintf(
			"%.2f remote refs/pkt — state or buffers are homed on a remote socket; every table reference crosses the interconnect",
			o.RemotePerPacket)
	}
	if o.RingFill >= ringEvidence || o.NICDropRate > tol {
		// The poll directions disambiguate which side of a congested cut
		// is at fault: producer spins (push polls) mean the consumer
		// lags, consumer spins (pop polls) mean the producer starves it.
		// Requiring a 2× majority keeps mixed evidence on the generic
		// message.
		switch {
		case o.HandoffPushPolls > 0 && o.HandoffPushPolls >= 2*o.HandoffPopPolls:
			return CauseRing, fmt.Sprintf(
				"ring %.0f%% full, NIC drop rate %.1f%%, %d producer spin-polls — the consumer stage lags the cut; the per-core curve does not price queueing",
				o.RingFill*100, o.NICDropRate*100, o.HandoffPushPolls)
		case o.HandoffPopPolls > 0 && o.HandoffPopPolls >= 2*o.HandoffPushPolls:
			return CauseRing, fmt.Sprintf(
				"ring %.0f%% full, NIC drop rate %.1f%%, %d consumer spin-polls — the producer stage starves the cut; an upstream stage or admission delay lags the source",
				o.RingFill*100, o.NICDropRate*100, o.HandoffPopPolls)
		}
		return CauseRing, fmt.Sprintf(
			"ring %.0f%% full, NIC drop rate %.1f%% — a downstream stage or admission delay lags the source; the per-core curve does not price queueing",
			o.RingFill*100, o.NICDropRate*100)
	}
	if o.SoloRefsPerSec > 0 && o.CompetingRefs >= l3Evidence*o.SoloRefsPerSec {
		return CauseL3, fmt.Sprintf(
			"competing refs %.1fM/s vs solo %.1fM/s (hit rate %.0f%%) — co-runner L3 pressure beyond the profiled operating point",
			o.CompetingRefs/1e6, o.SoloRefsPerSec/1e6, o.HitRate*100)
	}
	return CauseUnknown, fmt.Sprintf(
		"residual %+.1f%% with no dominant counter evidence (rem/pkt %.2f, ring %.0f%%, competing refs %.1fM/s)",
		r*100, o.RemotePerPacket, o.RingFill*100, o.CompetingRefs/1e6)
}

// NewResidual assembles one time-series point from a window's evidence.
func NewResidual(quantum int, tsec, tol float64, o WindowObs) Residual {
	cause, evidence := Diagnose(tol, o)
	return Residual{
		Quantum:   quantum,
		Time:      tsec,
		App:       o.App,
		Predicted: o.Predicted,
		Observed:  o.Observed,
		Residual:  o.Observed - o.Predicted,
		Cause:     cause,
		Evidence:  evidence,
	}
}
