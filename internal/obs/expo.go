package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every registered series, in
// registration order — the unit both exposition formats render. Taking
// one only reads atomics, so it is safe while workers are mid-quantum.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family's snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Kind   Kind             `json:"kind"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one label combination's snapshot. Value carries a
// counter's count or a gauge's level; histograms fill Buckets (cumulative
// counts per upper bound, +Inf last), Sum, and Count instead.
type SeriesSnapshot struct {
	LabelValues []string  `json:"label_values,omitempty"`
	Value       float64   `json:"value"`
	Bounds      []float64 `json:"bounds,omitempty"`
	Buckets     []uint64  `json:"buckets,omitempty"`
	Sum         float64   `json:"sum,omitempty"`
	Count       uint64    `json:"count,omitempty"`
}

// Snapshot copies every series' current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var snap Snapshot
	for _, f := range fams {
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Labels: f.labelNames}
		for _, s := range series {
			ss := SeriesSnapshot{LabelValues: s.labelValues}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = s.gauge.Value()
			case KindHistogram:
				ss.Bounds = f.buckets
				ss.Buckets = make([]uint64, len(s.hist.counts))
				cum := uint64(0)
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					ss.Buckets[i] = cum
				}
				ss.Sum = s.hist.Sum()
				ss.Count = s.hist.Count()
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one sample line per
// series, histogram _bucket/_sum/_count expansion.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, ss := range f.Series {
			switch f.Kind {
			case KindHistogram:
				cum := uint64(0)
				for i, c := range ss.Buckets {
					cum = c
					le := "+Inf"
					if i < len(ss.Bounds) {
						le = formatFloat(ss.Bounds[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name, labelSet(f.Labels, ss.LabelValues, "le", le), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, labelSet(f.Labels, ss.LabelValues), formatFloat(ss.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, labelSet(f.Labels, ss.LabelValues), ss.Count)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.Name, labelSet(f.Labels, ss.LabelValues), formatFloat(ss.Value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the snapshot as indented JSON (the machine-readable
// twin of the Prometheus page).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// labelSet renders {k="v",...} from parallel name/value slices plus
// optional extra pairs; it renders nothing when there are no labels.
func labelSet(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		emit(n, v)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// formatFloat renders a sample value the way Prometheus clients do:
// integers without an exponent, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
