package obs

import (
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text exposition (scrape target)
//	/metrics.json  the same snapshot as JSON
//
// Every request takes a fresh snapshot, so a scrape observes a live
// dataplane without stopping it (snapshots only read atomics; safe under
// the race detector while workers run).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	return mux
}

// Serve listens on addr and serves Handler(r) until the returned server
// is closed. It returns once the listener is bound, so a caller can
// scrape immediately; the serve loop runs on its own goroutine. The
// returned server's Addr holds the bound address (useful with ":0").
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Addr:              ln.Addr().String(),
		Handler:           Handler(r),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
