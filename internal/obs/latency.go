package obs

import (
	"math"
	"math/bits"
)

// LatHist is a log-bucketed latency histogram for end-to-end packet
// latencies measured in core-clock cycles. Buckets grow geometrically —
// each power-of-two octave is split into 8 linear sub-buckets, so bucket
// width is at most 12.5% of its lower bound and a quantile read off the
// geometric bucket midpoint is within ~6% of the exact value at any
// scale from 64 cycles to 2^30 cycles (underflow and overflow buckets
// catch the rest). That error bound is what makes the histogram safe to
// drive SLO decisions: a p99 estimate cannot be off by more than one
// bucket's width.
//
// Unlike the registry's atomic Histogram, LatHist is a plain value with
// no internal synchronisation: the runtime keeps one shard per worker
// (single writer, written only from that worker's goroutine) and merges
// shards at quantum barriers, the same ownership discipline as
// hw.ElemCell. Observe is a few integer ops and never allocates.
type LatHist struct {
	counts [latBuckets]uint64
	sum    uint64
	count  uint64
}

// Bucket layout: values below 2^latMinExp share one underflow bucket,
// values at or above 2^latMaxExp one overflow bucket; in between, each
// octave [2^e, 2^(e+1)) is split into latSub equal sub-buckets.
const (
	latMinExp  = 6  // smallest resolved value: 64 cycles
	latMaxExp  = 30 // ~1.07e9 cycles; beyond that, overflow
	latSubBits = 3
	latSub     = 1 << latSubBits // sub-buckets per octave
	latBuckets = (latMaxExp-latMinExp)*latSub + 2
)

// latBucketOf maps a latency to its bucket index.
func latBucketOf(v uint64) int {
	if v < 1<<latMinExp {
		return 0
	}
	e := bits.Len64(v) - 1 // floor(log2 v) >= latMinExp
	if e >= latMaxExp {
		return latBuckets - 1
	}
	sub := int((v >> (uint(e) - latSubBits)) & (latSub - 1))
	return 1 + (e-latMinExp)*latSub + sub
}

// latBoundsOf returns bucket i's value range [lo, hi).
func latBoundsOf(i int) (lo, hi uint64) {
	switch {
	case i <= 0:
		return 0, 1 << latMinExp
	case i >= latBuckets-1:
		return 1 << latMaxExp, 1 << (latMaxExp + 1)
	}
	k := i - 1
	e := uint(latMinExp + k/latSub)
	sub := uint64(k % latSub)
	return (latSub + sub) << (e - latSubBits), (latSub + sub + 1) << (e - latSubBits)
}

// Observe records one latency.
//
//dataplane:hotpath
func (h *LatHist) Observe(v uint64) {
	h.counts[latBucketOf(v)]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *LatHist) Count() uint64 { return h.count }

// Sum returns the sum of all observations, in cycles.
func (h *LatHist) Sum() uint64 { return h.sum }

// Mean returns the mean latency in cycles, 0 when empty.
func (h *LatHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds other's observations into h.
func (h *LatHist) Merge(other *LatHist) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum += other.sum
	h.count += other.count
}

// Sub returns the histogram of observations recorded since prev (a
// previously copied snapshot of h) — the per-window delta.
func (h *LatHist) Sub(prev *LatHist) LatHist {
	var d LatHist
	for i := range h.counts {
		d.counts[i] = h.counts[i] - prev.counts[i]
	}
	d.sum = h.sum - prev.sum
	d.count = h.count - prev.count
	return d
}

// Quantile estimates the q-th quantile (q in [0,1]) in cycles: the
// geometric midpoint of the bucket holding the q-th observation. Returns
// 0 for an empty histogram; overflow-bucket quantiles report the
// overflow bound itself (the histogram cannot resolve beyond it).
func (h *LatHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lo, hi := latBoundsOf(i)
			if i == 0 {
				return float64(hi) / 2
			}
			if i == latBuckets-1 {
				return float64(lo)
			}
			return math.Sqrt(float64(lo) * float64(hi))
		}
	}
	lo, _ := latBoundsOf(latBuckets - 1)
	return float64(lo)
}

// CountOver estimates how many observations exceeded t cycles, linearly
// interpolating within the bucket t falls into. This is the SLO
// burn-rate numerator: packets over the latency target.
func (h *LatHist) CountOver(t uint64) uint64 {
	var n float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := latBoundsOf(i)
		switch {
		case lo >= t:
			n += float64(c)
		case hi <= t:
		default:
			n += float64(c) * float64(hi-t) / float64(hi-lo)
		}
	}
	return uint64(n + 0.5)
}
