package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines while a
// reader snapshots continuously: the final count must be exact and every
// intermediate snapshot monotonic (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "t", "shard").With("0")
	const writers, perWriter = 8, 10000

	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := reg.Snapshot()
			v := s.Families[0].Series[0].Value
			if v < last {
				snapErr = &nonMonotonicErr{last, v}
				return
			}
			last = v
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
}

type nonMonotonicErr struct{ last, v float64 }

func (e *nonMonotonicErr) Error() string { return "snapshot went backwards" }

// TestGaugeHistogramConcurrent exercises gauge Add and histogram Observe
// from concurrent writers with a concurrent snapshotter.
func TestGaugeHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge", "t").With()
	h := reg.Histogram("test_hist", "t", []float64{1, 2, 4}).With()
	const writers, perWriter = 8, 5000

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				g.Add(1)
				h.Observe(float64(j % 5))
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	if got := g.Value(); got != writers*perWriter {
		t.Fatalf("gauge = %g, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	wantSum := float64(writers) * perWriter / 5 * (0 + 1 + 2 + 3 + 4)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestVecReuse checks that With returns the same handle for the same
// labels and that re-registration returns the existing family.
func TestVecReuse(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "t", "w").With("1")
	b := reg.Counter("x_total", "t", "w").With("1")
	if a != b {
		t.Fatal("same labels gave different counter handles")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared handle reads %d, want 3", b.Value())
	}
}

// TestPrometheusExposition locks the text format: HELP/TYPE headers,
// label rendering and escaping, histogram bucket expansion.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dp_packets_total", "packets processed", "worker", "app").With("0", `na"t`).Add(7)
	reg.Gauge("dp_ring_fill", "ring occupancy fraction").With().Set(0.5)
	h := reg.Histogram("dp_batch", "batch fill", []float64{1, 8, 32}).With()
	h.Observe(1)
	h.Observe(9)

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP dp_packets_total packets processed\n",
		"# TYPE dp_packets_total counter\n",
		`dp_packets_total{worker="0",app="na\"t"} 7` + "\n",
		"# TYPE dp_ring_fill gauge\n",
		"dp_ring_fill 0.5\n",
		"# TYPE dp_batch histogram\n",
		`dp_batch_bucket{le="1"} 1` + "\n",
		`dp_batch_bucket{le="8"} 1` + "\n",
		`dp_batch_bucket{le="32"} 2` + "\n",
		`dp_batch_bucket{le="+Inf"} 2` + "\n",
		"dp_batch_sum 10\n",
		"dp_batch_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// The zero-allocation acceptance bar for these updates lives in the
// consolidated root-level gate (go test -run TestHotPathAllocs); the
// benchmarks below report ns/op for the atomics.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("a_total", "t", "w").With("0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("b", "t", "w").With("0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("c", "t", []float64{1, 2, 4, 8, 16, 32}, "w").With("0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 31))
	}
}
