package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// fixedTracer builds a deterministic two-stage, two-packet trace: the
// shape a staged chain records, with known virtual timestamps.
func fixedTracer() *Tracer {
	tr := NewTracer(1, 64, 2)
	tr.SetProcess(1, "nat/0")
	tr.SetThread(0, "worker0@core0")
	tr.SetThread(1, "worker1@core4")
	// Packet 1: stage 0 exec [1000,1400] ending in an enqueue; stage 1
	// exec [1700,2600] starting with the dequeue. Packet 2 follows.
	tr.Shard(0).Exec(TraceEvent{Trace: 1, Pid: 1, Tid: 0, Stage: 0, Start: 1000, End: 1400, Enqueued: true})
	tr.Shard(1).Exec(TraceEvent{Trace: 1, Pid: 1, Tid: 1, Stage: 1, Start: 1700, End: 2600, Dequeued: true})
	tr.Shard(0).Exec(TraceEvent{Trace: 2, Pid: 1, Tid: 0, Stage: 0, Start: 1500, End: 1900, Enqueued: true})
	tr.Shard(1).Exec(TraceEvent{Trace: 2, Pid: 1, Tid: 1, Stage: 1, Start: 2600, End: 3500, Dequeued: true})
	return tr
}

// TestWriteChromeGolden locks the Chrome trace-event export byte for
// byte: stable event ordering, metadata, span/flow shapes. Regenerate
// with go test ./internal/obs -run TestWriteChromeGolden -update-golden.
func TestWriteChromeGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixedTracer().WriteChrome(&b, 1e9); err != nil { // 1 GHz: 1000 cycles = 1 µs
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("Chrome trace export drifted from golden file.\ngot:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

// TestWriteChromeSchema validates the export against the trace-event
// schema Perfetto requires: a traceEvents array whose entries carry
// name/ph/ts/pid/tid, X events a non-negative dur, and flow s/f pairs
// sharing an id.
func TestWriteChromeSchema(t *testing.T) {
	var b bytes.Buffer
	if err := fixedTracer().WriteChrome(&b, 1e9); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	flows := map[string][2]int{} // id -> (starts, finishes)
	spans := 0
	for _, ev := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			spans++
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				t.Fatalf("X event with bad dur: %v", ev)
			}
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event with non-numeric ts: %v", ev)
			}
		case "s":
			id := ev["id"].(string)
			f := flows[id]
			f[0]++
			flows[id] = f
		case "f":
			id := ev["id"].(string)
			f := flows[id]
			f[1]++
			flows[id] = f
		}
	}
	if spans != 4 {
		t.Errorf("expected 4 spans, got %d", spans)
	}
	for id, f := range flows {
		if f[0] != 1 || f[1] != 1 {
			t.Errorf("flow %s has %d starts / %d finishes, want 1/1", id, f[0], f[1])
		}
	}
}

// TestTracerSampling checks the 1-in-N decision and shard overflow
// accounting.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 2, 1)
	s := tr.Shard(0)
	ids := 0
	for i := 0; i < 16; i++ {
		if s.Sample() != 0 {
			ids++
		}
	}
	if ids != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4, want 4", ids)
	}
	for i := 0; i < 5; i++ {
		s.Exec(TraceEvent{Trace: uint64(i + 1)})
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3 (capacity 2)", got)
	}
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
}
