// Package obs is the dataplane's unified observability layer: a metrics
// registry whose hot-path updates are single atomic operations (zero
// allocations, so worker goroutines can publish from inside their packet
// loops), snapshot-on-read exposition in Prometheus text and JSON,
// packet-sampled chain tracing exported as Chrome trace-event JSON, and a
// prediction-residual diagnoser.
//
// The paper's method is built on exactly this telemetry: per-core
// hardware counters (cycles, L3 refs/hits, remote references) feed the
// offline profiles and the online drop prediction, and its Section 5
// diagnosis story reads the same counters to name the aggressor when an
// SLA is violated. This package turns that in-process telemetry into an
// operator surface — a live scrape endpoint, a residual time series with
// an attributed cause (L3 contention, ring backpressure, or remote NUMA
// references), and per-stage packet traces whose virtual-time gaps are
// the charged hand-off costs.
//
// Concurrency model: metric handles (Counter, Gauge, Histogram) are safe
// for concurrent use; every update is a plain atomic on a cache-line
// padded cell, so one writer per series (the per-worker sharding the
// runtime uses) never contends and racy multi-writer use is still
// correct. Vec lookup (With) locks and may allocate — resolve handles at
// setup time, not on the hot path. Snapshots and exposition only read
// atomics and can run while workers are mid-quantum, including under the
// race detector.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// Kind is a metric family's type.
type Kind string

// Metric kinds, matching the Prometheus exposition TYPE names.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is one named metric family: a kind, label names, and the series
// created so far.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// series is one label combination's storage. Exactly one of the typed
// handles is non-nil, matching the family kind.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register creates or fetches a family, validating that re-registration
// agrees on kind and label names (a programming error otherwise).
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labelNames []string) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !nameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !sameStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered with different kind or labels", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		byKey:      map[string]*series{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesFor creates or fetches the series for one label-value tuple.
func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := ""
	for _, v := range values {
		key += v + "\x00"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// Counter registers (or fetches) a counter family and returns its vec.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, nil, labelNames)}
}

// Gauge registers (or fetches) a gauge family and returns its vec.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, nil, labelNames)}
}

// Histogram registers (or fetches) a histogram family with the given
// upper bucket bounds (sorted ascending; a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %s bucket bounds must be sorted", name))
	}
	return &HistogramVec{r.register(name, help, KindHistogram, append([]float64(nil), buckets...), labelNames)}
}

// CounterVec resolves label tuples to Counter handles.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Setup path: locks and may allocate.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.seriesFor(labelValues).counter
}

// GaugeVec resolves label tuples to Gauge handles.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values, creating it on
// first use. Setup path: locks and may allocate.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.seriesFor(labelValues).gauge
}

// HistogramVec resolves label tuples to Histogram handles.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use. Setup path: locks and may allocate.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.seriesFor(labelValues).hist
}
