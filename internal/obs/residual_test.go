package obs

import (
	"strings"
	"testing"
)

func TestDiagnoseWithinTolerance(t *testing.T) {
	cause, _ := Diagnose(0.05, WindowObs{Predicted: 0.10, Observed: 0.12})
	if cause != CauseNone {
		t.Fatalf("cause = %s, want %s", cause, CauseNone)
	}
}

func TestDiagnoseBetter(t *testing.T) {
	cause, ev := Diagnose(0.05, WindowObs{Predicted: 0.30, Observed: 0.05})
	if cause != CauseBetter {
		t.Fatalf("cause = %s, want %s", cause, CauseBetter)
	}
	if ev == "" {
		t.Fatal("no evidence string")
	}
}

// TestDiagnosePriority checks the attribution ladder: remote references
// outrank ring fill, ring fill outranks competing-reference pressure,
// and bare divergence lands in unexplained.
func TestDiagnosePriority(t *testing.T) {
	base := WindowObs{
		Predicted:      0.10,
		Observed:       0.30,
		SoloRefsPerSec: 10e6,
	}

	o := base
	o.RemotePerPacket = 2.0
	o.RingFill = 1.0
	o.CompetingRefs = 20e6
	if cause, ev := Diagnose(0.05, o); cause != CauseNUMA {
		t.Fatalf("cause = %s, want %s", cause, CauseNUMA)
	} else if !strings.Contains(ev, "remote") {
		t.Fatalf("evidence %q does not mention remote refs", ev)
	}

	o = base
	o.RingFill = 0.95
	o.CompetingRefs = 20e6
	if cause, _ := Diagnose(0.05, o); cause != CauseRing {
		t.Fatalf("cause = %s, want %s", cause, CauseRing)
	}

	o = base
	o.NICDropRate = 0.2
	if cause, _ := Diagnose(0.05, o); cause != CauseRing {
		t.Fatalf("nic drops: cause = %s, want %s", cause, CauseRing)
	}

	o = base
	o.CompetingRefs = 20e6
	o.HitRate = 0.4
	if cause, ev := Diagnose(0.05, o); cause != CauseL3 {
		t.Fatalf("cause = %s, want %s", cause, CauseL3)
	} else if !strings.Contains(ev, "competing") {
		t.Fatalf("evidence %q does not mention competition", ev)
	}

	o = base
	if cause, _ := Diagnose(0.05, o); cause != CauseUnknown {
		t.Fatalf("cause = %s, want %s", cause, CauseUnknown)
	}
}

// TestDiagnoseRingDirection checks the ring rung's fault attribution:
// a producer spin-poll majority blames the lagging consumer, a consumer
// spin-poll majority blames the starving producer, and mixed evidence
// keeps the generic queueing message.
func TestDiagnoseRingDirection(t *testing.T) {
	base := WindowObs{Predicted: 0.10, Observed: 0.30, RingFill: 0.95}

	o := base
	o.HandoffPushPolls, o.HandoffPopPolls = 1000, 100
	cause, ev := Diagnose(0.05, o)
	if cause != CauseRing || !strings.Contains(ev, "consumer stage lags") {
		t.Fatalf("push majority: cause %s, evidence %q", cause, ev)
	}

	o = base
	o.HandoffPushPolls, o.HandoffPopPolls = 100, 1000
	cause, ev = Diagnose(0.05, o)
	if cause != CauseRing || !strings.Contains(ev, "producer stage starves") {
		t.Fatalf("pop majority: cause %s, evidence %q", cause, ev)
	}

	// Mixed evidence (neither side has a 2x majority): generic message.
	o = base
	o.HandoffPushPolls, o.HandoffPopPolls = 600, 400
	cause, ev = Diagnose(0.05, o)
	if cause != CauseRing {
		t.Fatalf("mixed: cause = %s, want %s", cause, CauseRing)
	}
	if strings.Contains(ev, "consumer stage lags") || strings.Contains(ev, "producer stage starves") {
		t.Fatalf("mixed evidence picked a side: %q", ev)
	}

	// No polls at all (cut congested but nobody spun): generic message.
	o = base
	if cause, ev = Diagnose(0.05, o); cause != CauseRing ||
		strings.Contains(ev, "spin-polls") {
		t.Fatalf("no polls: cause %s, evidence %q", cause, ev)
	}
}

func TestNewResidual(t *testing.T) {
	r := NewResidual(40, 0.003, 0.05, WindowObs{
		App: "nat", Predicted: 0.1, Observed: 0.4, RemotePerPacket: 1.5,
	})
	if r.App != "nat" || r.Quantum != 40 || r.Cause != CauseNUMA {
		t.Fatalf("unexpected residual: %+v", r)
	}
	if r.Residual < 0.29 || r.Residual > 0.31 {
		t.Fatalf("residual = %g, want 0.3", r.Residual)
	}
}
