package obs

import (
	"strings"
	"testing"
)

func TestDiagnoseWithinTolerance(t *testing.T) {
	cause, _ := Diagnose(0.05, WindowObs{Predicted: 0.10, Observed: 0.12})
	if cause != CauseNone {
		t.Fatalf("cause = %s, want %s", cause, CauseNone)
	}
}

func TestDiagnoseBetter(t *testing.T) {
	cause, ev := Diagnose(0.05, WindowObs{Predicted: 0.30, Observed: 0.05})
	if cause != CauseBetter {
		t.Fatalf("cause = %s, want %s", cause, CauseBetter)
	}
	if ev == "" {
		t.Fatal("no evidence string")
	}
}

// TestDiagnosePriority checks the attribution ladder: remote references
// outrank ring fill, ring fill outranks competing-reference pressure,
// and bare divergence lands in unexplained.
func TestDiagnosePriority(t *testing.T) {
	base := WindowObs{
		Predicted:      0.10,
		Observed:       0.30,
		SoloRefsPerSec: 10e6,
	}

	o := base
	o.RemotePerPacket = 2.0
	o.RingFill = 1.0
	o.CompetingRefs = 20e6
	if cause, ev := Diagnose(0.05, o); cause != CauseNUMA {
		t.Fatalf("cause = %s, want %s", cause, CauseNUMA)
	} else if !strings.Contains(ev, "remote") {
		t.Fatalf("evidence %q does not mention remote refs", ev)
	}

	o = base
	o.RingFill = 0.95
	o.CompetingRefs = 20e6
	if cause, _ := Diagnose(0.05, o); cause != CauseRing {
		t.Fatalf("cause = %s, want %s", cause, CauseRing)
	}

	o = base
	o.NICDropRate = 0.2
	if cause, _ := Diagnose(0.05, o); cause != CauseRing {
		t.Fatalf("nic drops: cause = %s, want %s", cause, CauseRing)
	}

	o = base
	o.CompetingRefs = 20e6
	o.HitRate = 0.4
	if cause, ev := Diagnose(0.05, o); cause != CauseL3 {
		t.Fatalf("cause = %s, want %s", cause, CauseL3)
	} else if !strings.Contains(ev, "competing") {
		t.Fatalf("evidence %q does not mention competition", ev)
	}

	o = base
	if cause, _ := Diagnose(0.05, o); cause != CauseUnknown {
		t.Fatalf("cause = %s, want %s", cause, CauseUnknown)
	}
}

func TestNewResidual(t *testing.T) {
	r := NewResidual(40, 0.003, 0.05, WindowObs{
		App: "nat", Predicted: 0.1, Observed: 0.4, RemotePerPacket: 1.5,
	})
	if r.App != "nat" || r.Quantum != 40 || r.Cause != CauseNUMA {
		t.Fatalf("unexpected residual: %+v", r)
	}
	if r.Residual < 0.29 || r.Residual > 0.31 {
		t.Fatalf("residual = %g, want 0.3", r.Residual)
	}
}
