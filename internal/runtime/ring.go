package runtime

import (
	"fmt"
	"sync/atomic"
)

// Ring is a bounded single-producer single-consumer queue of packets,
// the software analogue of a NIC receive queue: the dispatcher (the
// "NIC") produces into it, exactly one worker consumes from it. Packet
// bytes are copied into pre-allocated slots, so steady-state operation
// performs no allocation; when the ring is full the producer drops the
// packet, which is precisely how input overload surfaces on a real
// dataplane (tail drop at the receive queue).
//
// head and tail are monotonically increasing; (tail − head) is the
// occupancy. The producer only writes tail, the consumer only writes
// head, and each slot is published by the tail store (release) and
// consumed before the head store (acquire via atomic loads), the standard
// SPSC discipline.
type Ring struct {
	slots  [][]byte
	lens   []int32
	stamps []uint64 // enqueue timestamps (virtual cycles), slot-parallel
	mask   uint64

	_    [64]byte // keep producer and consumer cursors on separate lines
	tail atomic.Uint64
	_    [64]byte
	head atomic.Uint64
}

// NewRing builds a ring of the given capacity (rounded up to a power of
// two, minimum 2) whose slots hold packets of up to maxPacket bytes.
func NewRing(capacity, maxPacket int) *Ring {
	if capacity <= 0 || maxPacket <= 0 {
		panic(fmt.Sprintf("runtime: invalid ring %d x %d", capacity, maxPacket))
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring{
		slots:  make([][]byte, n),
		lens:   make([]int32, n),
		stamps: make([]uint64, n),
		mask:   uint64(n - 1),
	}
	for i := range r.slots {
		r.slots[i] = make([]byte, maxPacket)
	}
	return r
}

// Cap returns the ring's capacity in packets.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the current occupancy. It is safe to call from any
// goroutine; the value is naturally racy while producer and consumer run.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Consumed returns the cumulative number of packets popped from the
// ring — the credit counter the dispatcher's backpressure accounting
// differences across barriers.
func (r *Ring) Consumed() uint64 { return r.head.Load() }

// Push copies p into the ring, stamped with the virtual-cycle time at
// which it was enqueued (the start of the packet's end-to-end latency).
// It returns false — the packet is dropped — when the ring is full or p
// exceeds the slot size. Only the single producer may call Push.
//
//dataplane:hotpath
func (r *Ring) Push(p []byte, stamp uint64) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.slots)) {
		return false
	}
	slot := r.slots[t&r.mask]
	if len(p) > len(slot) {
		return false
	}
	copy(slot, p)
	r.lens[t&r.mask] = int32(len(p))
	r.stamps[t&r.mask] = stamp
	r.tail.Store(t + 1) // publish
	return true
}

// Pop copies the next packet into dst and returns its length and enqueue
// stamp. It returns ok=false when the ring is empty. Only the single
// consumer may call Pop; dst must hold at least the ring's maxPacket
// bytes.
//
//dataplane:hotpath
func (r *Ring) Pop(dst []byte) (n int, stamp uint64, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, 0, false
	}
	ln := int(r.lens[h&r.mask])
	copy(dst[:ln], r.slots[h&r.mask])
	stamp = r.stamps[h&r.mask]
	r.head.Store(h + 1) // release the slot
	return ln, stamp, true
}
