package runtime

import (
	"fmt"
	"sync/atomic"
)

// Ring is a bounded single-producer single-consumer queue of packets,
// the software analogue of a NIC receive queue: the dispatcher (the
// "NIC") produces into it, exactly one worker consumes from it. Packet
// bytes are copied into pre-allocated slots, so steady-state operation
// performs no allocation; when the ring is full the producer drops the
// packet, which is precisely how input overload surfaces on a real
// dataplane (tail drop at the receive queue).
//
// head and tail are monotonically increasing; (tail − head) is the
// occupancy. The producer only writes tail, the consumer only writes
// head, and each slot is published by the tail store (release) and
// consumed before the head store (acquire via atomic loads), the standard
// SPSC discipline.
//
// Batched operation moves each cursor once per batch instead of once per
// slot: the producer stages slots (Stage) and publishes them with a
// single tail store (Commit); the consumer reads ahead of head
// (PopStaged) and releases the slots with a single head store (Release).
// staged and taken are plain fields — each is touched only by its own
// side of the ring, so they need no atomicity.
type Ring struct {
	slots  [][]byte
	lens   []int32
	stamps []uint64 // enqueue timestamps (virtual cycles), slot-parallel
	mask   uint64

	_      [64]byte // keep producer and consumer cursors on separate lines
	tail   atomic.Uint64
	staged uint64 // producer-side: slots written beyond tail, unpublished
	_      [64]byte
	head   atomic.Uint64
	taken  uint64 // consumer-side: slots read beyond head, unreleased
}

// NewRing builds a ring of the given capacity (rounded up to a power of
// two, minimum 2) whose slots hold packets of up to maxPacket bytes.
func NewRing(capacity, maxPacket int) *Ring {
	if capacity <= 0 || maxPacket <= 0 {
		panic(fmt.Sprintf("runtime: invalid ring %d x %d", capacity, maxPacket))
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring{
		slots:  make([][]byte, n),
		lens:   make([]int32, n),
		stamps: make([]uint64, n),
		mask:   uint64(n - 1),
	}
	for i := range r.slots {
		r.slots[i] = make([]byte, maxPacket)
	}
	return r
}

// Cap returns the ring's capacity in packets.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the current occupancy. It is safe to call from any
// goroutine; the value is naturally racy while producer and consumer run.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Consumed returns the cumulative number of packets popped from the
// ring — the credit counter the dispatcher's backpressure accounting
// differences across barriers.
func (r *Ring) Consumed() uint64 { return r.head.Load() }

// Push copies p into the ring, stamped with the virtual-cycle time at
// which it was enqueued (the start of the packet's end-to-end latency).
// It returns false — the packet is dropped — when the ring is full or p
// exceeds the slot size. Only the single producer may call Push. A Push
// also publishes any slots the producer had staged.
//
//dataplane:hotpath
func (r *Ring) Push(p []byte, stamp uint64) bool {
	if !r.Stage(p, stamp) {
		r.Commit()
		return false
	}
	r.Commit()
	return true
}

// Stage copies p into the next free slot without publishing it: the
// consumer cannot see staged slots until Commit stores the tail cursor
// once for the whole batch. Returns false when the ring (including
// already-staged slots) is full or p exceeds the slot size. Only the
// single producer may call Stage.
//
//dataplane:hotpath
func (r *Ring) Stage(p []byte, stamp uint64) bool {
	t := r.tail.Load() + r.staged
	if t-r.head.Load() >= uint64(len(r.slots)) {
		return false
	}
	slot := r.slots[t&r.mask]
	if len(p) > len(slot) {
		return false
	}
	copy(slot, p)
	r.lens[t&r.mask] = int32(len(p))
	r.stamps[t&r.mask] = stamp
	r.staged++
	return true
}

// Commit publishes every staged slot with a single tail store — the
// batch analogue of Push's per-packet publish. A no-op when nothing is
// staged. Only the single producer may call Commit.
//
//dataplane:hotpath
func (r *Ring) Commit() {
	if r.staged == 0 {
		return
	}
	r.tail.Store(r.tail.Load() + r.staged) // publish the batch
	r.staged = 0
}

// PushBatch stages every packet of ps (all stamped alike) and publishes
// them with one tail store. It returns how many were accepted; a short
// return means the ring filled (packets beyond the return were dropped,
// exactly as scalar Push would have dropped them one by one).
//
//dataplane:hotpath
func (r *Ring) PushBatch(ps [][]byte, stamp uint64) int {
	n := 0
	for _, p := range ps {
		if !r.Stage(p, stamp) {
			break
		}
		n++
	}
	r.Commit()
	return n
}

// Pop copies the next packet into dst and returns its length and enqueue
// stamp. It returns ok=false when the ring is empty. Only the single
// consumer may call Pop; dst must hold at least the ring's maxPacket
// bytes. A Pop also releases any slots the consumer had consumed via
// PopStaged.
//
//dataplane:hotpath
func (r *Ring) Pop(dst []byte) (n int, stamp uint64, ok bool) {
	n, stamp, ok = r.PopStaged(dst)
	r.Release()
	return n, stamp, ok
}

// PopStaged copies the next packet into dst without releasing its slot:
// the producer cannot reuse consumed slots until Release stores the head
// cursor once for the whole batch. Returns ok=false when the ring
// (beyond already-consumed slots) is empty. Only the single consumer may
// call PopStaged.
//
//dataplane:hotpath
func (r *Ring) PopStaged(dst []byte) (n int, stamp uint64, ok bool) {
	h := r.head.Load() + r.taken
	if h == r.tail.Load() {
		return 0, 0, false
	}
	ln := int(r.lens[h&r.mask])
	copy(dst[:ln], r.slots[h&r.mask])
	stamp = r.stamps[h&r.mask]
	r.taken++
	return ln, stamp, true
}

// Release frees every slot consumed since the last Release with a single
// head store — the batch analogue of Pop's per-packet release. A no-op
// when nothing is pending. Only the single consumer may call Release.
//
//dataplane:hotpath
func (r *Ring) Release() {
	if r.taken == 0 {
		return
	}
	r.head.Store(r.head.Load() + r.taken) // release the batch
	r.taken = 0
}

// PopBatch drains up to len(dsts) packets into the caller's buffers and
// releases them with one head store. lens and stamps receive the
// per-packet lengths and enqueue stamps; all three slices must be the
// same length. It returns how many packets were popped.
//
//dataplane:hotpath
func (r *Ring) PopBatch(dsts [][]byte, lens []int, stamps []uint64) int {
	n := 0
	for n < len(dsts) {
		ln, stamp, ok := r.PopStaged(dsts[n])
		if !ok {
			break
		}
		lens[n] = ln
		stamps[n] = stamp
		n++
	}
	r.Release()
	return n
}
