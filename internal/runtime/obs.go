package runtime

import (
	"fmt"

	"pktpredict/internal/hw"
	"pktpredict/internal/obs"
)

// Observability glue: when Config.Metrics is set, the runtime publishes
// its telemetry into an obs.Registry — worker hot-path counters updated
// from inside the packet loop (single atomic adds, no allocations), and
// control-window gauges/counters written at barriers from the same
// counter deltas the predictor consumes. When Config.TraceSample is set,
// staged chains tag one in N packets with a trace ID that rides the
// hand-off descriptors; every stage records its exec span in virtual
// time, exported as Chrome trace-event JSON (Runtime.Tracer).
//
// The control loop also maintains the prediction-residual time series:
// each window, each profiled app's observed drop is compared against the
// live prediction, and divergence beyond Config.ResidualTolerance is
// attributed by obs.Diagnose to L3 contention, ring backpressure, or
// remote NUMA references — the paper's overload-diagnosis shape turned
// on the model itself.

// rtObs holds the runtime's registered metric handles. All With lookups
// happen here at build time; workers and the control loop only touch
// resolved handles.
type rtObs struct {
	reg *obs.Registry

	// Per-worker control-window gauges, indexed by worker id.
	pps, refs, hits, remote, remotePkt, cycPkt []*obs.Gauge
	ringDepth, ringFill, predDrop, delay       []*obs.Gauge

	// Per-worker hardware-counter totals: hwTotals[worker][i] follows the
	// enumeration order of hw.Counters.Each.
	hwTotals [][]*obs.Counter

	// Per-app accounting counters and drop/residual gauges.
	appOffered, appEnqueued, appNICDrops   map[string]*obs.Counter
	appProcessed                           map[string]*obs.Counter
	appObserved, appPredicted, appResidual map[string]*obs.Gauge
	appCause                               map[string]map[obs.Cause]*obs.Gauge

	// Chain hand-off telemetry, one per (flow, cut). Push polls (producer
	// spins on a full ring: the consumer lags) and pop polls (consumer
	// spins on an empty ring: the producer starves it) mean opposite
	// things, so they are exposed as separate families alongside the sum.
	handoffFill      map[*chainStage]*obs.Gauge
	handoffPolls     map[*chainStage]*obs.Counter
	handoffPushPolls map[*chainStage]*obs.Counter
	handoffPopPolls  map[*chainStage]*obs.Counter

	// Worker→app binding info gauges, so a scraper can join worker series
	// to apps across live migrations.
	binding    *obs.GaugeVec
	lastBound  map[int]*obs.Gauge
	migrations *obs.Counter
	copyCycles *obs.Counter
	throttles  *obs.Counter

	// Per-element attribution families. These resolve label tuples at the
	// barrier (not the hot path): the worker label follows live
	// migrations, so the series set is discovered as flows move.
	elemCycles, elemRefs   *obs.CounterVec
	elemCycPkt, elemRefPkt *obs.GaugeVec
	appDrift               map[string]*obs.Gauge

	// Per-app end-to-end latency quantiles (label: quantile) and SLO
	// telemetry (burn gauge + breach counter, only for apps declaring a
	// target).
	appLatQ  map[string][3]*obs.Gauge
	sloBurn  map[string]*obs.Gauge
	sloTripd map[string]*obs.Counter
}

// batchBuckets derives the batch-fill histogram's buckets from the
// configured batch size: {0, 1} then powers of two up to and including
// the batch itself, so the top bucket always equals the largest possible
// fill. The previous hardcoded {0,1,2,4,8,16,32} silently saturated any
// batch above 32 into one bucket. For the default batch of 32 the
// derived buckets are identical to the historical set.
func batchBuckets(batch int) []float64 {
	if batch < 1 {
		batch = 1
	}
	buckets := []float64{0, 1}
	for b := 2; b < batch; b <<= 1 {
		buckets = append(buckets, float64(b))
	}
	if batch > 1 {
		buckets = append(buckets, float64(batch))
	}
	return buckets
}

// hwCounterNames enumerates hw.Counters.Each's stable name order once.
func hwCounterNames() []string {
	var names []string
	hw.Counters{}.Each(func(name string, _ uint64) { names = append(names, name) })
	return names
}

// residualCauses is the label universe of the cause info gauge.
var residualCauses = []obs.Cause{
	obs.CauseNone, obs.CauseProfileDrift, obs.CauseNUMA, obs.CauseRing,
	obs.CauseL3, obs.CauseBetter, obs.CauseUnknown,
}

// newRtObs registers every metric family and resolves the handles for
// this runtime's workers and apps. It also hands each worker its
// hot-path handles (packet counter, batch-fill histogram, spin-poll
// counter).
func newRtObs(reg *obs.Registry, r *Runtime) *rtObs {
	m := &rtObs{
		reg:              reg,
		appOffered:       map[string]*obs.Counter{},
		appEnqueued:      map[string]*obs.Counter{},
		appNICDrops:      map[string]*obs.Counter{},
		appProcessed:     map[string]*obs.Counter{},
		appObserved:      map[string]*obs.Gauge{},
		appPredicted:     map[string]*obs.Gauge{},
		appResidual:      map[string]*obs.Gauge{},
		appCause:         map[string]map[obs.Cause]*obs.Gauge{},
		handoffFill:      map[*chainStage]*obs.Gauge{},
		handoffPolls:     map[*chainStage]*obs.Counter{},
		handoffPushPolls: map[*chainStage]*obs.Counter{},
		handoffPopPolls:  map[*chainStage]*obs.Counter{},
		lastBound:        map[int]*obs.Gauge{},
		appDrift:         map[string]*obs.Gauge{},
		appLatQ:          map[string][3]*obs.Gauge{},
		sloBurn:          map[string]*obs.Gauge{},
		sloTripd:         map[string]*obs.Counter{},
	}

	packets := reg.Counter("dataplane_worker_packets_total",
		"packets fully processed, incremented from the worker hot path", "worker")
	batch := reg.Histogram("dataplane_worker_batch_fill",
		"packets per ring poll (batch occupancy)", batchBuckets(r.cfg.Batch), "worker")
	clipped := reg.Counter("dataplane_worker_batch_clipped_total",
		"batch polls cut short by the quantum boundary, excluded from batch_fill", "worker")
	spins := reg.Counter("dataplane_worker_spin_polls_total",
		"hand-off ring spin-wait iterations charged by this worker", "worker")

	gv := func(name, help string) *obs.GaugeVec { return reg.Gauge(name, help, "worker") } //dataplane:allow metriclint registration helper; every call below passes a constant family name
	ppsV := gv("dataplane_worker_pps", "packets per virtual second, last control window")
	refsV := gv("dataplane_worker_l3_refs_per_sec", "L3 references per virtual second (aggressiveness)")
	hitsV := gv("dataplane_worker_l3_hits_per_sec", "L3 hits per virtual second (sensitivity)")
	remV := gv("dataplane_worker_remote_refs_per_sec", "remote-socket L3 misses per virtual second")
	remPkV := gv("dataplane_worker_remote_per_packet", "remote references per processed packet (locality)")
	cycV := gv("dataplane_worker_cycles_per_packet", "core cycles per processed packet")
	depthV := gv("dataplane_worker_ring_depth", "input or hand-off ring occupancy at the barrier")
	fillV := gv("dataplane_worker_ring_fill", "ring occupancy fraction at the barrier")
	predV := gv("dataplane_worker_predicted_drop", "live curve-predicted drop for the bound flow")
	delayV := gv("dataplane_worker_delay_cycles", "admission-control delay applied to the bound flow")
	hwV := reg.Counter("dataplane_worker_hw_total",
		"per-core hardware counter totals since measurement start", "worker", "counter")

	hwNames := hwCounterNames()
	for i, w := range r.workers {
		id := fmt.Sprint(i)
		w.mPackets = packets.With(id)
		w.mBatch = batch.With(id)
		w.mClipped = clipped.With(id)
		w.mSpins = spins.With(id)
		m.pps = append(m.pps, ppsV.With(id))
		m.refs = append(m.refs, refsV.With(id))
		m.hits = append(m.hits, hitsV.With(id))
		m.remote = append(m.remote, remV.With(id))
		m.remotePkt = append(m.remotePkt, remPkV.With(id))
		m.cycPkt = append(m.cycPkt, cycV.With(id))
		m.ringDepth = append(m.ringDepth, depthV.With(id))
		m.ringFill = append(m.ringFill, fillV.With(id))
		m.predDrop = append(m.predDrop, predV.With(id))
		m.delay = append(m.delay, delayV.With(id))
		hwRow := make([]*obs.Counter, len(hwNames))
		for j, n := range hwNames {
			hwRow[j] = hwV.With(id, n)
		}
		m.hwTotals = append(m.hwTotals, hwRow)
	}

	offV := reg.Counter("dataplane_app_offered_total", "packets the traffic source generated", "app")
	enqV := reg.Counter("dataplane_app_enqueued_total", "packets accepted into input rings", "app")
	nicV := reg.Counter("dataplane_app_nic_drops_total", "packets tail-dropped at full input rings", "app")
	procV := reg.Counter("dataplane_app_processed_total", "packets that entered a worker's pipeline", "app")
	obsV := reg.Gauge("dataplane_app_observed_drop", "per-replica observed drop, last control window", "app")
	apV := reg.Gauge("dataplane_app_predicted_drop", "mean live-predicted drop, last control window", "app")
	resV := reg.Gauge("dataplane_app_residual", "observed minus predicted drop, last control window", "app")
	causeV := reg.Gauge("dataplane_app_residual_cause",
		"1 on the residual cause attributed this window, 0 elsewhere", "app", "cause")
	for _, a := range r.disp.apps {
		name := a.spec.Name
		m.appOffered[name] = offV.With(name)
		m.appEnqueued[name] = enqV.With(name)
		m.appNICDrops[name] = nicV.With(name)
		m.appProcessed[name] = procV.With(name)
		m.appObserved[name] = obsV.With(name)
		m.appPredicted[name] = apV.With(name)
		m.appResidual[name] = resV.With(name)
		causes := map[obs.Cause]*obs.Gauge{}
		for _, c := range residualCauses {
			causes[c] = causeV.With(name, string(c))
		}
		m.appCause[name] = causes
	}

	hofV := reg.Gauge("dataplane_handoff_fill",
		"forward hand-off ring occupancy fraction at the barrier", "app", "replica", "cut")
	hopV := reg.Counter("dataplane_handoff_polls_total",
		"spin-wait iterations on the cut's forward ring (producer + consumer)", "app", "replica", "cut")
	hopPushV := reg.Counter("dataplane_handoff_push_polls_total",
		"producer spin-wait iterations on the cut's forward ring (ring full: consumer lags)", "app", "replica", "cut")
	hopPopV := reg.Counter("dataplane_handoff_pop_polls_total",
		"consumer spin-wait iterations on the cut's forward ring (ring empty: producer starves)", "app", "replica", "cut")
	for _, f := range r.flows {
		for _, u := range f.stages {
			if u.out == nil {
				continue
			}
			app, rep, cut := f.app.spec.Name, fmt.Sprint(f.replica), fmt.Sprint(u.stage)
			m.handoffFill[u] = hofV.With(app, rep, cut)
			m.handoffPolls[u] = hopV.With(app, rep, cut)
			m.handoffPushPolls[u] = hopPushV.With(app, rep, cut)
			m.handoffPopPolls[u] = hopPopV.With(app, rep, cut)
		}
	}

	m.elemCycles = reg.Counter("dataplane_element_cycles_total",
		"exec cycles attributed to the element since measurement start", "element", "app", "stage", "worker")
	m.elemRefs = reg.Counter("dataplane_element_l3_refs_total",
		"L3 references attributed to the element since measurement start", "element", "app", "stage", "worker")
	m.elemCycPkt = reg.Gauge("dataplane_element_cycles_per_packet",
		"element cycles per flow packet, last control window", "element", "app", "stage", "worker")
	m.elemRefPkt = reg.Gauge("dataplane_element_refs_per_packet",
		"element L3 references per flow packet, last control window", "element", "app", "stage", "worker")
	driftV := reg.Gauge("dataplane_app_drift_ratio",
		"worst element live-over-baseline refs/pkt ratio, 0 when no element drifted", "app")
	latV := reg.Gauge("dataplane_app_latency_cycles",
		"end-to-end latency quantile in core cycles, last non-empty control window", "app", "quantile")
	burnV := reg.Gauge("dataplane_app_slo_burn_rate",
		"fraction of window packets over the latency SLO target, relative to the 1% p99 budget", "app")
	tripV := reg.Counter("dataplane_app_slo_breaches_total",
		"control windows whose window p99 exceeded the latency SLO target", "app")
	for _, a := range r.disp.apps {
		name := a.spec.Name
		m.appDrift[name] = driftV.With(name)
		m.appLatQ[name] = [3]*obs.Gauge{
			latV.With(name, "0.5"), latV.With(name, "0.99"), latV.With(name, "0.999"),
		}
		if a.spec.SLOP99US > 0 {
			m.sloBurn[name] = burnV.With(name)
			m.sloTripd[name] = tripV.With(name)
		}
	}

	m.binding = reg.Gauge("dataplane_worker_app",
		"1 while the worker runs the labelled app stage; rebound on live migration", "worker", "app", "stage")
	m.migrations = reg.Counter("dataplane_migrations_total",
		"live cross-socket re-placements performed").With()
	m.copyCycles = reg.Counter("dataplane_state_copy_cycles_total",
		"destination-core cycles spent copying migrated state").With()
	m.throttles = reg.Counter("dataplane_throttle_events_total",
		"control windows in which admission tightened a delay").With()
	return m
}

// publishWindow writes one control window's telemetry into the registry:
// per-worker gauges from the sample, hardware-counter deltas, app
// accounting deltas, hand-off ring state, and binding info. Runs at the
// barrier (workers parked), so plain reads of owner-written state are
// safe; all registry writes are atomics, so a concurrent scrape sees a
// consistent-enough page without stopping the dataplane.
func (r *Runtime) publishWindow(sample ControlSample, deltas []hw.Counters) {
	m := r.obsm
	if m == nil {
		return
	}
	for _, t := range sample.Workers {
		i := t.Worker
		m.pps[i].Set(t.PPS)
		m.refs[i].Set(t.RefsPerSec)
		m.hits[i].Set(t.HitsPerSec)
		m.remote[i].Set(t.RemoteRefsPerSec)
		m.remotePkt[i].Set(t.RemotePerPacket)
		m.cycPkt[i].Set(t.CyclesPerPacket)
		m.ringDepth[i].Set(float64(t.RingDepth))
		if t.RingCap > 0 {
			m.ringFill[i].Set(float64(t.RingDepth) / float64(t.RingCap))
		}
		m.predDrop[i].Set(t.PredictedDrop)
		m.delay[i].Set(float64(t.DelayCycles))
		for j, v := range eachValues(deltas[i]) {
			m.hwTotals[i][j].Add(v)
		}
		// Binding info: flip the gauge when a migration rebound the worker.
		if t.App == "" {
			if old := m.lastBound[i]; old != nil {
				old.Set(0)
				delete(m.lastBound, i)
			}
			continue
		}
		g := m.binding.With(fmt.Sprint(i), t.App, fmt.Sprint(t.Stage))
		if old := m.lastBound[i]; old != nil && old != g {
			old.Set(0)
		}
		g.Set(1)
		m.lastBound[i] = g
	}

	for _, a := range r.disp.apps {
		name := a.spec.Name
		m.appOffered[name].Add(a.offered - a.prevOffered)
		m.appEnqueued[name].Add(a.enqueued - a.prevEnqueued)
		m.appNICDrops[name].Add(a.nicDrops - a.prevNICDrops)
		var processed uint64
		for _, f := range a.flows {
			processed += f.packets
		}
		m.appProcessed[name].Add(processed - a.prevProcessed)
	}

	for _, f := range r.flows {
		for _, u := range f.stages {
			if u.out == nil {
				continue
			}
			m.handoffFill[u].Set(float64(u.out.Len()) / float64(u.out.Cap()))
			// The cursors roll forward in rollWindowAccounting, which runs
			// whether or not a registry is configured — windowResiduals
			// reads the same per-window deltas for diagnosis.
			push, pop := u.out.PushPolls(), u.out.PopPolls()
			m.handoffPolls[u].Add(push + pop - u.prevPushPolls - u.prevPopPolls)
			m.handoffPushPolls[u].Add(push - u.prevPushPolls)
			m.handoffPopPolls[u].Add(pop - u.prevPopPolls)
		}
	}
}

// eachValues flattens a counter delta in hw.Counters.Each order.
func eachValues(c hw.Counters) []uint64 {
	out := make([]uint64, 0, 13)
	c.Each(func(_ string, v uint64) { out = append(out, v) })
	return out
}

// overheadElem names table slot 0 in per-element telemetry: cost charged
// outside any element's Process bracket (source pulls, ring polls,
// buffer recycling).
const overheadElem = "overhead"

// elemWindow is one (flow, stage, element) cost delta over a control
// window — the unit of per-element attribution and drift detection.
type elemWindow struct {
	app     string
	element string
	stage   int
	worker  int
	pkts    uint64 // packets the flow processed this window
	cells   hw.ElemCell
}

// windowElems differences every flow's (and chain stage's) per-element
// table against its control-window cursor, skipping cells that accrued
// nothing. The cursors roll forward in rollWindowAccounting after the
// window's consumers have read them. Runs at the barrier: the owning
// workers are parked, so plain reads of their cells are safe.
func (r *Runtime) windowElems() []elemWindow {
	bound := map[*flow]int{}
	for _, w := range r.workers {
		if w.fl != nil && w.unit == nil {
			bound[w.fl] = w.id
		}
	}
	var out []elemWindow
	for _, f := range r.flows {
		if f.pipe == nil {
			continue
		}
		nodes := f.pipe.Nodes()
		name := func(i int) string {
			if i == 0 {
				return overheadElem
			}
			return nodes[i-1].Name
		}
		app := f.app.spec.Name
		pkts := f.packets - f.prevPackets
		for i := range f.elems {
			var prev hw.ElemCell
			if i < len(f.prevElems) {
				prev = f.prevElems[i]
			}
			d := f.elems[i].Sub(prev)
			if d.Cycles == 0 && d.L3Refs == 0 {
				continue
			}
			out = append(out, elemWindow{app: app, element: name(i), worker: bound[f], pkts: pkts, cells: d})
		}
		for _, u := range f.stages {
			for i := range u.elems {
				var prev hw.ElemCell
				if i < len(u.prevElems) {
					prev = u.prevElems[i]
				}
				d := u.elems[i].Sub(prev)
				if d.Cycles == 0 && d.L3Refs == 0 {
					continue
				}
				out = append(out, elemWindow{app: app, element: name(i), stage: u.stage, worker: u.workerIdx, pkts: pkts, cells: d})
			}
		}
	}
	return out
}

// publishElems writes the window's per-element cost deltas into the
// registry. Label tuples resolve here at the barrier — the worker label
// follows the flow across migrations, so a migrated flow's costs start a
// new series on its new core, as a per-core hardware profiler would see.
func (r *Runtime) publishElems(elems []elemWindow) {
	m := r.obsm
	if m == nil {
		return
	}
	for _, e := range elems {
		stage, worker := fmt.Sprint(e.stage), fmt.Sprint(e.worker)
		m.elemCycles.With(e.element, e.app, stage, worker).Add(e.cells.Cycles)
		m.elemRefs.With(e.element, e.app, stage, worker).Add(e.cells.L3Refs)
		if e.pkts > 0 {
			m.elemCycPkt.With(e.element, e.app, stage, worker).Set(float64(e.cells.Cycles) / float64(e.pkts))
			m.elemRefPkt.With(e.element, e.app, stage, worker).Set(float64(e.cells.L3Refs) / float64(e.pkts))
		}
	}
}

// Profile-drift thresholds: an element drifts when its live refs/pkt is
// at least driftRatio times its offline baseline and clears the
// significance floor (driftMinRefs); elements absent from the offline
// profile — they appeared after profiling — are compared against
// driftBaseFloor instead of zero. Memory references are the drift signal
// because trace replay makes them contention-invariant: a co-runner can
// inflate an element's cycles/pkt without its behaviour changing, but
// refs/pkt only moves when the element itself issues different accesses.
// (The dual limitation is honest too: a purely compute-bound behaviour
// change is invisible to this detector; see docs/observability.md.)
const (
	driftRatio     = 2.0
	driftMinRefs   = 0.5
	driftBaseFloor = 0.25
)

// windowDrift scans one app's per-element window costs for the element
// that most exceeds its offline baseline, filling the WindowObs drift
// evidence. It is a no-op unless the app's profile carries element
// baselines (len(prof.Elements) > 0) — hand-built profiles without them
// must not trip drift on every element.
func windowDrift(o *obs.WindowObs, prof FlowProfile, byElem map[string]hw.ElemCell, pkts uint64) {
	if len(prof.Elements) == 0 || pkts == 0 {
		return
	}
	best := 0.0
	for name, cells := range byElem {
		liveRefs := float64(cells.L3Refs) / float64(pkts)
		if liveRefs < driftMinRefs {
			continue
		}
		baseline, known := prof.Elements[name]
		base := baseline.RefsPerPacket
		if base < driftBaseFloor {
			base = driftBaseFloor
		}
		ratio := liveRefs / base
		if ratio >= driftRatio && ratio > best {
			best = ratio
			o.DriftElement = name
			o.DriftRefRatio = ratio
			o.DriftLiveRefs = liveRefs
			o.DriftBaseRefs = baseline.RefsPerPacket
			o.DriftLiveCycPP = float64(cells.Cycles) / float64(pkts)
			o.DriftKnown = known
		}
	}
}

// evalLatency merges each app's per-flow (and per-stage) latency shards
// into the window's delta histogram, publishes its quantiles, and
// evaluates the app's latency SLO: the burn rate is the fraction of
// window packets over the target relative to the 1% budget a p99 target
// implies, and a window whose p99 exceeds the target counts one breach.
// Runs at the barrier regardless of whether a registry is configured —
// breach counts feed the report and the sweep gate, not just /metrics.
func (r *Runtime) evalLatency() {
	clockHz := r.cfg.Cfg.ClockHz
	for _, a := range r.disp.apps {
		var d obs.LatHist
		for _, f := range a.flows {
			fd := f.lat.Sub(&f.prevLat)
			d.Merge(&fd)
			for _, u := range f.stages {
				ud := u.lat.Sub(&u.prevLat)
				d.Merge(&ud)
			}
		}
		if d.Count() == 0 {
			continue
		}
		name := a.spec.Name
		p99 := d.Quantile(0.99)
		if m := r.obsm; m != nil {
			q := m.appLatQ[name]
			q[0].Set(d.Quantile(0.50))
			q[1].Set(p99)
			q[2].Set(d.Quantile(0.999))
		}
		if a.spec.SLOP99US <= 0 {
			continue
		}
		target := uint64(a.spec.SLOP99US * 1e-6 * clockHz)
		a.lastBurn = float64(d.CountOver(target)) / float64(d.Count()) / 0.01
		breached := p99 > float64(target)
		if breached {
			a.sloBreaches++
		}
		if m := r.obsm; m != nil {
			m.sloBurn[name].Set(a.lastBurn)
			if breached {
				m.sloTripd[name].Inc()
			}
		}
	}
}

// windowResiduals computes the window's per-app prediction residuals and
// diagnoses each divergence from the same counter evidence the
// predictor reads. winSec is the window's wall length in virtual
// seconds. Apps without a solo profile (synthetic probes, unprofiled
// customs) produce no residual — there is no prediction to diverge from.
func (r *Runtime) windowResiduals(q int, tsec, winSec float64, sample ControlSample, deltas []hw.Counters, elems []elemWindow) []obs.Residual {
	if winSec <= 0 {
		return nil
	}
	// Per-app per-element window costs, summed across replicas and
	// stages: the drift detector's live side.
	byApp := map[string]map[string]hw.ElemCell{}
	for _, e := range elems {
		em := byApp[e.app]
		if em == nil {
			em = map[string]hw.ElemCell{}
			byApp[e.app] = em
		}
		c := em[e.element]
		c.Cycles += e.cells.Cycles
		c.L3Refs += e.cells.L3Refs
		c.L3Hits += e.cells.L3Hits
		c.L3Misses += e.cells.L3Misses
		em[e.element] = c
	}
	var out []obs.Residual
	for _, a := range r.disp.apps {
		// Hidden-trigger aggressors keep their residual series on purpose:
		// the moment the flow's behaviour departs its profiled type, the
		// residual spikes and the diagnoser names the evidence — the
		// Section 4 detection story as live telemetry.
		prof, ok := r.cfg.Profiles[a.spec.Type]
		if !ok || prof.SoloPPS <= 0 || a.spec.Type.Synthetic() {
			continue
		}
		var processed uint64
		for _, f := range a.flows {
			processed += f.packets
		}
		winProcessed := processed - a.prevProcessed
		winOffered := a.offered - a.prevOffered
		winNIC := a.nicDrops - a.prevNICDrops
		if winProcessed == 0 && winOffered == 0 {
			continue // idle window (burst off-phase): nothing measured
		}

		// Expected per-replica throughput: the solo baseline, capped at the
		// offered rate for paced sources — the same comparison the
		// whole-run report makes, one window at a time.
		expected := prof.SoloPPS
		if a.rate > 0 && winOffered > 0 {
			offPPS := float64(winOffered) / winSec / float64(len(a.flows))
			if offPPS < expected {
				expected = offPPS
			}
		}
		if expected <= 0 {
			continue
		}
		perReplica := float64(winProcessed) / winSec / float64(len(a.flows))
		observed := 1 - perReplica/expected

		// Evidence across the app's workers: predicted drop averaged, ring
		// fill worst-case, locality and hit rate packet-weighted, and the
		// competing reference pressure on the app's busiest socket.
		var predSum float64
		var predN int
		var ringFill float64
		var remRefs, pkts, l3Refs, l3Hits uint64
		sockets := map[int]bool{}
		for _, t := range sample.Workers {
			if t.App != a.spec.Name {
				continue
			}
			predSum += t.PredictedDrop
			predN++
			if t.RingCap > 0 {
				if f := float64(t.RingDepth) / float64(t.RingCap); f > ringFill {
					ringFill = f
				}
			}
			d := deltas[t.Worker]
			remRefs += d.RemoteRefs
			pkts += d.Packets
			l3Refs += d.L3Refs
			l3Hits += d.L3Hits
			sockets[t.Socket] = true
		}
		if predN == 0 {
			continue
		}
		var competing float64
		for sock := range sockets {
			var refs float64
			for _, t := range sample.Workers {
				if t.Socket == sock && t.App != a.spec.Name {
					refs += t.RefsPerSec
				}
			}
			if refs > competing {
				competing = refs
			}
		}
		o := obs.WindowObs{
			App:            a.spec.Name,
			Predicted:      predSum / float64(predN),
			Observed:       observed,
			RingFill:       ringFill,
			SoloRefsPerSec: prof.SoloRefsPerSec,
			CompetingRefs:  competing,
		}
		// Hand-off spin-poll deltas across the app's cuts, per direction:
		// the ring-backpressure rung uses them to name which side of a
		// congested cut is at fault (the cursors roll forward afterwards
		// in rollWindowAccounting).
		for _, f := range a.flows {
			for _, u := range f.stages {
				if u.out == nil {
					continue
				}
				o.HandoffPushPolls += u.out.PushPolls() - u.prevPushPolls
				o.HandoffPopPolls += u.out.PopPolls() - u.prevPopPolls
			}
		}
		if winOffered > 0 {
			o.NICDropRate = float64(winNIC) / float64(winOffered)
		}
		if pkts > 0 {
			o.RemotePerPacket = float64(remRefs) / float64(pkts)
		}
		if l3Refs > 0 {
			o.HitRate = float64(l3Hits) / float64(l3Refs)
		}
		windowDrift(&o, prof, byApp[a.spec.Name], winProcessed)
		if m := r.obsm; m != nil {
			m.appDrift[a.spec.Name].Set(o.DriftRefRatio)
		}
		out = append(out, obs.NewResidual(q, tsec, r.cfg.ResidualTolerance, o))
	}
	return out
}

// recordResiduals publishes the window's residuals into the registry and
// appends them to the retained series (same retention policy as Stats).
func (r *Runtime) recordResiduals(res []obs.Residual) {
	for _, rr := range res {
		if m := r.obsm; m != nil {
			m.appObserved[rr.App].Set(rr.Observed)
			m.appPredicted[rr.App].Set(rr.Predicted)
			m.appResidual[rr.App].Set(rr.Residual)
			for c, g := range m.appCause[rr.App] {
				if c == rr.Cause {
					g.Set(1)
				} else {
					g.Set(0)
				}
			}
		}
	}
	retain := r.cfg.StatsRetention
	if retain <= 0 {
		retain = DefaultStatsRetention
	}
	capN := retain * len(r.disp.apps)
	for _, rr := range res {
		if len(r.residuals) < capN {
			r.residuals = append(r.residuals, rr)
			continue
		}
		r.residuals[r.residualHead] = rr
		r.residualHead = (r.residualHead + 1) % len(r.residuals)
	}
}

// rollWindowAccounting advances every app's previous-window cursors
// after a control window's deltas have been consumed (publishWindow and
// windowResiduals both read them).
func (r *Runtime) rollWindowAccounting() {
	for _, a := range r.disp.apps {
		a.prevOffered, a.prevEnqueued, a.prevNICDrops = a.offered, a.enqueued, a.nicDrops
		var processed uint64
		for _, f := range a.flows {
			processed += f.packets
		}
		a.prevProcessed = processed
	}
	for _, f := range r.flows {
		f.prevPackets = f.packets
		f.prevElems = snapshotElems(f.elems, f.prevElems)
		f.prevLat = f.lat
		for _, u := range f.stages {
			u.prevElems = snapshotElems(u.elems, u.prevElems)
			u.prevLat = u.lat
			if u.out != nil {
				u.prevPushPolls, u.prevPopPolls = u.out.PushPolls(), u.out.PopPolls()
			}
		}
	}
}

// Residuals returns the retained prediction-residual series, oldest
// first. Call after Run (or from OnWindow, where workers are parked).
func (r *Runtime) Residuals() []obs.Residual {
	out := make([]obs.Residual, 0, len(r.residuals))
	for i := 0; i < len(r.residuals); i++ {
		out = append(out, r.residuals[(r.residualHead+i)%len(r.residuals)])
	}
	return out
}

// Tracer returns the packet tracer, nil unless Config.TraceSample is
// set. Export its events (WriteChrome) only after Run returns.
func (r *Runtime) Tracer() *obs.Tracer { return r.tracer }

// buildTracer sizes the tracer to the worker set and names its trace
// processes (one per staged flow replica) and threads (one per worker).
func (r *Runtime) buildTracer() {
	if r.cfg.TraceSample <= 0 {
		return
	}
	capN := r.cfg.TraceCap
	if capN <= 0 {
		capN = 8192
	}
	r.tracer = obs.NewTracer(uint64(r.cfg.TraceSample), capN, len(r.workers))
	for i, w := range r.workers {
		w.shard = r.tracer.Shard(i)
		r.tracer.SetThread(i, fmt.Sprintf("worker%d@core%d", i, w.core.ID))
	}
	for _, f := range r.flows {
		if f.stages != nil {
			r.tracer.SetProcess(f.id, fmt.Sprintf("%s/%d", f.app.spec.Name, f.replica))
		}
	}
}
