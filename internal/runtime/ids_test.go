package runtime

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/obs"
)

// idsGraph renders the IDS service chain at test scale: 64-byte packets
// (36 payload bytes), a signature fast path, the deliberately expensive
// entropy slow path, and the LRU ban table at the suspect tail. srcArgs
// appends traffic-shaping arguments to the source (", SIG_HIT 0.06, ..."
// — the generator and classifier share SIG_SEED 11 so injected
// signatures are the ones the matcher compiled). The entropy threshold
// sits at 4.5 bits: a 36-byte random payload's empirical entropy is
// ≈5.1 bits (log2 of the distinct-byte count), masked low-entropy
// payloads land well below.
func idsGraph(params apps.Params, srcArgs string) string {
	return fmt.Sprintf(`
		src :: FromDevice(SIZE 64, FLOWS %d, BUFFERS %d%s);
		chk :: CheckIPHeader;
		sig :: SignatureClassifier(SIG_SEED 11, PATTERNS 16);
		ent :: EntropyGate(THRESHOLD 4.5, WINDOW 512);
		bans :: BanTable(ENTRIES 16384);
		src -> chk -> sig;
		sig[0] -> ToDevice;
		sig[1] -> ent;
		ent[0] -> ToDevice;
		ent[1] -> bans;
		bans[0] -> ToDevice;
		bans[1] -> Discard;
	`, params.TrafficFlows, params.Buffers, srcArgs)
}

// idsShape is the baseline traffic mix for the IDS graph: 6% of packets
// carry an injected signature, half the rest are masked down to 2-bit
// symbols (the low-entropy population the gate passes).
const idsShape = ", SIG_HIT 0.06, SIG_COUNT 16, SIG_SEED 11, LOW_ENTROPY 0.5, LOW_ENTROPY_BITS 2"

// TestValidateIDSRuntimeDropsAgainstEngine extends the cross-validation
// suite to the IDS workload class: the custom graph is profiled offline
// on the deterministic engine exactly like the builtins (solo run plus
// drop-versus-competition curve), then runs concurrently next to a MON
// co-runner, and the observed drop must agree with the engine-derived
// prediction. The staged variant cuts the ban table onto its own worker
// across the interconnect and must home each stage's state in its own
// NUMA domain.
func TestValidateIDSRuntimeDropsAgainstEngine(t *testing.T) {
	if testing.Short() {
		// CI runs this suite in its own -race step; -short keeps the
		// full-tree pass from paying for the offline profiling twice.
		t.Skip("IDS validation skipped in -short mode (runs in its dedicated CI step)")
	}
	const (
		warmup = 0.0005
		window = 0.002
		dur    = 0.006
		tol    = 0.15
	)
	base := apps.Small()
	cps := testCfg().CoresPerSocket

	t.Run("parallel", func(t *testing.T) {
		params := withCustom(base, "IDS", idsGraph(base, idsShape), nil)
		profiles, err := ProfileFlows(testCfg(), params, warmup, window, []int{1600, 400, 100, 0},
			[]apps.FlowType{"IDS", apps.MON})
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig([]AppSpec{
			{Name: "ids", Type: "IDS", Workers: 2},
			{Name: "mon", Type: apps.MON, Workers: 1},
		})
		cfg.Params = params
		cfg.Profiles = profiles
		r, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(dur)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, rep)
		validated := 0
		for _, a := range rep.Apps {
			if a.SoloPPS == 0 {
				t.Fatalf("app %s ran without a solo profile", a.Name)
			}
			validated++
			if e := a.PredictionError(); math.Abs(e) > tol {
				t.Errorf("app %s (%s): observed drop %.1f%% vs engine prediction %.1f%% — error %+.1f%% exceeds ±%.0f%%",
					a.Name, a.Type, a.ObservedDrop*100, a.PredictedDrop*100, e*100, tol*100)
			}
		}
		if validated != 2 {
			t.Fatalf("validated %d apps, want 2", validated)
		}
	})

	t.Run("staged", func(t *testing.T) {
		params := withCustom(base, "IDS", idsGraph(base, idsShape), map[string]int{"bans": 1})
		cfg := testConfig([]AppSpec{{Name: "ids", Type: "IDS", Workers: 1}})
		cfg.Params = params
		// Stage 0 (source through entropy) on socket 0, the ban-table
		// stage on socket 1: state must split across the cut.
		cfg.Cores = []int{0, cps}
		cfg.MigrateState = 64 << 20 // staged chains are pinned; must stay inert
		r, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Placement at build time: the ban table is the chain's stage-1
		// state, homed in a domain on stage 1's socket.
		chain := r.flows[0]
		if chain.stages == nil || len(chain.state) == 0 {
			t.Fatalf("IDS chain flow not staged or stateless: %+v", chain)
		}
		sockets := cfg.Cfg.Sockets
		sawBans := false
		for _, b := range chain.state {
			if b.Element == "bans" {
				sawBans = true
				if b.Stage != 1 {
					t.Fatalf("ban table attributed to stage %d, want 1", b.Stage)
				}
			}
			if b.Domain()%sockets != b.Stage {
				t.Fatalf("stage %d state %q homed to socket %d, want %d",
					b.Stage, b.Element, b.Domain()%sockets, b.Stage)
			}
		}
		if !sawBans {
			t.Fatalf("no state binding for the ban table: %+v", chain.state)
		}

		rep, err := r.Run(dur)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, rep)
		if len(rep.Migrations) != 0 {
			t.Fatalf("pinned IDS chain migrated: %+v", rep.Migrations)
		}
		a := rep.Apps[0]
		if a.Stages != 2 || a.Workers != 2 {
			t.Fatalf("app report stages/workers = %d/%d, want 2/2", a.Stages, a.Workers)
		}
		if a.Processed == 0 || a.Finished == 0 {
			t.Fatalf("staged IDS chain made no progress: %+v", a)
		}
		// Both stage workers ran and kept their state NUMA-local.
		for _, w := range rep.Workers {
			if w.Packets == 0 {
				t.Fatalf("stage worker %d processed nothing: %+v", w.Worker, w)
			}
			if w.StateBytes > 0 && w.StateSocket != w.Socket {
				t.Fatalf("stage %d state on socket %d, worker on %d", w.Stage, w.StateSocket, w.Socket)
			}
		}
	})
}

// idsBanGraph is the migration workload: the entropy gate's threshold is
// 0 bits so every packet reaches the ban table, whose 32768 line-sized
// entries (2 MiB) exceed the 1 MiB test L3 — a migrated working set that
// cannot hide in the destination cache, the same sizing rule as
// thrashStateConfig. No signatures are injected, so the match output
// stays dark and the per-packet reference stream is dominated by ban
// probes over the table.
func idsBanGraph(params apps.Params) string {
	return fmt.Sprintf(`
		src :: FromDevice(SIZE 64, FLOWS %d, BUFFERS %d);
		chk :: CheckIPHeader;
		sig :: SignatureClassifier(SIG_SEED 7, PATTERNS 8);
		ent :: EntropyGate(THRESHOLD 0, WINDOW 512);
		bans :: BanTable(ENTRIES 32768);
		src -> chk -> sig;
		sig[0] -> ent;
		sig[1] -> Discard;
		ent[0] -> ToDevice;
		ent[1] -> bans;
		bans[0] -> ToDevice;
		bans[1] -> Discard;
	`, params.TrafficFlows, params.Buffers)
}

// idsStateConfig pairs an IDS victim with a SYN_MAX thrasher on each
// socket, with curves anchored to measured rates so re-placement
// engages — thrashStateConfig with the ban-table workload as the victim.
func idsStateConfig(t *testing.T) Config {
	t.Helper()
	params := apps.Small()
	params.SynRegionBytes = testCfg().L3.SizeBytes / 2
	// The ban table's TOUCHED working set is one probed line per distinct
	// source, not the table's 2 MiB span: with the default 4096-flow
	// population the hot set is ~256 KiB and warms into the destination
	// L3 after an uncompensated migration, erasing the sustained
	// remote-versus-copy trade this test exercises. 16384 sources touch
	// ≈1 MiB of distinct lines — beyond the test L3 once two IDS flows
	// share a socket.
	params.TrafficFlows = 16384
	params = withCustom(params, "IDS", idsBanGraph(params), nil)
	idsSolo := soloStats(t, "IDS", params)
	synSolo := soloStats(t, apps.SYNMAX, params)
	idsRefs := idsSolo.L3RefsPerSec()
	synRefs := synSolo.L3RefsPerSec()
	profiles := map[apps.FlowType]FlowProfile{
		"IDS": {
			SoloPPS: idsSolo.Throughput(), SoloRefsPerSec: idsRefs,
			Curve: core.Curve{Target: "IDS", Points: []core.CurvePoint{
				{CompetingRefsPerSec: 0, Drop: 0},
				{CompetingRefsPerSec: idsRefs, Drop: 0.02},
				{CompetingRefsPerSec: synRefs / 4, Drop: 0.30},
				{CompetingRefsPerSec: 2 * synRefs, Drop: 0.45},
			}},
		},
		apps.SYNMAX: {
			SoloPPS: synSolo.Throughput(), SoloRefsPerSec: synRefs,
			Curve: core.Curve{Target: apps.SYNMAX, Points: []core.CurvePoint{
				{CompetingRefsPerSec: 0, Drop: 0},
				{CompetingRefsPerSec: 2 * synRefs, Drop: 0.02},
			}},
		},
	}
	cps := testCfg().CoresPerSocket
	cfg := testConfig([]AppSpec{
		{Name: "ids-a", Type: "IDS", Workers: 1},
		{Name: "thrash-a", Type: apps.SYNMAX, Workers: 1},
		{Name: "ids-b", Type: "IDS", Workers: 1},
		{Name: "thrash-b", Type: apps.SYNMAX, Workers: 1},
	})
	cfg.Params = params
	cfg.Cores = []int{0, 1, cps, cps + 1}
	cfg.Profiles = profiles
	cfg.DropThreshold = 0.08
	return cfg
}

// idsMigration returns the first recorded migration that moved an IDS
// flow, plus that flow's side of the record.
func idsMigration(t *testing.T, rep *Report) (m Migration, cp StateCopy, before, after float64) {
	t.Helper()
	for _, mig := range rep.Migrations {
		if strings.HasPrefix(mig.FlowA, "ids") {
			return mig, mig.CopyA, mig.RemotePerPktBeforeA, mig.RemotePerPktAfterA
		}
		if strings.HasPrefix(mig.FlowB, "ids") {
			return mig, mig.CopyB, mig.RemotePerPktBeforeB, mig.RemotePerPktAfterB
		}
	}
	t.Fatal("no migration moved an IDS flow")
	return Migration{}, StateCopy{}, 0, 0
}

// TestRuntimeBanTableStateMigration: the ban table participates in
// MIGRATE_STATE exactly like the NAT flow table. After a cross-socket
// re-placement with state migration enabled the copy is recorded with
// its measured cycles and the moved flow's steady-state remote-reference
// rate returns to the pre-migration local baseline; with migration
// disabled the table stays behind and every probe keeps crossing the
// interconnect.
func TestRuntimeBanTableStateMigration(t *testing.T) {
	if testing.Short() {
		// CI runs this test in its own -race step; -short keeps the
		// full-tree pass from running the two long simulations twice.
		t.Skip("ban-table migration scenario skipped in -short mode (runs in its dedicated CI step)")
	}
	const dur = 0.012

	run := func(migrate uint64) (*Report, []ControlSample) {
		cfg := idsStateConfig(t)
		cfg.MigrateState = migrate
		r, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(dur)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, rep)
		if len(rep.Migrations) == 0 {
			t.Fatal("re-placement never engaged")
		}
		return rep, r.Stats().Samples()
	}

	// Threshold admits the IDS state (2 MiB ban table plus the compiled
	// automaton): the tables follow the flow.
	withCopy, copySamples := run(16 << 20)
	m, cp, before, after := idsMigration(t, withCopy)
	if !cp.Copied || cp.Bytes == 0 || cp.Cycles == 0 || cp.Lines == 0 {
		t.Fatalf("IDS state did not move with the flow: %+v", m)
	}
	if cp.Bytes < 2<<20 {
		t.Fatalf("copy moved %d bytes; the 2 MiB ban table should dominate", cp.Bytes)
	}
	if m.StateCopyCycles < cp.Cycles {
		t.Fatalf("StateCopyCycles %d < IDS copy %d", m.StateCopyCycles, cp.Cycles)
	}
	if math.IsNaN(after) {
		t.Fatal("post-copy remote rate never measured; run too short")
	}
	if after > before+0.1 || after > 0.1 {
		t.Fatalf("post-copy remote refs/pkt %.3f did not return to the local baseline %.3f", after, before)
	}
	for _, w := range withCopy.Workers {
		if w.Type == "IDS" && w.StateSocket != w.Socket {
			t.Fatalf("IDS state still homed to socket %d while running on %d: %+v",
				w.StateSocket, w.Socket, w)
		}
	}

	// With migration disabled the ban table stays behind: the moved
	// flow's steady-state remote rate stays at its probe rate.
	noCopy, noCopySamples := run(0)
	m2, cp2, _, after2 := idsMigration(t, noCopy)
	if cp2.Copied || m2.StateCopyCycles != 0 {
		t.Fatalf("state copied with MigrateState disabled: %+v", m2)
	}
	if math.IsNaN(after2) || after2 < 0.5 {
		t.Fatalf("flow without its ban table reports %.3f remote refs/pkt; expected sustained QPI traffic", after2)
	}
	remoteIDS := 0
	for _, w := range noCopy.Workers {
		if w.Type == "IDS" && w.StateSocket >= 0 && w.StateSocket != w.Socket {
			remoteIDS++
		}
	}
	if remoteIDS == 0 {
		t.Fatalf("no IDS worker reports remote state after migrating without a copy: %+v", noCopy.Workers)
	}

	// Steady state, past the copy and the destination cache's warm-up:
	// with its tables local again the migrated flow's remote rate is back
	// at the baseline and goodput beats the no-copy run, which keeps
	// streaming ban probes across the interconnect.
	migApp := strings.SplitN(m.FlowA, "/", 2)[0]
	if !strings.HasPrefix(migApp, "ids") {
		migApp = strings.SplitN(m.FlowB, "/", 2)[0]
	}
	ppsCopy, remCopy := steadyState(t, copySamples, migApp)
	ppsNo, remNo := steadyState(t, noCopySamples, migApp)
	if remCopy > 0.15 {
		t.Fatalf("steady remote refs/pkt with copy = %.3f, want ≈ local baseline", remCopy)
	}
	if remNo < 0.4 {
		t.Fatalf("steady remote refs/pkt without copy = %.3f; the flow should still pay QPI", remNo)
	}
	if ppsCopy <= ppsNo {
		t.Fatalf("steady goodput with state copy %.0f pps ≤ without %.0f pps", ppsCopy, ppsNo)
	}
}

// TestProfileDriftNamesIDSDetector: the offline profile is taken under a
// 5% signature-hit mix; the live run carries the same graph but the
// generator shifts to a 70% hit rate mid-run (SIG_SHIFT), multiplying
// the suspect path's traffic. The residual diagnosis must attribute the
// divergence to the IDS detector whose behaviour changed — the ban table
// (or the entropy gate feeding it), not a generic contention cause.
func TestProfileDriftNamesIDSDetector(t *testing.T) {
	baseShape := ", SIG_HIT 0.05, SIG_COUNT 16, SIG_SEED 11"
	shiftShape := baseShape + ", SIG_SHIFT 0.7, SIG_SHIFT_AFTER 8000"
	profileParams := withCustom(apps.Small(), "IDS", idsGraph(apps.Small(), baseShape), nil)
	runParams := withCustom(apps.Small(), "IDS", idsGraph(apps.Small(), shiftShape), nil)

	// Profile the unshifted traffic — the operator's offline testbed
	// never saw the attack mix.
	prof := profileWithElements(t, "IDS", profileParams)

	cfg := testConfig([]AppSpec{{Name: "ids", Type: "IDS", Workers: 1}})
	cfg.Params = runParams
	cfg.Profiles = map[apps.FlowType]FlowProfile{"IDS": prof}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.006)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)

	var drifts int
	var evidence string
	for _, rr := range rep.Residuals {
		if rr.Cause == obs.CauseProfileDrift {
			drifts++
			evidence = rr.Evidence
		}
	}
	if drifts == 0 {
		t.Fatalf("no window diagnosed profile drift after the signature-rate shift; residuals: %+v", rep.Residuals)
	}
	if !strings.Contains(evidence, "bans") && !strings.Contains(evidence, "ent") {
		t.Fatalf("drift evidence does not name an IDS detector element: %q", evidence)
	}
}
