package runtime

import (
	"math"
	"testing"

	"pktpredict/internal/trafficgen"
)

func creditApp(nflows, ringCap int) *appState {
	a := &appState{
		spec:    AppSpec{Name: "sat"},
		gen:     trafficgen.New(trafficgen.Spec{Seed: 1, Size: 64, Flows: 256}),
		scratch: make([]byte, 64),
		pktSize: 64,
	}
	for i := 0; i < nflows; i++ {
		a.flows = append(a.flows, &flow{id: i, app: a, ring: NewRing(ringCap, 64)})
	}
	return a
}

// TestDispatcherCreditRefill pins the saturating dispatcher's
// backpressure contract: an initial fill sized to total ring capacity,
// then each barrier replenishes exactly the credits the consumers spent
// — never a blind top-up.
func TestDispatcherCreditRefill(t *testing.T) {
	a := creditApp(2, 8)
	d := &dispatcher{apps: []*appState{a}, quantumSec: 1e-5}

	d.enqueue(0)
	if got := a.offered; got != 16 {
		t.Fatalf("initial fill offered %d, want 16 (2 rings x cap 8)", got)
	}
	if a.offered != a.enqueued+a.nicDrops {
		t.Fatalf("offered %d != enqueued %d + drops %d", a.offered, a.enqueued, a.nicDrops)
	}

	// No consumption: a barrier must not offer anything new.
	d.enqueue(1)
	if a.offered != 16 {
		t.Fatalf("idle barrier offered %d extra packets", a.offered-16)
	}

	// Consume n packets from ring 0: the next barrier offers exactly n.
	buf := make([]byte, 64)
	n := uint64(0)
	for i := 0; i < 3 && a.flows[0].ring.Len() > 0; i++ {
		a.flows[0].ring.Pop(buf)
		n++
	}
	if n == 0 {
		t.Fatal("test premise broken: ring 0 received nothing")
	}
	d.enqueue(2)
	if a.offered != 16+n {
		t.Fatalf("offered %d after %d credits, want %d", a.offered, n, 16+n)
	}
	if a.offered != a.enqueued+a.nicDrops {
		t.Fatalf("offered %d != enqueued %d + drops %d", a.offered, a.enqueued, a.nicDrops)
	}
}

// TestDispatcherCreditsSurviveSkewDrops: credits are measured at the
// rings, so RSS skew (packets hashed to a full ring while another has
// room) burns budget as NIC drops without inflating future offers.
func TestDispatcherCreditsSurviveSkewDrops(t *testing.T) {
	a := creditApp(2, 8)
	d := &dispatcher{apps: []*appState{a}, quantumSec: 1e-5}
	d.enqueue(0)

	buf := make([]byte, 64)
	// Drain ring 0 fully, leave ring 1 untouched.
	credits := uint64(0)
	for a.flows[0].ring.Len() > 0 {
		a.flows[0].ring.Pop(buf)
		credits++
	}
	if credits == 0 {
		t.Fatal("test premise broken: ring 0 received nothing")
	}
	before := a.offered
	ring1Len := a.flows[1].ring.Len()
	d.enqueue(1)
	if a.offered != before+credits {
		t.Fatalf("offered %d, want %d", a.offered, before+credits)
	}
	// Whatever RSS hashed to ring 1 was tail-dropped if it was full; the
	// books balance either way and ring 1 never exceeds its level+budget.
	if a.offered != a.enqueued+a.nicDrops {
		t.Fatalf("offered %d != enqueued %d + drops %d", a.offered, a.enqueued, a.nicDrops)
	}
	if got := a.flows[1].ring.Len(); got < ring1Len || got > a.flows[1].ring.Cap() {
		t.Fatalf("ring 1 occupancy %d outside [%d,cap]", got, ring1Len)
	}
	// The next idle barrier stays quiet — drops are not re-offered.
	offered := a.offered
	d.enqueue(2)
	if a.offered != offered {
		t.Fatalf("drops were re-offered: %d -> %d", offered, a.offered)
	}
}

// TestDispatcherPacedExactAccounting pins the S3 fix: over arbitrarily
// long runs, a paced source's offered count must equal
// floor(rate × quantumSec × activeQuanta) exactly — one multiplication's
// rounding, not a hundred thousand accumulated ones. The old fractional
// carry summed rate × quantumSec per quantum, compounding float rounding
// into a slow drift between offered load and virtual time. The rate and
// quantum are chosen so the per-quantum packet count is awkwardly
// non-integer (~1.38 packets).
func TestDispatcherPacedExactAccounting(t *testing.T) {
	a := creditApp(2, 8)
	a.rate = 1234567.89
	a.spec.Name = "paced"
	d := &dispatcher{apps: []*appState{a}, quantumSec: 1.11731e-6}

	const quanta = 150_000
	for q := 0; q < quanta; q++ {
		d.enqueue(q)
	}
	want := uint64(math.Floor(a.rate * d.quantumSec * float64(quanta)))
	if a.offered != want {
		t.Fatalf("offered %d after %d quanta, want exactly %d (drift %+d)",
			a.offered, quanta, want, int64(a.offered)-int64(want))
	}
	if a.offered != a.enqueued+a.nicDrops {
		t.Fatalf("offered %d != enqueued %d + drops %d", a.offered, a.enqueued, a.nicDrops)
	}

	// Burst gating: only on-phase quanta accrue emission budget, and the
	// identity holds against the active-quantum count.
	b := creditApp(1, 8)
	b.rate = 987654.321
	b.spec.BurstOn, b.spec.BurstOff = 3, 2
	d2 := &dispatcher{apps: []*appState{b}, quantumSec: 2.3e-6}
	active := 0
	for q := 0; q < 50_000; q++ {
		if b.burstActive(q) {
			active++
		}
		d2.enqueue(q)
	}
	want = uint64(math.Floor(b.rate * d2.quantumSec * float64(active)))
	if b.offered != want {
		t.Fatalf("bursty offered %d over %d active quanta, want exactly %d",
			b.offered, active, want)
	}
}
