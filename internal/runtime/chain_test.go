package runtime

import (
	"fmt"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/exp"
)

// monStyleGraph is a MON-shaped service chain (header check + route
// lookup, then flow statistics) whose tail can be cut onto a second
// worker.
func monStyleGraph(params apps.Params) string {
	return fmt.Sprintf(`
		src :: FromDevice(SIZE 64, FLOWS %d, BUFFERS %d);
		chk :: CheckIPHeader;
		rt  :: RadixIPLookup(ROUTES %d);
		ttl :: DecIPTTL;
		nf  :: NetFlow(ENTRIES %d);
		src -> chk -> rt -> ttl -> nf -> ToDevice;
	`, params.TrafficFlows, params.Buffers, params.Routes, params.NetFlowEntries)
}

// craftedGraph is the Section 2.2 adversarial workload: two cacheable
// structures, each the size of the shared cache, touched many times per
// packet. Run whole on one core the working set is twice the L3; cut at
// the second structure each stage's half fits its socket's cache.
func craftedGraph(halfBytes int) string {
	return fmt.Sprintf(`
		src :: FromDevice(SIZE 64, FLOWS 1024);
		a :: Syn(REGION %d, ACCESSES 110);
		b :: Syn(REGION %d, ACCESSES 110);
		src -> a -> b -> ToDevice;
	`, halfBytes, halfBytes)
}

// withCustom returns params with one custom flow type registered.
func withCustom(params apps.Params, name, config string, stages map[string]int) apps.Params {
	custom := map[apps.FlowType]apps.CustomFlow{}
	for t, cf := range params.Custom {
		custom[t] = cf
	}
	custom[apps.FlowType(name)] = apps.CustomFlow{Config: config, PacketSize: 64, Stages: stages}
	params.Custom = custom
	return params
}

func checkConservation(t *testing.T, rep *Report) {
	t.Helper()
	for _, a := range rep.Apps {
		if err := a.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
}

// runGoodput executes one configuration and returns the named app's
// finished-packets-per-second plus the report.
func runGoodput(t *testing.T, cfg Config, app string, dur float64) (float64, *Report) {
	t.Helper()
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)
	for _, a := range rep.Apps {
		if a.Name == app {
			return a.GoodputPPS, rep
		}
	}
	t.Fatalf("app %s missing from report", app)
	return 0, nil
}

func TestRuntimeChainRunsAndConserves(t *testing.T) {
	params := withCustom(apps.Small(), "MONC", monStyleGraph(apps.Small()), map[string]int{"nf": 1})
	cfg := testConfig([]AppSpec{{Name: "monc", Type: "MONC", Workers: 1}})
	cfg.Params = params
	cps := testCfg().CoresPerSocket
	cfg.Cores = []int{0, cps} // stage 0 on socket 0, stage 1 across QPI
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)
	if len(rep.Workers) != 2 {
		t.Fatalf("chain occupies %d workers, want 2", len(rep.Workers))
	}
	for _, w := range rep.Workers {
		if w.Packets == 0 {
			t.Fatalf("stage worker %d processed nothing: %+v", w.Worker, w)
		}
		if w.Stages != 2 || w.App != "monc" {
			t.Fatalf("worker %d not reported as a 2-stage chain worker: %+v", w.Worker, w)
		}
	}
	if rep.Workers[0].Stage != 0 || rep.Workers[1].Stage != 1 {
		t.Fatalf("stage order wrong: %d/%d", rep.Workers[0].Stage, rep.Workers[1].Stage)
	}
	a := rep.Apps[0]
	if a.Stages != 2 || a.Workers != 2 {
		t.Fatalf("app report stages/workers = %d/%d, want 2/2", a.Stages, a.Workers)
	}
	if a.Processed == 0 || a.Finished == 0 {
		t.Fatalf("chain made no progress: %+v", a)
	}
	if a.CutDropped != 0 {
		t.Fatalf("linear chain lost %d branches at the cut", a.CutDropped)
	}
	// Per-stage telemetry made it into the control samples.
	sawStage1 := false
	for _, cs := range r.Stats().Samples() {
		for _, wt := range cs.Workers {
			if wt.Stage == 1 && wt.Stages == 2 && wt.RingCap > 0 {
				sawStage1 = true
			}
		}
	}
	if !sawStage1 {
		t.Fatal("no control sample carries stage-1 hand-off telemetry")
	}
}

// TestRuntimeChainPipelineVersusParallel reproduces the Section 2.2
// verdict inside the concurrent runtime and checks it against the
// deterministic engine's exp.RunPipeline: a MON-style chain loses to its
// parallel placement, the crafted large-cacheable-structure chain wins —
// per-app packet conservation holding in every run.
func TestRuntimeChainPipelineVersusParallel(t *testing.T) {
	base := apps.Small()
	hwCfg := testCfg()
	cps := hwCfg.CoresPerSocket
	cores := []int{0, cps} // one core per socket for both deployments
	const dur = 0.004

	run := func(name, config string, stages map[string]int) float64 {
		params := withCustom(base, name, config, stages)
		var spec AppSpec
		if stages == nil {
			spec = AppSpec{Name: "app", Type: apps.FlowType(name), Workers: 2}
		} else {
			spec = AppSpec{Name: "app", Type: apps.FlowType(name), Workers: 1}
		}
		cfg := testConfig([]AppSpec{spec})
		cfg.Params = params
		cfg.Cores = cores
		pps, _ := runGoodput(t, cfg, "app", dur)
		return pps
	}

	monCfg := monStyleGraph(base)
	monParallel := run("MONP", monCfg, nil)
	monChain := run("MONC", monCfg, map[string]int{"nf": 1})
	if monChain >= monParallel {
		t.Fatalf("MON-style chain should lose to parallel: chain %.0f pps vs parallel %.0f pps",
			monChain, monParallel)
	}

	crafted := craftedGraph(hwCfg.L3.SizeBytes)
	craftedParallel := run("CRAFTP", crafted, nil)
	craftedChain := run("CRAFTC", crafted, map[string]int{"b": 1})
	if craftedChain <= craftedParallel {
		t.Fatalf("crafted chain should beat parallel: chain %.0f pps vs parallel %.0f pps",
			craftedChain, craftedParallel)
	}

	// The runtime's verdicts must match the deterministic engine's
	// Section 2.2 reproduction, which charges the same hand-off costs
	// through the shared handoff package.
	res, err := exp.RunPipeline(exp.Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		switch row.Workload {
		case "MON":
			if row.Winner() != "parallel" {
				t.Fatalf("engine says MON winner is %s, runtime says parallel", row.Winner())
			}
		case "crafted":
			if row.Winner() != "pipeline" {
				t.Fatalf("engine says crafted winner is %s, runtime says pipeline", row.Winner())
			}
		}
	}
}

// TestRuntimeChainStaysPinned: re-placement must treat a chain as one
// unit. A single swap cannot move both stages, so even when the chain's
// predicted drop is the worst on the floor the rebalancer must route
// around it — here by swapping the co-located thrasher away instead.
func TestRuntimeChainStaysPinned(t *testing.T) {
	params := withCustom(apps.Small(), "MONC", monStyleGraph(apps.Small()), map[string]int{"nf": 1})
	params.SynRegionBytes = testCfg().L3.SizeBytes / 2
	monSolo := soloStats(t, apps.MON, params)
	synSolo := soloStats(t, apps.SYNMAX, params)
	chainCurve := core.Curve{Target: "MONC", Points: []core.CurvePoint{
		{CompetingRefsPerSec: 0, Drop: 0},
		{CompetingRefsPerSec: monSolo.L3RefsPerSec(), Drop: 0.3},
		{CompetingRefsPerSec: synSolo.L3RefsPerSec(), Drop: 0.6},
	}}
	profiles := map[apps.FlowType]FlowProfile{
		// The chain suffers badly next to the thrasher: the obvious (but
		// pinned) swap candidate.
		"MONC":      {SoloPPS: monSolo.Throughput(), SoloRefsPerSec: monSolo.L3RefsPerSec(), Curve: chainCurve},
		apps.SYNMAX: {SoloPPS: synSolo.Throughput(), SoloRefsPerSec: synSolo.L3RefsPerSec()},
		apps.MON:    {SoloPPS: monSolo.Throughput(), SoloRefsPerSec: monSolo.L3RefsPerSec()},
	}
	cps := testCfg().CoresPerSocket
	cfg := testConfig([]AppSpec{
		{Name: "chain", Type: "MONC", Workers: 1},
		{Name: "thrash", Type: apps.SYNMAX, Workers: 1},
		{Name: "mon", Type: apps.MON, Workers: 1},
	})
	cfg.Params = params
	// Both chain stages and the thrasher share socket 0; a swappable MON
	// sits on socket 1.
	cfg.Cores = []int{0, 1, 2, cps}
	cfg.Profiles = profiles
	cfg.DropThreshold = 0.01
	// State migration enabled: the thrasher/mon relief swap may copy
	// state, the pinned chain's tables must never move.
	cfg.MigrateState = 64 << 20
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.006)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)
	for _, m := range rep.Migrations {
		if strings.HasPrefix(m.FlowA, "chain") || strings.HasPrefix(m.FlowB, "chain") {
			t.Fatalf("pinned chain migrated: %+v", m)
		}
	}
	// The relief migration (thrasher across sockets) must still be
	// available to the rebalancer.
	if len(rep.Migrations) == 0 {
		t.Fatal("rebalancer never moved the thrasher away from the suffering chain")
	}
	// State migration was live for the swapped flows, yet the pinned
	// chain's per-stage tables never moved: its worker rows stay
	// NUMA-local for the whole run.
	sawCopy := false
	for _, m := range rep.Migrations {
		if m.CopyA.Copied || m.CopyB.Copied {
			sawCopy = true
		}
	}
	if !sawCopy {
		t.Fatal("no relief migration copied state despite an admitting threshold")
	}
	for _, w := range rep.Workers {
		if w.App != "chain" {
			continue
		}
		if w.StateBytes == 0 || w.StateSocket != w.Socket {
			t.Fatalf("pinned chain stage %d: state %dB on socket %d, worker on %d",
				w.Stage, w.StateBytes, w.StateSocket, w.Socket)
		}
	}
}
