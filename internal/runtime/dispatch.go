package runtime

import (
	"math"

	"pktpredict/internal/trafficgen"
)

// appState is the dispatcher's view of one flow group: its traffic
// generator, the rings of the group's flow instances, and offered-load
// accounting. The dispatcher plays the NIC's role — it shards the
// group's single generated stream across the group's receive rings by
// RSS flow hash, so all packets of one transport flow always reach the
// same flow instance regardless of where that instance currently runs.
type appState struct {
	spec  AppSpec
	index int

	gen     trafficgen.Generator // nil for synthetic (self-driving) flows
	scratch []byte
	pktSize int
	rate    float64 // offered packets per virtual second; 0 = saturate
	flows   []*flow

	offered  uint64
	enqueued uint64
	nicDrops uint64
	primed   bool

	// Paced emission uses absolute accounting: pacedQuanta counts the
	// active (on-phase) quanta since measurement start and pacedEmitted
	// the packets emitted against them, so each barrier emits exactly
	// floor(rate × quantumSec × pacedQuanta) − pacedEmitted. One
	// multiplication per barrier means no rounding residue accumulates —
	// emission matches rate × active-virtual-time exactly however long
	// the run. The previous fractional-carry accumulator drifted:
	// summing rate × quantumSec one quantum at a time compounds float
	// rounding over millions of barriers, and its residue survived
	// measurement resets. pacedEmitted is kept apart from offered
	// because resetMeasurement credits ring backlog into offered.
	pacedQuanta  uint64
	pacedEmitted uint64

	// Previous control window's cursor into each accumulator, so the
	// observability layer can difference per-window deltas without a
	// second set of counters on the hot path (see Runtime.publishWindow
	// and Runtime.rollWindowAccounting). prevProcessed snapshots the sum
	// of the group's flow.packets.
	prevOffered   uint64
	prevEnqueued  uint64
	prevNICDrops  uint64
	prevProcessed uint64

	// Latency-SLO evaluation state (see Runtime.publishLatency): control
	// windows in which the window p99 exceeded the declared target, and
	// the most recent window's burn rate.
	sloBreaches int
	lastBurn    float64
}

// burstActive reports whether quantum q falls in the app's on-phase.
func (a *appState) burstActive(q int) bool {
	if a.spec.BurstOn <= 0 || a.spec.BurstOff <= 0 {
		return true
	}
	return q%(a.spec.BurstOn+a.spec.BurstOff) < a.spec.BurstOn
}

// emitBurst generates n packets and offers each to its RSS ring,
// stamped with the barrier's virtual time (the enqueue side of the
// packet's end-to-end latency). Packets are staged per ring and the
// whole burst is published with one tail store per ring — the batched
// NIC behaviour: descriptors land as a burst, not one cursor write per
// packet.
func (a *appState) emitBurst(n int, stamp uint64) {
	for i := 0; i < n; i++ {
		sz := a.gen.Next(a.scratch)
		a.offered++
		ring := a.flows[trafficgen.RSSQueue(trafficgen.RSSHash(a.scratch[:sz]), len(a.flows))].ring
		if ring.Stage(a.scratch[:sz], stamp) {
			a.enqueued++
		} else {
			a.nicDrops++
		}
	}
	for _, f := range a.flows {
		f.ring.Commit()
	}
}

// resetAccounting zeroes offered-load counters at measurement start.
func (a *appState) resetAccounting() {
	a.offered, a.enqueued, a.nicDrops = 0, 0, 0
	a.pacedQuanta, a.pacedEmitted = 0, 0
	a.prevOffered, a.prevEnqueued, a.prevNICDrops, a.prevProcessed = 0, 0, 0, 0
	a.sloBreaches, a.lastBurn = 0, 0
}

// dispatcher feeds every rate-driven flow group at barrier points. It
// runs in the control goroutine while all workers are parked, so ring
// pushes never race with pops; the SPSC discipline additionally keeps the
// rings correct if dispatch ever moves off the barrier.
type dispatcher struct {
	apps          []*appState
	quantumSec    float64
	quantumCycles uint64
}

// enqueue generates quantum q's worth of traffic for every app. Every
// packet enqueued here is stamped with the barrier's virtual time — all
// cores sit at exactly q × quantum cycles when the dispatcher runs — so
// the worker that later finishes the packet can compute its end-to-end
// latency from its own core clock.
func (d *dispatcher) enqueue(q int) {
	stamp := uint64(q) * d.quantumCycles
	for _, a := range d.apps {
		if a.gen == nil || !a.burstActive(q) {
			continue
		}
		if a.rate <= 0 {
			// Saturating source with credit-based backpressure: after an
			// initial fill, each barrier replenishes exactly the packets
			// the workers consumed since the last one. Offered load then
			// tracks what the flow group can actually absorb instead of
			// re-offering (and re-dropping) the same overload every
			// quantum, so offered-versus-processed accounting stays
			// meaningful under saturation. RSS still decides the target
			// ring per packet, so a skewed hash can tail-drop on one ring
			// while another has room — as on real multi-queue NICs.
			budget := 0
			for _, f := range a.flows {
				consumed := f.ring.Consumed()
				budget += int(consumed - f.lastConsumed)
				f.lastConsumed = consumed
				if !a.primed {
					budget += f.ring.Cap() - f.ring.Len()
				}
			}
			a.primed = true
			a.emitBurst(budget, stamp)
			continue
		}
		// Absolute paced accounting: the cumulative target after this
		// active quantum is floor(rate × quantumSec × pacedQuanta); emit
		// exactly the gap to it as one burst.
		a.pacedQuanta++
		target := uint64(math.Floor(a.rate * d.quantumSec * float64(a.pacedQuanta)))
		if target > a.pacedEmitted {
			n := int(target - a.pacedEmitted)
			a.pacedEmitted = target
			a.emitBurst(n, stamp)
		}
	}
}
