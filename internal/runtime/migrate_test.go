package runtime

import (
	"math"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// thrashStateConfig is the pathological thrash placement (each socket
// pairs a MON victim with a SYN_MAX thrasher) with curves anchored to
// measured rates so re-placement engages early, as in
// TestRuntimeReplacementSeparatesThrashers.
func thrashStateConfig(t *testing.T) Config {
	t.Helper()
	params := apps.Small()
	params.SynRegionBytes = testCfg().L3.SizeBytes / 2
	// The flow table must exceed the (1 MiB) test L3: a migrated working
	// set that fits the destination cache stops paying QPI on its own
	// once the cache warms, and the sustained remote-versus-copy trade
	// this test exercises only exists beyond that size.
	params.NetFlowEntries = 16384
	monSolo := soloStats(t, apps.MON, params)
	synSolo := soloStats(t, apps.SYNMAX, params)
	monRefs := monSolo.L3RefsPerSec()
	synRefs := synSolo.L3RefsPerSec()
	profiles := map[apps.FlowType]FlowProfile{
		apps.MON: {
			SoloPPS: monSolo.Throughput(), SoloRefsPerSec: monRefs,
			Curve: core.Curve{Target: apps.MON, Points: []core.CurvePoint{
				{CompetingRefsPerSec: 0, Drop: 0},
				{CompetingRefsPerSec: monRefs, Drop: 0.02},
				{CompetingRefsPerSec: synRefs / 4, Drop: 0.30},
				{CompetingRefsPerSec: 2 * synRefs, Drop: 0.45},
			}},
		},
		apps.SYNMAX: {
			SoloPPS: synSolo.Throughput(), SoloRefsPerSec: synRefs,
			Curve: core.Curve{Target: apps.SYNMAX, Points: []core.CurvePoint{
				{CompetingRefsPerSec: 0, Drop: 0},
				{CompetingRefsPerSec: 2 * synRefs, Drop: 0.02},
			}},
		},
	}
	cps := testCfg().CoresPerSocket
	cfg := testConfig([]AppSpec{
		{Name: "mon-a", Type: apps.MON, Workers: 1},
		{Name: "thrash-a", Type: apps.SYNMAX, Workers: 1},
		{Name: "mon-b", Type: apps.MON, Workers: 1},
		{Name: "thrash-b", Type: apps.SYNMAX, Workers: 1},
	})
	cfg.Params = params
	cfg.Cores = []int{0, 1, cps, cps + 1}
	cfg.Profiles = profiles
	cfg.DropThreshold = 0.08
	return cfg
}

// monMigration returns the first recorded migration that moved a MON
// flow, plus that flow's side of the record.
func monMigration(t *testing.T, rep *Report) (m Migration, cp StateCopy, before, after float64) {
	t.Helper()
	for _, mig := range rep.Migrations {
		if strings.HasPrefix(mig.FlowA, "mon") {
			return mig, mig.CopyA, mig.RemotePerPktBeforeA, mig.RemotePerPktAfterA
		}
		if strings.HasPrefix(mig.FlowB, "mon") {
			return mig, mig.CopyB, mig.RemotePerPktBeforeB, mig.RemotePerPktAfterB
		}
	}
	t.Fatal("no migration moved a MON flow")
	return Migration{}, StateCopy{}, 0, 0
}

// steadyState averages one app's per-window throughput and remote
// references per packet over the last quarter of the control samples —
// the post-migration steady state, past both the copy and the
// destination cache's warm-up.
func steadyState(t *testing.T, samples []ControlSample, app string) (pps, remPerPkt float64) {
	t.Helper()
	n := 0
	for _, cs := range samples[len(samples)*3/4:] {
		for _, w := range cs.Workers {
			if w.App == app {
				pps += w.PPS
				remPerPkt += w.RemotePerPacket
				n++
			}
		}
	}
	if n == 0 {
		t.Fatalf("app %s absent from steady-state samples", app)
	}
	return pps / float64(n), remPerPkt / float64(n)
}

// TestRuntimeStateMigrationRestoresLocality is the paper-motivated
// acceptance scenario: after a cross-socket re-placement with state
// migration enabled, the moved flow's steady-state remote-reference rate
// returns to the pre-migration local baseline and MON goodput recovers;
// with it disabled the flow keeps paying QPI on every table reference.
// Packet conservation must hold across the migration either way.
func TestRuntimeStateMigrationRestoresLocality(t *testing.T) {
	if testing.Short() {
		// CI runs this test in its own -race step; -short keeps the
		// full-tree pass from running the two long simulations twice.
		t.Skip("state-migration scenario skipped in -short mode (runs in its dedicated CI step)")
	}
	const dur = 0.012

	run := func(migrate uint64) (*Report, []ControlSample) {
		cfg := thrashStateConfig(t)
		cfg.MigrateState = migrate
		r, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(dur)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, rep)
		if len(rep.Migrations) == 0 {
			t.Fatal("re-placement never engaged")
		}
		return rep, r.Stats().Samples()
	}

	// With the threshold admitting every flow in the mix (MON ≈ 2.6 MiB,
	// SYN_MAX = half the test L3), state follows the flow.
	withCopy, copySamples := run(16 << 20)
	m, cp, before, after := monMigration(t, withCopy)
	if !cp.Copied || cp.Bytes == 0 || cp.Cycles == 0 || cp.Lines == 0 {
		t.Fatalf("state did not move with the flow: %+v", m)
	}
	if m.StateCopyCycles < cp.Cycles {
		t.Fatalf("StateCopyCycles %d < MON copy %d", m.StateCopyCycles, cp.Cycles)
	}
	if math.IsNaN(after) {
		t.Fatal("post-copy remote rate never measured; run too short")
	}
	if after > before+0.1 || after > 0.1 {
		t.Fatalf("post-copy remote refs/pkt %.3f did not return to the local baseline %.3f", after, before)
	}
	for _, w := range withCopy.Workers {
		if w.Type == apps.MON && w.StateSocket != w.Socket {
			t.Fatalf("MON state still homed to socket %d while running on %d: %+v",
				w.StateSocket, w.Socket, w)
		}
	}

	// With migration disabled the tables stay behind: the moved flow's
	// steady-state remote rate stays at its table-miss rate.
	noCopy, noCopySamples := run(0)
	m2, cp2, _, after2 := monMigration(t, noCopy)
	if cp2.Copied || m2.StateCopyCycles != 0 {
		t.Fatalf("state copied with MigrateState disabled: %+v", m2)
	}
	if math.IsNaN(after2) || after2 < 0.5 {
		t.Fatalf("flow without its state reports %.3f remote refs/pkt; expected sustained QPI traffic", after2)
	}
	remoteMON := 0
	for _, w := range noCopy.Workers {
		if w.Type == apps.MON && w.StateSocket >= 0 && w.StateSocket != w.Socket {
			remoteMON++
		}
	}
	if remoteMON == 0 {
		t.Fatalf("no MON worker reports remote state after migrating without a copy: %+v", noCopy.Workers)
	}

	// Steady state, past the copy and the cache warm-up: with its tables
	// local again the migrated flow's remote rate returns to the
	// pre-migration baseline (≈ 0) and its goodput recovers; without the
	// copy it keeps streaming table misses across the interconnect at a
	// measurably lower packet rate. Both runs migrated the same flow
	// (identical config apart from the threshold), so the comparison is
	// like for like.
	migApp := strings.SplitN(m.FlowA, "/", 2)[0]
	if !strings.HasPrefix(migApp, "mon") {
		migApp = strings.SplitN(m.FlowB, "/", 2)[0]
	}
	ppsCopy, remCopy := steadyState(t, copySamples, migApp)
	ppsNo, remNo := steadyState(t, noCopySamples, migApp)
	if remCopy > 0.15 {
		t.Fatalf("steady remote refs/pkt with copy = %.3f, want ≈ local baseline", remCopy)
	}
	if remNo < 0.4 {
		t.Fatalf("steady remote refs/pkt without copy = %.3f; the flow should still pay QPI", remNo)
	}
	if ppsCopy <= ppsNo {
		t.Fatalf("steady goodput with state copy %.0f pps ≤ without %.0f pps", ppsCopy, ppsNo)
	}
}

// TestRuntimeChainStageStateLocal: a staged chain allocates each stage's
// state in its own worker's NUMA domain — asserted through the address
// ranges (hw.DomainBase) of the recorded state bindings — even when the
// cut spans sockets. (TestRuntimeChainStaysPinned covers the companion
// property: pinned chain stages never trigger a state copy while
// re-placement shuffles their neighbours.)
func TestRuntimeChainStageStateLocal(t *testing.T) {
	params := withCustom(apps.Small(), "MONC", monStyleGraph(apps.Small()), map[string]int{"nf": 1})
	cps := testCfg().CoresPerSocket
	cfg := testConfig([]AppSpec{{Name: "chain", Type: "MONC", Workers: 1}})
	cfg.Params = params
	// Chain stage 0 on socket 0, stage 1 on socket 1: state must split.
	cfg.Cores = []int{0, cps}
	cfg.MigrateState = 64 << 20 // irrelevant for pinned stages; must stay inert
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Placement at build time: stage s's bindings live in a domain homed
	// to stage s's socket, inside that domain's address range.
	chain := r.flows[0]
	if chain.stages == nil || len(chain.state) == 0 {
		t.Fatalf("chain flow not staged or stateless: %+v", chain)
	}
	sockets := cfg.Cfg.Sockets
	perStage := map[int]uint64{}
	for _, b := range chain.state {
		d := b.Domain()
		if b.Base < hw.DomainBase(d) || b.Base >= hw.DomainBase(d+1) {
			t.Fatalf("binding %+v outside domain %d's address range", b, d)
		}
		wantSocket := b.Stage // stage 0 worker is on socket 0, stage 1 on socket 1
		if d%sockets != wantSocket {
			t.Fatalf("stage %d state %q homed to socket %d, want %d (domain %d)",
				b.Stage, b.Element, d%sockets, wantSocket, d)
		}
		perStage[b.Stage] += b.Size
	}
	if perStage[0] == 0 || perStage[1] == 0 {
		t.Fatalf("per-stage footprints %v: both stages must own state", perStage)
	}

	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)
	if len(rep.Migrations) != 0 {
		t.Fatalf("pinned chain migrated: %+v", rep.Migrations)
	}
	// Chain stage rows stay NUMA-local for the whole run.
	for _, w := range rep.Workers {
		if w.App != "chain" {
			continue
		}
		if w.StateBytes == 0 {
			t.Fatalf("chain stage %d reports no state: %+v", w.Stage, w)
		}
		if w.StateSocket != w.Socket {
			t.Fatalf("chain stage %d state on socket %d, worker on %d", w.Stage, w.StateSocket, w.Socket)
		}
	}
}
