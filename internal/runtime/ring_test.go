package runtime

import (
	"bytes"
	"encoding/binary"
	stdruntime "runtime"
	"testing"
)

func TestRingBasicOrder(t *testing.T) {
	r := NewRing(8, 16)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 5; i++ {
		if !r.Push([]byte{byte(i), 1, 2}, uint64(100+i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d, want 5", r.Len())
	}
	dst := make([]byte, 16)
	for i := 0; i < 5; i++ {
		n, stamp, ok := r.Pop(dst)
		if !ok || n != 3 || dst[0] != byte(i) {
			t.Fatalf("pop %d: n=%d ok=%v first=%d", i, n, ok, dst[0])
		}
		if stamp != uint64(100+i) {
			t.Fatalf("pop %d: stamp = %d, want %d", i, stamp, 100+i)
		}
	}
	if _, _, ok := r.Pop(dst); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingFullAndWraparound(t *testing.T) {
	r := NewRing(4, 8)
	dst := make([]byte, 8)
	// Fill, drain, refill repeatedly so cursors wrap well past capacity.
	seq := byte(0)
	expect := byte(0)
	for round := 0; round < 40; round++ {
		for r.Push([]byte{seq}, 0) {
			seq++
		}
		if r.Len() != r.Cap() {
			t.Fatalf("round %d: ring not full after rejected push (len %d)", round, r.Len())
		}
		if r.Push([]byte{99}, 0) {
			t.Fatal("push into full ring succeeded")
		}
		for {
			n, _, ok := r.Pop(dst)
			if !ok {
				break
			}
			if n != 1 || dst[0] != expect {
				t.Fatalf("round %d: popped %d, want %d", round, dst[0], expect)
			}
			expect++
		}
	}
}

func TestRingRejectsOversizedPacket(t *testing.T) {
	r := NewRing(4, 8)
	if r.Push(make([]byte, 9), 0) {
		t.Fatal("oversized push succeeded")
	}
	if r.Len() != 0 {
		t.Fatal("oversized push changed occupancy")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if got := NewRing(3, 8).Cap(); got != 4 {
		t.Fatalf("cap(3) rounded to %d, want 4", got)
	}
	if got := NewRing(1, 8).Cap(); got != 2 {
		t.Fatalf("cap(1) rounded to %d, want 2", got)
	}
}

// TestRingConcurrentSPSC drives one producer and one consumer goroutine
// through a sequence and checks every packet arrives intact, in order,
// exactly once.
func TestRingConcurrentSPSC(t *testing.T) {
	const total = 50000
	r := NewRing(128, 8)
	done := make(chan error)
	go func() {
		dst := make([]byte, 8)
		next := uint64(0)
		for next < total {
			n, _, ok := r.Pop(dst)
			if !ok {
				// On a single-P runtime a busy spin would starve the
				// producer for a whole scheduling slice.
				stdruntime.Gosched()
				continue
			}
			if n != 8 {
				done <- bytes.ErrTooLarge
				return
			}
			v := binary.LittleEndian.Uint64(dst)
			if v != next {
				done <- errOutOfOrder{want: next, got: v}
				return
			}
			next++
		}
		done <- nil
	}()
	buf := make([]byte, 8)
	for i := uint64(0); i < total; {
		binary.LittleEndian.PutUint64(buf, i)
		if r.Push(buf, i) {
			i++
		} else {
			stdruntime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type errOutOfOrder struct{ want, got uint64 }

func (e errOutOfOrder) Error() string {
	return "out of order"
}

// TestRingConcurrentWithTelemetryReaders stresses the live deployment
// shape under the race detector: one producer, one consumer, plus a
// telemetry goroutine reading Len and Consumed the way the control loop
// and a CLI scraper do, with variable-size packets so slot lengths are
// exercised concurrently too.
func TestRingConcurrentWithTelemetryReaders(t *testing.T) {
	const total = 30000
	r := NewRing(64, 32)
	stop := make(chan struct{})
	telemDone := make(chan struct{})
	go func() {
		defer close(telemDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if l := r.Len(); l < 0 || l > r.Cap() {
				panic("ring occupancy out of range")
			}
			_ = r.Consumed()
			stdruntime.Gosched()
		}
	}()
	consDone := make(chan error, 1)
	go func() {
		dst := make([]byte, 32)
		for next := uint64(0); next < total; {
			n, stamp, ok := r.Pop(dst)
			if !ok {
				stdruntime.Gosched()
				continue
			}
			if want := int(8 + next%17); n != want {
				consDone <- errOutOfOrder{want: uint64(want), got: uint64(n)}
				return
			}
			if v := binary.LittleEndian.Uint64(dst); v != next {
				consDone <- errOutOfOrder{want: next, got: v}
				return
			}
			if stamp != next {
				consDone <- errOutOfOrder{want: next, got: stamp}
				return
			}
			next++
		}
		consDone <- nil
	}()
	buf := make([]byte, 32)
	for i := uint64(0); i < total; {
		sz := 8 + i%17
		binary.LittleEndian.PutUint64(buf, i)
		if r.Push(buf[:sz], i) {
			i++
		} else {
			stdruntime.Gosched()
		}
	}
	if err := <-consDone; err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-telemDone
	if r.Len() != 0 || r.Consumed() != total {
		t.Fatalf("after drain: len=%d consumed=%d", r.Len(), r.Consumed())
	}
}
