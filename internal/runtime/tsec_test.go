package runtime

import (
	"math"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/obs"
)

// TestControlSampleTimeMonotonic pins the residual wall-time
// derivation: ControlSample.Time must be quantum-derived virtual
// seconds since measurement start — strictly monotonic, spaced exactly
// one control window apart, and immune to StatsRetention evicting old
// samples (the prior derivation walked the retained sample count, so
// eviction made the series fold back on itself).
func TestControlSampleTimeMonotonic(t *testing.T) {
	cfg := testConfig([]AppSpec{{Name: "ipfwd", Type: apps.IP, Workers: 1}})
	cfg.StatsRetention = 3 // force eviction well before the run ends
	cfg.Profiles = map[apps.FlowType]FlowProfile{
		apps.IP: {SoloPPS: 1e6, SoloRefsPerSec: 1e6},
	}
	quantumSec := float64(cfg.QuantumCycles) / cfg.Cfg.ClockHz
	winSec := float64(cfg.ControlEvery) * quantumSec

	type point struct {
		q    int
		tsec float64
	}
	var seen []point
	var resTimes []float64
	cfg.OnWindow = func(cs ControlSample, res []obs.Residual) {
		seen = append(seen, point{cs.Quantum, cs.Time})
		for _, rr := range res {
			resTimes = append(resTimes, rr.Time)
		}
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)
	if len(seen) <= cfg.StatsRetention {
		t.Fatalf("run produced %d windows; need more than the retention of %d", len(seen), cfg.StatsRetention)
	}

	for i, p := range seen {
		if p.tsec <= 0 {
			t.Fatalf("window %d has non-positive time %v", i, p.tsec)
		}
		if i == 0 {
			continue
		}
		prev := seen[i-1]
		dt := p.tsec - prev.tsec
		wantDt := float64(p.q-prev.q) * quantumSec
		if math.Abs(dt-wantDt) > 1e-12 {
			t.Fatalf("window %d: Δt=%v for Δq=%d, want %v (quantum-inconsistent clock)",
				i, dt, p.q-prev.q, wantDt)
		}
		if dt < winSec-1e-12 {
			t.Fatalf("window %d: time advanced %v < one window %v", i, dt, winSec)
		}
	}

	// Residual timestamps ride the same clock.
	for i := 1; i < len(resTimes); i++ {
		if resTimes[i] < resTimes[i-1] {
			t.Fatalf("residual times regress at %d: %v -> %v", i, resTimes[i-1], resTimes[i])
		}
	}

	// The retained tail matches the live series — eviction must not
	// rewrite times.
	tail := r.Stats().Samples()
	if len(tail) != cfg.StatsRetention {
		t.Fatalf("retained %d samples, want %d", len(tail), cfg.StatsRetention)
	}
	off := len(seen) - len(tail)
	for i, cs := range tail {
		if want := seen[off+i]; cs.Time != want.tsec || cs.Quantum != want.q {
			t.Fatalf("retained sample %d = (q%d, %v), want (q%d, %v)",
				i, cs.Quantum, cs.Time, want.q, want.tsec)
		}
	}
}
