package runtime

import (
	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// ProfileFlows runs the paper's offline profiling for the given flow
// types on the deterministic engine: a solo run per type (Table 1) and a
// SYN competition sweep per type (the drop-versus-competition curve).
// The result plugs straight into Config.Profiles, giving the runtime its
// admission limits, drop baselines, and prediction curves — the exact
// artefacts an operator would ship from a profiling testbed to
// production.
func ProfileFlows(cfg hw.Config, params apps.Params, warmup, window float64, grid []int, types []apps.FlowType) (map[apps.FlowType]FlowProfile, error) {
	p := core.NewPredictor(cfg, params, warmup, window)
	if len(grid) > 0 {
		p.SweepGrid = grid
	}
	out := make(map[apps.FlowType]FlowProfile, len(types))
	for _, t := range types {
		if _, done := out[t]; done {
			continue
		}
		solo, err := p.Solo(t)
		if err != nil {
			return nil, err
		}
		curve, err := p.Curve(t)
		if err != nil {
			return nil, err
		}
		prof := FlowProfile{
			SoloPPS:        solo.Throughput(),
			SoloRefsPerSec: solo.L3RefsPerSec(),
			Curve:          curve,
		}
		if !t.Synthetic() {
			// Per-element baselines come from a brief solo run on the
			// runtime itself rather than the engine: the runtime's build
			// path (graph surgery, receive rings, recycling) is the one
			// the live tables will measure, so node names and overhead
			// attribution match exactly.
			elems, err := soloElementBaselines(cfg, params, t, warmup, window)
			if err != nil {
				return nil, err
			}
			prof.Elements = elems
		}
		out[t] = prof
	}
	return out, nil
}

// soloElementBaselines measures one flow type's per-element per-packet
// costs with a single saturated replica and no co-runners — the offline
// side of online drift detection.
func soloElementBaselines(cfg hw.Config, params apps.Params, t apps.FlowType, warmup, window float64) (map[string]ElemBaseline, error) {
	rt, err := NewRuntime(Config{
		Cfg:    cfg,
		Params: params,
		Apps:   []AppSpec{{Name: "solo", Type: t, Workers: 1}},
		Warmup: warmup,
	})
	if err != nil {
		return nil, err
	}
	if _, err := rt.Run(window); err != nil {
		return nil, err
	}
	return rt.ElementBaselines(), nil
}

// ElementBaselines aggregates per-element costs since measurement start
// across every flow of the runtime, per packet entering a flow. Call it
// after Run returns (no workers are writing the tables then). It is
// meant for single-type profiling runs; a mixed runtime folds all apps'
// same-named elements together.
func (r *Runtime) ElementBaselines() map[string]ElemBaseline {
	totals := map[string]hw.ElemCell{}
	var pkts uint64
	add := func(f *flow, cur, base []hw.ElemCell) {
		nodes := f.pipe.Nodes()
		for i := range cur {
			var b hw.ElemCell
			if i < len(base) {
				b = base[i]
			}
			d := cur[i].Sub(b)
			name := overheadElem
			if i > 0 {
				name = nodes[i-1].Name
			}
			c := totals[name]
			c.Cycles += d.Cycles
			c.L3Refs += d.L3Refs
			c.L3Hits += d.L3Hits
			c.L3Misses += d.L3Misses
			totals[name] = c
		}
	}
	for _, f := range r.flows {
		if f.pipe == nil {
			continue
		}
		pkts += f.packets
		add(f, f.elems, f.baseElems)
		for _, u := range f.stages {
			add(f, u.elems, u.baseElems)
		}
	}
	if pkts == 0 {
		return nil
	}
	out := make(map[string]ElemBaseline, len(totals))
	for name, c := range totals {
		out[name] = ElemBaseline{
			CyclesPerPacket: float64(c.Cycles) / float64(pkts),
			RefsPerPacket:   float64(c.L3Refs) / float64(pkts),
		}
	}
	return out
}
