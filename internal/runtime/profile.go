package runtime

import (
	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// ProfileFlows runs the paper's offline profiling for the given flow
// types on the deterministic engine: a solo run per type (Table 1) and a
// SYN competition sweep per type (the drop-versus-competition curve).
// The result plugs straight into Config.Profiles, giving the runtime its
// admission limits, drop baselines, and prediction curves — the exact
// artefacts an operator would ship from a profiling testbed to
// production.
func ProfileFlows(cfg hw.Config, params apps.Params, warmup, window float64, grid []int, types []apps.FlowType) (map[apps.FlowType]FlowProfile, error) {
	p := core.NewPredictor(cfg, params, warmup, window)
	if len(grid) > 0 {
		p.SweepGrid = grid
	}
	out := make(map[apps.FlowType]FlowProfile, len(types))
	for _, t := range types {
		if _, done := out[t]; done {
			continue
		}
		solo, err := p.Solo(t)
		if err != nil {
			return nil, err
		}
		curve, err := p.Curve(t)
		if err != nil {
			return nil, err
		}
		out[t] = FlowProfile{
			SoloPPS:        solo.Throughput(),
			SoloRefsPerSec: solo.L3RefsPerSec(),
			Curve:          curve,
		}
	}
	return out, nil
}
