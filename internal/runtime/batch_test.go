package runtime

import (
	"bytes"
	"encoding/binary"
	"math"
	stdruntime "runtime"
	"testing"

	"pktpredict/internal/apps"
)

// TestRingPushPopBatchOrder pins the batched ring API's contract: a
// PushBatch publishes everything it accepted with one cursor store, a
// short return means the overflow was dropped exactly as scalar pushes
// would have dropped it, and PopBatch drains in FIFO order with lengths
// and stamps slot-parallel.
func TestRingPushPopBatchOrder(t *testing.T) {
	r := NewRing(8, 8)
	batch := make([][]byte, 12)
	for i := range batch {
		batch[i] = []byte{byte(i), 0xAA}
	}
	if got := r.PushBatch(batch, 42); got != 8 {
		t.Fatalf("PushBatch accepted %d, want 8 (ring capacity)", got)
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d after batch publish, want 8", r.Len())
	}

	dsts := make([][]byte, 8)
	for i := range dsts {
		dsts[i] = make([]byte, 8)
	}
	lens := make([]int, 8)
	stamps := make([]uint64, 8)
	if got := r.PopBatch(dsts[:5], lens[:5], stamps[:5]); got != 5 {
		t.Fatalf("PopBatch popped %d, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if lens[i] != 2 || dsts[i][0] != byte(i) || stamps[i] != 42 {
			t.Fatalf("pop %d: len=%d first=%d stamp=%d", i, lens[i], dsts[i][0], stamps[i])
		}
	}
	// The released slots are reusable: a refill round-trips through the
	// wrapped region.
	if got := r.PushBatch(batch[8:], 43); got != 4 {
		t.Fatalf("refill accepted %d, want 4", got)
	}
	want := []byte{5, 6, 7, 8, 9, 10, 11}
	if got := r.PopBatch(dsts[:7], lens[:7], stamps[:7]); got != 7 {
		t.Fatalf("drain popped %d, want 7", got)
	}
	for i, w := range want {
		if dsts[i][0] != w {
			t.Fatalf("drain %d: got %d, want %d", i, dsts[i][0], w)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: len %d", r.Len())
	}
	if got := r.PopBatch(dsts[:1], lens[:1], stamps[:1]); got != 0 {
		t.Fatalf("PopBatch from empty ring returned %d", got)
	}
}

// TestRingBatchConcurrentWraparound stresses the staged-cursor SPSC
// discipline: a producer pushing variable-size batches races a consumer
// draining variable-size batches through a small ring, so both cursors
// wrap far past capacity and every publish/release boundary is crossed
// mid-batch. Run under -race this checks the single-store publish is the
// only synchronisation the batched paths need.
func TestRingBatchConcurrentWraparound(t *testing.T) {
	const total = 60000
	r := NewRing(16, 8)
	done := make(chan error, 1)
	go func() {
		dsts := make([][]byte, 7)
		for i := range dsts {
			dsts[i] = make([]byte, 8)
		}
		lens := make([]int, 7)
		stamps := make([]uint64, 7)
		next := uint64(0)
		for next < total {
			want := int(next%uint64(len(dsts))) + 1
			n := r.PopBatch(dsts[:want], lens[:want], stamps[:want])
			if n == 0 {
				stdruntime.Gosched()
				continue
			}
			for i := 0; i < n; i++ {
				if lens[i] != 8 {
					done <- bytes.ErrTooLarge
					return
				}
				if v := binary.LittleEndian.Uint64(dsts[i]); v != next {
					done <- errOutOfOrder{want: next, got: v}
					return
				}
				if stamps[i] != next/8 {
					done <- errOutOfOrder{want: next / 8, got: stamps[i]}
					return
				}
				next++
			}
		}
		done <- nil
	}()
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = make([]byte, 8)
	}
	for i := uint64(0); i < total; {
		n := int(i%uint64(len(bufs))) + 1
		if rem := total - i; uint64(n) > rem {
			n = int(rem)
		}
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint64(bufs[j], i+uint64(j))
		}
		// All packets of one PushBatch share a stamp, so batches are cut
		// on stamp boundaries (every 8 packets here).
		stamp := i / 8
		if end := (stamp + 1) * 8; i+uint64(n) > end {
			n = int(end - i)
		}
		pushed := r.PushBatch(bufs[:n], stamp)
		i += uint64(pushed)
		if pushed < n {
			stdruntime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || r.Consumed() != total {
		t.Fatalf("after drain: len=%d consumed=%d", r.Len(), r.Consumed())
	}
}

// TestRingScalarBatchInterleave checks the scalar and batched APIs
// compose on the same ring: scalar Push publishes pending staged slots,
// scalar Pop releases pending taken slots, and occupancy accounting
// stays exact throughout.
func TestRingScalarBatchInterleave(t *testing.T) {
	r := NewRing(8, 8)
	if !r.Stage([]byte{1}, 0) || !r.Stage([]byte{2}, 0) {
		t.Fatal("stage failed")
	}
	// Scalar push after stages: all three publish together.
	if !r.Push([]byte{3}, 0) {
		t.Fatal("push failed")
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	dst := make([]byte, 8)
	if _, _, ok := r.PopStaged(dst); !ok || dst[0] != 1 {
		t.Fatalf("staged pop got %d", dst[0])
	}
	if r.Consumed() != 0 {
		t.Fatal("PopStaged released the slot")
	}
	// Scalar pop after a staged pop: both release together.
	if _, _, ok := r.Pop(dst); !ok || dst[0] != 2 {
		t.Fatalf("pop got %d", dst[0])
	}
	if r.Consumed() != 2 || r.Len() != 1 {
		t.Fatalf("consumed=%d len=%d, want 2/1", r.Consumed(), r.Len())
	}
}

// TestWorkerBatchOccupancyExcludesClipped pins the S2 fix: under a
// saturating load whose ring never runs dry, every occupancy-counted
// batch poll is full — quantum-truncated polls land in ClippedBatches
// instead of dragging the mean down. Before the fix the boundary-clipped
// partial batch of nearly every quantum was averaged in, biasing
// BatchOccupancy low by a worker-dependent amount.
func TestWorkerBatchOccupancyExcludesClipped(t *testing.T) {
	cfg := testConfig([]AppSpec{{Name: "mon", Type: apps.MON, Workers: 1}})
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Workers[0]
	if w.BatchOccupancy != 1.0 {
		t.Fatalf("saturated occupancy = %v, want exactly 1.0 (clipped polls excluded)", w.BatchOccupancy)
	}
	if w.ClippedBatches == 0 {
		t.Fatal("no clipped batch polls recorded under saturation — quantum boundaries must clip")
	}
	checkConservation(t, rep)
}

// TestRuntimeBatchedScalarEquivalence runs every builtin paper mix at
// BATCH 1 (the historical scalar model) and at a deeper modelled batch,
// and checks batching changed the accounting's efficiency, not its
// correctness: conservation identities hold exactly in both, every app
// still processes traffic, and observed drops agree within the same
// tolerance band the engine validation uses. CI's dedicated -race step
// runs this test to race-check the batched hot paths end to end.
func TestRuntimeBatchedScalarEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite skipped in -short mode (runs in its dedicated CI step)")
	}
	const (
		warmup = 0.0005
		window = 0.002
		dur    = 0.004
		batch  = 8
	)
	grid := []int{400, 0}
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			drops := map[int]map[string]float64{}
			for _, b := range []int{1, batch} {
				cfg, err := ScenarioConfig(name, testCfg(), apps.Small())
				if err != nil {
					t.Fatal(err)
				}
				cfg.Params.RxBatch = b
				cfg.Batch = maxInt(b, 2) // worker burst ≥ 2 keeps batch polls meaningful
				needsProfile := false
				for _, a := range cfg.Apps {
					if a.RateFraction > 0 {
						needsProfile = true
					}
				}
				if needsProfile {
					// Profiles must be derived at the same modelled batch
					// depth the runtime runs with, or rate fractions
					// reference the wrong solo capacity.
					profiles, err := ProfileFlows(testCfg(), cfg.Params, warmup, window, grid, cfg.FlowTypes())
					if err != nil {
						t.Fatal(err)
					}
					cfg.Profiles = profiles
				}
				cfg.QuantumCycles = 100_000
				cfg.ControlEvery = 4
				cfg.Warmup = 0.0003
				r, err := NewRuntime(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := r.Run(dur)
				if err != nil {
					t.Fatal(err)
				}
				checkConservation(t, rep)
				drops[b] = map[string]float64{}
				for _, a := range rep.Apps {
					if a.Processed == 0 {
						t.Fatalf("batch %d: app %s processed nothing", b, a.Name)
					}
					if a.Type.Synthetic() {
						continue
					}
					drops[b][a.Name] = a.ObservedDrop
				}
			}
			tol := 0.15
			if name == ScenarioThrash {
				tol = 0.20 // migration transient timing differs run to run
			}
			for app, d1 := range drops[1] {
				db := drops[batch][app]
				if diff := math.Abs(d1 - db); diff > tol {
					t.Errorf("app %s: drop %.1f%% at BATCH 1 vs %.1f%% at BATCH %d — gap %.1f%% exceeds ±%.0f%%",
						app, d1*100, db*100, batch, diff*100, tol*100)
				}
			}
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkRingPushPopBatch(b *testing.B) {
	r := NewRing(256, 64)
	const batch = 32
	bufs := make([][]byte, batch)
	dsts := make([][]byte, batch)
	for i := 0; i < batch; i++ {
		bufs[i] = make([]byte, 64)
		dsts[i] = make([]byte, 64)
	}
	lens := make([]int, batch)
	stamps := make([]uint64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PushBatch(bufs, uint64(i))
		r.PopBatch(dsts, lens, stamps)
	}
}
