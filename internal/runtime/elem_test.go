package runtime

import (
	"regexp"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/obs"
)

// snapshotFamily returns a family's series from a registry snapshot,
// nil when the family registered no series.
func snapshotFamily(snap obs.Snapshot, name string) *obs.FamilySnapshot {
	for i := range snap.Families {
		if snap.Families[i].Name == name {
			return &snap.Families[i]
		}
	}
	return nil
}

func labelIndex(f *obs.FamilySnapshot, label string) int {
	for i, l := range f.Labels {
		if l == label {
			return i
		}
	}
	return -1
}

// TestElementCyclesReconcileWorkerTotals is the acceptance check for
// per-element attribution: summed across every element (including the
// overhead slot), each worker's element cycle counter must reconcile
// with that worker's executed-cycle hardware counter within 1% — no
// work escapes attribution and none is double-counted.
func TestElementCyclesReconcileWorkerTotals(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig([]AppSpec{
		{Name: "ipfwd", Type: apps.IP, Workers: 2},
		{Name: "mon", Type: apps.MON, Workers: 1},
	})
	cfg.Metrics = reg
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)

	snap := reg.Snapshot()
	ef := snapshotFamily(snap, "dataplane_element_cycles_total")
	hf := snapshotFamily(snap, "dataplane_worker_hw_total")
	if ef == nil || hf == nil {
		t.Fatal("element or hw counter family missing from snapshot")
	}
	ewi := labelIndex(ef, "worker")
	eei := labelIndex(ef, "element")
	hwi := labelIndex(hf, "worker")
	hci := labelIndex(hf, "counter")
	if ewi < 0 || eei < 0 || hwi < 0 || hci < 0 {
		t.Fatalf("missing labels: element family %v, hw family %v", ef.Labels, hf.Labels)
	}

	elemByWorker := map[string]float64{}
	sawOverhead := false
	for _, s := range ef.Series {
		elemByWorker[s.LabelValues[ewi]] += s.Value
		if s.LabelValues[eei] == "overhead" {
			sawOverhead = true
		}
	}
	if !sawOverhead {
		t.Fatal("no overhead-slot series: source pulls and ring work went unattributed")
	}
	cycByWorker := map[string]float64{}
	for _, s := range hf.Series {
		if s.LabelValues[hci] == "cycles" {
			cycByWorker[s.LabelValues[hwi]] += s.Value
		}
	}
	checked := 0
	for w, cyc := range cycByWorker {
		if cyc == 0 {
			continue
		}
		checked++
		got := elemByWorker[w]
		if diff := (got - cyc) / cyc; diff > 0.01 || diff < -0.01 {
			t.Errorf("worker %s: element cycles %.0f vs core cycles %.0f (%.2f%% off)",
				w, got, cyc, diff*100)
		}
	}
	if checked == 0 {
		t.Fatal("no worker accrued cycles")
	}

	// The per-packet gauges exist and are positive for a real element.
	gf := snapshotFamily(snap, "dataplane_element_cycles_per_packet")
	if gf == nil || len(gf.Series) == 0 {
		t.Fatal("per-packet element gauge family empty")
	}
	positive := false
	for _, s := range gf.Series {
		if s.Value > 0 {
			positive = true
		}
	}
	if !positive {
		t.Fatal("every element cycles-per-packet gauge is zero")
	}
}

// TestElementBaselinesFromSolo: the offline side of drift detection —
// a solo runtime run yields per-packet baselines for every pipeline
// element plus the overhead slot, all positive for elements that do
// real work.
func TestElementBaselinesFromSolo(t *testing.T) {
	base := testConfig(nil)
	elems, err := soloElementBaselines(base.Cfg, base.Params, apps.IP, base.Warmup, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) == 0 {
		t.Fatal("solo run produced no element baselines")
	}
	if _, ok := elems["overhead"]; !ok {
		t.Fatalf("baselines missing the overhead slot: %v", elems)
	}
	var anyRefs bool
	for name, b := range elems {
		if b.CyclesPerPacket < 0 || b.RefsPerPacket < 0 {
			t.Fatalf("element %s has negative baseline %+v", name, b)
		}
		if b.RefsPerPacket > 0 {
			anyRefs = true
		}
	}
	if !anyRefs {
		t.Fatal("no element issued L3 references in the solo run")
	}
}

// TestMetricNameConventions lints every registered family on a fully
// featured runtime (SLO app, staged chain, profiles): Prometheus-style
// names, counters ending in _total, and no gauge or histogram
// masquerading as one.
func TestMetricNameConventions(t *testing.T) {
	params := withCustom(apps.Small(), "MONC", monStyleGraph(apps.Small()), map[string]int{"nf": 1})
	reg := obs.NewRegistry()
	cfg := testConfig([]AppSpec{
		{Name: "ipfwd", Type: apps.IP, Workers: 1, SLOP99US: 50},
		{Name: "monc", Type: "MONC", Workers: 1},
	})
	cfg.Params = params
	cps := testCfg().CoresPerSocket
	cfg.Cores = []int{0, 1, cps}
	cfg.Metrics = reg
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0.002); err != nil {
		t.Fatal(err)
	}

	nameRe := regexp.MustCompile(`^dataplane_[a-z][a-z0-9_]*$`)
	snap := reg.Snapshot()
	if len(snap.Families) == 0 {
		t.Fatal("registry is empty")
	}
	for _, f := range snap.Families {
		if !nameRe.MatchString(f.Name) {
			t.Errorf("family %q does not match %s", f.Name, nameRe)
		}
		if f.Help == "" {
			t.Errorf("family %q has no help string", f.Name)
		}
		total := strings.HasSuffix(f.Name, "_total")
		switch f.Kind {
		case obs.KindCounter:
			if !total {
				t.Errorf("counter %q must end in _total", f.Name)
			}
		case obs.KindGauge, obs.KindHistogram:
			if total {
				t.Errorf("%s %q must not end in _total", f.Kind, f.Name)
			}
		default:
			t.Errorf("family %q has unknown kind %q", f.Name, f.Kind)
		}
	}
}
