package runtime

import (
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/obs"
)

// profileWithElements builds one flow type's profile the way the
// acceptance scenario does: solo throughput from the deterministic
// engine plus per-element baselines from a solo runtime run.
func profileWithElements(t *testing.T, typ apps.FlowType, params apps.Params) FlowProfile {
	t.Helper()
	solo := soloStats(t, typ, params)
	base := testConfig(nil)
	elems, err := soloElementBaselines(base.Cfg, params, typ, base.Warmup, 0.002)
	if err != nil {
		t.Fatalf("element baselines for %s: %v", typ, err)
	}
	return FlowProfile{
		SoloPPS:        solo.Throughput(),
		SoloRefsPerSec: solo.L3RefsPerSec(),
		Elements:       elems,
	}
}

// TestProfileDriftNamesHiddenElement is the ISSUE's acceptance case: a
// flow that profiles as FW but carries a hidden trigger flips its
// behaviour mid-run. The per-element window costs must attribute the
// divergence to the specific element — the spliced-in aggressor, which
// did not exist when the offline profile was taken — and diagnose the
// residual as profile drift, not generic L3 contention.
func TestProfileDriftNamesHiddenElement(t *testing.T) {
	params := apps.Small()
	cfg := testConfig([]AppSpec{
		{Name: "rogue", Type: apps.FW, Workers: 1, HiddenTrigger: 200},
	})
	cfg.Profiles = map[apps.FlowType]FlowProfile{
		apps.FW: profileWithElements(t, apps.FW, params),
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)

	var drifts int
	var evidence string
	for _, rr := range rep.Residuals {
		if rr.Cause == obs.CauseProfileDrift {
			drifts++
			evidence = rr.Evidence
		}
	}
	if drifts == 0 {
		t.Fatalf("no window diagnosed profile drift after the hidden trigger; residuals: %+v", rep.Residuals)
	}
	// The aggressor element is spliced in as a Syn synthetic element; the
	// diagnosis must name it, not some legitimate FW element.
	if !strings.Contains(evidence, "Syn") {
		t.Fatalf("drift evidence does not name the aggressor element: %q", evidence)
	}
}

// TestNoDriftOnUnperturbedMix: the same detector must stay quiet on a
// clean paper mix whose live behaviour matches its offline profiles —
// drift windows here would be false positives.
func TestNoDriftOnUnperturbedMix(t *testing.T) {
	params := apps.Small()
	cfg := testConfig([]AppSpec{
		{Name: "ipfwd", Type: apps.IP, Workers: 2},
		{Name: "mon", Type: apps.MON, Workers: 1},
	})
	cfg.Profiles = map[apps.FlowType]FlowProfile{
		apps.IP:  profileWithElements(t, apps.IP, params),
		apps.MON: profileWithElements(t, apps.MON, params),
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)
	if len(rep.Residuals) == 0 {
		t.Fatal("profiled mix produced no residual series")
	}
	for _, rr := range rep.Residuals {
		if rr.Cause == obs.CauseProfileDrift {
			t.Fatalf("clean mix diagnosed drift at t=%.3fms for %s: %s", rr.Time*1e3, rr.App, rr.Evidence)
		}
	}
}

// TestLatencySLOBreachAndCompliance: an impossible latency objective
// records breaches and burn in the report; a generous one stays clean.
// Both report end-to-end percentiles.
func TestLatencySLOBreachAndCompliance(t *testing.T) {
	run := func(sloUS float64) AppReport {
		t.Helper()
		cfg := testConfig([]AppSpec{
			{Name: "ipfwd", Type: apps.IP, Workers: 1, SLOP99US: sloUS},
		})
		r, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(0.004)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, rep)
		for _, a := range rep.Apps {
			if a.Name == "ipfwd" {
				return a
			}
		}
		t.Fatal("report missing ipfwd")
		return AppReport{}
	}

	tight := run(0.001) // 1 ns: below any packet's processing time
	if tight.LatCount == 0 {
		t.Fatal("no latencies recorded")
	}
	if tight.LatP50US <= 0 || tight.LatP99US < tight.LatP50US || tight.LatP999US < tight.LatP99US {
		t.Fatalf("percentiles not ordered: p50=%v p99=%v p999=%v",
			tight.LatP50US, tight.LatP99US, tight.LatP999US)
	}
	if tight.SLOP99US != 0.001 {
		t.Fatalf("report SLO target = %v, want 0.001", tight.SLOP99US)
	}
	if tight.SLOBreaches == 0 {
		t.Fatal("impossible SLO recorded no breached windows")
	}
	if tight.SLOBurnRate <= 0 {
		t.Fatalf("impossible SLO burn rate = %v, want > 0", tight.SLOBurnRate)
	}

	loose := run(1e6) // one virtual second: unreachable by any backlog
	if loose.SLOBreaches != 0 || loose.SLOBurnRate != 0 {
		t.Fatalf("generous SLO breached: %d windows, burn %v", loose.SLOBreaches, loose.SLOBurnRate)
	}
	if loose.LatCount == 0 || loose.LatP99US <= 0 {
		t.Fatal("compliant run lost its latency histogram")
	}
}

// TestReportStringLatencyTable: the whole-run report renders the
// latency table when latencies were recorded, including SLO columns.
func TestReportStringLatencyTable(t *testing.T) {
	cfg := testConfig([]AppSpec{
		{Name: "ipfwd", Type: apps.IP, Workers: 1, SLOP99US: 0.001},
	})
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"p99_us", "slo_p99", "breaches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report lacks latency column %q:\n%s", want, s)
		}
	}
}
