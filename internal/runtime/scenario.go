package runtime

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
)

// Builtin scenarios: each exercises a different stress on the dataplane
// and a different online mechanism.
//
//	mixed  — a realistic middlebox mix (IP forwarding, monitoring, VPN,
//	         firewall) saturating one socket; the baseline
//	         predicted-versus-observed comparison.
//	bursty — steady monitoring plus an on/off VPN source whose bursts
//	         overrun its rings, exercising queueing and tail drop.
//	thrash — monitoring victims interleaved with SYN_MAX cache thrashers
//	         across both sockets; live re-placement separates them.
//	hidden — the Section 4 adversary: a flow that profiles like a
//	         firewall, then turns into a cache thrasher; admission
//	         control clamps it back to its profiled rate.
const (
	ScenarioMixed  = "mixed"
	ScenarioBursty = "bursty"
	ScenarioThrash = "thrash"
	ScenarioHidden = "hidden"
)

// ScenarioNames lists the builtin scenarios.
func ScenarioNames() []string {
	return []string{ScenarioMixed, ScenarioBursty, ScenarioThrash, ScenarioHidden}
}

// ScenarioTypes returns the flow types a scenario runs, for callers that
// profile before building (offline profiling is per type).
func ScenarioTypes(name string, cfg hw.Config, params apps.Params) ([]apps.FlowType, error) {
	c, err := ScenarioConfig(name, cfg, params)
	if err != nil {
		return nil, err
	}
	return c.FlowTypes(), nil
}

// ScenarioConfig assembles the runtime configuration of a builtin
// scenario on the given platform and workload scale. Profiles are left
// nil; callers attach them (see ProfileFlows) before NewRuntime when
// prediction, admission, or re-placement is wanted.
func ScenarioConfig(name string, cfg hw.Config, params apps.Params) (Config, error) {
	cps := cfg.CoresPerSocket
	base := Config{Cfg: cfg, Params: params, Scenario: name}
	switch strings.ToLower(name) {
	case ScenarioMixed:
		if cps < 4 {
			return Config{}, fmt.Errorf("runtime: scenario %s needs ≥4 cores per socket", name)
		}
		n := cps
		if n > 6 {
			n = 6
		}
		// Saturating mix filling one socket: 2×IP, then MON, VPN, FW, MON.
		specs := []AppSpec{
			{Name: "ipfwd", Type: apps.IP, Workers: 2},
			{Name: "mon", Type: apps.MON, Workers: 1},
			{Name: "vpn", Type: apps.VPN, Workers: 1},
			{Name: "fw", Type: apps.FW, Workers: 1},
			{Name: "mon2", Type: apps.MON, Workers: 1},
		}
		total := 0
		var use []AppSpec
		for _, s := range specs {
			if total+s.Workers > n {
				break
			}
			use = append(use, s)
			total += s.Workers
		}
		base.Apps = use
		return base, nil
	case ScenarioBursty:
		if cps < 4 {
			return Config{}, fmt.Errorf("runtime: scenario %s needs ≥4 cores per socket", name)
		}
		base.Apps = []AppSpec{
			{Name: "mon", Type: apps.MON, Workers: 2, RateFraction: 0.7},
			// 1.8× solo rate during bursts, 6 quanta on / 6 off: the ring
			// absorbs the front of each burst, then tail-drops.
			{Name: "vpn", Type: apps.VPN, Workers: 2, RateFraction: 1.8, BurstOn: 6, BurstOff: 6},
		}
		base.RingSize = 256
		return base, nil
	case ScenarioThrash:
		if cfg.Sockets < 2 || cps < 2 {
			return Config{}, fmt.Errorf("runtime: scenario %s needs 2 sockets × ≥2 cores", name)
		}
		// Pathological initial placement: each socket pairs a victim with
		// a thrasher. Re-placement should converge to victims together,
		// thrashers together. The thrasher's region is held to half the
		// L3 so it stays cache-resident next to a victim — the regime
		// where its reference rate (and thus the damage it does) is
		// highest, as with the paper's SYN_MAX.
		base.Params.SynRegionBytes = cfg.L3.SizeBytes / 2
		base.Apps = []AppSpec{
			{Name: "mon-a", Type: apps.MON, Workers: 1},
			{Name: "thrash-a", Type: apps.SYNMAX, Workers: 1},
			{Name: "mon-b", Type: apps.MON, Workers: 1},
			{Name: "thrash-b", Type: apps.SYNMAX, Workers: 1},
		}
		base.Cores = []int{0, 1, cps, cps + 1}
		base.DropThreshold = 0.05
		return base, nil
	case ScenarioHidden:
		if cps < 4 {
			return Config{}, fmt.Errorf("runtime: scenario %s needs ≥4 cores per socket", name)
		}
		base.Apps = []AppSpec{
			{Name: "mon", Type: apps.MON, Workers: 3},
			// Profiles like FW, turns aggressive after 2000 packets.
			{Name: "rogue", Type: apps.FW, Workers: 1, HiddenTrigger: 2000},
		}
		base.Admission = true
		return base, nil
	}
	return Config{}, fmt.Errorf("runtime: unknown scenario %q (have %s)",
		name, strings.Join(ScenarioNames(), ", "))
}
