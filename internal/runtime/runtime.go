// Package runtime is the concurrent multi-core dataplane: it executes
// Click pipelines on one goroutine per simulated core, fed through
// bounded SPSC rings by an RSS-sharding dispatcher, with live per-core
// telemetry driving the paper's two online mechanisms — admission
// control (containing flows that exceed their profiled memory-reference
// rate) and contention-aware re-placement of flows across sockets.
//
// Where the hw.Engine interleaves flows deterministically on one OS
// thread in exact global virtual-time order, the runtime lets workers
// race through a time quantum concurrently and synchronises all core
// clocks at quantum boundaries (lax conservative synchronisation, as
// parallel architecture simulators use). Shared cache state is
// serialised per socket inside hw.Core.ExecOps, so contention between
// co-located flows remains emergent; only the fine-grained interleaving
// within a quantum — and therefore the exact drop figures — varies
// between runs. Dispatch and the control loop run at barrier points,
// which is also when telemetry is sampled, throttle decisions applied,
// and flows migrated.
package runtime

import (
	"fmt"
	"math"
	"sort"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/obs"
	"pktpredict/internal/trafficgen"
)

// FlowProfile is what offline profiling knows about a flow type: its solo
// throughput and memory-reference rate (Table 1) and its
// drop-versus-competition curve (the paper's step 2). The runtime uses
// the reference rate as the admission limit, the curve for live drop
// prediction, and the solo throughput as the drop baseline.
type FlowProfile struct {
	SoloPPS        float64
	SoloRefsPerSec float64
	Curve          core.Curve

	// Elements holds the flow type's offline per-element baseline costs,
	// keyed by pipeline node name (plus the "overhead" slot), measured by
	// a solo runtime run (ProfileFlows). The control loop compares live
	// per-element costs against these every window; an element whose live
	// refs/pkt leaves the baseline is diagnosed as profile drift. Empty
	// or nil disables drift detection for the type.
	Elements map[string]ElemBaseline
}

// ElemBaseline is one element's offline per-packet cost: the reference
// the online drift detector compares live windows against.
type ElemBaseline struct {
	CyclesPerPacket float64
	RefsPerPacket   float64
}

// AppSpec declares one flow group: a flow type served by Workers
// replicas, with its offered traffic.
type AppSpec struct {
	Name    string
	Type    apps.FlowType
	Workers int

	// Rate is the offered load in packets per virtual second, sharded
	// across the group's replicas by RSS flow hash. Zero means saturate:
	// the dispatcher keeps every replica's ring topped up.
	Rate float64
	// RateFraction expresses Rate as a multiple of the group's aggregate
	// solo throughput (Workers × solo pps); it requires a profile and
	// overrides Rate.
	RateFraction float64

	// BurstOn/BurstOff, when both positive, gate the source on for
	// BurstOn quanta then off for BurstOff quanta (bursty traffic).
	BurstOn, BurstOff int

	// Control inserts a control element so admission control can slow
	// the flow down. HiddenTrigger, when positive, builds the Section 4
	// adversarial flow instead: FW behaviour until that many packets,
	// then SYN_MAX-like accesses (it implies a control element).
	Control       bool
	HiddenTrigger uint64

	// SynCompute sets a SYN flow's compute cycles between accesses.
	SynCompute int
	// PacketSize overrides the type's default packet size.
	PacketSize int

	// SLOP99US, when positive, declares the app's end-to-end latency SLO:
	// the p99 of ring-enqueue to walk-termination latency must stay under
	// this many virtual microseconds. The control loop evaluates it every
	// window (burn-rate gauge, breach counter); sweep runs fail a point
	// whose app ends with breaches.
	SLOP99US float64
}

// Config assembles a runtime.
type Config struct {
	Cfg    hw.Config
	Params apps.Params
	Apps   []AppSpec

	// Cores lists the simulated core each worker is pinned to, in worker
	// order; its length must equal the sum of app Workers. Empty means
	// cores 0..n−1 (filling socket 0 first).
	Cores []int

	// RingSize is each flow's input-ring capacity in packets (default 512).
	RingSize int
	// HandoffDepth is the capacity of the hand-off rings connecting the
	// stages of a cross-worker service chain (default 128, clamped so
	// in-flight packets cannot exhaust the stage-0 buffer pool).
	HandoffDepth int
	// Batch is the worker's maximum burst per ring poll (default 32).
	Batch int
	// QuantumCycles is the clock-synchronisation quantum (default 200000
	// cycles, ~71 µs at 2.8 GHz).
	QuantumCycles uint64
	// ControlEvery is the control-loop period in quanta (default 5).
	ControlEvery int
	// MaxQueueWait bounds any single request's queueing delay at the
	// memory controllers and QPI links, modelling their finite queues
	// (default DefaultMaxQueueWait). Required under lax clock
	// synchronisation — workers replay their quanta in arbitrary host
	// order, and unbounded FCFS would tax a late replayer with its
	// neighbours' entire quantum; see hw.Channel.MaxWait.
	MaxQueueWait uint64

	// MigrateState, when positive, makes live re-placement move a flow's
	// state along with the flow: a re-placed flow whose live state
	// footprint is at most MigrateState bytes has its tables copied into
	// the destination socket's memory — charged line-by-line through the
	// simulated hierarchy as remote reads plus local writes on the
	// destination core (surfaced in Counters.RemoteRefs/QPIQueueCycles
	// and Migration.StateCopyCycles) — after which its accesses resolve
	// to the new local domain. Flows above the threshold migrate without
	// their state and keep paying QPI on every reference, the trade an
	// operator prices with the copy-cost crossover (see README). Zero
	// disables state migration entirely.
	MigrateState uint64
	// Warmup is virtual seconds excluded from measurement (default 0).
	Warmup float64

	// Profiles supplies offline profiling results per flow type.
	Profiles map[apps.FlowType]FlowProfile

	// Admission enables the containment loop for flows carrying a
	// control element; Slack is the tolerated overshoot (default 0.05).
	Admission bool
	Slack     float64

	// DropThreshold enables live re-placement: when any flow's predicted
	// drop exceeds it, the control loop searches for a cross-socket swap
	// (requires curves in Profiles). Zero disables. RebalanceMargin is
	// the minimum predicted improvement for a swap (default 0.02).
	DropThreshold   float64
	RebalanceMargin float64

	// Scenario names the run in reports.
	Scenario string

	// Metrics, when non-nil, is the registry the runtime publishes into:
	// per-packet worker counters from the hot path (single atomic adds),
	// control-window telemetry at barriers. An HTTP endpoint scraping the
	// registry (obs.Serve) can read concurrently with the run.
	Metrics *obs.Registry
	// TraceSample, when positive, samples one in N packets entering each
	// staged chain for per-stage exec-span tracing (Runtime.Tracer).
	TraceSample int
	// TraceCap bounds each worker's trace buffer in events (default 8192;
	// overflow counts as dropped, never blocks the worker).
	TraceCap int
	// StatsRetention caps the retained control samples and the residual
	// series per app (default DefaultStatsRetention).
	StatsRetention int
	// ResidualTolerance is the |observed − predicted| drop within which a
	// window's prediction is considered to hold (default 0.05).
	ResidualTolerance float64
	// OnWindow, when non-nil, is called at every control barrier with the
	// window's sample and residuals. Workers are parked while it runs;
	// keep it brief.
	OnWindow func(ControlSample, []obs.Residual)
}

// DefaultMaxQueueWait is the default finite-queue bound in cycles, tuned
// against the deterministic engine's observed memory-controller queue
// waits under a socket-saturating realistic mix. The engine's p99 wait
// there is ≈ 63 cycles, its mean ≈ 8; under lax synchronisation the
// bound is hit far more often than a true FCFS queue's tail (a late
// replayer sees the channel horizon its neighbours' whole quantum
// ahead), so within the admissible band the smallest value tracks the
// engine's throughput best: 32 is the low edge of [p99/2, 2·p99], and
// TestMaxQueueWaitTracksEngine fails if the default ever leaves that
// band.
const DefaultMaxQueueWait = 32

func (c Config) withDefaults() Config {
	if c.RingSize == 0 {
		c.RingSize = 512
	}
	if c.HandoffDepth == 0 {
		c.HandoffDepth = 128
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.QuantumCycles == 0 {
		c.QuantumCycles = 200_000
	}
	if c.ControlEvery == 0 {
		c.ControlEvery = 5
	}
	if c.MaxQueueWait == 0 {
		c.MaxQueueWait = DefaultMaxQueueWait
	}
	if c.Slack == 0 {
		c.Slack = 0.05
	}
	if c.RebalanceMargin == 0 {
		c.RebalanceMargin = 0.02
	}
	if c.ResidualTolerance == 0 {
		c.ResidualTolerance = 0.05
	}
	return c
}

// Runtime is a built dataplane, ready to run once.
type Runtime struct {
	cfg        Config
	platform   *hw.Platform
	workers    []*worker
	flows      []*flow
	disp       *dispatcher
	stats      *Stats
	curves     map[apps.FlowType]core.Curve
	quantumSec float64

	migrations     []Migration
	pendingPost    []pendingPost
	throttleEvents int
	finished       bool

	// Observability state (see obs.go): registered metric handles, the
	// packet tracer, the retained residual ring, running prediction
	// accumulators for the whole-run report (independent of Stats
	// retention), and the previous control barrier's quantum.
	obsm         *rtObs
	tracer       *obs.Tracer
	residuals    []obs.Residual
	residualHead int
	predSum      map[string]float64
	predCnt      map[string]int
	lastControlQ int
	// warmQ is the first measured quantum (warmup length in quanta), the
	// origin of every sample's virtual-time axis.
	warmQ int
}

// pendingPost marks one side of a recorded migration whose post-copy
// remote-reference rate is still unmeasured; the next control window on
// the flow's new worker fills it in.
type pendingPost struct {
	mig    int // index into migrations
	side   int // 0 = flow A, 1 = flow B
	worker int // the flow's new worker
}

// NewRuntime validates cfg and builds the platform, workers, flow
// instances, and dispatcher. Nothing executes until Run.
func NewRuntime(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("runtime: no apps configured")
	}
	total := 0
	maxPkt := 0
	for i, a := range cfg.Apps {
		if a.Workers <= 0 {
			return nil, fmt.Errorf("runtime: app %q needs at least one worker", a.Name)
		}
		if a.Name == "" {
			return nil, fmt.Errorf("runtime: app %d has no name", i)
		}
		// A replica of a staged flow type occupies one worker per stage.
		total += a.Workers * cfg.Params.Stages(a.Type)
		if s := cfg.appPacketSize(a); s > maxPkt {
			maxPkt = s
		}
	}
	cores := cfg.Cores
	if len(cores) == 0 {
		cores = make([]int, total)
		for i := range cores {
			cores[i] = i
		}
	}
	if len(cores) != total {
		return nil, fmt.Errorf("runtime: %d cores listed for %d workers", len(cores), total)
	}
	seen := map[int]bool{}
	for _, c := range cores {
		if c < 0 || c >= cfg.Cfg.TotalCores() {
			return nil, fmt.Errorf("runtime: core %d outside the %d-core platform", c, cfg.Cfg.TotalCores())
		}
		if seen[c] {
			return nil, fmt.Errorf("runtime: core %d assigned twice", c)
		}
		seen[c] = true
	}

	r := &Runtime{
		cfg:        cfg,
		platform:   hw.NewPlatform(cfg.Cfg),
		stats:      &Stats{},
		curves:     map[apps.FlowType]core.Curve{},
		quantumSec: cfg.Cfg.CyclesToSeconds(cfg.QuantumCycles),
		predSum:    map[string]float64{},
		predCnt:    map[string]int{},
	}
	r.stats.setRetention(cfg.StatsRetention)
	r.platform.BoundChannelWaits(cfg.MaxQueueWait)
	for t, p := range cfg.Profiles {
		if len(p.Curve.Points) > 0 {
			r.curves[t] = p.Curve
		}
	}

	arenas := map[int]*mem.Arena{}
	arena := func(d int) *mem.Arena {
		if a, ok := arenas[d]; ok {
			return a
		}
		a := mem.NewArena(d)
		arenas[d] = a
		return a
	}

	// Workers: one per listed core, receive path NUMA-local.
	for i, coreID := range cores {
		sock := coreID / cfg.Cfg.CoresPerSocket
		w := &worker{
			id:     i,
			core:   r.platform.Cores[coreID],
			socket: sock,
			src:    newRingSource(arena(sock), cfg.Params.Buffers, maxPkt, 256, cfg.Params.RxBatch),
			batch:  cfg.Batch,
			startC: make(chan uint64),
			doneC:  make(chan struct{}),
		}
		r.workers = append(r.workers, w)
	}

	// Flow instances: replica k of an app starts on the next unbound
	// worker; each stage's state is allocated from a private NUMA domain
	// homed to that stage's worker's socket. Private domains (ids beyond
	// the socket count, homing via modulo — see hw.Platform.HomeSocket)
	// are what make state a placeable resource: a migration can re-home
	// one flow's tables without touching anything else in the domain.
	statePriv := 0
	stateArena := func(socket int) *mem.Arena {
		statePriv++
		a := mem.NewArena(cfg.Cfg.Sockets*statePriv + socket)
		// Page colouring: every fresh domain starts at the same low
		// address bits, so without an offset all flows' tables would
		// collide in the same cache sets — contention the shared-arena
		// layout (and any sane allocator) doesn't have. Staggering each
		// private arena by an odd page stride spreads the state across
		// the L3's sets like a sequentially filled shared arena does.
		a.Reserve(uint64(statePriv)*101*4096, 4096)
		return a
	}
	var states []*appState
	widx := 0
	for ai := range cfg.Apps {
		spec := cfg.Apps[ai]
		pktSize := cfg.appPacketSize(spec)
		st := &appState{
			spec:    spec,
			index:   ai,
			pktSize: pktSize,
			scratch: make([]byte, pktSize),
		}
		if rate, err := cfg.resolveRate(spec); err != nil {
			return nil, err
		} else {
			st.rate = rate
		}
		stages := cfg.Params.Stages(spec.Type)
		for k := 0; k < spec.Workers; k++ {
			w := r.workers[widx]
			stageArenas := make([]*mem.Arena, stages)
			for s := range stageArenas {
				stageArenas[s] = stateArena(r.workers[widx+s].socket)
			}
			f, err := r.buildFlow(st, k, stageArenas)
			if err != nil {
				return nil, err
			}
			st.flows = append(st.flows, f)
			r.flows = append(r.flows, f)
			if stages > 1 {
				// One replica of a staged flow spans the next `stages`
				// workers, stage order matching worker order.
				if f.pipe == nil || f.pipe.NumStages() != stages {
					return nil, fmt.Errorf("runtime: app %q: pipeline has %d stages, spec expects %d",
						spec.Name, f.pipe.NumStages(), stages)
				}
				if err := r.buildChain(f, widx, stages, arena); err != nil {
					return nil, err
				}
				widx += stages
			} else {
				w.bind(f)
				widx++
			}
		}
		if !spec.Type.Synthetic() {
			// The flow population scales with the replica count so that
			// RSS sharding delivers each replica roughly TrafficFlows
			// distinct flows — the workload the solo profile was
			// measured under. (With a fixed population, sharding would
			// shrink each core's working set and every replica would
			// beat its solo baseline.)
			genSpec := trafficgen.Spec{
				Seed:  core.SeedFor(spec.Type, 1000+ai),
				Size:  pktSize,
				Flows: cfg.Params.TrafficFlows * spec.Workers,
			}
			// The graph's own source was what generated traffic during
			// offline profiling; the ring-fed runtime must match it. Its
			// payload shaping (signature injection, entropy distribution)
			// carries over, and a packet-size disagreement is a
			// configuration error — the profile and the runtime would
			// silently measure different workloads.
			if src := st.flows[0].traffic; src != nil {
				if src.Size != pktSize {
					return nil, fmt.Errorf("runtime: app %q: graph source generates %d-byte packets but the flow's packet size is %d (set PACKET_SIZE to match the source's SIZE)",
						spec.Name, src.Size, pktSize)
				}
				genSpec.Signatures = src.Signatures
				genSpec.SigHit = src.SigHit
				genSpec.SigHitShift = src.SigHitShift
				genSpec.SigShiftAfter = src.SigShiftAfter
				genSpec.LowEntropy = src.LowEntropy
				genSpec.LowEntropyBits = src.LowEntropyBits
			}
			st.gen = trafficgen.New(genSpec)
		}
		states = append(states, st)
	}
	r.disp = &dispatcher{apps: states, quantumSec: r.quantumSec, quantumCycles: cfg.QuantumCycles}
	r.buildTracer()
	if cfg.Metrics != nil {
		r.obsm = newRtObs(cfg.Metrics, r)
	}
	return r, nil
}

// appPacketSize resolves an app's packet size from its spec or the
// workload parameters (which cover custom flow types too).
func (c Config) appPacketSize(a AppSpec) int {
	if a.PacketSize > 0 {
		return a.PacketSize
	}
	return c.Params.PacketSize(a.Type)
}

// FlowTypes returns the distinct flow types the configuration runs,
// sorted — the list offline profiling needs.
func (c Config) FlowTypes() []apps.FlowType {
	set := map[apps.FlowType]bool{}
	for _, a := range c.Apps {
		set[a.Type] = true
	}
	out := make([]apps.FlowType, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c Config) resolveRate(a AppSpec) (float64, error) {
	if a.RateFraction <= 0 {
		return a.Rate, nil
	}
	p, ok := c.Profiles[a.Type]
	if !ok || p.SoloPPS <= 0 {
		return 0, fmt.Errorf("runtime: app %q sets RateFraction but no %s solo profile is available", a.Name, a.Type)
	}
	return a.RateFraction * p.SoloPPS * float64(a.Workers), nil
}

// buildFlow constructs one replica with stage s's state allocated from
// arenas[s] (one private arena per stage, homed to the stage's worker's
// socket; unstaged flows use arenas[0] for everything).
func (r *Runtime) buildFlow(st *appState, replica int, arenas []*mem.Arena) (*flow, error) {
	spec := st.spec
	seed := core.SeedFor(spec.Type, st.index*64+replica)
	arenaAt := func(s int) *mem.Arena {
		if s < 0 {
			s = 0
		}
		if s >= len(arenas) {
			s = len(arenas) - 1
		}
		return arenas[s]
	}
	var inst *apps.Instance
	var err error
	switch {
	case spec.HiddenTrigger > 0:
		inst, err = r.cfg.Params.BuildHiddenAggressor(arenas[0], seed, spec.HiddenTrigger)
	case spec.Type == apps.SYN:
		inst = r.cfg.Params.BuildSyn(arenas[0], seed, spec.SynCompute)
	case spec.Type == apps.SYNMAX:
		inst = r.cfg.Params.BuildSyn(arenas[0], seed, 0)
	case spec.Control:
		inst, err = r.cfg.Params.BuildPlacedWithControl(spec.Type, arenaAt, seed)
	default:
		inst, err = r.cfg.Params.BuildPlaced(spec.Type, arenaAt, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("runtime: app %q replica %d: %w", spec.Name, replica, err)
	}
	f := &flow{
		id:         len(r.flows),
		app:        st,
		replica:    replica,
		pipe:       inst.Pipeline,
		control:    inst.Control,
		traffic:    inst.Traffic,
		state:      inst.StateBindings(-1),
		stateBytes: inst.StateBytes(-1),
		stateHome:  r.platform.DomainHome(arenas[0].Domain()),
	}
	if f.pipe != nil {
		f.ring = NewRing(r.cfg.RingSize, st.pktSize)
		// Per-element attribution slots: the graph is structurally final
		// here (control elements and aggressors are inserted by the
		// builders), so each node gets the table slot its ops will be
		// charged to. Slot 0 stays the overhead slot (source pull, ring
		// polls, recycling). Chains allocate per-stage tables instead
		// (buildChain); the cursor slices stay nil for them.
		nodes := f.pipe.Nodes()
		for i, n := range nodes {
			n.Elem = uint16(i + 1)
		}
		if r.cfg.Params.Stages(spec.Type) == 1 {
			f.elems = make([]hw.ElemCell, len(nodes)+1)
		}
	} else {
		f.raw = inst.Source
	}
	return f, nil
}

// Stats exposes the live telemetry aggregator.
func (r *Runtime) Stats() *Stats { return r.stats }

// Run executes the dataplane for the given measured virtual duration
// (plus the configured warmup) and reports.
func (r *Runtime) Run(duration float64) (*Report, error) {
	quanta := int(math.Ceil(duration / r.quantumSec))
	if quanta < 1 {
		quanta = 1
	}
	return r.run(func(done int, processed uint64) bool { return done >= quanta })
}

// RunPackets executes until at least count packets have been processed
// after warmup.
func (r *Runtime) RunPackets(count uint64) (*Report, error) {
	return r.run(func(done int, processed uint64) bool { return processed >= count })
}

func (r *Runtime) run(stop func(doneQuanta int, processed uint64) bool) (*Report, error) {
	if r.finished {
		return nil, fmt.Errorf("runtime: already ran; build a new Runtime")
	}
	r.finished = true
	for _, w := range r.workers {
		go w.loop()
	}
	defer func() {
		for _, w := range r.workers {
			close(w.startC)
		}
	}()

	warmQ := 0
	if r.cfg.Warmup > 0 {
		warmQ = int(math.Ceil(r.cfg.Warmup / r.quantumSec))
	}
	r.warmQ = warmQ
	sinceControl := 0
	measured := 0
	for q := 0; ; q++ {
		if q == warmQ {
			r.resetMeasurement()
			r.lastControlQ = q - 1
		}
		r.disp.enqueue(q)
		limit := uint64(q+1) * r.cfg.QuantumCycles
		// Rotate the release order so no worker systematically replays
		// first (on few host CPUs a quantum's workers run near
		// sequentially, and the first replayer sees the emptiest
		// channel queues).
		n := len(r.workers)
		for k := 0; k < n; k++ {
			r.workers[(q+k)%n].startC <- limit
		}
		for _, w := range r.workers {
			<-w.doneC
		}
		if q < warmQ {
			continue
		}
		measured++
		sinceControl++
		if sinceControl == r.cfg.ControlEvery {
			r.controlStep(q)
			sinceControl = 0
		}
		// Count packets entering flows, not per-worker executions: a
		// chain's stages each touch the same packet once.
		var processed uint64
		for _, f := range r.flows {
			processed += f.packets
		}
		if stop(measured, processed) {
			if sinceControl > 0 {
				r.controlStep(q)
			}
			return r.buildReport(measured), nil
		}
	}
}

// resetMeasurement zeroes every measurement baseline at the end of
// warmup; all workers are parked when it runs.
func (r *Runtime) resetMeasurement() {
	for _, w := range r.workers {
		w.prevCounters = w.core.Counters
		w.baseCounters = w.core.Counters
		w.prevClock = w.core.Clock()
		w.packets = 0
		w.bindPackets = 0
		w.bindClock = w.core.Clock()
		w.winBatchSum, w.winBatchCnt, w.winClipped = 0, 0, 0
		w.totBatchSum, w.totBatchCnt, w.totClipped = 0, 0, 0
	}
	for _, f := range r.flows {
		f.packets = 0
		f.prevPackets = 0
		f.prevElems = snapshotElems(f.elems, f.prevElems)
		f.baseElems = snapshotElems(f.elems, f.baseElems)
		f.prevLat, f.baseLat = f.lat, f.lat
		for _, u := range f.stages {
			u.prevElems = snapshotElems(u.elems, u.prevElems)
			u.baseElems = snapshotElems(u.elems, u.baseElems)
			u.prevLat, u.baseLat = u.lat, u.lat
		}
		if f.stages != nil {
			for _, u := range f.stages {
				u.runner.Reset()
			}
			// Packets already inside the chain's hand-off rings will reach
			// their terminal inside the window; credit them as entered so
			// the chain's conservation identity holds (the receive-ring
			// backlog gets the same treatment below).
			f.packets = f.inFlight()
		}
		if f.pipe != nil {
			f.baseReceived, f.baseDropped, f.baseFinished = f.pipe.Totals()
			nodes := f.pipe.Nodes()
			f.baseBranch = make([]branchCounters, len(nodes))
			for i, n := range nodes {
				f.baseBranch[i] = branchCounters{dropped: n.Dropped, finished: n.Finished}
			}
		}
	}
	for _, a := range r.disp.apps {
		a.resetAccounting()
		// Packets already sitting in rings at measurement start will be
		// processed inside the window; credit them as offered and
		// enqueued so the window's conservation and drop accounting hold.
		for _, f := range a.flows {
			if f.ring != nil {
				backlog := uint64(f.ring.Len())
				a.offered += backlog
				a.enqueued += backlog
			}
		}
	}
}

// snapshotElems copies cur into dst (reusing its storage when sized
// right), the control loop's cursor idiom for per-element cell tables.
func snapshotElems(cur, dst []hw.ElemCell) []hw.ElemCell {
	if cur == nil {
		return nil
	}
	if len(dst) != len(cur) {
		dst = make([]hw.ElemCell, len(cur))
	}
	copy(dst, cur)
	return dst
}

// controlStep is the operator's monitoring agent, run at a barrier: it
// derives per-core telemetry from counter deltas, applies admission
// control, and — when predicted drop crosses the threshold — re-places
// flows across sockets.
func (r *Runtime) controlStep(q int) {
	clockHz := r.cfg.Cfg.ClockHz
	// Time is virtual seconds since measurement start: warmup quanta are
	// excluded from the axis, so the first post-warmup window ends at
	// ControlEvery × quantum regardless of how long warmup ran.
	sample := ControlSample{Quantum: q, Time: float64(q+1-r.warmQ) * r.quantumSec}
	live := make([]core.LiveFlow, 0, len(r.workers))
	deltas := make([]hw.Counters, len(r.workers))
	for i, w := range r.workers {
		cur := w.core.Counters
		delta := cur.Sub(w.prevCounters)
		deltas[i] = delta
		elapsed := w.core.Clock() - w.prevClock
		w.prevCounters = cur
		w.prevClock = w.core.Clock()
		winSec := float64(elapsed) / clockHz

		tele := WorkerTelemetry{
			Worker: i, Core: w.core.ID, Socket: w.socket,
			BatchOccupancy: occupancy(w.winBatchSum, w.winBatchCnt, w.batch),
			ClippedBatches: w.winClipped,
		}
		w.winBatchSum, w.winBatchCnt, w.winClipped = 0, 0, 0
		if winSec > 0 {
			tele.PPS = float64(delta.Packets) / winSec
			tele.RefsPerSec = float64(delta.L3Refs) / winSec
			tele.HitsPerSec = float64(delta.L3Hits) / winSec
			tele.RemoteRefsPerSec = float64(delta.RemoteRefs) / winSec
		}
		tele.CyclesPerPacket = delta.PerPacket(delta.Cycles)
		tele.RemotePerPacket = delta.PerPacket(delta.RemoteRefs)
		w.lastRemotePerPkt = tele.RemotePerPacket
		w.lastWindowPackets = delta.Packets
		if f := w.fl; f != nil {
			tele.App = f.app.spec.Name
			tele.Type = f.app.spec.Type
			if u := w.unit; u != nil {
				// Per-stage telemetry: the worker's input is the previous
				// stage's hand-off ring (stage 0 keeps the receive ring).
				tele.Stage = u.stage
				tele.Stages = len(f.stages)
				if u.in != nil {
					tele.RingDepth = u.in.Len()
					tele.RingCap = u.in.Cap()
				} else if f.ring != nil {
					tele.RingDepth = f.ring.Len()
					tele.RingCap = f.ring.Cap()
				}
			} else if f.ring != nil {
				tele.RingDepth = f.ring.Len()
				tele.RingCap = f.ring.Cap()
			}
			if f.control != nil {
				tele.DelayCycles = f.control.Delay()
			}
			live = append(live, core.LiveFlow{
				Worker: i, Type: f.app.spec.Type, Socket: w.socket,
				RefsPerSec: tele.RefsPerSec,
				// Chain stages contend for their socket but migrate only
				// as a unit, which single-swap re-placement cannot do.
				Pinned: w.unit != nil,
			})
		}
		sample.Workers = append(sample.Workers, tele)
	}

	// Fill in the post-copy remote rates of migrations recorded at
	// earlier control steps, from the first post-swap window in which the
	// moved flow actually processed traffic (copy traffic is excluded —
	// swap re-baselined the window counters after the copy, and a long
	// copy can leave the destination core idle for several quanta, so a
	// zero-packet window stays pending rather than recording a phantom
	// rate). Migrations whose measurement never lands keep the NaN
	// sentinel: "unmeasured", not "local".
	pending := r.pendingPost[:0]
	for _, pp := range r.pendingPost {
		w := r.workers[pp.worker]
		if w.lastWindowPackets == 0 {
			pending = append(pending, pp)
			continue
		}
		m := &r.migrations[pp.mig]
		if pp.side == 0 {
			m.RemotePerPktAfterA = w.lastRemotePerPkt
		} else {
			m.RemotePerPktAfterB = w.lastRemotePerPkt
		}
	}
	r.pendingPost = pending

	// Predicted drop for the placement the window actually measured.
	drops := core.PredictLiveDrops(r.curves, live)
	for k, lf := range live {
		sample.Workers[lf.Worker].PredictedDrop = drops[k]
	}

	// Admission control: clamp flows to their profiled reference rate. A
	// chain is throttled as one unit: its stages' reference rates are
	// summed (the solo profile measured the whole graph) and the single
	// control element at stage 0 slows the whole chain down.
	if r.cfg.Admission {
		for i, w := range r.workers {
			f := w.fl
			if f == nil || f.control == nil {
				continue
			}
			if w.unit != nil && w.unit.stage != 0 {
				continue
			}
			prof, ok := r.cfg.Profiles[f.app.spec.Type]
			if !ok || prof.SoloRefsPerSec <= 0 {
				continue
			}
			rc := core.RateController{Limit: prof.SoloRefsPerSec, Slack: r.cfg.Slack}
			tele := &sample.Workers[i]
			refs := tele.RefsPerSec
			if w.unit != nil {
				for _, u := range f.stages {
					if u.workerIdx != i {
						refs += sample.Workers[u.workerIdx].RefsPerSec
					}
				}
			}
			next, throttled := rc.Step(refs, tele.CyclesPerPacket, f.control.Delay())
			f.control.SetDelay(next)
			tele.DelayCycles = next
			tele.Throttled = throttled
			if throttled {
				r.throttleEvents++
				if r.obsm != nil {
					r.obsm.throttles.Inc()
				}
			}
		}
	}

	// Live re-placement across sockets.
	if r.cfg.DropThreshold > 0 && len(r.curves) > 0 {
		if a, b, ok := core.PlanRebalance(r.curves, live, r.cfg.DropThreshold, r.cfg.RebalanceMargin); ok {
			worst := 0.0
			for _, d := range drops {
				if d > worst {
					worst = d
				}
			}
			r.swap(live[a].Worker, live[b].Worker, q, worst)
		}
	}

	r.stats.record(sample)

	// Whole-run prediction accumulators for the report, decoupled from the
	// Stats retention ring so a long run's averages cover every window.
	for _, t := range sample.Workers {
		if t.App != "" {
			r.predSum[t.App] += t.PredictedDrop
			r.predCnt[t.App]++
		}
	}

	// Observability: this window's residual series, per-element cost
	// attribution, latency/SLO evaluation, and metric publication all
	// consume the same deltas, then the window cursors roll forward.
	winSec := float64(q-r.lastControlQ) * r.quantumSec
	elems := r.windowElems()
	res := r.windowResiduals(q, sample.Time, winSec, sample, deltas, elems)
	r.publishWindow(sample, deltas)
	r.publishElems(elems)
	r.evalLatency()
	r.recordResiduals(res)
	r.rollWindowAccounting()
	r.lastControlQ = q
	if r.cfg.OnWindow != nil {
		r.cfg.OnWindow(sample, res)
	}
}

// swap exchanges the flows of two workers: live migration at a barrier.
// When Config.MigrateState admits a flow's footprint, its state moves
// with it (migrateState); otherwise the tables stay behind and the flow
// pays QPI from its new socket.
func (r *Runtime) swap(a, b, q int, worstBefore float64) {
	wa, wb := r.workers[a], r.workers[b]
	fa, fb := wa.fl, wb.fl
	m := Migration{
		Quantum: q, WorkerA: a, WorkerB: b,
		FlowA: flowName(fa), FlowB: flowName(fb),
		WorstBefore: worstBefore,
		// Both rate pairs use NaN for "unmeasured", never a phantom 0.00
		// ("fully local"): the before side when the preceding window
		// carried no traffic, the after side until the first post-swap
		// window with traffic measures it.
		RemotePerPktBeforeA: remRateOrNaN(wa),
		RemotePerPktBeforeB: remRateOrNaN(wb),
		RemotePerPktAfterA:  math.NaN(),
		RemotePerPktAfterB:  math.NaN(),
	}
	m.CopyA = r.migrateState(fa, wb)
	m.CopyB = r.migrateState(fb, wa)
	m.StateCopyCycles = m.CopyA.Cycles + m.CopyB.Cycles
	if m.StateCopyCycles > 0 {
		// Re-baseline the next control window past the copy: its remote
		// reads are one-off migration traffic, not the steady state the
		// post-copy telemetry is after. (Whole-run counters keep them.)
		for _, w := range [2]*worker{wa, wb} {
			w.prevCounters = w.core.Counters
			w.prevClock = w.core.Clock()
		}
	}
	wa.bind(fb)
	wb.bind(fa)
	r.migrations = append(r.migrations, m)
	if r.obsm != nil {
		r.obsm.migrations.Inc()
		r.obsm.copyCycles.Add(m.StateCopyCycles)
	}
	// A measurement still pending on either worker now belongs to a
	// superseded binding: drop it (its migration keeps the NaN sentinel)
	// before scheduling this swap's.
	kept := r.pendingPost[:0]
	for _, pp := range r.pendingPost {
		if pp.worker != a && pp.worker != b {
			kept = append(kept, pp)
		}
	}
	mi := len(r.migrations) - 1
	r.pendingPost = append(kept,
		pendingPost{mig: mi, side: 0, worker: b},
		pendingPost{mig: mi, side: 1, worker: a})
}

// remRateOrNaN returns the worker's last-window remote rate, or NaN when
// that window processed no packets and therefore measured nothing.
func remRateOrNaN(w *worker) float64 {
	if w.lastWindowPackets == 0 {
		return math.NaN()
	}
	return w.lastRemotePerPkt
}

// fnMigrate attributes state-copy traffic in per-function profiles.
var fnMigrate = hw.RegisterFunc("state_migration")

// migrateState copies f's state into dst's socket if the configured
// threshold admits it. The copy is charged on the destination core —
// the worker about to run the flow spends its cycles memcpy-ing — as a
// streamed remote read of every state line followed, once the flow's
// private domains are re-homed, by a local write of the same line: the
// read crosses the interconnect (RemoteRefs, QPIQueueCycles), the write
// re-establishes the line under the destination socket's controller.
// After the copy the flow's table references resolve locally again.
//
//dataplane:stamped migration copy ops are control-plane cost attributed to fnMigrate, not to any element slot
func (r *Runtime) migrateState(f *flow, dst *worker) StateCopy {
	if f == nil || r.cfg.MigrateState == 0 || f.stateBytes == 0 ||
		f.stateBytes > r.cfg.MigrateState || f.stateHome == dst.socket {
		return StateCopy{}
	}
	start := dst.core.Clock()
	var ops []hw.Op
	var domains []int
	lines := 0
	for _, b := range f.state {
		if b.Size == 0 {
			continue
		}
		if n := len(domains); n == 0 || domains[n-1] != b.Domain() {
			domains = append(domains, b.Domain())
		}
		last := hw.LineOf(b.Base + hw.Addr(b.Size) - 1)
		for line := hw.LineOf(b.Base); line <= last; line += hw.LineSize {
			// memcpy order, line by line: the read streams across the
			// interconnect (independent address stream, so OpLoadStream
			// overlaps like any copy loop), the write lands in the line
			// just brought into the destination's cache and drains to the
			// local controller as a write-back once the domain re-homes.
			ops = append(ops,
				hw.Op{Kind: hw.OpLoadStream, Addr: line, Func: fnMigrate},
				hw.Op{Kind: hw.OpStore, Addr: line, Func: fnMigrate})
			lines++
		}
	}
	dst.core.ExecStall(ops)
	for _, d := range domains {
		r.platform.SetDomainHome(d, dst.socket)
	}
	f.stateHome = dst.socket
	return StateCopy{
		Copied: true,
		Bytes:  f.stateBytes,
		Lines:  lines,
		Cycles: dst.core.Clock() - start,
	}
}

func flowName(f *flow) string {
	if f == nil {
		return "-"
	}
	return fmt.Sprintf("%s/%d", f.app.spec.Name, f.replica)
}

func (r *Runtime) buildReport(measQ int) *Report {
	duration := float64(measQ) * r.quantumSec
	rep := &Report{
		Scenario:       r.cfg.Scenario,
		Duration:       duration,
		Quanta:         measQ,
		Migrations:     r.migrations,
		ThrottleEvents: r.throttleEvents,
	}

	for i, w := range r.workers {
		delta := w.core.Counters.Sub(w.baseCounters)
		// Packets and PPS are attributed to the final binding only: the
		// per-binding baseline snapshot taken at swap time keeps packets a
		// previous flow processed on this core out of the current app's
		// numbers. Counter-derived rates (refs/sec) stay per-core — they
		// are what a hardware counter would report for the whole window.
		bound := w.packets - w.bindPackets
		boundSec := r.cfg.Cfg.CyclesToSeconds(w.core.Clock() - w.bindClock)
		wr := WorkerReport{
			Worker: i, Core: w.core.ID, Socket: w.socket,
			Packets:         bound,
			TotalPackets:    w.packets,
			RefsPerSec:      float64(delta.L3Refs) / duration,
			RemotePerPacket: delta.PerPacket(delta.RemoteRefs),
			BatchOccupancy:  occupancy(w.totBatchSum, w.totBatchCnt, w.batch),
			ClippedBatches:  w.totClipped,
			StateSocket:     -1,
		}
		if boundSec > 0 {
			wr.PPS = float64(bound) / boundSec
		}
		if f := w.fl; f != nil {
			wr.App = f.app.spec.Name
			wr.Type = f.app.spec.Type
			if u := w.unit; u != nil {
				wr.Stage = u.stage
				wr.Stages = len(f.stages)
				wr.StateBytes, wr.StateSocket = f.stageState(u.stage, r.platform)
			} else {
				wr.StateBytes = f.stateBytes
				if f.stateBytes > 0 {
					wr.StateSocket = f.stateHome
				}
			}
			if f.control != nil {
				wr.DelayCycles = f.control.Delay()
			}
		}
		rep.Workers = append(rep.Workers, wr)
	}

	// Per-app prediction averages from the running accumulators: every
	// control window since measurement start contributes, regardless of
	// how many samples the Stats retention ring still holds.
	predSum, predCnt := r.predSum, r.predCnt
	rep.Residuals = r.Residuals()

	for _, a := range r.disp.apps {
		stages := 1
		if len(a.flows) > 0 && a.flows[0].stages != nil {
			stages = len(a.flows[0].stages)
		}
		ar := AppReport{
			Name: a.spec.Name, Type: a.spec.Type,
			Workers: len(a.flows) * stages, Stages: stages,
			Offered: a.offered, Enqueued: a.enqueued, NICDrops: a.nicDrops,
		}
		branchIdx := map[string]int{}
		for _, f := range a.flows {
			_, dropped, finished := f.totals()
			ar.Processed += f.packets
			ar.PipeDropped += dropped
			ar.Finished += finished
			ar.InFlight += f.inFlight()
			for _, u := range f.stages {
				ar.CutDropped += u.runner.CutDropped
			}
			// Per-branch terminal counters, aggregated across replicas by
			// node name (replicas share the graph shape).
			if f.pipe != nil && f.pipe.Branching() {
				for i, bc := range f.branchTotals() {
					name := f.pipe.Nodes()[i].Name
					j, ok := branchIdx[name]
					if !ok {
						j = len(ar.Branches)
						branchIdx[name] = j
						ar.Branches = append(ar.Branches, BranchReport{Node: name})
					}
					ar.Branches[j].Dropped += bc.dropped
					ar.Branches[j].Finished += bc.finished
				}
			}
		}
		ar.ObservedPPS = float64(ar.Processed) / duration
		ar.GoodputPPS = float64(ar.Finished) / duration
		ar.PerWorkerPPS = ar.ObservedPPS / float64(ar.Workers)
		if a.offered > 0 {
			ar.LossRate = float64(a.nicDrops) / float64(a.offered)
		}
		if p, ok := r.cfg.Profiles[a.spec.Type]; ok && p.SoloPPS > 0 {
			ar.SoloPPS = p.SoloPPS
			expected := p.SoloPPS
			if a.rate > 0 {
				// Offered load is sharded across replicas (a chain replica
				// is one RSS target no matter how many workers it spans).
				offPPS := float64(a.offered) / duration / float64(len(a.flows))
				if offPPS < expected {
					expected = offPPS
				}
			}
			if expected > 0 {
				// The drop comparison is per replica — the deployment unit
				// the solo profile describes (the whole graph
				// run-to-completion on one core). For unstaged apps that
				// is per worker; for a chain it asks Section 2.2's
				// question directly: what did cutting the graph cost (or
				// buy) against running the replica unsplit, so pipelining
				// overhead shows as negative headroom only when the chain
				// actually underperforms one core, not as phantom
				// contention drop.
				perReplica := ar.ObservedPPS / float64(len(a.flows))
				ar.ObservedDrop = 1 - perReplica/expected
			}
		}
		if n := predCnt[a.spec.Name]; n > 0 {
			ar.PredictedDrop = predSum[a.spec.Name] / float64(n)
		}
		// Whole-window latency percentiles from the group's merged
		// log-bucket histogram, and the SLO outcome the control loop
		// accumulated window by window.
		var hist obs.LatHist
		for _, f := range a.flows {
			fd := f.lat.Sub(&f.baseLat)
			hist.Merge(&fd)
			for _, u := range f.stages {
				ud := u.lat.Sub(&u.baseLat)
				hist.Merge(&ud)
			}
		}
		if hist.Count() > 0 {
			toUS := 1e6 / r.cfg.Cfg.ClockHz
			ar.LatCount = hist.Count()
			ar.LatP50US = hist.Quantile(0.50) * toUS
			ar.LatP99US = hist.Quantile(0.99) * toUS
			ar.LatP999US = hist.Quantile(0.999) * toUS
		}
		ar.SLOP99US = a.spec.SLOP99US
		ar.SLOBreaches = a.sloBreaches
		ar.SLOBurnRate = a.lastBurn
		rep.Apps = append(rep.Apps, ar)
	}
	return rep
}
