package runtime

import (
	"fmt"
	"strings"
	"sync"

	"pktpredict/internal/apps"
)

// WorkerTelemetry is one worker's live measurements over the last control
// window: the per-core counters an operator's monitoring agent would read
// from hardware counters, plus queue state only the dataplane knows.
type WorkerTelemetry struct {
	Worker int
	Core   int
	Socket int
	App    string
	Type   apps.FlowType

	PPS             float64 // packets processed per virtual second
	RefsPerSec      float64 // L3 references per virtual second (the aggressiveness proxy)
	HitsPerSec      float64 // L3 hits per virtual second (the sensitivity proxy)
	CyclesPerPacket float64
	BatchOccupancy  float64 // mean batch fill fraction [0,1]
	RingDepth       int     // input-ring occupancy at sample time
	RingCap         int
	DelayCycles     uint32 // admission-control delay currently applied
	Throttled       bool   // admission control tightened the delay this window
	PredictedDrop   float64
}

// ControlSample is one control interval's full telemetry snapshot.
type ControlSample struct {
	Quantum int     // quantum index at which the sample was taken
	Time    float64 // virtual seconds since measurement start
	Workers []WorkerTelemetry
}

// Stats aggregates per-core telemetry across control intervals. The
// runtime's control loop records into it at barrier points; any goroutine
// may concurrently read the latest snapshot, which is how a CLI progress
// display or an external scraper observes a live dataplane.
type Stats struct {
	mu      sync.Mutex
	samples []ControlSample
}

func (s *Stats) record(cs ControlSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, cs)
}

// Latest returns the most recent control sample (zero value when none).
func (s *Stats) Latest() ControlSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return ControlSample{}
	}
	return s.samples[len(s.samples)-1]
}

// Samples returns a copy of all recorded control samples.
func (s *Stats) Samples() []ControlSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ControlSample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Migration records one live re-placement: two workers exchanged their
// flows across sockets because the predicted drop exceeded the threshold.
type Migration struct {
	Quantum     int
	WorkerA     int
	WorkerB     int
	FlowA       string
	FlowB       string
	WorstBefore float64 // worst predicted drop before the swap
}

// WorkerReport summarises one worker over the whole measurement window,
// under its final flow binding.
type WorkerReport struct {
	Worker int
	Core   int
	Socket int
	App    string
	Type   apps.FlowType

	Packets        uint64
	PPS            float64
	RefsPerSec     float64
	BatchOccupancy float64
	DelayCycles    uint32
}

// AppReport summarises one flow group over the measurement window and
// holds the scenario's headline comparison: observed throughput drop
// against the drop the paper's method predicts from the live telemetry.
type AppReport struct {
	Name    string
	Type    apps.FlowType
	Workers int

	Offered  uint64 // packets the traffic source generated
	Enqueued uint64 // packets accepted into input rings
	NICDrops uint64 // packets tail-dropped at full rings

	Processed   uint64 // packets fully executed by workers
	PipeDropped uint64 // packets dropped inside the pipeline (firewall etc.)
	Finished    uint64 // packets that completed the pipeline

	ObservedPPS  float64 // aggregate processed/sec across the group's workers
	PerWorkerPPS float64
	SoloPPS      float64 // offline solo baseline per worker (0 when unprofiled)

	ObservedDrop  float64 // 1 − PerWorkerPPS/expected (expected caps at offered rate)
	PredictedDrop float64 // time-averaged per-worker curve prediction
	LossRate      float64 // NICDrops/Offered

	// Branches holds per-node terminal counters for branching pipelines
	// (empty for linear chains): where the group's packets ended their
	// walk, aggregated across replicas in graph order.
	Branches []BranchReport
}

// BranchReport is one graph node's terminal accounting over the window.
type BranchReport struct {
	Node     string
	Dropped  uint64
	Finished uint64
}

// PredictionError returns observed minus predicted drop, the paper's
// accuracy metric, meaningful only when a solo profile was supplied.
func (a AppReport) PredictionError() float64 {
	if a.SoloPPS == 0 {
		return 0
	}
	return a.ObservedDrop - a.PredictedDrop
}

// Report is the outcome of one runtime execution.
type Report struct {
	Scenario string
	Duration float64 // measured virtual seconds (warmup excluded)
	Quanta   int
	Workers  []WorkerReport
	Apps     []AppReport

	Migrations     []Migration
	ThrottleEvents int // control windows in which admission tightened a delay
}

// TotalProcessed sums processed packets across all flow groups.
func (r *Report) TotalProcessed() uint64 {
	var n uint64
	for _, a := range r.Apps {
		n += a.Processed
	}
	return n
}

// String renders the report as aligned text tables.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d workers, %.1f ms virtual, %d quanta, %d migrations, %d throttle events\n",
		r.Scenario, len(r.Workers), r.Duration*1e3, r.Quanta, len(r.Migrations), r.ThrottleEvents)

	fmt.Fprintf(&b, "\n%-3s %-4s %-6s %-10s %-8s %12s %12s %8s %8s\n",
		"wkr", "core", "socket", "app", "type", "pkts", "pps", "occ", "delay")
	for _, w := range r.Workers {
		fmt.Fprintf(&b, "%-3d %-4d %-6d %-10s %-8s %12d %12.0f %8.2f %8d\n",
			w.Worker, w.Core, w.Socket, w.App, w.Type, w.Packets, w.PPS,
			w.BatchOccupancy, w.DelayCycles)
	}

	fmt.Fprintf(&b, "\n%-10s %-8s %3s %12s %10s %12s %10s %10s %10s %10s\n",
		"app", "type", "n", "processed", "nicdrop", "pps/worker", "solo", "obs_drop", "pred_drop", "err")
	for _, a := range r.Apps {
		obs, pred, errs := "-", "-", "-"
		if a.SoloPPS > 0 {
			obs = fmt.Sprintf("%.1f%%", a.ObservedDrop*100)
			pred = fmt.Sprintf("%.1f%%", a.PredictedDrop*100)
			errs = fmt.Sprintf("%+.1f%%", a.PredictionError()*100)
		}
		fmt.Fprintf(&b, "%-10s %-8s %3d %12d %10d %12.0f %10.0f %10s %10s %10s\n",
			a.Name, a.Type, a.Workers, a.Processed, a.NICDrops,
			a.PerWorkerPPS, a.SoloPPS, obs, pred, errs)
	}

	for _, a := range r.Apps {
		if len(a.Branches) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s branches:", a.Name)
		for _, br := range a.Branches {
			if br.Dropped == 0 && br.Finished == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n  %-16s finished %10d  dropped %10d", br.Node, br.Finished, br.Dropped)
		}
		b.WriteString("\n")
	}

	for _, m := range r.Migrations {
		fmt.Fprintf(&b, "\nmigration @q%d: worker %d (%s) <-> worker %d (%s), worst predicted drop was %.1f%%",
			m.Quantum, m.WorkerA, m.FlowA, m.WorkerB, m.FlowB, m.WorstBefore*100)
	}
	if len(r.Migrations) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}
