package runtime

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"pktpredict/internal/apps"
	"pktpredict/internal/obs"
)

// WorkerTelemetry is one worker's live measurements over the last control
// window: the per-core counters an operator's monitoring agent would read
// from hardware counters, plus queue state only the dataplane knows.
type WorkerTelemetry struct {
	Worker int
	Core   int
	Socket int
	App    string
	Type   apps.FlowType

	// Stage/Stages identify the worker's slice of a cross-worker service
	// chain (0/0 for run-to-completion flows). For a later stage,
	// RingDepth/RingCap describe its hand-off ring, not the receive ring.
	Stage  int
	Stages int

	PPS              float64 // packets processed per virtual second
	RefsPerSec       float64 // L3 references per virtual second (the aggressiveness proxy)
	HitsPerSec       float64 // L3 hits per virtual second (the sensitivity proxy)
	RemoteRefsPerSec float64 // L3 misses served by a remote NUMA domain, per second
	RemotePerPacket  float64 // remote references per processed packet (the locality signal)
	CyclesPerPacket  float64
	BatchOccupancy   float64 // mean batch fill fraction [0,1]
	ClippedBatches   uint64  // batch polls cut short by the quantum boundary, excluded from occupancy
	RingDepth        int     // input-ring occupancy at sample time
	RingCap          int
	DelayCycles      uint32 // admission-control delay currently applied
	Throttled        bool   // admission control tightened the delay this window
	PredictedDrop    float64
}

// ControlSample is one control interval's full telemetry snapshot.
type ControlSample struct {
	Quantum int     // quantum index at which the sample was taken
	Time    float64 // virtual seconds since measurement start
	Workers []WorkerTelemetry
}

// DefaultStatsRetention is how many control samples Stats keeps when no
// retention was configured: enough for any interactive run's full
// telemetry at the default control period, while bounding a long-lived
// dataplane's memory (the previous unbounded append leaked on long
// runs). Whole-run aggregates (prediction averages, residual series) do
// not depend on the retained window.
const DefaultStatsRetention = 1024

// Stats aggregates per-core telemetry across control intervals, keeping
// the most recent samples in a fixed-size ring. The runtime's control
// loop records into it at barrier points; any goroutine may concurrently
// read the latest snapshot, which is how a CLI progress display or an
// external scraper observes a live dataplane.
type Stats struct {
	mu      sync.Mutex
	retain  int             // ring capacity; 0 means DefaultStatsRetention
	samples []ControlSample // ring storage, at most retain entries
	head    int             // index of the oldest sample once the ring wrapped
	total   int             // samples recorded since construction
}

// setRetention fixes the ring capacity; it must run before any record.
func (s *Stats) setRetention(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retain = n
}

func (s *Stats) record(cs ControlSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	retain := s.retain
	if retain <= 0 {
		retain = DefaultStatsRetention
	}
	s.total++
	if len(s.samples) < retain {
		s.samples = append(s.samples, cs)
		return
	}
	s.samples[s.head] = cs
	s.head = (s.head + 1) % len(s.samples)
}

// Latest returns the most recent control sample (zero value when none).
func (s *Stats) Latest() ControlSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return ControlSample{}
	}
	return s.samples[(s.head+len(s.samples)-1)%len(s.samples)]
}

// Samples returns a copy of the retained control samples, oldest first.
// A run longer than the retention window keeps only the tail; Total
// reports how many samples were recorded overall.
func (s *Stats) Samples() []ControlSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ControlSample, 0, len(s.samples))
	for i := 0; i < len(s.samples); i++ {
		out = append(out, s.samples[(s.head+i)%len(s.samples)])
	}
	return out
}

// Total returns how many control samples have been recorded since the
// start, including any the retention ring has already evicted.
func (s *Stats) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Migration records one live re-placement: two workers exchanged their
// flows across sockets because the predicted drop exceeded the threshold.
type Migration struct {
	Quantum     int
	WorkerA     int
	WorkerB     int
	FlowA       string
	FlowB       string
	WorstBefore float64 // worst predicted drop before the swap

	// State movement. CopyA describes FlowA's tables moving to WorkerB's
	// socket, CopyB the reverse; both are zero-valued when
	// Config.MigrateState left the state behind (disabled, footprint
	// above the threshold, or already local). StateCopyCycles totals both
	// copies' downtime on the destination cores.
	StateCopyCycles uint64
	CopyA, CopyB    StateCopy

	// Remote references per packet for each moved flow over the control
	// window preceding the swap (on its old worker) and the first full
	// window after it (on its new worker) — the pre- versus post-copy
	// locality evidence: with a state copy the "after" rate returns to
	// the local baseline, without one it jumps to roughly the flow's
	// table references per packet. A rate is NaN while unmeasured: the
	// Before fields when the preceding window carried no traffic, the
	// After fields until a post-swap window with traffic lands (a run
	// may end first).
	RemotePerPktBeforeA, RemotePerPktAfterA float64
	RemotePerPktBeforeB, RemotePerPktAfterB float64
}

// StateCopy describes one direction of a migration's state movement.
type StateCopy struct {
	Copied bool
	Bytes  uint64 // live state footprint moved
	Lines  int    // cache lines streamed across the interconnect
	Cycles uint64 // copy downtime charged to the destination core
}

// WorkerReport summarises one worker over the whole measurement window.
// Packets and PPS cover only the final flow binding (baselines snapshot
// at migration time keep another app's work out of them); TotalPackets
// counts everything the core executed in the window, and RefsPerSec is
// likewise whole-window — it is what the core's hardware counter saw.
type WorkerReport struct {
	Worker int
	Core   int
	Socket int
	App    string
	Type   apps.FlowType
	Stage  int // stage index within a chain (0 otherwise)
	Stages int // chain length (0 for run-to-completion flows)

	Packets         uint64 // packets processed under the final binding
	TotalPackets    uint64 // packets processed across all bindings
	PPS             float64
	RefsPerSec      float64
	RemotePerPacket float64 // whole-window remote references per packet
	BatchOccupancy  float64
	ClippedBatches  uint64 // batch polls cut short by the quantum boundary, excluded from occupancy
	DelayCycles     uint32

	// StateBytes is the bound flow's (or chain stage's) live state
	// footprint; StateSocket is the socket currently homing it, -1 when
	// the worker holds no flow or the flow allocated no state. A
	// StateSocket differing from Socket means every table reference
	// crosses the interconnect — the situation state migration exists to
	// repair.
	StateBytes  uint64
	StateSocket int
}

// AppReport summarises one flow group over the measurement window and
// holds the scenario's headline comparison: observed throughput drop
// against the drop the paper's method predicts from the live telemetry.
type AppReport struct {
	Name    string
	Type    apps.FlowType
	Workers int // workers the group occupies (replicas × stages)
	Stages  int // 1 for run-to-completion flows

	Offered  uint64 // packets the traffic source generated
	Enqueued uint64 // packets accepted into input rings
	NICDrops uint64 // packets tail-dropped at full rings

	Processed   uint64 // packets that entered a worker's pipeline
	PipeDropped uint64 // packets dropped inside the pipeline (firewall etc.)
	Finished    uint64 // packets that completed the pipeline
	InFlight    uint64 // packets still inside chain hand-off rings at window end
	// CutDropped counts packet *branches* lost at a stage cut: a chain
	// hands each packet across a cut at most once, so a Tee broadcasting
	// several branches over the same cut loses the extras. Non-zero means
	// the graph's cut placement discards traffic the run-to-completion
	// deployment would deliver — a configuration smell worth surfacing.
	CutDropped uint64

	ObservedPPS  float64 // aggregate processed/sec across the group's workers
	GoodputPPS   float64 // aggregate finished/sec — useful throughput, drops excluded
	PerWorkerPPS float64 // processed/sec per occupied core (a chain divides by its stages too)
	SoloPPS      float64 // offline solo baseline per worker (0 when unprofiled)

	ObservedDrop  float64 // 1 − PerWorkerPPS/expected (expected caps at offered rate)
	PredictedDrop float64 // time-averaged per-worker curve prediction
	LossRate      float64 // NICDrops/Offered

	// End-to-end latency over the measurement window: ring-enqueue to
	// walk-termination, in virtual microseconds, estimated from the
	// group's merged log-bucket histogram (zero when no packet went
	// through a ring — synthetic self-driving flows have no enqueue
	// side). LatCount is the number of recorded latencies.
	LatCount  uint64
	LatP50US  float64
	LatP99US  float64
	LatP999US float64

	// Latency-SLO outcome: SLOP99US echoes the declared target (0 when
	// none), SLOBreaches counts control windows whose window p99 exceeded
	// it, and SLOBurnRate is the last window's burn rate — the fraction
	// of window packets over the target relative to the 1% budget a p99
	// target implies (1.0 = burning exactly the budget).
	SLOP99US    float64
	SLOBreaches int
	SLOBurnRate float64

	// Branches holds per-node terminal counters for branching pipelines
	// (empty for linear chains): where the group's packets ended their
	// walk, aggregated across replicas in graph order.
	Branches []BranchReport
}

// BranchReport is one graph node's terminal accounting over the window.
type BranchReport struct {
	Node     string
	Dropped  uint64
	Finished uint64
}

// PredictionError returns observed minus predicted drop, the paper's
// accuracy metric, meaningful only when a solo profile was supplied.
func (a AppReport) PredictionError() float64 {
	if a.SoloPPS == 0 {
		return 0
	}
	return a.ObservedDrop - a.PredictedDrop
}

// CheckConservation verifies the group's packet-accounting identities:
// every offered packet was either enqueued or tail-dropped, and every
// processed packet reached exactly one terminal (finished or dropped in
// the pipeline) unless it is still crossing a chain's hand-off ring.
// Telemetry that fails these identities is miscounting somewhere.
func (a AppReport) CheckConservation() error {
	if a.Offered != a.Enqueued+a.NICDrops {
		return fmt.Errorf("app %s: offered %d != enqueued %d + nic drops %d",
			a.Name, a.Offered, a.Enqueued, a.NICDrops)
	}
	if a.Processed != a.Finished+a.PipeDropped+a.InFlight {
		return fmt.Errorf("app %s: processed %d != finished %d + pipe-dropped %d + in-flight %d",
			a.Name, a.Processed, a.Finished, a.PipeDropped, a.InFlight)
	}
	return nil
}

// Report is the outcome of one runtime execution.
type Report struct {
	Scenario string
	Duration float64 // measured virtual seconds (warmup excluded)
	Quanta   int
	Workers  []WorkerReport
	Apps     []AppReport

	Migrations     []Migration
	ThrottleEvents int // control windows in which admission tightened a delay

	// Residuals is the retained per-window prediction-residual series
	// (oldest first): each profiled app's observed versus predicted drop
	// with a diagnosed cause. Bounded by Config.StatsRetention per app.
	Residuals []obs.Residual
}

// fmtRemRate renders a migration-window remote rate, NaN as unmeasured.
func fmtRemRate(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// TotalProcessed sums processed packets across all flow groups.
func (r *Report) TotalProcessed() uint64 {
	var n uint64
	for _, a := range r.Apps {
		n += a.Processed
	}
	return n
}

// String renders the report as aligned text tables.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d workers, %.1f ms virtual, %d quanta, %d migrations, %d throttle events\n",
		r.Scenario, len(r.Workers), r.Duration*1e3, r.Quanta, len(r.Migrations), r.ThrottleEvents)

	fmt.Fprintf(&b, "\n%-3s %-4s %-6s %-10s %-8s %-5s %12s %12s %8s %8s %8s %9s\n",
		"wkr", "core", "socket", "app", "type", "stage", "pkts", "pps", "occ", "delay", "rem/pkt", "state")
	for _, w := range r.Workers {
		stage := "-"
		if w.Stages > 1 {
			stage = fmt.Sprintf("%d/%d", w.Stage, w.Stages)
		}
		state := "-"
		if w.StateSocket >= 0 {
			state = fmt.Sprintf("%dB@s%d", w.StateBytes, w.StateSocket)
			if w.StateSocket != w.Socket {
				state += "!" // state remote to the executing socket
			}
		}
		fmt.Fprintf(&b, "%-3d %-4d %-6d %-10s %-8s %-5s %12d %12.0f %8.2f %8d %8.2f %9s\n",
			w.Worker, w.Core, w.Socket, w.App, w.Type, stage, w.Packets, w.PPS,
			w.BatchOccupancy, w.DelayCycles, w.RemotePerPacket, state)
	}

	fmt.Fprintf(&b, "\n%-10s %-8s %3s %12s %12s %10s %12s %10s %10s %10s %10s\n",
		"app", "type", "n", "processed", "finished", "nicdrop", "pps/worker", "solo", "obs_drop", "pred_drop", "err")
	for _, a := range r.Apps {
		obs, pred, errs := "-", "-", "-"
		if a.SoloPPS > 0 {
			obs = fmt.Sprintf("%.1f%%", a.ObservedDrop*100)
			pred = fmt.Sprintf("%.1f%%", a.PredictedDrop*100)
			errs = fmt.Sprintf("%+.1f%%", a.PredictionError()*100)
		}
		fmt.Fprintf(&b, "%-10s %-8s %3d %12d %12d %10d %12.0f %10.0f %10s %10s %10s\n",
			a.Name, a.Type, a.Workers, a.Processed, a.Finished, a.NICDrops,
			a.PerWorkerPPS, a.SoloPPS, obs, pred, errs)
	}

	anyLat := false
	for _, a := range r.Apps {
		if a.LatCount > 0 {
			anyLat = true
			break
		}
	}
	if anyLat {
		fmt.Fprintf(&b, "\n%-10s %12s %10s %10s %10s %10s %9s %6s\n",
			"app", "lat_count", "p50_us", "p99_us", "p999_us", "slo_p99", "breaches", "burn")
		for _, a := range r.Apps {
			if a.LatCount == 0 {
				continue
			}
			slo, breaches, burn := "-", "-", "-"
			if a.SLOP99US > 0 {
				slo = fmt.Sprintf("%.1fus", a.SLOP99US)
				breaches = fmt.Sprint(a.SLOBreaches)
				burn = fmt.Sprintf("%.2f", a.SLOBurnRate)
			}
			fmt.Fprintf(&b, "%-10s %12d %10.1f %10.1f %10.1f %10s %9s %6s\n",
				a.Name, a.LatCount, a.LatP50US, a.LatP99US, a.LatP999US, slo, breaches, burn)
		}
	}

	for _, a := range r.Apps {
		if a.CutDropped > 0 {
			fmt.Fprintf(&b, "\n%s: %d packet branches lost at stage cuts (a cut hands each packet over once; re-cut the graph so broadcasts stay within a stage)\n",
				a.Name, a.CutDropped)
		}
	}

	for _, a := range r.Apps {
		if len(a.Branches) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s branches:", a.Name)
		for _, br := range a.Branches {
			if br.Dropped == 0 && br.Finished == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n  %-16s finished %10d  dropped %10d", br.Node, br.Finished, br.Dropped)
		}
		b.WriteString("\n")
	}

	for _, m := range r.Migrations {
		fmt.Fprintf(&b, "\nmigration @q%d: worker %d (%s) <-> worker %d (%s), worst predicted drop was %.1f%%",
			m.Quantum, m.WorkerA, m.FlowA, m.WorkerB, m.FlowB, m.WorstBefore*100)
		if m.StateCopyCycles > 0 {
			fmt.Fprintf(&b, "\n  state copy: %d B (%d lines) in %d cycles",
				m.CopyA.Bytes+m.CopyB.Bytes, m.CopyA.Lines+m.CopyB.Lines, m.StateCopyCycles)
		}
		fmt.Fprintf(&b, "\n  remote refs/pkt: %s %s -> %s, %s %s -> %s",
			m.FlowA, fmtRemRate(m.RemotePerPktBeforeA), fmtRemRate(m.RemotePerPktAfterA),
			m.FlowB, fmtRemRate(m.RemotePerPktBeforeB), fmtRemRate(m.RemotePerPktAfterB))
	}
	if len(r.Migrations) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}
