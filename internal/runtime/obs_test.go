package runtime

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/obs"
)

func TestStatsRetention(t *testing.T) {
	s := &Stats{}
	s.setRetention(4)
	for q := 0; q < 10; q++ {
		s.record(ControlSample{Quantum: q})
	}
	if s.Total() != 10 {
		t.Fatalf("total = %d, want 10", s.Total())
	}
	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	for i, cs := range got {
		if cs.Quantum != 6+i {
			t.Fatalf("sample %d is quantum %d, want %d (oldest-first tail)", i, cs.Quantum, 6+i)
		}
	}
	if s.Latest().Quantum != 9 {
		t.Fatalf("latest = %d, want 9", s.Latest().Quantum)
	}
}

// TestRuntimeMetricsScrapeMidRun scrapes the exposition endpoint while
// the dataplane is running (workers mid-quantum) and checks the page
// carries the runtime's families. Run under -race this also proves the
// hot-path publication and the snapshot reader do not race.
func TestRuntimeMetricsScrapeMidRun(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig([]AppSpec{
		{Name: "ipfwd", Type: apps.IP, Workers: 2},
		{Name: "mon", Type: apps.MON, Workers: 1},
	})
	cfg.Metrics = reg
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()

	scrape := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("scrape %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return body
	}

	done := make(chan *Report, 1)
	go func() {
		rep, err := r.Run(0.004)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	// Scrape continuously until the run finishes: most scrapes land while
	// workers are actively publishing.
	var last []byte
	var rep *Report
	for rep == nil {
		select {
		case rep = <-done:
		default:
			last = scrape("/metrics")
		}
	}
	if rep == nil {
		t.Fatal("run produced no report")
	}
	checkConservation(t, rep)
	if len(last) == 0 {
		t.Fatal("no scrape completed during the run")
	}

	final := string(scrape("/metrics"))
	for _, want := range []string{
		"# TYPE dataplane_worker_packets_total counter",
		"# TYPE dataplane_worker_batch_fill histogram",
		"# TYPE dataplane_worker_pps gauge",
		`dataplane_worker_packets_total{worker="0"}`,
		`dataplane_worker_hw_total{worker="0",counter="l3_refs"}`,
		`dataplane_app_offered_total{app="ipfwd"}`,
		`dataplane_worker_app{worker="2",app="mon",stage="0"} 1`,
		"# TYPE dataplane_element_cycles_total counter",
		"# TYPE dataplane_element_l3_refs_total counter",
		"# TYPE dataplane_element_cycles_per_packet gauge",
		`element="overhead"`,
		`dataplane_app_latency_cycles{app="ipfwd",quantile="0.99"}`,
		"# TYPE dataplane_app_drift_ratio gauge",
	} {
		if !strings.Contains(final, want) {
			t.Fatalf("final scrape missing %q:\n%s", want, final)
		}
	}

	// JSON endpoint agrees and is valid.
	var snap obs.Snapshot
	if err := json.Unmarshal(scrape("/metrics.json"), &snap); err != nil {
		t.Fatalf("metrics.json did not parse: %v", err)
	}
	var packets float64
	for _, f := range snap.Families {
		if f.Name != "dataplane_worker_packets_total" {
			continue
		}
		for _, s := range f.Series {
			packets += s.Value
		}
	}
	// The counter includes warmup packets; the report excludes them.
	var total uint64
	for _, w := range rep.Workers {
		total += w.TotalPackets
	}
	if uint64(packets) < total {
		t.Fatalf("packet counter %v below reported total %d", packets, total)
	}
}

// TestRuntimeChainTraceExport runs a staged chain with packet sampling
// and checks the recorded spans: every sampled packet has a span per
// stage, the consumer's span starts after the producer's ends (the gap
// is the charged hand-off cost), and the Chrome export is valid JSON
// with the expected event shapes.
func TestRuntimeChainTraceExport(t *testing.T) {
	params := withCustom(apps.Small(), "MONC", monStyleGraph(apps.Small()), map[string]int{"nf": 1})
	cfg := testConfig([]AppSpec{{Name: "monc", Type: "MONC", Workers: 1}})
	cfg.Params = params
	cps := testCfg().CoresPerSocket
	cfg.Cores = []int{0, cps}
	cfg.TraceSample = 64
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)

	tr := r.Tracer()
	if tr == nil {
		t.Fatal("TraceSample set but Tracer() is nil")
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("staged run recorded no trace spans")
	}
	byTrace := map[uint64]map[int]obs.TraceEvent{}
	for _, ev := range events {
		if ev.Trace == 0 {
			t.Fatalf("recorded span without trace ID: %+v", ev)
		}
		if ev.End < ev.Start {
			t.Fatalf("span ends before it starts: %+v", ev)
		}
		if byTrace[ev.Trace] == nil {
			byTrace[ev.Trace] = map[int]obs.TraceEvent{}
		}
		byTrace[ev.Trace][ev.Stage] = ev
	}
	complete := 0
	for id, stages := range byTrace {
		s0, ok0 := stages[0]
		s1, ok1 := stages[1]
		if !ok0 {
			t.Fatalf("trace %d has a stage-1 span but no stage-0 span", id)
		}
		if !ok1 {
			continue // sampled packet still in flight at run end
		}
		complete++
		if s0.Tid == s1.Tid {
			t.Fatalf("trace %d executed both stages on worker %d", id, s0.Tid)
		}
		if !s0.Enqueued || !s1.Dequeued {
			t.Fatalf("trace %d hand-off flags wrong: stage0 enq=%v, stage1 deq=%v",
				id, s0.Enqueued, s1.Dequeued)
		}
		// The virtual-time gap between the producer's span end and the
		// consumer's span start is the packet's hand-off: ring residence
		// plus the charged descriptor traffic. With lax clock sync the two
		// core clocks can skew by at most one quantum, so the consumer
		// must start no earlier than one quantum before the producer ends.
		if s1.Start+cfg.QuantumCycles < s0.End {
			t.Fatalf("trace %d: stage 1 starts at %d, more than a quantum before stage 0 ends at %d",
				id, s1.Start, s0.End)
		}
	}
	if complete == 0 {
		t.Fatal("no sampled packet completed both stages")
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, cfg.Cfg.ClockHz); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	kinds := map[string]int{}
	for _, ev := range doc.TraceEvents {
		kinds[ev["ph"].(string)]++
	}
	if kinds["X"] != len(events) {
		t.Fatalf("export has %d spans for %d recorded events", kinds["X"], len(events))
	}
	if kinds["M"] == 0 || kinds["s"] == 0 || kinds["f"] == 0 {
		t.Fatalf("export missing metadata or flow events: %v", kinds)
	}
}

// TestRuntimeResidualSeries runs a profiled mix and checks the
// prediction-residual time series: one point per (window, profiled app),
// internally consistent, with causes from the diagnoser's vocabulary.
func TestRuntimeResidualSeries(t *testing.T) {
	params := apps.Small()
	ipSolo := soloStats(t, apps.IP, params)
	monSolo := soloStats(t, apps.MON, params)
	cfg := testConfig([]AppSpec{
		{Name: "ipfwd", Type: apps.IP, Workers: 2},
		{Name: "mon", Type: apps.MON, Workers: 1},
	})
	cfg.Profiles = map[apps.FlowType]FlowProfile{
		apps.IP:  {SoloPPS: ipSolo.Throughput(), SoloRefsPerSec: ipSolo.L3RefsPerSec()},
		apps.MON: {SoloPPS: monSolo.Throughput(), SoloRefsPerSec: monSolo.L3RefsPerSec()},
	}
	windows := 0
	cfg.OnWindow = func(cs ControlSample, res []obs.Residual) {
		windows++
		if len(res) != 2 {
			t.Errorf("window at q%d has %d residuals, want 2 (one per profiled app)", cs.Quantum, len(res))
		}
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, rep)
	if windows == 0 {
		t.Fatal("OnWindow never fired")
	}
	if len(rep.Residuals) != 2*windows {
		t.Fatalf("report retains %d residuals, want %d (2 apps x %d windows)",
			len(rep.Residuals), 2*windows, windows)
	}
	valid := map[obs.Cause]bool{
		obs.CauseNone: true, obs.CauseNUMA: true, obs.CauseRing: true,
		obs.CauseL3: true, obs.CauseBetter: true, obs.CauseUnknown: true,
	}
	seen := map[string]bool{}
	for _, rr := range rep.Residuals {
		seen[rr.App] = true
		if !valid[rr.Cause] {
			t.Fatalf("residual carries unknown cause %q", rr.Cause)
		}
		if got := rr.Observed - rr.Predicted; got != rr.Residual {
			t.Fatalf("residual %v != observed %v - predicted %v", rr.Residual, rr.Observed, rr.Predicted)
		}
		if rr.Cause != obs.CauseNone && rr.Evidence == "" {
			t.Fatalf("diagnosed cause %s has no evidence string", rr.Cause)
		}
	}
	if !seen["ipfwd"] || !seen["mon"] {
		t.Fatalf("residual series missing an app: %v", seen)
	}

	// Retention bounds the series: a tiny retention keeps only the tail.
	cfg2 := cfg
	cfg2.OnWindow = nil
	cfg2.StatsRetention = 2
	r2, err := NewRuntime(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := r2.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Residuals) > 2*len(cfg2.Apps) {
		t.Fatalf("retention 2 kept %d residuals, want at most %d", len(rep2.Residuals), 2*len(cfg2.Apps))
	}
	if got := len(r2.Stats().Samples()); got > 2 {
		t.Fatalf("retention 2 kept %d control samples", got)
	}
}

// TestHandoffPollCounter: the ring's poll counter observes spin-waits.
func TestHandoffPollCounter(t *testing.T) {
	params := withCustom(apps.Small(), "MONC", monStyleGraph(apps.Small()), map[string]int{"nf": 1})
	reg := obs.NewRegistry()
	cfg := testConfig([]AppSpec{{Name: "monc", Type: "MONC", Workers: 1}})
	cfg.Params = params
	cfg.Metrics = reg
	cps := testCfg().CoresPerSocket
	cfg.Cores = []int{0, cps}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0.004); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	page := out.String()
	for _, want := range []string{
		"dataplane_handoff_fill{", "dataplane_handoff_polls_total{",
		"dataplane_worker_spin_polls_total{",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("exposition missing %q:\n%s", want, firstLines(page, 40))
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
