package runtime

import (
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// testCfg is the quick-scale platform: default topology, caches shrunk
// so working sets exceed the shared cache at apps.Small sizes.
func testCfg() hw.Config {
	cfg := hw.DefaultConfig()
	cfg.L1D = hw.CacheGeom{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = hw.CacheGeom{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = hw.CacheGeom{SizeBytes: 1 << 20, Ways: 16}
	return cfg
}

func testConfig(appsSpec []AppSpec) Config {
	return Config{
		Cfg:           testCfg(),
		Params:        apps.Small(),
		Apps:          appsSpec,
		QuantumCycles: 100_000,
		ControlEvery:  4,
		Warmup:        0.0003,
		Scenario:      "test",
	}
}

// soloStats measures a flow type's solo profile on the deterministic
// engine at test scale, the offline step the runtime's mechanisms assume.
func soloStats(t *testing.T, typ apps.FlowType, params apps.Params) hw.FlowStats {
	t.Helper()
	sc := core.Scenario{
		Cfg:    testCfg(),
		Params: params,
		Flows:  []core.FlowSpec{{Type: typ, Core: 0, Domain: 0, Seed: core.SeedFor(typ, 0)}},
		Warmup: 0.0005,
		Window: 0.002,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatalf("solo %s: %v", typ, err)
	}
	return res.Stats[0]
}

func TestRuntimeMixedSaturating(t *testing.T) {
	cfg := testConfig([]AppSpec{
		{Name: "ipfwd", Type: apps.IP, Workers: 2},
		{Name: "mon", Type: apps.MON, Workers: 2},
	})
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(rep.Workers))
	}
	for _, w := range rep.Workers {
		if w.Packets == 0 || w.PPS <= 0 {
			t.Fatalf("worker %d idle under saturating load: %+v", w.Worker, w)
		}
		if w.BatchOccupancy <= 0 || w.BatchOccupancy > 1 {
			t.Fatalf("worker %d batch occupancy %v outside (0,1]", w.Worker, w.BatchOccupancy)
		}
		if w.RefsPerSec <= 0 {
			t.Fatalf("worker %d reports no memory references", w.Worker)
		}
	}
	for _, a := range rep.Apps {
		if a.Processed == 0 {
			t.Fatalf("app %s processed nothing", a.Name)
		}
		// Conservation: measurement-window enqueues and processing may
		// each lead the other by at most the rings' total backlog (the
		// counters reset at warmup end while rings keep their contents).
		slack := int64(a.Workers) * 2 * 512 // default ring capacity
		if diff := int64(a.Enqueued) - int64(a.Processed); diff > slack || diff < -slack {
			t.Fatalf("app %s: enqueued %d vs processed %d exceeds ring backlog bound %d",
				a.Name, a.Enqueued, a.Processed, slack)
		}
		if err := a.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Stats().Samples()) == 0 {
		t.Fatal("no control samples recorded")
	}
	last := r.Stats().Latest()
	if len(last.Workers) != 4 {
		t.Fatalf("latest sample has %d workers", len(last.Workers))
	}
}

func TestRuntimeRSSShardsAcrossReplicas(t *testing.T) {
	cfg := testConfig([]AppSpec{{Name: "mon", Type: apps.MON, Workers: 3}})
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Workers {
		if w.Packets == 0 {
			t.Fatalf("replica on worker %d received no RSS share", w.Worker)
		}
	}
}

func TestRuntimeRateLimitedDelivery(t *testing.T) {
	// Offer well under capacity: everything must be delivered, nothing
	// tail-dropped, observed throughput ≈ offered rate.
	const rate = 200_000 // pps, far below one core's MON capacity
	cfg := testConfig([]AppSpec{{Name: "mon", Type: apps.MON, Workers: 1, Rate: rate}})
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Apps[0]
	if a.NICDrops != 0 {
		t.Fatalf("tail drops at 20%% load: %d", a.NICDrops)
	}
	if a.ObservedPPS < rate*0.8 || a.ObservedPPS > rate*1.2 {
		t.Fatalf("observed %0.f pps, offered %d", a.ObservedPPS, rate)
	}
}

func TestRuntimeBurstOverloadDrops(t *testing.T) {
	cfg := testConfig([]AppSpec{
		// 40M pps offered in bursts is far beyond a single VPN worker.
		{Name: "vpn", Type: apps.VPN, Workers: 1, Rate: 40e6, BurstOn: 3, BurstOff: 3},
	})
	cfg.RingSize = 64
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.004)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Apps[0]
	if a.NICDrops == 0 {
		t.Fatal("burst overload produced no tail drops")
	}
	if a.Processed == 0 {
		t.Fatal("burst overload processed nothing")
	}
	if a.LossRate <= 0 || a.LossRate >= 1 {
		t.Fatalf("loss rate %v outside (0,1)", a.LossRate)
	}
	checkConservation(t, rep)
}

func TestRuntimeAdmissionContainsHiddenAggressor(t *testing.T) {
	fwSolo := soloStats(t, apps.FW, apps.Small())
	cfg := testConfig([]AppSpec{
		{Name: "mon", Type: apps.MON, Workers: 1},
		{Name: "rogue", Type: apps.FW, Workers: 1, HiddenTrigger: 300},
	})
	cfg.Admission = true
	cfg.Profiles = map[apps.FlowType]FlowProfile{
		apps.FW: {SoloPPS: fwSolo.Throughput(), SoloRefsPerSec: fwSolo.L3RefsPerSec()},
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.008)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThrottleEvents == 0 {
		t.Fatal("admission control never engaged against the hidden aggressor")
	}
	// The rogue's control element must carry a positive delay in at
	// least one recorded sample.
	sawDelay := false
	for _, cs := range r.Stats().Samples() {
		for _, w := range cs.Workers {
			if w.App == "rogue" && w.DelayCycles > 0 {
				sawDelay = true
			}
		}
	}
	if !sawDelay {
		t.Fatal("no control sample shows a throttle delay on the rogue flow")
	}
}

func TestRuntimeReplacementSeparatesThrashers(t *testing.T) {
	// The thrasher keeps its region at half the L3 (the regime where a
	// SYN_MAX stays cache-resident and maximally aggressive next to a
	// victim), matching the builtin thrash scenario.
	params := apps.Small()
	params.SynRegionBytes = testCfg().L3.SizeBytes / 2
	monSolo := soloStats(t, apps.MON, params)
	synSolo := soloStats(t, apps.SYNMAX, params)
	monRefs := monSolo.L3RefsPerSec()
	synRefs := synSolo.L3RefsPerSec()
	if synRefs < 4*monRefs {
		t.Fatalf("test premise broken: SYN_MAX refs/sec %.0f not ≫ MON %.0f", synRefs, monRefs)
	}
	// Curves anchored to the measured rates: MON suffers badly once
	// competition rises beyond what a co-located MON generates, and a
	// SYN_MAX neighbour observably generates several times that even
	// while contended; SYN_MAX itself is immune.
	profiles := map[apps.FlowType]FlowProfile{
		apps.MON: {
			SoloPPS: monSolo.Throughput(), SoloRefsPerSec: monRefs,
			Curve: core.Curve{Target: apps.MON, Points: []core.CurvePoint{
				{CompetingRefsPerSec: 0, Drop: 0},
				{CompetingRefsPerSec: monRefs, Drop: 0.02},
				{CompetingRefsPerSec: synRefs / 4, Drop: 0.30},
				{CompetingRefsPerSec: 2 * synRefs, Drop: 0.45},
			}},
		},
		apps.SYNMAX: {
			SoloPPS: synSolo.Throughput(), SoloRefsPerSec: synRefs,
			Curve: core.Curve{Target: apps.SYNMAX, Points: []core.CurvePoint{
				{CompetingRefsPerSec: 0, Drop: 0},
				{CompetingRefsPerSec: 2 * synRefs, Drop: 0.02},
			}},
		},
	}
	cps := testCfg().CoresPerSocket
	cfg := testConfig([]AppSpec{
		{Name: "mon-a", Type: apps.MON, Workers: 1},
		{Name: "thrash-a", Type: apps.SYNMAX, Workers: 1},
		{Name: "mon-b", Type: apps.MON, Workers: 1},
		{Name: "thrash-b", Type: apps.SYNMAX, Workers: 1},
	})
	cfg.Params = params
	cfg.Cores = []int{0, 1, cps, cps + 1}
	cfg.Profiles = profiles
	cfg.DropThreshold = 0.08
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(0.008)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("re-placement never engaged on the pathological placement")
	}
	// Final placement: the two MON flows must share a socket, the two
	// SYN_MAX flows the other.
	monSock, synSock := -1, -1
	for _, w := range rep.Workers {
		switch w.Type {
		case apps.MON:
			if monSock == -1 {
				monSock = w.Socket
			} else if w.Socket != monSock {
				t.Fatalf("MON flows still split across sockets: %+v", rep.Workers)
			}
		case apps.SYNMAX:
			if synSock == -1 {
				synSock = w.Socket
			} else if w.Socket != synSock {
				t.Fatalf("SYN_MAX flows still split across sockets: %+v", rep.Workers)
			}
		}
	}
	if monSock == synSock {
		t.Fatalf("victims and thrashers share socket %d", monSock)
	}
	// Convergence, not flapping: a second and third swap may refine, but
	// the run must not thrash placements every control interval.
	if len(rep.Migrations) > 3 {
		t.Fatalf("placement flapping: %d migrations", len(rep.Migrations))
	}
	checkConservation(t, rep)
	// Migration attribution: a worker's Packets cover only its final
	// binding (per-binding baselines snapshot at swap time), so summed
	// under an app's label they can never exceed what the app's flows
	// actually processed — they did before the fix, because the whole
	// window's work was credited to whichever app held the last binding.
	perApp := map[string]uint64{}
	sawRebound := false
	for _, w := range rep.Workers {
		if w.TotalPackets < w.Packets {
			t.Fatalf("worker %d: total %d < bound %d", w.Worker, w.TotalPackets, w.Packets)
		}
		if w.TotalPackets > w.Packets {
			sawRebound = true
		}
		perApp[w.App] += w.Packets
	}
	if !sawRebound {
		t.Fatal("migrations recorded but no worker excludes pre-swap packets")
	}
	for _, a := range rep.Apps {
		if perApp[a.Name] > a.Processed {
			t.Fatalf("app %s: workers claim %d packets under its label, its flows processed %d",
				a.Name, perApp[a.Name], a.Processed)
		}
	}
}

func TestRuntimePacketCountMode(t *testing.T) {
	cfg := testConfig([]AppSpec{{Name: "ip", Type: apps.IP, Workers: 1}})
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunPackets(500)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.TotalProcessed(); got < 500 {
		t.Fatalf("processed %d packets, want ≥ 500", got)
	}
}

func TestRuntimeRunOnce(t *testing.T) {
	cfg := testConfig([]AppSpec{{Name: "ip", Type: apps.IP, Workers: 1}})
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0.001); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0.001); err == nil {
		t.Fatal("second Run succeeded; runtimes must be single-use")
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	base := func() Config {
		return testConfig([]AppSpec{{Name: "ip", Type: apps.IP, Workers: 2}})
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no apps", func(c *Config) { c.Apps = nil }},
		{"zero workers", func(c *Config) { c.Apps[0].Workers = 0 }},
		{"unnamed app", func(c *Config) { c.Apps[0].Name = "" }},
		{"core count mismatch", func(c *Config) { c.Cores = []int{0} }},
		{"duplicate core", func(c *Config) { c.Cores = []int{3, 3} }},
		{"core out of range", func(c *Config) { c.Cores = []int{0, 99} }},
		{"rate fraction without profile", func(c *Config) { c.Apps[0].RateFraction = 0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := NewRuntime(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestScenarioConfigsBuild(t *testing.T) {
	cfg := testCfg()
	params := apps.Small()
	for _, name := range ScenarioNames() {
		sc, err := ScenarioConfig(name, cfg, params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sc.Apps) == 0 {
			t.Fatalf("%s: no apps", name)
		}
		types, err := ScenarioTypes(name, cfg, params)
		if err != nil || len(types) == 0 {
			t.Fatalf("%s types: %v %v", name, types, err)
		}
		// Scenarios with rate fractions need profiles; the rest must
		// build runnable runtimes straight away.
		needsProfile := false
		for _, a := range sc.Apps {
			if a.RateFraction > 0 {
				needsProfile = true
			}
		}
		if needsProfile {
			continue
		}
		if _, err := NewRuntime(sc); err != nil {
			t.Fatalf("%s: NewRuntime: %v", name, err)
		}
	}
	if _, err := ScenarioConfig("nope", cfg, params); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestProfileFlowsQuick smoke-tests the offline profiling helper on the
// cheapest realistic type with a minimal sweep grid.
func TestProfileFlowsQuick(t *testing.T) {
	profiles, err := ProfileFlows(testCfg(), apps.Small(), 0.0005, 0.002,
		[]int{400, 0}, []apps.FlowType{apps.IP, apps.IP})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := profiles[apps.IP]
	if !ok {
		t.Fatal("no IP profile")
	}
	if p.SoloPPS <= 0 || p.SoloRefsPerSec <= 0 {
		t.Fatalf("degenerate profile: %+v", p)
	}
	if len(p.Curve.Points) < 3 {
		t.Fatalf("curve too sparse: %+v", p.Curve)
	}
	if p.Curve.Points[0].Drop != 0 {
		t.Fatalf("curve does not start at zero: %+v", p.Curve.Points[0])
	}
}
