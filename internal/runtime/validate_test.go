package runtime

import (
	"math"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// Cross-validation of the concurrent runtime against the deterministic
// engine, closing the ROADMAP item "validate the concurrent runtime's
// drop figures against the deterministic engine's co-run measurements
// across all mixes". For every builtin scenario the flow types are
// profiled offline on the engine (solo runs and drop-versus-competition
// sweeps — the paper's method), the scenario then runs on the concurrent
// runtime, and each realistic app's observed drop must agree with the
// engine-derived prediction within a stated tolerance. The mixed
// scenario — saturating, placement-stable — is additionally checked
// against the engine's direct co-run measurement of the same socket mix.

// validationTolerance is the acceptable |observed − predicted| drop gap
// per scenario. The paper reports ≤5% error for realistic mixes on real
// hardware; the concurrent runtime adds ring/dispatch effects, quantum
// granularity, and (for thrash) a pre-migration transient inside the
// measured window, so the bounds here are wider but still tight enough
// to catch an accounting or contention-model regression.
var validationTolerance = map[string]float64{
	ScenarioMixed:  0.15,
	ScenarioBursty: 0.15,
	ScenarioThrash: 0.20,
	ScenarioHidden: 0.15,
}

func TestValidateRuntimeDropsAgainstEngine(t *testing.T) {
	if testing.Short() {
		// CI runs this suite in its own -race step; -short keeps the
		// full-tree pass from paying for the offline profiling twice.
		t.Skip("validation suite skipped in -short mode (runs in its dedicated CI step)")
	}
	const (
		warmup = 0.0005
		window = 0.002
		dur    = 0.006
	)
	grid := []int{1600, 400, 100, 0}
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			cfg, err := ScenarioConfig(name, testCfg(), apps.Small())
			if err != nil {
				t.Fatal(err)
			}
			profiles, err := ProfileFlows(testCfg(), cfg.Params, warmup, window, grid, cfg.FlowTypes())
			if err != nil {
				t.Fatal(err)
			}
			cfg.Profiles = profiles
			cfg.QuantumCycles = 100_000
			cfg.ControlEvery = 4
			cfg.Warmup = 0.0003
			r, err := NewRuntime(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := r.Run(dur)
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, rep)

			specs := map[string]AppSpec{}
			for _, a := range cfg.Apps {
				specs[a.Name] = a
			}
			tol := validationTolerance[name]
			validated := 0
			for _, a := range rep.Apps {
				spec := specs[a.Name]
				if a.Type.Synthetic() || spec.HiddenTrigger > 0 {
					// SYN is the profiling probe, not a prediction target,
					// and the hidden aggressor's drop comes from the
					// throttle the scenario exists to trigger.
					continue
				}
				if a.SoloPPS == 0 {
					t.Fatalf("app %s ran without a solo profile", a.Name)
				}
				validated++
				if spec.RateFraction > 0 && spec.RateFraction < 1 {
					// An under-capacity flow's drop curve never shows: the
					// worker absorbs contention as higher cycles/packet
					// while still keeping up with the offered rate. The
					// engine-consistent check is capacity: the predicted
					// contended headroom covers the offered fraction, so
					// the runtime must deliver it without loss.
					if headroom := 1 - a.PredictedDrop; spec.RateFraction > headroom {
						t.Fatalf("app %s: offered %.0f%% of solo but engine predicts only %.0f%% headroom — scenario premise broken",
							a.Name, spec.RateFraction*100, headroom*100)
					}
					if a.ObservedDrop > tol {
						t.Errorf("app %s (%s): dropped %.1f%% of an offered load the engine predicts it can absorb (tol ±%.0f%%)",
							a.Name, a.Type, a.ObservedDrop*100, tol*100)
					}
					continue
				}
				if e := a.PredictionError(); math.Abs(e) > tol {
					t.Errorf("app %s (%s): observed drop %.1f%% vs engine prediction %.1f%% — error %+.1f%% exceeds ±%.0f%%",
						a.Name, a.Type, a.ObservedDrop*100, a.PredictedDrop*100, e*100, tol*100)
				}
			}
			if validated == 0 {
				t.Fatal("scenario validated no apps")
			}

			if name == ScenarioMixed {
				validateMixedAgainstCoRun(t, cfg, rep, warmup, window)
			}
		})
	}
}

// validateMixedAgainstCoRun compares the runtime's per-app observed
// drops in the mixed scenario against the deterministic engine measuring
// the identical socket mix co-running — measurement versus measurement,
// not just measurement versus prediction.
func validateMixedAgainstCoRun(t *testing.T, cfg Config, rep *Report, warmup, window float64) {
	t.Helper()
	var mix []apps.FlowType
	for _, a := range cfg.Apps {
		for i := 0; i < a.Workers; i++ {
			mix = append(mix, a.Type)
		}
	}
	p := core.NewPredictor(testCfg(), cfg.Params, warmup, window)
	drops, sorted, err := p.MeasuredDrops(mix)
	if err != nil {
		t.Fatal(err)
	}
	engine := map[apps.FlowType][]float64{}
	for i, typ := range sorted {
		engine[typ] = append(engine[typ], drops[i])
	}
	const tol = 0.12
	for _, a := range rep.Apps {
		ds := engine[a.Type]
		if len(ds) == 0 {
			t.Fatalf("engine co-run measured no %s flow", a.Type)
		}
		var mean float64
		for _, d := range ds {
			mean += d
		}
		mean /= float64(len(ds))
		if diff := a.ObservedDrop - mean; math.Abs(diff) > tol {
			t.Errorf("app %s (%s): runtime drop %.1f%% vs engine co-run %.1f%% — gap %+.1f%% exceeds ±%.0f%%",
				a.Name, a.Type, a.ObservedDrop*100, mean*100, diff*100, tol*100)
		}
	}
}

// TestMaxQueueWaitTracksEngine tunes Config.MaxQueueWait against the
// deterministic engine: it measures the p99 memory-controller queueing
// delay of a socket-saturating realistic mix under unbounded FCFS (the
// engine's regime) and fails if DefaultMaxQueueWait diverges from that
// observation by more than 2× in either direction — the finite-queue
// bound the concurrent runtime imposes must stay anchored to the queue
// waits the exact simulation actually produces.
func TestMaxQueueWaitTracksEngine(t *testing.T) {
	mix := []apps.FlowType{apps.IP, apps.IP, apps.MON, apps.VPN, apps.FW, apps.MON}
	cps := testCfg().CoresPerSocket
	if len(mix) > cps {
		mix = mix[:cps]
	}
	flows := make([]core.FlowSpec, len(mix))
	for i, typ := range mix {
		flows[i] = core.FlowSpec{Type: typ, Core: i, Domain: 0, Seed: core.SeedFor(typ, i)}
	}
	res, err := core.Scenario{
		Cfg: testCfg(), Params: apps.Small(), Flows: flows,
		Warmup: 0.0005, Window: 0.002,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	mem := res.Platform.Sockets[0].Mem
	p99 := mem.WaitQuantile(0.99)
	if p99 == 0 {
		t.Fatalf("saturating mix produced no memory-controller queueing (%d requests)", mem.Requests)
	}
	if DefaultMaxQueueWait > 2*p99 {
		t.Fatalf("DefaultMaxQueueWait %d > 2× engine p99 wait %d: bound too loose, retune it", DefaultMaxQueueWait, p99)
	}
	if 2*DefaultMaxQueueWait < p99 {
		t.Fatalf("DefaultMaxQueueWait %d < ½ engine p99 wait %d: bound clips real queueing, retune it", DefaultMaxQueueWait, p99)
	}
}
