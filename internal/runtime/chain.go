package runtime

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/handoff"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/obs"
)

// Cross-worker service chains: a staged Click graph (click.AssignStages)
// runs each stage on its own worker, connected by handoff rings. Unlike
// the dispatcher's receive rings — refilled only at barriers — handoff
// rings are live SPSC queues between two concurrently running workers, so
// a starved stage spin-polls its ring (charging the poll's trace) instead
// of idling to the quantum boundary: within one quantum its producer may
// still deliver.
//
// Buffer ownership: every packet buffer comes from the stage-0 worker's
// NUMA-local pool. A later stage that terminates a packet cannot touch
// that pool directly (the Go-side free list belongs to the stage-0
// goroutine), so each stage k>0 owns a return ring back to stage 0: the
// terminating stage pushes the spent packet (charging the descriptor-line
// store — the cross-core recycling traffic the paper describes), and
// stage 0 drains the returns into its pool before pulling new work.

// chainStage is one stage of one chain replica, bound to one worker.
type chainStage struct {
	fl     *flow
	stage  int
	runner *click.StageRunner

	in  *handoff.Ring // packets from the previous stage; nil at stage 0
	out *handoff.Ring // packets to the next stage; nil at the last stage

	// recycle is stage k's buffer-return ring to stage 0 (nil at stage
	// 0); returns collects every later stage's recycle ring on stage 0.
	recycle *handoff.Ring
	rec     *remoteRecycler
	returns []*handoff.Ring

	src       *ringSource // stage 0 only, attached at bind
	entry     int         // node index the stage enters the graph at (stage 0 only)
	workerIdx int

	// batched defers hand-off cursor publishes/releases to flush (once
	// per worker batch) instead of per packet — set when the scenario
	// models a receive batch (Params.RxBatch > 1).
	batched bool

	// prevPushPolls/prevPopPolls are the out ring's per-direction poll
	// counts at the last control barrier (the observability layer's
	// per-window delta cursors): push polls mean this stage's consumer
	// lags, pop polls mean the next stage starves.
	prevPushPolls uint64
	prevPopPolls  uint64

	// elems is this stage's per-element cost table (same slot layout as
	// flow.elems: slot 0 overhead, slot i+1 = pipe.Nodes()[i]). Chains
	// keep one table per stage because each stage runs on its own core;
	// a node's cost lands in the table of the stage that executes it, and
	// the control loop sums the stages at barriers.
	elems, prevElems, baseElems []hw.ElemCell

	// lat is this stage's end-to-end latency shard: a packet's latency is
	// recorded by whichever stage terminates its walk, so each stage owns
	// a single-writer histogram and the control loop merges them.
	lat, prevLat, baseLat obs.LatHist
}

// remoteRecycler routes a spent packet home through the stage's return
// ring instead of mutating the stage-0 pool from the wrong goroutine.
// The descriptor-line store it charges is the recycling leg of the
// hand-off cost; the pool's own free-list trace runs on stage 0 when it
// drains the ring.
type remoteRecycler struct {
	ring *handoff.Ring
}

// Recycle implements click.Recycler.
func (rr *remoteRecycler) Recycle(ctx *click.Ctx, p *click.Packet) {
	if !rr.ring.Push(ctx, p, -1, false) {
		// The ring is sized to hold every buffer the pool owns.
		panic("runtime: chain buffer-return ring overflow")
	}
}

// buildChain cuts f's pipeline across stages workers starting at worker
// lead, wiring hand-off and return rings between consecutive stages.
func (r *Runtime) buildChain(f *flow, lead, stages int, arena func(int) *mem.Arena) error {
	depth := r.chainHandoffDepth(stages)
	f.stages = make([]*chainStage, stages)
	var prev *handoff.Ring
	for s := 0; s < stages; s++ {
		w := r.workers[lead+s]
		runner, err := f.pipe.StageRunner(s)
		if err != nil {
			return fmt.Errorf("runtime: app %q replica %d: %w", f.app.spec.Name, f.replica, err)
		}
		u := &chainStage{fl: f, stage: s, runner: runner, in: prev,
			batched: r.cfg.Params.RxBatch > 1,
			elems:   make([]hw.ElemCell, len(f.pipe.Nodes())+1)}
		if s == 0 {
			u.entry = f.pipe.HeadIndex()
		}
		if s < stages-1 {
			// Descriptor lines live in the producing stage's domain, as a
			// real driver allocates its rings locally.
			u.out = handoff.New(arena(w.socket), depth)
			prev = u.out
		}
		if s > 0 {
			u.recycle = handoff.New(arena(w.socket), r.cfg.Params.Buffers)
			u.rec = &remoteRecycler{ring: u.recycle}
			f.stages[0].returns = append(f.stages[0].returns, u.recycle)
		}
		f.stages[s] = u
		w.bindStage(u)
	}
	return nil
}

// chainHandoffDepth bounds the forward rings so that packets in flight
// plus buffers queued for return can never exhaust the stage-0 pool.
func (r *Runtime) chainHandoffDepth(stages int) int {
	depth := r.cfg.HandoffDepth
	if limit := r.cfg.Params.Buffers / (4 * (stages - 1)); depth > limit {
		depth = limit
	}
	if depth < 2 {
		depth = 2
	}
	return depth
}

// step executes one unit of stage work: recycle returned buffers, then
// pull/pop one packet and walk it through this stage, handing it onward
// if the walk crosses the cut. The second return value is 1 when a packet
// was processed; ops may be non-empty with no packet processed (a
// spin-wait poll or a drained return), which advances the clock without
// counting throughput.
func (u *chainStage) step(w *worker) ([]hw.Op, int) {
	ctx := u.runner.Ctx()
	ctx.Ops = w.opbuf[:0]
	defer func() { w.opbuf = ctx.Ops }()

	// Stage 0: return spent buffers to the pool first, so the pool can
	// never run dry while packets sit in a return ring.
	for _, ret := range u.returns {
		for {
			p, _, _, ok := ret.Pop(ctx)
			if !ok {
				break
			}
			u.src.Recycle(ctx, p)
		}
	}

	// Credit backpressure: never take a packet the next stage has no
	// slot for; spin on the ring's state line instead.
	if u.out != nil && u.out.Full() {
		u.out.PollFull(ctx)
		if w.mSpins != nil {
			w.mSpins.Inc()
		}
		return ctx.Ops, 0
	}

	var p *click.Packet
	entry := u.entry
	prior := false
	if u.in == nil {
		p = u.src.Pull(ctx)
		if p == nil {
			// The receive ring refills only at barriers; if draining the
			// returns charged nothing either, the worker idles out the
			// quantum.
			return ctx.Ops, 0
		}
		u.fl.packets++
		if w.shard != nil {
			// Sample at chain entry: a non-zero ID rides the packet (and
			// its hand-off descriptors) through every later stage.
			p.Trace = w.shard.Sample()
		}
	} else {
		var ok bool
		if u.batched {
			// Defer the head-cursor release to flush: one store per batch.
			p, entry, prior, ok = u.in.PopStaged(ctx)
		} else {
			p, entry, prior, ok = u.in.Pop(ctx)
		}
		if !ok {
			// The producer may deliver mid-quantum: spin, don't idle.
			u.in.PollEmpty(ctx)
			if w.mSpins != nil {
				w.mSpins.Inc()
			}
			return ctx.Ops, 0
		}
		u.in.ChargeHeaderMiss(ctx, p)
		p.Recycler = u.rec
	}

	// Capture the stamps before the walk: a terminating walk recycles the
	// packet into a return ring, after which stage 0 may pop the return,
	// reuse the pool slot, and overwrite this header concurrently — the
	// Packet must never be read again once Walk has run.
	enq, trace := p.Enq, p.Trace

	next, fin := u.runner.Walk(p, entry, prior)
	if next >= 0 {
		// Cannot fail: Full was checked above (and counts staged slots).
		if u.batched {
			u.out.StagePush(ctx, p, next, fin)
		} else {
			u.out.Push(ctx, p, next, fin)
		}
	} else {
		// The walk terminated here: this stage records the packet's
		// end-to-end latency (finished or dropped — either way the packet
		// left the system) once runQuantum has executed its trace.
		w.pendLat, w.pendHist = enq, &u.lat
	}
	if trace != 0 && w.shard != nil {
		// The stage's trace executes after step returns; leave the span's
		// identity for runQuantum to timestamp around ExecOps.
		w.pendTrace = trace
		w.pendPid = u.fl.id
		w.pendStage = u.stage
		w.pendDeq = u.in != nil
		w.pendEnq = next >= 0
	}
	return ctx.Ops, 1
}

// flush closes the stage's current batch: staged hand-off pushes are
// published and taken slots released, each with a single cursor store
// whose simulated cost (charged once per batch — the amortization
// batching buys) executes as a stall trace. runQuantum calls it after
// every batch loop, so ring cursors are exact at barriers and a peer
// stage never waits past one batch for staged packets.
func (u *chainStage) flush(w *worker) {
	if !u.batched {
		return
	}
	ctx := u.runner.Ctx()
	ctx.Ops = w.opbuf[:0]
	if u.out != nil {
		u.out.CommitPush(ctx)
	}
	if u.in != nil {
		u.in.CommitPop(ctx)
	}
	w.opbuf = ctx.Ops
	if len(ctx.Ops) > 0 {
		w.core.ExecStall(ctx.Ops)
	}
}

// inFlight counts packets currently inside the chain's forward rings.
func (f *flow) inFlight() uint64 {
	var n uint64
	for _, u := range f.stages {
		if u.in != nil {
			n += uint64(u.in.Len())
		}
	}
	return n
}
