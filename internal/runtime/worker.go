package runtime

import (
	"pktpredict/internal/apps"
	"pktpredict/internal/click"
	"pktpredict/internal/elements"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/nic"
	"pktpredict/internal/obs"
	"pktpredict/internal/trafficgen"
)

// Receive-path attribution matches elements.FromDevice, so a runtime
// worker's per-packet profile lines up with the offline solo profile the
// predictor is built from; the compute costs come from the same
// centralised constants.
var fnRingRx = hw.RegisterFunc("from_device")

// flow is one running flow instance: a pipeline replica (or a raw
// synthetic source) plus its input ring and admission-control element.
// A flow is bound to exactly one worker at a time; live re-placement
// exchanges the bindings of two workers at a barrier. The flow's state
// (tables, buffers) stays in the NUMA domain it was allocated from, so a
// migrated flow pays remote-memory latency — exactly the cost a real
// dataplane weighs before moving work across sockets.
type flow struct {
	id      int
	app     *appState
	replica int

	pipe    *click.Pipeline   // nil for synthetic flows
	raw     hw.PacketSource   // non-nil for synthetic flows
	ring    *Ring             // nil for synthetic flows
	control *elements.Control // non-nil when the app carries admission control
	traffic *trafficgen.Spec  // the build-time source's generator spec, when it had one

	// stages is non-nil for cross-worker service chains: one entry per
	// pipeline stage, each bound to its own worker (see chain.go). A
	// chain is placed, migrated, and throttled as one unit.
	stages []*chainStage

	// state records where the flow's live tables sit in simulated memory
	// (build-time source buffers excluded); stateBytes is their summed
	// footprint. stateHome is the socket whose memory controller
	// currently serves those lines: it starts as the home of the flow's
	// private NUMA domain(s) and follows the flow when a migration copies
	// the state (Runtime.migrateState). A flow running on a worker whose
	// socket differs from stateHome pays QPI on every table reference.
	state      []apps.StateBinding
	stateBytes uint64
	stateHome  int

	// packets counts fully executed packets since measurement start. The
	// owning worker increments it; the control loop reads it at barriers.
	// prevPackets is the control loop's window cursor into it.
	packets     uint64
	prevPackets uint64

	// elems is the flow's per-element cost table for unstaged flows (nil
	// for synthetic flows and chains — a chain keeps one table per stage,
	// see chainStage.elems): slot 0 is the flow's overhead (source pulls,
	// recycling), slot i+1 is pipe.Nodes()[i]. The table is installed on
	// whichever core the flow is bound to (hw.Core.SetElemTable) and
	// follows the flow across migrations; only the owning worker writes
	// it, the control loop differences it against prevElems at barriers
	// and resetMeasurement snapshots baseElems.
	elems, prevElems, baseElems []hw.ElemCell

	// lat is the flow's end-to-end latency histogram for unstaged flows
	// (chains record into per-stage shards instead): finish-clock minus
	// ring-enqueue stamp, observed by the owning worker after each
	// packet's trace executes. prevLat/baseLat are the control-window and
	// measurement-start snapshots.
	lat, prevLat, baseLat obs.LatHist

	// lastConsumed is the dispatcher's credit cursor: the ring's consumed
	// count at the last barrier (see dispatcher.enqueue).
	lastConsumed uint64

	baseReceived, baseDropped, baseFinished uint64
	// baseBranch holds each pipeline node's terminal counters at
	// measurement start, aligned with pipe.Nodes().
	baseBranch []branchCounters
}

// stageState sums the state footprint of one chain stage and returns the
// socket currently homing it (-1 when the stage allocated nothing).
func (f *flow) stageState(stage int, p *hw.Platform) (bytes uint64, socket int) {
	socket = -1
	for _, b := range f.state {
		if b.Stage != stage {
			continue
		}
		bytes += b.Size
		if socket < 0 {
			socket = p.DomainHome(b.Domain())
		}
	}
	return bytes, socket
}

// branchCounters is one node's terminal counter snapshot.
type branchCounters struct {
	dropped, finished uint64
}

// branchTotals returns the flow's per-node terminal counters relative to
// the measurement baseline, aligned with pipe.Nodes(). It returns nil
// for synthetic flows.
func (f *flow) branchTotals() []branchCounters {
	if f.pipe == nil {
		return nil
	}
	nodes := f.pipe.Nodes()
	out := make([]branchCounters, len(nodes))
	for i, n := range nodes {
		var base branchCounters
		if i < len(f.baseBranch) {
			base = f.baseBranch[i]
		}
		out[i] = branchCounters{
			dropped:  n.Dropped - base.dropped,
			finished: n.Finished - base.finished,
		}
	}
	return out
}

// totals returns the flow's pipeline counters relative to the
// measurement baseline. For a chain, packets enter at stage 0 and reach
// exactly one terminal across the stages (packets still inside hand-off
// rings are neither; see flow.inFlight).
func (f *flow) totals() (received, dropped, finished uint64) {
	if f.stages != nil {
		var d, fin uint64
		for _, u := range f.stages {
			d += u.runner.Dropped
			fin += u.runner.Finished
		}
		return f.packets, d, fin
	}
	if f.pipe == nil {
		return f.packets, 0, f.packets
	}
	r, d, fin := f.pipe.Totals()
	return r - f.baseReceived, d - f.baseDropped, fin - f.baseFinished
}

// ringSource adapts a flow's input ring to click.Source: the worker-side
// receive path. Popping a packet takes a buffer from the worker's
// NUMA-local pool, copies the bytes in (modelled as the NIC's DMA into
// the socket's L3 via direct cache access), and consumes an RX
// descriptor — the same trace FromDevice emits, with the ring replacing
// the inline generator.
type ringSource struct {
	pool    *nic.BufferPool
	rx      *nic.Ring
	ring    *Ring
	scratch []byte

	// pollEvery is the modelled receive batch (Params.RxBatch): the RX
	// poll cost is charged on the first pull of each burst and every
	// pollEvery pulls after it. sincePoll tracks the position within the
	// burst and resets at batch end (endBatch), so poll charges align
	// with the worker's actual batch boundaries. pollEvery 1 charges the
	// poll on every pull — the historical unbatched cost.
	pollEvery int
	sincePoll int

	// pkts preallocates one Packet header per pool buffer. A packet and
	// its buffer share a lifetime (both released by Recycle), so indexing
	// by the buffer slot makes Pull allocation-free: pkts[idx] cannot be
	// reused before buffer idx is.
	pkts []click.Packet

	// lastEnq publishes the enqueue stamp of the most recent Pull to the
	// owning worker (same goroutine), so an unstaged pipeline's worker —
	// which never sees the Packet itself — can record the end-to-end
	// latency after the trace executes. lastEnqOK marks it fresh.
	lastEnq   uint64
	lastEnqOK bool
}

func newRingSource(arena *mem.Arena, buffers, bufSize, ringSize, rxBatch int) *ringSource {
	alloc := (bufSize + 511) &^ 511 // buffers never share cache lines
	if rxBatch < 1 {
		rxBatch = 1
	}
	return &ringSource{
		pool:      nic.NewBufferPool(arena, buffers, alloc),
		rx:        nic.NewRing(arena, ringSize),
		scratch:   make([]byte, bufSize),
		pkts:      make([]click.Packet, buffers),
		pollEvery: rxBatch,
	}
}

// Class implements click.Source.
func (rs *ringSource) Class() string { return "RingSource" }

// Pull implements click.Source.
//
//dataplane:stamped source-side ring and DMA ops are flow overhead (slot 0) by design
//dataplane:hotpath
func (rs *ringSource) Pull(ctx *click.Ctx) *click.Packet {
	if rs.ring == nil {
		return nil
	}
	n, stamp, ok := rs.ring.PopStaged(rs.scratch)
	if !ok {
		return nil
	}
	rs.lastEnq, rs.lastEnqOK = stamp, true
	old := ctx.SetFunc(fnRingRx)
	defer ctx.SetFunc(old)
	idx, data, addr := rs.pool.Get(ctx)
	copy(data[:n], rs.scratch[:n])
	ctx.DMABytes(addr, n)
	rs.rx.Consume(ctx)
	if rs.sincePoll == 0 {
		// First packet of an RX burst pays the poll, as FromDevice does;
		// the rest of the batch rides on it.
		ctx.Compute(elements.RxPollCompute, elements.RxPollInstrs)
	}
	rs.sincePoll++
	if rs.sincePoll == rs.pollEvery {
		rs.sincePoll = 0
	}
	ctx.Compute(elements.RxCompute, elements.RxInstrs)
	p := &rs.pkts[idx]
	*p = click.Packet{Data: data[:n], Addr: addr, Recycler: rs, PoolIndex: idx, Enq: stamp}
	return p
}

// endBatch closes the worker's current receive burst: the slots taken by
// PopStaged are released with one cursor store, and the next pull starts
// a fresh burst (paying a fresh RX poll). Called by runQuantum after
// every batch loop, so ring cursors are exact at barriers.
//
//dataplane:hotpath
func (rs *ringSource) endBatch() {
	rs.sincePoll = 0
	if rs.ring != nil {
		rs.ring.Release()
	}
}

// Recycle implements click.Recycler.
//
//dataplane:hotpath
func (rs *ringSource) Recycle(ctx *click.Ctx, p *click.Packet) {
	rs.pool.Put(ctx, p.PoolIndex)
}

// worker is one run-to-completion dataplane thread pinned to one
// simulated core. It owns the core exclusively; all shared cache state it
// touches is serialised inside hw (see Core.ExecOps).
type worker struct {
	id     int
	core   *hw.Core
	socket int
	src    *ringSource
	batch  int

	fl    *flow
	unit  *chainStage // non-nil when bound to one stage of a chain
	opbuf []hw.Op

	// Owner-written telemetry, read by the control loop at barriers.
	// Batch polls clipped by the quantum boundary (the clock ran out
	// mid-batch with input still available) are counted apart from the
	// occupancy sums: a boundary-clipped poll says nothing about how
	// full the input rings run, and folding it in biased BatchOccupancy
	// low — the shorter the quantum, the worse.
	packets     uint64 // packets since measurement start
	winBatchSum uint64 // packets in occupancy-counted polls, this control window
	winBatchCnt uint64 // occupancy-counted batch polls, this control window
	winClipped  uint64 // quantum-clipped batch polls, this control window
	totBatchSum uint64
	totBatchCnt uint64
	totClipped  uint64

	prevCounters hw.Counters // control-window baseline
	prevClock    uint64
	baseCounters hw.Counters // measurement-start baseline

	// lastRemotePerPkt is the previous control window's remote references
	// per packet on this core — the "before" side of a migration's
	// locality telemetry (see Migration.RemotePerPktBeforeA) — and
	// lastWindowPackets that window's packet count, which gates the
	// "after" side: a window with no traffic measures nothing.
	lastRemotePerPkt  float64
	lastWindowPackets uint64

	// Per-binding baselines, reset whenever the worker's flow changes
	// (and at measurement start), so reported packets are attributed to
	// the app that actually processed them rather than to whichever flow
	// held the final binding after a migration.
	bindPackets uint64
	bindClock   uint64

	// Hot-path metric handles, resolved at build time (nil when no
	// registry is configured): per-worker packet counter, batch-fill
	// histogram, clipped-poll counter, and spin-poll counter — each
	// update one atomic op.
	mPackets *obs.Counter
	mBatch   *obs.Histogram
	mClipped *obs.Counter
	mSpins   *obs.Counter

	// shard is the worker's private trace buffer (nil when tracing is
	// off). A chain stage that processes a sampled packet leaves the
	// span's identity in the pend fields; runQuantum brackets the trace's
	// execution with core-clock reads and records the span.
	shard     *obs.TraceShard
	pendTrace uint64
	pendPid   int
	pendStage int
	pendDeq   bool
	pendEnq   bool

	// pendLat carries a finished packet's ring-enqueue stamp from step to
	// runQuantum, which records finish − enqueue into pendHist after the
	// packet's trace has advanced the core clock. pendHist is the
	// single-writer shard the latency belongs to (the unstaged flow's
	// histogram, or the terminating chain stage's).
	pendLat  uint64
	pendHist *obs.LatHist

	startC chan uint64
	doneC  chan struct{}
}

// bind attaches f (an unstaged flow, or nil) to w: the flow's pipeline
// draws packets from this worker's receive path from now on.
func (w *worker) bind(f *flow) {
	w.fl = f
	w.unit = nil
	w.bindPackets = w.packets
	w.bindClock = w.core.Clock()
	if f == nil {
		w.src.ring = nil
		w.core.SetElemTable(nil)
		return
	}
	w.src.ring = f.ring
	if f.pipe != nil {
		f.pipe.Source = w.src
	}
	// The flow's per-element table follows it to this core; only this
	// worker writes it from now on.
	w.core.SetElemTable(f.elems)
}

// bindStage attaches one chain stage to w. Chains are pinned: stages are
// bound once at construction and never migrate, so their hand-off rings
// keep exactly one producer and one consumer.
func (w *worker) bindStage(u *chainStage) {
	w.fl = u.fl
	w.unit = u
	w.bindPackets = w.packets
	w.bindClock = w.core.Clock()
	u.workerIdx = w.id
	w.core.SetElemTable(u.elems)
	if u.stage == 0 {
		w.src.ring = u.fl.ring
		u.src = w.src
	} else {
		w.src.ring = nil
	}
}

// loop is the worker goroutine: wait for a quantum, run to its boundary,
// report back. The channel pair is the synchronisation barrier that keeps
// core-local virtual clocks within one quantum of each other (lax
// conservative synchronisation, as parallel architecture simulators use).
func (w *worker) loop() {
	for limit := range w.startC {
		w.runQuantum(limit)
		w.doneC <- struct{}{}
	}
}

// runQuantum executes batches until the core's local clock reaches the
// quantum boundary. When the input runs dry the worker idles to the
// boundary: the dispatcher only refills receive rings at barriers, so
// within a quantum an empty receive ring stays empty. Chain stages may
// instead emit spin-wait traces with no packet (their hand-off rings are
// fed live by a concurrently running peer); those advance the clock
// without counting towards throughput or batch occupancy.
func (w *worker) runQuantum(limit uint64) {
	for w.core.Clock() < limit {
		n := 0
		progressed := false
		for n < w.batch && w.core.Clock() < limit {
			ops, pkts := w.step()
			if len(ops) == 0 {
				break
			}
			progressed = true
			if pkts > 0 {
				if w.pendTrace != 0 {
					// A sampled packet's stage work: bracket its execution
					// with core-clock reads so the span is the charged
					// virtual time, hand-off costs included.
					start := w.core.Clock()
					w.core.ExecOps(ops)
					w.shard.Exec(obs.TraceEvent{
						Trace: w.pendTrace, Pid: w.pendPid, Tid: w.id,
						Stage: w.pendStage, Start: start, End: w.core.Clock(),
						Dequeued: w.pendDeq, Enqueued: w.pendEnq,
					})
					w.pendTrace = 0
				} else {
					w.core.ExecOps(ops)
				}
				if w.pendHist != nil {
					// The packet's walk terminated this step: its end-to-end
					// latency is the core clock now that its trace has
					// executed, minus the dispatcher's enqueue stamp.
					w.pendHist.Observe(w.core.Clock() - w.pendLat)
					w.pendHist = nil
				}
				w.packets++
				if w.mPackets != nil {
					w.mPackets.Inc()
				}
				n++
			} else {
				w.core.ExecStall(ops)
			}
		}
		// Close the batch: release the receive ring's cursor once for the
		// whole burst, and publish/release any slots a chain stage staged
		// on its hand-off rings.
		if w.src != nil {
			w.src.endBatch()
		}
		if w.unit != nil {
			w.unit.flush(w)
		}
		if progressed && n < w.batch && w.core.Clock() >= limit && w.inputReady() {
			// The quantum boundary cut this batch short with input still
			// available: its fill reflects the clock, not the ring, so it
			// is counted apart instead of biasing occupancy low.
			w.winClipped++
			w.totClipped++
			if w.mClipped != nil {
				w.mClipped.Inc()
			}
		} else {
			w.winBatchSum += uint64(n)
			w.winBatchCnt++
			w.totBatchSum += uint64(n)
			w.totBatchCnt++
			if w.mBatch != nil {
				w.mBatch.Observe(float64(n))
			}
		}
		if !progressed {
			w.core.AdvanceTo(limit)
			return
		}
	}
}

// inputReady reports whether the worker could have kept filling its
// current batch had the quantum not ended: the bound flow has packets
// waiting and its output is not blocked. Used only to classify a
// boundary-clipped poll — a starved or backpressured batch is a genuine
// occupancy observation even when the clock also ran out.
func (w *worker) inputReady() bool {
	switch {
	case w.fl == nil:
		return false
	case w.unit != nil:
		u := w.unit
		if u.out != nil && u.out.Full() {
			return false
		}
		if u.stage == 0 {
			return w.src.ring != nil && w.src.ring.Len() > 0
		}
		return u.in != nil && u.in.Len() > 0
	case w.fl.pipe != nil:
		return w.src.ring != nil && w.src.ring.Len() > 0
	default:
		// Synthetic sources drive themselves; work is always available.
		return true
	}
}

// step performs one unit of work for the bound flow and reports whether a
// packet was fully processed. Empty ops mean the worker has nothing to do
// until the next barrier.
func (w *worker) step() ([]hw.Op, int) {
	switch {
	case w.fl == nil:
		return nil, 0
	case w.unit != nil:
		return w.unit.step(w)
	case w.fl.pipe != nil:
		w.src.lastEnqOK = false
		ops := w.fl.pipe.EmitPacket(w.opbuf[:0])
		if len(ops) == 0 {
			return nil, 0
		}
		w.opbuf = ops
		w.fl.packets++
		if w.src.lastEnqOK {
			// Run-to-completion: the packet pulled this step also finished
			// this step; leave its stamp for runQuantum to record once the
			// trace has executed.
			w.pendLat, w.pendHist = w.src.lastEnq, &w.fl.lat
		}
		return ops, 1
	default:
		ops := w.fl.raw.EmitPacket(w.opbuf[:0])
		if len(ops) == 0 {
			return nil, 0
		}
		w.opbuf = ops
		w.fl.packets++
		return ops, 1
	}
}

// occupancy converts a batch-fill sum/count pair to a mean fraction.
func occupancy(sum, cnt uint64, batch int) float64 {
	if cnt == 0 || batch == 0 {
		return 0
	}
	return float64(sum) / float64(cnt) / float64(batch)
}
