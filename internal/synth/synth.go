// Package synth implements the paper's SYN workload: for each "packet" it
// performs a configurable number of simple CPU operations (counter
// increments) and reads a configurable number of random locations in a
// data structure the size of the L3 cache. Ramping the CPU-to-memory
// ratio sweeps the flow's cache references per second, which is how the
// profiling methodology (Section 4) measures a target application's
// drop-versus-competition curve. SYN_MAX — no computation, back-to-back
// accesses — is the most aggressive flow the platform can host.
package synth

import (
	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/rng"
)

// fnSyn attributes synthetic accesses in profiles.
var fnSyn = hw.RegisterFunc("syn_touch")

// Config parameterises a synthetic flow.
type Config struct {
	// Seed drives the access pattern.
	Seed uint64
	// RegionBytes is the touched data structure's size (default 12 MiB,
	// the paper's L3 size).
	RegionBytes int
	// AccessesPerPacket is the number of random reads per packet
	// (default 32).
	AccessesPerPacket int
	// ComputePerAccess is the number of counter-increment cycles between
	// consecutive reads; 0 is SYN_MAX behaviour.
	ComputePerAccess int
}

func (c Config) withDefaults() Config {
	if c.RegionBytes == 0 {
		c.RegionBytes = 12 << 20
	}
	if c.AccessesPerPacket == 0 {
		c.AccessesPerPacket = 32
	}
	return c
}

// Source is a standalone synthetic flow: it needs no NIC or Click
// scaffolding because the paper's SYN_MAX performs "no other processing
// but consecutive memory accesses at the highest possible rate".
// It implements hw.PacketSource.
type Source struct {
	cfg    Config
	region mem.Region
	r      *rng.RNG
	lines  int
}

// NewSource allocates the flow's region from arena.
func NewSource(arena *mem.Arena, cfg Config) *Source {
	cfg = cfg.withDefaults()
	region := mem.NewRegion(arena, cfg.RegionBytes/hw.LineSize, hw.LineSize, false)
	return &Source{
		cfg:    cfg,
		region: region,
		r:      rng.New(cfg.Seed),
		lines:  region.Count,
	}
}

// NewMaxSource returns the SYN_MAX flow: back-to-back random reads.
func NewMaxSource(arena *mem.Arena, seed uint64) *Source {
	return NewSource(arena, Config{Seed: seed, ComputePerAccess: 0})
}

// Config returns the source's effective configuration.
func (s *Source) Config() Config { return s.cfg }

// EmitPacket implements hw.PacketSource. The random reads form an
// independent address stream, which an out-of-order core overlaps —
// that memory-level parallelism is what lets the paper's SYN flows push
// competing references into the hundreds of millions per second.
//
//dataplane:stamped raw source ops carry Func only; synth.Element.Process re-stamps Elem in place
//dataplane:hotpath
func (s *Source) EmitPacket(buf []hw.Op) []hw.Op {
	for i := 0; i < s.cfg.AccessesPerPacket; i++ {
		if k := s.cfg.ComputePerAccess; k > 0 {
			buf = append(buf, hw.Op{Kind: hw.OpCompute, Cycles: uint32(k), Instrs: uint32(k), Func: fnSyn})
		}
		addr := s.region.Addr(s.r.Intn(s.lines))
		buf = append(buf, hw.Op{Kind: hw.OpLoadStream, Addr: addr, Func: fnSyn})
	}
	return buf
}

// Element is the synthetic load as a Click element, for flows that mix
// real packet processing with synthetic memory pressure — e.g. the
// "hidden aggressiveness" scenario of Section 4 where a flow behaves like
// a firewall until a trigger switches it to SYN_MAX behaviour.
type Element struct {
	src *Source
	// TriggerAfter activates the synthetic accesses only after this many
	// packets have been processed; 0 means always active.
	TriggerAfter uint64
	seen         uint64
}

// NewElement wraps cfg as a Click element allocating from arena.
func NewElement(arena *mem.Arena, cfg Config, triggerAfter uint64) *Element {
	return &Element{src: NewSource(arena, cfg), TriggerAfter: triggerAfter}
}

// Class implements click.Element.
func (e *Element) Class() string { return "Syn" }

// Active reports whether the synthetic load has started firing.
func (e *Element) Active() bool { return e.seen > e.TriggerAfter }

// Process implements click.Element.
//
//dataplane:stamped re-stamps the source's raw ops with ctx.Elem() immediately after EmitPacket (the PR 7 fix)
func (e *Element) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	e.seen++
	if e.seen <= e.TriggerAfter {
		return click.Continue
	}
	old := ctx.SetFunc(fnSyn)
	start := len(ctx.Ops)
	ctx.Ops = e.src.EmitPacket(ctx.Ops)
	// Source.EmitPacket appends raw ops (it predates per-element
	// attribution); stamp them with this element's slot so the synthetic
	// load shows up under the element, not the flow's overhead cell.
	for i := start; i < len(ctx.Ops); i++ {
		ctx.Ops[i].Elem = ctx.Elem()
	}
	ctx.SetFunc(old)
	return click.Continue
}

// Stat implements click.Stats.
func (e *Element) Stat(name string) (uint64, bool) {
	switch name {
	case "seen":
		return e.seen, true
	}
	return 0, false
}

func init() {
	click.Register("Syn", func(env *click.Env, args click.Args) (interface{}, error) {
		region, err := args.Int("REGION", 0)
		if err != nil {
			return nil, err
		}
		accesses, err := args.Int("ACCESSES", 0)
		if err != nil {
			return nil, err
		}
		compute, err := args.Int("COMPUTE", 0)
		if err != nil {
			return nil, err
		}
		trigger, err := args.Uint64("TRIGGER", 0)
		if err != nil {
			return nil, err
		}
		return NewElement(env.Arena, Config{
			Seed:              env.Seed,
			RegionBytes:       region,
			AccessesPerPacket: accesses,
			ComputePerAccess:  compute,
		}, trigger), nil
	})
}
