package synth

import (
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

func TestSourceEmitsConfiguredMix(t *testing.T) {
	arena := mem.NewArena(0)
	s := NewSource(arena, Config{Seed: 1, RegionBytes: 1 << 20, AccessesPerPacket: 8, ComputePerAccess: 50})
	ops := s.EmitPacket(nil)
	var loads, computes int
	for _, op := range ops {
		switch op.Kind {
		case hw.OpLoadStream:
			loads++
		case hw.OpCompute:
			computes++
			if op.Cycles != 50 {
				t.Fatalf("compute burst = %d cycles, want 50", op.Cycles)
			}
		}
	}
	if loads != 8 || computes != 8 {
		t.Fatalf("ops = %d loads / %d computes, want 8/8", loads, computes)
	}
}

func TestMaxSourceIsPureLoads(t *testing.T) {
	arena := mem.NewArena(0)
	s := NewMaxSource(arena, 2)
	ops := s.EmitPacket(nil)
	if len(ops) != s.Config().AccessesPerPacket {
		t.Fatalf("ops = %d, want %d", len(ops), s.Config().AccessesPerPacket)
	}
	for _, op := range ops {
		if op.Kind != hw.OpLoadStream {
			t.Fatalf("SYN_MAX emitted kind %d; must be stream loads only", op.Kind)
		}
	}
}

func TestAccessesStayInRegion(t *testing.T) {
	arena := mem.NewArena(1)
	size := 1 << 20
	s := NewSource(arena, Config{Seed: 3, RegionBytes: size, AccessesPerPacket: 64})
	var ops []hw.Op
	for i := 0; i < 50; i++ {
		ops = s.EmitPacket(ops[:0])
		for _, op := range ops {
			if op.Kind != hw.OpLoadStream {
				continue
			}
			if hw.DomainOf(op.Addr) != 1 {
				t.Fatalf("access %#x outside domain 1", op.Addr)
			}
		}
	}
}

func TestAccessesCoverRegionUniformly(t *testing.T) {
	arena := mem.NewArena(0)
	size := 64 * hw.LineSize * 4 // 256 lines
	s := NewSource(arena, Config{Seed: 4, RegionBytes: size, AccessesPerPacket: 64})
	counts := make(map[hw.Addr]int)
	var ops []hw.Op
	for i := 0; i < 100; i++ {
		ops = s.EmitPacket(ops[:0])
		for _, op := range ops {
			counts[op.Addr]++
		}
	}
	if len(counts) < 200 {
		t.Fatalf("only %d of 256 lines ever touched; not uniform", len(counts))
	}
}

func TestDeterministicStreams(t *testing.T) {
	mk := func() []hw.Op {
		s := NewSource(mem.NewArena(0), Config{Seed: 9, RegionBytes: 1 << 20})
		var ops []hw.Op
		for i := 0; i < 10; i++ {
			ops = s.EmitPacket(ops)
		}
		return ops
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestElementTrigger(t *testing.T) {
	arena := mem.NewArena(0)
	el := NewElement(arena, Config{Seed: 5, RegionBytes: 1 << 20, AccessesPerPacket: 4}, 3)
	var ctx click.Ctx
	p := &click.Packet{Data: make([]byte, 64), Addr: 0x1000}

	for i := 0; i < 3; i++ {
		ctx.Ops = ctx.Ops[:0]
		if v := el.Process(&ctx, p); v != click.Continue {
			t.Fatalf("verdict = %v", v)
		}
		if len(ctx.Ops) != 0 {
			t.Fatalf("packet %d: element active before trigger", i)
		}
		if el.Active() {
			t.Fatal("Active() true before trigger")
		}
	}
	ctx.Ops = ctx.Ops[:0]
	el.Process(&ctx, p)
	if len(ctx.Ops) != 4 {
		t.Fatalf("post-trigger ops = %d, want 4", len(ctx.Ops))
	}
	if !el.Active() {
		t.Fatal("Active() false after trigger")
	}
	if v, ok := el.Stat("seen"); !ok || v != 4 {
		t.Fatalf("seen = %d/%v", v, ok)
	}
}

func TestElementAlwaysActiveWithZeroTrigger(t *testing.T) {
	el := NewElement(mem.NewArena(0), Config{Seed: 6, RegionBytes: 1 << 20, AccessesPerPacket: 2}, 0)
	var ctx click.Ctx
	el.Process(&ctx, &click.Packet{Data: make([]byte, 64)})
	if len(ctx.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(ctx.Ops))
	}
}
