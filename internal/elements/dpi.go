package elements

import (
	"encoding/binary"
	"fmt"
	"strings"

	"pktpredict/internal/click"
	"pktpredict/internal/dpi"
	"pktpredict/internal/hw"
	"pktpredict/internal/netpkt"
)

// The IDS element family. The three detectors deliberately span the
// cost spectrum the ROADMAP calls out: SignatureClassifier is the cheap
// always-on fast path (a few cycles per payload byte, every packet),
// EntropyGate is the expensive slow path (hundreds of nanoseconds, only
// for signature matches), and BanTable is the second large mutable
// state table (an LRU verdict cache keyed by source address). Chained —
// match steers to entropy, high entropy steers to the ban table — they
// give one flow a per-packet cost distribution with a long tail, which
// is exactly the regime that stresses throughput prediction and
// per-element attribution.

var (
	fnSigScan = hw.RegisterFunc("signature_classifier")
	fnEntropy = hw.RegisterFunc("entropy_gate")
	fnBan     = hw.RegisterFunc("ban_table")
)

// payloadOffset is where generated payload bytes start: past the IPv4
// header, the ports, and the 4 zero bytes (see trafficgen).
const payloadOffset = netpkt.IPv4HeaderLen + 8

// Modelled costs. The scan charges per payload byte (one DFA transition
// plus an output check); every sigTableStride bytes it also touches one
// automaton row, modelling the walk's data-dependent row reuse without
// emitting an op per byte. The entropy estimate charges a base
// (histogram reset plus the per-symbol log2 pass) and a per-sample
// increment; at the default 512-sample window the total is ~2.7k cycles
// — just under a microsecond at the paper's clock, the deliberately
// expensive detector.
const (
	sigScanCyclesPerByte = 2
	sigScanInstrsPerByte = 3
	sigTableStride       = 16
	entropyBaseCompute   = 700
	entropyBaseInstrs    = 900
	entropySampleCycles  = 4
	entropySampleInstrs  = 5
)

// SignatureClassifier scans every payload byte through a compiled
// multi-pattern matcher and steers matches out port 1 (clean traffic
// exits port 0). The pattern set comes either from an explicit SIGS
// list or derived from a seed shared with the traffic generator.
type SignatureClassifier struct {
	table *dpi.SigTable

	Scanned uint64
	Matched uint64
}

// NewSignatureClassifier builds the classifier over a compiled table.
func NewSignatureClassifier(env *click.Env, patterns [][]byte) (*SignatureClassifier, error) {
	table, err := dpi.NewSigTable(env.Arena, patterns)
	if err != nil {
		return nil, err
	}
	return &SignatureClassifier{table: table}, nil
}

// Table exposes the compiled matcher for tests.
func (s *SignatureClassifier) Table() *dpi.SigTable { return s.table }

// Class implements click.Element.
func (s *SignatureClassifier) Class() string { return "SignatureClassifier" }

// NumOutputs implements click.Router: port 0 clean, port 1 match.
func (s *SignatureClassifier) NumOutputs() int { return 2 }

// Process implements click.Element: scan the payload, trace the scan.
func (s *SignatureClassifier) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnSigScan)
	defer ctx.SetFunc(old)
	s.Scanned++
	if len(p.Data) <= payloadOffset {
		return click.Output(0)
	}
	payload := p.Data[payloadOffset:]
	ctx.LoadBytes(p.Addr+payloadOffset, len(payload))
	if s.table.HasRegion() {
		// The automaton rows the walk revisits, sampled one touch per
		// stride with the row picked by the payload byte steering it —
		// data-dependent like the real transition stream, without an op
		// per byte.
		for i := 0; i < len(payload); i += sigTableStride {
			ctx.Load(s.table.RowAddr(int(payload[i])))
		}
	}
	ctx.Compute(uint32(len(payload)*sigScanCyclesPerByte), uint32(len(payload)*sigScanInstrsPerByte))
	if s.table.Match(payload) >= 0 {
		s.Matched++
		return click.Output(1)
	}
	return click.Output(0)
}

// Stat implements click.Stats.
func (s *SignatureClassifier) Stat(name string) (uint64, bool) {
	switch name {
	case "scanned":
		return s.Scanned, true
	case "matched":
		return s.Matched, true
	case "states":
		return uint64(s.table.States()), true
	}
	return 0, false
}

// EntropyGate estimates each payload's Shannon entropy over a sampled
// window and steers estimates at or above the threshold (in bits per
// byte) out port 1 — high-entropy payloads where a signature also hit
// are the encrypted/compressed-exfiltration suspects. Below-threshold
// traffic exits port 0.
type EntropyGate struct {
	est       dpi.Entropy
	threshold float64
	window    int

	Passed  uint64
	Flagged uint64
}

// NewEntropyGate builds the gate; window <= 0 uses dpi.EntropyWindow.
func NewEntropyGate(threshold float64, window int) (*EntropyGate, error) {
	if threshold < 0 || threshold > 8 {
		return nil, fmt.Errorf("elements: EntropyGate THRESHOLD %v outside [0,8] bits", threshold)
	}
	if window <= 0 {
		window = dpi.EntropyWindow
	}
	return &EntropyGate{threshold: threshold, window: window}, nil
}

// Class implements click.Element.
func (e *EntropyGate) Class() string { return "EntropyGate" }

// NumOutputs implements click.Router: port 0 pass, port 1 flagged.
func (e *EntropyGate) NumOutputs() int { return 2 }

// Process implements click.Element.
func (e *EntropyGate) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnEntropy)
	defer ctx.SetFunc(old)
	if len(p.Data) <= payloadOffset {
		e.Passed++
		return click.Output(0)
	}
	payload := p.Data[payloadOffset:]
	samples := dpi.SampleCount(len(payload), e.window)
	// The strided sample walk touches essentially every payload line
	// (stride < line size at any realistic window), then burns the
	// histogram + log pass.
	ctx.LoadBytes(p.Addr+payloadOffset, len(payload))
	ctx.Compute(uint32(entropyBaseCompute+samples*entropySampleCycles),
		uint32(entropyBaseInstrs+samples*entropySampleInstrs))
	if e.est.EstimateBits(payload, e.window) >= e.threshold {
		e.Flagged++
		return click.Output(1)
	}
	e.Passed++
	return click.Output(0)
}

// Stat implements click.Stats.
func (e *EntropyGate) Stat(name string) (uint64, bool) {
	switch name {
	case "passed":
		return e.Passed, true
	case "flagged":
		return e.Flagged, true
	}
	return 0, false
}

// BanTableElement wraps the dpi.BanTable LRU verdict table as a click
// Router: each packet's source address is checked and recorded; repeat
// offenders (already in the table) exit port 1 — typically into a
// Discard — and first sightings are inserted and exit port 0. Placed at
// the tail of the suspect path it drops sources that keep triggering
// the upstream detectors while letting first strikes through.
type BanTableElement struct {
	table *dpi.BanTable

	Admitted uint64
	Banned   uint64
	Short    uint64
}

// NewBanTableElement allocates the ban table from env's arena.
func NewBanTableElement(env *click.Env, entries int) (*BanTableElement, error) {
	table, err := dpi.NewBanTable(env.Arena, entries)
	if err != nil {
		return nil, err
	}
	return &BanTableElement{table: table}, nil
}

// Table exposes the underlying ban table for tests.
func (b *BanTableElement) Table() *dpi.BanTable { return b.table }

// Class implements click.Element.
func (b *BanTableElement) Class() string { return "BanTable" }

// NumOutputs implements click.Router: port 0 pass, port 1 banned.
func (b *BanTableElement) NumOutputs() int { return 2 }

// Process implements click.Element.
func (b *BanTableElement) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnBan)
	defer ctx.SetFunc(old)
	if len(p.Data) < netpkt.IPv4HeaderLen {
		b.Short++
		return click.Drop
	}
	ctx.Load(p.Addr) // source address sits in the header's first line
	src := binary.BigEndian.Uint32(p.Data[12:16])
	if b.table.Check(ctx, src) {
		b.Banned++
		return click.Output(1)
	}
	b.Admitted++
	return click.Output(0)
}

// Stat implements click.Stats.
func (b *BanTableElement) Stat(name string) (uint64, bool) {
	switch name {
	case "admitted":
		return b.Admitted, true
	case "banned":
		return b.Banned, true
	case "entries":
		return uint64(b.table.Occupied()), true
	case "evictions":
		return b.table.Evictions, true
	}
	return 0, false
}

// parseSigList parses a SIGS value: hex-encoded patterns separated by
// '|' (commas split click arguments, so they cannot appear in a list).
func parseSigList(s string) ([][]byte, error) {
	var out [][]byte
	for _, item := range strings.Split(s, "|") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if len(item)%2 != 0 {
			return nil, fmt.Errorf("elements: SIGS pattern %q: hex digits must come in pairs", item)
		}
		b := make([]byte, len(item)/2)
		for i := 0; i < len(item); i += 2 {
			hi, ok1 := hexDigit(item[i])
			lo, ok2 := hexDigit(item[i+1])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("elements: SIGS pattern %q: bad hex digit", item)
			}
			b[i/2] = hi<<4 | lo
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("elements: SIGS lists no patterns")
	}
	return out, nil
}

func init() {
	click.Register("SignatureClassifier", func(env *click.Env, args click.Args) (interface{}, error) {
		var patterns [][]byte
		if sigs := args.String("SIGS", ""); sigs != "" {
			var err error
			patterns, err = parseSigList(sigs)
			if err != nil {
				return nil, err
			}
		} else {
			n, err := args.Int("PATTERNS", 16)
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, fmt.Errorf("elements: SignatureClassifier PATTERNS must be positive")
			}
			seed, err := args.Uint64("SIG_SEED", env.Seed)
			if err != nil {
				return nil, err
			}
			patterns = dpi.Signatures(seed, n)
		}
		return NewSignatureClassifier(env, patterns)
	})
	click.Register("EntropyGate", func(env *click.Env, args click.Args) (interface{}, error) {
		threshold, err := args.Float64("THRESHOLD", 6.5)
		if err != nil {
			return nil, err
		}
		window, err := args.Int("WINDOW", 0)
		if err != nil {
			return nil, err
		}
		return NewEntropyGate(threshold, window)
	})
	click.Register("BanTable", func(env *click.Env, args click.Args) (interface{}, error) {
		entries, err := args.Int("ENTRIES", 16384)
		if err != nil {
			return nil, err
		}
		return NewBanTableElement(env, entries)
	})
}
