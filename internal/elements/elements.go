// Package elements provides the standard Click-style elements the
// workloads are composed from: device endpoints (FromDevice/ToDevice),
// IP-forwarding-path elements (CheckIPHeader, DecIPTTL), and utility
// elements (Counter, Discard, Control).
//
// Each element performs its real work on real packet bytes and emits the
// matching memory/compute trace through the click.Ctx, so its cache
// footprint in the simulated hierarchy follows from what it actually does.
package elements

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/dpi"
	"pktpredict/internal/hw"
	"pktpredict/internal/netpkt"
	"pktpredict/internal/nic"
	"pktpredict/internal/trafficgen"
)

// Attribution functions, matching the paper's OProfile symbol names where
// the paper names them (Figure 7).
var (
	fnFromDevice = hw.RegisterFunc("from_device")
	fnCheckIP    = hw.RegisterFunc("check_ip_header")
	fnDecTTL     = hw.RegisterFunc("dec_ip_ttl")
	fnToDevice   = hw.RegisterFunc("to_device")
	fnControl    = hw.RegisterFunc("control_element")
)

// Compute costs in cycles/instructions for the fixed per-packet work each
// element does beyond its memory accesses. They approximate the
// instruction counts of the corresponding Click elements on the paper's
// platform and are deliberately centralised for calibration. The receive
// costs are exported because the runtime's ring-fed receive path must
// charge exactly what FromDevice charges, or runtime profiles diverge
// from the offline solo profiles predictions are built on.
//
// The receive cost is split so batching can amortize it: the poll part
// (checking the RX ring's state and setting up a burst) is charged once
// per batch of BATCH packets, the per-packet part for every packet. At
// batch 1 the sum — poll + per-packet = 60 cycles / 50 instrs — is
// exactly the historical unbatched FromDevice cost, so scenarios without
// a BATCH key charge what they always charged.
const (
	RxPollCompute  = 20
	RxPollInstrs   = 15
	RxCompute      = 40
	RxInstrs       = 35
	checkIPCompute = 60
	checkIPInstrs  = 50
	decTTLCompute  = 25
	decTTLInstrs   = 20
	txCompute      = 45
	txInstrs       = 40
)

// FromDevice is a pipeline source: it models one NIC receive queue. Each
// Pull takes a buffer from the per-core pool, writes a generated packet
// into it (the NIC's DMA, delivered into the L3 via direct cache access),
// consumes an RX descriptor, and hands the packet to the pipeline.
type FromDevice struct {
	pool      *nic.BufferPool
	ring      *nic.Ring
	gen       trafficgen.Generator
	spec      trafficgen.Spec
	remaining int64 // -1 = unbounded
	batch     int   // packets per RX poll; the poll cost amortizes over it
	sincePoll int
	Pulled    uint64
}

// FromDeviceConfig configures a FromDevice source.
type FromDeviceConfig struct {
	Traffic trafficgen.Spec
	// Buffers is the pool size (default 512, Click's per-core default).
	Buffers int
	// RingSize is the RX descriptor ring size (default 256).
	RingSize int
	// Count bounds the number of packets delivered; 0 means unbounded.
	Count int64
	// Batch is the number of packets received per RX poll; the poll part
	// of the receive cost is charged once per batch. 0 defaults to the
	// environment's RxBatch (itself defaulting to 1, the unbatched
	// historical behaviour).
	Batch int
}

// NewFromDevice builds the source, allocating its pool and ring from env's
// arena so all per-flow state is NUMA-local.
func NewFromDevice(env *click.Env, cfg FromDeviceConfig) (*FromDevice, error) {
	if cfg.Buffers == 0 {
		cfg.Buffers = 512
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 256
	}
	if cfg.Traffic.Seed == 0 {
		cfg.Traffic.Seed = env.Seed
	}
	if cfg.Batch == 0 {
		cfg.Batch = env.RxBatch
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if err := cfg.Traffic.Validate(); err != nil {
		return nil, err
	}
	bufSize := cfg.Traffic.Size
	if bufSize < trafficgen.MinPacketSize {
		bufSize = trafficgen.MinPacketSize
	}
	// Buffers are rounded up to the next 512-byte boundary like real
	// socket buffers, so distinct packets never share lines.
	bufSize = (bufSize + 511) &^ 511
	remaining := cfg.Count
	if remaining == 0 {
		remaining = -1
	}
	spec := cfg.Traffic
	if spec.Size == 0 {
		spec.Size = trafficgen.MinPacketSize
	}
	return &FromDevice{
		pool:      nic.NewBufferPool(env.Arena, cfg.Buffers, bufSize),
		ring:      nic.NewRing(env.Arena, cfg.RingSize),
		gen:       trafficgen.New(cfg.Traffic),
		spec:      spec,
		remaining: remaining,
		batch:     cfg.Batch,
	}, nil
}

// Spec returns the source's resolved traffic spec (seed and size
// defaults applied). The concurrent runtime, which replaces the source
// with a receive ring, reads it to generate equivalent traffic — same
// packet size and payload shaping — so runtime behaviour matches the
// offline profile the graph's own source produced.
func (fd *FromDevice) Spec() trafficgen.Spec { return fd.spec }

// Class implements click.Source.
func (fd *FromDevice) Class() string { return "FromDevice" }

// Pull implements click.Source.
//
//dataplane:stamped source-side DMA and ring ops are flow overhead (slot 0) by design
func (fd *FromDevice) Pull(ctx *click.Ctx) *click.Packet {
	if fd.remaining == 0 {
		return nil
	}
	if fd.remaining > 0 {
		fd.remaining--
	}
	old := ctx.SetFunc(fnFromDevice)
	defer ctx.SetFunc(old)

	idx, data, addr := fd.pool.Get(ctx)
	n := fd.gen.Next(data)
	ctx.DMABytes(addr, n) // NIC writes the packet into the cache (DCA)
	fd.ring.Consume(ctx)  // core reads the RX descriptor
	if fd.sincePoll == 0 {
		// First packet of an RX burst pays the poll; the rest of the
		// batch rides on it.
		ctx.Compute(RxPollCompute, RxPollInstrs)
	}
	fd.sincePoll++
	if fd.sincePoll == fd.batch {
		fd.sincePoll = 0
	}
	ctx.Compute(RxCompute, RxInstrs)
	fd.Pulled++
	return &click.Packet{
		Data:      data[:n],
		Addr:      addr,
		Recycler:  fd,
		PoolIndex: idx,
	}
}

// Recycle implements click.Recycler, returning the buffer to the pool.
func (fd *FromDevice) Recycle(ctx *click.Ctx, p *click.Packet) {
	fd.pool.Put(ctx, p.PoolIndex)
}

// Pool exposes the buffer pool for tests and diagnostics.
func (fd *FromDevice) Pool() *nic.BufferPool { return fd.pool }

// ToDevice models one NIC transmit queue: it posts a TX descriptor and
// consumes the packet.
type ToDevice struct {
	ring *nic.Ring
	Sent uint64
}

// NewToDevice builds the sink with a TX ring of ringSize descriptors
// (default 256 when 0).
func NewToDevice(env *click.Env, ringSize int) *ToDevice {
	if ringSize == 0 {
		ringSize = 256
	}
	return &ToDevice{ring: nic.NewRing(env.Arena, ringSize)}
}

// Class implements click.Element.
func (td *ToDevice) Class() string { return "ToDevice" }

// Process implements click.Element.
func (td *ToDevice) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnToDevice)
	defer ctx.SetFunc(old)
	td.ring.Produce(ctx)
	ctx.Compute(txCompute, txInstrs)
	td.Sent++
	return click.Consume
}

// Stat implements click.Stats.
func (td *ToDevice) Stat(name string) (uint64, bool) {
	if name == "sent" {
		return td.Sent, true
	}
	return 0, false
}

// CheckIPHeader validates the IPv4 header exactly as Click's element of
// the same name: version, header length, total length, checksum. Invalid
// packets are dropped.
type CheckIPHeader struct {
	Ok, Bad uint64
}

// Class implements click.Element.
func (c *CheckIPHeader) Class() string { return "CheckIPHeader" }

// Process implements click.Element.
func (c *CheckIPHeader) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnCheckIP)
	defer ctx.SetFunc(old)
	ctx.LoadBytes(p.Addr, netpkt.IPv4HeaderLen)
	ctx.Compute(checkIPCompute, checkIPInstrs)
	if _, err := netpkt.ParseIPv4(p.Data); err != nil {
		c.Bad++
		return click.Drop
	}
	c.Ok++
	return click.Continue
}

// Stat implements click.Stats.
func (c *CheckIPHeader) Stat(name string) (uint64, bool) {
	switch name {
	case "ok":
		return c.Ok, true
	case "bad":
		return c.Bad, true
	}
	return 0, false
}

// DecIPTTL decrements the TTL and incrementally updates the header
// checksum (RFC 1624), dropping expired packets, as in the paper's "full
// IP forwarding" path.
type DecIPTTL struct {
	Expired uint64
}

// Class implements click.Element.
func (d *DecIPTTL) Class() string { return "DecIPTTL" }

// Process implements click.Element.
func (d *DecIPTTL) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnDecTTL)
	defer ctx.SetFunc(old)
	ctx.Load(p.Addr)
	ctx.Store(p.Addr)
	ctx.Compute(decTTLCompute, decTTLInstrs)
	if err := netpkt.DecTTL(p.Data); err != nil {
		d.Expired++
		return click.Drop
	}
	return click.Continue
}

// Counter counts packets and bytes through a bookkeeping line, like
// Click's Counter element.
type Counter struct {
	addr    hw.Addr
	Packets uint64
	Bytes   uint64
}

// NewCounter allocates the counter's bookkeeping line from env's arena.
func NewCounter(env *click.Env) *Counter {
	return &Counter{addr: env.Arena.Alloc(hw.LineSize, hw.LineSize)}
}

// Class implements click.Element.
func (c *Counter) Class() string { return "Counter" }

// Process implements click.Element.
func (c *Counter) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	ctx.Load(c.addr)
	ctx.Store(c.addr)
	ctx.Compute(4, 4)
	c.Packets++
	c.Bytes += uint64(len(p.Data))
	return click.Continue
}

// Stat implements click.Stats.
func (c *Counter) Stat(name string) (uint64, bool) {
	switch name {
	case "packets":
		return c.Packets, true
	case "bytes":
		return c.Bytes, true
	}
	return 0, false
}

// Discard drops every packet, like Click's element of the same name.
type Discard struct{ Count uint64 }

// Class implements click.Element.
func (d *Discard) Class() string { return "Discard" }

// Process implements click.Element.
func (d *Discard) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	d.Count++
	return click.Drop
}

// Control is the paper's "control element" (Section 4, containing hidden
// aggressiveness): a configurable number of simple CPU operations at the
// head of a flow that slows it down, throttling the rate at which the
// flow performs memory accesses. The delay is adjustable at run time by
// the monitoring loop in package core.
type Control struct {
	delay uint32
}

// NewControl builds a control element with an initial delay in cycles.
func NewControl(delayCycles uint32) *Control { return &Control{delay: delayCycles} }

// Class implements click.Element.
func (c *Control) Class() string { return "Control" }

// Process implements click.Element.
func (c *Control) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	if d := c.delay; d > 0 {
		old := ctx.SetFunc(fnControl)
		ctx.Compute(d, d) // simple ALU ops: one instruction per cycle
		ctx.SetFunc(old)
	}
	return click.Continue
}

// Delay returns the current delay in cycles per packet.
func (c *Control) Delay() uint32 { return c.delay }

// SetDelay updates the delay in cycles per packet.
func (c *Control) SetDelay(cycles uint32) { c.delay = cycles }

func init() {
	click.Register("FromDevice", func(env *click.Env, args click.Args) (interface{}, error) {
		size, err := args.Int("SIZE", 0)
		if err != nil {
			return nil, err
		}
		seed, err := args.Uint64("SEED", 0)
		if err != nil {
			return nil, err
		}
		flows, err := args.Int("FLOWS", 0)
		if err != nil {
			return nil, err
		}
		bufs, err := args.Int("BUFFERS", 0)
		if err != nil {
			return nil, err
		}
		count, err := args.Int("COUNT", 0)
		if err != nil {
			return nil, err
		}
		batch, err := args.Int("BATCH", 0)
		if err != nil {
			return nil, err
		}
		spec := trafficgen.Spec{Seed: seed, Size: size, Flows: flows}
		// DPI payload shaping: the generator derives the same signature
		// set as a seed-configured SignatureClassifier, so SIG_HIT is the
		// scenario's exact match rate.
		sigHit, err := args.Float64("SIG_HIT", 0)
		if err != nil {
			return nil, err
		}
		sigShift, err := args.Float64("SIG_SHIFT", 0)
		if err != nil {
			return nil, err
		}
		if sigHit > 0 || sigShift > 0 {
			sigCount, err := args.Int("SIG_COUNT", 16)
			if err != nil {
				return nil, err
			}
			if sigCount <= 0 {
				return nil, fmt.Errorf("elements: FromDevice SIG_COUNT must be positive")
			}
			sigSeed, err := args.Uint64("SIG_SEED", env.Seed)
			if err != nil {
				return nil, err
			}
			shiftAfter, err := args.Int("SIG_SHIFT_AFTER", 0)
			if err != nil {
				return nil, err
			}
			spec.Signatures = dpi.Signatures(sigSeed, sigCount)
			spec.SigHit = sigHit
			spec.SigHitShift = sigShift
			spec.SigShiftAfter = int64(shiftAfter)
		}
		lowEnt, err := args.Float64("LOW_ENTROPY", 0)
		if err != nil {
			return nil, err
		}
		lowBits, err := args.Int("LOW_ENTROPY_BITS", 0)
		if err != nil {
			return nil, err
		}
		spec.LowEntropy = lowEnt
		spec.LowEntropyBits = lowBits
		return NewFromDevice(env, FromDeviceConfig{
			Traffic: spec,
			Buffers: bufs,
			Count:   int64(count),
			Batch:   batch,
		})
	})
	click.Register("ToDevice", func(env *click.Env, args click.Args) (interface{}, error) {
		ring, err := args.Int("RING", 0)
		if err != nil {
			return nil, err
		}
		return NewToDevice(env, ring), nil
	})
	click.Register("CheckIPHeader", func(env *click.Env, args click.Args) (interface{}, error) {
		return &CheckIPHeader{}, nil
	})
	click.Register("DecIPTTL", func(env *click.Env, args click.Args) (interface{}, error) {
		return &DecIPTTL{}, nil
	})
	click.Register("Counter", func(env *click.Env, args click.Args) (interface{}, error) {
		return NewCounter(env), nil
	})
	click.Register("Discard", func(env *click.Env, args click.Args) (interface{}, error) {
		return &Discard{}, nil
	})
	click.Register("Control", func(env *click.Env, args click.Args) (interface{}, error) {
		d, err := args.Int("DELAY", 0)
		if err != nil {
			return nil, err
		}
		if d < 0 {
			return nil, fmt.Errorf("elements: Control DELAY must be non-negative")
		}
		return NewControl(uint32(d)), nil
	})
}
