package elements

import (
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
	"pktpredict/internal/trafficgen"
)

func newEnv() *click.Env { return &click.Env{Arena: mem.NewArena(0), Seed: 42} }

func newFD(t *testing.T, cfg FromDeviceConfig) *FromDevice {
	t.Helper()
	fd, err := NewFromDevice(newEnv(), cfg)
	if err != nil {
		t.Fatalf("NewFromDevice: %v", err)
	}
	return fd
}

func TestFromDeviceDeliversValidPackets(t *testing.T) {
	fd := newFD(t, FromDeviceConfig{Count: 5})
	var ctx click.Ctx
	for i := 0; i < 5; i++ {
		p := fd.Pull(&ctx)
		if p == nil {
			t.Fatalf("packet %d: unexpected nil", i)
		}
		if _, err := netpkt.ParseIPv4(p.Data); err != nil {
			t.Fatalf("packet %d invalid: %v", i, err)
		}
		p.Recycler.Recycle(&ctx, p)
	}
	if p := fd.Pull(&ctx); p != nil {
		t.Fatal("COUNT-bounded source must stop")
	}
}

func TestFromDeviceEmitsDMAAndDescriptorTrace(t *testing.T) {
	fd := newFD(t, FromDeviceConfig{Count: 1})
	var ctx click.Ctx
	fd.Pull(&ctx)
	var dma, loads int
	for _, op := range ctx.Ops {
		switch op.Kind {
		case hw.OpDMAWrite:
			dma++
		case hw.OpLoad:
			loads++
		}
	}
	if dma != 1 { // 64-byte packet = 1 line
		t.Fatalf("DMA ops = %d, want 1", dma)
	}
	if loads == 0 {
		t.Fatal("descriptor/pool reads missing from trace")
	}
}

func TestFromDeviceRecyclesBuffers(t *testing.T) {
	fd := newFD(t, FromDeviceConfig{Buffers: 2, Count: 100})
	var ctx click.Ctx
	for i := 0; i < 100; i++ {
		p := fd.Pull(&ctx)
		p.Recycler.Recycle(&ctx, p)
		ctx.Ops = ctx.Ops[:0]
	}
	if fd.Pool().Available() != 2 {
		t.Fatalf("pool leaked: %d of 2 available", fd.Pool().Available())
	}
}

func TestFromDeviceInvalidTraffic(t *testing.T) {
	_, err := NewFromDevice(newEnv(), FromDeviceConfig{Traffic: trafficgen.Spec{Size: 8}})
	if err == nil {
		t.Fatal("expected error for undersized packets")
	}
}

func mkPacket(t *testing.T) *click.Packet {
	t.Helper()
	b := make([]byte, 64)
	netpkt.WriteIPv4(b, netpkt.IPv4Header{TotalLen: 64, TTL: 64, Proto: netpkt.ProtoUDP, Src: 1, Dst: 2})
	return &click.Packet{Data: b, Addr: 0x10000}
}

func TestCheckIPHeaderAcceptsValid(t *testing.T) {
	el := &CheckIPHeader{}
	var ctx click.Ctx
	if v := el.Process(&ctx, mkPacket(t)); v != click.Continue {
		t.Fatalf("verdict = %v, want continue", v)
	}
	if el.Ok != 1 || el.Bad != 0 {
		t.Fatalf("counters = %d/%d", el.Ok, el.Bad)
	}
}

func TestCheckIPHeaderDropsCorrupt(t *testing.T) {
	el := &CheckIPHeader{}
	var ctx click.Ctx
	p := mkPacket(t)
	p.Data[12] ^= 0xff // corrupt source, checksum now wrong
	if v := el.Process(&ctx, p); v != click.Drop {
		t.Fatalf("verdict = %v, want drop", v)
	}
	if v, ok := el.Stat("bad"); !ok || v != 1 {
		t.Fatalf("bad stat = %d/%v", v, ok)
	}
}

func TestDecIPTTLDecrementsAndKeepsChecksumValid(t *testing.T) {
	el := &DecIPTTL{}
	var ctx click.Ctx
	p := mkPacket(t)
	if v := el.Process(&ctx, p); v != click.Continue {
		t.Fatalf("verdict = %v", v)
	}
	h, err := netpkt.ParseIPv4(p.Data)
	if err != nil {
		t.Fatalf("header invalid after DecIPTTL: %v", err)
	}
	if h.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", h.TTL)
	}
}

func TestDecIPTTLDropsExpired(t *testing.T) {
	el := &DecIPTTL{}
	var ctx click.Ctx
	p := mkPacket(t)
	p.Data[8] = 1
	p.Data[10], p.Data[11] = 0, 0
	cs := netpkt.Checksum(p.Data[:20])
	p.Data[10], p.Data[11] = byte(cs>>8), byte(cs)
	if v := el.Process(&ctx, p); v != click.Drop {
		t.Fatalf("verdict = %v, want drop", v)
	}
	if el.Expired != 1 {
		t.Fatalf("expired = %d", el.Expired)
	}
}

func TestCounterCounts(t *testing.T) {
	c := NewCounter(newEnv())
	var ctx click.Ctx
	c.Process(&ctx, mkPacket(t))
	c.Process(&ctx, mkPacket(t))
	if c.Packets != 2 || c.Bytes != 128 {
		t.Fatalf("counter = %d pkts / %d bytes", c.Packets, c.Bytes)
	}
	if v, ok := c.Stat("bytes"); !ok || v != 128 {
		t.Fatalf("bytes stat = %d/%v", v, ok)
	}
}

func TestDiscardDrops(t *testing.T) {
	d := &Discard{}
	var ctx click.Ctx
	if v := d.Process(&ctx, mkPacket(t)); v != click.Drop {
		t.Fatalf("verdict = %v", v)
	}
}

func TestControlEmitsConfiguredDelay(t *testing.T) {
	c := NewControl(100)
	var ctx click.Ctx
	c.Process(&ctx, mkPacket(t))
	if len(ctx.Ops) != 1 || ctx.Ops[0].Cycles != 100 {
		t.Fatalf("ops = %+v, want one 100-cycle compute", ctx.Ops)
	}
	c.SetDelay(0)
	ctx.Ops = ctx.Ops[:0]
	c.Process(&ctx, mkPacket(t))
	if len(ctx.Ops) != 0 {
		t.Fatal("zero delay must emit nothing")
	}
	if c.Delay() != 0 {
		t.Fatalf("Delay = %d", c.Delay())
	}
}

func TestToDeviceConsumes(t *testing.T) {
	td := NewToDevice(newEnv(), 0)
	var ctx click.Ctx
	if v := td.Process(&ctx, mkPacket(t)); v != click.Consume {
		t.Fatalf("verdict = %v, want consume", v)
	}
	if v, ok := td.Stat("sent"); !ok || v != 1 {
		t.Fatalf("sent = %d/%v", v, ok)
	}
}

func TestConfigIntegration(t *testing.T) {
	cfg := `
		src :: FromDevice(SIZE 64, COUNT 10, SEED 3);
		src -> CheckIPHeader -> DecIPTTL -> Counter -> ToDevice;
	`
	pl, err := click.ParseConfig(newEnv(), "ipfwd", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	n := 0
	for len(pl.EmitPacket(nil)) > 0 {
		n++
		if n > 20 {
			t.Fatal("runaway pipeline")
		}
	}
	if n != 10 {
		t.Fatalf("packets = %d, want 10", n)
	}
	if v, _ := pl.Stat("Counter.packets"); v != 10 {
		t.Fatalf("Counter.packets = %d", v)
	}
	if v, _ := pl.Stat("ToDevice.sent"); v != 10 {
		t.Fatalf("ToDevice.sent = %d", v)
	}
}

func TestConfigControlElement(t *testing.T) {
	pl, err := click.ParseConfig(newEnv(), "t", `FromDevice(COUNT 1) -> Control(DELAY 50) -> ToDevice;`)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	ops := pl.EmitPacket(nil)
	found := false
	for _, op := range ops {
		if op.Kind == hw.OpCompute && op.Cycles == 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("Control delay not present in trace")
	}
}
