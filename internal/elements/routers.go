package elements

import (
	"fmt"
	"strconv"
	"strings"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/netpkt"
)

// Router elements steer packets among numbered output ports, turning a
// linear chain into a branching service graph. They are the ported core
// of Click's Classifier/IPClassifier/Tee/RoundRobinSwitch elements: real
// matching on real packet bytes, with the corresponding load/compute
// trace emitted per pattern evaluated.

var (
	fnClassifier   = hw.RegisterFunc("classifier")
	fnIPClassifier = hw.RegisterFunc("ip_classifier")
)

// Per-pattern evaluation costs: a handful of compares and branches.
const (
	classifyCompute = 6
	classifyInstrs  = 6
)

// bytePattern matches packet bytes at a fixed offset under a nibble
// mask, Click's Classifier pattern ("12/0800", wildcards as '?').
type bytePattern struct {
	catchAll bool
	offset   int
	value    []byte
	mask     []byte
}

func parseBytePattern(s string) (bytePattern, error) {
	if s == "-" {
		return bytePattern{catchAll: true}, nil
	}
	offStr, hexStr, ok := strings.Cut(s, "/")
	if !ok {
		return bytePattern{}, fmt.Errorf("elements: Classifier pattern %q is not offset/hex or -", s)
	}
	off, err := strconv.Atoi(offStr)
	if err != nil || off < 0 {
		return bytePattern{}, fmt.Errorf("elements: Classifier pattern %q: bad offset", s)
	}
	if hexStr == "" || len(hexStr)%2 != 0 {
		return bytePattern{}, fmt.Errorf("elements: Classifier pattern %q: hex bytes must come in pairs", s)
	}
	p := bytePattern{offset: off, value: make([]byte, len(hexStr)/2), mask: make([]byte, len(hexStr)/2)}
	for i := 0; i < len(hexStr); i += 2 {
		var v, m byte
		for j := 0; j < 2; j++ {
			c := hexStr[i+j]
			v <<= 4
			m <<= 4
			if c == '?' {
				continue
			}
			d, ok := hexDigit(c)
			if !ok {
				return bytePattern{}, fmt.Errorf("elements: Classifier pattern %q: bad hex digit %q", s, c)
			}
			v |= d
			m |= 0x0f
		}
		p.value[i/2] = v
		p.mask[i/2] = m
	}
	return p, nil
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func (p bytePattern) matches(data []byte) bool {
	if p.catchAll {
		return true
	}
	if p.offset+len(p.value) > len(data) {
		return false
	}
	for i := range p.value {
		if data[p.offset+i]&p.mask[i] != p.value[i] {
			return false
		}
	}
	return true
}

// Classifier routes each packet out the port of the first byte pattern
// it matches, dropping packets that match none — Click's Classifier.
// Patterns are positional arguments: "offset/hexbytes" (hex digits, '?'
// wildcards) or "-" for a catch-all.
type Classifier struct {
	patterns []bytePattern
	span     int // rightmost byte any pattern examines

	Matched []uint64 // per-port match counts
	NoMatch uint64
}

// NewClassifier builds a classifier from pattern strings.
func NewClassifier(patterns []string) (*Classifier, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("elements: Classifier needs at least one pattern")
	}
	c := &Classifier{Matched: make([]uint64, len(patterns))}
	for _, s := range patterns {
		p, err := parseBytePattern(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		if end := p.offset + len(p.value); end > c.span {
			c.span = end
		}
		c.patterns = append(c.patterns, p)
	}
	return c, nil
}

// Class implements click.Element.
func (c *Classifier) Class() string { return "Classifier" }

// NumOutputs implements click.Router: one port per pattern.
func (c *Classifier) NumOutputs() int { return len(c.patterns) }

// Process implements click.Element: it loads the examined packet range
// once, then evaluates patterns in order.
func (c *Classifier) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnClassifier)
	defer ctx.SetFunc(old)
	if c.span > 0 {
		n := c.span
		if n > len(p.Data) {
			n = len(p.Data)
		}
		ctx.LoadBytes(p.Addr, n)
	}
	for i, pat := range c.patterns {
		ctx.Compute(classifyCompute, classifyInstrs)
		if pat.matches(p.Data) {
			c.Matched[i]++
			return click.Output(i)
		}
	}
	c.NoMatch++
	return click.Drop
}

// Stat implements click.Stats: "nomatch" or "port<i>".
func (c *Classifier) Stat(name string) (uint64, bool) {
	if name == "nomatch" {
		return c.NoMatch, true
	}
	if rest, ok := strings.CutPrefix(name, "port"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 0 && i < len(c.Matched) {
			return c.Matched[i], true
		}
	}
	return 0, false
}

// ipPattern is one IPClassifier-lite pattern over the parsed 5-tuple.
type ipPattern struct {
	catchAll bool
	proto    uint8  // 0 = any IPv4
	dstPort  uint16 // 0 = any
}

func parseIPPattern(s string) (ipPattern, error) {
	switch s {
	case "-", "ip":
		return ipPattern{catchAll: true}, nil
	}
	protoStr, portStr, hasPort := strings.Cut(s, "/")
	var p ipPattern
	switch protoStr {
	case "tcp":
		p.proto = netpkt.ProtoTCP
	case "udp":
		p.proto = netpkt.ProtoUDP
	default:
		return ipPattern{}, fmt.Errorf("elements: IPClassifier pattern %q: want tcp, udp, ip, tcp/<dport>, udp/<dport>, or -", s)
	}
	if hasPort {
		port, err := strconv.ParseUint(portStr, 10, 16)
		if err != nil || port == 0 {
			return ipPattern{}, fmt.Errorf("elements: IPClassifier pattern %q: bad destination port", s)
		}
		p.dstPort = uint16(port)
	}
	return p, nil
}

func (p ipPattern) matches(ft netpkt.FiveTuple) bool {
	if p.catchAll {
		return true
	}
	if ft.Proto != p.proto {
		return false
	}
	return p.dstPort == 0 || ft.DstPort == p.dstPort
}

// IPClassifier routes by transport protocol and destination port — a
// deliberately small subset of Click's IPClassifier expression language,
// enough for protocol-split service chains. Patterns are positional
// arguments: "tcp", "udp", "tcp/<dport>", "udp/<dport>", "ip", or "-".
// Packets matching no pattern (including unparseable ones) are dropped.
type IPClassifier struct {
	patterns []ipPattern

	Matched []uint64
	NoMatch uint64
}

// NewIPClassifier builds the classifier from pattern strings.
func NewIPClassifier(patterns []string) (*IPClassifier, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("elements: IPClassifier needs at least one pattern")
	}
	c := &IPClassifier{Matched: make([]uint64, len(patterns))}
	for _, s := range patterns {
		p, err := parseIPPattern(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		c.patterns = append(c.patterns, p)
	}
	return c, nil
}

// Class implements click.Element.
func (c *IPClassifier) Class() string { return "IPClassifier" }

// NumOutputs implements click.Router.
func (c *IPClassifier) NumOutputs() int { return len(c.patterns) }

// Process implements click.Element.
func (c *IPClassifier) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnIPClassifier)
	defer ctx.SetFunc(old)
	ctx.LoadBytes(p.Addr, netpkt.IPv4HeaderLen+4)
	ft, err := netpkt.ExtractFiveTuple(p.Data)
	if err != nil {
		c.NoMatch++
		return click.Drop
	}
	for i, pat := range c.patterns {
		ctx.Compute(classifyCompute, classifyInstrs)
		if pat.matches(ft) {
			c.Matched[i]++
			return click.Output(i)
		}
	}
	c.NoMatch++
	return click.Drop
}

// Stat implements click.Stats: "nomatch" or "port<i>".
func (c *IPClassifier) Stat(name string) (uint64, bool) {
	if name == "nomatch" {
		return c.NoMatch, true
	}
	if rest, ok := strings.CutPrefix(name, "port"); ok {
		if i, err := strconv.Atoi(rest); err == nil && i >= 0 && i < len(c.Matched) {
			return c.Matched[i], true
		}
	}
	return 0, false
}

// Tee sends every packet down every connected output port (Click's Tee).
// The branches process the same packet bytes sequentially.
type Tee struct {
	outputs int // 0 = adapt to connected ports
	Packets uint64
}

// NewTee builds a tee; outputs of 0 adapts to the connected port count.
func NewTee(outputs int) *Tee { return &Tee{outputs: outputs} }

// Class implements click.Element.
func (t *Tee) Class() string { return "Tee" }

// NumOutputs implements click.Router.
func (t *Tee) NumOutputs() int {
	if t.outputs <= 0 {
		return click.AdaptiveOutputs
	}
	return t.outputs
}

// Process implements click.Element.
func (t *Tee) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	t.Packets++
	ctx.Compute(4, 4)
	return click.Broadcast
}

// Stat implements click.Stats.
func (t *Tee) Stat(name string) (uint64, bool) {
	if name == "packets" {
		return t.Packets, true
	}
	return 0, false
}

// RoundRobinSwitch cycles packets across its connected output ports in
// order, Click's element of the same name — load balancing without
// flow affinity.
type RoundRobinSwitch struct {
	n    int
	next int

	Packets uint64
}

// Class implements click.Element.
func (r *RoundRobinSwitch) Class() string { return "RoundRobinSwitch" }

// NumOutputs implements click.Router.
func (r *RoundRobinSwitch) NumOutputs() int { return click.AdaptiveOutputs }

// SetOutputs implements click.OutputsSetter.
func (r *RoundRobinSwitch) SetOutputs(n int) { r.n = n }

// Process implements click.Element.
func (r *RoundRobinSwitch) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	r.Packets++
	ctx.Compute(4, 4)
	if r.n == 0 {
		return click.Continue
	}
	port := r.next
	r.next = (r.next + 1) % r.n
	return click.Output(port)
}

// Stat implements click.Stats.
func (r *RoundRobinSwitch) Stat(name string) (uint64, bool) {
	if name == "packets" {
		return r.Packets, true
	}
	return 0, false
}

func init() {
	click.Register("Classifier", func(env *click.Env, args click.Args) (interface{}, error) {
		return NewClassifier(args.Positional)
	})
	click.Register("IPClassifier", func(env *click.Env, args click.Args) (interface{}, error) {
		return NewIPClassifier(args.Positional)
	})
	click.Register("Tee", func(env *click.Env, args click.Args) (interface{}, error) {
		n := 0
		if len(args.Positional) > 0 {
			var err error
			n, err = strconv.Atoi(args.Positional[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("elements: Tee argument %q is not a port count", args.Positional[0])
			}
		}
		return NewTee(n), nil
	})
	click.Register("RoundRobinSwitch", func(env *click.Env, args click.Args) (interface{}, error) {
		return &RoundRobinSwitch{}, nil
	})
}
