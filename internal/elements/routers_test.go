package elements

import (
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/netpkt"
)

// mkProtoPacket builds a valid IPv4/TCP-or-UDP packet for router tests.
func mkProtoPacket(t *testing.T, proto uint8, dstPort uint16) *click.Packet {
	t.Helper()
	b := make([]byte, 64)
	netpkt.WriteIPv4(b, netpkt.IPv4Header{
		TotalLen: 64, TTL: 64, Proto: proto,
		Src: 0x0a000001, Dst: 0x0a000002,
	})
	b[netpkt.IPv4HeaderLen] = 0x30 // src port 0x3039
	b[netpkt.IPv4HeaderLen+1] = 0x39
	b[netpkt.IPv4HeaderLen+2] = byte(dstPort >> 8)
	b[netpkt.IPv4HeaderLen+3] = byte(dstPort)
	return &click.Packet{Data: b, Addr: 0x2000}
}

func TestClassifierMatchesBytesInOrder(t *testing.T) {
	// Port 0: protocol byte (offset 9) == TCP; port 1: catch-all.
	c, err := NewClassifier([]string{"9/06", "-"})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumOutputs() != 2 {
		t.Fatalf("NumOutputs = %d", c.NumOutputs())
	}
	var ctx click.Ctx
	if v := c.Process(&ctx, mkProtoPacket(t, netpkt.ProtoTCP, 80)); v != click.Output(0) {
		t.Fatalf("TCP packet routed to %v, want output(0)", v)
	}
	if v := c.Process(&ctx, mkProtoPacket(t, netpkt.ProtoUDP, 80)); v != click.Output(1) {
		t.Fatalf("UDP packet routed to %v, want output(1)", v)
	}
	if n, _ := c.Stat("port0"); n != 1 {
		t.Fatalf("port0 = %d", n)
	}
	if len(ctx.Ops) == 0 {
		t.Fatal("classifier emitted no trace")
	}
}

func TestClassifierWildcardsAndNoMatchDrop(t *testing.T) {
	// High nibble of the version/IHL byte must be 4, low nibble anything.
	c, err := NewClassifier([]string{"0/4?"})
	if err != nil {
		t.Fatal(err)
	}
	var ctx click.Ctx
	if v := c.Process(&ctx, mkProtoPacket(t, netpkt.ProtoTCP, 80)); v != click.Output(0) {
		t.Fatalf("IPv4 packet routed to %v", v)
	}
	bad := &click.Packet{Data: []byte{0x60, 0, 0, 0}, Addr: 0x2000}
	if v := c.Process(&ctx, bad); v != click.Drop {
		t.Fatalf("no-match packet got %v, want drop", v)
	}
	if n, _ := c.Stat("nomatch"); n != 1 {
		t.Fatalf("nomatch = %d", n)
	}
}

func TestClassifierRejectsBadPatterns(t *testing.T) {
	for _, bad := range []string{"", "x/08", "9/0", "9/0g", "-1/08", "9"} {
		if _, err := NewClassifier([]string{bad}); err == nil {
			t.Fatalf("pattern %q accepted", bad)
		}
	}
	if _, err := NewClassifier(nil); err == nil {
		t.Fatal("empty pattern list accepted")
	}
}

func TestIPClassifierProtocolAndPortSplit(t *testing.T) {
	c, err := NewIPClassifier([]string{"tcp/80", "tcp", "udp", "-"})
	if err != nil {
		t.Fatal(err)
	}
	var ctx click.Ctx
	cases := []struct {
		proto uint8
		port  uint16
		want  click.Verdict
	}{
		{netpkt.ProtoTCP, 80, click.Output(0)},
		{netpkt.ProtoTCP, 443, click.Output(1)},
		{netpkt.ProtoUDP, 53, click.Output(2)},
		{netpkt.ProtoTCP + 50, 0, click.Output(3)},
	}
	for _, tc := range cases {
		if v := c.Process(&ctx, mkProtoPacket(t, tc.proto, tc.port)); v != tc.want {
			t.Fatalf("proto %d port %d routed to %v, want %v", tc.proto, tc.port, v, tc.want)
		}
	}
	// Unparseable packets drop.
	if v := c.Process(&ctx, &click.Packet{Data: []byte{1, 2, 3}, Addr: 0x2000}); v != click.Drop {
		t.Fatalf("bad packet got %v, want drop", v)
	}
	if n, _ := c.Stat("nomatch"); n != 1 {
		t.Fatalf("nomatch = %d", n)
	}
}

func TestIPClassifierRejectsBadPatterns(t *testing.T) {
	for _, bad := range []string{"icmp", "tcp/0", "tcp/99999", "port 80", ""} {
		if _, err := NewIPClassifier([]string{bad}); err == nil {
			t.Fatalf("pattern %q accepted", bad)
		}
	}
}

func TestTeeAndRoundRobinSwitch(t *testing.T) {
	tee := NewTee(0)
	if tee.NumOutputs() != click.AdaptiveOutputs {
		t.Fatal("arg-less Tee must adapt to connected ports")
	}
	if NewTee(3).NumOutputs() != 3 {
		t.Fatal("Tee(3) must declare 3 ports")
	}
	var ctx click.Ctx
	if v := tee.Process(&ctx, mkProtoPacket(t, netpkt.ProtoTCP, 80)); v != click.Broadcast {
		t.Fatalf("Tee verdict %v, want broadcast", v)
	}

	rr := &RoundRobinSwitch{}
	rr.SetOutputs(3)
	for i := 0; i < 6; i++ {
		want := click.Output(i % 3)
		if v := rr.Process(&ctx, mkProtoPacket(t, netpkt.ProtoTCP, 80)); v != want {
			t.Fatalf("packet %d routed to %v, want %v", i, v, want)
		}
	}
	if n, _ := rr.Stat("packets"); n != 6 {
		t.Fatalf("rr packets = %d", n)
	}
}

// TestRoutersViaConfig exercises the registry path end to end: a
// protocol-split graph with a mirror tee, driven by FromDevice traffic.
func TestRoutersViaConfig(t *testing.T) {
	cfg := `
		src :: FromDevice(SIZE 64, COUNT 200);
		cls :: IPClassifier(tcp, udp, -);
		tee :: Tee;
		cnt :: Counter;
		src -> CheckIPHeader -> cls;
		cls[0] -> tee;
		cls[1] -> tee;
		cls[2] -> Discard;
		tee[0] -> ToDevice;
		tee[1] -> cnt -> Discard;
	`
	pl, err := click.ParseConfig(newEnv(), "split", cfg)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	buf := pl.EmitPacket(nil)
	for len(buf) > 0 {
		buf = pl.EmitPacket(buf[:0])
	}
	if pl.Received != 200 {
		t.Fatalf("received %d", pl.Received)
	}
	tcp, _ := pl.Stat("IPClassifier.port0")
	udp, _ := pl.Stat("IPClassifier.port1")
	if tcp == 0 || udp == 0 || tcp+udp != 200 {
		t.Fatalf("protocol split %d/%d, want both nonzero summing to 200", tcp, udp)
	}
	sent, _ := pl.Stat("ToDevice.sent")
	mirrored, _ := pl.Stat("Counter.packets")
	if sent != 200 || mirrored != 200 {
		t.Fatalf("tee delivered %d to wire, %d to mirror; want 200/200", sent, mirrored)
	}
	// Every packet finished on the wire branch; the mirror branch's
	// Discard shows up in per-branch node counters, not in the
	// packet-level outcome, so Received == Finished + Dropped holds.
	if pl.Finished != 200 || pl.Dropped != 0 {
		t.Fatalf("finished %d dropped %d, want 200/0", pl.Finished, pl.Dropped)
	}
}
