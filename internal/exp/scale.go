// Package exp drives the reproduction of every table and figure in the
// paper's evaluation: Table 1 (workload characteristics), Figure 2
// (contention between realistic flows), Figure 4 (contention per
// resource), Figure 5 (realistic vs synthetic competition), Figure 6
// (Equation 1 worst-case bounds), Figure 7 (hit-to-miss conversion and
// the Appendix A model), Figures 8 and 9 (prediction accuracy), Figure 10
// (contention-aware scheduling), the Section 4 throttling demonstration,
// and the Section 2.2 parallel-versus-pipeline comparison.
//
// Every experiment takes a Scale, so the same driver runs at paper scale
// (benchmarks, cmd/pktbench) or at a reduced scale (unit tests).
package exp

import (
	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// Scale bundles a platform configuration, workload parameters, and
// measurement windows.
type Scale struct {
	Name   string
	Cfg    hw.Config
	Params apps.Params
	Warmup float64 // virtual seconds discarded before each window
	Window float64 // virtual seconds measured
	// SweepGrid is the SYN compute-per-access grid used for profiling
	// sweeps (lower = more competing refs/sec).
	SweepGrid []int
}

// Full returns the paper-scale setup: the Westmere platform model and
// Section 2.1 workload sizes.
func Full() Scale {
	return Scale{
		Name:      "full",
		Cfg:       hw.DefaultConfig(),
		Params:    apps.Default(),
		Warmup:    0.004,
		Window:    0.012,
		SweepGrid: []int{3200, 1600, 800, 400, 200, 100, 50, 25, 0},
	}
}

// Quick returns a reduced scale for tests: small tables, a proportionally
// small cache hierarchy, and short windows. Structure and regime (working
// sets exceeding the shared cache, one flow per core) match Full.
func Quick() Scale {
	cfg := hw.DefaultConfig()
	cfg.L1D = hw.CacheGeom{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = hw.CacheGeom{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = hw.CacheGeom{SizeBytes: 1 << 20, Ways: 16}
	return Scale{
		Name:      "quick",
		Cfg:       cfg,
		Params:    apps.Small(),
		Warmup:    0.0005,
		Window:    0.002,
		SweepGrid: []int{1600, 400, 100, 0},
	}
}

// NewPredictor builds a predictor bound to this scale.
func (s Scale) NewPredictor() *core.Predictor {
	p := core.NewPredictor(s.Cfg, s.Params, s.Warmup, s.Window)
	if s.SweepGrid != nil {
		p.SweepGrid = s.SweepGrid
	}
	return p
}
