package exp

import (
	"strings"
	"testing"
)

// Every experiment result renders to CSV with a header row and uniform
// column counts — the contract downstream plotting scripts rely on.

func checkCSV(t *testing.T, name, csv string) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		t.Fatalf("%s: CSV has %d lines; want header + data", name, len(lines))
	}
	cols := strings.Count(lines[0], ",")
	if cols == 0 {
		t.Fatalf("%s: header has a single column: %q", name, lines[0])
	}
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Fatalf("%s: row %d has %d separators, header has %d: %q",
				name, i+1, strings.Count(l, ","), cols, l)
		}
	}
}

func TestCSVStructures(t *testing.T) {
	s, p := quickSetup(t)

	t1, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "table1", t1.CSV())

	f2, err := RunFig2(s, p)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig2", f2.CSV())

	f5, err := RunFig5(s, p, f2)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig5", f5.CSV())

	f6, err := RunFig6(s, p)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig6", f6.CSV())

	f7, err := RunFig7(s, p)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig7", f7.CSV())

	f8, err := RunFig8(s, p)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig8", f8.CSV())

	f9, err := RunFig9(s, p)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, "fig9", f9.CSV())
}

func TestCSVBuilderFormatting(t *testing.T) {
	var c csvBuilder
	c.row("a", 1, 0.5)
	c.row("b", 2, 1.25)
	want := "a,1,0.5\nb,2,1.25\n"
	if c.String() != want {
		t.Fatalf("csv = %q, want %q", c.String(), want)
	}
}

func TestPctAndMrefs(t *testing.T) {
	if pct(0.123) != "12.3%" {
		t.Fatalf("pct = %q", pct(0.123))
	}
	if mrefs(25_850_000) != "25.9M" {
		t.Fatalf("mrefs = %q", mrefs(25_850_000))
	}
}
