package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// Fig8Cell is one scenario's prediction outcome.
type Fig8Cell struct {
	Target     apps.FlowType
	Competitor apps.FlowType
	Measured   float64
	Predicted  float64 // step-3 prediction (solo refs/sec of competitors)
	Perfect    float64 // prediction with measured competing refs/sec
}

// Error returns predicted − measured (signed, as in Figure 8(a)).
func (c Fig8Cell) Error() float64 { return c.Predicted - c.Measured }

// PerfectError returns the perfect-knowledge error (Figure 8(b)).
func (c Fig8Cell) PerfectError() float64 { return c.Perfect - c.Measured }

// Fig8Result reproduces Figure 8: prediction error over the 25 Figure 2
// scenarios, both for the paper's method and assuming perfect knowledge
// of the competition, plus per-target average absolute errors (8(c)).
type Fig8Result struct {
	Cells         []Fig8Cell
	AvgError      map[apps.FlowType]float64 // mean |error| per target
	AvgPerfectErr map[apps.FlowType]float64
	MaxAbsError   float64
	MaxAbsPerfErr float64
}

// RunFig8 predicts and measures every pair scenario.
func RunFig8(s Scale, p *core.Predictor) (*Fig8Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	out := &Fig8Result{
		AvgError:      make(map[apps.FlowType]float64),
		AvgPerfectErr: make(map[apps.FlowType]float64),
	}
	for _, target := range apps.RealisticTypes {
		var sumErr, sumPerf float64
		for _, comp := range apps.RealisticTypes {
			cell, err := predictPair(p, target, comp)
			if err != nil {
				return nil, fmt.Errorf("exp: fig8 %s vs %s: %w", target, comp, err)
			}
			out.Cells = append(out.Cells, cell)
			sumErr += abs(cell.Error())
			sumPerf += abs(cell.PerfectError())
			if abs(cell.Error()) > out.MaxAbsError {
				out.MaxAbsError = abs(cell.Error())
			}
			if abs(cell.PerfectError()) > out.MaxAbsPerfErr {
				out.MaxAbsPerfErr = abs(cell.PerfectError())
			}
		}
		n := float64(len(apps.RealisticTypes))
		out.AvgError[target] = sumErr / n
		out.AvgPerfectErr[target] = sumPerf / n
	}
	return out, nil
}

func predictPair(p *core.Predictor, target, comp apps.FlowType) (Fig8Cell, error) {
	// Measured drop and measured competition from the co-run.
	cell2, err := measurePair(p, target, comp)
	if err != nil {
		return Fig8Cell{}, err
	}
	// Step-3 prediction from solo profiles only.
	competitors := []apps.FlowType{comp, comp, comp, comp, comp}
	pred, err := p.Predict(target, competitors)
	if err != nil {
		return Fig8Cell{}, err
	}
	// Perfect-knowledge prediction from the measured competition.
	perfect, err := p.PredictAt(target, cell2.CompetingRefsPerSec)
	if err != nil {
		return Fig8Cell{}, err
	}
	return Fig8Cell{
		Target:     target,
		Competitor: comp,
		Measured:   cell2.Drop,
		Predicted:  pred.Drop,
		Perfect:    perfect.Drop,
	}, nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// String renders the error matrices and averages.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8(a): prediction error (predicted - measured), rows=target, cols=5x competitor\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, comp := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%8s", comp)
	}
	b.WriteByte('\n')
	for _, target := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%-8s", target)
		for _, comp := range apps.RealisticTypes {
			for _, c := range r.Cells {
				if c.Target == target && c.Competitor == comp {
					fmt.Fprintf(&b, "%+8.1f", c.Error()*100)
				}
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("Figure 8(b): error with perfect knowledge of the competition\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, comp := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%8s", comp)
	}
	b.WriteByte('\n')
	for _, target := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%-8s", target)
		for _, comp := range apps.RealisticTypes {
			for _, c := range r.Cells {
				if c.Target == target && c.Competitor == comp {
					fmt.Fprintf(&b, "%+8.1f", c.PerfectError()*100)
				}
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("Figure 8(c): average absolute error per target (ours / perfect)\n")
	for _, target := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%-8s %6.2f %6.2f\n", target,
			r.AvgError[target]*100, r.AvgPerfectErr[target]*100)
	}
	fmt.Fprintf(&b, "worst-case |error|: ours %s, perfect %s\n",
		pct(r.MaxAbsError), pct(r.MaxAbsPerfErr))
	return b.String()
}

// CSV renders all cells.
func (r *Fig8Result) CSV() string {
	var c csvBuilder
	c.row("target", "competitor", "measured", "predicted", "perfect")
	for _, cell := range r.Cells {
		c.row(string(cell.Target), string(cell.Competitor),
			cell.Measured, cell.Predicted, cell.Perfect)
	}
	return c.String()
}
