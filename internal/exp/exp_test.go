package exp

import (
	"strings"
	"sync"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// The experiment drivers re-run many co-run scenarios; tests share one
// predictor (and its memoised measurements) to keep the package's test
// time reasonable. Everything is deterministic, so sharing is safe.
var (
	sharedOnce sync.Once
	sharedPred *core.Predictor
	sharedScl  Scale
)

func quickSetup(t *testing.T) (Scale, *core.Predictor) {
	t.Helper()
	sharedOnce.Do(func() {
		sharedScl = Quick()
		sharedPred = sharedScl.NewPredictor()
	})
	return sharedScl, sharedPred
}

func TestTable1(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	if len(res.Profiles) != 5 {
		t.Fatalf("profiles = %d, want 5", len(res.Profiles))
	}
	byLabel := map[string]float64{}
	for _, pr := range res.Profiles {
		if pr.Throughput() <= 0 || pr.CyclesPerPacket() <= 0 {
			t.Fatalf("%s: empty profile", pr.Label)
		}
		byLabel[pr.Label] = pr.CyclesPerPacket()
	}
	// Heavier processing must cost more cycles per packet.
	if !(byLabel["IP"] < byLabel["MON"] && byLabel["MON"] < byLabel["FW"]) {
		t.Fatalf("cycles/packet ordering wrong: %v", byLabel)
	}
	if !strings.Contains(res.String(), "Table 1") || !strings.Contains(res.CSV(), "flow,") {
		t.Fatal("rendering broken")
	}
}

func TestFig2(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunFig2(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 25 {
		t.Fatalf("cells = %d, want 25", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Drop < -0.05 || c.Drop > 1 {
			t.Fatalf("%s vs %s: drop %v out of range", c.Target, c.Competitor, c.Drop)
		}
	}
	// The paper's headline orderings: MON is the most sensitive type on
	// average; FW suffers and causes little.
	if res.Average[apps.MON] <= res.Average[apps.FW] {
		t.Fatalf("MON avg (%v) must exceed FW avg (%v)",
			res.Average[apps.MON], res.Average[apps.FW])
	}
	monRE, _ := res.Cell(apps.MON, apps.RE)
	monFW, _ := res.Cell(apps.MON, apps.FW)
	if monRE.Drop <= monFW.Drop {
		t.Fatalf("RE competitors (%v) must hurt MON more than FW competitors (%v)",
			monRE.Drop, monFW.Drop)
	}
	if !strings.Contains(res.String(), "Figure 2") {
		t.Fatal("rendering broken")
	}
}

func TestFig4(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunFig4(s, p, []apps.FlowType{apps.MON})
	if err != nil {
		t.Fatal(err)
	}
	cache, ok1 := res.Get(apps.MON, CacheOnly)
	mem, ok2 := res.Get(apps.MON, MemCtrlOnly)
	both, ok3 := res.Get(apps.MON, Both)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing series")
	}
	// The paper's central resource finding: the cache dominates.
	if cache.MaxDrop() <= mem.MaxDrop() {
		t.Fatalf("cache-only max drop (%v) must exceed memctrl-only (%v)",
			cache.MaxDrop(), mem.MaxDrop())
	}
	if both.MaxDrop() < cache.MaxDrop()*0.8 {
		t.Fatalf("both-resources drop (%v) should be at least cache-only (%v)",
			both.MaxDrop(), cache.MaxDrop())
	}
	// Drop must grow with competition within each series.
	for _, series := range res.Series {
		pts := series.Points
		if pts[len(pts)-1].Drop < pts[0].Drop {
			t.Fatalf("%s/%s: drop decreased along the ramp", series.Target, series.Mode)
		}
	}
	if !strings.Contains(res.String(), "cache contention") {
		t.Fatal("rendering broken")
	}
}

func TestFig5(t *testing.T) {
	s, p := quickSetup(t)
	fig2, err := RunFig2(s, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig5(s, p, fig2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 5 || len(res.Points) != 25 {
		t.Fatalf("curves/points = %d/%d", len(res.Curves), len(res.Points))
	}
	// Observation (b): realistic competitors behave like SYN flows at the
	// same refs/sec. At quick scale allow a loose bound.
	if dev := res.MaxDeviation(); dev > 0.25 {
		t.Fatalf("max deviation %v: realistic points far off synthetic curves", dev)
	}
	if res.MeanDeviation() > 0.10 {
		t.Fatalf("mean deviation %v too large", res.MeanDeviation())
	}
}

func TestFig6(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunFig6(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 || len(res.Points) != 5 {
		t.Fatalf("curves/points = %d/%d", len(res.Curves), len(res.Points))
	}
	// Larger δ curves must dominate smaller ones point-wise.
	for i := range res.Curves[0].HitsPerSec {
		if !(res.Curves[0].Drop[i] <= res.Curves[1].Drop[i] &&
			res.Curves[1].Drop[i] <= res.Curves[2].Drop[i]) {
			t.Fatalf("δ ordering violated at index %d", i)
		}
	}
	for _, pt := range res.Points {
		if pt.WorstCaseDrop < 0 || pt.WorstCaseDrop >= 1 {
			t.Fatalf("%s: worst-case drop %v out of range", pt.Flow, pt.WorstCaseDrop)
		}
	}
}

func TestFig7(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunFig7(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Measured <= first.Measured {
		t.Fatalf("conversion did not grow with competition: %v → %v",
			first.Measured, last.Measured)
	}
	if last.Model <= 0 || last.Model > 1 {
		t.Fatalf("model estimate %v out of range", last.Model)
	}
	// The paper's per-function contrast: bookkeeping functions
	// (skb_recycle) barely convert; the uniformly-accessed flow table
	// (flow_statistics) converts heavily.
	if last.PerFunc["skb_recycle"] >= last.PerFunc["flow_statistics"] {
		t.Fatalf("skb_recycle conversion (%v) must stay below flow_statistics (%v)",
			last.PerFunc["skb_recycle"], last.PerFunc["flow_statistics"])
	}
}

func TestFig8(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunFig8(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 25 {
		t.Fatalf("cells = %d, want 25", len(res.Cells))
	}
	// Prediction quality: the paper achieves <3% at full scale; quick
	// scale tolerates more but errors must stay bounded.
	if res.MaxAbsError > 0.20 {
		t.Fatalf("worst prediction error %v too large", res.MaxAbsError)
	}
	// Perfect knowledge must not be systematically worse than the
	// solo-rate assumption.
	var oursSum, perfSum float64
	for _, target := range apps.RealisticTypes {
		oursSum += res.AvgError[target]
		perfSum += res.AvgPerfectErr[target]
	}
	if perfSum > oursSum*1.5 {
		t.Fatalf("perfect-knowledge errors (%v) dwarf ours (%v)", perfSum, oursSum)
	}
}

func TestFig9(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunFig9(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 6 {
		t.Fatalf("flows = %d, want 6", len(res.Flows))
	}
	if res.MaxError > 0.20 {
		t.Fatalf("max error %v too large", res.MaxError)
	}
}

func TestFig10(t *testing.T) {
	s, p := quickSetup(t)
	combos := []Fig10Combo{
		{Label: "6MON+6FW", Flows: []apps.FlowType{
			apps.MON, apps.MON, apps.MON, apps.MON, apps.MON, apps.MON,
			apps.FW, apps.FW, apps.FW, apps.FW, apps.FW, apps.FW}},
	}
	res, err := RunFig10(s, p, combos)
	if err != nil {
		t.Fatal(err)
	}
	combo, ok := res.Combo("6MON+6FW")
	if !ok {
		t.Fatal("combo missing")
	}
	if len(combo.Eval.All) != 4 {
		t.Fatalf("placements = %d, want 4", len(combo.Eval.All))
	}
	if combo.Gain() < 0 {
		t.Fatalf("negative gain %v", combo.Gain())
	}
	if len(combo.Eval.Best.PerFlow) != 12 {
		t.Fatalf("per-flow = %d, want 12", len(combo.Eval.Best.PerFlow))
	}
}

func TestThrottleExperiment(t *testing.T) {
	s, p := quickSetup(t)
	res, err := RunThrottle(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakUncontained() < res.ProfiledRefsPerSec*1.5 {
		t.Fatalf("aggression did not manifest: peak %v vs profiled %v",
			res.PeakUncontained(), res.ProfiledRefsPerSec)
	}
	if res.FinalContained() > res.ProfiledRefsPerSec*1.6 {
		t.Fatalf("containment failed: final %v vs profiled %v",
			res.FinalContained(), res.ProfiledRefsPerSec)
	}
	if res.VictimContainedTput <= res.VictimUncontainedTput {
		t.Fatalf("containment did not protect the victim: %v vs %v pkts/sec",
			res.VictimContainedTput, res.VictimUncontainedTput)
	}
}

func TestPipelineExperiment(t *testing.T) {
	s, _ := quickSetup(t)
	res, err := RunPipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	var mon, crafted PipelineRow
	for _, r := range res.Rows {
		switch r.Workload {
		case "MON":
			mon = r
		case "crafted":
			crafted = r
		}
	}
	// Section 2.2: parallel wins for realistic workloads...
	if mon.Winner() != "parallel" {
		t.Fatalf("MON: %s won (parallel %.0f vs pipeline %.0f)",
			mon.Winner(), mon.ParallelPktsPerSec, mon.PipelinePktsPerSec)
	}
	// ...and the crafted 2x-L3 workload is the exception where the
	// pipeline wins.
	if crafted.Winner() != "pipeline" {
		t.Fatalf("crafted: %s won (parallel %.0f vs pipeline %.0f)",
			crafted.Winner(), crafted.ParallelPktsPerSec, crafted.PipelinePktsPerSec)
	}
}

func TestScalePresets(t *testing.T) {
	full, quick := Full(), Quick()
	if full.Params.Routes <= quick.Params.Routes {
		t.Fatal("full scale must exceed quick scale")
	}
	if full.Cfg.L3.SizeBytes != 12<<20 {
		t.Fatalf("full L3 = %d, want 12MB", full.Cfg.L3.SizeBytes)
	}
	if quick.Window >= full.Window {
		t.Fatal("quick window must be shorter")
	}
}
