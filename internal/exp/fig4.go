package exp

import (
	"fmt"
	"sort"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// ContentionMode selects which shared resource the competitors contend
// for, reproducing the three configurations of Figure 3.
type ContentionMode string

const (
	// CacheOnly: competitors run on the target's socket but their data is
	// homed in the remote domain, so they share only the L3 (Fig. 3(a)).
	CacheOnly ContentionMode = "cache"
	// MemCtrlOnly: competitors run on the other socket with data homed in
	// the target's domain, so they share only the target's memory
	// controller (Fig. 3(b)).
	MemCtrlOnly ContentionMode = "memctrl"
	// Both: competitors run on the target's socket with local data,
	// sharing the L3 and the controller (Fig. 3(c)) — the deployment
	// configuration.
	Both ContentionMode = "both"
)

// Modes lists the three configurations in the paper's order.
var Modes = []ContentionMode{CacheOnly, MemCtrlOnly, Both}

// Fig4Point is one measurement of a ramp: drop at a competition level.
type Fig4Point struct {
	CompetingRefsPerSec float64
	Drop                float64
}

// Fig4Series is one target flow type's ramp under one contention mode.
type Fig4Series struct {
	Target apps.FlowType
	Mode   ContentionMode
	Points []Fig4Point
}

// Fig4Result reproduces Figure 4: for each contention mode and target
// type, the drop as a function of competing SYN references per second.
type Fig4Result struct {
	Series []Fig4Series
}

// RunFig4 measures the given targets (nil = all realistic types) under
// all three modes.
func RunFig4(s Scale, p *core.Predictor, targets []apps.FlowType) (*Fig4Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	if targets == nil {
		targets = apps.RealisticTypes
	}
	out := &Fig4Result{}
	for _, mode := range Modes {
		for _, target := range targets {
			series, err := runFig4Series(s, p, target, mode)
			if err != nil {
				return nil, err
			}
			out.Series = append(out.Series, series)
		}
	}
	return out, nil
}

func runFig4Series(s Scale, p *core.Predictor, target apps.FlowType, mode ContentionMode) (Fig4Series, error) {
	solo, err := p.Solo(target)
	if err != nil {
		return Fig4Series{}, err
	}
	series := Fig4Series{Target: target, Mode: mode}
	n := s.Cfg.CoresPerSocket - 1
	for _, k := range s.SweepGrid {
		flows := []core.FlowSpec{{Type: target, Core: 0, Domain: 0, Seed: core.SeedFor(target, 0)}}
		for i := 1; i <= n; i++ {
			f := core.FlowSpec{Type: apps.SYN, Seed: core.SeedFor(apps.SYN, i), SynCompute: k}
			switch mode {
			case CacheOnly:
				f.Core, f.Domain = i, 1
			case MemCtrlOnly:
				f.Core, f.Domain = s.Cfg.CoresPerSocket+i-1, 0
			case Both:
				f.Core, f.Domain = i, 0
			}
			flows = append(flows, f)
		}
		res, err := core.Scenario{Cfg: s.Cfg, Params: s.Params, Flows: flows,
			Warmup: s.Warmup, Window: s.Window}.Run()
		if err != nil {
			return Fig4Series{}, fmt.Errorf("exp: fig4 %s/%s: %w", target, mode, err)
		}
		var competing float64
		for i := 1; i <= n; i++ {
			competing += res.Stats[i].L3RefsPerSec()
		}
		series.Points = append(series.Points, Fig4Point{
			CompetingRefsPerSec: competing,
			Drop:                hw.PerformanceDrop(solo, res.Stats[0]),
		})
	}
	sort.Slice(series.Points, func(i, j int) bool {
		return series.Points[i].CompetingRefsPerSec < series.Points[j].CompetingRefsPerSec
	})
	return series, nil
}

// Get returns the series for (target, mode).
func (r *Fig4Result) Get(target apps.FlowType, mode ContentionMode) (Fig4Series, bool) {
	for _, s := range r.Series {
		if s.Target == target && s.Mode == mode {
			return s, true
		}
	}
	return Fig4Series{}, false
}

// MaxDrop returns the largest drop in a series.
func (s Fig4Series) MaxDrop() float64 {
	var max float64
	for _, pt := range s.Points {
		if pt.Drop > max {
			max = pt.Drop
		}
	}
	return max
}

// String renders each mode's series.
func (r *Fig4Result) String() string {
	var b strings.Builder
	for _, mode := range Modes {
		fmt.Fprintf(&b, "Figure 4 (%s contention): drop vs competing refs/sec\n", mode)
		for _, s := range r.Series {
			if s.Mode != mode {
				continue
			}
			fmt.Fprintf(&b, "  %-8s", s.Target)
			for _, pt := range s.Points {
				fmt.Fprintf(&b, " (%s, %s)", mrefs(pt.CompetingRefsPerSec), pct(pt.Drop))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders all points.
func (r *Fig4Result) CSV() string {
	var c csvBuilder
	c.row("mode", "target", "competing_refs_per_sec", "drop")
	for _, s := range r.Series {
		for _, pt := range s.Points {
			c.row(string(s.Mode), string(s.Target), pt.CompetingRefsPerSec, pt.Drop)
		}
	}
	return c.String()
}
