package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// Fig2Cell is one experiment of Figure 2: a target flow co-running with 5
// competitors of one type.
type Fig2Cell struct {
	Target              apps.FlowType
	Competitor          apps.FlowType
	Drop                float64
	CompetingRefsPerSec float64 // measured during the co-run
}

// Fig2Result reproduces Figure 2: for every ordered pair of realistic
// flow types (X, Y), the performance drop X suffers when co-running with
// 5 flows of type Y, plus the per-target averages of Figure 2(b).
type Fig2Result struct {
	Cells   []Fig2Cell
	Average map[apps.FlowType]float64
}

// RunFig2 runs all 25 pairs using p's memoised measurements (pass
// s.NewPredictor() to run standalone).
func RunFig2(s Scale, p *core.Predictor) (*Fig2Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	out := &Fig2Result{Average: make(map[apps.FlowType]float64)}
	for _, target := range apps.RealisticTypes {
		var sum float64
		for _, comp := range apps.RealisticTypes {
			cell, err := measurePair(p, target, comp)
			if err != nil {
				return nil, fmt.Errorf("exp: fig2 %s vs %s: %w", target, comp, err)
			}
			out.Cells = append(out.Cells, cell)
			sum += cell.Drop
		}
		out.Average[target] = sum / float64(len(apps.RealisticTypes))
	}
	return out, nil
}

// RunFig2Pair measures a single Figure 2 cell: the drop of target
// co-running with 5 flows of type comp. It is exported for the ablation
// benchmarks, which re-measure one cell under modified hardware models.
func RunFig2Pair(s Scale, p *core.Predictor, target, comp apps.FlowType) (Fig2Cell, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	return measurePair(p, target, comp)
}

// measurePair measures the drop of target co-running with 5 flows of
// type comp, and the competitors' aggregate refs/sec.
func measurePair(p *core.Predictor, target, comp apps.FlowType) (Fig2Cell, error) {
	mix := []apps.FlowType{target, comp, comp, comp, comp, comp}
	stats, sorted, err := p.MeasureMix(mix)
	if err != nil {
		return Fig2Cell{}, err
	}
	solo, err := p.Solo(target)
	if err != nil {
		return Fig2Cell{}, err
	}
	idx := targetIndex(sorted, target, comp)
	var competing float64
	for i := range stats {
		if i != idx {
			competing += stats[i].L3RefsPerSec()
		}
	}
	return Fig2Cell{
		Target:              target,
		Competitor:          comp,
		Drop:                hw.PerformanceDrop(solo, stats[idx]),
		CompetingRefsPerSec: competing,
	}, nil
}

// targetIndex locates the single target flow in the sorted mix. When the
// target and competitor types coincide, all slots are equivalent.
func targetIndex(sorted []apps.FlowType, target, comp apps.FlowType) int {
	if target == comp {
		return 0
	}
	for i, t := range sorted {
		if t == target {
			return i
		}
	}
	return 0
}

// Cell returns the (target, competitor) measurement.
func (r *Fig2Result) Cell(target, comp apps.FlowType) (Fig2Cell, bool) {
	for _, c := range r.Cells {
		if c.Target == target && c.Competitor == comp {
			return c, true
		}
	}
	return Fig2Cell{}, false
}

// MaxDrop returns the largest drop in the matrix.
func (r *Fig2Result) MaxDrop() Fig2Cell {
	var max Fig2Cell
	for _, c := range r.Cells {
		if c.Drop > max.Drop {
			max = c
		}
	}
	return max
}

// String renders Figure 2(a) as a matrix and 2(b) as a row of averages.
func (r *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2(a): performance drop of target (rows) with 5 co-runners of type (columns)\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, comp := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%8s", comp)
	}
	b.WriteByte('\n')
	for _, target := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%-8s", target)
		for _, comp := range apps.RealisticTypes {
			c, _ := r.Cell(target, comp)
			fmt.Fprintf(&b, "%8s", pct(c.Drop))
		}
		b.WriteByte('\n')
	}
	b.WriteString("Figure 2(b): average drop per target type\n")
	for _, target := range apps.RealisticTypes {
		fmt.Fprintf(&b, "%-8s %s\n", target, pct(r.Average[target]))
	}
	return b.String()
}

// CSV renders all cells.
func (r *Fig2Result) CSV() string {
	var c csvBuilder
	c.row("target", "competitor", "drop", "competing_refs_per_sec")
	for _, cell := range r.Cells {
		c.row(string(cell.Target), string(cell.Competitor), cell.Drop, cell.CompetingRefsPerSec)
	}
	return c.String()
}
