package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/click"
	"pktpredict/internal/core"
	"pktpredict/internal/handoff"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/synth"
)

// Section 2.2: the "parallel" approach (each packet fully processed by
// one core) versus the "pipeline" approach (processing steps split across
// cores, packets handed over through a shared ring). The hand-off ring —
// descriptor and header lines crossing cores, spin-wait polls, buffer
// recycling into another core's pool — lives in internal/handoff, shared
// with the concurrent runtime's cross-worker service chains so both
// charge identical hand-off costs. Pipelining wins only for the crafted
// workload: per-stage cacheable structures that, replicated per core,
// overflow the shared cache.

// stage1 pulls packets from the source, runs the first processing steps,
// and hands packets to stage 2.
type stage1 struct {
	src      click.Source
	elements []click.Element
	h        *handoff.Ring
	ctx      click.Ctx
}

// EmitPacket implements hw.PacketSource.
func (s *stage1) EmitPacket(buf []hw.Op) []hw.Op {
	s.ctx.Ops = buf
	if s.h.Full() {
		s.h.PollFull(&s.ctx) // back-pressure: wait for the consumer
		return s.ctx.Ops
	}
	p := s.src.Pull(&s.ctx)
	if p == nil {
		// Return whatever the failed Pull charged; cycles already spent
		// must not vanish from the trace.
		return s.ctx.Ops
	}
	for _, el := range s.elements {
		if el.Process(&s.ctx, p) != click.Continue {
			if p.Recycler != nil {
				p.Recycler.Recycle(&s.ctx, p)
			}
			return s.ctx.Ops
		}
	}
	s.h.Push(&s.ctx, p, 0, false)
	return s.ctx.Ops
}

// stage2 consumes handed-over packets and runs the remaining steps.
type stage2 struct {
	elements  []click.Element
	h         *handoff.Ring
	ctx       click.Ctx
	Completed uint64
}

// EmitPacket implements hw.PacketSource.
func (s *stage2) EmitPacket(buf []hw.Op) []hw.Op {
	s.ctx.Ops = buf
	if s.h.Empty() {
		s.h.PollEmpty(&s.ctx)
		return s.ctx.Ops
	}
	p, _, _, _ := s.h.Pop(&s.ctx)
	// The packet's header lines were last written by the other core; this
	// read is the compulsory hand-off miss the paper describes.
	s.h.ChargeHeaderMiss(&s.ctx, p)
	for _, el := range s.elements {
		if el.Process(&s.ctx, p) != click.Continue {
			break
		}
	}
	if p.Recycler != nil {
		// Recycling returns the buffer to stage 1's pool: more cross-core
		// traffic.
		p.Recycler.Recycle(&s.ctx, p)
	}
	s.Completed++
	return s.ctx.Ops
}

// PipelineRow is one workload's comparison.
type PipelineRow struct {
	Workload string
	// ParallelPktsPerSec is the aggregate throughput of two independent
	// full-processing flows on two cores.
	ParallelPktsPerSec float64
	// PipelinePktsPerSec is the completion rate of the two-core pipeline.
	PipelinePktsPerSec float64
}

// Winner returns which approach won.
func (r PipelineRow) Winner() string {
	if r.ParallelPktsPerSec >= r.PipelinePktsPerSec {
		return "parallel"
	}
	return "pipeline"
}

// PipelineResult reproduces the Section 2.2 comparison: for realistic
// workloads the parallel approach wins; for the crafted
// large-cacheable-structure workload the pipeline wins.
type PipelineResult struct {
	Rows []PipelineRow
}

// RunPipeline compares both approaches on a realistic workload (MON) and
// on the crafted workload.
func RunPipeline(s Scale) (*PipelineResult, error) {
	out := &PipelineResult{}

	mon, err := pipelineVsParallelMON(s)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, mon)

	crafted, err := pipelineVsParallelCrafted(s)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, crafted)
	return out, nil
}

// pipelineVsParallelMON splits the MON pipeline after the route lookup.
func pipelineVsParallelMON(s Scale) (PipelineRow, error) {
	row := PipelineRow{Workload: "MON"}

	// Parallel: two independent MON flows on one socket.
	par, err := core.Scenario{
		Cfg: s.Cfg, Params: s.Params,
		Flows: []core.FlowSpec{
			{Type: apps.MON, Core: 0, Domain: 0, Seed: core.SeedFor(apps.MON, 0)},
			{Type: apps.MON, Core: 1, Domain: 0, Seed: core.SeedFor(apps.MON, 1)},
		},
		Warmup: s.Warmup, Window: s.Window,
	}.Run()
	if err != nil {
		return row, err
	}
	row.ParallelPktsPerSec = par.Stats[0].Throughput() + par.Stats[1].Throughput()

	// Pipeline: one MON flow split across two cores of the same socket.
	arena := mem.NewArena(0)
	inst, err := s.Params.Build(apps.MON, arena, core.SeedFor(apps.MON, 0))
	if err != nil {
		return row, err
	}
	elems := inst.Pipeline.Elements()
	if len(elems) < 3 {
		return row, fmt.Errorf("exp: MON pipeline too short to split (%d elements)", len(elems))
	}
	h := handoff.New(arena, 128)
	st1 := &stage1{src: inst.Pipeline.Source, elements: elems[:2], h: h}
	st2 := &stage2{elements: elems[2:], h: h}
	row.PipelinePktsPerSec, err = runStages(s, st1, st2, 0, 1)
	return row, err
}

// pipelineVsParallelCrafted builds the Section 2.2 adversarial workload:
// each packet makes many accesses to a cacheable structure twice the L3
// size. Split across sockets, each stage's half fits its own L3; run in
// parallel, each core's full replica thrashes.
func pipelineVsParallelCrafted(s Scale) (PipelineRow, error) {
	row := PipelineRow{Workload: "crafted"}
	accesses := 110            // per half; >200 total per packet, as in the paper
	half := s.Cfg.L3.SizeBytes // structure totals 2x the L3 size

	mkElems := func(arena *mem.Arena, seed uint64) (*synth.Element, *synth.Element) {
		a := synth.NewElement(arena, synth.Config{
			Seed: seed, RegionBytes: half, AccessesPerPacket: accesses}, 0)
		b := synth.NewElement(arena, synth.Config{
			Seed: seed ^ 0xb, RegionBytes: half, AccessesPerPacket: accesses}, 0)
		return a, b
	}
	mkSource := func(env *click.Env) (click.Source, error) {
		return s.newCraftedSource(env)
	}

	// Parallel: core 0 on socket 0 and core CoresPerSocket on socket 1,
	// each with a full local replica (the paper's NUMA policy).
	platform := hw.NewPlatform(s.Cfg)
	engine := hw.NewEngine(platform)
	var completed []*craftedParallel
	for i, coreID := range []int{0, s.Cfg.CoresPerSocket} {
		arena := mem.NewArena(i)
		env := &click.Env{Arena: arena, Seed: core.SeedFor("crafted", i)}
		src, err := mkSource(env)
		if err != nil {
			return row, err
		}
		a, b := mkElems(arena, env.Seed)
		cp := &craftedParallel{src: src, elements: []click.Element{a, b}}
		completed = append(completed, cp)
		engine.Attach(coreID, fmt.Sprintf("crafted/par%d", i), cp)
	}
	engine.RunSeconds(s.Warmup)
	startCounts := []uint64{completed[0].Completed, completed[1].Completed}
	startClocks := []uint64{platform.Cores[0].Clock(), platform.Cores[s.Cfg.CoresPerSocket].Clock()}
	engine.RunSeconds(s.Window)
	for i, coreID := range []int{0, s.Cfg.CoresPerSocket} {
		cycles := platform.Cores[coreID].Clock() - startClocks[i]
		row.ParallelPktsPerSec += float64(completed[i].Completed-startCounts[i]) /
			(float64(cycles) / s.Cfg.ClockHz)
	}

	// Pipeline: stage 1 on socket 0 with half A local; stage 2 on socket
	// 1 with half B local; hand-off crosses QPI.
	arena0 := mem.NewArena(0)
	arena1 := mem.NewArena(1)
	env := &click.Env{Arena: arena0, Seed: core.SeedFor("crafted", 9)}
	src, err := mkSource(env)
	if err != nil {
		return row, err
	}
	a := synth.NewElement(arena0, synth.Config{
		Seed: env.Seed, RegionBytes: half, AccessesPerPacket: accesses}, 0)
	b := synth.NewElement(arena1, synth.Config{
		Seed: env.Seed ^ 0xb, RegionBytes: half, AccessesPerPacket: accesses}, 0)
	h := handoff.New(arena0, 128)
	st1 := &stage1{src: src, elements: []click.Element{a}, h: h}
	st2 := &stage2{elements: []click.Element{b}, h: h}
	row.PipelinePktsPerSec, err = runStages(s, st1, st2, 0, s.Cfg.CoresPerSocket)
	return row, err
}

// craftedParallel is a full-processing flow for the crafted workload,
// counting completions itself (the engine's packet counter would also
// count stalls for the pipelined variant, so both variants count the
// same way).
type craftedParallel struct {
	src       click.Source
	elements  []click.Element
	ctx       click.Ctx
	Completed uint64
}

// EmitPacket implements hw.PacketSource.
func (c *craftedParallel) EmitPacket(buf []hw.Op) []hw.Op {
	c.ctx.Ops = buf
	p := c.src.Pull(&c.ctx)
	if p == nil {
		// Keep whatever the failed Pull charged in the trace.
		return c.ctx.Ops
	}
	for _, el := range c.elements {
		if el.Process(&c.ctx, p) != click.Continue {
			break
		}
	}
	if p.Recycler != nil {
		p.Recycler.Recycle(&c.ctx, p)
	}
	c.Completed++
	return c.ctx.Ops
}

// newCraftedSource builds a small-packet source for the crafted flows.
func (s Scale) newCraftedSource(env *click.Env) (click.Source, error) {
	inst, err := click.NewInstance(env, "FromDevice", click.ParseArgs([]string{
		"SIZE 64", fmt.Sprintf("SEED %d", env.Seed), "FLOWS 1024",
	}))
	if err != nil {
		return nil, err
	}
	return inst.(click.Source), nil
}

// runStages attaches the two stages to the given cores of a fresh
// platform and measures stage 2's completion rate.
func runStages(s Scale, st1 *stage1, st2 *stage2, core1, core2 int) (float64, error) {
	platform := hw.NewPlatform(s.Cfg)
	engine := hw.NewEngine(platform)
	engine.Attach(core1, "stage1", st1)
	engine.Attach(core2, "stage2", st2)
	engine.RunSeconds(s.Warmup)
	start := st2.Completed
	startClock := platform.Cores[core2].Clock()
	engine.RunSeconds(s.Window)
	cycles := platform.Cores[core2].Clock() - startClock
	if cycles == 0 {
		return 0, fmt.Errorf("exp: pipeline stage 2 made no progress")
	}
	return float64(st2.Completed-start) / (float64(cycles) / s.Cfg.ClockHz), nil
}

// String renders the comparison.
func (r *PipelineResult) String() string {
	var b strings.Builder
	b.WriteString("Section 2.2: parallel vs pipeline (2 cores each)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %10s\n", "workload", "parallel pps", "pipeline pps", "winner")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %14.0f %14.0f %10s\n",
			row.Workload, row.ParallelPktsPerSec, row.PipelinePktsPerSec, row.Winner())
	}
	return b.String()
}

// CSV renders the rows.
func (r *PipelineResult) CSV() string {
	var c csvBuilder
	c.row("workload", "parallel_pps", "pipeline_pps", "winner")
	for _, row := range r.Rows {
		c.row(row.Workload, row.ParallelPktsPerSec, row.PipelinePktsPerSec, row.Winner())
	}
	return c.String()
}
