package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/perf"
)

// Table1Result reproduces Table 1: the characteristics of each packet-
// processing type during a solo run.
type Table1Result struct {
	Profiles []perf.Profile
}

// RunTable1 profiles each realistic flow type solo.
func RunTable1(s Scale) (*Table1Result, error) {
	p := s.NewPredictor()
	out := &Table1Result{}
	for _, t := range apps.RealisticTypes {
		st, err := p.Solo(t)
		if err != nil {
			return nil, fmt.Errorf("exp: table1 %s: %w", t, err)
		}
		out.Profiles = append(out.Profiles, perf.Profile{Label: string(t), Stats: st})
	}
	return out, nil
}

// String renders the table in the paper's column order.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: characteristics of each type of packet processing during a solo run\n")
	b.WriteString(perf.Table(r.Profiles))
	return b.String()
}

// CSV renders the table as comma-separated values.
func (r *Table1Result) CSV() string {
	var c csvBuilder
	c.row("flow", "cpi", "l3_refs_per_sec", "l3_hits_per_sec",
		"cycles_per_packet", "l3_refs_per_packet", "l3_misses_per_packet", "l2_hits_per_packet")
	for _, p := range r.Profiles {
		c.row(p.Label, p.CPI(), p.L3RefsPerSec(), p.L3HitsPerSec(),
			p.CyclesPerPacket(), p.L3RefsPerPacket(), p.L3MissesPerPacket(), p.L2HitsPerPacket())
	}
	return c.String()
}
