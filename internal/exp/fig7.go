package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/hw"
)

// Fig7Funcs are the MON-flow functions the paper breaks conversion down
// by (its OProfile symbols).
var Fig7Funcs = []string{"flow_statistics", "radix_ip_lookup", "check_ip_header", "skb_recycle"}

// Fig7Point is one competition level's conversion measurement.
type Fig7Point struct {
	CompetingRefsPerSec float64
	// Measured is the flow-wide hit-to-miss conversion rate: the fraction
	// of solo-run hits per packet that became misses.
	Measured float64
	// PerFunc maps each profiled function to its conversion rate.
	PerFunc map[string]float64
	// Model is the Appendix A estimate at this competition level.
	Model float64
}

// Fig7Result reproduces Figure 7: measured and estimated hit-to-miss
// conversion of a MON flow versus competing refs/sec, with per-function
// breakdown.
type Fig7Result struct {
	Target apps.FlowType
	Points []Fig7Point
}

// RunFig7 derives conversion rates from the MON sweep and evaluates the
// Appendix A model with the paper's parameters: C = cache lines, Ht =
// solo hits/sec, W = the flow table's slot count (the structure the model
// describes exactly, as the paper notes for flow_statistics).
func RunFig7(s Scale, p *core.Predictor) (*Fig7Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	target := apps.MON
	solo, err := p.Solo(target)
	if err != nil {
		return nil, err
	}
	samples, err := p.Sweep(target)
	if err != nil {
		return nil, err
	}

	tableSlots := 1
	for tableSlots < s.Params.NetFlowEntries {
		tableSlots <<= 1
	}
	model := core.CacheModel{
		CacheLines:       float64(s.Cfg.L3.SizeBytes / hw.LineSize),
		TargetHitsPerSec: solo.L3HitsPerSec(),
		TargetChunks:     float64(tableSlots),
	}

	soloHPP := solo.L3HitsPerPacket()
	soloFunc := funcHitsPerPacket(solo)

	out := &Fig7Result{Target: target}
	for _, sample := range samples {
		pt := Fig7Point{
			CompetingRefsPerSec: sample.CompetingRefsPerSec,
			Measured:            conversion(soloHPP, sample.Target.L3HitsPerPacket()),
			PerFunc:             make(map[string]float64),
			Model:               model.ConversionRate(sample.CompetingRefsPerSec),
		}
		coFunc := funcHitsPerPacket(sample.Target)
		for _, fn := range Fig7Funcs {
			pt.PerFunc[fn] = conversion(soloFunc[fn], coFunc[fn])
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// conversion computes the hit-to-miss conversion rate from solo and
// contended hits per packet.
func conversion(solo, contended float64) float64 {
	if solo <= 0 {
		return 0
	}
	k := 1 - contended/solo
	if k < 0 {
		return 0
	}
	return k
}

// funcHitsPerPacket extracts per-function L3 hits per packet.
func funcHitsPerPacket(st hw.FlowStats) map[string]float64 {
	out := make(map[string]float64)
	if st.Raw.Packets == 0 {
		return out
	}
	for _, fs := range st.FuncBreakdown() {
		out[fs.Name] = float64(fs.L3Hits) / float64(st.Raw.Packets)
	}
	return out
}

// String renders the conversion table.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: hit-to-miss conversion of a %s flow vs competing refs/sec\n", r.Target)
	fmt.Fprintf(&b, "%12s %9s %9s", "competing", "measured", "model")
	for _, fn := range Fig7Funcs {
		fmt.Fprintf(&b, " %16s", fn)
	}
	b.WriteByte('\n')
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%12s %9s %9s", mrefs(pt.CompetingRefsPerSec), pct(pt.Measured), pct(pt.Model))
		for _, fn := range Fig7Funcs {
			fmt.Fprintf(&b, " %16s", pct(pt.PerFunc[fn]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders all points.
func (r *Fig7Result) CSV() string {
	var c csvBuilder
	header := []interface{}{"competing_refs_per_sec", "measured", "model"}
	for _, fn := range Fig7Funcs {
		header = append(header, fn)
	}
	c.row(header...)
	for _, pt := range r.Points {
		row := []interface{}{pt.CompetingRefsPerSec, pt.Measured, pt.Model}
		for _, fn := range Fig7Funcs {
			row = append(row, pt.PerFunc[fn])
		}
		c.row(row...)
	}
	return c.String()
}
