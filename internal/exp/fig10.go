package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// Fig10Combo is one flow combination's best/worst placement evaluation.
type Fig10Combo struct {
	Label string
	Flows []apps.FlowType
	Eval  core.PlacementEval
}

// Gain returns the contention-aware-scheduling benefit for the combo.
func (c Fig10Combo) Gain() float64 { return c.Eval.Gain }

// Fig10Result reproduces Figure 10: for each flow combination, the
// average per-flow drop under the worst and best flow-to-core placement;
// plus the per-flow detail of the 6-MON/6-FW combination (10(b)).
type Fig10Result struct {
	Combos []Fig10Combo
	// MaxRealisticGain is the largest best-to-worst gap among combos of
	// realistic flows — the paper reports 2%.
	MaxRealisticGain float64
	// MaxSyntheticGain is the gap for the adversarial SYN_MAX combo —
	// the paper reports 6%.
	MaxSyntheticGain float64
}

// DefaultCombos returns the flow combinations evaluated by RunFig10. The
// 6-MON/6-FW mix is the paper's highlighted case (an equal mix of the
// most and least sensitive/aggressive types); the rest cover the other
// pairings plus mixed and adversarial combinations.
func DefaultCombos() []Fig10Combo {
	rep := func(t apps.FlowType, n int) []apps.FlowType {
		out := make([]apps.FlowType, n)
		for i := range out {
			out[i] = t
		}
		return out
	}
	cat := func(parts ...[]apps.FlowType) []apps.FlowType {
		var out []apps.FlowType
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	return []Fig10Combo{
		{Label: "6MON+6FW", Flows: cat(rep(apps.MON, 6), rep(apps.FW, 6))},
		{Label: "6MON+6RE", Flows: cat(rep(apps.MON, 6), rep(apps.RE, 6))},
		{Label: "6IP+6FW", Flows: cat(rep(apps.IP, 6), rep(apps.FW, 6))},
		{Label: "6MON+6VPN", Flows: cat(rep(apps.MON, 6), rep(apps.VPN, 6))},
		{Label: "4MON+4FW+4RE", Flows: cat(rep(apps.MON, 4), rep(apps.FW, 4), rep(apps.RE, 4))},
		{Label: "2xEach+2MON", Flows: cat(rep(apps.IP, 2), rep(apps.MON, 4), rep(apps.FW, 2), rep(apps.RE, 2), rep(apps.VPN, 2))},
		{Label: "6SYNMAX+6FW", Flows: cat(rep(apps.SYNMAX, 6), rep(apps.FW, 6))},
	}
}

// RunFig10 evaluates the given combos (nil = DefaultCombos).
func RunFig10(s Scale, p *core.Predictor, combos []Fig10Combo) (*Fig10Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	if combos == nil {
		combos = DefaultCombos()
	}
	out := &Fig10Result{}
	for _, combo := range combos {
		eval, err := core.EvaluatePlacements(p, combo.Flows)
		if err != nil {
			return nil, fmt.Errorf("exp: fig10 %s: %w", combo.Label, err)
		}
		combo.Eval = eval
		out.Combos = append(out.Combos, combo)

		synthetic := false
		for _, t := range combo.Flows {
			if t == apps.SYNMAX || t == apps.SYN {
				synthetic = true
			}
		}
		if synthetic {
			if eval.Gain > out.MaxSyntheticGain {
				out.MaxSyntheticGain = eval.Gain
			}
		} else if eval.Gain > out.MaxRealisticGain {
			out.MaxRealisticGain = eval.Gain
		}
	}
	return out, nil
}

// Combo returns the combo with the given label.
func (r *Fig10Result) Combo(label string) (Fig10Combo, bool) {
	for _, c := range r.Combos {
		if c.Label == label {
			return c, true
		}
	}
	return Fig10Combo{}, false
}

// String renders 10(a) and the 6MON+6FW per-flow detail (10(b)).
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10(a): average drop under best and worst placement\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %8s\n", "combination", "best", "worst", "gain")
	for _, c := range r.Combos {
		fmt.Fprintf(&b, "%-16s %10s %10s %8s\n", c.Label,
			pct(c.Eval.Best.AvgDrop), pct(c.Eval.Worst.AvgDrop), pct(c.Gain()))
	}
	fmt.Fprintf(&b, "max gain: realistic %s, synthetic %s\n",
		pct(r.MaxRealisticGain), pct(r.MaxSyntheticGain))
	if c, ok := r.Combo("6MON+6FW"); ok {
		b.WriteString("Figure 10(b): per-flow drop for 6MON+6FW\n")
		fmt.Fprintf(&b, "  best  %v:", c.Eval.Best)
		b.WriteByte('\n')
		for _, fd := range c.Eval.Best.PerFlow {
			fmt.Fprintf(&b, "    socket%d %-8s %s\n", fd.Socket, fd.Type, pct(fd.Drop))
		}
		fmt.Fprintf(&b, "  worst %v:", c.Eval.Worst)
		b.WriteByte('\n')
		for _, fd := range c.Eval.Worst.PerFlow {
			fmt.Fprintf(&b, "    socket%d %-8s %s\n", fd.Socket, fd.Type, pct(fd.Drop))
		}
	}
	return b.String()
}

// CSV renders every placement of every combo.
func (r *Fig10Result) CSV() string {
	var c csvBuilder
	c.row("combination", "placement", "socket0", "socket1", "avg_drop")
	for _, combo := range r.Combos {
		for i, pl := range combo.Eval.All {
			c.row(combo.Label, i, joinLabel(pl.Socket0), joinLabel(pl.Socket1), pl.AvgDrop)
		}
	}
	return c.String()
}

func joinLabel(ts []apps.FlowType) string {
	s := make([]string, len(ts))
	for i, t := range ts {
		s[i] = string(t)
	}
	return strings.Join(s, "+")
}
