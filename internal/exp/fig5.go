package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// Fig5Result reproduces Figure 5: each target type's drop-versus-
// competition curve measured against SYN competitors (from the profiling
// sweep), overlaid with the individual points measured against realistic
// competitors (from Figure 2). The paper's observation (b) — damage is
// determined by competing refs/sec, not competitor type — holds when the
// realistic points fall on the synthetic curves.
type Fig5Result struct {
	Curves map[apps.FlowType]core.Curve
	Points []Fig2Cell
}

// RunFig5 builds the overlay from the predictor's sweeps and the Figure 2
// measurements.
func RunFig5(s Scale, p *core.Predictor, fig2 *Fig2Result) (*Fig5Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	if fig2 == nil {
		var err error
		fig2, err = RunFig2(s, p)
		if err != nil {
			return nil, err
		}
	}
	out := &Fig5Result{Curves: make(map[apps.FlowType]core.Curve)}
	for _, t := range apps.RealisticTypes {
		c, err := p.Curve(t)
		if err != nil {
			return nil, err
		}
		out.Curves[t] = c
	}
	out.Points = fig2.Cells
	return out, nil
}

// Deviation returns, for one realistic-competitor point, the absolute
// difference between its measured drop and the synthetic curve's drop at
// the same competition level — the quantity that must be small for the
// paper's observation (b) to hold.
func (r *Fig5Result) Deviation(cell Fig2Cell) float64 {
	curve, ok := r.Curves[cell.Target]
	if !ok {
		return 0
	}
	d := cell.Drop - curve.DropAt(cell.CompetingRefsPerSec)
	if d < 0 {
		return -d
	}
	return d
}

// MaxDeviation returns the worst-case deviation across all points.
func (r *Fig5Result) MaxDeviation() float64 {
	var max float64
	for _, cell := range r.Points {
		if d := r.Deviation(cell); d > max {
			max = d
		}
	}
	return max
}

// MeanDeviation returns the average deviation across all points.
func (r *Fig5Result) MeanDeviation() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	var sum float64
	for _, cell := range r.Points {
		sum += r.Deviation(cell)
	}
	return sum / float64(len(r.Points))
}

// String renders the curves and points.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: drop vs competing refs/sec — SYN curves (S) and realistic points (R)\n")
	for _, t := range apps.RealisticTypes {
		curve := r.Curves[t]
		fmt.Fprintf(&b, "  %s(S):", t)
		for _, pt := range curve.Points {
			fmt.Fprintf(&b, " (%s, %s)", mrefs(pt.CompetingRefsPerSec), pct(pt.Drop))
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  %s(R):", t)
		for _, cell := range r.Points {
			if cell.Target != t {
				continue
			}
			fmt.Fprintf(&b, " [5x%s: %s, %s]", cell.Competitor, mrefs(cell.CompetingRefsPerSec), pct(cell.Drop))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "max |realistic - synthetic| deviation: %s (mean %s)\n",
		pct(r.MaxDeviation()), pct(r.MeanDeviation()))
	return b.String()
}

// CSV renders curve points and realistic points in one table.
func (r *Fig5Result) CSV() string {
	var c csvBuilder
	c.row("kind", "target", "competitor", "competing_refs_per_sec", "drop")
	for _, t := range apps.RealisticTypes {
		for _, pt := range r.Curves[t].Points {
			c.row("syn_curve", string(t), "SYN", pt.CompetingRefsPerSec, pt.Drop)
		}
	}
	for _, cell := range r.Points {
		c.row("realistic", string(cell.Target), string(cell.Competitor),
			cell.CompetingRefsPerSec, cell.Drop)
	}
	return c.String()
}
