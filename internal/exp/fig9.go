package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// Fig9Flow is one flow of the mixed workload with its measured and
// predicted drop.
type Fig9Flow struct {
	Type      apps.FlowType
	Measured  float64
	Predicted float64
}

// AbsError returns |predicted − measured|.
func (f Fig9Flow) AbsError() float64 { return abs(f.Predicted - f.Measured) }

// Fig9Mix is the paper's mixed workload per processor: 2 MON, 2 VPN,
// 1 FW, 1 RE.
var Fig9Mix = []apps.FlowType{apps.MON, apps.MON, apps.VPN, apps.VPN, apps.FW, apps.RE}

// Fig9Result reproduces Figure 9: measured versus predicted drop for each
// flow of the mixed workload.
type Fig9Result struct {
	Flows    []Fig9Flow
	MaxError float64
}

// RunFig9 measures and predicts the mixed workload.
func RunFig9(s Scale, p *core.Predictor) (*Fig9Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	measured, sorted, err := p.MeasuredDrops(Fig9Mix)
	if err != nil {
		return nil, fmt.Errorf("exp: fig9 measure: %w", err)
	}
	predicted, _, err := p.PredictMix(Fig9Mix)
	if err != nil {
		return nil, fmt.Errorf("exp: fig9 predict: %w", err)
	}
	out := &Fig9Result{}
	for i, t := range sorted {
		f := Fig9Flow{Type: t, Measured: measured[i], Predicted: predicted[i].Drop}
		out.Flows = append(out.Flows, f)
		if f.AbsError() > out.MaxError {
			out.MaxError = f.AbsError()
		}
	}
	return out, nil
}

// String renders per-flow measured/predicted/error rows.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: mixed workload (2 MON, 2 VPN, 1 FW, 1 RE per processor)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", "flow", "measured", "predicted", "|error|")
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "%-8s %10s %10s %10.2f\n",
			f.Type, pct(f.Measured), pct(f.Predicted), f.AbsError()*100)
	}
	fmt.Fprintf(&b, "max |error|: %.2f%%\n", r.MaxError*100)
	return b.String()
}

// CSV renders per-flow rows.
func (r *Fig9Result) CSV() string {
	var c csvBuilder
	c.row("flow", "measured", "predicted", "abs_error")
	for _, f := range r.Flows {
		c.row(string(f.Type), f.Measured, f.Predicted, f.AbsError())
	}
	return c.String()
}
