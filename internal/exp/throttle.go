package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// ThrottleResult reproduces the Section 4 containment demonstration: a
// flow that profiles like FW turns aggressive at run time; with the
// control element driven by counter monitoring, its memory-access rate is
// clamped back to the profiled level.
type ThrottleResult struct {
	// ProfiledRefsPerSec is the limit established by offline profiling.
	ProfiledRefsPerSec float64
	// Uncontained and Contained are the aggressor's refs/sec time series
	// without and with the containment loop.
	Uncontained []core.ThrottleSample
	Contained   []core.ThrottleSample
	// VictimUncontainedTput and VictimContainedTput are a MON
	// co-runner's packets/sec in the post-trigger steady state of each
	// run, measured at the same virtual-time position so they compare
	// directly. VictimBaselineTput is its pre-trigger throughput.
	VictimBaselineTput    float64
	VictimUncontainedTput float64
	VictimContainedTput   float64
}

// VictimProtection returns the fraction of the victim's throughput that
// containment preserved: 1 − uncontained/contained.
func (r *ThrottleResult) VictimProtection() float64 {
	if r.VictimContainedTput == 0 {
		return 0
	}
	return 1 - r.VictimUncontainedTput/r.VictimContainedTput
}

// RunThrottle builds two identical scenarios — a hidden-aggressor flow
// plus a MON victim on the same socket — and runs one with the
// containment loop and one without.
func RunThrottle(s Scale, p *core.Predictor) (*ThrottleResult, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	fwSolo, err := p.Solo(apps.FW)
	if err != nil {
		return nil, err
	}

	// The trigger fires well after the offline profiling phase (two
	// warmup-length windows of honest FW behaviour), whatever the scale's
	// packet rate is.
	trigger := uint64(fwSolo.Throughput()*s.Warmup*2*2) + 400
	build := func() (*core.RunResult, error) {
		return core.Scenario{
			Cfg:    s.Cfg,
			Params: s.Params,
			Flows: []core.FlowSpec{
				{Type: apps.FW, Core: 0, Domain: 0, Seed: core.SeedFor(apps.FW, 0), HiddenTrigger: trigger},
				{Type: apps.MON, Core: 1, Domain: 0, Seed: core.SeedFor(apps.MON, 1)},
			},
		}.Build()
	}

	out := &ThrottleResult{}
	interval := s.Window / 4
	steps := 24

	// Offline profile of the honest phase: run a fresh scenario's warmup
	// and measure before the trigger.
	prof, err := build()
	if err != nil {
		return nil, err
	}
	prof.Engine.RunSeconds(s.Warmup)
	before := prof.Engine.Flows[0].Core.Counters
	prof.Engine.RunSeconds(s.Warmup)
	after := prof.Engine.Flows[0].Core.Counters
	if after.Packets >= trigger {
		return nil, fmt.Errorf("exp: throttle profiling window crossed the trigger (%d of %d packets)",
			after.Packets, trigger)
	}
	delta := after.Sub(before)
	out.ProfiledRefsPerSec = float64(delta.L3Refs) / (float64(delta.Cycles) / s.Cfg.ClockHz)

	// Run 1: no containment — observe the aggression and the victim's
	// drop versus its own pre-trigger throughput.
	free, err := build()
	if err != nil {
		return nil, err
	}
	out.VictimBaselineTput = victimBaseline(free, s)
	out.Uncontained = passiveMonitor(free, interval, steps, s.Cfg.ClockHz)
	out.VictimUncontainedTput = victimTput(free, interval, s.Cfg.ClockHz)

	// Run 2: containment active.
	contained, err := build()
	if err != nil {
		return nil, err
	}
	victimBaseline(contained, s) // advance to the same virtual-time position
	cont, err := core.NewContainment(contained.Engine, 0, contained.Instances[0].Control, out.ProfiledRefsPerSec)
	if err != nil {
		return nil, err
	}
	out.Contained = cont.Run(interval, steps)
	out.VictimContainedTput = victimTput(contained, interval, s.Cfg.ClockHz)
	return out, nil
}

// victimBaseline measures the victim's throughput while the aggressor is
// still in its honest (pre-trigger) phase.
func victimBaseline(res *core.RunResult, s Scale) float64 {
	res.Engine.RunSeconds(s.Warmup)
	before := res.Engine.Flows[1].Core.Counters
	res.Engine.RunSeconds(s.Warmup)
	delta := res.Engine.Flows[1].Core.Counters.Sub(before)
	seconds := float64(delta.Cycles) / s.Cfg.ClockHz
	if seconds == 0 {
		return 0
	}
	return float64(delta.Packets) / seconds
}

// passiveMonitor samples a flow's refs/sec without adjusting anything.
func passiveMonitor(res *core.RunResult, interval float64, steps int, clockHz float64) []core.ThrottleSample {
	samples := make([]core.ThrottleSample, 0, steps)
	for i := 0; i < steps; i++ {
		before := res.Engine.Flows[0].Core.Counters
		res.Engine.RunSeconds(interval)
		delta := res.Engine.Flows[0].Core.Counters.Sub(before)
		seconds := float64(delta.Cycles) / clockHz
		rate := 0.0
		if seconds > 0 {
			rate = float64(delta.L3Refs) / seconds
		}
		samples = append(samples, core.ThrottleSample{Interval: i, RefsPerSec: rate})
	}
	return samples
}

// victimTput measures the victim's throughput over four more intervals.
func victimTput(res *core.RunResult, interval float64, clockHz float64) float64 {
	before := res.Engine.Flows[1].Core.Counters
	res.Engine.RunSeconds(interval * 4)
	delta := res.Engine.Flows[1].Core.Counters.Sub(before)
	seconds := float64(delta.Cycles) / clockHz
	if seconds == 0 {
		return 0
	}
	return float64(delta.Packets) / seconds
}

// PeakUncontained returns the aggressor's maximum observed rate without
// containment.
func (r *ThrottleResult) PeakUncontained() float64 {
	var max float64
	for _, s := range r.Uncontained {
		if s.RefsPerSec > max {
			max = s.RefsPerSec
		}
	}
	return max
}

// FinalContained returns the aggressor's rate at the end of containment.
func (r *ThrottleResult) FinalContained() float64 {
	if len(r.Contained) == 0 {
		return 0
	}
	return r.Contained[len(r.Contained)-1].RefsPerSec
}

// String renders the containment summary and both time series.
func (r *ThrottleResult) String() string {
	var b strings.Builder
	b.WriteString("Section 4: containing hidden aggressiveness\n")
	fmt.Fprintf(&b, "profiled rate: %s refs/sec\n", mrefs(r.ProfiledRefsPerSec))
	fmt.Fprintf(&b, "uncontained: peak %s refs/sec, victim MON at %.0f pkts/sec\n",
		mrefs(r.PeakUncontained()), r.VictimUncontainedTput)
	fmt.Fprintf(&b, "contained:   final %s refs/sec, victim MON at %.0f pkts/sec\n",
		mrefs(r.FinalContained()), r.VictimContainedTput)
	fmt.Fprintf(&b, "containment preserved %s of the victim's throughput\n",
		pct(r.VictimProtection()))
	b.WriteString("contained series (interval, refs/sec, delay):\n")
	for _, s := range r.Contained {
		fmt.Fprintf(&b, "  %3d %10s %8d\n", s.Interval, mrefs(s.RefsPerSec), s.DelayCycles)
	}
	return b.String()
}

// CSV renders both series.
func (r *ThrottleResult) CSV() string {
	var c csvBuilder
	c.row("series", "interval", "refs_per_sec", "delay_cycles")
	for _, s := range r.Uncontained {
		c.row("uncontained", s.Interval, s.RefsPerSec, s.DelayCycles)
	}
	for _, s := range r.Contained {
		c.row("contained", s.Interval, s.RefsPerSec, s.DelayCycles)
	}
	return c.String()
}
