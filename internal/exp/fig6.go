package exp

import (
	"fmt"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
)

// Fig6Point is one flow type's position on Figure 6: its solo hits/sec
// and the Equation 1 worst-case drop at δ = 43.75 ns.
type Fig6Point struct {
	Flow          apps.FlowType
	HitsPerSec    float64
	WorstCaseDrop float64
}

// Fig6Curve is one δ value's bound curve.
type Fig6Curve struct {
	DeltaSeconds float64
	HitsPerSec   []float64
	Drop         []float64
}

// Fig6Result reproduces Figure 6: the estimated maximum performance drop
// (Equation 1 with κ = 1) as a function of solo-run cache hits/sec, for
// three values of δ, with the measured flows overlaid as points.
type Fig6Result struct {
	Curves []Fig6Curve
	Points []Fig6Point
}

// Fig6Deltas are the paper's three δ values.
var Fig6Deltas = []float64{30e-9, core.DeltaSeconds, 60e-9}

// RunFig6 evaluates the bound curves and measures the flows' solo
// hits/sec.
func RunFig6(s Scale, p *core.Predictor) (*Fig6Result, error) {
	if p == nil {
		p = s.NewPredictor()
	}
	out := &Fig6Result{}
	for _, delta := range Fig6Deltas {
		curve := Fig6Curve{DeltaSeconds: delta}
		for h := 0.0; h <= 60e6; h += 2e6 {
			curve.HitsPerSec = append(curve.HitsPerSec, h)
			curve.Drop = append(curve.Drop, core.WorstCaseDrop(h, delta))
		}
		out.Curves = append(out.Curves, curve)
	}
	for _, t := range apps.RealisticTypes {
		solo, err := p.Solo(t)
		if err != nil {
			return nil, err
		}
		h := solo.L3HitsPerSec()
		out.Points = append(out.Points, Fig6Point{
			Flow:          t,
			HitsPerSec:    h,
			WorstCaseDrop: core.WorstCaseDrop(h, core.DeltaSeconds),
		})
	}
	return out, nil
}

// String renders the bound at the measured points and curve samples.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: worst-case drop (Eq. 1, κ=1) vs solo cache hits/sec\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "  δ=%.2fns:", c.DeltaSeconds*1e9)
		for i := 0; i < len(c.HitsPerSec); i += 5 {
			fmt.Fprintf(&b, " (%s,%s)", mrefs(c.HitsPerSec[i]), pct(c.Drop[i]))
		}
		b.WriteByte('\n')
	}
	b.WriteString("  measured flows (δ=43.75ns):\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "    %-8s hits/sec=%s worst-case drop=%s\n",
			pt.Flow, mrefs(pt.HitsPerSec), pct(pt.WorstCaseDrop))
	}
	return b.String()
}

// CSV renders curves and points.
func (r *Fig6Result) CSV() string {
	var c csvBuilder
	c.row("kind", "flow_or_delta_ns", "hits_per_sec", "worst_case_drop")
	for _, cv := range r.Curves {
		for i := range cv.HitsPerSec {
			c.row("curve", fmt.Sprintf("%.2f", cv.DeltaSeconds*1e9), cv.HitsPerSec[i], cv.Drop[i])
		}
	}
	for _, pt := range r.Points {
		c.row("point", string(pt.Flow), pt.HitsPerSec, pt.WorstCaseDrop)
	}
	return c.String()
}
