package exp

import (
	"fmt"
	"strings"
)

// csvBuilder accumulates comma-separated rows.
type csvBuilder struct {
	b strings.Builder
}

func (c *csvBuilder) row(fields ...interface{}) {
	for i, f := range fields {
		if i > 0 {
			c.b.WriteByte(',')
		}
		switch v := f.(type) {
		case float64:
			fmt.Fprintf(&c.b, "%.6g", v)
		default:
			fmt.Fprintf(&c.b, "%v", v)
		}
	}
	c.b.WriteByte('\n')
}

func (c *csvBuilder) String() string { return c.b.String() }

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// mrefs formats refs/sec in millions.
func mrefs(f float64) string { return fmt.Sprintf("%.1fM", f/1e6) }
