package netflow

import (
	"testing"

	"pktpredict/internal/click"
)

func TestAgeValidation(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	if _, err := tb.Age(&ctx, AgeConfig{}, &CountingExporter{}, 0); err == nil {
		t.Fatal("zero timeouts must fail")
	}
	if _, err := tb.Age(&ctx, AgeConfig{InactiveTimeout: 1}, nil, 0); err == nil {
		t.Fatal("nil exporter must fail")
	}
}

func TestAgeInactiveTimeout(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	tb.Update(&ctx, tuple(1), 100)
	// Advance the table clock with other flows.
	for i := uint32(2); i < 40; i++ {
		tb.Update(&ctx, tuple(i), 64)
	}
	exp := &CountingExporter{}
	n, err := tb.Age(&ctx, AgeConfig{InactiveTimeout: 20}, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("idle flow not expired")
	}
	// Flow 1 (idle for 38 ticks) must be among the exports with its
	// accumulated counters.
	found := false
	for _, r := range exp.Records {
		if r.Key == tuple(1) {
			found = true
			if r.Packets != 1 || r.Bytes != 100 {
				t.Fatalf("record = %+v, want 1 pkt / 100 bytes", r)
			}
			if r.First == 0 && r.Last == 0 {
				t.Fatal("timestamps missing")
			}
		}
	}
	if !found {
		t.Fatal("expired flow not exported")
	}
	if _, ok := tb.Get(tuple(1)); ok {
		t.Fatal("expired flow still in table")
	}
}

func TestAgeActiveTimeoutReportsLongFlows(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	// One long-lived flow updated continuously.
	for i := 0; i < 50; i++ {
		tb.Update(&ctx, tuple(9), 64)
	}
	exp := &CountingExporter{}
	// Inactive timeout alone would not expire it...
	n, _ := tb.Age(&ctx, AgeConfig{InactiveTimeout: 100}, exp, 0)
	if n != 0 {
		t.Fatal("active flow wrongly expired by inactive timeout")
	}
	// ...but the active timeout does.
	n, _ = tb.Age(&ctx, AgeConfig{ActiveTimeout: 30}, exp, 0)
	if n != 1 {
		t.Fatalf("active timeout expired %d records, want 1", n)
	}
	if exp.Records[0].Packets != 50 {
		t.Fatalf("exported %d packets, want 50", exp.Records[0].Packets)
	}
}

func TestAgePartialScanRotates(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	for i := uint32(0); i < 32; i++ {
		tb.Update(&ctx, tuple(i), 64)
	}
	// Make everything stale.
	for i := uint32(100); i < 200; i++ {
		tb.Update(&ctx, tuple(i), 64)
	}
	exp := &CountingExporter{}
	total := 0
	// Scanning quarters must cover the whole table after 4 passes.
	for pass := 0; pass < 4; pass++ {
		n, err := tb.Age(&ctx, AgeConfig{InactiveTimeout: 1}, exp, 4)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	// Only the very last updated flow (idle for 0 ticks) may survive.
	if tb.Occupied() > 1 {
		t.Fatalf("%d flows survived a full rotation of stale-expiry scans", tb.Occupied())
	}
	if uint64(total) != tb.Exported {
		t.Fatalf("exported counter %d != returned total %d", tb.Exported, total)
	}
}

func TestAgeEmitsScanTrace(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	tb.Update(&ctx, tuple(1), 64)
	ctx.Ops = ctx.Ops[:0]
	if _, err := tb.Age(&ctx, AgeConfig{InactiveTimeout: 1000}, &CountingExporter{}, 0); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Ops) < tb.Size() {
		t.Fatalf("scan emitted %d ops for %d slots", len(ctx.Ops), tb.Size())
	}
}

func TestCountingExporterKeepBound(t *testing.T) {
	c := &CountingExporter{Keep: 2}
	for i := uint32(0); i < 5; i++ {
		c.Export(Record{Packets: uint64(i)})
	}
	if c.Count != 5 || len(c.Records) != 2 {
		t.Fatalf("count=%d kept=%d, want 5/2", c.Count, len(c.Records))
	}
	if c.Records[1].Packets != 4 {
		t.Fatalf("kept records not the most recent: %+v", c.Records)
	}
}

func TestExporterFunc(t *testing.T) {
	var got Record
	ExporterFunc(func(r Record) { got = r }).Export(Record{Packets: 7})
	if got.Packets != 7 {
		t.Fatal("ExporterFunc did not forward")
	}
}
