// Package netflow implements per-flow traffic statistics in the style of
// Cisco NetFlow, the paper's MON workload: hash the IP and transport
// header of each packet, index a hash table of per-TCP/UDP-flow entries,
// and update a packet counter and timestamp in the matching entry.
//
// The table is the canonical "memory-intensive but cacheable" structure:
// at the paper's 100000 flows it occupies several megabytes, benefits
// heavily from the L3 cache, and is therefore the workload most sensitive
// to cache contention (Figure 2).
package netflow

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
)

// fnFlowStats matches the paper's flow_statistics profile symbol.
var fnFlowStats = hw.RegisterFunc("flow_statistics")

// Entry is one flow record.
type Entry struct {
	Key      netpkt.FiveTuple
	Packets  uint64
	Bytes    uint64
	First    uint64 // packet sequence number at creation
	LastSeen uint64 // packet sequence number of the last update
	used     bool
}

// Table is an open-addressing (linear probing) flow table in the layout
// production collectors use: a bucket-index array (hash → record slot)
// and line-sized flow records. Each update reads the index line, probes
// record lines, and writes the matching record.
type Table struct {
	slots  []Entry
	index  mem.Region // bucket-index array, 8 bytes per slot
	region mem.Region // flow records, one line each
	mask   uint64

	// Statistics.
	Lookups   uint64
	Inserts   uint64
	Probes    uint64
	Evictions uint64 // slots reused after collisions exhaust probe budget
	Exported  uint64 // records expired by Age

	clock     uint64
	ageCursor int
}

// maxProbes bounds a probe chain; production flow tables bound probing
// and evict (export) the record at the end of the chain when full.
const maxProbes = 8

// NewTable builds a table with capacity slots (rounded up to a power of
// two) allocated from arena.
func NewTable(arena *mem.Arena, capacity int) *Table {
	if capacity <= 0 {
		panic(fmt.Sprintf("netflow: capacity %d must be positive", capacity))
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Table{
		slots:  make([]Entry, size),
		index:  mem.NewRegion(arena, size, 8, false),
		region: mem.NewRegion(arena, size, hw.LineSize, true),
		mask:   uint64(size - 1),
	}
}

// Size returns the slot count.
func (t *Table) Size() int { return len(t.slots) }

// SimBytes returns the table's simulated footprint.
func (t *Table) SimBytes() uint64 { return t.region.Size() }

// Occupied returns the number of used slots.
func (t *Table) Occupied() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].used {
			n++
		}
	}
	return n
}

// Update records one packet of size bytes for flow key, emitting the
// probe-and-update trace: one load per probed slot and one store for the
// written record.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Element.Process)
func (t *Table) Update(ctx *click.Ctx, key netpkt.FiveTuple, size int) *Entry {
	old := ctx.SetFunc(fnFlowStats)
	defer ctx.SetFunc(old)

	t.clock++
	t.Lookups++
	h := key.Hash()
	ctx.Compute(30, 28) // header hash computation
	idx := h & t.mask
	ctx.Load(t.index.Addr(int(idx))) // bucket-index entry
	var victim *Entry
	victimIdx := idx
	for probe := 0; probe < maxProbes; probe++ {
		slot := &t.slots[idx]
		ctx.Load(t.region.Addr(int(idx))) // record line
		ctx.Compute(4, 5)
		t.Probes++
		if slot.used && slot.Key == key {
			slot.Packets++
			slot.Bytes += uint64(size)
			slot.LastSeen = t.clock
			ctx.Store(t.region.Addr(int(idx)))
			return slot
		}
		if !slot.used {
			victim = slot
			victimIdx = idx
			break
		}
		// Remember the stalest record in the chain as the eviction
		// candidate.
		if victim == nil || slot.LastSeen < victim.LastSeen {
			victim = slot
			victimIdx = idx
		}
		idx = (idx + 1) & t.mask
	}
	if victim.used {
		t.Evictions++
	}
	t.Inserts++
	*victim = Entry{Key: key, Packets: 1, Bytes: uint64(size), First: t.clock, LastSeen: t.clock, used: true}
	ctx.Store(t.index.Addr(int(victimIdx)))
	ctx.Store(t.region.Addr(int(victimIdx)))
	return victim
}

// Get returns the entry for key without tracing, for tests and export.
func (t *Table) Get(key netpkt.FiveTuple) (Entry, bool) {
	idx := key.Hash() & t.mask
	for probe := 0; probe < maxProbes; probe++ {
		slot := &t.slots[idx]
		if slot.used && slot.Key == key {
			return *slot, true
		}
		if !slot.used {
			return Entry{}, false
		}
		idx = (idx + 1) & t.mask
	}
	return Entry{}, false
}

// Element is the NetFlow click element.
type Element struct {
	Table  *Table
	Failed uint64 // packets whose 5-tuple could not be extracted
}

// Class implements click.Element.
func (e *Element) Class() string { return "NetFlow" }

// Process implements click.Element.
func (e *Element) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	ft, err := netpkt.ExtractFiveTuple(p.Data)
	if err != nil {
		e.Failed++
		return click.Drop
	}
	// Reading the transport header may touch a second packet line.
	old := ctx.SetFunc(fnFlowStats)
	ctx.LoadBytes(p.Addr+netpkt.IPv4HeaderLen, 4)
	ctx.SetFunc(old)
	e.Table.Update(ctx, ft, len(p.Data))
	return click.Continue
}

// Stat implements click.Stats.
func (e *Element) Stat(name string) (uint64, bool) {
	switch name {
	case "lookups":
		return e.Table.Lookups, true
	case "inserts":
		return e.Table.Inserts, true
	case "evictions":
		return e.Table.Evictions, true
	case "failed":
		return e.Failed, true
	}
	return 0, false
}

func init() {
	click.Register("NetFlow", func(env *click.Env, args click.Args) (interface{}, error) {
		n, err := args.Int("ENTRIES", 100000)
		if err != nil {
			return nil, err
		}
		return &Element{Table: NewTable(env.Arena, n)}, nil
	})
}
