package netflow

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/netpkt"
)

// Flow export and ageing, the part of NetFlow that turns the table into a
// monitoring product: records idle for longer than the inactive timeout,
// or alive for longer than the active timeout, are expired and handed to
// an exporter. The paper's MON workload exercises only the update path
// (its traffic keeps all 100k flows live); export exists for workloads
// with flow churn and is exercised by tests and the ageing sweep in the
// benchmarks.

// Record is one exported flow record, the NetFlow v5-style summary.
type Record struct {
	Key     netpkt.FiveTuple
	Packets uint64
	Bytes   uint64
	First   uint64 // creation timestamp (packet sequence)
	Last    uint64 // last-update timestamp
}

// Exporter receives expired flow records.
type Exporter interface {
	Export(Record)
}

// ExporterFunc adapts a function to Exporter.
type ExporterFunc func(Record)

// Export implements Exporter.
func (f ExporterFunc) Export(r Record) { f(r) }

// CountingExporter counts and retains the last exported records, for
// tests and diagnostics.
type CountingExporter struct {
	Count   uint64
	Records []Record
	// Keep bounds retained records; 0 keeps everything.
	Keep int
}

// Export implements Exporter.
func (c *CountingExporter) Export(r Record) {
	c.Count++
	if c.Keep > 0 && len(c.Records) >= c.Keep {
		copy(c.Records, c.Records[1:])
		c.Records[len(c.Records)-1] = r
		return
	}
	c.Records = append(c.Records, r)
}

// AgeConfig sets the expiry policy in table-clock ticks (one tick per
// update).
type AgeConfig struct {
	// InactiveTimeout expires records not updated for this many ticks.
	InactiveTimeout uint64
	// ActiveTimeout expires records alive for this many ticks even if
	// still being updated (long-lived flows are reported periodically).
	ActiveTimeout uint64
}

// Validate reports configuration errors.
func (c AgeConfig) Validate() error {
	if c.InactiveTimeout == 0 && c.ActiveTimeout == 0 {
		return fmt.Errorf("netflow: ageing requires at least one timeout")
	}
	return nil
}

// Age scans a fraction of the table (1/scanDiv of the slots, starting at
// a rotating cursor as production collectors do), expiring records per
// cfg and exporting them. It emits the scan's memory trace and returns
// the number of exported records. scanDiv 0 scans the whole table.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Element.Process on the packet path)
func (t *Table) Age(ctx *click.Ctx, cfg AgeConfig, exp Exporter, scanDiv int) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if exp == nil {
		return 0, fmt.Errorf("netflow: ageing requires an exporter")
	}
	span := len(t.slots)
	if scanDiv > 1 {
		span = len(t.slots) / scanDiv
	}
	exported := 0
	for i := 0; i < span; i++ {
		idx := (t.ageCursor + i) & int(t.mask)
		slot := &t.slots[idx]
		ctx.Load(t.region.Addr(idx))
		ctx.Compute(3, 4)
		if !slot.used {
			continue
		}
		idleFor := t.clock - slot.LastSeen
		aliveFor := t.clock - slot.First
		expired := (cfg.InactiveTimeout > 0 && idleFor >= cfg.InactiveTimeout) ||
			(cfg.ActiveTimeout > 0 && aliveFor >= cfg.ActiveTimeout)
		if !expired {
			continue
		}
		exp.Export(Record{
			Key:     slot.Key,
			Packets: slot.Packets,
			Bytes:   slot.Bytes,
			First:   slot.First,
			Last:    slot.LastSeen,
		})
		*slot = Entry{}
		ctx.Store(t.region.Addr(idx))
		exported++
	}
	t.ageCursor = (t.ageCursor + span) & int(t.mask)
	t.Exported += uint64(exported)
	return exported, nil
}
