package netflow

import (
	"testing"
	"testing/quick"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/netpkt"
	"pktpredict/internal/rng"
)

func newTable(capacity int) *Table { return NewTable(mem.NewArena(0), capacity) }

func tuple(i uint32) netpkt.FiveTuple {
	return netpkt.FiveTuple{Src: i, Dst: i ^ 0xffff, SrcPort: uint16(i), DstPort: 80, Proto: netpkt.ProtoUDP}
}

func TestTableRoundsUpToPowerOfTwo(t *testing.T) {
	if got := newTable(100000).Size(); got != 131072 {
		t.Fatalf("Size = %d, want 131072", got)
	}
}

func TestUpdateCreatesAndAccumulates(t *testing.T) {
	tb := newTable(1024)
	var ctx click.Ctx
	k := tuple(7)
	tb.Update(&ctx, k, 64)
	tb.Update(&ctx, k, 100)
	e, ok := tb.Get(k)
	if !ok {
		t.Fatal("entry missing after updates")
	}
	if e.Packets != 2 || e.Bytes != 164 {
		t.Fatalf("entry = %+v, want 2 pkts / 164 bytes", e)
	}
	if tb.Inserts != 1 || tb.Lookups != 2 {
		t.Fatalf("stats: %d inserts / %d lookups", tb.Inserts, tb.Lookups)
	}
}

func TestGetMissingFlow(t *testing.T) {
	tb := newTable(64)
	if _, ok := tb.Get(tuple(1)); ok {
		t.Fatal("empty table returned an entry")
	}
}

func TestLastSeenAdvances(t *testing.T) {
	tb := newTable(64)
	var ctx click.Ctx
	tb.Update(&ctx, tuple(1), 64)
	e1, _ := tb.Get(tuple(1))
	tb.Update(&ctx, tuple(2), 64)
	tb.Update(&ctx, tuple(1), 64)
	e2, _ := tb.Get(tuple(1))
	if e2.LastSeen <= e1.LastSeen {
		t.Fatalf("LastSeen did not advance: %d then %d", e1.LastSeen, e2.LastSeen)
	}
}

func TestCollisionEvictsStalest(t *testing.T) {
	// A 2-slot table forces collisions quickly: after many distinct flows,
	// evictions must occur and the table stays consistent.
	tb := newTable(2)
	var ctx click.Ctx
	for i := uint32(0); i < 100; i++ {
		tb.Update(&ctx, tuple(i), 64)
	}
	if tb.Evictions == 0 {
		t.Fatal("no evictions despite overload")
	}
	if occ := tb.Occupied(); occ > 2 {
		t.Fatalf("occupied = %d > capacity", occ)
	}
}

func TestUpdateEmitsLineTrace(t *testing.T) {
	tb := newTable(1024)
	var ctx click.Ctx
	tb.Update(&ctx, tuple(3), 64)
	var loads, stores int
	fn := hw.RegisterFunc("flow_statistics")
	for _, op := range ctx.Ops {
		switch op.Kind {
		case hw.OpLoad:
			loads++
		case hw.OpStore:
			stores++
		}
		if op.Func != fn {
			t.Fatalf("op %+v not attributed to flow_statistics", op)
		}
	}
	// A fresh flow costs one key-line probe and two stores (key line and
	// stats line of the new record).
	if loads < 1 || stores != 2 {
		t.Fatalf("trace: %d loads / %d stores, want ≥1 / 2", loads, stores)
	}
}

func TestSlotsAreLinePadded(t *testing.T) {
	tb := newTable(16)
	a0 := tb.region.Addr(0)
	a1 := tb.region.Addr(1)
	if hw.LineOf(a0) == hw.LineOf(a1) {
		t.Fatal("adjacent slots share a line; padding missing")
	}
}

// Property: packet and byte counts per flow match a reference map count,
// as long as the table is big enough to avoid evictions.
func TestCountsMatchReferenceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tb := newTable(4096)
		var ctx click.Ctx
		ref := make(map[netpkt.FiveTuple]uint64)
		for i := 0; i < 500; i++ {
			k := tuple(uint32(r.Intn(64)))
			tb.Update(&ctx, k, 64)
			ref[k]++
			ctx.Ops = ctx.Ops[:0]
		}
		if tb.Evictions > 0 {
			return true // eviction voids the comparison; not expected at this load
		}
		for k, want := range ref {
			e, ok := tb.Get(k)
			if !ok || e.Packets != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestElementProcessesPackets(t *testing.T) {
	tb := newTable(1024)
	el := &Element{Table: tb}
	var ctx click.Ctx

	b := make([]byte, 64)
	netpkt.WriteIPv4(b, netpkt.IPv4Header{TotalLen: 64, TTL: 64, Proto: netpkt.ProtoUDP, Src: 1, Dst: 2})
	p := &click.Packet{Data: b, Addr: 0x4000}
	if v := el.Process(&ctx, p); v != click.Continue {
		t.Fatalf("verdict = %v", v)
	}
	if tb.Lookups != 1 {
		t.Fatalf("lookups = %d", tb.Lookups)
	}
	if v, ok := el.Stat("lookups"); !ok || v != 1 {
		t.Fatalf("stat lookups = %d/%v", v, ok)
	}
}

func TestElementDropsUnparseable(t *testing.T) {
	el := &Element{Table: newTable(64)}
	var ctx click.Ctx
	p := &click.Packet{Data: make([]byte, 10), Addr: 0}
	if v := el.Process(&ctx, p); v != click.Drop {
		t.Fatalf("verdict = %v, want drop", v)
	}
	if el.Failed != 1 {
		t.Fatalf("failed = %d", el.Failed)
	}
}

func TestNewTableValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTable(0)
}
