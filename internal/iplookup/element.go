package iplookup

import (
	"encoding/binary"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// fnRadixLookup matches the paper's radix_ip_lookup profile symbol.
var fnRadixLookup = hw.RegisterFunc("radix_ip_lookup")

// Element is the RadixIPLookup click element: it looks up each packet's
// destination in the trie and reads the matched route's adjacency entry
// (next-hop address, output port, MAC rewrite info — the data a real
// forwarding path loads after the longest-prefix match). Packets without
// a route are dropped.
type Element struct {
	Trie    *RadixTrie
	adj     mem.Region // adjacency table: one line-padded entry per route
	NoRoute uint64
}

// NewElement wraps an existing trie, allocating the adjacency table for
// adjEntries next hops from arena.
func NewElement(trie *RadixTrie, arena *mem.Arena, adjEntries int) *Element {
	if adjEntries < 1 {
		adjEntries = 1
	}
	return &Element{
		Trie: trie,
		adj:  mem.NewRegion(arena, adjEntries, hw.LineSize, true),
	}
}

// Class implements click.Element.
func (e *Element) Class() string { return "RadixIPLookup" }

// Process implements click.Element.
func (e *Element) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	old := ctx.SetFunc(fnRadixLookup)
	defer ctx.SetFunc(old)
	// The destination is in the already-loaded header line; reading it is
	// an L1 hit but still a reference.
	ctx.Load(p.Addr + 16)
	dst := binary.BigEndian.Uint32(p.Data[16:])
	nh := e.Trie.Lookup(ctx, dst)
	if nh == NoRoute {
		e.NoRoute++
		ctx.Compute(8, 8)
		return click.Drop
	}
	// Read the adjacency entry for the matched route.
	ctx.Load(e.adj.Addr(int(nh) % e.adj.Count))
	ctx.Compute(12, 10)
	return click.Continue
}

// Stat implements click.Stats.
func (e *Element) Stat(name string) (uint64, bool) {
	if name == "noroute" {
		return e.NoRoute, true
	}
	return 0, false
}

func init() {
	click.Register("RadixIPLookup", func(env *click.Env, args click.Args) (interface{}, error) {
		n, err := args.Int("ROUTES", 128000)
		if err != nil {
			return nil, err
		}
		seed, err := args.Uint64("SEED", env.Seed)
		if err != nil {
			return nil, err
		}
		t := New(env.Arena, nil)
		RandomTable(t, n, seed)
		t.recordFootprint()
		return NewElement(t, env.Arena, n+1), nil
	})
}
