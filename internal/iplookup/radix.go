// Package iplookup implements longest-prefix-match IPv4 route lookup with
// a multi-bit radix trie (controlled prefix expansion), the lookup
// structure behind the paper's IP-forwarding workload: "the RadixTrie
// lookup algorithm provided with the Click distribution and a routing
// table of 128000 entries".
//
// The trie's nodes live in simulated memory; every node visited during a
// lookup emits the corresponding load, so the structure's cache footprint
// — hot top levels, cold deep levels — emerges from real traversals of a
// real table. The default strides are fine (an 8-bit root, then 2-bit
// levels), giving random-destination lookups the multi-node, multi-line
// walk that makes radix-trie IP lookup cache-hungry on the paper's
// platform.
package iplookup

import (
	"fmt"

	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/rng"
)

// NoRoute is returned by Lookup when no prefix covers the address.
const NoRoute = ^uint32(0)

// DefaultStrides is the level layout of the trie: an 8-bit root followed
// by 2-bit internal levels, covering prefix lengths up to /32.
var DefaultStrides = []int{8, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}

// entry is one slot of a trie node. Entries are stored in a single flat
// array (nodes are 2^stride consecutive entries) to keep the Go-side
// memory proportional to the simulated layout.
type entry struct {
	route uint32 // NoRoute if none
	child int32  // node id, -1 if none
	plen  int8   // original prefix length of route; -1 if none
}

// simEntryBytes is each entry's simulated size.
const simEntryBytes = 8

// RadixTrie is a multi-bit trie over IPv4 prefixes. Prefix lengths that
// do not align with a level boundary are expanded into the covering level
// (controlled prefix expansion), preserving exact longest-prefix-match
// semantics.
type RadixTrie struct {
	strides []int
	bounds  []int   // cumulative prefix-length boundaries
	level   []int32 // level of each node (index into strides)
	offset  []int32 // first entry index of each node
	entries []entry
	base    hw.Addr // simulated base of the entry array
	hdrBase hw.Addr // simulated base of the node-descriptor array
	arena   *mem.Arena
	routes  int
}

// New builds an empty trie allocating node memory from arena. A nil
// strides uses DefaultStrides.
func New(arena *mem.Arena, strides []int) *RadixTrie {
	if strides == nil {
		strides = DefaultStrides
	}
	total := 0
	bounds := make([]int, len(strides))
	for i, s := range strides {
		if s < 1 || s > 16 {
			panic(fmt.Sprintf("iplookup: stride %d out of range", s))
		}
		total += s
		bounds[i] = total
	}
	if total != 32 {
		panic(fmt.Sprintf("iplookup: strides cover %d bits, want 32", total))
	}
	t := &RadixTrie{strides: strides, bounds: bounds, arena: arena}
	// Reserve generous contiguous simulated ranges for entries and node
	// descriptors; actual usage is bounded by insertions. 1<<26 entries
	// × 8 B = 512 MiB of address space, of which only allocated entries
	// are ever touched — recordFootprint reports the touched extent once
	// the table is populated, so the reservation never counts as state.
	t.base = arena.Reserve(uint64(1<<26)*simEntryBytes, hw.LineSize)
	t.hdrBase = arena.Reserve(uint64(1<<24)*8, hw.LineSize)
	t.newNode(0) // root
	return t
}

// recordFootprint reports the trie's touched extents to the arena's
// binding record: the bytes lookups actually reference, and the bytes a
// state migration would copy. Call it after the table is populated.
func (t *RadixTrie) recordFootprint() {
	t.arena.Record(t.base, uint64(len(t.entries))*simEntryBytes)
	t.arena.Record(t.hdrBase, uint64(len(t.level))*8)
}

func (t *RadixTrie) newNode(level int) int32 {
	size := 1 << t.strides[level]
	off := int32(len(t.entries))
	for i := 0; i < size; i++ {
		t.entries = append(t.entries, entry{route: NoRoute, child: -1, plen: -1})
	}
	t.level = append(t.level, int32(level))
	t.offset = append(t.offset, off)
	return int32(len(t.level) - 1)
}

// entryAddr returns the simulated address of entry index e.
func (t *RadixTrie) entryAddr(e int32) hw.Addr {
	return t.base + hw.Addr(uint64(e)*simEntryBytes)
}

// Routes returns the number of inserted prefixes.
func (t *RadixTrie) Routes() int { return t.routes }

// Nodes returns the number of allocated trie nodes.
func (t *RadixTrie) Nodes() int { return len(t.level) }

// SimBytes returns the trie's simulated memory footprint (entries
// actually allocated, not the reserved range).
func (t *RadixTrie) SimBytes() uint64 {
	return uint64(len(t.entries)) * simEntryBytes
}

// Insert adds a route for prefix/plen. Later inserts for the same prefix
// overwrite earlier ones. Inserting plen 0 sets the default route.
func (t *RadixTrie) Insert(prefix uint32, plen int, nexthop uint32) {
	if plen < 0 || plen > 32 {
		panic(fmt.Sprintf("iplookup: prefix length %d invalid", plen))
	}
	if nexthop == NoRoute {
		panic("iplookup: nexthop collides with NoRoute sentinel")
	}
	prefix &= maskOf(plen)
	t.insert(0, 0, prefix, plen, nexthop)
	t.routes++
}

func maskOf(plen int) uint32 {
	if plen == 0 {
		return 0
	}
	return ^uint32(0) << (32 - plen)
}

// insert walks to the level whose boundary covers plen, expanding the
// prefix across all entries it covers at that level.
func (t *RadixTrie) insert(node int32, depth int, prefix uint32, plen int, nexthop uint32) {
	level := int(t.level[node])
	stride := t.strides[level]
	shift := 32 - depth - stride
	index := int(prefix>>shift) & (1<<stride - 1)
	off := t.offset[node]

	if plen <= t.bounds[level] {
		// The prefix ends at or within this level: expand it over all
		// entries whose top bits match. A longer prefix expanded earlier
		// onto the same entries keeps precedence.
		low := plen - depth
		if low < 0 {
			low = 0
		}
		span := 1 << (stride - low)
		start := index &^ (span - 1)
		for i := start; i < start+span; i++ {
			e := &t.entries[off+int32(i)]
			if int(e.plen) <= plen {
				e.route = nexthop
				e.plen = int8(plen)
			}
		}
		return
	}
	child := t.entries[off+int32(index)].child
	if child < 0 {
		child = t.newNode(level + 1)
		t.entries[off+int32(index)].child = child
	}
	t.insert(child, depth+stride, prefix, plen, nexthop)
}

// Lookup returns the longest-prefix-match next hop for dst, emitting the
// trace of the traversal into ctx: each visited node costs a descriptor
// load (the stride/occupancy word a compressed multibit trie reads
// first) and an entry load, as tree-bitmap-style lookup structures do.
//
//dataplane:stamped emits under the caller's Ctx bracket (called from Element.Process)
func (t *RadixTrie) Lookup(ctx *click.Ctx, dst uint32) uint32 {
	best := NoRoute
	node := int32(0)
	depth := 0
	for {
		ctx.Load(t.hdrBase + hw.Addr(uint64(node)*8))
		level := int(t.level[node])
		stride := t.strides[level]
		shift := 32 - depth - stride
		index := int32(dst>>shift) & (1<<stride - 1)
		e := t.entries[t.offset[node]+index]
		ctx.Load(t.entryAddr(t.offset[node] + index))
		ctx.Compute(7, 9) // shift/mask/branch per level
		if e.route != NoRoute {
			best = e.route
		}
		if e.child < 0 {
			return best
		}
		node = e.child
		depth += stride
	}
}

// LookupPlain is Lookup without trace emission, for tests and table
// verification.
func (t *RadixTrie) LookupPlain(dst uint32) uint32 {
	best := NoRoute
	node := int32(0)
	depth := 0
	for {
		level := int(t.level[node])
		stride := t.strides[level]
		shift := 32 - depth - stride
		index := int32(dst>>shift) & (1<<stride - 1)
		e := t.entries[t.offset[node]+index]
		if e.route != NoRoute {
			best = e.route
		}
		if e.child < 0 {
			return best
		}
		node = e.child
		depth += stride
	}
}

// RandomTable fills the trie with n routes whose prefix lengths follow a
// backbone-like mix (20% /16, 20% /20, 60% /24), plus a default route,
// mirroring the paper's 128000-entry table loaded with random prefixes.
// Next hops index an adjacency table of n+1 entries (see Element).
func RandomTable(t *RadixTrie, n int, seed uint64) {
	r := rng.New(seed)
	t.Insert(0, 0, 0) // default route: every lookup resolves
	for i := 0; i < n; i++ {
		var plen int
		switch p := r.Float64(); {
		case p < 0.20:
			plen = 16
		case p < 0.40:
			plen = 20
		default:
			plen = 24
		}
		t.Insert(r.Uint32(), plen, uint32(r.Intn(n))+1)
	}
}
