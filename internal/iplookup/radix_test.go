package iplookup

import (
	"testing"
	"testing/quick"

	"pktpredict/internal/click"
	"pktpredict/internal/mem"
	"pktpredict/internal/rng"
)

func newTrie() *RadixTrie { return New(mem.NewArena(0), nil) }

func TestLookupEmptyTrie(t *testing.T) {
	tr := newTrie()
	if got := tr.LookupPlain(0x01020304); got != NoRoute {
		t.Fatalf("empty trie returned route %d", got)
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := newTrie()
	tr.Insert(0, 0, 99)
	for _, dst := range []uint32{0, 1, 0xffffffff, 0x0a000001} {
		if got := tr.LookupPlain(dst); got != 99 {
			t.Fatalf("Lookup(%#x) = %d, want default 99", dst, got)
		}
	}
}

func TestLongestPrefixWins(t *testing.T) {
	tr := newTrie()
	tr.Insert(0x0a000000, 8, 1)  // 10/8
	tr.Insert(0x0a010000, 16, 2) // 10.1/16
	tr.Insert(0x0a010200, 24, 3) // 10.1.2/24
	cases := []struct {
		dst  uint32
		want uint32
	}{
		{0x0a000001, 1}, // 10.0.0.1 → /8
		{0x0a010001, 2}, // 10.1.0.1 → /16
		{0x0a010201, 3}, // 10.1.2.1 → /24
		{0x0b000001, NoRoute},
	}
	for _, c := range cases {
		if got := tr.LookupPlain(c.dst); got != c.want {
			t.Fatalf("Lookup(%#x) = %d, want %d", c.dst, got, c.want)
		}
	}
}

func TestNonAlignedPrefixExpansion(t *testing.T) {
	tr := newTrie()
	tr.Insert(0xC0000000, 3, 7) // 110.../3 does not align to 4-bit levels
	if got := tr.LookupPlain(0xC0ffffff); got != 7 {
		t.Fatalf("inside /3 = %d, want 7", got)
	}
	if got := tr.LookupPlain(0xE0000000); got != NoRoute {
		t.Fatalf("outside /3 = %d, want NoRoute", got)
	}
	if got := tr.LookupPlain(0xBfffffff); got != NoRoute {
		t.Fatalf("below /3 = %d, want NoRoute", got)
	}
}

func TestHostRoute(t *testing.T) {
	tr := newTrie()
	tr.Insert(0x01020304, 32, 5)
	if got := tr.LookupPlain(0x01020304); got != 5 {
		t.Fatalf("host route = %d, want 5", got)
	}
	if got := tr.LookupPlain(0x01020305); got != NoRoute {
		t.Fatalf("adjacent host = %d, want NoRoute", got)
	}
}

func TestOverwriteRoute(t *testing.T) {
	tr := newTrie()
	tr.Insert(0x0a000000, 8, 1)
	tr.Insert(0x0a000000, 8, 2)
	if got := tr.LookupPlain(0x0a000001); got != 2 {
		t.Fatalf("route = %d, want overwritten value 2", got)
	}
}

func TestInsertValidation(t *testing.T) {
	tr := newTrie()
	for _, f := range []func(){
		func() { tr.Insert(0, -1, 1) },
		func() { tr.Insert(0, 33, 1) },
		func() { tr.Insert(0, 8, NoRoute) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBadStridesPanic(t *testing.T) {
	for _, strides := range [][]int{{8, 8}, {40}, {0, 32}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("strides %v should panic", strides)
				}
			}()
			New(mem.NewArena(0), strides)
		}()
	}
}

// linearLPM is the reference implementation: scan all prefixes, keep the
// longest that covers dst.
type route struct {
	prefix uint32
	plen   int
	nh     uint32
}

func linearLPM(routes []route, dst uint32) uint32 {
	best, bestLen := NoRoute, -1
	for _, r := range routes {
		if dst&maskOf(r.plen) == r.prefix&maskOf(r.plen) && r.plen > bestLen {
			best, bestLen = r.nh, r.plen
		}
	}
	return best
}

// Property: the trie agrees with the linear scan on random tables and
// random lookups, for arbitrary prefix lengths including non-aligned ones.
func TestTrieMatchesLinearQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tr := newTrie()
		var routes []route
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			rt := route{prefix: r.Uint32(), plen: r.Intn(33), nh: uint32(i + 1)}
			rt.prefix &= maskOf(rt.plen)
			// Later inserts overwrite: mirror that in the reference by
			// removing earlier identical prefixes.
			for j := 0; j < len(routes); j++ {
				if routes[j].plen == rt.plen && routes[j].prefix == rt.prefix {
					routes = append(routes[:j], routes[j+1:]...)
					j--
				}
			}
			routes = append(routes, rt)
			tr.Insert(rt.prefix, rt.plen, rt.nh)
		}
		for i := 0; i < 200; i++ {
			dst := r.Uint32()
			if tr.LookupPlain(dst) != linearLPM(routes, dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTableProperties(t *testing.T) {
	tr := newTrie()
	RandomTable(tr, 5000, 7)
	if tr.Routes() != 5001 { // 5000 + default
		t.Fatalf("routes = %d", tr.Routes())
	}
	// Every lookup resolves (default route).
	r := rng.New(99)
	for i := 0; i < 1000; i++ {
		if tr.LookupPlain(r.Uint32()) == NoRoute {
			t.Fatal("lookup failed despite default route")
		}
	}
	if tr.SimBytes() == 0 || tr.Nodes() < 100 {
		t.Fatalf("table suspiciously small: %d nodes, %d bytes", tr.Nodes(), tr.SimBytes())
	}
}

func TestLookupEmitsTrace(t *testing.T) {
	tr := newTrie()
	tr.Insert(0x0a010200, 24, 3)
	var ctx click.Ctx
	tr.Lookup(&ctx, 0x0a010201)
	loads := 0
	for _, op := range ctx.Ops {
		if op.Addr != 0 {
			loads++
		}
	}
	// /24 = 8-bit root + 8 levels of 2 bits = 9 visited nodes, each
	// costing a descriptor load and an entry load.
	if loads != 18 {
		t.Fatalf("trace has %d node loads, want 18", loads)
	}
}

func TestLookupTraceMatchesPlain(t *testing.T) {
	tr := newTrie()
	RandomTable(tr, 2000, 3)
	var ctx click.Ctx
	r := rng.New(4)
	for i := 0; i < 500; i++ {
		dst := r.Uint32()
		ctx.Ops = ctx.Ops[:0]
		if tr.Lookup(&ctx, dst) != tr.LookupPlain(dst) {
			t.Fatalf("traced and plain lookups disagree for %#x", dst)
		}
	}
}

func TestDeterministicTableConstruction(t *testing.T) {
	a, b := newTrie(), newTrie()
	RandomTable(a, 1000, 5)
	RandomTable(b, 1000, 5)
	if a.Nodes() != b.Nodes() || a.SimBytes() != b.SimBytes() {
		t.Fatal("same seed produced different tables")
	}
	r := rng.New(6)
	for i := 0; i < 200; i++ {
		dst := r.Uint32()
		if a.LookupPlain(dst) != b.LookupPlain(dst) {
			t.Fatalf("tables disagree at %#x", dst)
		}
	}
}
